#!/bin/sh
# End-to-end smoke test for marchd and marchcamp: build marchd, start it on
# an ephemeral port, run a generate round-trip (submit, poll, fetch result,
# repeat for a cache hit, assert the latency histogram recorded it) plus a
# campaign round-trip and the read-only endpoints through curl, then SIGTERM
# it and require a clean drain (exit 0). A 3-process cluster section runs a
# distributed campaign (one -coordinator marchd, two -join workers, driven
# by marchctl campaign -cluster) and reports over its merged results.
# Finishes with a marchcamp run + report round-trip over the same engine.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
LOG="$TMP/marchd.log"
BIN="$TMP/marchd"
SRV_PID=""

cleanup() {
	[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
	echo "smoke: FAIL: $*" >&2
	echo "--- marchd log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

go build -o "$BIN" ./cmd/marchd

"$BIN" -addr 127.0.0.1:0 -data "$TMP/campaigns" 2>"$LOG" &
SRV_PID=$!

# Scrape the resolved port from the startup announcement.
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's/.*listening on \(.*\)/\1/p' "$LOG" | head -n1)
	[ -n "$ADDR" ] && break
	kill -0 "$SRV_PID" 2>/dev/null || fail "marchd died during startup"
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ADDR" ] || fail "no listen address announced"
BASE="http://$ADDR"
echo "smoke: marchd up at $BASE"

curl -fsS "$BASE/healthz" | grep -q '"ok"' || fail "healthz"
curl -fsS "$BASE/v1/library" | grep -q 'March SL' || fail "library"
curl -fsS "$BASE/v1/faultlists" | grep -q 'list2' || fail "faultlists"

# Synchronous simulation: March SL fully covers fault list 2.
curl -fsS -X POST "$BASE/v1/simulate" \
	-d '{"march":{"name":"March SL"},"list":"list2"}' \
	| grep -Eq '"coverage_percent": ?100' || fail "simulate coverage"

# Async generation: submit, poll to completion, fetch the result.
JOB=$(curl -fsS -X POST "$BASE/v1/generate" -d '{"list":"list2"}' \
	| sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
[ -n "$JOB" ] || fail "generate returned no job id"
echo "smoke: generation job $JOB submitted"

i=0
STATUS=""
while [ $i -lt 300 ]; do
	STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -n1)
	case "$STATUS" in
	done) break ;;
	failed | canceled) fail "job ended $STATUS" ;;
	esac
	sleep 0.1
	i=$((i + 1))
done
[ "$STATUS" = "done" ] || fail "job stuck in state '$STATUS'"

curl -fsS "$BASE/v1/jobs/$JOB/result" >"$TMP/gen-lanes-on.json"
grep -Eq '"coverage_percent": ?100' "$TMP/gen-lanes-on.json" \
	|| fail "generated march does not reach full coverage"

# The repeat request must be served from the cache.
HIT=$(curl -fsS -D - -o /dev/null -X POST "$BASE/v1/generate" -d '{"list":"list2"}' \
	| tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$HIT" = "hit" ] || fail "repeat request was not a cache hit (X-Cache: $HIT)"

curl -fsS "$BASE/metrics" | grep -q '"cache_hits": 1' || fail "metrics cache_hits"

# After a completed generation, the latency histogram must have recorded it:
# a non-zero observation count under "generate_latency".
GEN_COUNT=$(curl -fsS "$BASE/metrics" \
	| sed -n '/"generate_latency"/,/}/p' \
	| sed -n 's/.*"count": \([0-9][0-9]*\).*/\1/p' | head -n1)
[ -n "$GEN_COUNT" ] && [ "$GEN_COUNT" -ge 1 ] \
	|| fail "generation latency histogram empty (count: '${GEN_COUNT:-missing}')"
echo "smoke: generate round-trip + cache hit + latency histogram OK"

# Oracle cross-check round-trip: submit a verify job for March SL against
# fault list 2, poll it to completion, and require the two simulators to
# agree on every fault.
VJOB=$(curl -fsS -X POST "$BASE/v1/verify" \
	-d '{"march":{"name":"March SL"},"list":"list2"}' \
	| sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
[ -n "$VJOB" ] || fail "verify returned no job id"
i=0
VSTATUS=""
while [ $i -lt 300 ]; do
	VSTATUS=$(curl -fsS "$BASE/v1/jobs/$VJOB" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -n1)
	case "$VSTATUS" in
	done) break ;;
	failed | canceled) fail "verify job ended $VSTATUS" ;;
	esac
	sleep 0.1
	i=$((i + 1))
done
[ "$VSTATUS" = "done" ] || fail "verify job stuck in state '$VSTATUS'"
curl -fsS "$BASE/v1/jobs/$VJOB/result" >"$TMP/verify-lanes-on.json"
grep -Eq '"agree": ?true' "$TMP/verify-lanes-on.json" \
	|| fail "oracle cross-check diverged from the production simulator"
echo "smoke: /v1/verify oracle cross-check OK"

# Lane-engine equivalence: a second marchd forced onto the scalar engine
# (-lanes=off) must serve generate and verify result documents identical to
# the default instance's — generation wall-clock aside, which is the one
# nondeterministic field and is stripped before the comparison.
SLOG="$TMP/marchd-scalar.log"
"$BIN" -addr 127.0.0.1:0 -data "$TMP/scalar-campaigns" -lanes=off 2>"$SLOG" &
SCALAR_PID=$!
trap 'kill -9 "$SCALAR_PID" 2>/dev/null || true; cleanup' EXIT
SADDR=""
i=0
while [ $i -lt 100 ]; do
	SADDR=$(sed -n 's/.*listening on \(.*\)/\1/p' "$SLOG" | head -n1)
	[ -n "$SADDR" ] && break
	kill -0 "$SCALAR_PID" 2>/dev/null || { cat "$SLOG" >&2; fail "scalar marchd died during startup"; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$SADDR" ] || fail "scalar marchd announced no listen address"
SBASE="http://$SADDR"

poll_job() { # poll_job BASE JOB
	j=0
	while [ $j -lt 300 ]; do
		S=$(curl -fsS "$1/v1/jobs/$2" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -n1)
		case "$S" in
		done) return 0 ;;
		failed | canceled) fail "scalar job ended $S" ;;
		esac
		sleep 0.1
		j=$((j + 1))
	done
	fail "scalar job stuck in state '$S'"
}

SJOB=$(curl -fsS -X POST "$SBASE/v1/generate" -d '{"list":"list2"}' \
	| sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
[ -n "$SJOB" ] || fail "scalar generate returned no job id"
poll_job "$SBASE" "$SJOB"
curl -fsS "$SBASE/v1/jobs/$SJOB/result" >"$TMP/gen-lanes-off.json"
strip_secs() { sed 's/"generation_seconds": *[0-9.e+-]*//' "$1"; }
[ "$(strip_secs "$TMP/gen-lanes-on.json")" = "$(strip_secs "$TMP/gen-lanes-off.json")" ] \
	|| fail "generate results differ between -lanes=on and -lanes=off"

SVJOB=$(curl -fsS -X POST "$SBASE/v1/verify" \
	-d '{"march":{"name":"March SL"},"list":"list2"}' \
	| sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
[ -n "$SVJOB" ] || fail "scalar verify returned no job id"
poll_job "$SBASE" "$SVJOB"
curl -fsS "$SBASE/v1/jobs/$SVJOB/result" >"$TMP/verify-lanes-off.json"
cmp -s "$TMP/verify-lanes-on.json" "$TMP/verify-lanes-off.json" \
	|| fail "verify results differ between -lanes=on and -lanes=off"

kill -TERM "$SCALAR_PID" 2>/dev/null || true
i=0
while kill -0 "$SCALAR_PID" 2>/dev/null; do
	[ $i -lt 300 ] || fail "scalar marchd did not exit after SIGTERM"
	sleep 0.1
	i=$((i + 1))
done
echo "smoke: -lanes=off serves identical generate/verify results OK"

# Campaign round-trip over the HTTP API: submit a one-unit sweep, poll to
# completion, fetch its committed results.
CAMP=$(curl -fsS -X POST "$BASE/v1/campaigns" \
	-d '{"name":"smoke","lists":["list2"]}' \
	| sed -n 's/.*"id": "\(c-[^"]*\)".*/\1/p' | head -n1)
[ -n "$CAMP" ] || fail "campaign submit returned no id"
i=0
CSTATUS=""
while [ $i -lt 300 ]; do
	CSTATUS=$(curl -fsS "$BASE/v1/campaigns/$CAMP" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -n1)
	case "$CSTATUS" in
	done) break ;;
	failed | interrupted) fail "campaign ended $CSTATUS" ;;
	esac
	sleep 0.1
	i=$((i + 1))
done
[ "$CSTATUS" = "done" ] || fail "campaign stuck in state '$CSTATUS'"
curl -fsS "$BASE/v1/campaigns/$CAMP/results" | grep -q '"id": *"u-' || fail "campaign results empty"
curl -fsS "$BASE/metrics" | grep -q '"campaigns_done": 1' || fail "metrics campaigns_done"
echo "smoke: campaign round-trip OK"

# Diagnose round-trip (DESIGN.md §16): a clean MATS+ run over the
# single-cell model space cannot localize anything — the server must
# answer ambiguous with a follow-up march, and the repeat request must be
# a cache hit.
DBODY='{"list":"simple1","observations":[{"march":{"name":"MATS+"},"syndrome":[]}]}'
DJOB=$(curl -fsS -X POST "$BASE/v1/diagnose" -d "$DBODY" \
	| sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
[ -n "$DJOB" ] || fail "diagnose returned no job id"
i=0
DSTATUS=""
while [ $i -lt 300 ]; do
	DSTATUS=$(curl -fsS "$BASE/v1/jobs/$DJOB" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -n1)
	case "$DSTATUS" in
	done) break ;;
	failed | canceled) fail "diagnose job ended $DSTATUS" ;;
	esac
	sleep 0.1
	i=$((i + 1))
done
[ "$DSTATUS" = "done" ] || fail "diagnose job stuck in state '$DSTATUS'"
curl -fsS "$BASE/v1/jobs/$DJOB/result" >"$TMP/diagnose.json"
grep -q '"status": *"ambiguous"' "$TMP/diagnose.json" || fail "diagnose verdict not ambiguous"
grep -q '"next"' "$TMP/diagnose.json" || fail "diagnose recommended no follow-up march"
DHIT=$(curl -fsS -D - -o /dev/null -X POST "$BASE/v1/diagnose" -d "$DBODY" \
	| tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$DHIT" = "hit" ] || fail "repeat diagnose was not a cache hit (X-Cache: $DHIT)"
echo "smoke: /v1/diagnose round-trip + cache hit OK"

# Axis campaign: a width/ports sweep must run to completion over the HTTP
# API and record per-unit word and mport sections in its results.
ACAMP=$(curl -fsS -X POST "$BASE/v1/campaigns" \
	-d '{"name":"smoke-axes","lists":["list2"],"widths":[1,4],"ports":[1,2]}' \
	| sed -n 's/.*"id": "\(c-[^"]*\)".*/\1/p' | head -n1)
[ -n "$ACAMP" ] || fail "axis campaign submit returned no id"
i=0
ASTATUS=""
while [ $i -lt 600 ]; do
	ASTATUS=$(curl -fsS "$BASE/v1/campaigns/$ACAMP" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -n1)
	case "$ASTATUS" in
	done) break ;;
	failed | interrupted) fail "axis campaign ended $ASTATUS" ;;
	esac
	sleep 0.1
	i=$((i + 1))
done
[ "$ASTATUS" = "done" ] || fail "axis campaign stuck in state '$ASTATUS'"
curl -fsS "$BASE/v1/campaigns/$ACAMP/results" >"$TMP/axis-results.json"
grep -q '"width": *4' "$TMP/axis-results.json" || fail "axis campaign results lost the width-4 units"
grep -q '"word"' "$TMP/axis-results.json" || fail "axis campaign results carry no word section"
grep -q '"mport"' "$TMP/axis-results.json" || fail "axis campaign results carry no mport section"
echo "smoke: width/ports campaign round-trip OK"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
	[ $i -lt 300 ] || fail "marchd did not exit after SIGTERM"
	sleep 0.1
	i=$((i + 1))
done
grep -q 'exit 0' "$LOG" || fail "marchd did not exit cleanly (want 'exit 0' in log)"
SRV_PID=""
echo "smoke: clean SIGTERM drain"

# Chaos round-trip: a second marchd with -chaos-503 answers the first two
# API requests with 503 + Retry-After: 0; marchctl must retry through them
# and complete a full submit → poll → result round-trip.
CTLBIN="$TMP/marchctl"
go build -o "$CTLBIN" ./cmd/marchctl
CLOG="$TMP/marchd-chaos.log"
"$BIN" -addr 127.0.0.1:0 -data "$TMP/chaos-campaigns" -chaos-503 2 2>"$CLOG" &
CHAOS_PID=$!
trap 'kill -9 "$CHAOS_PID" 2>/dev/null || true; cleanup' EXIT
CADDR=""
i=0
while [ $i -lt 100 ]; do
	CADDR=$(sed -n 's/.*listening on \(.*\)/\1/p' "$CLOG" | head -n1)
	[ -n "$CADDR" ] && break
	kill -0 "$CHAOS_PID" 2>/dev/null || { cat "$CLOG" >&2; fail "chaos marchd died during startup"; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$CADDR" ] || fail "chaos marchd announced no listen address"
"$CTLBIN" -addr "http://$CADDR" -retries 6 -poll 100ms submit -list list2 -wait >"$TMP/ctl.json" \
	|| { cat "$CLOG" >&2; fail "marchctl submit through injected 503s"; }
grep -Eq '"coverage_percent": ?100' "$TMP/ctl.json" \
	|| fail "marchctl result lost full coverage"
INJECTED=$(grep -c 'chaos: injected 503 on' "$CLOG" || true)
[ "$INJECTED" -eq 2 ] || fail "chaos marchd injected $INJECTED 503s, want 2"
kill -TERM "$CHAOS_PID" 2>/dev/null || true
i=0
while kill -0 "$CHAOS_PID" 2>/dev/null; do
	[ $i -lt 300 ] || fail "chaos marchd did not exit after SIGTERM"
	sleep 0.1
	i=$((i + 1))
done
echo "smoke: marchctl round-trip through injected 503s OK"

# Overload round-trip (DESIGN.md §15): a deliberately tiny marchd (one
# worker, one queue slot) is prewarmed with a list2 result, then saturated
# with unique cold generates. The admission controller must answer at
# least one of them 429 with a non-empty Retry-After, and the prewarmed
# cache hit must keep answering 200 throughout — the degrade contract's
# "cheap path stays green".
OLOG="$TMP/marchd-overload.log"
"$BIN" -addr 127.0.0.1:0 -data "$TMP/overload-campaigns" -workers 1 -queue 1 \
	-admit-target 25ms -admit-interval 200ms -drain-timeout 2s 2>"$OLOG" &
OVER_PID=$!
trap 'kill -9 "$OVER_PID" 2>/dev/null || true; cleanup' EXIT
OADDR=""
i=0
while [ $i -lt 100 ]; do
	OADDR=$(sed -n 's/.*listening on \(.*\)/\1/p' "$OLOG" | head -n1)
	[ -n "$OADDR" ] && break
	kill -0 "$OVER_PID" 2>/dev/null || { cat "$OLOG" >&2; fail "overload marchd died during startup"; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$OADDR" ] || fail "overload marchd announced no listen address"
OBASE="http://$OADDR"

# Prewarm: one list2 generation polled to completion becomes the cache hit.
WJOB=$(curl -fsS -X POST "$OBASE/v1/generate" -d '{"list":"list2"}' \
	| sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
[ -n "$WJOB" ] || fail "overload prewarm returned no job id"
i=0
WSTATUS=""
while [ $i -lt 300 ]; do
	WSTATUS=$(curl -fsS "$OBASE/v1/jobs/$WJOB" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -n1)
	[ "$WSTATUS" = "done" ] && break
	sleep 0.1
	i=$((i + 1))
done
[ "$WSTATUS" = "done" ] || fail "overload prewarm stuck in state '$WSTATUS'"

# Saturate the cold path: unique names make every request a cache miss.
# With one worker and one queue slot the admission controller must start
# shedding; capture the first 429's Retry-After.
RETRY_AFTER=""
i=0
while [ $i -lt 50 ]; do
	HDRS=$(curl -sS -D - -o /dev/null -X POST "$OBASE/v1/generate" \
		-d "{\"list\":\"list1\",\"options\":{\"name\":\"smoke-cold-$i\"}}" | tr -d '\r')
	CODE=$(printf '%s\n' "$HDRS" | sed -n 's/^HTTP[^ ]* \([0-9]*\).*/\1/p' | head -n1)
	if [ "$CODE" = "429" ]; then
		RETRY_AFTER=$(printf '%s\n' "$HDRS" | sed -n 's/^Retry-After: //p' | head -n1)
		break
	fi
	i=$((i + 1))
done
[ -n "$RETRY_AFTER" ] || fail "no 429 with Retry-After while saturating the cold path"
case "$RETRY_AFTER" in
'' | *[!0-9]*) fail "429 Retry-After is not a whole-second count: '$RETRY_AFTER'" ;;
esac

# While the cold path is saturated, the prewarmed cache hit stays green.
OHIT=$(curl -fsS -D - -o /dev/null -X POST "$OBASE/v1/generate" -d '{"list":"list2"}' \
	| tr -d '\r' | sed -n 's/^X-Cache: //p')
[ "$OHIT" = "hit" ] || fail "cache hit failed while the cold path was saturated (X-Cache: $OHIT)"
# healthz is never admission-controlled: it must still answer during
# overload, and the metrics snapshot must have recorded the sheds.
curl -fsS "$OBASE/healthz" >/dev/null || fail "healthz unreachable during overload"
curl -fsS "$OBASE/metrics" | grep -q '"sheds_by_class"' || fail "metrics missing sheds_by_class during overload"
kill -TERM "$OVER_PID" 2>/dev/null || true
i=0
while kill -0 "$OVER_PID" 2>/dev/null; do
	[ $i -lt 300 ] || fail "overload marchd did not exit after SIGTERM"
	sleep 0.1
	i=$((i + 1))
done
echo "smoke: 429 + Retry-After under saturation while cache hits stay green OK"

# Cluster round-trip (DESIGN.md §13): a coordinator-mode marchd plus two
# worker marchd instances joined with -join, driven by marchctl campaign
# -cluster. The merged result set must complete, the fabric counters must
# show up in /metrics, and marchcamp report over the coordinator's data
# dir must see a finished campaign (exit 0, not the incomplete exit 4).
FLOG="$TMP/marchd-coord.log"
"$BIN" -addr 127.0.0.1:0 -data "$TMP/fabric-campaigns" -coordinator -fabric-ttl 5s 2>"$FLOG" &
COORD_PID=$!
trap 'kill -9 "$COORD_PID" 2>/dev/null || true; cleanup' EXIT
FADDR=""
i=0
while [ $i -lt 100 ]; do
	FADDR=$(sed -n 's/.*listening on \(.*\)/\1/p' "$FLOG" | head -n1)
	[ -n "$FADDR" ] && break
	kill -0 "$COORD_PID" 2>/dev/null || { cat "$FLOG" >&2; fail "coordinator marchd died during startup"; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$FADDR" ] || fail "coordinator marchd announced no listen address"
FBASE="http://$FADDR"

W1LOG="$TMP/marchd-worker1.log"
W2LOG="$TMP/marchd-worker2.log"
"$BIN" -addr 127.0.0.1:0 -join "$FBASE" 2>"$W1LOG" &
W1_PID=$!
"$BIN" -addr 127.0.0.1:0 -join "$FBASE" 2>"$W2LOG" &
W2_PID=$!
trap 'kill -9 "$W1_PID" "$W2_PID" "$COORD_PID" 2>/dev/null || true; cleanup' EXIT

cat >"$TMP/cluster.json" <<'EOF'
{"name":"smoke-cluster","lists":["list2"],"orders":["free","up","down"],"sizes":[3,4],"shard_size":1}
EOF
"$CTLBIN" -addr "$FBASE" -poll 100ms -timeout 2m \
	campaign -cluster -spec "$TMP/cluster.json" -wait >"$TMP/cluster-status.json" \
	|| { cat "$FLOG" "$W1LOG" "$W2LOG" >&2; fail "marchctl campaign -cluster"; }
grep -Eq '"done": ?true' "$TMP/cluster-status.json" \
	|| fail "cluster campaign did not report done: $(cat "$TMP/cluster-status.json")"
curl -fsS "$FBASE/metrics" | grep -q '"fabric_joins_total": 2' \
	|| fail "metrics fabric_joins_total (want both workers joined)"
curl -fsS "$FBASE/metrics" | grep -Eq '"fabric_completed_shards_total": ?6' \
	|| fail "metrics fabric_completed_shards_total"

# The fabric run landed in the ordinary campaign store layout, so the
# local report tool closes the loop — and must see a complete sweep.
go build -o "$TMP/marchcamp" ./cmd/marchcamp
"$TMP/marchcamp" report -dir "$TMP/fabric-campaigns" | grep -q 'Generated tests:' \
	|| fail "marchcamp report over the cluster's results"
kill -TERM "$W1_PID" "$W2_PID" "$COORD_PID" 2>/dev/null || true
for PID in "$W1_PID" "$W2_PID" "$COORD_PID"; do
	i=0
	while kill -0 "$PID" 2>/dev/null; do
		[ $i -lt 300 ] || fail "cluster marchd $PID did not exit after SIGTERM"
		sleep 0.1
		i=$((i + 1))
	done
done
echo "smoke: 3-process cluster campaign via marchctl -cluster OK"

# marchcamp CLI: a minimal run + report round-trip over the same engine.
CAMPBIN="$TMP/marchcamp"
go build -o "$CAMPBIN" ./cmd/marchcamp
"$CAMPBIN" example >"$TMP/sweep.json" || fail "marchcamp example"
cat >"$TMP/mini.json" <<'EOF'
{"name":"smoke-mini","lists":["list2"],"orders":["free","up"],"shard_size":1}
EOF
"$CAMPBIN" run -spec "$TMP/mini.json" -dir "$TMP/camp" -quiet \
	| grep -q 'complete: 2 units in 2 shards' || fail "marchcamp run"
"$CAMPBIN" report -dir "$TMP/camp" | grep -q 'Generated tests:' || fail "marchcamp report"
echo "smoke: marchcamp run + report OK"
echo "smoke: PASS"
