#!/bin/sh
# Load/SLO gate for the marchd overload contract (DESIGN.md §15): two
# marchload runs against in-process (-selfserve) marchd instances.
#
#   1. Nominal: a modest mixed workload against a default-sized instance.
#      Gate: zero admission sheds, cache-hit class fully green. This run
#      writes BENCH_serve.json (latency percentiles per class, shed
#      counts, allocs-per-cached-hit) — the committed serving benchmark.
#   2. Overload: ~5x the concurrency against a deliberately small
#      instance (2 workers, queue 8, tightened CoDel knobs). Gates: the
#      admission controller MUST shed (min-shed), the cache-hit class
#      must stay >=99% successful, and its p99 must stay within 3x of
#      the nominal run's (floor 25ms), proving the cheap path stays
#      green while cold generates are refused with 429 + Retry-After.
#      (3x, not tighter: on a 1-CPU CI box the selfserve harness shares
#      the scheduler with the server, so overload-run client-side
#      queueing inflates measured p99 well beyond the server's own.)
#
# Usage: scripts/load.sh [out.json]   (default BENCH_serve.json)
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_serve.json}"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

BIN="$TMP/marchload"
go build -o "$BIN" ./cmd/marchload

echo "load: nominal run (gate: no sheds at nominal load)"
"$BIN" -selfserve -duration 5s -concurrency 4 \
	-mix "cachehit=8,cold=1,simulate=2,verify=1" \
	-alloc-sample 2000 \
	-max-shed 0 -min-class-success "cachehit=0.99" \
	-out "$OUT" >"$TMP/nominal.stdout"
echo "load: nominal OK -> $OUT"

echo "load: 5x overload run (gates: sheds happen, cached reads stay green)"
"$BIN" -selfserve -workers 2 -queue 8 \
	-admit-target 25ms -admit-interval 200ms \
	-duration 5s -concurrency 20 \
	-mix "cachehit=8,cold=6,simulate=2,verify=1" \
	-min-shed 1 -min-class-success "cachehit=0.99" \
	-baseline "$OUT" -max-cached-p99-ratio 3 -cached-p99-floor 25ms \
	-out "$TMP/overload.json" >"$TMP/overload.stdout"
echo "load: overload OK (sheds observed, cache-hit p99 within 3x of nominal)"
echo "load: PASS"
