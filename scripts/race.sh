#!/bin/sh
# Race-detector gate for the packages with concurrent hot paths: the
# simulator's worker fan-out (Schedule.Simulate, Schedule.FullCoverage,
# sync.Pool machine reuse), the generator loops driving them, the marchd
# service layer (job engine worker pool, result cache, metrics, concurrent
# HTTP clients), and the campaign engine (shard worker pool, in-order
# committer, generation memo) with its durable store. The chaos-hardening
# packages ride along: the iofault injector (its mutex against concurrent
# committers), the retry loops, and the marchctl client suite (retrying
# requests against a live flaky server). The independent verification
# oracle is included because crosscheck fans both simulators out from the
# same call sites the service and campaign layers use concurrently. The
# bit-parallel lane engine's differential tests (lanes-vs-scalar over the
# march library and the fuzz seed corpus) run under ./internal/sim/..., so
# the lane kernels and their scalar-fallback handoff are raced here too.
# The march optimizer rides along: its search loop is sequential, but every
# fitness evaluation drives Schedule.FullCoverage's worker fan-out, and the
# service's /v1/optimize job runs it from the job-engine pool.
# The distributed fabric rides along: its cluster tests run a coordinator
# and several workers as real goroutines over HTTP (lease grants, steals,
# heartbeats, the merge committer) — the most concurrency-dense code here.
# The overload layer (DESIGN.md §15) is raced from three sides: the
# admission controller's interleaving test in ./internal/service/, the
# circuit breaker's concurrent-report test in ./internal/retry/, and
# ./cmd/marchload/ driving a live in-process server from many workers.
# The axis engines (DESIGN.md §16) ride along: word/mport evaluation runs
# from campaign shard workers and service jobs concurrently (and the mport
# catalog march is a sync.Once-memoized per-process constant shared by all
# of them), and the diagnose package is fanned out by /v1/diagnose jobs.
set -eu
cd "$(dirname "$0")/.."
exec go test -race ./internal/sim/... ./internal/core/... ./internal/oracle/... ./internal/optimize/... ./internal/service/... ./internal/campaign/... ./internal/store/... ./internal/iofault/... ./internal/retry/... ./internal/fabric/... ./internal/word/... ./internal/mport/... ./internal/diagnose/... ./cmd/marchctl/ ./cmd/marchload/
