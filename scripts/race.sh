#!/bin/sh
# Race-detector gate for the packages with concurrent hot paths: the
# simulator's worker fan-out (Schedule.Simulate, Schedule.FullCoverage,
# sync.Pool machine reuse), the generator loops driving them, the marchd
# service layer (job engine worker pool, result cache, metrics, concurrent
# HTTP clients), and the campaign engine (shard worker pool, in-order
# committer, generation memo) with its durable store.
set -eu
cd "$(dirname "$0")/.."
exec go test -race ./internal/sim/... ./internal/core/... ./internal/service/... ./internal/campaign/... ./internal/store/...
