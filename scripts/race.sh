#!/bin/sh
# Race-detector gate for the packages with concurrent hot paths: the
# simulator's worker fan-out (Schedule.Simulate, Schedule.FullCoverage,
# sync.Pool machine reuse), the generator loops driving them, and the
# marchd service layer (job engine worker pool, result cache, metrics,
# concurrent HTTP clients).
set -eu
cd "$(dirname "$0")/.."
exec go test -race ./internal/sim/... ./internal/core/... ./internal/service/...
