#!/bin/sh
# Race-detector gate for the packages with concurrent hot paths: the
# simulator's worker fan-out (Schedule.Simulate, Schedule.FullCoverage,
# sync.Pool machine reuse) and the generator loops driving them.
set -eu
cd "$(dirname "$0")/.."
exec go test -race ./internal/sim/... ./internal/core/...
