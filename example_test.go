package marchgen_test

import (
	"fmt"
	"log"

	"marchgen"
)

// Generate a certified march test for the paper's Fault List #2.
func ExampleGenerate() {
	res, err := marchgen.Generate(marchgen.List2(), marchgen.Options{Name: "March EX"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Test.ASCII())
	fmt.Printf("%d/%d detected\n", res.Report.Detected(), res.Report.Total())
	// Output:
	// c(w0) ^(r0,r0,w1,w1,r1,r1)
	// 18/18 detected
}

// Parse and inspect a march test in conventional notation.
func ExampleParseMarch() {
	m, err := marchgen.ParseMarch("MATS+", "c(w0) ^(r0,w1) v(r1,w0)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Complexity())
	fmt.Println(m)
	// Output:
	// 5n
	// ⇕(w0) ⇑(r0,w1) ⇓(r1,w0)
}

// Parse a fault primitive and build a linked fault from the paper's
// eq. (12).
func ExampleLinkFaults() {
	lf, err := marchgen.LinkFaults(marchgen.LF2aa, "<0w1;0/1/->", "<1w0;1/0/->")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(lf.ID())
	// Output:
	// LF2aa{CFds<0w1;0/1/->(a0,v1) -> CFds<1w0;1/0/->(a0,v1)}
}

// Simulate a published test against the single-cell linked faults.
func ExampleSimulate() {
	sl, _ := marchgen.MarchByName("March SL")
	r := marchgen.Simulate(sl, marchgen.List2())
	fmt.Printf("%d/%d\n", r.Detected(), r.Total())
	// Output:
	// 18/18
}

// Check whether one march test detects one fault.
func ExampleDetects() {
	mc, _ := marchgen.MarchByName("March C-")
	lf, err := marchgen.LinkFaults(marchgen.LF3, "<0w1;0/1/->", "<0w1;1/0/->")
	if err != nil {
		log.Fatal(err)
	}
	det, err := marchgen.Detects(mc, lf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(det)
	// Output:
	// false
}

// Estimate the BIST implementation cost of a march test.
func ExampleEstimateBIST() {
	sl, _ := marchgen.MarchByName("March SL")
	c := marchgen.EstimateBIST(sl, 1024, 0)
	fmt.Printf("cycles=%d singleOrder=%v\n", c.Cycles, c.SingleOrder)
	// Output:
	// cycles=41984 singleOrder=false
}
