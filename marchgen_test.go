package marchgen_test

import (
	"bytes"
	"strings"
	"testing"

	"marchgen"
)

func TestFacadeParseMarch(t *testing.T) {
	m, err := marchgen.ParseMarch("x", "c(w0) ^(r0,w1) v(r1,w0)")
	if err != nil {
		t.Fatal(err)
	}
	if m.Length() != 5 {
		t.Errorf("Length = %d", m.Length())
	}
	if _, err := marchgen.ParseMarch("x", "nonsense"); err == nil {
		t.Error("bad notation must error")
	}
}

func TestFacadeParseFP(t *testing.T) {
	f, err := marchgen.ParseFP("<0w1;0/1/->")
	if err != nil {
		t.Fatal(err)
	}
	if f.Cells != 2 {
		t.Errorf("Cells = %d", f.Cells)
	}
	if _, err := marchgen.ParseFP("<bad>"); err == nil {
		t.Error("bad FP must error")
	}
}

func TestFacadeLibrary(t *testing.T) {
	lib := marchgen.Library()
	if len(lib) != 19 {
		t.Errorf("library has %d tests, want 19", len(lib))
	}
	sl, ok := marchgen.MarchByName("March SL")
	if !ok || sl.Length() != 41 {
		t.Errorf("March SL lookup: %v %v", sl, ok)
	}
	if _, ok := marchgen.MarchByName("nope"); ok {
		t.Error("unknown name must fail")
	}
}

func TestFacadeFaultLists(t *testing.T) {
	if got := len(marchgen.List1()); got != 594 {
		t.Errorf("List1 = %d", got)
	}
	if got := len(marchgen.List2()); got != 18 {
		t.Errorf("List2 = %d", got)
	}
	if got := len(marchgen.SimpleFaults()); got != 48 {
		t.Errorf("SimpleFaults = %d", got)
	}
	if got := len(marchgen.RealisticList(marchgen.List2())); got != 6 {
		t.Errorf("RealisticList(List2) = %d", got)
	}
	byName, err := marchgen.FaultListByName("list2")
	if err != nil || len(byName) != 18 {
		t.Errorf("FaultListByName: %d, %v", len(byName), err)
	}
	if _, err := marchgen.FaultListByName("nope"); err == nil {
		t.Error("unknown list must error")
	}
}

func TestFacadeSimulateAndDetects(t *testing.T) {
	sl, _ := marchgen.MarchByName("March SL")
	r := marchgen.Simulate(sl, marchgen.List2())
	if !r.Full() {
		t.Errorf("March SL on List2: %s", r.Summary())
	}
	rw := marchgen.SimulateWith(sl, marchgen.List2(), marchgen.SimConfig{Size: 5, ExhaustiveOrders: true})
	if !rw.Full() {
		t.Errorf("March SL on List2 (5 cells): %s", rw.Summary())
	}
	lf, err := marchgen.LinkFaults(marchgen.LF3, "<0w1;0/1/->", "<0w1;1/0/->")
	if err != nil {
		t.Fatal(err)
	}
	det, err := marchgen.Detects(sl, lf)
	if err != nil || !det {
		t.Errorf("Detects = %v, %v", det, err)
	}
}

func TestFacadeFaultConstruction(t *testing.T) {
	if _, err := marchgen.SimpleFault("<0w1/0/->"); err != nil {
		t.Error(err)
	}
	if _, err := marchgen.SimpleFault("<junk>"); err == nil {
		t.Error("bad FP spec must error")
	}
	kinds := []marchgen.FaultKind{marchgen.LF2aa, marchgen.LF3}
	for _, k := range kinds {
		if _, err := marchgen.LinkFaults(k, "<0w1;0/1/->", "<0w1;1/0/->"); k == marchgen.LF3 && err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	if _, err := marchgen.LinkFaults(marchgen.LF1, "<0w1/0/->", "<0r0/1/1>"); err != nil {
		t.Error(err)
	}
	if _, err := marchgen.LinkFaults(marchgen.Simple, "<0w1/0/->", "<0r0/1/1>"); err == nil {
		t.Error("Simple is not a linked kind")
	}
	if _, err := marchgen.LinkFaults(marchgen.LF1, "<bad>", "<0r0/1/1>"); err == nil {
		t.Error("bad FP1 must error")
	}
	if _, err := marchgen.LinkFaults(marchgen.LF1, "<0w1/0/->", "<bad>"); err == nil {
		t.Error("bad FP2 must error")
	}
}

func TestFacadePatternDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := marchgen.PatternDOT(&buf, 2, nil, "G0"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Error("no DOT output")
	}
	lf, _ := marchgen.LinkFaults(marchgen.LF3, "<0w1;0/1/->", "<0w1;1/0/->")
	if err := marchgen.PatternDOT(&buf, 2, []marchgen.Fault{lf}, "PG"); err == nil {
		t.Error("3-cell fault on 2-cell model must error")
	}
}

func TestFacadeGenerateAndCertify(t *testing.T) {
	res, err := marchgen.Generate(marchgen.List2(), marchgen.Options{Name: "FACADE"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete: %s", res.Report.Summary())
	}
	// Re-certify through the facade.
	r, err := marchgen.Certify(res.Test, marchgen.List2())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Full() {
		t.Errorf("Certify: %s", r.Summary())
	}
}
