GO ?= go

.PHONY: build test vet race bench bench-sim check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: the data-race gate for the concurrent simulator paths
## (Schedule.Simulate / Schedule.FullCoverage worker fan-out, machine pool).
race:
	./scripts/race.sh

## bench: simulator and generator throughput benchmarks.
bench:
	$(GO) test -run NONE -bench . -benchmem ./internal/sim/ .

## bench-sim: regenerate BENCH_sim.json (compiled-schedule speedup record).
bench-sim:
	$(GO) run ./cmd/experiments -bench-sim BENCH_sim.json

check: build vet test race
