GO ?= go

.PHONY: build test vet race bench bench-sim serve test-service smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: the data-race gate for the concurrent simulator paths
## (Schedule.Simulate / Schedule.FullCoverage worker fan-out, machine pool).
race:
	./scripts/race.sh

## bench: simulator and generator throughput benchmarks.
bench:
	$(GO) test -run NONE -bench . -benchmem ./internal/sim/ .

## bench-sim: regenerate BENCH_sim.json (compiled-schedule speedup record).
bench-sim:
	$(GO) run ./cmd/experiments -bench-sim BENCH_sim.json

## serve: run the marchd HTTP service on :8080 (see README quick-start).
serve:
	$(GO) run ./cmd/marchd -addr :8080

## test-service: the marchd service test suite (handlers, job engine, cache).
test-service:
	$(GO) test ./internal/service/ ./cmd/marchsim/

## smoke: end-to-end marchd round-trip over HTTP (build, curl, SIGTERM drain).
smoke:
	./scripts/smoke.sh

check: build vet test race smoke
