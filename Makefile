GO ?= go

.PHONY: build test vet fmt-check race bench bench-sim bench-lanes bench-opt opt-test serve test-service smoke chaos cluster-test fuzz verify-oracle load-test bench-serve check

build:
	$(GO) build ./...

## test: the unit suites, shuffled so inter-test ordering dependencies
## cannot hide, and uncached so the shuffle actually re-runs.
test:
	$(GO) test -shuffle=on -count=1 ./...

vet:
	$(GO) vet ./...

## fmt-check: fail if any tracked Go file is not gofmt-clean.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

## race: the data-race gate for the concurrent paths (simulator fan-out,
## service layer, campaign engine + durable store).
race:
	./scripts/race.sh

## bench: simulator and generator throughput benchmarks.
bench:
	$(GO) test -run NONE -bench . -benchmem ./internal/sim/ .

## bench-sim: regenerate BENCH_sim.json (compiled-schedule speedup record,
## including the lanes section with the bit-parallel speedup over scalar).
bench-sim:
	$(GO) run ./cmd/experiments -bench-sim BENCH_sim.json

## bench-lanes: alias for the BENCH_sim.json regeneration — named for the
## lanes section it fills (speedup_vs_scalar per Table-1 workload).
bench-lanes: bench-sim

## bench-opt: regenerate BENCH_opt.json — the search-based optimizer run
## against the paper's Table 1 baselines (37n / 35n for List #1, 9n for
## List #2), every winner oracle-certified.
bench-opt:
	$(GO) run ./cmd/experiments -bench-opt BENCH_opt.json

## opt-test: the optimizer smoke gate — a short-budget, fixed-seed search
## must find a full-coverage test no longer than the paper's 9n for List #2,
## certify it through the independent oracle, and reproduce bit-for-bit
## across two same-seed runs. The marchopt CLI suite rides along.
opt-test:
	$(GO) test -count=1 -run 'TestBeatsPaperOnList2|TestDeterministicAcrossRuns|TestWinnerCertifiedAndNeverLonger|TestWinnerAgreesWithOracle' ./internal/optimize/
	$(GO) test -count=1 ./cmd/marchopt/

## diag-test: the diagnosis gate — the adaptive loop must localize an
## injected fault end to end both in-process (internal/diagnose) and over
## the HTTP surface (/v1/diagnose), and the parse/localize/next pipeline
## must hold its invariants on the seed corpus of hostile syndromes.
diag-test:
	$(GO) test -count=1 ./internal/diagnose/
	$(GO) test -count=1 -run 'TestDiagnose' ./internal/service/

## serve: run the marchd HTTP service on :8080 (see README quick-start).
serve:
	$(GO) run ./cmd/marchd -addr :8080

## test-service: the marchd service test suite (handlers, job engine, cache,
## campaign endpoints) plus the CLI front ends.
test-service:
	$(GO) test ./internal/service/ ./cmd/...

## smoke: end-to-end marchd + marchcamp round-trip (build, curl, SIGTERM drain).
smoke:
	./scripts/smoke.sh

## chaos: the fault-injection gate (DESIGN.md §10) — the iofault injector
## suite, the crash-matrix byte-identical-resume sweep over every I/O op,
## the torn-tail fuzz seeds, panic containment in the job engine and HTTP
## layer, and the retrying marchctl client against a flaky server.
chaos:
	$(GO) test -count=1 ./internal/iofault/ ./internal/retry/ ./cmd/marchctl/
	$(GO) test -count=1 -run 'TestCrashMatrix|TestFaultMatrix|TestENOSPC|TestRunContainsPanicking|TestCrashError|FuzzOpenTornTail|TestJobEnginePanicContained|TestRoutePanic|TestEncodeError' \
		./internal/campaign/ ./internal/store/ ./internal/service/

## cluster-test: the distributed-fabric gate (DESIGN.md §13) — in-process
## 1-coordinator/3-worker clusters proving merged results byte-identical
## to a single-node run, including the kill-a-worker chaos case and the
## lease-expiry / work-stealing paths, plus the fabric routes through the
## full marchd handler stack.
cluster-test:
	$(GO) test -count=1 -run 'TestCluster|TestFabric' ./internal/fabric/ ./internal/service/

## fuzz: time-boxed fuzzing of every parser boundary (march notation, FP
## specs, op streams), the store's torn-tail recovery, the fabric's
## segment-merge path (dup/out-of-order/torn segments must never corrupt a
## committed prefix), the diagnosis syndrome pipeline (hostile/partial/
## contradictory syndromes must reject or localize, never panic), and the
## word background set (size, round-trip, bit-pair separation, coverage
## monotonicity), 30s per target, seeded from */testdata/fuzz/.
fuzz:
	$(GO) test -fuzz='^FuzzParseFP$$' -fuzztime 30s ./internal/fp/
	$(GO) test -fuzz='^FuzzParseOps$$' -fuzztime 30s ./internal/fp/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime 30s ./internal/march/
	$(GO) test -fuzz='^FuzzOpenTornTail$$' -fuzztime 30s ./internal/store/
	$(GO) test -fuzz='^FuzzLanesVsScalar$$' -fuzztime 30s ./internal/sim/
	$(GO) test -fuzz='^FuzzSegmentMerge$$' -fuzztime 30s ./internal/fabric/
	$(GO) test -fuzz='^FuzzRetryAfterParse$$' -fuzztime 30s ./cmd/marchctl/
	$(GO) test -fuzz='^FuzzDiagnoseSyndrome$$' -fuzztime 30s ./internal/diagnose/
	$(GO) test -fuzz='^FuzzWordBackgrounds$$' -fuzztime 30s ./internal/word/

## load-test: the overload SLO gate (DESIGN.md §15) — a nominal marchload
## run must finish with zero admission sheds, then a 5x-overload run
## against a deliberately small instance must shed cold generates with
## 429 + Retry-After while the cache-hit class stays >=99% green with its
## p99 within 3x of nominal. Refreshes BENCH_serve.json as a side effect.
load-test:
	./scripts/load.sh

## bench-serve: regenerate BENCH_serve.json (serving latency percentiles
## per workload class, shed counts, allocs-per-cached-hit) via the
## nominal+overload load.sh run.
bench-serve:
	./scripts/load.sh BENCH_serve.json

## verify-oracle: the differential gate (DESIGN.md §11) — cross-check the
## production simulator against the independent reference oracle over the
## whole march library × every fault list plus 1000 seeded random streams,
## with the metamorphic property engine on. Any divergence fails the build.
verify-oracle:
	$(GO) run ./cmd/marchverify -seed 1 -n 1000 -props

## check: the full local CI gate — build, vet, gofmt, tests, race, chaos,
## the cluster gate, the optimizer smoke gate, the diagnosis gate, the
## oracle cross-check, the lane benchmark record, the overload SLO gate,
## smoke.
check: build vet fmt-check test race chaos cluster-test opt-test diag-test verify-oracle bench-lanes load-test smoke
