GO ?= go

.PHONY: build test vet fmt-check race bench bench-sim serve test-service smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## fmt-check: fail if any tracked Go file is not gofmt-clean.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

## race: the data-race gate for the concurrent paths (simulator fan-out,
## service layer, campaign engine + durable store).
race:
	./scripts/race.sh

## bench: simulator and generator throughput benchmarks.
bench:
	$(GO) test -run NONE -bench . -benchmem ./internal/sim/ .

## bench-sim: regenerate BENCH_sim.json (compiled-schedule speedup record).
bench-sim:
	$(GO) run ./cmd/experiments -bench-sim BENCH_sim.json

## serve: run the marchd HTTP service on :8080 (see README quick-start).
serve:
	$(GO) run ./cmd/marchd -addr :8080

## test-service: the marchd service test suite (handlers, job engine, cache,
## campaign endpoints) plus the CLI front ends.
test-service:
	$(GO) test ./internal/service/ ./cmd/...

## smoke: end-to-end marchd + marchcamp round-trip (build, curl, SIGTERM drain).
smoke:
	./scripts/smoke.sh

## check: the full local CI gate — build, vet, gofmt, tests, race, smoke.
check: build vet fmt-check test race smoke
