// Fault diagnosis: march tests are not only pass/fail — the pattern of
// failing reads (the syndrome) identifies the fault. This example builds a
// fault dictionary for March SS over the simple static faults, plays
// "device under test" with a hidden fault, and shows the dictionary
// narrowing it down to the right model at the right cell.
package main

import (
	"fmt"
	"log"

	"marchgen/internal/diagnose"
	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

func main() {
	test := march.MarchSS
	faults := faultlist.SimpleSingleCell()

	dict, err := diagnose.Build(test, faults, sim.Config{Size: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary for %s over %d fault models on 4 cells:\n  %s\n\n",
		test.Name, len(faults), dict.Resolution())

	// The hidden defect: a write destructive fault at cell 2.
	hidden, err := linked.NewSimple(fp.MustParseFP("<1w1/0/->"))
	if err != nil {
		log.Fatal(err)
	}
	orders := make([]march.AddrOrder, len(test.Elems))
	for i, e := range test.Elems {
		orders[i] = e.Order
		if orders[i] == march.Any {
			orders[i] = march.Up
		}
	}
	scenario := sim.Scenario{
		Placement: []int{2},
		Init:      []fp.Value{fp.V0},
		Orders:    orders,
	}

	candidates, syndrome, err := dict.Diagnose(hidden, scenario, sim.Config{Size: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device under test fails %d reads; syndrome key:\n  %s\n\n", len(syndrome), syndrome.Key())
	fmt.Printf("dictionary candidates (%d):\n", len(candidates))
	for _, c := range candidates {
		fmt.Printf("  %s at cell %d\n", c.Fault.ID(), c.Scenario.Placement[0])
	}
	fmt.Printf("\nhidden fault was: %s at cell 2\n", hidden.ID())
}
