// Word-oriented memories: march tests address words, not bits, so faults
// coupling two bits inside one word are only sensitized when the data
// background gives the two bits different values. This example reproduces
// the classic result — a solid background misses half the intra-word
// couplings; the standard log2(w)+1 background set restores full coverage —
// and demonstrates this repository's finding that transition-write disturb
// couplings are not testable by word-wide writes at all.
package main

import (
	"fmt"
	"log"

	"marchgen/internal/march"
	"marchgen/internal/word"
)

func main() {
	const width = 4
	cfg := word.Config{Words: 2, Width: width}

	bgs, err := word.Backgrounds(width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standard backgrounds for %d-bit words:", width)
	for _, bg := range bgs {
		fmt.Printf("  %s", bg)
	}
	fmt.Println()

	all := word.IntraWordFaults(width)
	testable := word.TestableIntraWordFaults(width)
	fmt.Printf("\nintra-word static faults: %d total, %d march-testable\n", len(all), len(testable))
	fmt.Printf("(the %d transition-write disturb couplings are masked by the word\n", len(all)-len(testable))
	fmt.Println(" write itself and need bit-write enables — see EXPERIMENTS.md)")

	solid := []word.Background{word.Solid(width)}
	for _, m := range []march.Test{march.MATSPlus, march.MarchCMinus, march.MarchSS} {
		dSolid, err := word.Coverage(m, testable, solid, cfg)
		if err != nil {
			log.Fatal(err)
		}
		dAll, err := word.Coverage(m, testable, bgs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-9s (%4s): solid background %d/%d, standard set %d/%d",
			m.Name, m.Complexity(), dSolid, len(testable), dAll, len(testable))
	}
	fmt.Println()
}
