// Dynamic faults: the framework extends from static to two-operation
// (dynamic) fault primitives — write-read and read-read hammers that only
// misbehave on back-to-back accesses to the same cell. This example shows
// why March RAW (the published dynamic-fault test) is not complete, and
// generates a certified test for the full dynamic space.
package main

import (
	"fmt"
	"log"

	"marchgen"
)

func main() {
	dyn := marchgen.DynamicFaults()
	fmt.Printf("target: %d two-operation dynamic faults, e.g.\n", len(dyn))
	for _, f := range []int{0, 6, 18, 30} {
		fmt.Printf("  %s\n", dyn[f].ID())
	}

	// The published reference test for dynamic (read-after-write) faults.
	raw, _ := marchgen.MarchByName("March RAW")
	r := marchgen.Simulate(raw, dyn)
	fmt.Printf("\n%s (%s) detects %d/%d dynamic faults\n", raw.Name, raw.Complexity(), r.Detected(), r.Total())
	fmt.Println("its misses are all deceptive dynamic reads (the sensitizing read returns")
	fmt.Println("the expected value while corrupting the cell; an extra read is needed):")
	for i, m := range r.Missed() {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(r.Missed())-i)
			break
		}
		fmt.Printf("  %s\n", m.Fault.ID())
	}

	// Generate a complete test for the dynamic space.
	res, err := marchgen.Generate(dyn, marchgen.Options{Name: "March DYN"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %s (%s) in %.2f s: %d/%d certified\n",
		res.Test.Name, res.Test.Complexity(), res.Stats.Duration.Seconds(),
		res.Report.Detected(), res.Report.Total())
	fmt.Printf("  %s\n", res.Test)

	// A classic static-fault march sees nothing: its elements never apply
	// two consecutive operations to the same cell in a sensitizing way.
	mc, _ := marchgen.MarchByName("March C-")
	rc := marchgen.Simulate(mc, dyn)
	fmt.Printf("\nfor contrast, %s detects %d/%d dynamic faults\n", mc.Name, rc.Detected(), rc.Total())
}
