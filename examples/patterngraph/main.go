// Pattern graphs: regenerates the paper's Figure 2 (the fault-free 2-cell
// memory model G0) and Figure 4 (the pattern graph PG_CF of the linked
// disturb coupling fault) as Graphviz DOT files, and prints the graph
// statistics the paper quotes (|V| = 2^n, faulty edges = test patterns).
package main

import (
	"fmt"
	"log"
	"os"

	"marchgen"
)

func main() {
	// Figure 2: G0, the fault-free model (4 states, 7 edges per state).
	f2, err := os.Create("figure2_g0.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f2.Close()
	if err := marchgen.PatternDOT(f2, 2, nil, "G0"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote figure2_g0.dot (fault-free 2-cell model, 4 states)")

	// Figure 4: the pattern graph of eq. (12) — Disturb Coupling Fault
	// linked to Disturb Coupling Fault. The two bold edges of the figure
	// are the linked test patterns (00 -> 11, w1i,r0j) and (11 -> 00,
	// w0i,r1j).
	lf, err := marchgen.LinkFaults(marchgen.LF2aa, "<0w1;0/1/->", "<1w0;1/0/->")
	if err != nil {
		log.Fatal(err)
	}
	f4, err := os.Create("figure4_pgcf.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f4.Close()
	if err := marchgen.PatternDOT(f4, 2, []marchgen.Fault{lf}, "PGCF"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote figure4_pgcf.dot (pattern graph of", lf.ID(), ")")
	fmt.Println("render with: dot -Tpng figure4_pgcf.dot -o figure4.png")
}
