// Quickstart: generate a march test for the paper's Fault List #2 (the
// single-cell static linked faults), certify it with the fault simulator,
// and compare it with the published baselines.
package main

import (
	"fmt"
	"log"

	"marchgen"
)

func main() {
	// The target: every single-cell static linked fault (Fault List #2).
	faults := marchgen.List2()
	fmt.Printf("target: %d single-cell static linked faults, e.g.\n", len(faults))
	for _, f := range faults[:3] {
		fmt.Printf("  %s\n", f.ID())
	}

	// Generate a covering march test. The result is already certified: the
	// fault simulator has checked every fault in every placement, initial
	// state and address order.
	res, err := marchgen.Generate(faults, marchgen.Options{Name: "March QS"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %s (%s) in %.3f s\n", res.Test.Name, res.Test.Complexity(), res.Stats.Duration.Seconds())
	fmt.Printf("  %s\n", res.Test)
	fmt.Printf("  coverage: %d/%d (%.1f%%)\n", res.Report.Detected(), res.Report.Total(), res.Report.Coverage())

	// Compare with the published tests for the same list.
	fmt.Println("\ncomparison on the same fault list:")
	for _, name := range []string{"March LF1", "March ABL1"} {
		m, ok := marchgen.MarchByName(name)
		if !ok {
			log.Fatalf("library test %q missing", name)
		}
		r := marchgen.Simulate(m, faults)
		fmt.Printf("  %-11s %4s  %d/%d detected\n", m.Name, m.Complexity(), r.Detected(), r.Total())
	}
}
