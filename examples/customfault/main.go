// Custom fault models: the paper's Section 7 highlights that the generator
// accepts user-defined faults. This example defines a designer-supplied
// linked fault in <S/F/R> notation, checks which published tests detect it,
// and generates a minimal march test that targets it together with the
// standard simple faults.
package main

import (
	"fmt"
	"log"

	"marchgen"
)

func main() {
	// A write destructive coupling fault masked by a disturb coupling fault
	// on the same aggressor: writing the victim corrupts it, but a later
	// aggressor write silently restores it.
	fault, err := marchgen.LinkFaults(marchgen.LF2aa, "<1;0w0/1/->", "<1w1;1/0/->")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user-defined linked fault:", fault.ID())

	// Which published tests detect it?
	fmt.Println("\npublished tests against it:")
	for _, name := range []string{"MATS+", "March C-", "March LA", "March SS", "March SL"} {
		m, _ := marchgen.MarchByName(name)
		det, err := marchgen.Detects(m, fault)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "missed"
		if det {
			verdict = "DETECTED"
		}
		fmt.Printf("  %-9s (%4s): %s\n", m.Name, m.Complexity(), verdict)
	}

	// Generate a test for this fault plus the simple static faults, so the
	// result is a practical test rather than a single-fault probe.
	target := append(marchgen.SimpleFaults(), fault)
	res, err := marchgen.Generate(target, marchgen.Options{Name: "March CUSTOM"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %s (%s):\n  %s\n", res.Test.Name, res.Test.Complexity(), res.Test)
	fmt.Printf("coverage: %d/%d faults\n", res.Report.Detected(), res.Report.Total())
}
