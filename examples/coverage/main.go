// Masking study: the paper's motivation (Sections 1 and 3) is that linked
// faults defeat classic march tests because the second fault primitive
// cancels the first before a read can observe it. This example reproduces
// that story quantitatively: it walks the march test library from MATS+ to
// March SL and reports the coverage of each on the simple static faults and
// on the two linked fault lists.
package main

import (
	"fmt"
	"log"

	"marchgen"
)

func main() {
	simple := marchgen.SimpleFaults()
	list1 := marchgen.List1()
	list2 := marchgen.List2()

	fmt.Printf("%-16s %5s  %10s  %10s  %10s\n", "march test", "O(n)", "simple(48)", "List2(18)", "List1(594)")
	for _, m := range marchgen.Library() {
		rs := marchgen.Simulate(m, simple)
		r2 := marchgen.Simulate(m, list2)
		r1 := marchgen.Simulate(m, list1)
		if err := r1.Err(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %5s  %10d  %10d  %10d\n",
			m.Name, m.Complexity(), rs.Detected(), r2.Detected(), r1.Detected())
	}

	// Zoom in on the canonical example (eq. 12 / Figure 1): a disturb
	// coupling fault linked with a disturb coupling fault. March C- detects
	// the simple version but not the linked one — the definition of masking.
	simpleCF, err := marchgen.SimpleFault("<0w1;0/1/->")
	if err != nil {
		log.Fatal(err)
	}
	linkedCF, err := marchgen.LinkFaults(marchgen.LF3, "<0w1;0/1/->", "<0w1;1/0/->")
	if err != nil {
		log.Fatal(err)
	}
	mc, _ := marchgen.MarchByName("March C-")
	detSimple, err := marchgen.Detects(mc, simpleCF)
	if err != nil {
		log.Fatal(err)
	}
	detLinked, err := marchgen.Detects(mc, linkedCF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMarch C- vs the Figure 1 disturb coupling fault:\n")
	fmt.Printf("  simple %s: detected=%v\n", simpleCF.ID(), detSimple)
	fmt.Printf("  linked %s: detected=%v  <- masking in action\n", linkedCF.ID(), detLinked)
}
