// Two-port memories: the paper's Section 7 names march test generation for
// multi-port memories as ongoing work. This example exercises the
// repository's two-port prototype: weak fault models that only manifest
// under simultaneous accesses, the demonstration that even March SL (which
// covers every static linked fault) sees none of them through a single
// port, and the generation of a certified two-port march test.
package main

import (
	"fmt"
	"log"

	"marchgen/internal/march"
	"marchgen/internal/mport"
)

func main() {
	faults := mport.Catalog()
	fmt.Printf("two-port fault catalog: %d faults, e.g.\n", len(faults))
	for _, i := range []int{0, 1, 6, 7} {
		fmt.Printf("  %s\n", faults[i].ID())
	}

	// Single-port tests — even the strongest — detect none of them.
	fmt.Println("\nsingle-port march tests against the two-port faults:")
	for _, sp := range []march.Test{march.MarchCMinus, march.MarchSS, march.MarchSL} {
		lifted, err := mport.Lift(sp)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mport.Simulate(lifted, faults, mport.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s (%4s): %d/%d detected\n", sp.Name, sp.Complexity(), rep.Detected, rep.Total)
	}

	// Generate a two-port test with simultaneous-access elements.
	test, rep, err := mport.Generate(faults, mport.Options{Name: "March 2P"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %s (%s): %d/%d certified\n", test.Name, test.Complexity(), rep.Detected, rep.Total)
	fmt.Printf("  %s\n", test)
}
