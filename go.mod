module marchgen

go 1.22
