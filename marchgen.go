package marchgen

import (
	"context"
	"fmt"
	"io"

	"marchgen/internal/bist"
	"marchgen/internal/core"
	"marchgen/internal/diagnose"
	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/graph"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/mport"
	"marchgen/internal/optimize"
	"marchgen/internal/oracle"
	"marchgen/internal/sim"
	"marchgen/internal/word"
)

// Core model types, re-exported from the internal packages. The aliases form
// the stable public surface; the internal packages may be refactored freely.
type (
	// March is a complete march test (a sequence of march elements).
	March = march.Test
	// Element is one march element: operations plus an address order.
	Element = march.Element
	// AddrOrder is an element's address order (⇕, ⇑, ⇓).
	AddrOrder = march.AddrOrder
	// Op is a memory operation (w0, w1, r0, r1, t).
	Op = fp.Op
	// FP is a static fault primitive <S/F/R>.
	FP = fp.FP
	// Fault is a simple or linked functional fault.
	Fault = linked.Fault
	// FaultKind classifies a fault (Simple, LF1, LF2aa, LF2av, LF2va, LF3).
	FaultKind = linked.Kind
	// Options configures the generator.
	Options = core.Options
	// OrderConstraint restricts the address orders the generator may emit
	// (the Section 7 extension: all-⇑ / all-⇓ tests for efficient BIST).
	OrderConstraint = core.OrderConstraint
	// Result is a generation outcome: the march test, its certification
	// report and run statistics.
	Result = core.Result
	// Report is a fault simulation report.
	Report = sim.Report
	// SimConfig controls the fault simulator.
	SimConfig = sim.Config
)

// Address orders (re-exported constants).
const (
	Any  = march.Any
	Up   = march.Up
	Down = march.Down
)

// Generator order constraints (re-exported constants).
const (
	OrderFree     = core.OrderFree
	OrderUpOnly   = core.OrderUpOnly
	OrderDownOnly = core.OrderDownOnly
)

// Fault kinds (re-exported constants).
const (
	Simple = linked.Simple
	LF1    = linked.LF1
	LF2aa  = linked.LF2aa
	LF2av  = linked.LF2av
	LF2va  = linked.LF2va
	LF3    = linked.LF3
)

// Generate produces a march test covering every fault in the list and
// certifies it with the fault simulator before returning. See core.Generate.
func Generate(faults []Fault, opts Options) (Result, error) {
	return core.Generate(faults, opts)
}

// GenerateContext is Generate with cancellation and deadline support: a
// canceled or expired context aborts the run between simulation batches and
// returns ctx.Err(). Long-lived callers (the marchd job engine) use it to
// enforce per-job deadlines.
func GenerateContext(ctx context.Context, faults []Fault, opts Options) (Result, error) {
	return core.GenerateContext(ctx, faults, opts)
}

// ParseOrderConstraint resolves the textual spelling of a generator order
// constraint: "free" (or ""), "up", "down".
func ParseOrderConstraint(s string) (OrderConstraint, error) {
	return core.ParseOrderConstraint(s)
}

// DefaultSimConfig returns the default exhaustive simulator configuration
// (4-cell memory, every placement, every initial value, every concrete ⇕
// order) — the starting point for callers that want to adjust one knob
// (e.g. DisableLanes) before calling SimulateWith.
func DefaultSimConfig() SimConfig {
	return sim.DefaultConfig()
}

// Simulate runs a march test against a fault list under the default
// exhaustive simulator configuration (4-cell memory, every placement, every
// initial value, every concrete ⇕ order).
func Simulate(t March, faults []Fault) Report {
	return sim.Simulate(t, faults, sim.DefaultConfig())
}

// SimulateWith runs a march test against a fault list under an explicit
// simulator configuration.
func SimulateWith(t March, faults []Fault, cfg SimConfig) Report {
	return sim.Simulate(t, faults, cfg)
}

// Detects reports whether the march test detects the fault in every
// scenario of the default configuration.
func Detects(t March, f Fault) (bool, error) {
	det, _, err := sim.DetectsFault(t, f, sim.DefaultConfig())
	return det, err
}

// DetectsWith reports whether the march test detects the fault in every
// scenario of an explicit configuration, returning an undetected witness
// scenario when it does not.
func DetectsWith(t March, f Fault, cfg SimConfig) (bool, *Witness, error) {
	return sim.DetectsFault(t, f, cfg)
}

// ParseMarch parses a march test from its conventional notation, e.g.
// "⇕(w0) ⇑(r0,w1) ⇓(r1,w0)" or the ASCII form "c(w0) ^(r0,w1) v(r1,w0)".
func ParseMarch(name, spec string) (March, error) {
	return march.Parse(name, spec)
}

// ParseFP parses a fault primitive in the <S/F/R> notation, e.g.
// "<0w1;0/1/->" for a disturb coupling fault.
func ParseFP(s string) (FP, error) {
	return fp.ParseFP(s)
}

// Library returns the published march tests the repository ships (MATS+,
// March C-, March SL, March LF1, the paper's March ABL/RABL/ABL1, ...).
func Library() []March {
	return march.Lib()
}

// MarchByName looks a library test up by name.
func MarchByName(name string) (March, bool) {
	return march.ByName(name)
}

// List1 returns the paper's Fault List #1: all single-, two- and three-cell
// static linked faults of the Definition-6 space (594 faults).
func List1() []Fault {
	return faultlist.List1()
}

// List2 returns the paper's Fault List #2: the single-cell static linked
// faults (18 faults).
func List2() []Fault {
	return faultlist.List2()
}

// SimpleFaults returns the 48 simple (un-linked) static faults.
func SimpleFaults() []Fault {
	return faultlist.SimpleStatic()
}

// DynamicFaults returns the 66 simple two-operation dynamic faults (dRDF,
// dDRDF, dIRF and their coupling versions) — the extension of the group's
// companion ETS 2005 paper.
func DynamicFaults() []Fault {
	return faultlist.Dynamic()
}

// RealisticList filters a fault list down to the truly masking linked pairs
// (the "realistic" subset in the sense of Hamdioui et al.).
func RealisticList(faults []Fault) []Fault {
	return faultlist.Realistic(faults)
}

// FaultListByName resolves a named fault list ("list1", "list2", "simple",
// "simple1", "simple2", "realistic1", "realistic2").
func FaultListByName(name string) ([]Fault, error) {
	fs, ok := faultlist.ByName(name)
	if !ok {
		return nil, fmt.Errorf("marchgen: unknown fault list %q (known: %v)", name, faultlist.Names())
	}
	return fs, nil
}

// FaultListNames lists the fault-list names FaultListByName understands.
func FaultListNames() []string {
	return faultlist.Names()
}

// SimpleFault wraps a fault primitive as a standalone fault.
func SimpleFault(fpSpec string) (Fault, error) {
	f, err := fp.ParseFP(fpSpec)
	if err != nil {
		return Fault{}, err
	}
	return linked.NewSimple(f)
}

// LinkFaults builds a linked fault of the given kind from two fault
// primitives in <S/F/R> notation, validating the linking conditions of
// Definition 6/7. Valid kinds: LF1 (two single-cell primitives), LF2aa,
// LF2av, LF2va (two cells) and LF3 (three cells, distinct aggressors).
func LinkFaults(kind FaultKind, fp1Spec, fp2Spec string) (Fault, error) {
	f1, err := fp.ParseFP(fp1Spec)
	if err != nil {
		return Fault{}, err
	}
	f2, err := fp.ParseFP(fp2Spec)
	if err != nil {
		return Fault{}, err
	}
	switch kind {
	case linked.LF1:
		return linked.NewLF1(f1, f2)
	case linked.LF2aa:
		return linked.NewLF2aa(f1, f2)
	case linked.LF2av:
		return linked.NewLF2av(f1, f2)
	case linked.LF2va:
		return linked.NewLF2va(f1, f2)
	case linked.LF3:
		return linked.NewLF3(f1, f2)
	}
	return Fault{}, fmt.Errorf("marchgen: kind %v is not a linked fault kind", kind)
}

// PatternDOT writes the pattern graph of a fault list on an n-cell memory
// model in Graphviz DOT format (the representation of the paper's Figures 2
// and 4). With an empty fault list it renders the fault-free model G0.
func PatternDOT(w io.Writer, n int, faults []Fault, title string) error {
	g, err := graph.Pattern(n, faults)
	if err != nil {
		return err
	}
	return g.DOT(w, title)
}

// Certify re-validates an existing march test at the exhaustive
// configuration, returning the full report.
func Certify(t March, faults []Fault) (Report, error) {
	return core.Certify(t, faults)
}

// Search-based optimizer types, re-exported from internal/optimize.
type (
	// OptimizeOptions configures the search-based march-test optimizer
	// (beam search + annealed mutation over element-level moves).
	OptimizeOptions = optimize.Options
	// OptimizeResult is an optimization outcome: the certified winner, the
	// seed it started from, and run statistics.
	OptimizeResult = optimize.Result
	// OptimizeProgress is a point-in-time snapshot of a running search.
	OptimizeProgress = optimize.Progress
)

// Optimize searches for a shorter full-coverage march test starting from a
// seed (explicit or generated). The winner is never longer than the seed and
// is certified through CertifyWithOracle before being returned. See
// internal/optimize for the search description (DESIGN.md §14).
func Optimize(faults []Fault, opts OptimizeOptions) (OptimizeResult, error) {
	return optimize.Run(faults, opts)
}

// OptimizeContext is Optimize with cancellation support: a canceled context
// aborts the search within one candidate evaluation.
func OptimizeContext(ctx context.Context, faults []Fault, opts OptimizeOptions) (OptimizeResult, error) {
	return optimize.RunContext(ctx, faults, opts)
}

// CertifyWithOracle certifies a march test the strong way: consistency,
// full coverage under the production simulator, and bit-for-bit agreement
// with the independent reference oracle. The optimizer's certify-before-land
// gate, exposed for external tooling.
func CertifyWithOracle(t March, faults []Fault, cfg SimConfig) (Report, error) {
	return core.CertifyWithOracle(t, faults, cfg)
}

// VerdictDiff is one disagreement between the production fault simulator and
// the independent reference oracle: the fault, the diverging field (count,
// fault, error, detected, witness) and both values.
type VerdictDiff = sim.VerdictDiff

// CrossCheck simulates the test against the fault list with both the
// production simulator (internal/sim) and the independent reference oracle
// (internal/oracle) and returns every disagreement in verdict, missed set or
// witness. An empty result means the two implementations — which share no
// code on the verdict path — agree bit-for-bit.
func CrossCheck(t March, faults []Fault, cfg SimConfig) []VerdictDiff {
	return oracle.CrossCheck(t, faults, cfg)
}

// Verify is CrossCheck under the default exhaustive configuration.
func Verify(t March, faults []Fault) []VerdictDiff {
	return CrossCheck(t, faults, sim.DefaultConfig())
}

// Witness is an undetected simulation scenario (placement, initial values,
// concrete address orders), as reported in a Report's missed entries.
type Witness = sim.Scenario

// TraceWitness replays one scenario of a fault under a march test and
// writes a step-by-step table showing every operation on the fault's cells,
// which primitives fired, and where the good and faulty machines diverged —
// the diagnostic behind "why does this test miss this fault".
func TraceWitness(w io.Writer, t March, f Fault, s Witness) error {
	tr, err := sim.TraceScenario(t, f, s, sim.DefaultConfig())
	if err != nil {
		return err
	}
	return tr.Render(w, false)
}

// BISTCost is the estimated implementation cost of a march test in a memory
// BIST controller (cycles, sequencer states, address-order reversals).
type BISTCost = bist.Cost

// EstimateBIST estimates the BIST cost of applying a march test to an
// n-cell memory, charging delayCycles per wait operation. It quantifies the
// single-order trade-off of the OrderUpOnly/OrderDownOnly generator
// profiles.
func EstimateBIST(t March, n int, delayCycles int64) BISTCost {
	return bist.Estimate(t, n, delayCycles)
}

// Word-oriented testing types, re-exported from internal/word and core.
type (
	// WordBackground is one data background: the pattern a word-wide write
	// applies for march data 0 (its complement for data 1).
	WordBackground = word.Background
	// WordFault is an intra-word two-cell fault (aggressor bit, victim bit).
	WordFault = word.Fault
	// WordConfig sizes the word-oriented memory model.
	WordConfig = word.Config
	// WordResult is Generate's word-oriented evaluation section.
	WordResult = core.WordResult
	// MportResult is Generate's two-port evaluation section.
	MportResult = core.MportResult
)

// WordBackgrounds returns the standard background set for a w-bit word:
// solid plus the log2(w) alternating patterns.
func WordBackgrounds(width int) ([]WordBackground, error) {
	return word.Backgrounds(width)
}

// WordFaults returns the march-testable intra-word two-cell faults of a
// w-bit word.
func WordFaults(width int) []WordFault {
	return word.TestableIntraWordFaults(width)
}

// WordDetects reports whether the march test, applied word-wide under the
// background set, detects the intra-word fault from both uniform initial
// values.
func WordDetects(t March, f WordFault, bgs []WordBackground, cfg WordConfig) (bool, error) {
	return word.Detects(t, f, bgs, cfg)
}

// TransparentMarch derives the transparent in-field variant of a march test
// (Li et al.): the initializing write element is dropped and the memory's
// existing content plays the role of the data background, so the test runs
// without destroying state. Errors when the test does not admit the
// transform (first element not write-only, or reads that disagree with the
// running content value).
func TransparentMarch(t March) (March, error) {
	return word.Transparent(t)
}

// EvaluateWord grades a march test on the word axis (and, optionally, its
// transparent variant). Nil result when width <= 1.
func EvaluateWord(ctx context.Context, t March, width int, transparent bool) (*WordResult, error) {
	return core.EvaluateWord(ctx, t, width, transparent)
}

// EvaluateMport grades a march test on the two-port axis: the weak-fault
// coverage of its lifted (port B idle) form, plus a dedicated two-port march
// from the directed constructor. Nil result when ports <= 1.
func EvaluateMport(ctx context.Context, t March, ports int) (*MportResult, error) {
	return core.EvaluateMport(ctx, t, ports)
}

// Diagnosis types, re-exported from internal/diagnose.
type (
	// ReadID identifies one read operation of an applied march test.
	ReadID = diagnose.ReadID
	// Syndrome is the set of failing reads of one march test run.
	Syndrome = diagnose.Syndrome
	// DiagnoseObservation is one executed march test plus its recorded
	// syndrome.
	DiagnoseObservation = diagnose.Observation
	// DiagnoseCandidate is a fault instance (model + placement) consistent
	// with every observation so far.
	DiagnoseCandidate = diagnose.Candidate
	// FaultDictionary maps failure signatures to fault instances.
	FaultDictionary = diagnose.Dictionary
	// AdaptiveDiagnosis summarizes an adaptive localization session.
	AdaptiveDiagnosis = diagnose.AdaptiveResult
)

// BuildDictionary simulates every fault of the list in every placement under
// the march test and records the failure signatures.
func BuildDictionary(t March, faults []Fault, cfg SimConfig) (*FaultDictionary, error) {
	return diagnose.Build(t, faults, cfg)
}

// ParseSyndrome parses rendered read IDs ("M1#0@2", ...) into a Syndrome.
func ParseSyndrome(ids []string) (Syndrome, error) {
	return diagnose.ParseSyndrome(ids)
}

// DiagnoseLocalize intersects the observations: a candidate fault instance
// survives iff its simulated signature matches the recorded syndrome under
// every observed test.
func DiagnoseLocalize(faults []Fault, obs []DiagnoseObservation, cfg SimConfig) ([]DiagnoseCandidate, error) {
	return diagnose.Localize(faults, obs, cfg)
}

// DiagnoseNextTest picks the march from the pool that best splits the
// candidate set (minimizing the largest ambiguity class), excluding tests
// already executed. ok is false when no pool test splits the set.
func DiagnoseNextTest(cands []DiagnoseCandidate, pool []March, exclude map[string]bool, cfg SimConfig) (March, bool, error) {
	return diagnose.NextTest(cands, pool, exclude, cfg)
}

// AdaptiveLocalize drives the whole adaptive loop against a simulated device
// under test until the candidate set is a singleton, stable, or maxRounds is
// exhausted.
func AdaptiveLocalize(target Fault, placement []int, faults []Fault, pool []March, start March, cfg SimConfig, maxRounds int) (AdaptiveDiagnosis, error) {
	return diagnose.AdaptiveLocalize(target, placement, faults, pool, start, cfg, maxRounds)
}

// Two-port (dual-port) testing types, re-exported from internal/mport.
type (
	// MportTest is a two-port march test in pair notation.
	MportTest = mport.Test
	// MportFault is a weak two-port fault (W2RDF/W2DRDF/W2IRF/WCC).
	MportFault = mport.Fault
	// MportConfig sizes the two-port memory model.
	MportConfig = mport.Config
)

// MportCatalog returns the modeled weak two-port fault catalog.
func MportCatalog() []MportFault {
	return mport.Catalog()
}

// LiftMarch lifts a single-port march test to the two-port notation with
// port B idle.
func LiftMarch(t March) (MportTest, error) {
	return mport.Lift(t)
}

// GenerateMport constructs a two-port march covering the fault catalog with
// the directed constructor.
func GenerateMport(faults []MportFault, opts mport.Options) (MportTest, mport.Report, error) {
	return mport.Generate(faults, opts)
}
