package marchgen_test

// One benchmark per experimental artifact of the paper:
//
//   - Table 1, row "March ABL"  -> BenchmarkGenerateList1
//   - Table 1, row "March RABL" -> BenchmarkGenerateList1Aggressive
//   - Table 1, row "March ABL1" -> BenchmarkGenerateList2
//   - Table 1, CPU-time column baselines (fault simulation of the published
//     tests) -> BenchmarkSimulate*
//   - Figure 2 (memory model G0) -> BenchmarkFigure2G0
//   - Figure 4 (pattern graph PG_CF) -> BenchmarkFigure4PatternGraph
//
// plus micro-benchmarks of the substrates (fault list enumeration, single
// fault detection, parsing) that dominate those paths. The absolute times
// land in EXPERIMENTS.md next to the paper's 2006-laptop numbers.

import (
	"io"
	"testing"

	"marchgen"
)

func benchGenerate(b *testing.B, faults []marchgen.Fault, opts marchgen.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := marchgen.Generate(faults, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Report.Full() {
			b.Fatalf("incomplete coverage: %s", res.Report.Summary())
		}
	}
}

// Table 1, row 1 (March ABL, Fault List #1, paper: 1.03 s on a 2006 laptop).
func BenchmarkGenerateList1(b *testing.B) {
	benchGenerate(b, marchgen.List1(), marchgen.Options{Name: "ABL-repro"})
}

// Table 1, row 2 (March RABL: the aggressive minimization profile,
// paper: 1.35 s).
func BenchmarkGenerateList1Aggressive(b *testing.B) {
	benchGenerate(b, marchgen.List1(), marchgen.Options{Name: "RABL-repro", Aggressive: true})
}

// Table 1, row 3 (March ABL1, Fault List #2, paper: 0.98 s).
func BenchmarkGenerateList2(b *testing.B) {
	benchGenerate(b, marchgen.List2(), marchgen.Options{Name: "ABL1-repro"})
}

func benchSimulate(b *testing.B, name string, faults []marchgen.Fault) {
	b.Helper()
	m, ok := marchgen.MarchByName(name)
	if !ok {
		b.Fatalf("unknown march %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := marchgen.Simulate(m, faults)
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// Certification cost of the hand-made state of the art on Fault List #1
// (the Section 6 fault-simulation step for the 41n baseline).
func BenchmarkSimulateMarchSLList1(b *testing.B) {
	benchSimulate(b, "March SL", marchgen.List1())
}

// Certification cost of the paper's published result on Fault List #1.
func BenchmarkSimulateMarchABLList1(b *testing.B) {
	benchSimulate(b, "March ABL", marchgen.List1())
}

// Certification cost on Fault List #2.
func BenchmarkSimulateMarchLF1List2(b *testing.B) {
	benchSimulate(b, "March LF1", marchgen.List2())
}

// Figure 2: building the fault-free 2-cell memory model G0 and rendering it.
func BenchmarkFigure2G0(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := marchgen.PatternDOT(io.Discard, 2, nil, "G0"); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 4: building and rendering the pattern graph of the linked disturb
// coupling fault of eq. (12).
func BenchmarkFigure4PatternGraph(b *testing.B) {
	lf, err := marchgen.LinkFaults(marchgen.LF2aa, "<0w1;0/1/->", "<1w0;1/0/->")
	if err != nil {
		b.Fatal(err)
	}
	faults := []marchgen.Fault{lf}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := marchgen.PatternDOT(io.Discard, 2, faults, "PGCF"); err != nil {
			b.Fatal(err)
		}
	}
}

// Enumerating Fault List #1 from the linking predicate (the input side of
// every Table 1 row).
func BenchmarkFaultListEnumeration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(marchgen.List1()); got != 594 {
			b.Fatalf("List1 size %d", got)
		}
	}
}

// Single-fault detection: the unit of work inside both the repair loop and
// the minimizer (a three-cell linked fault is the worst case).
func BenchmarkDetectsFaultLF3(b *testing.B) {
	lf, err := marchgen.LinkFaults(marchgen.LF3, "<0w1;0/1/->", "<0w1;1/0/->")
	if err != nil {
		b.Fatal(err)
	}
	m, _ := marchgen.MarchByName("March SL")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det, err := marchgen.Detects(m, lf)
		if err != nil {
			b.Fatal(err)
		}
		if !det {
			b.Fatal("March SL must detect the LF3")
		}
	}
}

// Dynamic-fault extension: generation for the 66 two-operation dynamic
// faults (the ETS 2005 companion scope).
func BenchmarkGenerateDynamic(b *testing.B) {
	benchGenerate(b, marchgen.DynamicFaults(), marchgen.Options{Name: "DYN"})
}

// Certification of March RAW against the dynamic list (26n × 66 faults).
func BenchmarkSimulateMarchRAWDynamic(b *testing.B) {
	m, ok := marchgen.MarchByName("March RAW")
	if !ok {
		b.Fatal("March RAW missing")
	}
	faults := marchgen.DynamicFaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := marchgen.Simulate(m, faults)
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the minimization phase (DESIGN.md design choice). The custom
// "ops/cell" metric reports the length of the produced test, so the bench
// output shows both the time saved and the length cost of skipping it.
func BenchmarkAblationNoMinimizeList1(b *testing.B) {
	b.ReportAllocs()
	var length int
	for i := 0; i < b.N; i++ {
		res, err := marchgen.Generate(marchgen.List1(), marchgen.Options{Name: "ABLATE", SkipMinimize: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Report.Full() {
			b.Fatal("incomplete coverage")
		}
		length = res.Test.Length()
	}
	b.ReportMetric(float64(length), "ops/cell")
}

// Ablation: the order-constrained profile (the Section 7 extension) on
// Fault List #2.
func BenchmarkAblationUpOnlyList2(b *testing.B) {
	b.ReportAllocs()
	var length int
	for i := 0; i < b.N; i++ {
		res, err := marchgen.Generate(marchgen.List2(), marchgen.Options{Name: "UP", Orders: marchgen.OrderUpOnly})
		if err != nil {
			b.Fatal(err)
		}
		length = res.Test.Length()
	}
	b.ReportMetric(float64(length), "ops/cell")
}

// Baseline for the ablations: the default profile, with the length metric.
func BenchmarkAblationDefaultList1(b *testing.B) {
	b.ReportAllocs()
	var length int
	for i := 0; i < b.N; i++ {
		res, err := marchgen.Generate(marchgen.List1(), marchgen.Options{Name: "DEF"})
		if err != nil {
			b.Fatal(err)
		}
		length = res.Test.Length()
	}
	b.ReportMetric(float64(length), "ops/cell")
}

// Parsing march notation (tooling hot path).
func BenchmarkParseMarch(b *testing.B) {
	spec := "c(w0) ^(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1) ^(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0) v(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1) v(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := marchgen.ParseMarch("March SL", spec); err != nil {
			b.Fatal(err)
		}
	}
}
