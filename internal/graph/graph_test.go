package graph

import (
	"bytes"
	"strings"
	"testing"

	"marchgen/internal/automaton"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
)

// Figure 2: the fault-free 2-cell model G0 has 4 states and, per state, one
// edge per alphabet member (w0/w1/r on each cell plus t): 7 edges, 28 total.
func TestG0StructureFigure2(t *testing.T) {
	g, err := G0(2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Fatalf("|V| = %d, want 4", g.NumStates())
	}
	if len(g.FaultFree) != 28 {
		t.Fatalf("|E| = %d, want 28", len(g.FaultFree))
	}
	if len(g.Faulty) != 0 {
		t.Fatal("G0 must have no faulty edges")
	}
	for s := automaton.State(0); s < 4; s++ {
		edges := g.EdgesFrom(s)
		if len(edges) != 7 {
			t.Errorf("state %s has %d outgoing edges, want 7", s.Format(2), len(edges))
		}
		for _, e := range edges {
			op := e.Ops[0]
			switch op.Op.Kind {
			case fp.OpRead, fp.OpWait:
				if e.To != e.From {
					t.Errorf("%s edge from %s must be a self loop", e.Label(), s.Format(2))
				}
			case fp.OpWrite:
				want := e.From.WithCell(op.Cell, op.Op.Data)
				if e.To != want {
					t.Errorf("edge %s from %s goes to %s, want %s",
						e.Label(), e.From.Format(2), e.To.Format(2), want.Format(2))
				}
			}
		}
	}
}

// Spot-check Figure 2's labels: from state 00, ri outputs 0 and w1j moves to
// 01 with output '-'.
func TestG0LabelsMatchFigure2(t *testing.T) {
	g, err := G0(2)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]automaton.State{}
	for _, e := range g.EdgesFrom(0) {
		labels[e.Label()] = e.To
	}
	if to, ok := labels["ri/0"]; !ok || to != 0 {
		t.Errorf("missing self-loop ri/0 on state 00: %v", labels)
	}
	if to, ok := labels["w1j/-"]; !ok || to.Format(2) != "01" {
		t.Errorf("w1j from 00 must reach 01: %v", labels)
	}
	if to, ok := labels["t/-"]; !ok || to != 0 {
		t.Errorf("missing wait self-loop: %v", labels)
	}
}

// G0 agrees with the automaton on every edge (model/graph cross-check).
func TestG0AgreesWithAutomaton(t *testing.T) {
	g, err := G0(3)
	if err != nil {
		t.Fatal(err)
	}
	m := automaton.MustNew(3)
	for _, e := range g.FaultFree {
		to, err := m.Delta(e.From, e.Ops[0])
		if err != nil {
			t.Fatal(err)
		}
		if to != e.To {
			t.Errorf("edge %s: δ disagrees", e.Label())
		}
		out, err := m.Lambda(e.From, e.Ops[0])
		if err != nil {
			t.Fatal(err)
		}
		if out != e.Out {
			t.Errorf("edge %s: λ disagrees", e.Label())
		}
	}
}

// Figure 4: the pattern graph of the linked disturb coupling fault (eq. 12)
// on the 2-cell model has exactly two faulty edges, 00→11 labeled
// "w1i,r0j" and 11→00 labeled "w0i,r1j".
func TestPatternGraphFigure4(t *testing.T) {
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Pattern(2, []linked.Fault{lf})
	if err != nil {
		t.Fatal(err)
	}
	// Both placements (a=0,v=1) and (a=1,v=0) contribute one chain each:
	// 4 faulty edges total, of which the (a=0,v=1) pair reproduces Figure 4.
	if len(g.Faulty) != 4 {
		t.Fatalf("%d faulty edges, want 4 (two placements × TP pair)", len(g.Faulty))
	}
	labels := map[string]string{}
	for _, e := range g.Faulty {
		labels[e.From.Format(2)+">"+e.To.Format(2)] = e.Label()
	}
	if got := labels["00>11"]; got != "w1i,r0j" && got != "w1j,r0i" {
		t.Errorf("faulty edge 00→11 labeled %q", got)
	}
	if got := labels["11>00"]; got != "w0i,r1j" && got != "w0j,r1i" {
		t.Errorf("faulty edge 11→00 labeled %q", got)
	}
	for _, e := range g.Faulty {
		if e.FaultID != lf.ID() {
			t.Errorf("faulty edge carries fault ID %q", e.FaultID)
		}
	}
}

func TestPatternGraphSimpleFault(t *testing.T) {
	simple, err := linked.NewSimple(fp.MustParseFP("<0w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Pattern(2, []linked.Fault{simple})
	if err != nil {
		t.Fatal(err)
	}
	// 2 victims × 2 bystander values = 4 faulty edges.
	if len(g.Faulty) != 4 {
		t.Fatalf("%d faulty edges, want 4", len(g.Faulty))
	}
	for _, e := range g.Faulty {
		// TF: edge from xv=0 state to the state where the victim stays 0
		// while the fault-free machine would hold 1 — the edge target is the
		// faulty state.
		if e.TP.Target != e.To {
			t.Error("faulty edge target must be the TP's faulty state")
		}
		if len(e.Ops) != 2 {
			t.Errorf("TF faulty edge ops = %v, want excitation+observation", e.Ops)
		}
	}
}

func TestPatternGraphRejectsOversizedFault(t *testing.T) {
	lf3, err := linked.NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pattern(2, []linked.Fault{lf3}); err == nil {
		t.Error("3-cell fault on a 2-cell graph must error")
	}
}

func TestFaultyByFault(t *testing.T) {
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	simple, err := linked.NewSimple(fp.MustParseFP("<0w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Pattern(2, []linked.Fault{lf, simple})
	if err != nil {
		t.Fatal(err)
	}
	grouped := g.FaultyByFault()
	if len(grouped) != 2 {
		t.Fatalf("%d fault groups, want 2", len(grouped))
	}
	if len(grouped[lf.ID()]) != 4 || len(grouped[simple.ID()]) != 4 {
		t.Errorf("group sizes: %d, %d", len(grouped[lf.ID()]), len(grouped[simple.ID()]))
	}
}

func TestAddTPDeduplicates(t *testing.T) {
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Pattern(2, []linked.Fault{lf, lf})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Faulty) != 4 {
		t.Errorf("duplicate fault added duplicate edges: %d", len(g.Faulty))
	}
}

func TestDOTOutput(t *testing.T) {
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Pattern(2, []linked.Fault{lf})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.DOT(&buf, "PGCF"); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{
		"digraph \"PGCF\"",
		"s0 [label=\"00\"]",
		"s3 [label=\"11\"]",
		"style=bold",
		"w1i,r0j",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}
