package cliflag

import "testing"

func TestParseLanes(t *testing.T) {
	for _, s := range []string{"", "on", "true", "1"} {
		off, err := ParseLanes(s)
		if err != nil || off {
			t.Fatalf("ParseLanes(%q) = (%v, %v), want lanes on", s, off, err)
		}
	}
	for _, s := range []string{"off", "false", "0"} {
		off, err := ParseLanes(s)
		if err != nil || !off {
			t.Fatalf("ParseLanes(%q) = (%v, %v), want lanes off", s, off, err)
		}
	}
	if _, err := ParseLanes("maybe"); err == nil {
		t.Fatal("ParseLanes(\"maybe\") accepted, want error")
	}
}
