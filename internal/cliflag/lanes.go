// Package cliflag holds small flag-parsing helpers shared by the commands
// under cmd/, so every tool spells a shared knob the same way.
package cliflag

import "fmt"

// LanesUsage is the shared help text of the -lanes flag.
const LanesUsage = "bit-parallel simulation lanes: on (default) or off (force the scalar engine)"

// ParseLanes interprets the -lanes flag the simulator-facing commands
// share: "on" (the default) runs the bit-parallel lane engine of
// internal/sim, "off" forces the scalar path everywhere. Lane mode never
// changes verdicts or witnesses — the flag exists as an escape hatch and
// for benchmarking the two engines against each other. The return value is
// the sim.Config.DisableLanes setting the spelling selects.
func ParseLanes(s string) (disableLanes bool, err error) {
	switch s {
	case "", "on", "true", "1":
		return false, nil
	case "off", "false", "0":
		return true, nil
	}
	return false, fmt.Errorf("invalid -lanes %q (want on or off)", s)
}
