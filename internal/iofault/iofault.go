// Package iofault is the fault-injection seam of the durable storage
// stack (DESIGN.md §10): a minimal filesystem interface covering exactly
// the mutating operations the result store performs (create, write,
// truncate, fsync, rename, directory sync), a passthrough implementation
// over the real OS, and a deterministic injector that fails a chosen
// operation with a chosen fault.
//
// The point is the same discipline the paper applies to memory faults:
// a durability claim is only trustworthy once the fault it defends
// against has been sensitized and observed. The store's crash-safety
// contract ("SIGKILL at any instant loses nothing committed") is proven
// by sweeping Crash plans over *every* mutating operation index of a
// campaign run and asserting that resume is byte-identical — see the
// crash-matrix test in internal/campaign.
//
// Fault plans are deterministic, not random: the injector counts the
// mutating operations as they happen (the store's write path is
// single-threaded through the committer, so the sequence is identical
// from run to run) and fires at the planned index. A sweep over
// [0, Ops()) therefore covers every reachable fault point exactly once.
package iofault

import (
	"io"
	"os"
)

// File is the subset of *os.File the store's write path uses.
type File interface {
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Sync() error
	Name() string
}

// FS is the filesystem seam: every path the durable store mutates (or
// reads during recovery) goes through one of these. The *os.File-backed
// implementation is OS; Injector wraps any FS with a fault plan.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
