package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// script drives a fixed sequence of mutating ops through an FS and
// returns the first error. The sequence is: create+write+sync+close a
// temp file (ops 0,1), rename it (op 2), sync the directory (op 3),
// append+sync a data file (ops 4,5), truncate it (op 6).
func script(fs FS, dir string) error {
	tmp, err := fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write([]byte("checkpoint")); err != nil { // op 0
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil { // op 1
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	final := filepath.Join(dir, "final")
	if err := fs.Rename(tmp.Name(), final); err != nil { // op 2
		return err
	}
	if err := fs.SyncDir(dir); err != nil { // op 3
		return err
	}
	data, err := fs.OpenFile(filepath.Join(dir, "data"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer data.Close()
	if _, err := data.Write([]byte("record\n")); err != nil { // op 4
		return err
	}
	if err := data.Sync(); err != nil { // op 5
		return err
	}
	return data.Truncate(3) // op 6
}

const scriptOps = 7

func TestCountingRun(t *testing.T) {
	in := NewInjector(nil, Plan{})
	if err := script(in, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if in.Ops() != scriptOps {
		t.Fatalf("counted %d ops, want %d", in.Ops(), scriptOps)
	}
	if in.Fired() {
		t.Fatal("counting run fired a fault")
	}
}

func TestFailOpFailsExactlyOne(t *testing.T) {
	for n := 0; n < scriptOps; n++ {
		in := NewInjector(nil, Plan{Op: n, Kind: FailOp})
		err := script(in, t.TempDir())
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: err = %v, want ErrInjected", n, err)
		}
		if !in.Fired() {
			t.Fatalf("op %d: fault did not fire", n)
		}
	}
	// A plan beyond the op stream never fires.
	in := NewInjector(nil, Plan{Op: scriptOps, Kind: FailOp})
	if err := script(in, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if in.Fired() {
		t.Fatal("out-of-range plan fired")
	}
}

func TestENOSPC(t *testing.T) {
	in := NewInjector(nil, Plan{Op: 0, Kind: ENOSPC})
	err := script(in, t.TempDir())
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
}

func TestShortWriteTearsTheWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, Plan{Op: 4, Kind: ShortWrite})
	err := script(in, dir)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	b, rerr := os.ReadFile(filepath.Join(dir, "data"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(b) != "rec" { // half of "record\n"
		t.Fatalf("data = %q, want the torn half %q", b, "rec")
	}
}

func TestShortWriteOnNonWriteDegradesToFail(t *testing.T) {
	in := NewInjector(nil, Plan{Op: 2, Kind: ShortWrite}) // op 2 is a rename
	if err := script(in, t.TempDir()); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestSyncErrHitsFirstSyncAtOrAfterN(t *testing.T) {
	// Op 2 is a rename; the first sync at index >= 2 is the dir sync (op 3).
	dir := t.TempDir()
	in := NewInjector(nil, Plan{Op: 2, Kind: SyncErr})
	err := script(in, dir)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The rename before the failing dir sync happened.
	if _, err := os.Stat(filepath.Join(dir, "final")); err != nil {
		t.Fatalf("rename before the failed sync was lost: %v", err)
	}
}

func TestCrashStopsEverythingButKeepsBytes(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, Plan{Op: 2, Kind: Crash}) // crash at the rename
	err := script(in, dir)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Ops 0-1 happened: the temp file exists with its bytes.
	m, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil || len(m) != 1 {
		t.Fatalf("temp files = %v (err %v), want the pre-crash temp file", m, err)
	}
	b, err := os.ReadFile(m[0])
	if err != nil || string(b) != "checkpoint" {
		t.Fatalf("pre-crash bytes = %q (err %v)", b, err)
	}
	// The rename never happened, and post-crash ops are refused.
	if _, err := os.Stat(filepath.Join(dir, "final")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("crashed rename completed: %v", err)
	}
	if err := in.MkdirAll(filepath.Join(dir, "x"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash MkdirAll = %v, want ErrCrashed", err)
	}
	if _, err := in.CreateTemp(dir, "y-*"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash CreateTemp = %v, want ErrCrashed", err)
	}
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	if err := script(fs, dir); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(filepath.Join(dir, "final"))
	if err != nil || string(b) != "checkpoint" {
		t.Fatalf("final = %q (err %v)", b, err)
	}
	st, err := os.Stat(filepath.Join(dir, "data"))
	if err != nil || st.Size() != 3 {
		t.Fatalf("data size = %v (err %v), want 3 after truncate", st.Size(), err)
	}
}
