package iofault

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
)

// Kind selects the fault an Injector fires at its planned operation.
type Kind int

const (
	// None injects nothing; the injector just counts mutating operations.
	// A counting run over a deterministic write path yields Ops(), the
	// exclusive upper bound of a fault-plan sweep.
	None Kind = iota
	// FailOp fails operation N with a generic injected I/O error.
	FailOp
	// ENOSPC fails operation N with syscall.ENOSPC (disk full).
	ENOSPC
	// ShortWrite makes operation N, if it is a write, persist only half
	// its bytes before failing (the torn-append case); on a non-write
	// operation it degrades to FailOp.
	ShortWrite
	// SyncErr fails the first fsync (file or directory) at operation
	// index >= N. Sweeping N over all indices covers every sync point.
	SyncErr
	// Crash simulates process death at operation N: that operation and
	// every mutating operation after it fail without touching the disk.
	// Bytes already written stay — exactly the state SIGKILL leaves.
	Crash
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case FailOp:
		return "fail"
	case ENOSPC:
		return "enospc"
	case ShortWrite:
		return "short-write"
	case SyncErr:
		return "sync-err"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Plan is one deterministic fault: fire Kind at the Op-th mutating
// operation (0-based). The zero Plan injects nothing.
type Plan struct {
	Op   int
	Kind Kind
}

// Sentinel errors of injected faults. Injected errors wrap one of these
// (or syscall.ENOSPC), so callers can tell an injected fault from a real
// filesystem failure.
var (
	ErrInjected = errors.New("iofault: injected I/O error")
	ErrCrashed  = errors.New("iofault: injected crash")
)

// opClass classifies a counted mutating operation for kind-specific
// faults (short writes only tear writes, sync errors only hit syncs).
type opClass int

const (
	opWrite opClass = iota
	opSync
	opOther
)

// Injector wraps an FS with a fault plan. The counted mutating
// operations are file writes, file truncates, file syncs, renames and
// directory syncs — the operations whose failure or omission can affect
// durability. Creation-path operations (MkdirAll, CreateTemp, Remove,
// OpenFile) are not counted but are refused once a Crash has fired.
// Safe for concurrent use.
type Injector struct {
	inner FS
	plan  Plan

	mu      sync.Mutex
	ops     int
	fired   bool
	crashed bool
}

// NewInjector wraps inner (nil means the real OS) with the given plan.
func NewInjector(inner FS, plan Plan) *Injector {
	if inner == nil {
		inner = OS{}
	}
	return &Injector{inner: inner, plan: plan}
}

// Ops returns how many mutating operations have been counted so far.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Fired reports whether the planned fault has fired.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// step counts one mutating operation and decides its fate: err non-nil
// fails the operation without performing it; short true (writes only)
// tears the write in half.
func (in *Injector) step(class opClass) (short bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return false, ErrCrashed
	}
	n := in.ops
	in.ops++
	switch in.plan.Kind {
	case Crash:
		if n >= in.plan.Op {
			in.crashed = true
			in.fired = true
			return false, fmt.Errorf("%w at op %d", ErrCrashed, n)
		}
	case SyncErr:
		if class == opSync && n >= in.plan.Op && !in.fired {
			in.fired = true
			return false, fmt.Errorf("%w: fsync failed at op %d", ErrInjected, n)
		}
	case FailOp:
		if n == in.plan.Op {
			in.fired = true
			return false, fmt.Errorf("%w at op %d", ErrInjected, n)
		}
	case ENOSPC:
		if n == in.plan.Op {
			in.fired = true
			return false, fmt.Errorf("iofault: op %d: %w", n, syscall.ENOSPC)
		}
	case ShortWrite:
		if n == in.plan.Op {
			in.fired = true
			if class == opWrite {
				return true, nil
			}
			return false, fmt.Errorf("%w at op %d", ErrInjected, n)
		}
	}
	return false, nil
}

// gate refuses uncounted operations after a crash has fired.
func (in *Injector) gate() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := in.gate(); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	return in.inner.ReadFile(path)
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := in.gate(); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inner: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.gate(); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{inner: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.step(opOther); err != nil {
		return fmt.Errorf("rename %s: %w", newpath, err)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.gate(); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	if _, err := in.step(opSync); err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return in.inner.SyncDir(dir)
}

// injFile wraps a File so its mutating methods pass through the plan.
type injFile struct {
	inner File
	in    *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	short, err := f.in.step(opWrite)
	if err != nil {
		return 0, fmt.Errorf("write %s: %w", f.inner.Name(), err)
	}
	if short {
		n, werr := f.inner.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n, len(p))
	}
	return f.inner.Write(p)
}

func (f *injFile) Truncate(size int64) error {
	if _, err := f.in.step(opOther); err != nil {
		return fmt.Errorf("truncate %s: %w", f.inner.Name(), err)
	}
	return f.inner.Truncate(size)
}

func (f *injFile) Sync() error {
	if _, err := f.in.step(opSync); err != nil {
		return fmt.Errorf("sync %s: %w", f.inner.Name(), err)
	}
	return f.inner.Sync()
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *injFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }
func (f *injFile) Close() error               { return f.inner.Close() }
func (f *injFile) Name() string               { return f.inner.Name() }
