package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"

	"marchgen/internal/core"
	"marchgen/internal/iofault"
	"marchgen/internal/store"
)

// ErrNeedsResume is returned by Run when the store directory holds prior
// partial progress for the same spec and resumption was not requested:
// silently continuing or silently restarting would both be surprising.
var ErrNeedsResume = errors.New("campaign: store holds prior progress for this spec; pass resume to continue")

// Event kinds delivered to RunOptions.OnEvent.
const (
	// EventUnitDone fires after each unit executes (before its shard
	// commits); Seq and Err describe the unit.
	EventUnitDone = "unit-done"
	// EventShardCommitted fires after a shard's records are durably
	// committed; Shard is the shard just committed, Committed the new count.
	EventShardCommitted = "shard-committed"
)

// Event is one progress notification. Events are delivered serially (the
// engine holds a lock around the callback) but from engine goroutines, not
// the Run caller's.
type Event struct {
	Kind      string
	Shard     int
	Seq       int
	Committed int
	Err       string
}

// RunOptions tunes one Run call.
type RunOptions struct {
	// Workers bounds the number of shards executing concurrently;
	// 0 means GOMAXPROCS.
	Workers int
	// Resume permits continuing a store with prior partial progress.
	// Without it, Run on a partially-complete directory fails with
	// ErrNeedsResume. A complete campaign is always returned as-is.
	Resume bool
	// OnEvent, when set, receives progress events.
	OnEvent func(Event)
	// FS, when set, carries every mutating store I/O operation of this
	// run — the fault-injection seam the chaos suite drives with an
	// iofault.Injector. Nil means the real filesystem.
	FS iofault.FS
	// DisableLanes forces the scalar simulation engine for every unit of
	// this run. Unit results are deterministic either way (lane mode never
	// changes verdicts), so the flag cannot change any stored record — it
	// exists for benchmarking and as an escape hatch.
	DisableLanes bool
}

func (o RunOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Summary describes a finished (or already-finished) campaign run.
type Summary struct {
	ID          string `json:"id"`
	SpecHash    string `json:"spec_hash"`
	Dir         string `json:"dir"`
	Shards      int    `json:"shards"`
	Units       int    `json:"units"`
	ResumedFrom int    `json:"resumed_from_shards"`
	UnitErrors  int    `json:"unit_errors"`
}

// specFileName holds the human-readable campaign identity inside the store
// directory (the canonical spec plus its hash), written once and atomically.
const specFileName = "spec.json"

// SpecFile is the on-disk form of spec.json.
type SpecFile struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
	Spec Spec   `json:"spec"`
}

// Dir returns the store directory of a spec under the given root.
func (s Spec) Dir(root string) string { return filepath.Join(root, s.ID()) }

// EnsureSpecFile writes dir/spec.json for the canonical spec if it is not
// already present. Both the single-node engine and the fabric coordinator
// go through it, so a campaign directory carries the same spec.json bytes
// whichever path created it.
func EnsureSpecFile(fsys iofault.FS, dir string, c Spec) error {
	if fsys == nil {
		fsys = iofault.OS{}
	}
	if _, err := os.Stat(filepath.Join(dir, specFileName)); !errors.Is(err, os.ErrNotExist) {
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		return nil
	}
	sf, err := json.Marshal(SpecFile{ID: c.ID(), Hash: c.Hash(), Spec: c})
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return store.WriteFileAtomicFS(fsys, filepath.Join(dir, specFileName), sf)
}

// LoadSpecFile reads the spec.json of a campaign directory.
func LoadSpecFile(dir string) (SpecFile, error) {
	raw, err := os.ReadFile(filepath.Join(dir, specFileName))
	if err != nil {
		return SpecFile{}, fmt.Errorf("campaign: %w", err)
	}
	var sf SpecFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return SpecFile{}, fmt.Errorf("campaign: spec.json corrupt: %w", err)
	}
	return sf, nil
}

// shardOut is a worker's finished shard, delivered to the committer.
type shardOut struct {
	idx  int
	recs []store.Record
	err  error
}

// Run executes (or resumes) the campaign described by spec, with its store
// rooted at root/<campaign-id>. It returns once every shard is committed,
// the context is canceled, or an infrastructure error occurs. Shards are
// executed concurrently but committed strictly in plan order, and the
// checkpoint advances atomically after each commit — killing the process at
// any instant and re-running with Resume yields a result set byte-identical
// to an uninterrupted run.
func Run(ctx context.Context, spec Spec, root string, opts RunOptions) (Summary, error) {
	if err := spec.Validate(); err != nil {
		return Summary{}, err
	}
	c := spec.Canonical()
	hash := c.Hash()
	shards := Plan(c)
	dir := c.Dir(root)

	fsys := opts.FS
	if fsys == nil {
		fsys = iofault.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return Summary{}, fmt.Errorf("campaign: %w", err)
	}
	if err := EnsureSpecFile(fsys, dir, c); err != nil {
		return Summary{}, err
	}

	st, err := store.OpenFS(dir, hash, fsys)
	if err != nil {
		return Summary{}, err
	}
	defer st.Close()

	start := st.Checkpoint().Shards
	switch {
	case start >= len(shards):
		return summarize(c, dir, st, start) // already complete: idempotent
	case start > 0 && !opts.Resume:
		return Summary{}, fmt.Errorf("%w (%d/%d shards committed in %s)", ErrNeedsResume, start, len(shards), dir)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		eventMu sync.Mutex
		memo    = NewMemo()
	)
	emit := func(ev Event) {
		if opts.OnEvent == nil {
			return
		}
		eventMu.Lock()
		defer eventMu.Unlock()
		opts.OnEvent(ev)
	}

	shardCh := make(chan Shard)
	outCh := make(chan shardOut)
	var wg sync.WaitGroup
	for i := 0; i < opts.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range shardCh {
				outCh <- safeRunShard(runCtx, sh, memo, emit, opts.DisableLanes)
			}
		}()
	}
	go func() {
		defer close(shardCh)
		for _, sh := range shards[start:] {
			select {
			case shardCh <- sh:
			case <-runCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// The committer: shards complete in any order, but the store only ever
	// grows by the next shard in plan order, each commit advancing the
	// atomic checkpoint. Out-of-order completions wait in pending.
	pending := make(map[int][]store.Record)
	next := start
	var firstErr error
	for out := range outCh {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
				cancel() // stop handing out further shards
			}
			continue
		}
		if firstErr != nil {
			continue // drain only: nothing commits after the first failure
		}
		pending[out.idx] = out.recs
		for {
			recs, ok := pending[next]
			if !ok {
				break
			}
			// Cancellation is honored *between* shard commits: once the
			// context dies, the store stays at its last checkpoint even if
			// later shards already finished executing — the same state a
			// SIGKILL between shards leaves behind.
			if err := runCtx.Err(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			delete(pending, next)
			commitErr := func() error {
				for _, r := range recs {
					if err := st.Append(r); err != nil {
						return err
					}
				}
				return st.Commit(next + 1)
			}()
			if commitErr != nil {
				if firstErr == nil {
					firstErr = commitErr
					cancel()
				}
				break
			}
			next++
			emit(Event{Kind: EventShardCommitted, Shard: next - 1, Committed: next})
		}
	}
	if firstErr != nil {
		return Summary{}, firstErr
	}
	return summarize(c, dir, st, start)
}

// safeRunShard contains panics from a shard's unit work (or a panicking
// OnEvent callback): instead of killing the worker goroutine — which
// would deadlock the committer and poison the whole pool — a panic fails
// the shard with its captured stack, and the campaign aborts cleanly at
// the last committed checkpoint.
func safeRunShard(ctx context.Context, sh Shard, memo *Memo, emit func(Event), lanesOff bool) (out shardOut) {
	defer func() {
		if r := recover(); r != nil {
			out = shardOut{idx: sh.ID, err: fmt.Errorf("campaign: shard %d panicked: %v\n%s", sh.ID, r, debug.Stack())}
		}
	}()
	return runShard(ctx, sh, memo, emit, lanesOff)
}

// runShard executes a shard's units in order, aborting on the first
// infrastructure error (cancellation).
func runShard(ctx context.Context, sh Shard, memo *Memo, emit func(Event), lanesOff bool) shardOut {
	recs := make([]store.Record, 0, len(sh.Units))
	for _, u := range sh.Units {
		if err := ctx.Err(); err != nil {
			return shardOut{idx: sh.ID, err: err}
		}
		res, err := runUnitMemo(ctx, u, memo, lanesOff)
		if err != nil {
			return shardOut{idx: sh.ID, err: err}
		}
		body, err := marshalResult(res)
		if err != nil {
			return shardOut{idx: sh.ID, err: err}
		}
		recs = append(recs, store.Record{ID: u.ID(), Shard: sh.ID, Seq: u.Seq, Body: body})
		emit(Event{Kind: EventUnitDone, Shard: sh.ID, Seq: u.Seq, Err: res.Error})
	}
	return shardOut{idx: sh.ID, recs: recs}
}

// ExecuteShard runs one shard of a plan and returns its records in exactly
// the committed form — the worker half of the distributed fabric
// (internal/fabric). Records are deterministic functions of the shard's
// units, so two workers executing the same shard produce identical bytes.
func ExecuteShard(ctx context.Context, sh Shard, memo *Memo, disableLanes bool) ([]store.Record, error) {
	out := safeRunShard(ctx, sh, memo, func(Event) {}, disableLanes)
	return out.recs, out.err
}

func summarize(c Spec, dir string, st *store.Store, resumedFrom int) (Summary, error) {
	recs, err := st.Records()
	if err != nil {
		return Summary{}, err
	}
	unitErrs := 0
	for _, r := range recs {
		var doc struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(r.Body, &doc) == nil && doc.Error != "" {
			unitErrs++
		}
	}
	return Summary{
		ID:          c.ID(),
		SpecHash:    c.Hash(),
		Dir:         dir,
		Shards:      st.Checkpoint().Shards,
		Units:       st.Checkpoint().Records,
		ResumedFrom: resumedFrom,
		UnitErrors:  unitErrs,
	}, nil
}

// Memo deduplicates generation work across units that share generator
// coordinates (list, profile, order, size) and differ only in derived axes
// (width, topology, verify, optimize): the first unit generates, the rest
// reuse the result.
// Results are deterministic, so memoization cannot change any record — which
// is also why fabric workers can each hold a private Memo without breaking
// the byte-identity of the merged result set.
type Memo struct {
	mu sync.Mutex
	m  map[string]*genEntry
}

type genEntry struct {
	once sync.Once
	res  core.Result
	err  error
}

// NewMemo returns an empty generation memo, shareable across ExecuteShard
// calls of one process.
func NewMemo() *Memo { return &Memo{m: make(map[string]*genEntry)} }

// runUnitMemo is runUnit with the generation step memoized on the unit's
// generator coordinates.
func runUnitMemo(ctx context.Context, u Unit, memo *Memo, lanesOff bool) (UnitResult, error) {
	if memo == nil {
		return runUnit(ctx, u, lanesOff)
	}
	key := fmt.Sprintf("%s|%s|%s|%d", u.List, u.Profile, u.Order, u.Size)
	memo.mu.Lock()
	e, ok := memo.m[key]
	if !ok {
		e = &genEntry{}
		memo.m[key] = e
	}
	memo.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = generateForUnit(ctx, u, lanesOff)
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// A canceled generation must not poison the memo for a later
		// resume within the same process.
		memo.mu.Lock()
		if memo.m[key] == e {
			delete(memo.m, key)
		}
		memo.mu.Unlock()
		return UnitResult{Unit: u}, e.err
	}
	return buildResult(ctx, u, e.res, e.err, lanesOff)
}
