package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"marchgen/internal/bist"
	"marchgen/internal/core"
	"marchgen/internal/faultlist"
	"marchgen/internal/optimize"
	"marchgen/internal/oracle"
	"marchgen/internal/sim"
	"marchgen/internal/word"
)

// defaultBISTCells is the array size BIST costs are estimated for when the
// unit names no topology, and the cycle charge per delay operation. Both are
// fixed constants so result documents stay deterministic.
const (
	defaultBISTCells = 1024
	bistDelayCycles  = 1000
)

// CoverageJSON is the detected/total pair of a certification run.
type CoverageJSON struct {
	Detected int `json:"detected"`
	Total    int `json:"total"`
}

// BISTJSON is the wire form of a BIST cost estimate.
type BISTJSON struct {
	Cells         int   `json:"cells"`
	Cycles        int64 `json:"cycles"`
	Elements      int   `json:"elements"`
	OrderSwitches int   `json:"order_switches"`
	SingleOrder   bool  `json:"single_order"`
}

// WordJSON is the word-oriented evaluation of a unit with width > 1: the
// generated test run against the march-testable intra-word faults of a
// width-bit word under the standard data-background set.
type WordJSON struct {
	Width       int `json:"width"`
	Backgrounds int `json:"backgrounds"`
	Faults      int `json:"faults"`
	Detected    int `json:"detected"`
	// Transparent fields record the in-field variant of a transparent-axis
	// unit (Li et al.): the initialization-free test and its coverage under
	// the representative content set. Omitted for non-transparent units, so
	// pre-axis records are byte-identical.
	Transparent         bool   `json:"transparent,omitempty"`
	TransparentTest     string `json:"transparent_test,omitempty"`
	TransparentDetected int    `json:"transparent_detected,omitempty"`
}

// MportJSON is the two-port evaluation of a ports=2 unit: the weak-fault
// catalog coverage retained by the single-port test when lifted (port B
// idle), plus the dedicated two-port march the directed constructor builds
// for the catalog.
type MportJSON struct {
	Ports          int    `json:"ports"`
	Faults         int    `json:"faults"`
	LiftedDetected int    `json:"lifted_detected"`
	Test           string `json:"test"`
	TestLength     int    `json:"test_length"`
	TestDetected   int    `json:"test_detected"`
}

// TopoJSON reports how the array shape interacts with logical address
// order: the number of logically adjacent address pairs that are not
// physically adjacent (what scrambled/wide arrays hide from march tests).
type TopoJSON struct {
	Rows        int `json:"rows"`
	Cols        int `json:"cols"`
	RemotePairs int `json:"logically_adjacent_physically_remote"`
}

// OptimizeJSON records the optimizer sweep point of a unit with a non-zero
// optimize budget: the search knobs, the certified winner, and the search
// effort actually spent. Length vs Budget across units is the raw material
// of the frontier report. No wall-clock fields — the record must stay a
// pure function of the unit coordinates.
type OptimizeJSON struct {
	Budget      int    `json:"budget"`
	Seed        int64  `json:"seed"`
	SeedLength  int    `json:"seed_length"`
	Length      int    `json:"length"`
	Test        string `json:"test"`
	Evaluations int    `json:"evaluations"`
	Improved    bool   `json:"improved"`
	MoveTrace   string `json:"move_trace"`
	// BISTWeight and BISTCycles record the BIST-aware fitness of a weighted
	// sweep point: the weight applied and the winner's application cost on
	// the unit's array. Both are omitted for the historical pure-length
	// objective (weight 0), so weight-free records are byte-identical.
	BISTWeight float64 `json:"bist_weight,omitempty"`
	BISTCycles int64   `json:"bist_cycles,omitempty"`
}

// VerifyJSON is the differential cross-check of a verify-enabled unit: the
// certified test re-simulated by the independent reference oracle
// (internal/oracle) and compared with the production simulator's verdicts.
// Divergences is 0 when the two implementations agree bit-for-bit; First
// records the first disagreement otherwise.
type VerifyJSON struct {
	Faults      int    `json:"faults"`
	Divergences int    `json:"divergences"`
	First       string `json:"first,omitempty"`
}

// UnitResult is the deterministic result document of one unit: everything
// in it is a pure function of the unit coordinates, so two runs of the same
// unit marshal to byte-identical records. Wall-clock timings are
// deliberately absent — they go to progress events and logs, never to the
// store.
type UnitResult struct {
	Unit     Unit         `json:"unit"`
	Test     string       `json:"test"`
	Length   int          `json:"length"`
	Coverage CoverageJSON `json:"coverage"`
	// Simulations is the generator's candidate-evaluation count (the
	// search-effort column of the sweep).
	Simulations int           `json:"simulations"`
	BIST        BISTJSON      `json:"bist"`
	Word        *WordJSON     `json:"word,omitempty"`
	Mport       *MportJSON    `json:"mport,omitempty"`
	Topo        *TopoJSON     `json:"topo,omitempty"`
	Verify      *VerifyJSON   `json:"verify,omitempty"`
	Optimize    *OptimizeJSON `json:"optimize,omitempty"`
	// Error records a unit-level failure (e.g. a fault list the constrained
	// generator cannot cover). Failed units are results, not run aborts: the
	// error text is deterministic and the sweep continues.
	Error string `json:"error,omitempty"`
}

// runUnit executes one unit: generate a march test for the unit's fault
// list under its profile/order constraints, certify it on a Size-cell
// memory, then evaluate the word-width and topology views. The returned
// document is deterministic; err is non-nil only for infrastructure
// failures (context cancellation), never for fault-coverage outcomes.
func runUnit(ctx context.Context, u Unit, lanesOff bool) (UnitResult, error) {
	gen, err := generateForUnit(ctx, u, lanesOff)
	return buildResult(ctx, u, gen, err, lanesOff)
}

// generateForUnit is the generation step alone: the part units sharing
// (list, profile, order, size) coordinates can reuse (see Memo).
func generateForUnit(ctx context.Context, u Unit, lanesOff bool) (core.Result, error) {
	faults, ok := faultlist.ByName(u.List)
	if !ok {
		return core.Result{}, fmt.Errorf("unknown fault list %q", u.List)
	}
	constraint, err := core.ParseOrderConstraint(u.Order)
	if err != nil {
		return core.Result{}, err
	}
	opts := core.Options{
		Name:        fmt.Sprintf("March CAMP(%s,%s,%s,n=%d)", u.List, u.Profile, u.Order, u.Size),
		Aggressive:  u.Profile == ProfileAggressive,
		Orders:      constraint,
		FinalConfig: sim.Config{Size: u.Size, ExhaustiveOrders: true, DisableLanes: lanesOff},
	}
	return core.GenerateContext(ctx, faults, opts)
}

// buildResult derives the unit's result document from its generation
// outcome: certification coverage, BIST cost on the unit's topology, and
// the word-oriented evaluation. Generation failures with a deterministic
// cause become recorded unit errors; context failures abort the run.
func buildResult(ctx context.Context, u Unit, gen core.Result, err error, lanesOff bool) (UnitResult, error) {
	res := UnitResult{Unit: u}
	if err != nil {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		res.Error = err.Error()
		return res, nil
	}
	res.Test = gen.Test.String()
	res.Length = gen.Test.Length()
	res.Coverage = CoverageJSON{Detected: gen.Report.Detected(), Total: gen.Report.Total()}
	res.Simulations = gen.Stats.Simulations

	bistCells := defaultBISTCells
	if u.Topology != "" {
		tp, err := ParseTopology(u.Topology)
		if err != nil {
			res.Error = err.Error()
			return res, nil
		}
		bistCells = tp.Cells()
		remote, err := tp.LogicallyAdjacentPhysicallyRemote()
		if err != nil {
			res.Error = err.Error()
			return res, nil
		}
		res.Topo = &TopoJSON{Rows: tp.Rows, Cols: tp.Cols, RemotePairs: remote}
	}
	cost := bist.Estimate(gen.Test, bistCells, bistDelayCycles)
	res.BIST = BISTJSON{
		Cells:         bistCells,
		Cycles:        cost.Cycles,
		Elements:      cost.Elements,
		OrderSwitches: cost.OrderSwitches,
		SingleOrder:   cost.SingleOrder,
	}

	if u.OptBudget > 0 {
		faults, ok := faultlist.ByName(u.List)
		if !ok {
			res.Error = fmt.Sprintf("unknown fault list %q", u.List)
			return res, nil
		}
		seed := gen.Test
		opt, err := optimize.RunContext(ctx, faults, optimize.Options{
			Name:       fmt.Sprintf("%s opt(b=%d,s=%d)", gen.Test.Name, u.OptBudget, u.OptSeed),
			Seed:       u.OptSeed,
			Budget:     u.OptBudget,
			SeedTest:   &seed,
			BISTCells:  bistCells,
			BISTWeight: u.OptBISTWeight,
			Config:     sim.Config{Size: u.Size, ExhaustiveOrders: true, DisableLanes: lanesOff},
		})
		if err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			res.Error = err.Error()
			return res, nil
		}
		res.Optimize = &OptimizeJSON{
			Budget:      u.OptBudget,
			Seed:        opt.Test.Prov.Seed,
			SeedLength:  opt.Stats.SeedLength,
			Length:      opt.Test.Length(),
			Test:        opt.Test.String(),
			Evaluations: opt.Stats.Evaluations,
			Improved:    opt.Stats.Improved,
			MoveTrace:   opt.Test.Prov.MoveTrace,
		}
		if u.OptBISTWeight > 0 {
			// The quantity the weighted fitness minimized, recorded on the
			// winner so the report renders the optimized cost, not the
			// generated test's.
			res.Optimize.BISTWeight = u.OptBISTWeight
			res.Optimize.BISTCycles = bist.Estimate(opt.Test, bistCells, bistDelayCycles).Cycles
		}
	}

	if u.Verify {
		faults, ok := faultlist.ByName(u.List)
		if !ok {
			res.Error = fmt.Sprintf("unknown fault list %q", u.List)
			return res, nil
		}
		diffs := oracle.CrossCheck(gen.Test, faults, sim.Config{Size: u.Size, ExhaustiveOrders: true, DisableLanes: lanesOff})
		vj := &VerifyJSON{Faults: len(faults), Divergences: len(diffs)}
		if len(diffs) > 0 {
			vj.First = diffs[0].String()
		}
		res.Verify = vj
	}

	if u.Width > 1 {
		wfaults := word.TestableIntraWordFaults(u.Width)
		bgs, err := word.Backgrounds(u.Width)
		if err != nil {
			res.Error = err.Error()
			return res, nil
		}
		detected, err := word.Coverage(gen.Test, wfaults, bgs, word.Config{Words: 2, Width: u.Width})
		if err != nil {
			res.Error = err.Error()
			return res, nil
		}
		res.Word = &WordJSON{
			Width: u.Width, Backgrounds: len(bgs),
			Faults: len(wfaults), Detected: detected,
		}
		if u.Transparent {
			tt, err := word.Transparent(gen.Test)
			if err != nil {
				res.Error = err.Error()
				return res, nil
			}
			td, err := word.TransparentCoverage(tt, wfaults, bgs, word.Config{Words: 2, Width: u.Width})
			if err != nil {
				res.Error = err.Error()
				return res, nil
			}
			res.Word.Transparent = true
			res.Word.TransparentTest = tt.String()
			res.Word.TransparentDetected = td
		}
	}

	if u.Ports > 1 {
		mres, err := core.EvaluateMport(ctx, gen.Test, u.Ports)
		if err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			res.Error = err.Error()
			return res, nil
		}
		res.Mport = &MportJSON{
			Ports:          mres.Ports,
			Faults:         mres.Faults,
			LiftedDetected: mres.LiftedDetected,
			Test:           mres.Test,
			TestLength:     mres.TestLength,
			TestDetected:   mres.TestDetected,
		}
	}
	return res, nil
}

// marshalResult renders a unit result for the store. Encoding goes through
// one fixed struct so field order — and therefore the byte-identity
// guarantee — is pinned here.
func marshalResult(r UnitResult) (json.RawMessage, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: unit %s: %w", r.Unit.ID(), err)
	}
	return b, nil
}
