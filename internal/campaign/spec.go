// Package campaign is the batch sweep engine (DESIGN.md §9): it expands a
// declarative Spec — the cross-product of fault lists, generator profiles,
// address-order constraints, memory sizes, word widths and array topologies —
// into a deterministic shard plan, executes the shards on a bounded worker
// pool, and records every unit result in the durable append-only store of
// internal/store. A killed campaign resumes from its last atomic checkpoint
// and produces a result set byte-identical to an uninterrupted run.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"marchgen/internal/core"
	"marchgen/internal/faultlist"
	"marchgen/internal/topo"
)

// specSchema versions the campaign identity derivation. Bump it whenever
// the canonical spec encoding, the unit encoding, or the result document
// changes shape: old store directories then refuse to resume instead of
// mixing incompatible records. v3: the optimize axis (budget, seed) joined
// the spec, the unit coordinates and the result document.
const specSchema = "marchcamp/spec/v3"

// SpecSchema is the public name of the identity schema version. The fabric
// join handshake (internal/fabric) exchanges it so a coordinator and its
// workers can refuse to mix records across incompatible derivations.
const SpecSchema = specSchema

// Generator profiles a spec may sweep.
const (
	ProfileStandard   = "standard"   // default minimization (March ABL profile)
	ProfileAggressive = "aggressive" // deeper minimization (March RABL profile)
)

// Spec declares a campaign: every axis is a list of values and the campaign
// is their full cross-product, one generated-and-certified march test per
// combination. Omitted axes default to a single neutral value, so the
// smallest useful spec is just {"lists": ["list2"]}.
type Spec struct {
	// Name labels the campaign in reports; it does not enter the identity.
	Name string `json:"name,omitempty"`
	// Lists are the named fault lists to target (faultlist.Names()).
	Lists []string `json:"lists"`
	// Profiles selects minimization depth: "standard" and/or "aggressive".
	Profiles []string `json:"profiles,omitempty"`
	// Orders are generator order constraints: "free", "up", "down".
	Orders []string `json:"orders,omitempty"`
	// Sizes are memory sizes n (cells) for the exhaustive certification
	// configuration. Default [4], the paper's configuration.
	Sizes []int `json:"sizes,omitempty"`
	// Widths are word widths: width 1 is the paper's bit-oriented memory;
	// width w > 1 additionally evaluates the generated test on the
	// intra-word faults of a w-bit word with the standard log2(w)+1 data
	// backgrounds.
	Widths []int `json:"widths,omitempty"`
	// Ports are port counts: 1 is the paper's single-port memory; 2
	// additionally evaluates the lifted (port B idle) form of each unit's
	// test against the two-port weak-fault catalog. The single-port default
	// is omitted from the canonical form, so pre-axis specs keep their
	// hashes.
	Ports []int `json:"ports,omitempty"`
	// Transparent sweeps the transparent (in-field) transform: true
	// additionally evaluates the transparent form of each width>1 unit's
	// test, which preserves memory content instead of initializing it. The
	// false default is omitted from the canonical form.
	Transparent []bool `json:"transparent,omitempty"`
	// Topologies are array shapes "RxC" (e.g. "8x8"); each unit reports the
	// BIST application cost on that array and how much physical adjacency
	// the shape hides from logical address order.
	Topologies []string `json:"topologies,omitempty"`
	// Verify selects whether each unit's certified test is additionally
	// cross-checked against the independent reference oracle
	// (internal/oracle); the unit result then records the divergence count.
	// Default [false]. A spec of [false, true] sweeps both.
	Verify []bool `json:"verify,omitempty"`
	// Optimize sweeps the search-based optimizer (internal/optimize) over
	// each unit's generated test: every axis value runs the optimizer with
	// that evaluation budget and rng seed, recording the resulting length —
	// the raw material of the length-vs-budget frontier report. The default
	// single value {Budget: 0} disables optimization.
	Optimize []OptAxis `json:"optimize,omitempty"`
	// ShardSize is the number of units per shard (the checkpoint
	// granularity). Default 4.
	ShardSize int `json:"shard_size,omitempty"`
}

// OptAxis is one optimizer sweep point: an evaluation budget (0 = no
// optimization), the rng seed of the run, and the BIST-cycle fitness weight
// (0 = pure length minimization, the historical objective). Seed 0
// canonicalizes to 1, the optimizer's default; BISTWeight is omitted at 0,
// so weight-free specs keep their hashes.
type OptAxis struct {
	Budget     int     `json:"budget"`
	Seed       int64   `json:"seed,omitempty"`
	BISTWeight float64 `json:"bist_weight,omitempty"`
}

// Canonical returns the spec with every default made explicit and
// duplicate axis values removed (first occurrence wins). Axis order is
// preserved — it determines the deterministic unit order — and the result
// is idempotent: the canonical form is what Hash digests and what the
// store binds to.
func (s Spec) Canonical() Spec {
	s.Lists = dedup(s.Lists)
	s.Profiles = dedup(s.Profiles)
	if len(s.Profiles) == 0 {
		s.Profiles = []string{ProfileStandard}
	}
	s.Orders = dedup(s.Orders)
	if len(s.Orders) == 0 {
		s.Orders = []string{"free"}
	}
	s.Sizes = dedupInts(s.Sizes)
	if len(s.Sizes) == 0 {
		s.Sizes = []int{4}
	}
	s.Widths = dedupInts(s.Widths)
	if len(s.Widths) == 0 {
		s.Widths = []int{1}
	}
	// Ports and Transparent canonicalize the other way: the single default
	// value is dropped rather than filled in, so a spec that never mentions
	// the axis hashes identically to one that names only the default —
	// and identically to every pre-axis spec. Plan fills the default back
	// in locally.
	s.Ports = dedupInts(s.Ports)
	if len(s.Ports) == 1 && s.Ports[0] == 1 {
		s.Ports = nil
	}
	s.Transparent = dedupBools(s.Transparent)
	if len(s.Transparent) == 1 && !s.Transparent[0] {
		s.Transparent = nil
	}
	s.Topologies = dedup(s.Topologies)
	if len(s.Topologies) == 0 {
		s.Topologies = []string{""}
	}
	s.Verify = dedupBools(s.Verify)
	if len(s.Verify) == 0 {
		s.Verify = []bool{false}
	}
	s.Optimize = dedupOpt(s.Optimize)
	if len(s.Optimize) == 0 {
		s.Optimize = []OptAxis{{}}
	}
	if s.ShardSize <= 0 {
		s.ShardSize = 4
	}
	return s
}

// Validate checks every axis value against the packages that will consume
// it, so a bad spec fails before any work is scheduled.
func (s Spec) Validate() error {
	c := s.Canonical()
	if len(c.Lists) == 0 {
		return fmt.Errorf("campaign: spec names no fault lists")
	}
	for _, l := range c.Lists {
		if _, ok := faultlist.ByName(l); !ok {
			return fmt.Errorf("campaign: unknown fault list %q (known: %v)", l, faultlist.Names())
		}
	}
	for _, p := range c.Profiles {
		if p != ProfileStandard && p != ProfileAggressive {
			return fmt.Errorf("campaign: unknown profile %q (want %q or %q)", p, ProfileStandard, ProfileAggressive)
		}
	}
	for _, o := range c.Orders {
		if _, err := core.ParseOrderConstraint(o); err != nil {
			return fmt.Errorf("campaign: %v", err)
		}
	}
	for _, n := range c.Sizes {
		if n < 3 || n > 16 {
			return fmt.Errorf("campaign: memory size %d out of range [3,16]", n)
		}
	}
	for _, w := range c.Widths {
		if w < 1 || w > 64 {
			return fmt.Errorf("campaign: word width %d out of range [1,64]", w)
		}
	}
	for _, p := range c.Ports {
		if p < 1 || p > 2 {
			return fmt.Errorf("campaign: port count %d out of range [1,2]", p)
		}
	}
	for _, t := range c.Topologies {
		if t == "" {
			continue
		}
		if _, err := ParseTopology(t); err != nil {
			return err
		}
	}
	for _, o := range c.Optimize {
		if o.Budget < 0 || o.Budget > 1_000_000 {
			return fmt.Errorf("campaign: optimize budget %d out of range [0,1000000]", o.Budget)
		}
		if o.Seed < 0 {
			return fmt.Errorf("campaign: optimize seed %d must be non-negative", o.Seed)
		}
		if o.BISTWeight < 0 || o.BISTWeight > 1000 {
			return fmt.Errorf("campaign: optimize bist_weight %g out of range [0,1000]", o.BISTWeight)
		}
	}
	return nil
}

// Hash returns the campaign's content address: the SHA-256 of the
// schema-versioned canonical spec (minus the display name). Two specs that
// differ only in spelling — omitted vs explicit defaults, duplicated axis
// values — hash identically.
func (s Spec) Hash() string {
	c := s.Canonical()
	c.Name = ""
	payload := struct {
		Schema string `json:"schema"`
		Spec   Spec   `json:"spec"`
	}{specSchema, c}
	// Invariant (pinned by TestIdentityNeverPanics): Spec is strings,
	// ints and slices of them — shapes encoding/json can never fail on,
	// whatever bytes a request put in them. The panic is therefore
	// unreachable from request data; it guards against someone adding a
	// chan/func/cycle field to Spec without revisiting this derivation.
	b, err := json.Marshal(payload)
	if err != nil {
		panic(fmt.Sprintf("campaign: spec hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ID returns the campaign identifier derived from the spec hash — the
// directory name under the store root and the {id} of the marchd API.
func (s Spec) ID() string { return "c-" + s.Hash()[:16] }

// ParseTopology parses an array shape "RxC" into a topology.
func ParseTopology(spec string) (topo.Topology, error) {
	r, c, ok := strings.Cut(spec, "x")
	if !ok {
		return topo.Topology{}, fmt.Errorf("campaign: topology %q: want \"RxC\" (e.g. \"8x8\")", spec)
	}
	rows, err1 := strconv.Atoi(strings.TrimSpace(r))
	cols, err2 := strconv.Atoi(strings.TrimSpace(c))
	if err1 != nil || err2 != nil {
		return topo.Topology{}, fmt.Errorf("campaign: topology %q: want \"RxC\" (e.g. \"8x8\")", spec)
	}
	t, err := topo.New(rows, cols)
	if err != nil {
		return topo.Topology{}, fmt.Errorf("campaign: topology %q: %v", spec, err)
	}
	return t, nil
}

// Unit is one point of the cross-product: the coordinates of a single
// generate-and-certify run. Units are ordered and numbered by the
// deterministic expansion of the canonical spec.
type Unit struct {
	Seq     int    `json:"seq"`
	List    string `json:"list"`
	Profile string `json:"profile"`
	Order   string `json:"order"`
	Size    int    `json:"size"`
	Width   int    `json:"width"`
	// Ports is 0 for the single-port default (the axis value 1 normalizes
	// to 0 at planning time, so single-port units keep their pre-axis IDs)
	// and 2 for the two-port evaluation.
	Ports int `json:"ports,omitempty"`
	// Transparent selects the in-field (content-preserving) evaluation of a
	// width>1 unit; false is omitted so pre-axis unit IDs are unchanged.
	Transparent bool   `json:"transparent,omitempty"`
	Topology    string `json:"topology,omitempty"`
	Verify      bool   `json:"verify,omitempty"`
	// OptBudget, OptSeed and OptBISTWeight are the optimizer sweep
	// coordinates; a zero budget means the unit records generation only.
	OptBudget     int     `json:"opt_budget,omitempty"`
	OptSeed       int64   `json:"opt_seed,omitempty"`
	OptBISTWeight float64 `json:"opt_bist_weight,omitempty"`
}

// ID returns the unit's content address: a SHA-256 over the
// schema-versioned axes (not the sequence number, so the same coordinates
// address the same result across campaigns).
func (u Unit) ID() string {
	key := u
	key.Seq = 0
	payload := struct {
		Schema string `json:"schema"`
		Unit   Unit   `json:"unit"`
	}{specSchema, key}
	// Same invariant as Spec.Hash: Unit is strings and ints only, so the
	// marshal cannot fail on request-supplied values (TestIdentityNeverPanics).
	b, err := json.Marshal(payload)
	if err != nil {
		panic(fmt.Sprintf("campaign: unit id: %v", err))
	}
	sum := sha256.Sum256(b)
	return "u-" + hex.EncodeToString(sum[:12])
}

// Shard is a contiguous slice of the unit sequence: the unit of scheduling,
// commitment and resumption.
type Shard struct {
	ID    int
	Units []Unit
}

// Plan expands the spec into its deterministic shard plan. The unit order
// is the nested iteration list → profile → order → size → width → ports →
// transparent → topology → verify → optimize over the canonical axes; shards
// are consecutive runs of ShardSize units. Equal canonical specs always
// produce identical plans — this is what makes checkpoints portable across
// processes.
func Plan(s Spec) []Shard {
	c := s.Canonical()
	ports := c.Ports
	if len(ports) == 0 {
		ports = []int{1}
	}
	transparent := c.Transparent
	if len(transparent) == 0 {
		transparent = []bool{false}
	}
	var units []Unit
	for _, list := range c.Lists {
		for _, prof := range c.Profiles {
			for _, ord := range c.Orders {
				for _, size := range c.Sizes {
					for _, width := range c.Widths {
						for _, pc := range ports {
							for _, tr := range transparent {
								for _, tp := range c.Topologies {
									for _, vf := range c.Verify {
										for _, opt := range c.Optimize {
											u := Unit{
												Seq: len(units), List: list, Profile: prof,
												Order: ord, Size: size, Width: width,
												Transparent: tr, Topology: tp, Verify: vf,
												OptBudget: opt.Budget, OptSeed: opt.Seed,
												OptBISTWeight: opt.BISTWeight,
											}
											if pc > 1 {
												u.Ports = pc
											}
											units = append(units, u)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	var shards []Shard
	for start := 0; start < len(units); start += c.ShardSize {
		end := start + c.ShardSize
		if end > len(units) {
			end = len(units)
		}
		shards = append(shards, Shard{ID: len(shards), Units: units[start:end]})
	}
	return shards
}

// Units counts the plan's units without materializing shards.
func (s Spec) Units() int {
	c := s.Canonical()
	n := len(c.Lists) * len(c.Profiles) * len(c.Orders) * len(c.Sizes) *
		len(c.Widths) * len(c.Topologies) * len(c.Verify) * len(c.Optimize)
	if len(c.Ports) > 0 {
		n *= len(c.Ports)
	}
	if len(c.Transparent) > 0 {
		n *= len(c.Transparent)
	}
	return n
}

func dedup(in []string) []string {
	var out []string
	seen := make(map[string]bool, len(in))
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func dedupBools(in []bool) []bool {
	var out []bool
	var seen [2]bool
	for _, v := range in {
		idx := 0
		if v {
			idx = 1
		}
		if !seen[idx] {
			seen[idx] = true
			out = append(out, v)
		}
	}
	return out
}

func dedupOpt(in []OptAxis) []OptAxis {
	var out []OptAxis
	seen := make(map[OptAxis]bool, len(in))
	for _, v := range in {
		if v.Budget > 0 && v.Seed == 0 {
			v.Seed = 1 // the optimizer's default, made explicit
		}
		if v.Budget == 0 {
			v.Seed = 0 // seed and weight are meaningless without a budget
			v.BISTWeight = 0
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func dedupInts(in []int) []int {
	var out []int
	seen := make(map[int]bool, len(in))
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
