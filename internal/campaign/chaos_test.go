package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"marchgen/internal/iofault"
	"marchgen/internal/store"
)

// chaosSpec is the sweep the fault matrix interrupts: three units in
// three single-unit shards, so the op stream crosses several commit
// protocol rounds (data appends, data fsyncs, index and checkpoint
// temp-write/fsync/rename/dir-sync) plus the spec-file and initial
// checkpoint writes.
func chaosSpec() Spec {
	return Spec{
		Name:      "chaos",
		Lists:     []string{"list2"},
		Orders:    []string{"free", "up", "down"},
		ShardSize: 1,
	}
}

// chaosReference runs the campaign once uninterrupted through a counting
// injector, returning the committed result bytes and the total number of
// mutating I/O operations — the exclusive bound of the fault sweep.
func chaosReference(t *testing.T) (ref []byte, totalOps int) {
	t.Helper()
	spec := chaosSpec()
	root := t.TempDir()
	counter := iofault.NewInjector(nil, iofault.Plan{})
	if _, err := Run(context.Background(), spec, root, RunOptions{Workers: 2, FS: counter}); err != nil {
		t.Fatal(err)
	}
	ref = resultsBytes(t, spec, root)
	if len(ref) == 0 {
		t.Fatal("reference run produced no results")
	}
	// Sanity: the op stream must cover the whole commit protocol — a
	// shrunken stream would silently shrink the matrix.
	if counter.Ops() < 20 {
		t.Fatalf("reference run performed only %d mutating ops; the matrix would be degenerate", counter.Ops())
	}
	return ref, counter.Ops()
}

// TestCrashMatrixResumeByteIdentical generalizes TestKillResumeByteIdentical
// from one hand-placed kill point to every reachable one: for every
// mutating I/O operation index N in the campaign's deterministic write
// path, crash at N (stop writing, keep bytes — the SIGKILL state), then
// resume on a clean filesystem and require the final committed result
// set to be byte-identical to the uninterrupted run.
func TestCrashMatrixResumeByteIdentical(t *testing.T) {
	ref, total := chaosReference(t)
	spec := chaosSpec()
	t.Logf("crash matrix: %d mutating I/O ops", total)
	for n := 0; n < total; n++ {
		n := n
		t.Run(fmt.Sprintf("crash-at-%02d", n), func(t *testing.T) {
			root := t.TempDir()
			inj := iofault.NewInjector(nil, iofault.Plan{Op: n, Kind: iofault.Crash})
			_, err := Run(context.Background(), spec, root, RunOptions{Workers: 2, FS: inj})
			if err == nil {
				t.Fatalf("crash at op %d was swallowed: run reported success", n)
			}
			if !inj.Fired() {
				t.Fatalf("crash plan at op %d never fired", n)
			}
			// Resume on a clean filesystem: whatever the crash left on disk
			// (missing spec file, torn temp files, half-written data lines),
			// the committed result set must converge to the reference bytes.
			sum, err := Run(context.Background(), spec, root, RunOptions{Workers: 2, Resume: true})
			if err != nil {
				t.Fatalf("resume after crash at op %d: %v", n, err)
			}
			if sum.Units != spec.Units() {
				t.Fatalf("resume after crash at op %d: summary %+v", n, sum)
			}
			if got := resultsBytes(t, spec, root); string(got) != string(ref) {
				t.Fatalf("crash at op %d: resumed result set differs from uninterrupted run (%d vs %d bytes)", n, len(got), len(ref))
			}
		})
	}
}

// TestFaultMatrixFailsCleanly sweeps the non-crash faults — generic I/O
// error, ENOSPC, short write, fsync failure — over every operation index
// and requires each to surface as a clean returned error (never a panic,
// never silent loss): the faulted run fails, and a clean resume still
// converges to the reference bytes.
func TestFaultMatrixFailsCleanly(t *testing.T) {
	ref, total := chaosReference(t)
	spec := chaosSpec()
	kinds := []iofault.Kind{iofault.FailOp, iofault.ENOSPC, iofault.ShortWrite, iofault.SyncErr}
	for _, kind := range kinds {
		for n := 0; n < total; n++ {
			kind, n := kind, n
			t.Run(fmt.Sprintf("%s-at-%02d", kind, n), func(t *testing.T) {
				root := t.TempDir()
				inj := iofault.NewInjector(nil, iofault.Plan{Op: n, Kind: kind})
				_, err := Run(context.Background(), spec, root, RunOptions{Workers: 2, FS: inj})
				// SyncErr at a late index may land past the last sync and
				// never fire; every fired fault must fail the run.
				if inj.Fired() && err == nil {
					t.Fatalf("%v at op %d was swallowed: run reported success", kind, n)
				}
				if err != nil && !inj.Fired() {
					t.Fatalf("run failed (%v) but no fault fired", err)
				}
				sum, err := Run(context.Background(), spec, root, RunOptions{Workers: 2, Resume: true})
				if err != nil {
					t.Fatalf("resume after %v at op %d: %v", kind, n, err)
				}
				if sum.Units != spec.Units() {
					t.Fatalf("resume after %v at op %d: summary %+v", kind, n, sum)
				}
				if got := resultsBytes(t, spec, root); string(got) != string(ref) {
					t.Fatalf("%v at op %d: result set differs from uninterrupted run (%d vs %d bytes)", kind, n, len(got), len(ref))
				}
			})
		}
	}
}

// TestENOSPCLeavesStoreAtCheckpoint pins the cleanliness half of the
// acceptance criterion directly at store level: an ENOSPC mid-commit
// returns an error, the checkpoint does not advance, and reopening the
// store recovers exactly the previously committed prefix.
func TestENOSPCLeavesStoreAtCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, "h1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(store.Record{ID: "a", Seq: 0, Body: []byte(`{"n":0}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cpBefore, _, err := store.Read(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Reopen through an injector that runs out of disk on the second
	// mutating op (the data fsync of the next commit survives; the index
	// temp write hits ENOSPC).
	inj := iofault.NewInjector(nil, iofault.Plan{Op: 1, Kind: iofault.ENOSPC})
	s2, err := store.OpenFS(dir, "h1", inj)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(store.Record{ID: "b", Seq: 1, Body: []byte(`{"n":1}`)}); err != nil { // op 0
		t.Fatal(err)
	}
	if err := s2.Commit(2); err == nil {
		t.Fatal("commit with injected ENOSPC succeeded")
	}
	s2.Close()

	cpAfter, recs, err := store.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cpAfter != cpBefore {
		t.Fatalf("failed commit moved the checkpoint: %+v -> %+v", cpBefore, cpAfter)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("recovered records = %+v, want only the committed prefix", recs)
	}
}

// TestRunContainsPanickingCallback proves the campaign worker pool
// survives a panic in unit work: a panicking OnEvent callback (the only
// request-supplied code on the worker path) must fail the run with the
// captured stack instead of killing the process, and the store must stay
// resumable.
func TestRunContainsPanickingCallback(t *testing.T) {
	spec := chaosSpec()
	root := t.TempDir()
	_, err := Run(context.Background(), spec, root, RunOptions{
		Workers: 2,
		OnEvent: func(ev Event) {
			if ev.Kind == EventUnitDone {
				panic("callback exploded")
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "callback exploded") {
		t.Fatalf("err = %v, want a contained panic with its message", err)
	}
	// The wreckage resumes to a complete campaign.
	sum, err := Run(context.Background(), spec, root, RunOptions{Resume: true})
	if err != nil {
		t.Fatalf("resume after contained panic: %v", err)
	}
	if sum.Units != spec.Units() {
		t.Fatalf("resume summary = %+v", sum)
	}
	if _, err := os.Stat(store.DataPath(spec.Dir(root))); err != nil {
		t.Fatal(err)
	}
}

// TestCrashErrorIsDiagnosable: the error a crashed run returns names the
// injected crash, so operators can tell infrastructure faults from
// generation failures.
func TestCrashErrorIsDiagnosable(t *testing.T) {
	root := t.TempDir()
	inj := iofault.NewInjector(nil, iofault.Plan{Op: 0, Kind: iofault.Crash})
	_, err := Run(context.Background(), chaosSpec(), root, RunOptions{FS: inj})
	if !errors.Is(err, iofault.ErrCrashed) {
		t.Fatalf("err = %v, want to unwrap to iofault.ErrCrashed", err)
	}
}
