package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"marchgen/internal/store"
)

// The literal values below were captured on the pre-axis build (before the
// ports/transparent axes and the optimizer BIST weight joined Spec and
// Unit). They pin the compatibility promise of the campaign layer: a spec
// that never mentions the new axes keeps its identity — same campaign id,
// same unit ids, byte-identical results.jsonl — so every pre-existing store
// directory still resumes, and the fabric still recognizes its shards.
const (
	prePRSpecID      = "c-04ffe0137137a2d2"
	prePRSpecHash    = "04ffe0137137a2d281bdc140d0826d2a8b4af221f0075cba4a4663a5d09432ac"
	prePRUnitID      = "u-e18cb244fed572c27eeb82da"
	prePRResultsSHA  = "e3f2ee21a9ed17d9ca0e44a3df1fdd2e1d09aa57ddea04c007d5764b42246351"
	prePRResultsSize = 688
)

// TestBitOrientedCampaignStoreMatchesPreAxisBuild runs a default-axes
// campaign end to end and pins its identity and store bytes to the pre-PR
// capture.
func TestBitOrientedCampaignStoreMatchesPreAxisBuild(t *testing.T) {
	spec := Spec{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1}
	if got := spec.ID(); got != prePRSpecID {
		t.Fatalf("spec.ID = %s, want pre-PR %s", got, prePRSpecID)
	}
	if got := spec.Hash(); got != prePRSpecHash {
		t.Fatalf("spec.Hash = %s, want pre-PR %s", got, prePRSpecHash)
	}
	root := t.TempDir()
	if _, err := Run(context.Background(), spec, root, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(store.DataPath(spec.Dir(root)))
	if err != nil {
		t.Fatal(err)
	}
	sum := hex.EncodeToString(func() []byte { s := sha256.Sum256(b); return s[:] }())
	if sum != prePRResultsSHA || len(b) != prePRResultsSize {
		t.Fatalf("results.jsonl = sha256 %s (%d bytes), want pre-PR %s (%d bytes)",
			sum, len(b), prePRResultsSHA, prePRResultsSize)
	}
	u := Unit{List: "list2", Profile: "standard", Order: "free", Size: 4, Width: 1}
	if got := u.ID(); got != prePRUnitID {
		t.Fatalf("unit.ID = %s, want pre-PR %s", got, prePRUnitID)
	}
}

// TestDefaultAxisSpellingsShareIdentity checks the omit-at-default
// canonicalization: naming only the default value of a new axis is the same
// spec as never mentioning it.
func TestDefaultAxisSpellingsShareIdentity(t *testing.T) {
	base := Spec{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1}
	same := []Spec{
		{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1, Ports: []int{1}},
		{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1, Transparent: []bool{false}},
		{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1, Ports: []int{1, 1}, Transparent: []bool{false, false}},
	}
	for i, s := range same {
		if s.Hash() != base.Hash() {
			t.Fatalf("spec %d: default axis spelling changed the hash: %s != %s", i, s.Hash(), base.Hash())
		}
		if s.Units() != base.Units() {
			t.Fatalf("spec %d: default axis spelling changed the unit count: %d != %d", i, s.Units(), base.Units())
		}
	}
	for i, s := range []Spec{
		{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1, Ports: []int{2}},
		{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1, Ports: []int{1, 2}},
		{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1, Widths: []int{4}, Transparent: []bool{true}},
		{Lists: []string{"list2"}, Sizes: []int{3, 4}, ShardSize: 1, Optimize: []OptAxis{{Budget: 100, BISTWeight: 0.5}}},
	} {
		if s.Hash() == base.Hash() {
			t.Fatalf("spec %d: non-default axis did not change the hash", i)
		}
	}
	// Single-port units planned from a mixed-ports spec keep the pre-axis id.
	mixed := Spec{Lists: []string{"list2"}, Sizes: []int{4}, Ports: []int{1, 2}}
	shards := Plan(mixed)
	var ids []string
	for _, sh := range shards {
		for _, u := range sh.Units {
			ids = append(ids, u.ID())
		}
	}
	legacy := Unit{List: "list2", Profile: "standard", Order: "free", Size: 4, Width: 1}
	found := false
	for _, id := range ids {
		if id == legacy.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("mixed-ports plan lost the legacy single-port unit id %s (got %v)", legacy.ID(), ids)
	}
}
