package campaign

import (
	"strings"
	"testing"
)

func TestCanonicalFillsDefaults(t *testing.T) {
	c := Spec{Lists: []string{"list2", "list2"}}.Canonical()
	if len(c.Lists) != 1 {
		t.Fatalf("duplicate axis values not removed: %v", c.Lists)
	}
	if got := [][]string{c.Profiles, c.Orders}; got[0][0] != ProfileStandard || got[1][0] != "free" {
		t.Fatalf("defaults = %v", got)
	}
	if c.Sizes[0] != 4 || c.Widths[0] != 1 || c.Topologies[0] != "" || c.ShardSize != 4 {
		t.Fatalf("canonical = %+v", c)
	}
}

func TestHashSpellingInsensitive(t *testing.T) {
	a := Spec{Name: "a", Lists: []string{"list2"}}
	b := Spec{
		Name: "something else entirely", Lists: []string{"list2", "list2"},
		Profiles: []string{ProfileStandard}, Orders: []string{"free"},
		Sizes: []int{4}, Widths: []int{1}, Topologies: []string{""}, ShardSize: 4,
	}
	if a.Hash() != b.Hash() {
		t.Fatal("omitted vs explicit defaults changed the spec hash")
	}
	c := Spec{Lists: []string{"list2"}, Sizes: []int{5}}
	if a.Hash() == c.Hash() {
		t.Fatal("different axes hashed identically")
	}
	if !strings.HasPrefix(a.ID(), "c-") || len(a.ID()) != 18 {
		t.Fatalf("ID = %q", a.ID())
	}
}

func TestPlanDeterministicAndSharded(t *testing.T) {
	s := Spec{
		Lists:  []string{"list2", "simple1"},
		Orders: []string{"free", "up"}, Sizes: []int{3, 4}, ShardSize: 3,
	}
	if got, want := s.Units(), 2*2*2; got != want {
		t.Fatalf("Units() = %d, want %d", got, want)
	}
	p1, p2 := Plan(s), Plan(s)
	if len(p1) != 3 { // ceil(8/3)
		t.Fatalf("shards = %d, want 3", len(p1))
	}
	seq := 0
	for i, sh := range p1 {
		if sh.ID != i {
			t.Fatalf("shard %d has ID %d", i, sh.ID)
		}
		for j, u := range sh.Units {
			if u.Seq != seq {
				t.Fatalf("unit order broken at shard %d unit %d: seq %d, want %d", i, j, u.Seq, seq)
			}
			if u2 := p2[i].Units[j]; u2 != u || u2.ID() != u.ID() {
				t.Fatalf("plan not deterministic: %+v vs %+v", u, u2)
			}
			seq++
		}
	}
	// The first unit is the innermost-axes origin.
	first := p1[0].Units[0]
	if first.List != "list2" || first.Order != "free" || first.Size != 3 {
		t.Fatalf("first unit = %+v", first)
	}
}

func TestUnitIDIgnoresSeq(t *testing.T) {
	a := Unit{Seq: 0, List: "list2", Profile: ProfileStandard, Order: "free", Size: 4, Width: 1}
	b := a
	b.Seq = 17
	if a.ID() != b.ID() {
		t.Fatal("unit ID depends on plan position")
	}
	c := a
	c.Width = 4
	if a.ID() == c.ID() {
		t.Fatal("unit ID ignores the width axis")
	}
}

// TestIdentityNeverPanics pins the invariant behind the panic guards in
// Spec.Hash and Unit.ID: both types hold only strings, ints and slices of
// them, so json.Marshal cannot fail on any request-supplied value —
// including hostile strings (invalid UTF-8, control bytes, multi-megabyte
// names). If a field whose type can fail to marshal is ever added, this
// test is where the panic surfaces.
func TestIdentityNeverPanics(t *testing.T) {
	hostile := []string{
		"", "plain", "\x00\x01\x02", string([]byte{0xff, 0xfe, 0xfd}),
		`"};{"`, strings.Repeat("x", 1<<20), "line\nbreak\t\r", "  ",
	}
	for _, s := range hostile {
		spec := Spec{
			Name: s, Lists: []string{s}, Profiles: []string{s}, Orders: []string{s},
			Topologies: []string{s}, Sizes: []int{-1 << 62}, Widths: []int{1 << 62},
		}
		if got := spec.Hash(); len(got) != 64 {
			t.Fatalf("Hash(%q...) = %q", s[:min(len(s), 8)], got)
		}
		u := Unit{List: s, Profile: s, Order: s, Topology: s, Size: -1, Width: 1 << 30}
		if got := u.ID(); len(got) != 26 {
			t.Fatalf("Unit.ID(%q...) = %q", s[:min(len(s), 8)], got)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Lists: []string{"nope"}},
		{Lists: []string{"list2"}, Profiles: []string{"fastest"}},
		{Lists: []string{"list2"}, Orders: []string{"sideways"}},
		{Lists: []string{"list2"}, Sizes: []int{2}},
		{Lists: []string{"list2"}, Widths: []int{0}},
		{Lists: []string{"list2"}, Topologies: []string{"8by8"}},
		{Lists: []string{"list2"}, Topologies: []string{"0x8"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) validated", i, s)
		}
	}
	ok := Spec{
		Lists: []string{"list2", "simple"}, Profiles: []string{ProfileAggressive},
		Orders: []string{"up", "down"}, Sizes: []int{4, 5},
		Widths: []int{1, 4}, Topologies: []string{"8x8", "4x16"},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestParseTopology(t *testing.T) {
	tp, err := ParseTopology("4x8")
	if err != nil || tp.Rows != 4 || tp.Cols != 8 {
		t.Fatalf("ParseTopology = %+v, %v", tp, err)
	}
	for _, bad := range []string{"", "4", "x", "4x", "ax8", "-1x8"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestOptimizeAxisCanonical(t *testing.T) {
	s := Spec{
		Lists: []string{"list2"},
		Optimize: []OptAxis{
			{Budget: 100},          // seed 0 canonicalizes to 1
			{Budget: 100, Seed: 1}, // duplicate of the above
			{Seed: 9},              // budget 0: seed is meaningless, normalizes to {}
			{},                     // duplicate of the above
			{Budget: 100, Seed: 2},
		},
	}
	c := s.Canonical()
	want := []OptAxis{{Budget: 100, Seed: 1}, {}, {Budget: 100, Seed: 2}}
	if len(c.Optimize) != len(want) {
		t.Fatalf("canonical optimize = %+v, want %+v", c.Optimize, want)
	}
	for i := range want {
		if c.Optimize[i] != want[i] {
			t.Fatalf("canonical optimize[%d] = %+v, want %+v", i, c.Optimize[i], want[i])
		}
	}
	if got := s.Units(); got != 3 {
		t.Fatalf("Units() = %d, want 3", got)
	}
	// Spelling variants hash identically.
	twin := Spec{Lists: []string{"list2"}, Optimize: []OptAxis{{Budget: 100, Seed: 1}, {}, {Budget: 100, Seed: 2}}}
	if s.Hash() != twin.Hash() {
		t.Fatal("optimize spelling variants hash differently")
	}
	// The axis enters unit identity.
	a := Unit{List: "list2", Profile: "standard", Order: "free", Size: 4, Width: 1}
	b := a
	b.OptBudget, b.OptSeed = 100, 1
	if a.ID() == b.ID() {
		t.Fatal("optimize coordinates do not enter the unit id")
	}
}

func TestOptimizeAxisValidate(t *testing.T) {
	bad := []Spec{
		{Lists: []string{"list2"}, Optimize: []OptAxis{{Budget: -1}}},
		{Lists: []string{"list2"}, Optimize: []OptAxis{{Budget: 2_000_000}}},
		{Lists: []string{"list2"}, Optimize: []OptAxis{{Budget: 10, Seed: -5}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", i, s.Optimize)
		}
	}
	ok := Spec{Lists: []string{"list2"}, Optimize: []OptAxis{{Budget: 500, Seed: 3}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid optimize spec rejected: %v", err)
	}
}
