package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"marchgen/internal/store"
)

// sweepSpec is the multi-unit spec the resume tests interrupt: six units
// (three order constraints × two memory sizes) in six single-unit shards,
// so there are many distinct kill points.
func sweepSpec() Spec {
	return Spec{
		Name:      "resume-sweep",
		Lists:     []string{"list2"},
		Orders:    []string{"free", "up", "down"},
		Sizes:     []int{3, 4},
		ShardSize: 1,
	}
}

func resultsBytes(t *testing.T, spec Spec, root string) []byte {
	t.Helper()
	b, err := os.ReadFile(store.DataPath(spec.Dir(root)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunSingleUnitCampaign(t *testing.T) {
	root := t.TempDir()
	spec := Spec{Name: "tiny", Lists: []string{"list2"}}
	sum, err := Run(context.Background(), spec, root, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Units != 1 || sum.Shards != 1 || sum.UnitErrors != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	_, recs, err := store.Read(spec.Dir(root))
	if err != nil {
		t.Fatal(err)
	}
	results, err := Decode(recs)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Error != "" {
		t.Fatalf("unit error: %s", r.Error)
	}
	if r.Coverage.Detected != r.Coverage.Total || r.Coverage.Total != 18 {
		t.Fatalf("coverage = %+v, want full coverage of the 18 list2 faults", r.Coverage)
	}
	if r.Length == 0 || r.Test == "" || r.BIST.Cycles == 0 {
		t.Fatalf("result incomplete: %+v", r)
	}
	// Re-running a complete campaign is idempotent: same summary, no work.
	again, err := Run(context.Background(), spec, root, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Units != 1 || again.ResumedFrom != 1 {
		t.Fatalf("idempotent rerun summary = %+v", again)
	}
}

// TestKillResumeByteIdentical is the acceptance-criteria integration test:
// a campaign killed mid-run (after some shards committed, with a torn
// partial append in the data file — the on-disk state SIGKILL between and
// during shard commits leaves behind) must, after `--resume`, produce a
// result set byte-identical to an uninterrupted run of the same spec.
func TestKillResumeByteIdentical(t *testing.T) {
	spec := sweepSpec()

	// Reference: one uninterrupted run.
	refRoot := t.TempDir()
	refSum, err := Run(context.Background(), spec, refRoot, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if refSum.Units != 6 || refSum.Shards != 6 {
		t.Fatalf("reference summary = %+v", refSum)
	}
	ref := resultsBytes(t, spec, refRoot)

	// Interrupted: cancel the run once two shards have committed.
	killRoot := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var committed atomic.Int32
	_, err = Run(ctx, spec, killRoot, RunOptions{
		Workers: 2,
		OnEvent: func(ev Event) {
			if ev.Kind == EventShardCommitted && committed.Add(1) == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	dir := spec.Dir(killRoot)
	cp, _, err := store.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Shards < 2 || cp.Shards >= 6 {
		t.Fatalf("kill point left %d shards committed, want a genuine mid-run state", cp.Shards)
	}
	// SIGKILL mid-append: leave a torn half-record past the checkpoint.
	f, err := os.OpenFile(store.DataPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"u-torn","shard":99,"seq":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Without resume, continuing is refused.
	if _, err := Run(context.Background(), spec, killRoot, RunOptions{}); !errors.Is(err, ErrNeedsResume) {
		t.Fatalf("rerun without resume: err = %v, want ErrNeedsResume", err)
	}

	// Resume and finish.
	sum, err := Run(context.Background(), spec, killRoot, RunOptions{Workers: 4, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Units != 6 || sum.Shards != 6 {
		t.Fatalf("resumed summary = %+v", sum)
	}
	if sum.ResumedFrom != int(cp.Shards) {
		t.Fatalf("resumed from %d shards, checkpoint said %d", sum.ResumedFrom, cp.Shards)
	}

	got := resultsBytes(t, spec, killRoot)
	if string(got) != string(ref) {
		t.Fatalf("resumed result set differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(ref))
	}
}

// TestKillResumeByteIdenticalWithAxes extends the kill/resume guarantee to
// the word/port axes: a width=4, ports∈{1,2} campaign interrupted mid-run
// must resume to a store byte-identical to an uninterrupted run, with the
// per-unit word and multi-port sections fully populated.
func TestKillResumeByteIdenticalWithAxes(t *testing.T) {
	spec := Spec{
		Name:      "axes-resume",
		Lists:     []string{"list2"},
		Orders:    []string{"free", "up"},
		Sizes:     []int{3},
		Widths:    []int{4},
		Ports:     []int{1, 2},
		ShardSize: 1,
	}
	if got := spec.Units(); got != 4 {
		t.Fatalf("spec plans %d units, want 4 (2 order constraints × 2 port counts)", got)
	}

	// Reference: one uninterrupted run.
	refRoot := t.TempDir()
	refSum, err := Run(context.Background(), spec, refRoot, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if refSum.Units != 4 || refSum.Shards != 4 || refSum.UnitErrors != 0 {
		t.Fatalf("reference summary = %+v", refSum)
	}
	ref := resultsBytes(t, spec, refRoot)

	// Interrupted: cancel once one shard has committed, tear the tail.
	killRoot := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var committed atomic.Int32
	_, err = Run(ctx, spec, killRoot, RunOptions{
		Workers: 2,
		OnEvent: func(ev Event) {
			if ev.Kind == EventShardCommitted && committed.Add(1) == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	dir := spec.Dir(killRoot)
	cp, _, err := store.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Shards < 1 || cp.Shards >= 4 {
		t.Fatalf("kill point left %d shards committed, want a genuine mid-run state", cp.Shards)
	}
	f, err := os.OpenFile(store.DataPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"u-torn","shard":99,"seq":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sum, err := Run(context.Background(), spec, killRoot, RunOptions{Workers: 4, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Units != 4 || sum.Shards != 4 {
		t.Fatalf("resumed summary = %+v", sum)
	}
	got := resultsBytes(t, spec, killRoot)
	if string(got) != string(ref) {
		t.Fatalf("resumed axis campaign differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(ref))
	}

	// The axis sections really ran: every unit carries a width-4 word
	// section, and the two-port units a multi-port section whose dedicated
	// test covers weak faults the lifted single-port march cannot.
	_, recs, err := store.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Decode(recs)
	if err != nil {
		t.Fatal(err)
	}
	twoPort := 0
	for _, r := range results {
		id := r.Unit.ID()
		if r.Error != "" {
			t.Fatalf("unit %s error: %s", id, r.Error)
		}
		if r.Word == nil || r.Word.Width != 4 || r.Word.Faults == 0 || r.Word.Detected == 0 {
			t.Fatalf("unit %s word section = %+v, want a populated width-4 evaluation", id, r.Word)
		}
		if r.Unit.Ports > 1 {
			twoPort++
			if r.Mport == nil || r.Mport.Ports != 2 || r.Mport.TestDetected == 0 {
				t.Fatalf("unit %s mport section = %+v", id, r.Mport)
			}
			if r.Mport.LiftedDetected != 0 {
				t.Fatalf("unit %s: lifted single-port march detected %d weak faults, want 0",
					id, r.Mport.LiftedDetected)
			}
		} else if r.Mport != nil {
			t.Fatalf("single-port unit %s has an mport section: %+v", id, r.Mport)
		}
	}
	if twoPort != 2 {
		t.Fatalf("two-port units = %d, want 2", twoPort)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Lists: []string{"nope"}}, t.TempDir(), RunOptions{}); err == nil {
		t.Fatal("invalid spec ran")
	}
}

func TestSpecFileWritten(t *testing.T) {
	root := t.TempDir()
	spec := Spec{Name: "meta", Lists: []string{"list2"}}
	if _, err := Run(context.Background(), spec, root, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	sf, err := LoadSpecFile(spec.Dir(root))
	if err != nil {
		t.Fatal(err)
	}
	if sf.ID != spec.ID() || sf.Hash != spec.Hash() || sf.Spec.Name != "meta" {
		t.Fatalf("spec file = %+v", sf)
	}
	if len(sf.Spec.Profiles) == 0 {
		t.Fatal("spec file does not hold the canonical spec")
	}
}

func TestReportRenders(t *testing.T) {
	root := t.TempDir()
	spec := Spec{Name: "rep", Lists: []string{"list2"}, Widths: []int{1, 4}, Topologies: []string{"", "8x8"}}
	if _, err := Run(context.Background(), spec, root, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Report(&b, spec.Dir(root)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Campaign " + spec.ID(), "list2", "8x8", "4/4 units", "Generated tests:", "vs LF1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRecordsRoundTripThroughStore(t *testing.T) {
	root := t.TempDir()
	spec := Spec{Lists: []string{"list2"}, Widths: []int{4}}
	if _, err := Run(context.Background(), spec, root, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	_, recs, err := store.Read(spec.Dir(root))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	var doc UnitResult
	if err := json.Unmarshal(recs[0].Body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Word == nil || doc.Word.Width != 4 || doc.Word.Faults == 0 {
		t.Fatalf("word evaluation missing: %+v", doc.Word)
	}
	if doc.Word.Detected != doc.Word.Faults {
		t.Logf("note: word coverage %d/%d (informational)", doc.Word.Detected, doc.Word.Faults)
	}
	if _, err := os.Stat(filepath.Join(spec.Dir(root), "index.json")); err != nil {
		t.Fatalf("index.json not written: %v", err)
	}
}

// A verify-enabled unit records the oracle cross-check in its result
// document, and the two simulators agree on the generated test.
func TestRunVerifyUnit(t *testing.T) {
	root := t.TempDir()
	spec := Spec{Name: "verify", Lists: []string{"list2"}, Verify: []bool{true}}
	sum, err := Run(context.Background(), spec, root, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Units != 1 || sum.UnitErrors != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	_, recs, err := store.Read(spec.Dir(root))
	if err != nil {
		t.Fatal(err)
	}
	results, err := Decode(recs)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Verify == nil {
		t.Fatal("verify-enabled unit recorded no verify document")
	}
	if r.Verify.Faults != 18 || r.Verify.Divergences != 0 || r.Verify.First != "" {
		t.Fatalf("verify document = %+v, want 18 faults and zero divergences", r.Verify)
	}
	// A verify-disabled spec omits the document entirely.
	plain := Spec{Name: "plain", Lists: []string{"list2"}}
	if _, err := Run(context.Background(), plain, root, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	_, precs, err := store.Read(plain.Dir(root))
	if err != nil {
		t.Fatal(err)
	}
	presults, err := Decode(precs)
	if err != nil {
		t.Fatal(err)
	}
	if presults[0].Verify != nil {
		t.Fatalf("verify-disabled unit recorded a verify document: %+v", presults[0].Verify)
	}
}

// An optimize-enabled unit records the optimizer sweep point: the certified
// winner, its length against the generated seed, and the search effort —
// and two runs of the same spec in different roots are byte-identical
// (the frontier data is a pure function of the unit coordinates).
func TestRunOptimizeUnit(t *testing.T) {
	spec := Spec{
		Name:     "opt",
		Lists:    []string{"list2"},
		Optimize: []OptAxis{{}, {Budget: 200, Seed: 7}},
	}
	root := t.TempDir()
	sum, err := Run(context.Background(), spec, root, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Units != 2 || sum.UnitErrors != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	_, recs, err := store.Read(spec.Dir(root))
	if err != nil {
		t.Fatal(err)
	}
	results, err := Decode(recs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Optimize != nil {
		t.Fatalf("budget-0 unit recorded an optimize document: %+v", results[0].Optimize)
	}
	o := results[1].Optimize
	if o == nil {
		t.Fatal("optimize-enabled unit recorded no optimize document")
	}
	if o.Budget != 200 || o.Seed != 7 {
		t.Fatalf("optimize knobs = %+v", o)
	}
	if o.SeedLength != results[1].Length {
		t.Fatalf("optimizer seed length %d != generated length %d", o.SeedLength, results[1].Length)
	}
	if o.Length == 0 || o.Length > o.SeedLength || o.Test == "" || o.MoveTrace == "" {
		t.Fatalf("optimize document incomplete: %+v", o)
	}
	if o.Evaluations == 0 || o.Evaluations > 200 {
		t.Fatalf("evaluations = %d, want within the 200 budget", o.Evaluations)
	}

	// Repeat run in a fresh root: byte-identical result set.
	root2 := t.TempDir()
	if _, err := Run(context.Background(), spec, root2, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if string(resultsBytes(t, spec, root)) != string(resultsBytes(t, spec, root2)) {
		t.Fatal("two runs of the same optimize spec produced different result bytes")
	}

	// The frontier renders from the stored records.
	var b strings.Builder
	if err := Report(&b, spec.Dir(root)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Length-vs-budget frontier", "Seed len", "Opt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
