package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"marchgen/internal/march"
	"marchgen/internal/report"
	"marchgen/internal/store"
)

// Decode parses the committed records of a campaign store back into unit
// results, ordered by plan sequence.
func Decode(recs []store.Record) ([]UnitResult, error) {
	out := make([]UnitResult, 0, len(recs))
	for _, r := range recs {
		var u UnitResult
		if err := json.Unmarshal(r.Body, &u); err != nil {
			return nil, fmt.Errorf("campaign: record %s: %w", r.ID, err)
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Unit.Seq < out[j].Unit.Seq })
	return out, nil
}

// RenderMatrix writes the campaign's coverage/length matrix: one row per
// unit of the sweep, with the Table 1 comparisons where they apply (the
// length improvement over the published March SL for list1 targets and over
// March LF1 for list2 targets — the paper's Table 1 is the
// list1/list2 × standard/aggressive corner of this matrix).
func RenderMatrix(w io.Writer, title string, results []UnitResult) error {
	t := &report.Table{
		Title: title,
		Header: []string{"List", "Profile", "Order", "n", "w", "P", "Topo",
			"Len", "Opt", "Coverage", "vs SL", "vs LF1", "BIST cyc", "1-order",
			"Word", "Transp", "Mport", "Error"},
	}
	for _, r := range results {
		u := r.Unit
		if r.Error != "" {
			t.AddRow(u.List, u.Profile, u.Order, fmt.Sprint(u.Size), fmt.Sprint(u.Width),
				portsCell(u), topoCell(u), "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", r.Error)
			continue
		}
		vsSL, vsLF1 := "-", "-"
		length := r.Length
		if r.Optimize != nil {
			length = r.Optimize.Length // the frontier compares the optimized length
		}
		switch u.List {
		case "list1":
			vsSL = report.Percent(report.Improvement(march.MarchSL.Length(), length))
		case "list2":
			vsLF1 = report.Percent(report.Improvement(march.MarchLF1.Length(), length))
		}
		optCell := "-"
		if r.Optimize != nil {
			optCell = fmt.Sprintf("%dn@%d", r.Optimize.Length, r.Optimize.Budget)
		}
		// The BIST column reads the unit's recorded axis results: the
		// generated test's estimate, superseded by the optimizer winner's
		// cost when the sweep point weighted BIST cycles into the fitness.
		bistCell := fmt.Sprint(r.BIST.Cycles)
		if r.Optimize != nil && r.Optimize.BISTCycles > 0 {
			bistCell = fmt.Sprintf("%d*", r.Optimize.BISTCycles)
		}
		wordCell, transpCell := "-", "-"
		if r.Word != nil {
			wordCell = fmt.Sprintf("%d/%d", r.Word.Detected, r.Word.Faults)
			if r.Word.Transparent {
				transpCell = fmt.Sprintf("%d/%d", r.Word.TransparentDetected, r.Word.Faults)
			}
		}
		mportCell := "-"
		if r.Mport != nil {
			mportCell = fmt.Sprintf("%d/%d", r.Mport.LiftedDetected, r.Mport.Faults)
		}
		t.AddRow(u.List, u.Profile, u.Order, fmt.Sprint(u.Size), fmt.Sprint(u.Width),
			portsCell(u), topoCell(u),
			fmt.Sprint(r.Length), optCell,
			fmt.Sprintf("%d/%d", r.Coverage.Detected, r.Coverage.Total),
			vsSL, vsLF1,
			bistCell,
			fmt.Sprint(r.BIST.SingleOrder),
			wordCell, transpCell, mportCell, "")
	}
	return t.Render(w)
}

// RenderFrontier writes the length-vs-budget frontier of a campaign with an
// optimize axis: one row per optimizer sweep point, grouped by generator
// coordinates and ordered by budget, so the marginal value of search effort
// reads top to bottom. Units without optimizer records are skipped.
func RenderFrontier(w io.Writer, results []UnitResult) error {
	type row struct {
		r UnitResult
		o OptimizeJSON
	}
	var rows []row
	for _, r := range results {
		if r.Error != "" || r.Optimize == nil {
			continue
		}
		rows = append(rows, row{r, *r.Optimize})
	}
	if len(rows) == 0 {
		return nil
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.r.Unit.Seq != b.r.Unit.Seq {
			// Plan order already groups generator coordinates and orders
			// budgets within a group; seq is a stable proxy for both.
			return a.r.Unit.Seq < b.r.Unit.Seq
		}
		return a.o.Budget < b.o.Budget
	})
	t := &report.Table{
		Title: "Length-vs-budget frontier (optimizer sweep)",
		Header: []string{"List", "Profile", "Order", "n",
			"Seed len", "Budget", "Rng", "Wt", "Len", "BIST cyc", "Evals", "Improved", "Test"},
	}
	for _, x := range rows {
		u := x.r.Unit
		wt, cyc := "-", "-"
		if x.o.BISTWeight > 0 {
			wt = fmt.Sprint(x.o.BISTWeight)
			cyc = fmt.Sprint(x.o.BISTCycles)
		}
		t.AddRow(u.List, u.Profile, u.Order, fmt.Sprint(u.Size),
			fmt.Sprintf("%dn", x.o.SeedLength),
			fmt.Sprint(x.o.Budget),
			fmt.Sprint(x.o.Seed),
			wt,
			fmt.Sprintf("%dn", x.o.Length),
			cyc,
			fmt.Sprint(x.o.Evaluations),
			fmt.Sprint(x.o.Improved),
			x.o.Test)
	}
	return t.Render(w)
}

func topoCell(u Unit) string {
	if u.Topology == "" {
		return "-"
	}
	return u.Topology
}

// portsCell renders the unit's port count; the stored 0 is the normalized
// single-port default.
func portsCell(u Unit) string {
	if u.Ports <= 1 {
		return "1"
	}
	return fmt.Sprint(u.Ports)
}

// RenderTests writes the generated tests of a campaign, one per distinct
// generator coordinate (units differing only in width/topology share one
// generated test, so duplicates are collapsed).
func RenderTests(w io.Writer, results []UnitResult) error {
	seen := make(map[string]bool)
	for _, r := range results {
		if r.Error != "" || r.Test == "" {
			continue
		}
		key := fmt.Sprintf("%s|%s|%s|%d", r.Unit.List, r.Unit.Profile, r.Unit.Order, r.Unit.Size)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, err := fmt.Fprintf(w, "%-8s %-10s %-5s n=%-2d %3dn  %s\n",
			r.Unit.List, r.Unit.Profile, r.Unit.Order, r.Unit.Size, r.Length, r.Test); err != nil {
			return err
		}
	}
	return nil
}

// Report loads a campaign directory and writes the matrix and the
// generated-test listing: the implementation behind `marchcamp report`.
func Report(w io.Writer, dir string) error {
	sf, err := LoadSpecFile(dir)
	if err != nil {
		return err
	}
	cp, recs, err := store.Read(dir)
	if err != nil {
		return err
	}
	results, err := Decode(recs)
	if err != nil {
		return err
	}
	total := sf.Spec.Units()
	shards := len(Plan(sf.Spec))
	title := fmt.Sprintf("Campaign %s (%s): %d/%d units in %d/%d shards committed",
		sf.ID, displayName(sf.Spec), len(results), total, cp.Shards, shards)
	if err := RenderMatrix(w, title, results); err != nil {
		return err
	}
	hasOpt := false
	for _, r := range results {
		if r.Optimize != nil {
			hasOpt = true
			break
		}
	}
	if hasOpt {
		fmt.Fprintln(w)
		if err := RenderFrontier(w, results); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Generated tests:")
	return RenderTests(w, results)
}

func displayName(s Spec) string {
	if s.Name == "" {
		return "unnamed"
	}
	return s.Name
}
