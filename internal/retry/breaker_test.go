package retry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return &Breaker{Threshold: threshold, Cooldown: cooldown, Now: clk.now}, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newBreaker(3, time.Second)
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow before threshold (failure %d): %v", i, err)
		}
		b.Report(boom)
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state after %d failures = %s, want open", 3, got)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := newBreaker(3, time.Second)
	boom := errors.New("boom")
	// Two failures, then a success: the run resets, so two more failures
	// still stay under the threshold.
	for _, err := range []error{boom, boom, nil, boom, boom} {
		if aerr := b.Allow(); aerr != nil {
			t.Fatalf("Allow: %v", aerr)
		}
		b.Report(err)
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %s, want closed (failure run was reset)", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newBreaker(2, time.Second)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_ = b.Allow()
		b.Report(boom)
	}
	// Before the cooldown: still open, and the error names the wait.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow before cooldown = %v", err)
	}
	clk.advance(time.Second)
	// After the cooldown: exactly one probe passes, everyone else fails
	// fast until it reports.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow = %v, want nil", err)
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("state during probe = %s, want half-open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second Allow during probe = %v, want ErrOpen", err)
	}
	// A failed probe re-opens with a fresh cooldown.
	b.Report(boom)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow after failed probe = %v, want ErrOpen", err)
	}
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow = %v, want nil", err)
	}
	// A successful probe closes the breaker for good.
	b.Report(nil)
	if got := b.State(); got != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after close = %v", err)
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	var b Breaker
	boom := errors.New("boom")
	for i := 0; i < 5; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow %d: %v", i, err)
		}
		b.Report(boom)
	}
	if got := b.State(); got != "open" {
		t.Fatalf("zero-value breaker after 5 failures = %s, want open", got)
	}
}

// TestBreakerConcurrentReports drives Allow/Report from many goroutines;
// under -race (scripts/race.sh covers internal/retry) this doubles as the
// breaker's data-race gate. The invariant checked here is weaker — no
// panic, and a terminal all-success run always closes the breaker.
func TestBreakerConcurrentReports(t *testing.T) {
	b, clk := newBreaker(4, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := b.Allow(); err != nil {
					continue
				}
				if (g+i)%3 == 0 {
					b.Report(fmt.Errorf("fail %d/%d", g, i))
				} else {
					b.Report(nil)
				}
			}
		}(g)
	}
	wg.Wait()
	clk.advance(time.Hour)
	// Drain to a known state: admitted calls that succeed must close it.
	for i := 0; i < 8; i++ {
		if err := b.Allow(); err == nil {
			b.Report(nil)
		}
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state after success drain = %s, want closed", got)
	}
}
