package retry

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the breaker refuses calls.
// Callers should treat it as an immediate local failure — the point of the
// breaker is to answer without touching the flapping backend.
var ErrOpen = errors.New("retry: circuit breaker open")

// Breaker is a small client-side circuit breaker: the companion of Do for
// a backend that is not merely busy but broken. Backoff spaces retries of
// one request; the breaker stops new requests entirely after a run of
// consecutive failures, then probes with a single request after a cooldown
// (half-open) and closes again on success.
//
// State machine: closed → (Threshold consecutive failures) → open →
// (Cooldown elapses) → half-open → one probe call → closed on success,
// back to open on failure.
//
// The zero value is usable: threshold 5, cooldown 2s, real clock. All
// methods are safe for concurrent use.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker;
	// <=0 means 5.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a probe;
	// <=0 means 2s.
	Cooldown time.Duration
	// Now supplies the clock; nil means time.Now (tests inject a fake).
	Now func() time.Time

	mu       sync.Mutex
	failures int       // consecutive failures while closed
	openedAt time.Time // zero while closed
	probing  bool      // half-open: one probe is in flight
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 2 * time.Second
	}
	return b.Cooldown
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// Allow reports whether a call may proceed: nil from a closed breaker or
// as the half-open probe, ErrOpen (wrapped with the remaining cooldown)
// otherwise. Every Allow that returns nil must be matched by exactly one
// Report with the call's outcome.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return nil
	}
	if b.probing {
		// A probe is already out; everyone else keeps failing fast until it
		// reports back.
		return fmt.Errorf("%w (probe in flight)", ErrOpen)
	}
	if wait := b.cooldown() - b.now().Sub(b.openedAt); wait > 0 {
		return fmt.Errorf("%w (retry in %s)", ErrOpen, wait.Round(time.Millisecond))
	}
	b.probing = true
	return nil
}

// Report records the outcome of a call admitted by Allow. A success closes
// the breaker and clears its failure run; a failure extends the run and —
// at the threshold, or on a failed half-open probe — (re)opens it.
func (b *Breaker) Report(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.failures = 0
		b.openedAt = time.Time{}
		b.probing = false
		return
	}
	if b.probing {
		// The probe failed: back to fully open, cooldown restarts.
		b.probing = false
		b.openedAt = b.now()
		return
	}
	b.failures++
	if b.openedAt.IsZero() && b.failures >= b.threshold() {
		b.openedAt = b.now()
	}
}

// State renders the breaker's current state for logs and tests:
// "closed", "open", or "half-open".
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openedAt.IsZero():
		return "closed"
	case b.probing:
		return "half-open"
	default:
		return "open"
	}
}
