package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// recorder is an injectable Sleep that returns instantly and keeps the
// requested delays, so backoff behavior is asserted in virtual time.
type recorder struct{ delays []time.Duration }

func (r *recorder) sleep(ctx context.Context, d time.Duration) error {
	r.delays = append(r.delays, d)
	return ctx.Err()
}

// unit is a Rand that always returns 1-epsilon is awkward; tests use a
// constant 0.5 so expected delays are exactly half the backoff window.
func half() float64 { return 0.5 }

func TestDoSucceedsFirstTry(t *testing.T) {
	rec := &recorder{}
	calls := 0
	err := Do(context.Background(), Policy{Sleep: rec.sleep, Rand: half}, func(ctx context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 || len(rec.delays) != 0 {
		t.Fatalf("err=%v calls=%d delays=%v", err, calls, rec.delays)
	}
}

func TestDoRetriesWithExponentialJitteredBackoff(t *testing.T) {
	rec := &recorder{}
	p := Policy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Sleep: rec.sleep, Rand: half}
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Full jitter with Rand=0.5: half of 100ms, 200ms, 400ms.
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(rec.delays) != len(want) {
		t.Fatalf("delays = %v, want %v", rec.delays, want)
	}
	for i := range want {
		if rec.delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (all: %v)", i, rec.delays[i], want[i], rec.delays)
		}
	}
}

func TestDoCapsBackoffAtMaxDelay(t *testing.T) {
	rec := &recorder{}
	p := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 300 * time.Millisecond, Sleep: rec.sleep, Rand: half}
	err := Do(context.Background(), p, func(ctx context.Context) error { return errors.New("x") })
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	// Windows: 100, 200, then capped at 300 for the rest; halved by jitter.
	want := []time.Duration{50, 100, 150, 150, 150}
	for i, w := range want {
		if rec.delays[i] != w*time.Millisecond {
			t.Fatalf("delay[%d] = %v, want %v", i, rec.delays[i], w*time.Millisecond)
		}
	}
}

func TestDoExhaustsAttemptsAndReturnsLastError(t *testing.T) {
	rec := &recorder{}
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3, Sleep: rec.sleep, Rand: half}, func(ctx context.Context) error {
		calls++
		return fmt.Errorf("attempt %d failed", calls)
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil || err.Error() != "attempt 3 failed" {
		t.Fatalf("err = %v, want the last attempt's error", err)
	}
	if len(rec.delays) != 2 {
		t.Fatalf("slept %d times, want 2 (no sleep after the final attempt)", len(rec.delays))
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	rec := &recorder{}
	sentinel := errors.New("bad request")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: rec.sleep, Rand: half}, func(ctx context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 || len(rec.delays) != 0 {
		t.Fatalf("calls=%d delays=%v; Permanent must stop immediately", calls, rec.delays)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the wrapped sentinel", err)
	}
}

func TestDoHonorsRetryAfterOverBackoff(t *testing.T) {
	rec := &recorder{}
	p := Policy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour, Sleep: rec.sleep, Rand: half}
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return After(errors.New("busy"), 7*time.Millisecond)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// The server's hint replaces the (enormous) computed backoff entirely.
	for i, d := range rec.delays {
		if d != 7*time.Millisecond {
			t.Fatalf("delay[%d] = %v, want the Retry-After 7ms", i, d)
		}
	}
}

func TestDoUnwrapsAfterOnExhaustion(t *testing.T) {
	rec := &recorder{}
	sentinel := errors.New("busy")
	err := Do(context.Background(), Policy{MaxAttempts: 2, Sleep: rec.sleep, Rand: half}, func(ctx context.Context) error {
		return After(sentinel, time.Millisecond)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the wrapped sentinel", err)
	}
}

func TestDoRespectsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 10, Rand: half, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel() // the context dies while we back off
		return ctx.Err()
	}}, func(ctx context.Context) error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no attempt after cancellation)", calls)
	}
}

func TestDoChecksContextBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{}, func(ctx context.Context) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d; a dead context must not run the op", err, calls)
	}
}

func TestPermanentAndAfterKeepNilNil(t *testing.T) {
	if Permanent(nil) != nil || After(nil, time.Second) != nil {
		t.Fatal("wrapping nil must stay nil")
	}
}

func TestBackoffShiftOverflowClampsToCap(t *testing.T) {
	p := Policy{BaseDelay: time.Second, MaxDelay: 2 * time.Second, Rand: func() float64 { return 1 }}
	for _, attempt := range []int{40, 62, 63, 100} {
		if d := p.backoff(attempt); d != 2*time.Second {
			t.Fatalf("backoff(%d) = %v, want the 2s cap", attempt, d)
		}
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	var p Policy
	if p.maxAttempts() != 4 || p.baseDelay() != 50*time.Millisecond || p.maxDelay() != 2*time.Second {
		t.Fatalf("zero-value defaults drifted: %d %v %v", p.maxAttempts(), p.baseDelay(), p.maxDelay())
	}
}

// fakeTime is an injectable Now whose clock advances only when the test
// (or its sleep recorder) says so.
type fakeTime struct{ t time.Time }

func (f *fakeTime) now() time.Time { return f.t }

func TestDoStopsWhenMaxElapsedSpent(t *testing.T) {
	clock := &fakeTime{t: time.Unix(0, 0)}
	calls := 0
	// Every attempt "takes" 40ms of virtual time; the 100ms budget admits
	// the first two sleeps' worth of attempts and then stops mid-policy.
	err := Do(context.Background(), Policy{
		MaxAttempts: 10,
		MaxElapsed:  100 * time.Millisecond,
		Rand:        half,
		Now:         clock.now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			clock.t = clock.t.Add(d)
			return ctx.Err()
		},
	}, func(ctx context.Context) error {
		calls++
		clock.t = clock.t.Add(40 * time.Millisecond)
		return fmt.Errorf("transient %d", calls)
	})
	if err == nil {
		t.Fatal("want the last transient error")
	}
	if calls >= 10 {
		t.Fatalf("budget did not stop the loop: %d calls", calls)
	}
	if calls < 2 {
		t.Fatalf("budget stopped too early: %d calls", calls)
	}
}

func TestDoRefusesSleepBeyondBudget(t *testing.T) {
	clock := &fakeTime{t: time.Unix(0, 0)}
	rec := &recorder{}
	calls := 0
	// The server demands a 10-minute Retry-After; a 1-second budget must
	// return the error immediately instead of honoring it.
	err := Do(context.Background(), Policy{
		MaxAttempts: 5,
		MaxElapsed:  time.Second,
		Rand:        half,
		Now:         clock.now,
		Sleep:       rec.sleep,
	}, func(ctx context.Context) error {
		calls++
		return After(errors.New("overloaded"), 10*time.Minute)
	})
	if err == nil || err.Error() != "overloaded" {
		t.Fatalf("err = %v, want the unwrapped server error", err)
	}
	if calls != 1 || len(rec.delays) != 0 {
		t.Fatalf("calls=%d delays=%v; an unaffordable Retry-After must not be slept through", calls, rec.delays)
	}
}

func TestDoMaxElapsedZeroMeansUnbounded(t *testing.T) {
	rec := &recorder{}
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3, Rand: half, Sleep: rec.sleep}, func(ctx context.Context) error {
		calls++
		return errors.New("transient")
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d; zero MaxElapsed must keep the historical behavior", err, calls)
	}
}
