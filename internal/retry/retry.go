// Package retry implements bounded exponential backoff with full jitter
// for transient failures: the client-side half of the service's
// backpressure protocol (marchd answers 503 + Retry-After when its queue
// is full; marchctl retries through it with this package).
//
// The policy is deliberately small: capped exponential backoff, full
// jitter (delay = rand * min(cap, base<<attempt), the "Full Jitter"
// strategy — decorrelated load spikes without coordination), an explicit
// server override (After carries a Retry-After hint that replaces the
// computed backoff), and an explicit stop (Permanent marks an error not
// worth retrying). Sleeping is context-aware and injectable, so tests run
// in virtual time.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy configures Do. The zero value is usable: 4 attempts, 50ms base,
// 2s cap, real sleep, math/rand jitter.
type Policy struct {
	// MaxAttempts bounds the total number of op invocations (not retries);
	// <=0 means 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff; <=0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff delay; <=0 means 2s.
	MaxDelay time.Duration
	// Sleep waits d or until ctx is done, whichever is first, returning
	// ctx.Err() if the context won. nil means a timer-based sleep; tests
	// inject a recorder that returns instantly.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand returns a jitter factor in [0, 1); nil means math/rand. Tests
	// inject a constant for deterministic delays.
	Rand func() float64
	// MaxElapsed bounds the total time Do spends across all attempts and
	// sleeps, measured from its first invocation of op: once the budget is
	// spent — or the next delay (including a server's Retry-After) would
	// overrun it — Do stops and returns the last error instead of sleeping
	// toward a deadline it cannot meet. <=0 means unbounded, the historical
	// behavior. This is the marchctl -timeout knob: MaxAttempts bounds how
	// many times we try, MaxElapsed bounds how long we keep trying.
	MaxElapsed time.Duration
	// Now supplies the clock for the MaxElapsed budget; nil means
	// time.Now. Tests inject a fake to verify budget arithmetic without
	// real sleeping.
	Now func() time.Time
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p Policy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p Policy) jitter() float64 {
	if p.Rand != nil {
		return p.Rand()
	}
	return rand.Float64()
}

// backoff computes the full-jitter delay for the given zero-based attempt
// index: rand * min(cap, base << attempt), with shift overflow clamped to
// the cap.
func (p Policy) backoff(attempt int) time.Duration {
	base, cap := p.baseDelay(), p.maxDelay()
	d := cap
	if attempt < 62 { // beyond that the shift alone overflows int64
		if shifted := base << uint(attempt); shifted > 0 && shifted < cap {
			d = shifted
		}
	}
	return time.Duration(p.jitter() * float64(d))
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns it (unwrapped
// for errors.Is/As). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// afterError carries a server-provided retry delay (Retry-After).
type afterError struct {
	err   error
	delay time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After wraps err with an explicit delay before the next attempt,
// overriding the computed backoff — the client-side carrier of a
// Retry-After header. A nil err stays nil.
func After(err error, delay time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, delay: delay}
}

func (p Policy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// Do invokes op until it succeeds, returns a Permanent error, the policy's
// attempts are exhausted, its MaxElapsed budget runs out, or ctx is done.
// The returned error is the last attempt's (with Permanent/After wrappers
// stripped), or ctx.Err() if the context ended the loop first.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	max := p.maxAttempts()
	start := p.now()
	var last error
	for attempt := 0; attempt < max; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if attempt == max-1 {
			break
		}
		delay := p.backoff(attempt)
		var after *afterError
		if errors.As(err, &after) {
			delay = after.delay
			last = after.err
		}
		// The elapsed budget: stop — rather than sleep — when the budget
		// is already spent or the pending delay would overrun it. A
		// server's huge Retry-After must not pin the client past its own
		// deadline.
		if p.MaxElapsed > 0 {
			remaining := p.MaxElapsed - p.now().Sub(start)
			if remaining <= 0 || delay > remaining {
				break
			}
		}
		if err := p.sleep(ctx, delay); err != nil {
			return err
		}
	}
	var after *afterError
	if errors.As(last, &after) {
		return after.err
	}
	return last
}
