// Package retry implements bounded exponential backoff with full jitter
// for transient failures: the client-side half of the service's
// backpressure protocol (marchd answers 503 + Retry-After when its queue
// is full; marchctl retries through it with this package).
//
// The policy is deliberately small: capped exponential backoff, full
// jitter (delay = rand * min(cap, base<<attempt), the "Full Jitter"
// strategy — decorrelated load spikes without coordination), an explicit
// server override (After carries a Retry-After hint that replaces the
// computed backoff), and an explicit stop (Permanent marks an error not
// worth retrying). Sleeping is context-aware and injectable, so tests run
// in virtual time.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy configures Do. The zero value is usable: 4 attempts, 50ms base,
// 2s cap, real sleep, math/rand jitter.
type Policy struct {
	// MaxAttempts bounds the total number of op invocations (not retries);
	// <=0 means 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff; <=0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff delay; <=0 means 2s.
	MaxDelay time.Duration
	// Sleep waits d or until ctx is done, whichever is first, returning
	// ctx.Err() if the context won. nil means a timer-based sleep; tests
	// inject a recorder that returns instantly.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand returns a jitter factor in [0, 1); nil means math/rand. Tests
	// inject a constant for deterministic delays.
	Rand func() float64
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p Policy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p Policy) jitter() float64 {
	if p.Rand != nil {
		return p.Rand()
	}
	return rand.Float64()
}

// backoff computes the full-jitter delay for the given zero-based attempt
// index: rand * min(cap, base << attempt), with shift overflow clamped to
// the cap.
func (p Policy) backoff(attempt int) time.Duration {
	base, cap := p.baseDelay(), p.maxDelay()
	d := cap
	if attempt < 62 { // beyond that the shift alone overflows int64
		if shifted := base << uint(attempt); shifted > 0 && shifted < cap {
			d = shifted
		}
	}
	return time.Duration(p.jitter() * float64(d))
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns it (unwrapped
// for errors.Is/As). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// afterError carries a server-provided retry delay (Retry-After).
type afterError struct {
	err   error
	delay time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After wraps err with an explicit delay before the next attempt,
// overriding the computed backoff — the client-side carrier of a
// Retry-After header. A nil err stays nil.
func After(err error, delay time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, delay: delay}
}

// Do invokes op until it succeeds, returns a Permanent error, the policy's
// attempts are exhausted, or ctx is done. The returned error is the last
// attempt's (with Permanent/After wrappers stripped), or ctx.Err() if the
// context ended the loop first.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	max := p.maxAttempts()
	var last error
	for attempt := 0; attempt < max; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if attempt == max-1 {
			break
		}
		delay := p.backoff(attempt)
		var after *afterError
		if errors.As(err, &after) {
			delay = after.delay
			last = after.err
		}
		if err := p.sleep(ctx, delay); err != nil {
			return err
		}
	}
	var after *afterError
	if errors.As(last, &after) {
		return after.err
	}
	return last
}
