package word

import (
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

func TestBackgroundsStandardSet(t *testing.T) {
	bgs, err := Backgrounds(4)
	if err != nil {
		t.Fatal(err)
	}
	// log2(4)+1 = 3 backgrounds: 0000, 0101, 0011.
	if len(bgs) != 3 {
		t.Fatalf("%d backgrounds, want 3", len(bgs))
	}
	want := []string{"0000", "0101", "0011"}
	for i, bg := range bgs {
		if bg.String() != want[i] {
			t.Errorf("background %d = %s, want %s", i, bg, want[i])
		}
		if err := bg.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := Backgrounds(0); err == nil {
		t.Error("zero width must fail")
	}
	bgs8, err := Backgrounds(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(bgs8) != 4 {
		t.Errorf("width 8: %d backgrounds, want 4", len(bgs8))
	}
}

// The defining property of the standard set: every pair of distinct bits
// differs in at least one background.
func TestBackgroundsSeparateAllBitPairs(t *testing.T) {
	for _, width := range []int{2, 4, 8, 16} {
		bgs, err := Backgrounds(width)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < width; i++ {
			for j := i + 1; j < width; j++ {
				separated := false
				for _, bg := range bgs {
					if bg[i] != bg[j] {
						separated = true
						break
					}
				}
				if !separated {
					t.Errorf("width %d: bits %d and %d never differ", width, i, j)
				}
			}
		}
	}
}

func TestBackgroundBit(t *testing.T) {
	bg := Background{fp.V0, fp.V1}
	if bg.Bit(0, fp.V0) != fp.V0 || bg.Bit(1, fp.V0) != fp.V1 {
		t.Error("d=0 must write the background")
	}
	if bg.Bit(0, fp.V1) != fp.V1 || bg.Bit(1, fp.V1) != fp.V0 {
		t.Error("d=1 must write the complement")
	}
	if (Background{}).Validate() == nil {
		t.Error("empty background must fail")
	}
	if (Background{fp.VX}).Validate() == nil {
		t.Error("non-binary background must fail")
	}
}

func TestIntraWordFaultCounts(t *testing.T) {
	all := IntraWordFaults(4)
	// 36 two-cell static FPs × 12 ordered bit pairs.
	if len(all) != 432 {
		t.Fatalf("%d intra-word faults, want 432", len(all))
	}
	testable := TestableIntraWordFaults(4)
	// Excludes the 4 transition-write CFds per ordered bit pair: 432 - 4*12 = 384.
	if len(testable) != 384 {
		t.Fatalf("%d testable faults, want 384", len(testable))
	}
	for _, f := range all {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.ID(), err)
		}
	}
}

func TestFaultValidate(t *testing.T) {
	bad := Fault{FP: fp.MustParseFP("<0w1/0/->"), AggBit: 0, VicBit: 1}
	if bad.Validate() == nil {
		t.Error("single-cell primitive must be rejected")
	}
	same := Fault{FP: fp.MustParseFP("<0w1;0/1/->"), AggBit: 1, VicBit: 1}
	if same.Validate() == nil {
		t.Error("identical bits must be rejected")
	}
	dyn := Fault{FP: fp.MustParseFP("<0;0w0r0/1/1>"), AggBit: 0, VicBit: 1}
	if dyn.Validate() == nil {
		t.Error("dynamic primitives must be rejected")
	}
}

// The headline result of word-oriented testing: a single solid background
// misses intra-word couplings between equal-valued bits; the standard
// log2(w)+1 set restores full coverage of the march-testable faults.
func TestBackgroundSetRestoresCoverage(t *testing.T) {
	cfg := Config{}
	faults := TestableIntraWordFaults(cfg.width())
	bgs, err := Backgrounds(cfg.width())
	if err != nil {
		t.Fatal(err)
	}
	solid := []Background{Solid(cfg.width())}

	dSolid, err := Coverage(march.MarchSS, faults, solid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dAll, err := Coverage(march.MarchSS, faults, bgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dAll != len(faults) {
		t.Errorf("March SS with the standard backgrounds: %d/%d, want full", dAll, len(faults))
	}
	if dSolid >= dAll {
		t.Errorf("solid background must cover strictly less: %d vs %d", dSolid, dAll)
	}
	// Pinned measurement (EXPERIMENTS.md): 192 solid-detectable faults of
	// the testable 336.
	if dSolid != 192 {
		t.Errorf("solid coverage = %d, previously measured 192", dSolid)
	}
}

// The pinned finding: write-sensitized intra-word disturb couplings are
// undetectable by word-wide march operations under any background — the
// sensitizing word write rewrites the victim bit in the same cycle.
func TestWriteCFdsUnmarchTestable(t *testing.T) {
	cfg := Config{}
	bgs, err := Backgrounds(cfg.width())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, f := range IntraWordFaults(cfg.width()) {
		if MarchTestable(f) {
			continue
		}
		checked++
		for _, m := range []march.Test{march.MATSPlus, march.MarchCMinus, march.MarchSS, march.MarchSL} {
			det, err := Detects(m, f, bgs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if det {
				t.Errorf("%s detected %s — the masking analysis no longer holds", m.Name, f.ID())
			}
		}
	}
	if checked != 48 {
		t.Errorf("checked %d transition-write CFds instances, want 48", checked)
	}
}

// Detection is background-order independent and deterministic.
func TestDetectsValidation(t *testing.T) {
	cfg := Config{}
	f := Fault{FP: fp.MustParseFP("<0;1/0/->"), AggBit: 0, VicBit: 5}
	if _, err := Detects(march.MarchSS, f, []Background{Solid(4)}, cfg); err == nil {
		t.Error("out-of-width bits must error")
	}
	f2 := Fault{FP: fp.MustParseFP("<0;1/0/->"), AggBit: 0, VicBit: 1}
	if _, err := Detects(march.MarchSS, f2, []Background{Solid(8)}, cfg); err == nil {
		t.Error("background/width mismatch must error")
	}
}
