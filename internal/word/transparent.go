package word

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Transparent derives the in-field ("transparent") variant of a march test
// for word-oriented memories, after Li et al. (arXiv:0710.4747): the leading
// write-only initialization element is dropped and the memory's existing
// content plays the role of the d=0 data background, so the test can run
// periodically in the field without destroying user data.
//
// The transformation is valid only when the remaining test (a) is readable
// starting from the content convention — every read before the first write
// of a cell expects d=0, i.e. the content itself — and (b) restores the
// content: the fault-free exit value must be 0 so the array holds its
// original data when the test finishes.
func Transparent(t march.Test) (march.Test, error) {
	if len(t.Elems) == 0 {
		return march.Test{}, fmt.Errorf("word: transparent transform of empty test")
	}
	first := t.Elems[0]
	if len(first.Ops) == 0 {
		return march.Test{}, fmt.Errorf("word: transparent transform: empty first element")
	}
	for _, op := range first.Ops {
		if op.Kind != fp.OpWrite {
			return march.Test{}, fmt.Errorf("word: transparent transform: first element %s is not write-only initialization", first.String())
		}
	}
	rest := t.Clone()
	rest.Elems = rest.Elems[1:]
	if len(rest.Elems) == 0 {
		return march.Test{}, fmt.Errorf("word: transparent transform: test is initialization only")
	}
	// Walk the fault-free value under the content convention (content = d0):
	// reads must agree with the running value, and the test must exit at 0.
	v := fp.V0
	for _, e := range rest.Elems {
		for _, op := range e.Ops {
			switch op.Kind {
			case fp.OpRead:
				if op.Data.IsBinary() && op.Data != v {
					return march.Test{}, fmt.Errorf("word: transparent transform: element %s reads %s where content convention holds %s", e.String(), op.Data, v)
				}
			case fp.OpWrite:
				if op.Data.IsBinary() {
					v = op.Data
				}
			}
		}
	}
	if v != fp.V0 {
		return march.Test{}, fmt.Errorf("word: transparent transform: test exits at %s, content not restored", v)
	}
	if rest.Name != "" {
		rest.Name += " (transparent)"
	}
	return rest, nil
}

// DetectsTransparent reports whether the transparent test detects the
// intra-word fault for at least one memory content in the representative
// set. In transparent mode the tester does not choose the data background —
// the content is the background — so the set of backgrounds stands in for
// the contents the in-field scheduler will encounter across runs; a fault
// counts as transparently detectable when some representative content
// sensitizes and observes it.
func DetectsTransparent(t march.Test, f Fault, bgs []Background, cfg Config) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	if f.AggBit >= cfg.width() || f.VicBit >= cfg.width() {
		return false, fmt.Errorf("word: fault bits (%d,%d) exceed width %d", f.AggBit, f.VicBit, cfg.width())
	}
	for _, bg := range bgs {
		if err := bg.Validate(); err != nil {
			return false, err
		}
		if len(bg) != cfg.width() {
			return false, fmt.Errorf("word: background width %d, memory width %d", len(bg), cfg.width())
		}
		d, err := runTransparent(t, f, bg, cfg)
		if err != nil {
			return false, err
		}
		if d {
			return true, nil
		}
	}
	return false, nil
}

// runTransparent applies the (already transformed) transparent test with the
// memory content initialized to the background pattern itself: bit i of every
// word starts at bg[i], exactly the state the dropped initialization element
// would have produced, except no write ever happens before the first read.
func runTransparent(t march.Test, f Fault, bg Background, cfg Config) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	m := newWMemory(cfg.words(), cfg.width())
	for w := range m.good {
		for i := range m.good[w] {
			m.good[w][i] = bg[i]
			m.faulty[w][i] = bg[i]
		}
	}
	for w := range m.faulty {
		m.settle(f, w)
	}
	for _, e := range t.Elems {
		for _, w := range e.Order.Addresses(cfg.words()) {
			for _, op := range e.Ops {
				switch op.Kind {
				case fp.OpWrite:
					m.applyWrite(f, bg, w, op.Data)
				case fp.OpRead:
					if m.applyRead(f, w) {
						return true, nil
					}
				}
			}
		}
	}
	return false, nil
}

// TransparentCoverage counts how many intra-word faults the transparent test
// detects under the representative content set.
func TransparentCoverage(t march.Test, faults []Fault, bgs []Background, cfg Config) (detected int, err error) {
	for _, f := range faults {
		d, err := DetectsTransparent(t, f, bgs, cfg)
		if err != nil {
			return detected, err
		}
		if d {
			detected++
		}
	}
	return detected, nil
}
