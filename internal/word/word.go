// Package word extends the bit-oriented march framework to word-oriented
// memories (n words of w bits). A word-oriented march test applies a
// bit-oriented march with a set of data backgrounds: "w0" writes the
// background pattern, "w1" its complement; reads expect accordingly.
//
// The package reproduces the classic word-oriented testing result: faults
// coupling two bits *inside* one word are sensitized only when the two bits
// receive different values, so a single data background (solid 0/1) misses
// them, while the standard set of log2(w)+1 backgrounds (solid, 0101...,
// 00110011..., ...) distinguishes every bit pair and restores the
// bit-oriented coverage.
package word

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Background is a data pattern of one word: Background[i] is the value
// "w0" writes into bit i ("w1" writes the complement).
type Background []fp.Value

// String renders the pattern LSB first, e.g. "0101".
func (b Background) String() string {
	var s strings.Builder
	for _, v := range b {
		s.WriteString(v.String())
	}
	return s.String()
}

// Validate checks the pattern is fully specified.
func (b Background) Validate() error {
	if len(b) == 0 {
		return fmt.Errorf("word: empty background")
	}
	for i, v := range b {
		if !v.IsBinary() {
			return fmt.Errorf("word: background bit %d not binary", i)
		}
	}
	return nil
}

// Bit returns the value written into bit i for march data d: the background
// bit for d = 0, its complement for d = 1.
func (b Background) Bit(i int, d fp.Value) fp.Value {
	if d == fp.V1 {
		return b[i].Not()
	}
	return b[i]
}

// Solid returns the all-zero background of the given width.
func Solid(width int) Background {
	b := make(Background, width)
	for i := range b {
		b[i] = fp.V0
	}
	return b
}

// Backgrounds returns the standard set for a w-bit word: the solid
// background plus one alternating background per address bit of the bit
// index (log2(w) of them, for power-of-two widths): 0101..., 00110011...,
// etc. Every pair of distinct bits differs in at least one background.
func Backgrounds(width int) ([]Background, error) {
	if width < 1 {
		return nil, fmt.Errorf("word: width %d invalid", width)
	}
	out := []Background{Solid(width)}
	for stride := 1; stride < width; stride *= 2 {
		b := make(Background, width)
		for i := range b {
			b[i] = fp.ValueOf(uint8(i/stride) & 1)
		}
		out = append(out, b)
	}
	return out, nil
}

// Fault is an intra-word fault: a two-cell fault primitive bound to two
// bits of the same word. Every word of the array carries the fault (it is
// a cell-array design defect, e.g. adjacent columns bridged within the word
// line), so the word index is not part of the model.
type Fault struct {
	FP     fp.FP
	AggBit int
	VicBit int
}

// ID returns "CFds<0w1;0/1/->@b0>b2".
func (f Fault) ID() string {
	return fmt.Sprintf("%s@b%d>b%d", f.FP.ID(), f.AggBit, f.VicBit)
}

// Validate checks the fault shape.
func (f Fault) Validate() error {
	if err := f.FP.Validate(); err != nil {
		return err
	}
	if f.FP.Cells != 2 {
		return fmt.Errorf("word: intra-word fault needs a two-cell primitive, got %v", f.FP)
	}
	if f.FP.IsDynamic() {
		return fmt.Errorf("word: dynamic intra-word faults not modeled")
	}
	if f.AggBit == f.VicBit || f.AggBit < 0 || f.VicBit < 0 {
		return fmt.Errorf("word: invalid bit pair (%d,%d)", f.AggBit, f.VicBit)
	}
	return nil
}

// IntraWordFaults enumerates every static two-cell fault primitive over
// every ordered bit pair of a w-bit word.
func IntraWordFaults(width int) []Fault {
	var out []Fault
	for _, p := range fp.AllTwoCellStatic() {
		for a := 0; a < width; a++ {
			for v := 0; v < width; v++ {
				if a == v {
					continue
				}
				out = append(out, Fault{FP: p, AggBit: a, VicBit: v})
			}
		}
	}
	return out
}

// MarchTestable reports whether an intra-word fault is testable by
// word-wide march operations at all. Transition-write disturb couplings
// (CFds whose aggressor bit transitions under a write) are not: the fault
// effect equals the value the same word write puts into the victim bit
// whenever the firing pre-state is reachable — to see the corruption the
// victim would have to be rewritten to its old value while the aggressor
// changes, and word-wide writes move both bits between the background and
// its complement together. Non-transition write disturbs escape the
// argument (two consecutive identical word writes keep the victim value
// while re-applying the aggressor write) and are testable. Detecting the
// transition-write disturbs requires partial writes (bit-write enables) —
// a measured finding of this package, pinned in its tests and discussed in
// EXPERIMENTS.md.
func MarchTestable(f Fault) bool {
	return !(f.FP.Class == fp.CFds &&
		f.FP.Op.Kind == fp.OpWrite &&
		f.FP.AInit.IsBinary() &&
		f.FP.Op.Data != f.FP.AInit)
}

// TestableIntraWordFaults returns the intra-word faults word-wide march
// operations can detect (see MarchTestable).
func TestableIntraWordFaults(width int) []Fault {
	var out []Fault
	for _, f := range IntraWordFaults(width) {
		if MarchTestable(f) {
			out = append(out, f)
		}
	}
	return out
}

// Config controls the word-level simulation.
type Config struct {
	// Words is the number of words; 0 means 2 (intra-word faults are
	// word-local, so two words suffice to exercise the address loop).
	Words int
	// Width is the word width; 0 means 4.
	Width int
}

func (c Config) words() int {
	if c.Words <= 0 {
		return 2
	}
	return c.Words
}

func (c Config) width() int {
	if c.Width <= 0 {
		return 4
	}
	return c.Width
}

// memory is the faulty/good pair of word arrays.
type wmemory struct {
	good, faulty [][]fp.Value // [word][bit]
}

func newWMemory(words, width int) *wmemory {
	m := &wmemory{}
	for w := 0; w < words; w++ {
		m.good = append(m.good, make([]fp.Value, width))
		m.faulty = append(m.faulty, make([]fp.Value, width))
	}
	return m
}

func (m *wmemory) reset(init fp.Value) {
	for w := range m.good {
		for i := range m.good[w] {
			m.good[w][i] = init
			m.faulty[w][i] = init
		}
	}
}

// applyWrite writes march data d under background bg to word w, applying
// the intra-word fault semantics bit by bit: bit writes happen "at once",
// with triggers evaluated against the pre-write state.
func (m *wmemory) applyWrite(f Fault, bg Background, w int, d fp.Value) {
	width := len(bg)
	pre := append([]fp.Value(nil), m.faulty[w]...)
	for i := 0; i < width; i++ {
		val := bg.Bit(i, d)
		m.good[w][i] = val
		m.faulty[w][i] = val
	}
	// Aggressor-side trigger: the write applied to the aggressor bit, with
	// pre-write states.
	aggOp := fp.W(bg.Bit(f.AggBit, d))
	if f.FP.MatchesOp(aggOp, fp.RoleAggressor, pre[f.AggBit], pre[f.VicBit]) {
		m.faulty[w][f.VicBit] = f.FP.F
	}
	// Victim-side trigger (CFtr/CFwd): the write applied to the victim bit
	// while the aggressor held its pre-state.
	vicOp := fp.W(bg.Bit(f.VicBit, d))
	if f.FP.MatchesOp(vicOp, fp.RoleVictim, pre[f.AggBit], pre[f.VicBit]) {
		m.faulty[w][f.VicBit] = f.FP.F
	}
	// State condition (CFst) settles on the new state.
	m.settle(f, w)
}

// applyRead reads word w, returning whether the faulty word differs from
// the good one on any bit (word-level comparison, as a tester does).
func (m *wmemory) applyRead(f Fault, w int) bool {
	// Victim-side read triggers (CFrd/CFdr/CFir).
	pre := m.faulty[w]
	mismatch := false
	if f.FP.MatchesOp(fp.R(pre[f.VicBit]), fp.RoleVictim, pre[f.AggBit], pre[f.VicBit]) && f.FP.R.IsBinary() {
		if f.FP.R != m.good[w][f.VicBit] {
			mismatch = true
		}
		m.faulty[w][f.VicBit] = f.FP.F
	} else if f.FP.Trigger == fp.TrigOp && f.FP.OpRole == fp.RoleAggressor && f.FP.Op.Kind == fp.OpRead &&
		f.FP.MatchesOp(fp.R(pre[f.AggBit]), fp.RoleAggressor, pre[f.AggBit], pre[f.VicBit]) {
		// Aggressor-side read disturb.
		m.faulty[w][f.VicBit] = f.FP.F
	}
	for i := range m.good[w] {
		if m.faulty[w][i] != m.good[w][i] {
			mismatch = true
		}
	}
	m.settle(f, w)
	return mismatch
}

func (m *wmemory) settle(f Fault, w int) {
	if f.FP.Trigger != fp.TrigState {
		return
	}
	if f.FP.MatchesState(m.faulty[w][f.AggBit], m.faulty[w][f.VicBit]) {
		m.faulty[w][f.VicBit] = f.FP.F
	}
}

// runBackground applies the bit-oriented march under one background and
// reports whether any read detects the fault.
func runBackground(t march.Test, f Fault, bg Background, cfg Config, init fp.Value) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	m := newWMemory(cfg.words(), cfg.width())
	m.reset(init)
	for w := range m.faulty {
		m.settle(f, w)
	}
	for _, e := range t.Elems {
		for _, w := range e.Order.Addresses(cfg.words()) {
			for _, op := range e.Ops {
				switch op.Kind {
				case fp.OpWrite:
					m.applyWrite(f, bg, w, op.Data)
				case fp.OpRead:
					if m.applyRead(f, w) {
						return true, nil
					}
				}
			}
		}
	}
	return false, nil
}

// Detects reports whether applying the bit-oriented march test under every
// background in the set detects the intra-word fault, for both uniform
// initial values.
func Detects(t march.Test, f Fault, bgs []Background, cfg Config) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	if f.AggBit >= cfg.width() || f.VicBit >= cfg.width() {
		return false, fmt.Errorf("word: fault bits (%d,%d) exceed width %d", f.AggBit, f.VicBit, cfg.width())
	}
	for _, bg := range bgs {
		if err := bg.Validate(); err != nil {
			return false, err
		}
		if len(bg) != cfg.width() {
			return false, fmt.Errorf("word: background width %d, memory width %d", len(bg), cfg.width())
		}
	}
	for _, init := range []fp.Value{fp.V0, fp.V1} {
		detected := false
		for _, bg := range bgs {
			d, err := runBackground(t, f, bg, cfg, init)
			if err != nil {
				return false, err
			}
			if d {
				detected = true
				break
			}
		}
		if !detected {
			return false, nil
		}
	}
	return true, nil
}

// Coverage counts how many intra-word faults the test detects under the
// background set.
func Coverage(t march.Test, faults []Fault, bgs []Background, cfg Config) (detected int, err error) {
	for _, f := range faults {
		d, err := Detects(t, f, bgs, cfg)
		if err != nil {
			return detected, err
		}
		if d {
			detected++
		}
	}
	return detected, nil
}
