package word

import (
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// FuzzWordBackgrounds pins the standard background set across the whole
// supported width range [1,64]: the set has the documented 1+ceil(log2(w))
// size, renders and round-trips through its string form, separates every
// distinct bit pair (the property that restores bit-oriented coverage), and
// — on small widths, where simulation is cheap — detection coverage is
// monotone in the background set: adding a background never loses a fault.
func FuzzWordBackgrounds(f *testing.F) {
	for _, w := range []int{1, 2, 3, 4, 5, 8, 15, 16, 33, 64} {
		f.Add(w)
	}
	f.Add(0)
	f.Add(-7)
	f.Add(1 << 20)

	f.Fuzz(func(t *testing.T, width int) {
		if width < 1 {
			if _, err := Backgrounds(width); err == nil {
				t.Fatalf("Backgrounds(%d) accepted an invalid width", width)
			}
			return
		}
		if width > 64 {
			t.Skip("width beyond the modeled range")
		}
		bgs, err := Backgrounds(width)
		if err != nil {
			t.Fatalf("Backgrounds(%d): %v", width, err)
		}
		wantLen := 1
		for stride := 1; stride < width; stride *= 2 {
			wantLen++
		}
		if len(bgs) != wantLen {
			t.Fatalf("width %d: %d backgrounds, want %d", width, len(bgs), wantLen)
		}
		for i, bg := range bgs {
			if err := bg.Validate(); err != nil {
				t.Fatalf("width %d background %d: %v", width, i, err)
			}
			if len(bg) != width {
				t.Fatalf("width %d background %d has %d bits", width, i, len(bg))
			}
			// Round-trip through the rendered form.
			s := bg.String()
			if len(s) != width {
				t.Fatalf("width %d background %d renders %d chars", width, i, len(s))
			}
			for j, c := range s {
				var v fp.Value
				switch c {
				case '0':
					v = fp.V0
				case '1':
					v = fp.V1
				default:
					t.Fatalf("width %d background %d renders non-binary %q", width, i, s)
				}
				if bg[j] != v {
					t.Fatalf("width %d background %d: bit %d round-trips %v -> %q", width, i, j, bg[j], c)
				}
			}
		}
		// Separation: every pair of distinct bits differs under some
		// background — the defining property of the standard set.
		for a := 0; a < width; a++ {
			for b := a + 1; b < width; b++ {
				split := false
				for _, bg := range bgs {
					if bg[a] != bg[b] {
						split = true
						break
					}
				}
				if !split {
					t.Fatalf("width %d: bits %d and %d agree under every background", width, a, b)
				}
			}
		}
		// Coverage monotonicity, where the fault space is small enough to
		// simulate per fuzz iteration.
		if width < 2 || width > 4 {
			return
		}
		faults := TestableIntraWordFaults(width)
		cfg := Config{Words: 2, Width: width}
		prev := -1
		for k := 1; k <= len(bgs); k++ {
			det, err := Coverage(march.MATSPlus, faults, bgs[:k], cfg)
			if err != nil {
				t.Fatalf("width %d coverage with %d backgrounds: %v", width, k, err)
			}
			if det < prev {
				t.Fatalf("width %d: coverage dropped from %d to %d when adding background %d",
					width, prev, det, k)
			}
			prev = det
		}
	})
}
