package linked

import (
	"encoding/json"
	"strings"
	"testing"

	"marchgen/internal/fp"
)

func TestFaultJSONRoundTrip(t *testing.T) {
	lf2aa, err := NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	lf3, err := NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	lf1, err := NewLF1(fp.MustParseFP("<0w1/0/->"), fp.MustParseFP("<0r0/1/1>"))
	if err != nil {
		t.Fatal(err)
	}
	simple, err := NewSimple(fp.MustParseFP("<0w1r1/0/0>")) // dynamic simple fault
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Fault{lf2aa, lf3, lf1, simple} {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("%s: %v", f.ID(), err)
		}
		var back Fault
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v (%s)", f.ID(), err, data)
		}
		if back.ID() != f.ID() {
			t.Errorf("round trip changed %s to %s", f.ID(), back.ID())
		}
	}
}

func TestFaultJSONWireFormat(t *testing.T) {
	lf, err := NewLF1(fp.MustParseFP("<0w1/0/->"), fp.MustParseFP("<0r0/1/1>"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(lf)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	// encoding/json escapes the < > of the FP notation as < / >.
	for _, want := range []string{`"kind":"LF1"`, `0w1/0/-`, `0r0/1/1`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire form missing %s: %s", want, s)
		}
	}
}

func TestFaultJSONUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"kind":"LF9","fps":["<0w1/0/->","<0r0/1/1>"]}`,     // unknown kind
		`{"kind":"LF1","fps":["<0w1/0/->"]}`,                 // wrong arity
		`{"kind":"Simple","fps":["<0w1/0/->","<0r0/1/1>"]}`,  // wrong arity
		`{"kind":"LF1","fps":["<garbage>","<0r0/1/1>"]}`,     // bad FP
		`{"kind":"LF1","fps":["<0w1/0/->","<1r1/1/0>"]}`,     // violates Definition 6
		`{"kind":"LF1","fps":["<0w1;0/1/->","<1w0;1/0/->"]}`, // wrong shape for LF1
		`"nope"`,
	}
	var f Fault
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &f); err == nil {
			t.Errorf("Unmarshal(%s) accepted", c)
		}
	}
}
