package linked

import (
	"encoding/json"
	"fmt"

	"marchgen/internal/fp"
)

// faultJSON is the wire form of a fault: primitives travel in the <S/F/R>
// notation, the kind as its taxonomy name.
type faultJSON struct {
	Kind string   `json:"kind"`
	FPs  []string `json:"fps"`
}

// MarshalJSON encodes the fault with its taxonomy kind and primitive
// notations (bindings are implied by the kind).
func (f Fault) MarshalJSON() ([]byte, error) {
	w := faultJSON{Kind: f.Kind.String()}
	for _, b := range f.FPs {
		w.FPs = append(w.FPs, b.FP.String())
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes and re-validates a fault from its wire form.
func (f *Fault) UnmarshalJSON(data []byte) error {
	var w faultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	prims := make([]fp.FP, len(w.FPs))
	for i, s := range w.FPs {
		p, err := fp.ParseFP(s)
		if err != nil {
			return err
		}
		prims[i] = p
	}
	var (
		out Fault
		err error
	)
	switch w.Kind {
	case "Simple":
		if len(prims) != 1 {
			return fmt.Errorf("linked: simple fault needs exactly one primitive, got %d", len(prims))
		}
		out, err = NewSimple(prims[0])
	case "LF1", "LF2aa", "LF2av", "LF2va", "LF3":
		if len(prims) != 2 {
			return fmt.Errorf("linked: %s needs exactly two primitives, got %d", w.Kind, len(prims))
		}
		switch w.Kind {
		case "LF1":
			out, err = NewLF1(prims[0], prims[1])
		case "LF2aa":
			out, err = NewLF2aa(prims[0], prims[1])
		case "LF2av":
			out, err = NewLF2av(prims[0], prims[1])
		case "LF2va":
			out, err = NewLF2va(prims[0], prims[1])
		case "LF3":
			out, err = NewLF3(prims[0], prims[1])
		}
	default:
		return fmt.Errorf("linked: unknown fault kind %q", w.Kind)
	}
	if err != nil {
		return err
	}
	*f = out
	return nil
}
