package linked

import (
	"strings"
	"testing"

	"marchgen/internal/fp"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Simple: "Simple", LF1: "LF1", LF2aa: "LF2aa",
		LF2av: "LF2av", LF2va: "LF2va", LF3: "LF3",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Simple.IsLinked() {
		t.Error("Simple must not be linked")
	}
	for _, k := range []Kind{LF1, LF2aa, LF2av, LF2va, LF3} {
		if !k.IsLinked() {
			t.Errorf("%v must be linked", k)
		}
	}
}

func TestNewSimple(t *testing.T) {
	one, err := NewSimple(fp.MustParseFP("<0w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	if one.Cells != 1 || one.Kind != Simple || one.FP1().V != 0 || one.FP1().A != -1 {
		t.Errorf("unexpected single-cell simple fault: %+v", one)
	}
	two, err := NewSimple(fp.MustParseFP("<0w1;0/1/->"))
	if err != nil {
		t.Fatal(err)
	}
	if two.Cells != 2 || two.FP1().A != 0 || two.FP1().V != 1 {
		t.Errorf("unexpected two-cell simple fault: %+v", two)
	}
	if err := one.Validate(); err != nil {
		t.Error(err)
	}
	if err := two.Validate(); err != nil {
		t.Error(err)
	}
}

// The paper's running example, eq. (12): Disturb Coupling Fault linked to
// Disturb Coupling Fault, < 0w1 ; 0 / 1 / - > → < 1w0 ; 1 / 0 / - >.
func TestPaperEq12LinksAsLF2aa(t *testing.T) {
	f1 := fp.MustParseFP("<0w1;0/1/->")
	f2 := fp.MustParseFP("<1w0;1/0/->")
	ft, err := NewLF2aa(f1, f2)
	if err != nil {
		t.Fatalf("eq. (12) pair must link: %v", err)
	}
	if err := ft.Validate(); err != nil {
		t.Error(err)
	}
	if !TrulyMasks(f1, f2) {
		t.Error("eq. (12) pair must be truly masking (the paper's canonical example)")
	}
	// The same pair with distinct aggressors is the Figure 1 LF3 case.
	lf3, err := NewLF3(f1, f2)
	if err != nil {
		t.Fatalf("Figure 1 pair must link as LF3: %v", err)
	}
	if lf3.Cells != 3 || lf3.FP1().A == lf3.FP2().A || lf3.FP1().V != lf3.FP2().V {
		t.Errorf("unexpected LF3 topology: %+v", lf3)
	}
}

// The Section 3 example, eq. (6): <0w1;0/1/-> → <0w1;1/0/-> with different
// aggressors and the same victim (Figure 1).
func TestPaperEq6LinksAsLF3(t *testing.T) {
	f1 := fp.MustParseFP("<0w1;0/1/->")
	f2 := fp.MustParseFP("<0w1;1/0/->")
	if _, err := NewLF3(f1, f2); err != nil {
		t.Fatalf("eq. (6) pair must link as LF3: %v", err)
	}
	if !TrulyMasks(f1, f2) {
		t.Error("eq. (6) pair must be truly masking")
	}
}

func TestCheckLinkRejections(t *testing.T) {
	tf := fp.MustParseFP("<0w1/0/->")   // F1=0
	wdf0 := fp.MustParseFP("<0w0/1/->") // VInit=0, F=1
	rdf0 := fp.MustParseFP("<0r0/1/1>")
	rdf1 := fp.MustParseFP("<1r1/0/0>")
	irf0 := fp.MustParseFP("<0r0/0/1>")
	sf0 := fp.MustParseFP("<0/1/->")

	cases := []struct {
		name   string
		f1, f2 fp.FP
	}{
		{"FP2 does not complement F1", tf, fp.MustParseFP("<1w1/0/->")},
		{"FP2 victim state mismatch (I2 != Fv1)", tf, fp.MustParseFP("<1r1/1/0>")},
		{"FP2 complements but wrong victim state", tf, rdf1},
		{"FP1 state-triggered", sf0, rdf0},
		{"FP2 state-triggered", tf, sf0},
		{"FP1 misreads (RDF cannot be masked)", rdf0, rdf1},
		{"FP1 does not change state (IRF)", irf0, rdf0},
	}
	for _, c := range cases {
		if err := CheckLink(c.f1, c.f2, LF1); err == nil {
			t.Errorf("%s: CheckLink(%v, %v) accepted", c.name, c.f1, c.f2)
		}
	}
	// Sanity: the canonical masking pair is accepted.
	if err := CheckLink(tf, rdf0, LF1); err != nil {
		t.Errorf("TF -> RDF must link: %v", err)
	}
	if err := CheckLink(tf, wdf0, LF1); err != nil {
		t.Errorf("TF -> WDF satisfies Definition 6 and must link: %v", err)
	}
}

func TestCheckLinkLF2aaAggressorChaining(t *testing.T) {
	// FP1 leaves the aggressor at 1 (0w1); an FP2 requiring aggressor 0 on
	// the same aggressor violates I2 = Fv1.
	f1 := fp.MustParseFP("<0w1;0/1/->")
	bad := fp.MustParseFP("<0w0;1/0/->")
	if err := CheckLink(f1, bad, LF2aa); err == nil {
		t.Error("LF2aa with incompatible aggressor states must be rejected")
	}
	// The same pair with distinct aggressors (LF3) is fine.
	if err := CheckLink(f1, bad, LF3); err != nil {
		t.Errorf("LF3 has no shared aggressor constraint: %v", err)
	}
	good := fp.MustParseFP("<1w0;1/0/->")
	if err := CheckLink(f1, good, LF2aa); err != nil {
		t.Errorf("compatible LF2aa pair rejected: %v", err)
	}
}

func TestAggressorFinal(t *testing.T) {
	cases := []struct {
		in   string
		want fp.Value
	}{
		{"<0w1;0/1/->", fp.V1}, // write on aggressor
		{"<1w0;1/0/->", fp.V0},
		{"<0r0;0/1/->", fp.V0}, // read on aggressor keeps state
		{"<1;0w1/0/->", fp.V1}, // op on victim keeps aggressor state
		{"<0;1r1/0/0>", fp.V0},
	}
	for _, c := range cases {
		if got := AggressorFinal(fp.MustParseFP(c.in)); got != c.want {
			t.Errorf("AggressorFinal(%s) = %v, want %v", c.in, got, c.want)
		}
	}
	if got := AggressorFinal(fp.MustParseFP("<0w1/0/->")); got != fp.VX {
		t.Errorf("AggressorFinal of a single-cell primitive = %v, want VX", got)
	}
}

func TestTrulyMasks(t *testing.T) {
	tf := fp.MustParseFP("<0w1/0/->")
	cases := []struct {
		name string
		f2   string
		want bool
	}{
		{"RDF masks", "<0r0/1/1>", true},
		{"WDF swaps the error", "<0w0/1/->", false},
		{"DRDF is caught at S2", "<0r0/1/0>", false},
	}
	for _, c := range cases {
		if got := TrulyMasks(tf, fp.MustParseFP(c.f2)); got != c.want {
			t.Errorf("%s: TrulyMasks(TF, %s) = %v, want %v", c.name, c.f2, got, c.want)
		}
	}
	// CFds as FP2 restores the victim silently: truly masking.
	f1 := fp.MustParseFP("<1;0w1/0/->") // CFtr: good 1, faulty 0
	f2 := fp.MustParseFP("<1w1;0/1/->") // CFds flips victim back to 1
	if !TrulyMasks(f1, f2) {
		t.Error("CFtr -> CFds must be truly masking")
	}
	// Non-linkable pairs never mask.
	if TrulyMasks(fp.MustParseFP("<0r0/1/1>"), fp.MustParseFP("<1r1/0/0>")) {
		t.Error("an FP1 that misreads cannot be masked")
	}
}

func TestFaultIDAndString(t *testing.T) {
	ft, err := NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	id := ft.ID()
	for _, want := range []string{"LF3", "CFds", "a0", "a1", "v2", "->"} {
		if !strings.Contains(id, want) {
			t.Errorf("ID %q missing %q", id, want)
		}
	}
	if ft.String() != id {
		t.Error("String must equal ID")
	}
}

func TestFaultValidateRejectsBrokenTopology(t *testing.T) {
	good, err := NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	broken := good
	broken.FPs = append([]Binding(nil), good.FPs...)
	broken.FPs[1].V = 0
	broken.FPs[1].A = 1
	if err := broken.Validate(); err == nil {
		t.Error("linked primitives with different victims must be rejected")
	}

	b2 := good
	b2.Cells = 4
	if err := b2.Validate(); err == nil {
		t.Error("Cells out of range must be rejected")
	}

	b3 := good
	b3.FPs = good.FPs[:1]
	if err := b3.Validate(); err == nil {
		t.Error("linked fault with one primitive must be rejected")
	}

	b4 := good
	b4.Kind = Simple
	if err := b4.Validate(); err == nil {
		t.Error("simple fault with two primitives must be rejected")
	}

	b5 := good
	b5.FPs = append([]Binding(nil), good.FPs...)
	b5.FPs[0].A = 1 // same as victim
	if err := b5.Validate(); err == nil {
		t.Error("aggressor == victim must be rejected")
	}
}

func TestConstructorsRejectWrongShapes(t *testing.T) {
	single := fp.MustParseFP("<0w1/0/->")
	coupling := fp.MustParseFP("<0w1;0/1/->")
	if _, err := NewLF1(coupling, single); err == nil {
		t.Error("NewLF1 must reject coupling primitives")
	}
	if _, err := NewLF2aa(single, coupling); err == nil {
		t.Error("NewLF2aa must reject single-cell primitives")
	}
	if _, err := NewLF2av(single, single); err == nil {
		t.Error("NewLF2av must reject a single-cell FP1")
	}
	if _, err := NewLF2va(coupling, coupling); err == nil {
		t.Error("NewLF2va must reject a coupling FP1")
	}
	if _, err := NewLF3(single, coupling); err == nil {
		t.Error("NewLF3 must reject single-cell primitives")
	}
	if _, err := NewSimple(fp.FP{Cells: 3}); err == nil {
		t.Error("NewSimple must reject unsupported cell counts")
	}
}

func TestFP2PanicsOnSimple(t *testing.T) {
	ft, err := NewSimple(fp.MustParseFP("<0w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("FP2 on a simple fault did not panic")
		}
	}()
	_ = ft.FP2()
}
