// Package linked models memory faults as bindings of fault primitives to
// abstract cells, covering both simple (un-linked) faults and the static
// linked faults that are the paper's subject (Section 3).
//
// A linked fault "FP1 → FP2" (Definition 6) is a pair of fault primitives
// where FP2 masks FP1: the fault effect of FP2 is the complement of FP1's
// (F2 = NOT F1) and FP2's sensitizing operation is applied after FP1's, on an
// f-cell of FP1. Detecting a linked fault requires detecting at least one of
// the two primitives in isolation.
//
// The taxonomy follows Hamdioui et al. (the paper's reference [10]):
//
//	LF1   single-cell linked faults (both FPs on the same cell)
//	LF2aa two-cell linked faults, both FPs coupling faults with the same
//	      aggressor and victim
//	LF2av two-cell linked faults, FP1 a coupling fault, FP2 a single-cell
//	      fault on the victim
//	LF2va two-cell linked faults, FP1 a single-cell fault on the victim,
//	      FP2 a coupling fault
//	LF3   three-cell linked faults, two coupling faults with distinct
//	      aggressors sharing the victim (Figure 1 of the paper)
package linked

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
)

// Kind classifies a fault by its structure.
type Kind uint8

// Fault kinds.
const (
	Simple Kind = iota // a single fault primitive, not linked
	LF1                // single-cell linked fault
	LF2aa              // two-cell, coupling → coupling, same aggressor
	LF2av              // two-cell, coupling → single-cell on the victim
	LF2va              // two-cell, single-cell on the victim → coupling
	LF3                // three-cell, two aggressors, shared victim
)

var kindNames = [...]string{"Simple", "LF1", "LF2aa", "LF2av", "LF2va", "LF3"}

// String returns the taxonomy name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsLinked reports whether the kind denotes a linked fault.
func (k Kind) IsLinked() bool { return k != Simple }

// Binding attaches a fault primitive to the abstract cells of a Fault. Cell
// indices are positions in the fault's cell set (0 .. Cells-1); the fault
// simulator maps them to concrete memory addresses when placing the fault.
type Binding struct {
	FP fp.FP
	// A is the index of the aggressor cell; -1 when the primitive has no
	// aggressor (single-cell primitives).
	A int
	// V is the index of the victim cell.
	V int
}

// Validate checks that the binding's cell indices are consistent with the
// primitive's shape and lie inside a fault with cells cells.
func (b Binding) Validate(cells int) error {
	if err := b.FP.Validate(); err != nil {
		return err
	}
	if b.V < 0 || b.V >= cells {
		return fmt.Errorf("linked: binding %v: victim index %d out of range [0,%d)", b.FP, b.V, cells)
	}
	if b.FP.Cells == 1 {
		if b.A != -1 {
			return fmt.Errorf("linked: binding %v: single-cell primitive cannot have an aggressor index", b.FP)
		}
		return nil
	}
	if b.A < 0 || b.A >= cells {
		return fmt.Errorf("linked: binding %v: aggressor index %d out of range [0,%d)", b.FP, b.A, cells)
	}
	if b.A == b.V {
		return fmt.Errorf("linked: binding %v: aggressor and victim must be distinct cells", b.FP)
	}
	return nil
}

// Fault is a functional fault: one fault primitive (Simple) or a linked pair
// (FP1 → FP2) bound to a common set of abstract cells. All bound primitives
// are simultaneously active; for linked faults the masking behavior emerges
// from simulating both.
type Fault struct {
	// Kind is the structural class.
	Kind Kind
	// Cells is the number of distinct cells involved (1, 2 or 3).
	Cells int
	// FPs holds the bound primitives in link order (FP1 first). A Simple
	// fault has exactly one entry; linked faults have exactly two.
	FPs []Binding
}

// FP1 returns the first (masked) primitive.
func (f Fault) FP1() Binding { return f.FPs[0] }

// FP2 returns the second (masking) primitive of a linked fault. It panics
// for simple faults.
func (f Fault) FP2() Binding {
	if len(f.FPs) < 2 {
		panic("linked: FP2 on a simple fault")
	}
	return f.FPs[1]
}

// ID returns a stable human-readable identifier, e.g.
// "LF3{CFds<0w1;0/1/->(a0,v2) -> CFds<0w1;1/0/->(a1,v2)}".
func (f Fault) ID() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	b.WriteByte('{')
	for i, fb := range f.FPs {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(fb.FP.ID())
		b.WriteByte('(')
		if fb.A >= 0 {
			fmt.Fprintf(&b, "a%d,", fb.A)
		}
		fmt.Fprintf(&b, "v%d", fb.V)
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}

// String is the same as ID.
func (f Fault) String() string { return f.ID() }

// Validate checks the structural invariants of the fault, including the
// linking conditions of Definition 6 for linked kinds.
func (f Fault) Validate() error {
	if f.Cells < 1 || f.Cells > 3 {
		return fmt.Errorf("linked: %s: Cells must be 1..3", f.ID())
	}
	switch f.Kind {
	case Simple:
		if len(f.FPs) != 1 {
			return fmt.Errorf("linked: %s: simple fault must bind exactly one primitive", f.ID())
		}
	case LF1, LF2aa, LF2av, LF2va, LF3:
		if len(f.FPs) != 2 {
			return fmt.Errorf("linked: %s: linked fault must bind exactly two primitives", f.ID())
		}
	default:
		return fmt.Errorf("linked: %s: unknown kind", f.ID())
	}
	for _, b := range f.FPs {
		if err := b.Validate(f.Cells); err != nil {
			return err
		}
	}
	if f.Kind == Simple {
		return nil
	}
	f1, f2 := f.FP1(), f.FP2()
	if f1.V != f2.V {
		return fmt.Errorf("linked: %s: linked primitives must share the victim cell", f.ID())
	}
	if err := CheckLink(f1.FP, f2.FP, f.Kind); err != nil {
		return fmt.Errorf("linked: %s: %v", f.ID(), err)
	}
	// Kind-specific aggressor topology.
	switch f.Kind {
	case LF1:
		if f.Cells != 1 || f1.FP.Cells != 1 || f2.FP.Cells != 1 {
			return fmt.Errorf("linked: %s: LF1 must bind two single-cell primitives on one cell", f.ID())
		}
	case LF2aa:
		if f.Cells != 2 || f1.FP.Cells != 2 || f2.FP.Cells != 2 || f1.A != f2.A {
			return fmt.Errorf("linked: %s: LF2aa must bind two coupling primitives with a shared aggressor", f.ID())
		}
	case LF2av:
		if f.Cells != 2 || f1.FP.Cells != 2 || f2.FP.Cells != 1 {
			return fmt.Errorf("linked: %s: LF2av must link a coupling primitive to a single-cell primitive", f.ID())
		}
	case LF2va:
		if f.Cells != 2 || f1.FP.Cells != 1 || f2.FP.Cells != 2 {
			return fmt.Errorf("linked: %s: LF2va must link a single-cell primitive to a coupling primitive", f.ID())
		}
	case LF3:
		if f.Cells != 3 || f1.FP.Cells != 2 || f2.FP.Cells != 2 || f1.A == f2.A {
			return fmt.Errorf("linked: %s: LF3 must bind two coupling primitives with distinct aggressors", f.ID())
		}
	}
	return nil
}

// AggressorFinal returns the state of a primitive's aggressor cell after its
// sensitizing sequence: a write on the aggressor leaves the written value,
// anything else leaves the required initial state.
func AggressorFinal(f fp.FP) fp.Value {
	if f.Cells != 2 {
		return fp.VX
	}
	if f.Trigger == fp.TrigOp && f.OpRole == fp.RoleAggressor && f.Op.Kind == fp.OpWrite {
		return f.Op.Data
	}
	return f.AInit
}

// CheckLink verifies the linking conditions of Definition 6 (and the state
// chaining of Definition 7) between two primitives destined to share a
// victim:
//
//  1. FP2 masks FP1: F2 = NOT F1.
//  2. FP2 is sensitized by a memory operation applied after S1 (FP2 must be
//     operation-triggered) on the faulty state left by FP1: FP2's required
//     victim state equals F1 (I2 = Fv1 on the victim).
//  3. FP1 is maskable: it corrupts stored data (ChangesState) and is not
//     already detected by its own sensitizing read (not Misreads).
//  4. For kinds where both primitives constrain the same aggressor cell
//     (LF2aa), FP2's required aggressor state must equal the state S1 leaves
//     in the aggressor (the full-state chaining I2 = Fv1 of Definition 7).
func CheckLink(f1, f2 fp.FP, kind Kind) error {
	if f1.Trigger != fp.TrigOp {
		return fmt.Errorf("FP1 %v must be operation-triggered (state faults are excluded from the linked lists, see DESIGN.md)", f1)
	}
	if f2.Trigger != fp.TrigOp {
		return fmt.Errorf("FP2 %v must be operation-triggered", f2)
	}
	if !f1.ChangesState() {
		return fmt.Errorf("FP1 %v does not corrupt stored data and cannot be masked", f1)
	}
	if f1.Misreads() {
		return fmt.Errorf("FP1 %v is detected by its own sensitizing read and cannot be masked", f1)
	}
	if f2.F != f1.F.Not() {
		return fmt.Errorf("FP2 %v does not mask FP1 %v: F2 must be the complement of F1", f2, f1)
	}
	if f2.VInit.IsBinary() && f2.VInit != f1.F {
		return fmt.Errorf("FP2 %v cannot follow FP1 %v: required victim state %s differs from the faulty state %s left by FP1 (I2 = Fv1)",
			f2, f1, f2.VInit, f1.F)
	}
	if kind == LF2aa && f2.AInit.IsBinary() {
		if af := AggressorFinal(f1); af.IsBinary() && f2.AInit != af {
			return fmt.Errorf("FP2 %v cannot follow FP1 %v on the same aggressor: required aggressor state %s differs from the state %s left by S1",
				f2, f1, f2.AInit, af)
		}
	}
	return nil
}

// TrulyMasks reports whether applying S2 immediately after S1 leaves the
// faulty machine indistinguishable from the fault-free one (the victim holds
// the fault-free value and S2's read, if any, returns the fault-free value).
// Pairs for which this is false still satisfy Definition 6 but are detected
// at or after S2 without needing an isolating observation; Hamdioui et al.
// call only the truly masking pairs "realistic".
func TrulyMasks(f1, f2 fp.FP) bool {
	if CheckLink(f1, f2, Simple) != nil { // Simple: skip kind-specific aggressor check
		return false
	}
	goodV := f1.GoodVictimFinal() // fault-free victim value after S1
	if !goodV.IsBinary() {
		return false
	}
	if f2.OpRole == fp.RoleVictim {
		switch f2.Op.Kind {
		case fp.OpWrite:
			// The fault-free machine also executes the write.
			return f2.F == f2.Op.Data
		case fp.OpRead:
			// Fault-free read returns goodV; FP2 returns R2 and stores F2.
			return f2.F == goodV && f2.R == goodV
		case fp.OpWait:
			return f2.F == goodV
		}
		return false
	}
	// S2 on the aggressor: the fault-free victim is untouched.
	return f2.F == goodV
}

// NewSimple wraps a single fault primitive as a fault. Single-cell
// primitives occupy one abstract cell; coupling primitives occupy two, with
// the aggressor at index 0 and the victim at index 1.
func NewSimple(f fp.FP) (Fault, error) {
	var ft Fault
	switch f.Cells {
	case 1:
		ft = Fault{Kind: Simple, Cells: 1, FPs: []Binding{{FP: f, A: -1, V: 0}}}
	case 2:
		ft = Fault{Kind: Simple, Cells: 2, FPs: []Binding{{FP: f, A: 0, V: 1}}}
	default:
		return Fault{}, fmt.Errorf("linked: unsupported cell count %d", f.Cells)
	}
	if err := ft.Validate(); err != nil {
		return Fault{}, err
	}
	return ft, nil
}

// NewLF1 links two single-cell primitives on one cell.
func NewLF1(f1, f2 fp.FP) (Fault, error) {
	ft := Fault{Kind: LF1, Cells: 1, FPs: []Binding{
		{FP: f1, A: -1, V: 0},
		{FP: f2, A: -1, V: 0},
	}}
	if err := ft.Validate(); err != nil {
		return Fault{}, err
	}
	return ft, nil
}

// NewLF2aa links two coupling primitives sharing the aggressor (cell 0) and
// the victim (cell 1).
func NewLF2aa(f1, f2 fp.FP) (Fault, error) {
	ft := Fault{Kind: LF2aa, Cells: 2, FPs: []Binding{
		{FP: f1, A: 0, V: 1},
		{FP: f2, A: 0, V: 1},
	}}
	if err := ft.Validate(); err != nil {
		return Fault{}, err
	}
	return ft, nil
}

// NewLF2av links a coupling primitive (aggressor cell 0, victim cell 1) to a
// single-cell primitive on the victim.
func NewLF2av(f1, f2 fp.FP) (Fault, error) {
	ft := Fault{Kind: LF2av, Cells: 2, FPs: []Binding{
		{FP: f1, A: 0, V: 1},
		{FP: f2, A: -1, V: 1},
	}}
	if err := ft.Validate(); err != nil {
		return Fault{}, err
	}
	return ft, nil
}

// NewLF2va links a single-cell primitive on the victim (cell 1) to a
// coupling primitive with aggressor cell 0.
func NewLF2va(f1, f2 fp.FP) (Fault, error) {
	ft := Fault{Kind: LF2va, Cells: 2, FPs: []Binding{
		{FP: f1, A: -1, V: 1},
		{FP: f2, A: 0, V: 1},
	}}
	if err := ft.Validate(); err != nil {
		return Fault{}, err
	}
	return ft, nil
}

// NewLF3 links two coupling primitives with distinct aggressors (cells 0 and
// 1) sharing the victim (cell 2), the configuration of Figure 1 of the
// paper.
func NewLF3(f1, f2 fp.FP) (Fault, error) {
	ft := Fault{Kind: LF3, Cells: 3, FPs: []Binding{
		{FP: f1, A: 0, V: 2},
		{FP: f2, A: 1, V: 2},
	}}
	if err := ft.Validate(); err != nil {
		return Fault{}, err
	}
	return ft, nil
}
