package faultlist

import (
	"testing"

	"marchgen/internal/linked"
)

// The enumeration counts follow analytically from the static FP catalog and
// the linking predicate; they are pinned here and documented in
// EXPERIMENTS.md. A change in any of these numbers means the fault space
// changed and every coverage result must be re-examined.
func TestEnumerationCounts(t *testing.T) {
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"LF1s", len(LF1s()), 18},
		{"LF2aas", len(LF2aas()), 144},
		{"LF2avs", len(LF2avs()), 72},
		{"LF2vas", len(LF2vas()), 72},
		{"LF3s", len(LF3s()), 288},
		{"List1", len(List1()), 594},
		{"List2", len(List2()), 18},
		{"SimpleSingleCell", len(SimpleSingleCell()), 12},
		{"SimpleTwoCell", len(SimpleTwoCell()), 36},
		{"SimpleStatic", len(SimpleStatic()), 48},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: %d faults, want %d", c.name, c.got, c.want)
		}
	}
}

func TestRealisticCounts(t *testing.T) {
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"realistic LF1s", len(Realistic(LF1s())), 6},
		{"realistic LF2aas", len(Realistic(LF2aas())), 96},
		{"realistic LF2avs", len(Realistic(LF2avs())), 24},
		{"realistic LF2vas", len(Realistic(LF2vas())), 48},
		{"realistic LF3s", len(Realistic(LF3s())), 192},
		{"realistic List1", len(Realistic(List1())), 366},
		{"realistic List2", len(Realistic(List2())), 6},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: %d faults, want %d", c.name, c.got, c.want)
		}
	}
}

// Every enumerated fault must satisfy its own structural validation.
func TestAllFaultsValidate(t *testing.T) {
	for _, f := range append(List1(), SimpleStatic()...) {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.ID(), err)
		}
	}
}

func TestAllFaultIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range append(List1(), SimpleStatic()...) {
		id := f.ID()
		if seen[id] {
			t.Errorf("duplicate fault ID %s", id)
		}
		seen[id] = true
	}
}

func TestListKinds(t *testing.T) {
	for _, f := range List2() {
		if f.Kind != linked.LF1 {
			t.Errorf("List2 contains %s of kind %v", f.ID(), f.Kind)
		}
		if f.Cells != 1 {
			t.Errorf("List2 contains %s with %d cells", f.ID(), f.Cells)
		}
	}
	kinds := map[linked.Kind]int{}
	for _, f := range List1() {
		kinds[f.Kind]++
		if f.Kind == linked.Simple {
			t.Errorf("List1 contains simple fault %s", f.ID())
		}
	}
	for _, k := range []linked.Kind{linked.LF1, linked.LF2aa, linked.LF2av, linked.LF2va, linked.LF3} {
		if kinds[k] == 0 {
			t.Errorf("List1 is missing kind %v", k)
		}
	}
}

// The realistic sublists are subsets of the full lists.
func TestRealisticIsSubset(t *testing.T) {
	full := map[string]bool{}
	for _, f := range List1() {
		full[f.ID()] = true
	}
	for _, f := range Realistic(List1()) {
		if !full[f.ID()] {
			t.Errorf("realistic fault %s not in List1", f.ID())
		}
	}
	if got := len(Realistic(SimpleStatic())); got != 0 {
		t.Errorf("Realistic over simple faults = %d, want 0", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		fs, ok := ByName(name)
		if !ok || len(fs) == 0 {
			t.Errorf("ByName(%q) = %d faults, ok=%v", name, len(fs), ok)
		}
	}
	if fs, ok := ByName("1"); !ok || len(fs) != len(List1()) {
		t.Error("ByName(\"1\") must alias list1")
	}
	if fs, ok := ByName("2"); !ok || len(fs) != len(List2()) {
		t.Error("ByName(\"2\") must alias list2")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must fail for unknown names")
	}
}

// Every linked fault in the lists satisfies Definition 6 mechanically:
// F2 = NOT F1 and FP2's victim condition equals the faulty value of FP1.
func TestDefinition6Invariants(t *testing.T) {
	for _, f := range List1() {
		f1, f2 := f.FP1().FP, f.FP2().FP
		if f2.F != f1.F.Not() {
			t.Errorf("%s: F2 != NOT F1", f.ID())
		}
		if f2.VInit.IsBinary() && f2.VInit != f1.F {
			t.Errorf("%s: I2 != Fv1 on the victim", f.ID())
		}
	}
}
