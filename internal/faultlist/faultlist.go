// Package faultlist assembles the target fault lists of the paper's
// experimental section (Section 6):
//
//	Fault List #1 — single-, two- and three-cell static linked faults
//	Fault List #2 — single-cell static linked faults
//
// The DATE 2006 paper does not reprint the lists; it cites the realistic
// static linked faults of Hamdioui et al. ([10], [16]). This package
// enumerates them systematically from the static fault-primitive catalog and
// the linking predicate of Definitions 6/7 (see linked.CheckLink), which is
// exactly the space the paper's generator is claimed to handle. The
// enumeration counts are pinned by tests and recorded in EXPERIMENTS.md.
//
// The package also provides the simple (un-linked) static fault lists used
// to validate the fault simulator against known literature results.
package faultlist

import (
	"marchgen/internal/fp"
	"marchgen/internal/linked"
)

// fp1SingleCandidates returns the single-cell primitives that can appear as
// the masked component FP1 of a linked fault: operation-triggered primitives
// that corrupt stored data without being caught by their own sensitizing
// read (TF, WDF, DRDF).
func fp1SingleCandidates() []fp.FP {
	var out []fp.FP
	for _, f := range fp.AllSingleCellStatic() {
		if f.Trigger == fp.TrigOp && f.ChangesState() && !f.Misreads() {
			out = append(out, f)
		}
	}
	return out
}

// fp1CouplingCandidates returns the two-cell primitives usable as FP1
// (CFds, CFtr, CFwd, CFdr).
func fp1CouplingCandidates() []fp.FP {
	var out []fp.FP
	for _, f := range fp.AllTwoCellStatic() {
		if f.Trigger == fp.TrigOp && f.ChangesState() && !f.Misreads() {
			out = append(out, f)
		}
	}
	return out
}

// LF1s enumerates the single-cell linked faults: every ordered pair of
// single-cell primitives satisfying the linking predicate.
func LF1s() []linked.Fault {
	var out []linked.Fault
	for _, f1 := range fp1SingleCandidates() {
		for _, f2 := range fp.AllSingleCellStatic() {
			if ft, err := linked.NewLF1(f1, f2); err == nil {
				out = append(out, ft)
			}
		}
	}
	return out
}

// LF2aas enumerates the two-cell linked faults whose primitives share both
// the aggressor and the victim.
func LF2aas() []linked.Fault {
	var out []linked.Fault
	for _, f1 := range fp1CouplingCandidates() {
		for _, f2 := range fp.AllTwoCellStatic() {
			if ft, err := linked.NewLF2aa(f1, f2); err == nil {
				out = append(out, ft)
			}
		}
	}
	return out
}

// LF2avs enumerates the two-cell linked faults where a coupling FP1 is
// masked by a single-cell FP2 on the victim.
func LF2avs() []linked.Fault {
	var out []linked.Fault
	for _, f1 := range fp1CouplingCandidates() {
		for _, f2 := range fp.AllSingleCellStatic() {
			if ft, err := linked.NewLF2av(f1, f2); err == nil {
				out = append(out, ft)
			}
		}
	}
	return out
}

// LF2vas enumerates the two-cell linked faults where a single-cell FP1 on
// the victim is masked by a coupling FP2.
func LF2vas() []linked.Fault {
	var out []linked.Fault
	for _, f1 := range fp1SingleCandidates() {
		for _, f2 := range fp.AllTwoCellStatic() {
			if ft, err := linked.NewLF2va(f1, f2); err == nil {
				out = append(out, ft)
			}
		}
	}
	return out
}

// LF3s enumerates the three-cell linked faults of Figure 1: two coupling
// primitives with distinct aggressors sharing the victim.
func LF3s() []linked.Fault {
	var out []linked.Fault
	for _, f1 := range fp1CouplingCandidates() {
		for _, f2 := range fp.AllTwoCellStatic() {
			if ft, err := linked.NewLF3(f1, f2); err == nil {
				out = append(out, ft)
			}
		}
	}
	return out
}

// List2 is the paper's Fault List #2: the single-cell static linked faults.
func List2() []linked.Fault {
	return LF1s()
}

// List1 is the paper's Fault List #1: single-, two- and three-cell static
// linked faults.
func List1() []linked.Fault {
	var out []linked.Fault
	out = append(out, LF1s()...)
	out = append(out, LF2aas()...)
	out = append(out, LF2avs()...)
	out = append(out, LF2vas()...)
	out = append(out, LF3s()...)
	return out
}

// Realistic filters a fault list down to the truly masking pairs (see
// linked.TrulyMasks): the pairs for which S2 leaves no observable error
// behind, which are the hard core of the list.
func Realistic(faults []linked.Fault) []linked.Fault {
	var out []linked.Fault
	for _, f := range faults {
		if !f.Kind.IsLinked() {
			continue
		}
		if linked.TrulyMasks(f.FP1().FP, f.FP2().FP) {
			out = append(out, f)
		}
	}
	return out
}

// SimpleSingleCell returns the 12 simple single-cell static faults
// (SF, TF, WDF, RDF, DRDF, IRF) as simulator targets.
func SimpleSingleCell() []linked.Fault {
	return wrapSimple(fp.AllSingleCellStatic())
}

// SimpleTwoCell returns the 36 simple two-cell static faults (CFst, CFds,
// CFtr, CFwd, CFrd, CFdr, CFir) as simulator targets.
func SimpleTwoCell() []linked.Fault {
	return wrapSimple(fp.AllTwoCellStatic())
}

// SimpleStatic returns all 48 simple static faults.
func SimpleStatic() []linked.Fault {
	return append(SimpleSingleCell(), SimpleTwoCell()...)
}

// DynamicSingleCell returns the 18 simple single-cell two-operation dynamic
// faults (dRDF, dDRDF, dIRF).
func DynamicSingleCell() []linked.Fault {
	return wrapSimple(fp.AllSingleCellDynamic())
}

// DynamicTwoCell returns the 48 simple two-cell two-operation dynamic
// faults (dCFds, dCFrd, dCFdr, dCFir).
func DynamicTwoCell() []linked.Fault {
	return wrapSimple(fp.AllTwoCellDynamic())
}

// Dynamic returns all 66 simple two-operation dynamic faults — the target
// space of the group's companion ETS 2005 paper ("static and dynamic
// faults"), included here as the natural extension of the framework.
func Dynamic() []linked.Fault {
	return append(DynamicSingleCell(), DynamicTwoCell()...)
}

func wrapSimple(fps []fp.FP) []linked.Fault {
	out := make([]linked.Fault, 0, len(fps))
	for _, f := range fps {
		ft, err := linked.NewSimple(f)
		if err != nil {
			panic(err) // catalog entries always wrap
		}
		out = append(out, ft)
	}
	return out
}

// ByName resolves the named lists used by the command-line tools:
// "1"/"list1", "2"/"list2", "simple", "simple1", "simple2",
// "realistic1", "realistic2".
func ByName(name string) ([]linked.Fault, bool) {
	switch name {
	case "1", "list1":
		return List1(), true
	case "2", "list2":
		return List2(), true
	case "simple":
		return SimpleStatic(), true
	case "simple1":
		return SimpleSingleCell(), true
	case "simple2":
		return SimpleTwoCell(), true
	case "realistic1":
		return Realistic(List1()), true
	case "realistic2":
		return Realistic(List2()), true
	case "dynamic":
		return Dynamic(), true
	case "dynamic1":
		return DynamicSingleCell(), true
	case "dynamic2":
		return DynamicTwoCell(), true
	}
	return nil, false
}

// Names lists the fault-list names understood by ByName.
func Names() []string {
	return []string{
		"list1", "list2", "simple", "simple1", "simple2",
		"realistic1", "realistic2", "dynamic", "dynamic1", "dynamic2",
	}
}
