package march

import (
	"encoding/json"
	"fmt"
)

// testJSON is the wire form of a march test: the sequence travels in the
// ASCII notation so files stay human-readable and tool-agnostic.
type testJSON struct {
	Name          string      `json:"name"`
	Spec          string      `json:"spec"`
	Length        int         `json:"length"`
	Source        string      `json:"source,omitempty"`
	Origin        Origin      `json:"origin,omitempty"`
	Provenance    *Provenance `json:"provenance,omitempty"`
	Reconstructed bool        `json:"reconstructed,omitempty"`
}

// MarshalJSON encodes the test with its ASCII notation and derived length.
func (t Test) MarshalJSON() ([]byte, error) {
	return json.Marshal(testJSON{
		Name:          t.Name,
		Spec:          t.ASCII(),
		Length:        t.Length(),
		Source:        t.Source,
		Origin:        t.Origin,
		Provenance:    t.Prov,
		Reconstructed: t.Reconstructed,
	})
}

// UnmarshalJSON decodes a test from its wire form, re-parsing and
// re-validating the notation. A length field, if present, must agree with
// the parsed sequence.
func (t *Test) UnmarshalJSON(data []byte) error {
	var w testJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	parsed, err := Parse(w.Name, w.Spec)
	if err != nil {
		return err
	}
	if w.Length != 0 && w.Length != parsed.Length() {
		return fmt.Errorf("march: test %q declares length %d but the sequence has %d operations",
			w.Name, w.Length, parsed.Length())
	}
	parsed.Source = w.Source
	parsed.Origin = w.Origin
	parsed.Prov = w.Provenance
	parsed.Reconstructed = w.Reconstructed
	*t = parsed
	return nil
}
