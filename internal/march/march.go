// Package march implements the march test notation of Definition 10 of the
// paper: a March Test is a sequence of March Elements, each a sequence of
// memory operations applied to every cell in a given address order
// (increasing ⇑, decreasing ⇓, or irrelevant ⇕).
//
// The package provides the test/element data model, a parser and printer for
// the conventional notation (both Unicode arrows and an ASCII form), a
// complexity metric (the "37n" of the paper's Table 1), a fault-free
// consistency checker, and the library of published march tests the paper
// compares against (March SL, March LF1, the 43n test of Al-Harbi & Gupta)
// together with the paper's own results (March ABL, RABL, ABL1) and the
// classic tests used for simulator validation.
package march

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
)

// AddrOrder is the address order of a march element (Definition 10).
type AddrOrder uint8

// Address orders.
const (
	Any  AddrOrder = iota // ⇕: order irrelevant
	Up                    // ⇑: increasing addresses
	Down                  // ⇓: decreasing addresses
)

// String returns the conventional double-arrow notation.
func (o AddrOrder) String() string {
	switch o {
	case Any:
		return "⇕"
	case Up:
		return "⇑"
	case Down:
		return "⇓"
	default:
		return fmt.Sprintf("AddrOrder(%d)", uint8(o))
	}
}

// ASCII returns a plain-ASCII rendering of the order: "c" (don't care, the
// paper's own convention in Table 1), "^" (up) and "v" (down).
func (o AddrOrder) ASCII() string {
	switch o {
	case Any:
		return "c"
	case Up:
		return "^"
	case Down:
		return "v"
	default:
		return "?"
	}
}

// Addresses returns the cell visit order for a memory of n cells. The Any
// order canonically iterates upward.
func (o AddrOrder) Addresses(n int) []int {
	addrs := make([]int, n)
	for i := range addrs {
		if o == Down {
			addrs[i] = n - 1 - i
		} else {
			addrs[i] = i
		}
	}
	return addrs
}

// Element is a March Element: a sequence of operations applied to every
// memory cell in the given address order before moving to the next cell.
type Element struct {
	Order AddrOrder
	Ops   []fp.Op
}

// NewElement builds an element from parsed operations.
func NewElement(order AddrOrder, ops ...fp.Op) Element {
	return Element{Order: order, Ops: ops}
}

// String renders the element, e.g. "⇑(r0,w1)".
func (e Element) String() string {
	return e.Order.String() + "(" + fp.FormatOps(e.Ops) + ")"
}

// ASCII renders the element with ASCII order markers, e.g. "^(r0,w1)".
func (e Element) ASCII() string {
	return e.Order.ASCII() + "(" + fp.FormatOps(e.Ops) + ")"
}

// Origin classifies where a march test came from: a published paper, the
// paper's generation algorithm (package core), the search-based optimizer
// (package optimize), or a seeded random stream (oracle.RandomTests). The
// zero value is unknown/unspecified.
type Origin string

// Test origins.
const (
	OriginPaper     Origin = "paper"
	OriginGenerated Origin = "generated"
	OriginOptimized Origin = "optimized"
	OriginRandom    Origin = "random"
)

// Provenance records how a generated or optimized test was produced, in
// enough detail to reproduce it bit-for-bit: the rng seed and evaluation
// budget of the optimizer run, the test it started from, and a hash of the
// accepted move sequence that led from the seed to this test.
type Provenance struct {
	// Seed is the rng seed the whole run derives from.
	Seed int64 `json:"seed,omitempty"`
	// Budget is the candidate-evaluation budget of the optimizer run.
	Budget int `json:"budget,omitempty"`
	// SeedTest names the test the optimizer started from.
	SeedTest string `json:"seed_test,omitempty"`
	// SeedLength is the length of that seed test.
	SeedLength int `json:"seed_length,omitempty"`
	// MoveTrace is a hex digest of the accepted move sequence (the winner's
	// lineage) — two runs that took the same path hash identically.
	MoveTrace string `json:"move_trace,omitempty"`
}

// Test is a complete march test.
type Test struct {
	// Name is the conventional name, e.g. "March SL".
	Name string
	// Elems are the march elements in application order.
	Elems []Element
	// Source cites where the sequence was published (empty for generated
	// tests).
	Source string
	// Origin classifies the test's producer (paper / generated / optimized /
	// random); empty for tests that predate the provenance model.
	Origin Origin
	// Prov carries the reproduction metadata of generated/optimized tests;
	// nil for paper tests.
	Prov *Provenance
	// Reconstructed marks tests whose exact sequence is not reprinted in the
	// paper and was reconstructed for this reproduction (see DESIGN.md); the
	// complexity is exact, the sequence is a faithful stand-in.
	Reconstructed bool
}

// New builds a test from elements.
func New(name string, elems ...Element) Test {
	return Test{Name: name, Elems: elems}
}

// Length returns the number of read/write operations applied per memory
// cell; a test of Length L has complexity L·n on an n-cell memory (the
// "O(n)" column of Table 1). Wait operations are excluded, following the
// convention that delay phases are reported separately (March G is "23n +
// 2D", not "25n").
func (t Test) Length() int {
	total := 0
	for _, e := range t.Elems {
		for _, op := range e.Ops {
			if op.Kind != fp.OpWait {
				total++
			}
		}
	}
	return total
}

// Delays returns the number of wait operations in the test (the "D" part of
// complexities like "23n + 2D").
func (t Test) Delays() int {
	total := 0
	for _, e := range t.Elems {
		for _, op := range e.Ops {
			if op.Kind == fp.OpWait {
				total++
			}
		}
	}
	return total
}

// Complexity renders the conventional complexity string, e.g. "37n", with
// delay phases appended when present ("23n+2D").
func (t Test) Complexity() string {
	if d := t.Delays(); d > 0 {
		return fmt.Sprintf("%dn+%dD", t.Length(), d)
	}
	return fmt.Sprintf("%dn", t.Length())
}

// String renders the full test in conventional notation, elements separated
// by a space: "⇕(w0) ⇑(r0,w1) ⇓(r1,w0)".
func (t Test) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// ASCII renders the full test with ASCII order markers.
func (t Test) ASCII() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.ASCII()
	}
	return strings.Join(parts, " ")
}

// Validate checks structural well-formedness: at least one element, no empty
// element, and only write/read/wait operations with binary read expectations.
func (t Test) Validate() error {
	if len(t.Elems) == 0 {
		return fmt.Errorf("march: test %q has no elements", t.Name)
	}
	for i, e := range t.Elems {
		if len(e.Ops) == 0 {
			return fmt.Errorf("march: test %q element %d is empty", t.Name, i)
		}
		if e.Order > Down {
			return fmt.Errorf("march: test %q element %d has invalid order", t.Name, i)
		}
		for j, op := range e.Ops {
			switch op.Kind {
			case fp.OpWrite:
				if !op.Data.IsBinary() {
					return fmt.Errorf("march: test %q element %d op %d: write without a value", t.Name, i, j)
				}
			case fp.OpRead:
				if !op.Data.IsBinary() {
					return fmt.Errorf("march: test %q element %d op %d: read without an expected value", t.Name, i, j)
				}
			case fp.OpWait:
				// allowed
			default:
				return fmt.Errorf("march: test %q element %d op %d: invalid operation", t.Name, i, j)
			}
		}
	}
	return nil
}

// CheckConsistency verifies that the test is self-consistent on a fault-free
// memory: every read expectation matches the value the preceding operations
// leave in each cell. Because a march element applies the same operation
// sequence to every cell, the fault-free value of each cell evolves
// identically and can be tracked with a single symbolic value.
func (t Test) CheckConsistency() error {
	if err := t.Validate(); err != nil {
		return err
	}
	v := fp.VX // memory content unknown before the first write
	for i, e := range t.Elems {
		for j, op := range e.Ops {
			switch op.Kind {
			case fp.OpWrite:
				v = op.Data
			case fp.OpRead:
				if v == fp.VX {
					return fmt.Errorf("march: test %q element %d op %d reads uninitialized memory", t.Name, i, j)
				}
				if op.Data != v {
					return fmt.Errorf("march: test %q element %d op %d expects %s but fault-free memory holds %s",
						t.Name, i, j, op.Data, v)
				}
			case fp.OpWait:
				// wait does not change fault-free contents
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the test, safe to mutate independently.
func (t Test) Clone() Test {
	out := t
	out.Elems = make([]Element, len(t.Elems))
	for i, e := range t.Elems {
		out.Elems[i] = Element{Order: e.Order, Ops: append([]fp.Op(nil), e.Ops...)}
	}
	if t.Prov != nil {
		p := *t.Prov
		out.Prov = &p
	}
	return out
}

// Equal reports whether two tests have the same element sequence (names and
// provenance are ignored).
func (t Test) Equal(u Test) bool {
	if len(t.Elems) != len(u.Elems) {
		return false
	}
	for i := range t.Elems {
		a, b := t.Elems[i], u.Elems[i]
		if a.Order != b.Order || len(a.Ops) != len(b.Ops) {
			return false
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] {
				return false
			}
		}
	}
	return true
}
