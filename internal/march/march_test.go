package march

import (
	"testing"
	"testing/quick"

	"marchgen/internal/fp"
)

func TestAddrOrderString(t *testing.T) {
	cases := []struct {
		o          AddrOrder
		uni, ascii string
	}{
		{Any, "⇕", "c"},
		{Up, "⇑", "^"},
		{Down, "⇓", "v"},
	}
	for _, c := range cases {
		if c.o.String() != c.uni {
			t.Errorf("%v.String() = %q, want %q", c.o, c.o.String(), c.uni)
		}
		if c.o.ASCII() != c.ascii {
			t.Errorf("%v.ASCII() = %q, want %q", c.o, c.o.ASCII(), c.ascii)
		}
	}
}

func TestAddresses(t *testing.T) {
	if got := Up.Addresses(4); !equalInts(got, []int{0, 1, 2, 3}) {
		t.Errorf("Up.Addresses(4) = %v", got)
	}
	if got := Down.Addresses(4); !equalInts(got, []int{3, 2, 1, 0}) {
		t.Errorf("Down.Addresses(4) = %v", got)
	}
	if got := Any.Addresses(3); !equalInts(got, []int{0, 1, 2}) {
		t.Errorf("Any.Addresses(3) = %v", got)
	}
	if got := Up.Addresses(0); len(got) != 0 {
		t.Errorf("Up.Addresses(0) = %v", got)
	}
}

// Property: Down is the reverse of Up for any size.
func TestAddressesReverseQuick(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%32) + 1
		up := Up.Addresses(size)
		down := Down.Addresses(size)
		for i := range up {
			if up[i] != down[size-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLengthAndComplexity(t *testing.T) {
	m := MustParse("x", "c(w0) ^(r0,w1) v(r1,w0)")
	if m.Length() != 5 {
		t.Errorf("Length = %d, want 5", m.Length())
	}
	if m.Complexity() != "5n" {
		t.Errorf("Complexity = %q, want 5n", m.Complexity())
	}
}

func TestStringRendering(t *testing.T) {
	m := MustParse("x", "c(w0) ^(r0,w1) v(r1,w0)")
	if got, want := m.String(), "⇕(w0) ⇑(r0,w1) ⇓(r1,w0)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := m.ASCII(), "c(w0) ^(r0,w1) v(r1,w0)"; got != want {
		t.Errorf("ASCII = %q, want %q", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (Test{Name: "empty"}).Validate(); err == nil {
		t.Error("empty test must fail validation")
	}
	if err := New("e", Element{Order: Up}).Validate(); err == nil {
		t.Error("empty element must fail validation")
	}
	bad := New("badorder", Element{Order: AddrOrder(9), Ops: []fp.Op{fp.W0}})
	if err := bad.Validate(); err == nil {
		t.Error("invalid order must fail validation")
	}
	noval := New("nw", NewElement(Up, fp.Op{Kind: fp.OpWrite, Data: fp.VX}))
	if err := noval.Validate(); err == nil {
		t.Error("write without a value must fail validation")
	}
	nord := New("nr", NewElement(Up, fp.W0), NewElement(Up, fp.RX))
	if err := nord.Validate(); err == nil {
		t.Error("read without an expectation must fail validation")
	}
	zero := New("z", NewElement(Up, fp.Op{}))
	if err := zero.Validate(); err == nil {
		t.Error("zero op must fail validation")
	}
	withWait := New("w", NewElement(Up, fp.W0), NewElement(Any, fp.Wait), NewElement(Up, fp.R0))
	if err := withWait.Validate(); err != nil {
		t.Errorf("wait op should validate: %v", err)
	}
}

func TestCheckConsistency(t *testing.T) {
	good := MustParse("g", "c(w0) ^(r0,w1) v(r1,w0) c(r0)")
	if err := good.CheckConsistency(); err != nil {
		t.Errorf("consistent test rejected: %v", err)
	}
	readFirst := MustParse("rf", "c(r0,w0)")
	if err := readFirst.CheckConsistency(); err == nil {
		t.Error("read of uninitialized memory must be rejected")
	}
	wrongExpect := MustParse("we", "c(w0) ^(r1,w0)")
	if err := wrongExpect.CheckConsistency(); err == nil {
		t.Error("wrong read expectation must be rejected")
	}
	withWait := MustParse("dw", "c(w1) c(t) c(r1)")
	if err := withWait.CheckConsistency(); err != nil {
		t.Errorf("wait must not disturb fault-free contents: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := MustParse("x", "c(w0) ^(r0,w1)")
	c := m.Clone()
	c.Elems[1].Ops[0] = fp.W1
	if m.Elems[1].Ops[0] != fp.R0 {
		t.Error("Clone shares operation storage with the original")
	}
	c.Elems[0].Order = Down
	if m.Elems[0].Order != Any {
		t.Error("Clone shares element storage with the original")
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("a", "c(w0) ^(r0,w1)")
	b := MustParse("b", "c(w0) ^(r0,w1)")
	if !a.Equal(b) {
		t.Error("identical sequences must compare equal regardless of name")
	}
	c := MustParse("c", "c(w0) ^(r0,w0)")
	if a.Equal(c) {
		t.Error("different ops must not compare equal")
	}
	d := MustParse("d", "c(w0) v(r0,w1)")
	if a.Equal(d) {
		t.Error("different orders must not compare equal")
	}
	e := MustParse("e", "c(w0)")
	if a.Equal(e) {
		t.Error("different element counts must not compare equal")
	}
	f := MustParse("f", "c(w0) ^(r0,w1,r1)")
	if a.Equal(f) {
		t.Error("different op counts must not compare equal")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
