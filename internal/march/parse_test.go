package march

import (
	"strings"
	"testing"
)

func TestParseMarkers(t *testing.T) {
	variants := []string{
		"c(w0) ^(r0,w1) v(r1,w0)",
		"b(w0) u(r0,w1) d(r1,w0)",
		"any(w0) up(r0,w1) down(r1,w0)",
		"⇕(w0) ⇑(r0,w1) ⇓(r1,w0)",
		"C(w0) UP(r0,w1) DOWN(r1,w0)",
	}
	want := MustParse("ref", "c(w0) ^(r0,w1) v(r1,w0)")
	for _, s := range variants {
		got, err := Parse("x", s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("Parse(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestParseSeparators(t *testing.T) {
	want := MustParse("ref", "c(w0) ^(r0,w1)")
	variants := []string{
		"c(w0); ^(r0,w1)",
		"c(w0);^(r0,w1)",
		"c(w0)\n^(r0,w1)",
		"  c( w0 )   ^( r0 , w1 )  ",
	}
	for _, s := range variants {
		got, err := Parse("x", s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("Parse(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",            // no elements
		"c",           // no op list
		"c(w0",        // unterminated
		"q(w0)",       // bad marker
		"c()",         // empty op list
		"c(w0) ^(zz)", // bad op
		"(w0)",        // missing marker
		"c(w0) extra", // trailing junk without parens
	}
	for _, s := range bad {
		if m, err := Parse("x", s); err == nil {
			t.Errorf("Parse(%q) = %v, want error", s, m)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, m := range Lib() {
		for _, render := range []string{m.String(), m.ASCII()} {
			parsed, err := Parse(m.Name, render)
			if err != nil {
				t.Errorf("%s: Parse(%q): %v", m.Name, render, err)
				continue
			}
			if !parsed.Equal(m) {
				t.Errorf("%s: round trip through %q changed the sequence", m.Name, render)
			}
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("x", "nope")
}

func TestParseName(t *testing.T) {
	m, err := Parse("My Test", "c(w0)")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "My Test" {
		t.Errorf("Name = %q", m.Name)
	}
	if !strings.Contains(m.String(), "⇕(w0)") {
		t.Errorf("String = %q", m.String())
	}
}
