package march

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTestJSONRoundTrip(t *testing.T) {
	for _, m := range Lib() {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		var back Test
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !back.Equal(m) || back.Name != m.Name || back.Source != m.Source || back.Reconstructed != m.Reconstructed {
			t.Errorf("%s: JSON round trip changed the test", m.Name)
		}
	}
}

func TestTestJSONWireFormat(t *testing.T) {
	data, err := json.Marshal(MATSPlus)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"name":"MATS+"`, `"spec":"c(w0) ^(r0,w1) v(r1,w0)"`, `"length":5`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire form missing %s: %s", want, s)
		}
	}
}

func TestTestJSONUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"name":"x","spec":"garbage"}`,
		`{"name":"x","spec":"c(w0)","length":7}`, // inconsistent length
		`[1,2]`,
	}
	var m Test
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("Unmarshal(%s) accepted", c)
		}
	}
	// A declared length of 0 means "unspecified" and is accepted.
	if err := json.Unmarshal([]byte(`{"name":"x","spec":"c(w0)"}`), &m); err != nil {
		t.Error(err)
	}
}
