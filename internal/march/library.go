package march

// The library of march tests used by the paper's evaluation (Table 1) plus
// the classic tests used to validate the fault simulator against known
// literature results.
//
// Sequences marked Reconstructed are not reprinted in the DATE 2006 paper;
// see DESIGN.md ("Substitutions") for how they were reconstructed and what is
// and is not claimed about them.

import "sync"

func withSource(t Test, source string, reconstructed bool) Test {
	t.Source = source
	t.Origin = OriginPaper
	t.Reconstructed = reconstructed
	return t
}

// Classic march tests (simulator validation baselines).
var (
	// MATSPlus is MATS+ (5n), detecting all stuck-at and address faults.
	MATSPlus = withSource(MustParse("MATS+",
		"c(w0) ^(r0,w1) v(r1,w0)"),
		"Nair, 1979", false)

	// MarchX is March X (6n).
	MarchX = withSource(MustParse("March X",
		"c(w0) ^(r0,w1) v(r1,w0) c(r0)"),
		"van de Goor, 1991", false)

	// MarchY is March Y (8n), extending March X for linked transition faults.
	MarchY = withSource(MustParse("March Y",
		"c(w0) ^(r0,w1,r1) v(r1,w0,r0) c(r0)"),
		"van de Goor, 1991", false)

	// MarchCMinus is March C- (10n), the classic unlinked-fault workhorse.
	MarchCMinus = withSource(MustParse("March C-",
		"c(w0) ^(r0,w1) ^(r1,w0) v(r0,w1) v(r1,w0) c(r0)"),
		"Marinescu, 1982", false)

	// MarchA is March A (15n).
	MarchA = withSource(MustParse("March A",
		"c(w0) ^(r0,w1,w0,w1) ^(r1,w0,w1) v(r1,w0,w1,w0) v(r0,w1,w0)"),
		"Suk & Reddy, 1981", false)

	// MarchB is March B (17n).
	MarchB = withSource(MustParse("March B",
		"c(w0) ^(r0,w1,r1,w0,r0,w1) ^(r1,w0,w1) v(r1,w0,w1,w0) v(r0,w1,w0)"),
		"Suk & Reddy, 1981", false)

	// MarchU is March U (13n).
	MarchU = withSource(MustParse("March U",
		"c(w0) ^(r0,w1,r1,w0) ^(r0,w1) v(r1,w0,r0,w1) v(r1,w0)"),
		"van de Goor, 1997", false)

	// MarchLR is March LR (14n), a test for realistic linked faults
	// (paper reference [8]).
	MarchLR = withSource(MustParse("March LR",
		"c(w0) v(r0,w1) ^(r1,w0,r0,w1) ^(r1,w0) ^(r0,w1,r1,w0) ^(r0)"),
		"van de Goor et al., VTS 1996 [8]", false)

	// MarchLA is March LA (22n), a test for linked memory faults
	// (paper reference [7]).
	MarchLA = withSource(MustParse("March LA",
		"c(w0) ^(r0,w1,w0,w1,r1) ^(r1,w0,w1,w0,r0) v(r0,w1,w0,w1,r1) v(r1,w0,w1,w0,r0) v(r0)"),
		"van de Goor et al., ED&TC 1997 [7]", false)

	// MarchSS is March SS (22n), detecting all simple (unlinked) static
	// single- and two-cell faults.
	MarchSS = withSource(MustParse("March SS",
		"c(w0) ^(r0,r0,w0,r0,w1) ^(r1,r1,w1,r1,w0) v(r0,r0,w0,r0,w1) v(r1,r1,w1,r1,w0) c(r0)"),
		"Hamdioui et al., VTS 2002", false)

	// MarchRAW is March RAW (26n), targeting the two-operation dynamic
	// (read-after-write) faults; the reference test for the dynamic fault
	// extension of this repository.
	MarchRAW = withSource(MustParse("March RAW",
		"c(w0) ^(r0,w0,r0,r0,w1,r1) ^(r1,w1,r1,r1,w0,r0) v(r0,w0,r0,r0,w1,r1) v(r1,w1,r1,r1,w0,r0) c(r0)"),
		"Hamdioui et al., 2002", false)

	// PMOVI is the 13n MOVI derivative used widely in production flows.
	PMOVI = withSource(MustParse("PMOVI",
		"v(w0) ^(r0,w1,r1) ^(r1,w0,r0) v(r0,w1,r1) v(r1,w0,r0)"),
		"De Jonge & Smeulders, 1976", false)

	// MarchG is March G (23n + 2D): March B extended with delay phases for
	// data retention faults — the library's exerciser of the wait
	// operation 't' of Definition 2.
	MarchG = withSource(MustParse("March G",
		"c(w0) ^(r0,w1,r1,w0,r0,w1) ^(r1,w0,w1) v(r1,w0,w1,w0) v(r0,w1,w0) "+
			"c(t) c(r0,w1,r1) c(t) c(r1,w0,r0)"),
		"van de Goor, 1991", false)
)

// Table 1 comparison baselines.
var (
	// MarchSL is March SL (41n), the hand-made state of the art for all
	// static linked faults (paper references [9][10]; Table 1 column 5).
	MarchSL = withSource(MustParse("March SL",
		"c(w0) ^(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1) ^(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0) "+
			"v(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1) v(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0)"),
		"Hamdioui et al., ATS 2003 [9]", false)

	// MarchLF1 is March LF1 (11n), covering all single-cell static linked
	// faults (paper reference [16]; Table 1 column 6). The exact sequence is
	// not reprinted in the DATE 2006 paper; this 11n sequence is
	// reconstructed from the fault-primitive analysis in [16] and verified by
	// the fault simulator to cover Fault List #2.
	MarchLF1 = withSource(MustParse("March LF1",
		"c(w0) ^(r0,w1,r1,w1,r1) ^(r1,w0,r0,w0,r0)"),
		"Hamdioui et al., MTDT 2003 [16]", true)

	// March43N is the 43n march test of Al-Harbi & Gupta (paper reference
	// [11]), the only previously published automatically generated march test
	// for linked faults. Only its length (43n) is used by the paper's Table 1
	// (improvement column 4); the sequence below is a reconstructed 43n
	// stand-in (March SL extended by a verification sweep) kept solely so the
	// comparison harness can carry a concrete Test value.
	March43N = withSource(MustParse("43n March Test",
		"c(w0) ^(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1) ^(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0) "+
			"v(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1) v(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0) c(r0,r0)"),
		"Al-Harbi & Gupta, VTS 2003 [11]", true)
)

// The paper's generated tests (Table 1 rows).
var (
	// MarchABL is March ABL (37n), the paper's generated test for Fault
	// List #1 (single-, two- and three-cell static linked faults).
	MarchABL = withSource(MustParse("March ABL",
		"c(w0) ^(r0,r0,w0,r0,w1,w1,r1) ^(r1,r1,w1,r1,w0,w0,r0) "+
			"v(r0,w1) v(r1,w0) v(r0,r0,w0,r0,w1,w1,r1) v(r1,r1,w1,r1,w0,w0,r0) "+
			"^(r0,w1) ^(r1,w0)"),
		"Benso et al., DATE 2006, Table 1", false)

	// MarchRABL is March RABL (35n), the paper's shorter generated test for
	// Fault List #1.
	MarchRABL = withSource(MustParse("March RABL",
		"c(w0) ^(r0,r0,w0,r0) ^(r0,w1,r1,r1,w1,r1,w0,r0) ^(r0,w1) "+
			"v(r1,r1,w1,r1,w0,r0,w0,r0) ^(w1) ^(r1,r1,w1,r1,w0,r0,r0,w0,r0,w1,r1)"),
		"Benso et al., DATE 2006, Table 1", false)

	// MarchABL1 is March ABL1 (9n), the paper's generated test for Fault
	// List #2 (single-cell static linked faults).
	MarchABL1 = withSource(MustParse("March ABL1",
		"c(w0) c(w0,r0,r0,w1) c(w1,r1,r1,w0)"),
		"Benso et al., DATE 2006, Table 1", false)
)

// Lib returns every march test in the library, classic tests first, then the
// Table 1 baselines, the paper's generated tests, and finally any tests
// registered at runtime (optimizer winners), in registration order.
func Lib() []Test {
	out := []Test{
		MATSPlus, MarchX, MarchY, MarchCMinus, MarchA, MarchB, MarchU,
		MarchLR, MarchLA, MarchSS, MarchRAW, PMOVI, MarchG,
		MarchSL, MarchLF1, March43N,
		MarchABL, MarchRABL, MarchABL1,
	}
	return append(out, Registered()...)
}

// ByName looks a test up by its conventional name (exact match).
func ByName(name string) (Test, bool) {
	for _, t := range Lib() {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}

// The runtime extension of the library: optimizer-found tests land here with
// their provenance, so /v1/library and the listing tools can distinguish
// them from the shipped baselines. The registry is process-local and
// concurrency-safe (the marchd job engine registers winners from worker
// goroutines while /v1/library reads the library).
var (
	regMu      sync.Mutex
	registered []Test
)

// Register adds a test to the runtime library. A test that is Equal to an
// already-registered test of the same name is dropped (idempotent
// re-registration); the return value reports whether the test was added.
func Register(t Test) bool {
	regMu.Lock()
	defer regMu.Unlock()
	for _, ex := range registered {
		if ex.Name == t.Name && ex.Equal(t) {
			return false
		}
	}
	registered = append(registered, t.Clone())
	return true
}

// Registered returns the runtime-registered tests in registration order.
func Registered() []Test {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Test, 0, len(registered))
	for _, t := range registered {
		out = append(out, t.Clone())
	}
	return out
}
