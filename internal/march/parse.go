package march

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
)

// Parse parses a march test from its conventional notation. Elements are
// separated by whitespace or semicolons; each element is an address-order
// marker followed by a parenthesized, comma-separated operation list.
//
// Accepted order markers (case-insensitive for the word forms):
//
//	⇕  c  b  any   — address order irrelevant
//	⇑  ^  u  up    — increasing addresses
//	⇓  v  d  down  — decreasing addresses
//
// Example: Parse("MATS+", "⇕(w0) ⇑(r0,w1) ⇓(r1,w0)").
func Parse(name, s string) (Test, error) {
	t := Test{Name: name}
	rest := strings.TrimSpace(s)
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return Test{}, fmt.Errorf("march: %q: element %q has no operation list", name, rest)
		}
		marker := strings.TrimSpace(rest[:open])
		marker = strings.TrimSuffix(marker, ";")
		marker = strings.TrimSpace(marker)
		order, err := parseOrder(marker)
		if err != nil {
			return Test{}, fmt.Errorf("march: %q: %v", name, err)
		}
		closeIdx := strings.IndexByte(rest[open:], ')')
		if closeIdx < 0 {
			return Test{}, fmt.Errorf("march: %q: unterminated operation list in %q", name, rest)
		}
		closeIdx += open
		ops, err := fp.ParseOps(rest[open+1 : closeIdx])
		if err != nil {
			return Test{}, fmt.Errorf("march: %q: %v", name, err)
		}
		t.Elems = append(t.Elems, Element{Order: order, Ops: ops})
		rest = strings.TrimSpace(rest[closeIdx+1:])
		rest = strings.TrimPrefix(rest, ";")
		rest = strings.TrimSpace(rest)
	}
	if err := t.Validate(); err != nil {
		return Test{}, err
	}
	return t, nil
}

func parseOrder(marker string) (AddrOrder, error) {
	switch strings.ToLower(marker) {
	case "⇕", "c", "b", "any", "ud", "↕":
		return Any, nil
	case "⇑", "^", "u", "up", "↑":
		return Up, nil
	case "⇓", "v", "d", "down", "↓":
		return Down, nil
	}
	return Any, fmt.Errorf("invalid address-order marker %q", marker)
}

// MustParse is like Parse but panics on error; intended for the static test
// library and tests.
func MustParse(name, s string) Test {
	t, err := Parse(name, s)
	if err != nil {
		panic(err)
	}
	return t
}
