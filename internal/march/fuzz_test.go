package march

import (
	"testing"
)

// FuzzParse checks the march parser never panics and everything it accepts
// survives Unicode and ASCII round trips.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"c(w0) ^(r0,w1) v(r1,w0)",
		"⇕(w0) ⇑(r0,r0,w1,w1,r1) ⇓(r1,w0)",
		"c(w0); c(t); c(r0)",
		"c(", "q(w0)", "", "c(w0) extra", "c()",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := Parse("fuzz", s)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid test: %v", s, err)
		}
		for _, render := range []string{m.String(), m.ASCII()} {
			back, err := Parse("fuzz", render)
			if err != nil {
				t.Fatalf("rendered form %q of %q does not re-parse: %v", render, s, err)
			}
			if !back.Equal(m) {
				t.Fatalf("round trip through %q changed the test", render)
			}
		}
	})
}
