package march

import (
	"testing"
)

// TestBaselineLengths pins the complexities the paper's Table 1 relies on:
// the 43n automatically generated test [11], the 41n March SL [10], the 11n
// March LF1 [16], and the paper's own 37n/35n/9n results.
func TestBaselineLengths(t *testing.T) {
	cases := []struct {
		test Test
		want int
	}{
		{MATSPlus, 5},
		{MarchX, 6},
		{MarchY, 8},
		{MarchCMinus, 10},
		{MarchU, 13},
		{MarchLR, 14},
		{MarchA, 15},
		{MarchB, 17},
		{MarchLA, 22},
		{MarchSS, 22},
		{MarchRAW, 26},
		{PMOVI, 13},
		{MarchG, 23},
		{MarchSL, 41},
		{MarchLF1, 11},
		{March43N, 43},
		{MarchABL, 37},
		{MarchRABL, 35},
		{MarchABL1, 9},
	}
	for _, c := range cases {
		if got := c.test.Length(); got != c.want {
			t.Errorf("%s: length %d, want %d", c.test.Name, got, c.want)
		}
	}
}

// Table 1 improvement percentages follow directly from the lengths.
func TestTable1ImprovementPercentages(t *testing.T) {
	improve := func(old, new Test) float64 {
		return 100 * float64(old.Length()-new.Length()) / float64(old.Length())
	}
	within := func(got, want float64) bool {
		d := got - want
		return d < 0.1 && d > -0.1
	}
	if got := improve(March43N, MarchABL); !within(got, 13.9) {
		t.Errorf("ABL vs 43n: %.1f%%, paper reports 13.9%%", got)
	}
	if got := improve(MarchSL, MarchABL); !within(got, 9.7) {
		t.Errorf("ABL vs March SL: %.1f%%, paper reports 9.7%%", got)
	}
	if got := improve(March43N, MarchRABL); !within(got, 18.6) {
		t.Errorf("RABL vs 43n: %.1f%%, paper reports 18.6%%", got)
	}
	if got := improve(MarchSL, MarchRABL); !within(got, 14.6) {
		t.Errorf("RABL vs March SL: %.1f%%, paper reports 14.6%%", got)
	}
	if got := improve(MarchLF1, MarchABL1); !within(got, 18.1) {
		t.Errorf("ABL1 vs March LF1: %.1f%%, paper reports 18.1%%", got)
	}
}

// March G reports its delay phases separately, per convention ("23n+2D").
func TestMarchGDelays(t *testing.T) {
	if got := MarchG.Delays(); got != 2 {
		t.Errorf("March G has %d delays, want 2", got)
	}
	if got := MarchG.Complexity(); got != "23n+2D" {
		t.Errorf("March G complexity = %q, want 23n+2D", got)
	}
	if got := MarchSL.Delays(); got != 0 {
		t.Errorf("March SL has %d delays, want 0", got)
	}
}

// Every library test must be structurally valid and self-consistent on a
// fault-free memory (reads match what the preceding writes left behind).
func TestLibraryConsistency(t *testing.T) {
	for _, m := range Lib() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if err := m.CheckConsistency(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestLibraryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Lib() {
		if seen[m.Name] {
			t.Errorf("duplicate library name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Source == "" {
			t.Errorf("%s: missing source citation", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	m, ok := ByName("March SL")
	if !ok || m.Length() != 41 {
		t.Errorf("ByName(March SL) = %v, %v", m, ok)
	}
	if _, ok := ByName("no such test"); ok {
		t.Error("ByName must fail for unknown names")
	}
}

// Only the two sequences DESIGN.md documents as reconstructed carry the flag.
func TestReconstructedFlags(t *testing.T) {
	for _, m := range Lib() {
		want := m.Name == "March LF1" || m.Name == "43n March Test"
		if m.Reconstructed != want {
			t.Errorf("%s: Reconstructed = %v, want %v", m.Name, m.Reconstructed, want)
		}
	}
}

// The paper's generated tests must match the sequences printed in Table 1.
func TestPaperSequencesVerbatim(t *testing.T) {
	abl := MustParse("", "c(w0) ^(r0,r0,w0,r0,w1,w1,r1) ^(r1,r1,w1,r1,w0,w0,r0) "+
		"v(r0,w1) v(r1,w0) v(r0,r0,w0,r0,w1,w1,r1) v(r1,r1,w1,r1,w0,w0,r0) ^(r0,w1) ^(r1,w0)")
	if !MarchABL.Equal(abl) {
		t.Error("March ABL does not match the Table 1 sequence")
	}
	abl1 := MustParse("", "c(w0) c(w0,r0,r0,w1) c(w1,r1,r1,w0)")
	if !MarchABL1.Equal(abl1) {
		t.Error("March ABL1 does not match the Table 1 sequence")
	}
	rabl := MustParse("", "c(w0) ^(r0,r0,w0,r0) ^(r0,w1,r1,r1,w1,r1,w0,r0) ^(r0,w1) "+
		"v(r1,r1,w1,r1,w0,r0,w0,r0) ^(w1) ^(r1,r1,w1,r1,w0,r0,r0,w0,r0,w1,r1)")
	if !MarchRABL.Equal(rabl) {
		t.Error("March RABL does not match the Table 1 sequence")
	}
}
