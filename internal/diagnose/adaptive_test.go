package diagnose

import (
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

func mustSimple(t *testing.T, fpStr string) linked.Fault {
	t.Helper()
	f, err := linked.NewSimple(fp.MustParseFP(fpStr))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestParseReadIDRoundTrip pins the wire form "M<elem>#<op>@<addr>".
func TestParseReadIDRoundTrip(t *testing.T) {
	for _, id := range []ReadID{{0, 0, 0}, {1, 2, 3}, {12, 3, 45}} {
		got, err := ParseReadID(id.String())
		if err != nil {
			t.Fatalf("ParseReadID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip %q: got %+v", id.String(), got)
		}
	}
	for _, bad := range []string{"", "M", "M1", "M1#2", "1#2@3", "M-1#2@3", "Mx#2@3", "M1#x@3", "M1#2@x", "M1#2@-3"} {
		if _, err := ParseReadID(bad); err == nil {
			t.Errorf("ParseReadID(%q) accepted", bad)
		}
	}
}

func TestParseSyndromeCollapsesDuplicates(t *testing.T) {
	syn, err := ParseSyndrome([]string{"M1#0@2", " M1#0@2 ", "M0#1@3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(syn) != 2 {
		t.Fatalf("syndrome = %v, want 2 distinct reads", syn)
	}
	if _, err := ParseSyndrome([]string{"M1#0@2", "junk"}); err == nil {
		t.Error("malformed entry accepted")
	}
}

// TestLocalizeIntersectsObservations: with no observations every instance is
// a candidate; each consistent observation can only shrink the set, and the
// injected instance always survives.
func TestLocalizeIntersectsObservations(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	cfg := sim.Config{Size: 4}
	truth := mustSimple(t, "<0w0/1/->") // WDF0
	placement := []int{2}

	all, err := Localize(faults, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(faults)*4 {
		t.Fatalf("unconstrained candidates = %d, want %d", len(all), len(faults)*4)
	}

	var obs []Observation
	prev := len(all)
	for _, m := range []march.Test{march.MarchSS, march.MATSPlus} {
		syn, err := signature(m, truth, placement, cfg)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{Test: m, Syndrome: syn})
		cands, err := Localize(faults, obs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 || len(cands) > prev {
			t.Fatalf("after %s: %d candidates (prev %d)", m.Name, len(cands), prev)
		}
		found := false
		for _, c := range cands {
			if c.Fault.ID() == truth.ID() && c.Placement[0] == placement[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("after %s: injected instance excluded from %d candidates", m.Name, len(cands))
		}
		prev = len(cands)
	}
}

// TestNextTestSplitsAmbiguity: on an ambiguous candidate set NextTest must
// return a pool test that actually separates at least two candidates, and
// must respect the exclusion set.
func TestNextTestSplitsAmbiguity(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	cfg := sim.Config{Size: 4}
	truth := mustSimple(t, "<0w0/1/->")
	syn, err := signature(march.MATSPlus, truth, []int{2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Localize(faults, []Observation{{Test: march.MATSPlus, Syndrome: syn}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("MATS+ alone localized to %d candidates; need ambiguity for this test", len(cands))
	}
	pool := march.Lib()
	next, ok, err := NextTest(cands, pool, map[string]bool{march.MATSPlus.Name: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no pool test splits the MATS+ ambiguity class")
	}
	if next.Name == march.MATSPlus.Name {
		t.Fatal("NextTest returned an excluded test")
	}
	// The chosen test really splits: at least two candidates disagree.
	keys := map[string]bool{}
	for _, c := range cands {
		s, err := signature(next, c.Fault, c.Placement, cfg)
		if err != nil {
			t.Fatal(err)
		}
		keys[s.Key()] = true
	}
	if len(keys) < 2 {
		t.Fatalf("chosen test %s does not split the candidates", next.Name)
	}
	// A singleton set needs no follow-up.
	if _, ok, _ := NextTest(cands[:1], pool, nil, cfg); ok {
		t.Error("NextTest split a singleton")
	}
}

// TestAdaptiveLocalizeConvergesToInjectedFault drives the whole loop: the
// injected instance must be the unique survivor (or, if model-equivalent
// faults exist, must be among a stable set every member of which places the
// defect at the injected cell).
func TestAdaptiveLocalizeConvergesToInjectedFault(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	cfg := sim.Config{Size: 4}
	truth := mustSimple(t, "<0w0/1/->") // WDF0
	placement := []int{2}
	res, err := AdaptiveLocalize(truth, placement, faults, march.Lib(), march.MarchSS, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("adaptive loop eliminated the injected fault")
	}
	t.Logf("rounds=%d tests=%v stable=%v candidates=%d", res.Rounds, res.Tests, res.Stable, len(res.Candidates))
	for _, c := range res.Candidates {
		if c.Placement[0] != placement[0] {
			t.Errorf("candidate %s places the defect at %d, truth is %d", c, c.Placement[0], placement[0])
		}
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("loop ended with %d candidates, want singleton: %v", len(res.Candidates), res.Candidates)
	}
	c := res.Candidates[0]
	if c.Fault.ID() != truth.ID() || c.Placement[0] != placement[0] {
		t.Fatalf("localized %s, injected %s@%d", c, truth.ID(), placement[0])
	}
	if res.Rounds < 1 || len(res.Tests) != res.Rounds {
		t.Fatalf("rounds bookkeeping: %d rounds, tests %v", res.Rounds, res.Tests)
	}
}

// TestAdaptiveLocalizeStableOnIndistinguishable: restricted to a pool that
// cannot split the initial ambiguity, the loop must report Stable instead of
// spinning.
func TestAdaptiveLocalizeStableOnIndistinguishable(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	cfg := sim.Config{Size: 4}
	truth := mustSimple(t, "<0w0/1/->")
	res, err := AdaptiveLocalize(truth, []int{2}, faults, []march.Test{march.MATSPlus}, march.MATSPlus, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) > 1 && !res.Stable {
		t.Fatalf("ambiguous non-stable end: %+v", res)
	}
	if res.Rounds != 1 {
		t.Fatalf("pool of one already-used test must stop after round 1, got %d", res.Rounds)
	}
}
