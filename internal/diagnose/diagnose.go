// Package diagnose builds fault dictionaries and locates faults from march
// test failure signatures — the diagnosis counterpart of the generation
// flow. A production tester runs the march test and records which reads
// failed (the syndrome); matching the syndrome against the simulated
// signatures of every fault model narrows the defect down to the candidate
// faults (and, with placement-resolved signatures, to the failing cells).
//
// The dictionary is built with the same fault simulator that certifies
// generated tests, so diagnosis and generation share one semantic model.
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// ReadID identifies one read operation of a march test applied to a memory
// of a given size: the element, the visited cell, and the operation index
// within the element.
type ReadID struct {
	Element int
	Addr    int
	OpIndex int
}

// String renders "M1#3@2": element, op index within the element, address.
func (r ReadID) String() string {
	return fmt.Sprintf("M%d#%d@%d", r.Element, r.OpIndex, r.Addr)
}

// Syndrome is the set of failing reads of one march test run.
type Syndrome map[ReadID]bool

// Key returns a canonical string for the syndrome (sorted read IDs), usable
// as a dictionary key.
func (s Syndrome) Key() string {
	ids := make([]string, 0, len(s))
	for r := range s {
		ids = append(ids, r.String())
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// Entry is one dictionary entry: a fault instance (model + placement +
// initial state) and the syndrome it produces.
type Entry struct {
	Fault    linked.Fault
	Scenario sim.Scenario
	Syndrome Syndrome
}

// Dictionary maps syndrome keys to the fault instances that produce them.
type Dictionary struct {
	Test    march.Test
	Size    int
	Entries []Entry
	byKey   map[string][]int
}

// collectSyndrome replays one scenario and records every failing read.
func collectSyndrome(t march.Test, f linked.Fault, s sim.Scenario, cfg sim.Config) (Syndrome, error) {
	tr, err := sim.TraceScenario(t, f, s, cfg)
	if err != nil {
		return nil, err
	}
	syn := Syndrome{}
	for _, step := range tr.Steps {
		if step.Detected {
			syn[ReadID{Element: step.Element, Addr: step.Addr, OpIndex: step.OpIndex}] = true
		}
	}
	return syn, nil
}

// Build simulates every fault of the list in every placement (with the
// canonical all-zero initial state and canonical ⇕ resolution) and records
// the failure signatures. Faults that produce no failing read under the
// test are recorded with an empty syndrome — they are undiagnosable by this
// test, which Coverage-style analysis must have flagged already.
func Build(t march.Test, faults []linked.Fault, cfg sim.Config) (*Dictionary, error) {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	d := &Dictionary{Test: t, Size: cfg.Size, byKey: map[string][]int{}}
	orders := make([]march.AddrOrder, len(t.Elems))
	for i, e := range t.Elems {
		orders[i] = e.Order
		if orders[i] == march.Any {
			orders[i] = march.Up
		}
	}
	for _, f := range faults {
		placements := enumeratePlacements(f.Cells, cfg.Size)
		for _, pl := range placements {
			init := make([]fp.Value, f.Cells)
			s := sim.Scenario{Placement: pl, Init: init, Orders: orders}
			syn, err := collectSyndrome(t, f, s, cfg)
			if err != nil {
				return nil, err
			}
			idx := len(d.Entries)
			d.Entries = append(d.Entries, Entry{Fault: f, Scenario: *cloneScenario(s), Syndrome: syn})
			d.byKey[syn.Key()] = append(d.byKey[syn.Key()], idx)
		}
	}
	return d, nil
}

func cloneScenario(s sim.Scenario) *sim.Scenario {
	return &sim.Scenario{
		Placement: append([]int(nil), s.Placement...),
		Init:      append([]fp.Value(nil), s.Init...),
		Orders:    append([]march.AddrOrder(nil), s.Orders...),
	}
}

func enumeratePlacements(k, n int) [][]int {
	var out [][]int
	cur := make([]int, k)
	used := make([]bool, n)
	var rec func(d int)
	rec = func(d int) {
		if d == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for a := 0; a < n; a++ {
			if used[a] {
				continue
			}
			used[a] = true
			cur[d] = a
			rec(d + 1)
			used[a] = false
		}
	}
	rec(0)
	return out
}

// Lookup returns the fault instances whose signature matches the syndrome
// exactly.
func (d *Dictionary) Lookup(s Syndrome) []Entry {
	var out []Entry
	for _, idx := range d.byKey[s.Key()] {
		out = append(out, d.Entries[idx])
	}
	return out
}

// Diagnose simulates a fault instance as the "device under test" and looks
// its syndrome up in the dictionary — the round trip a tester performs.
func (d *Dictionary) Diagnose(f linked.Fault, s sim.Scenario, cfg sim.Config) ([]Entry, Syndrome, error) {
	if cfg.Size <= 0 {
		cfg.Size = d.Size
	}
	syn, err := collectSyndrome(d.Test, f, s, cfg)
	if err != nil {
		return nil, nil, err
	}
	return d.Lookup(syn), syn, nil
}

// Resolution summarizes how well the dictionary separates faults: how many
// distinct signatures exist, the largest ambiguity class, and how many
// instances are undiagnosable (empty syndrome).
type Resolution struct {
	Instances     int
	Signatures    int
	LargestClass  int
	Undiagnosable int
	PerfectUnique int // instances with a signature shared by no other
}

// Resolution computes the dictionary's diagnostic resolution.
func (d *Dictionary) Resolution() Resolution {
	r := Resolution{Instances: len(d.Entries), Signatures: len(d.byKey)}
	for key, idxs := range d.byKey {
		if key == "" {
			r.Undiagnosable += len(idxs)
			continue
		}
		if len(idxs) > r.LargestClass {
			r.LargestClass = len(idxs)
		}
		if len(idxs) == 1 {
			r.PerfectUnique++
		}
	}
	return r
}

// String renders the resolution summary.
func (r Resolution) String() string {
	return fmt.Sprintf("instances=%d signatures=%d unique=%d largestClass=%d undiagnosable=%d",
		r.Instances, r.Signatures, r.PerfectUnique, r.LargestClass, r.Undiagnosable)
}
