package diagnose

import (
	"strings"
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

func buildDict(t *testing.T, m march.Test, faults []linked.Fault) *Dictionary {
	t.Helper()
	d, err := Build(m, faults, sim.Config{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The tester round trip: simulate a "device" with a known fault, look the
// syndrome up, and find the true fault among the candidates.
func TestDiagnoseRoundTrip(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	d := buildDict(t, march.MarchSS, faults)

	truth, err := linked.NewSimple(fp.MustParseFP("<0w0/1/->")) // WDF0
	if err != nil {
		t.Fatal(err)
	}
	orders := canonicalOrders(march.MarchSS)
	s := sim.Scenario{Placement: []int{2}, Init: []fp.Value{fp.V0}, Orders: orders}
	candidates, syn, err := d.Diagnose(truth, s, sim.Config{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(syn) == 0 {
		t.Fatal("March SS must fail some reads for a WDF")
	}
	found := false
	for _, c := range candidates {
		if c.Fault.ID() == truth.ID() && c.Scenario.Placement[0] == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("true fault not among %d candidates", len(candidates))
	}
}

// The syndrome localizes the failing cell: every candidate for a
// single-cell fault at address 2 places its victim at address 2.
func TestDiagnosisLocalizes(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	d := buildDict(t, march.MarchSS, faults)
	truth, err := linked.NewSimple(fp.MustParseFP("<0w1/0/->")) // TF up
	if err != nil {
		t.Fatal(err)
	}
	s := sim.Scenario{Placement: []int{2}, Init: []fp.Value{fp.V0}, Orders: canonicalOrders(march.MarchSS)}
	candidates, _, err := d.Diagnose(truth, s, sim.Config{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range candidates {
		if c.Scenario.Placement[0] != 2 {
			t.Errorf("candidate %s places the fault at %d, truth is cell 2",
				c.Fault.ID(), c.Scenario.Placement[0])
		}
	}
}

// A fault the test does not detect is undiagnosable: empty syndrome, and
// the resolution statistics say so.
func TestUndiagnosableFaults(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	d := buildDict(t, march.MATSPlus, faults) // MATS+ misses most of them
	res := d.Resolution()
	if res.Undiagnosable == 0 {
		t.Error("MATS+ dictionary must contain undiagnosable instances")
	}
	if res.Instances != len(faults)*4 {
		t.Errorf("instances = %d, want %d", res.Instances, len(faults)*4)
	}
	if res.Signatures < 2 {
		t.Errorf("implausible signature count %d", res.Signatures)
	}
	if !strings.Contains(res.String(), "undiagnosable=") {
		t.Error("resolution summary incomplete")
	}
}

// A stronger test yields strictly better resolution than a weaker one on
// the same fault list.
func TestResolutionImprovesWithStrongerTest(t *testing.T) {
	faults := faultlist.SimpleSingleCell()
	weak := buildDict(t, march.MATSPlus, faults).Resolution()
	strong := buildDict(t, march.MarchSS, faults).Resolution()
	if strong.Undiagnosable > 0 {
		t.Errorf("March SS leaves %d undiagnosable simple single-cell instances", strong.Undiagnosable)
	}
	if strong.Signatures <= weak.Signatures {
		t.Errorf("March SS signatures (%d) must exceed MATS+ (%d)", strong.Signatures, weak.Signatures)
	}
}

// Dictionary lookups are exact: a syndrome not in the dictionary returns
// nothing.
func TestLookupUnknownSyndrome(t *testing.T) {
	d := buildDict(t, march.MATSPlus, faultlist.SimpleSingleCell())
	bogus := Syndrome{ReadID{Element: 99, Addr: 0, OpIndex: 0}: true}
	if got := d.Lookup(bogus); len(got) != 0 {
		t.Errorf("bogus syndrome matched %d entries", len(got))
	}
}

func TestReadIDAndSyndromeKey(t *testing.T) {
	a := ReadID{Element: 1, Addr: 2, OpIndex: 3}
	if a.String() != "M1#3@2" {
		t.Errorf("ReadID.String() = %q", a.String())
	}
	s1 := Syndrome{
		{Element: 1, Addr: 2, OpIndex: 3}: true,
		{Element: 0, Addr: 0, OpIndex: 0}: true,
	}
	s2 := Syndrome{
		{Element: 0, Addr: 0, OpIndex: 0}: true,
		{Element: 1, Addr: 2, OpIndex: 3}: true,
	}
	if s1.Key() != s2.Key() {
		t.Error("syndrome keys must be order independent")
	}
	if (Syndrome{}).Key() != "" {
		t.Error("empty syndrome must have the empty key")
	}
}

// Linked faults diagnose too: the March SL dictionary separates the LF1
// family instances from each other at distinct cells.
func TestDiagnoseLinkedFaults(t *testing.T) {
	faults := faultlist.List2()
	d := buildDict(t, march.MarchSL, faults)
	res := d.Resolution()
	if res.Undiagnosable != 0 {
		t.Errorf("March SL leaves %d undiagnosable List #2 instances", res.Undiagnosable)
	}
	// Same fault at different cells must produce different signatures.
	lf := faults[0]
	synByCell := map[string]bool{}
	for _, e := range d.Entries {
		if e.Fault.ID() == lf.ID() {
			synByCell[e.Syndrome.Key()] = true
		}
	}
	if len(synByCell) < 4 {
		t.Errorf("fault %s has only %d distinct signatures across 4 cells", lf.ID(), len(synByCell))
	}
}

func canonicalOrders(m march.Test) []march.AddrOrder {
	orders := make([]march.AddrOrder, len(m.Elems))
	for i, e := range m.Elems {
		orders[i] = e.Order
		if orders[i] == march.Any {
			orders[i] = march.Up
		}
	}
	return orders
}
