package diagnose

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// This file implements the adaptive half of diagnosis, after Wang et al.
// (arXiv:0710.4655): from the syndrome of one executed march test the
// dictionary yields a set of candidate fault instances; when the set is
// ambiguous, the follow-up march is chosen to split the candidates as evenly
// as possible (minimizing the worst-case surviving class), and the loop
// repeats until the candidate set is a singleton or no march in the pool can
// split it further.

// ParseReadID parses the "M<element>#<op>@<addr>" rendering of a ReadID.
// It rejects malformed and out-of-range inputs instead of panicking — the
// syndrome arrives from testers over the wire.
func ParseReadID(s string) (ReadID, error) {
	rest, ok := strings.CutPrefix(s, "M")
	if !ok {
		return ReadID{}, fmt.Errorf("diagnose: read ID %q must start with 'M'", s)
	}
	elemStr, rest, ok := strings.Cut(rest, "#")
	if !ok {
		return ReadID{}, fmt.Errorf("diagnose: read ID %q missing '#'", s)
	}
	opStr, addrStr, ok := strings.Cut(rest, "@")
	if !ok {
		return ReadID{}, fmt.Errorf("diagnose: read ID %q missing '@'", s)
	}
	elem, err := strconv.Atoi(elemStr)
	if err != nil || elem < 0 {
		return ReadID{}, fmt.Errorf("diagnose: read ID %q has invalid element", s)
	}
	op, err := strconv.Atoi(opStr)
	if err != nil || op < 0 {
		return ReadID{}, fmt.Errorf("diagnose: read ID %q has invalid op index", s)
	}
	addr, err := strconv.Atoi(addrStr)
	if err != nil || addr < 0 {
		return ReadID{}, fmt.Errorf("diagnose: read ID %q has invalid address", s)
	}
	return ReadID{Element: elem, Addr: addr, OpIndex: op}, nil
}

// ParseSyndrome parses a list of rendered read IDs into a Syndrome.
// Duplicates collapse (a set is a set); any malformed entry fails the parse.
func ParseSyndrome(ids []string) (Syndrome, error) {
	syn := Syndrome{}
	for _, id := range ids {
		r, err := ParseReadID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		syn[r] = true
	}
	return syn, nil
}

// Observation is one executed march test and the syndrome the tester
// recorded.
type Observation struct {
	Test     march.Test
	Syndrome Syndrome
}

// Candidate is a fault instance — model plus placement — consistent with
// every observation so far. The placement is part of the identity: the
// physical defect sits at fixed addresses, so follow-up tests must reproduce
// the same instance's signature.
type Candidate struct {
	Fault     linked.Fault
	Placement []int
}

// Key returns a stable identity for the instance.
func (c Candidate) Key() string {
	parts := make([]string, 0, len(c.Placement)+1)
	parts = append(parts, c.Fault.ID())
	for _, a := range c.Placement {
		parts = append(parts, strconv.Itoa(a))
	}
	return strings.Join(parts, "|")
}

// String renders "FaultID@2,0".
func (c Candidate) String() string {
	addrs := make([]string, len(c.Placement))
	for i, a := range c.Placement {
		addrs[i] = strconv.Itoa(a)
	}
	return c.Fault.ID() + "@" + strings.Join(addrs, ",")
}

// signature computes the deterministic syndrome of a fault instance under a
// march test (canonical all-zero initial state, ⇕ resolved upward — the same
// convention Build uses, so dictionary and signature agree).
func signature(t march.Test, f linked.Fault, placement []int, cfg sim.Config) (Syndrome, error) {
	orders := make([]march.AddrOrder, len(t.Elems))
	for i, e := range t.Elems {
		orders[i] = e.Order
		if orders[i] == march.Any {
			orders[i] = march.Up
		}
	}
	s := sim.Scenario{
		Placement: append([]int(nil), placement...),
		Init:      make([]fp.Value, f.Cells),
		Orders:    orders,
	}
	return collectSyndrome(t, f, s, cfg)
}

// Localize intersects the observations: a candidate instance survives iff
// its simulated signature matches the recorded syndrome under every observed
// test. With no observations every instance is a candidate. The returned
// slice is sorted by Key for determinism.
func Localize(faults []linked.Fault, obs []Observation, cfg sim.Config) ([]Candidate, error) {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	var cands []Candidate
	for _, f := range faults {
		if f.Cells >= cfg.Size {
			return nil, fmt.Errorf("diagnose: %d-cell fault needs an array larger than %d", f.Cells, cfg.Size)
		}
		for _, pl := range enumeratePlacements(f.Cells, cfg.Size) {
			cands = append(cands, Candidate{Fault: f, Placement: pl})
		}
	}
	for _, ob := range obs {
		if err := ob.Test.Validate(); err != nil {
			return nil, err
		}
		want := ob.Syndrome.Key()
		var kept []Candidate
		for _, c := range cands {
			syn, err := signature(ob.Test, c.Fault, c.Placement, cfg)
			if err != nil {
				return nil, err
			}
			if syn.Key() == want {
				kept = append(kept, c)
			}
		}
		cands = kept
		if len(cands) == 0 {
			break
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Key() < cands[j].Key() })
	return cands, nil
}

// NextTest picks the march from the pool that best splits the candidate
// set: the one minimizing the size of the largest class of candidates
// sharing a signature. Ties break toward more classes, then shorter tests,
// then lexicographic name, so the choice is deterministic. It returns false
// when no pool test splits the set at all (every test leaves all candidates
// in one class) — the adaptive loop has gone stable.
func NextTest(cands []Candidate, pool []march.Test, exclude map[string]bool, cfg sim.Config) (march.Test, bool, error) {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if len(cands) <= 1 {
		return march.Test{}, false, nil
	}
	best := march.Test{}
	bestLargest, bestClasses, bestLen := -1, -1, -1
	for _, t := range pool {
		if exclude[t.Name] {
			continue
		}
		classes := map[string]int{}
		largest := 0
		fail := false
		for _, c := range cands {
			syn, err := signature(t, c.Fault, c.Placement, cfg)
			if err != nil {
				// A pool test that cannot simulate some candidate (e.g. too
				// small a memory) is skipped, not fatal: the pool is advisory.
				fail = true
				break
			}
			classes[syn.Key()]++
			if classes[syn.Key()] > largest {
				largest = classes[syn.Key()]
			}
		}
		if fail || len(classes) <= 1 {
			continue // does not split
		}
		better := bestLargest < 0 ||
			largest < bestLargest ||
			largest == bestLargest && len(classes) > bestClasses ||
			largest == bestLargest && len(classes) == bestClasses && t.Length() < bestLen ||
			largest == bestLargest && len(classes) == bestClasses && t.Length() == bestLen && t.Name < best.Name
		if better {
			best, bestLargest, bestClasses, bestLen = t, largest, len(classes), t.Length()
		}
	}
	if bestLargest < 0 {
		return march.Test{}, false, nil
	}
	return best, true, nil
}

// AdaptiveResult summarizes an adaptive localization session.
type AdaptiveResult struct {
	// Candidates is the final candidate set.
	Candidates []Candidate
	// Rounds is the number of march tests executed (including the first).
	Rounds int
	// Tests names the executed tests in order.
	Tests []string
	// Stable is true when the loop stopped because no pool test could split
	// the remaining candidates (as opposed to reaching a singleton).
	Stable bool
}

// AdaptiveLocalize drives the whole loop against a simulated device under
// test: the target fault instance is "the defect", each chosen march is
// executed by simulation to produce its syndrome, and the loop continues
// until the candidate set is singleton, stable, or maxRounds is exhausted.
// It is the reference driver the service endpoint and marchctl reuse in
// spirit; testers replace the simulated execution with the real device.
func AdaptiveLocalize(target linked.Fault, placement []int, faults []linked.Fault, pool []march.Test, start march.Test, cfg sim.Config, maxRounds int) (AdaptiveResult, error) {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if maxRounds <= 0 {
		maxRounds = 8
	}
	res := AdaptiveResult{}
	used := map[string]bool{}
	var obs []Observation
	next := start
	for round := 0; round < maxRounds; round++ {
		syn, err := signature(next, target, placement, cfg)
		if err != nil {
			return res, err
		}
		obs = append(obs, Observation{Test: next, Syndrome: syn})
		used[next.Name] = true
		res.Rounds++
		res.Tests = append(res.Tests, next.Name)
		cands, err := Localize(faults, obs, cfg)
		if err != nil {
			return res, err
		}
		res.Candidates = cands
		if len(cands) <= 1 {
			return res, nil
		}
		t, ok, err := NextTest(cands, pool, used, cfg)
		if err != nil {
			return res, err
		}
		if !ok {
			res.Stable = true
			return res, nil
		}
		next = t
	}
	res.Stable = true
	return res, nil
}
