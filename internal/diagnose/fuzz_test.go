package diagnose

import (
	"strings"
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// FuzzDiagnoseSyndrome feeds hostile, partial and contradictory syndromes
// through the same path the /v1/diagnose endpoint runs: parse, localize,
// pick a follow-up. Whatever a tester wires across, the pipeline must
// reject malformed input with an error (never a panic) and terminate on
// well-formed input — impossible syndromes just localize to the empty set.
func FuzzDiagnoseSyndrome(f *testing.F) {
	// A genuine syndrome of a WDF0 at cell 2 under MATS+, for the corpus.
	faults := faultlist.SimpleSingleCell()
	cfg := sim.Config{Size: 4}
	d, err := Build(march.MATSPlus, faults[:1], cfg)
	if err != nil {
		f.Fatal(err)
	}
	var real string
	for _, e := range d.Entries {
		if len(e.Syndrome) > 0 {
			real = e.Syndrome.Key()
			break
		}
	}

	f.Add(real, uint8(0))
	f.Add("", uint8(0))
	f.Add("M0#0@0", uint8(1))                 // contradictory: element 0 is write-only
	f.Add("M1#0@2,M1#0@2,M3#1@0", uint8(2))   // duplicates + plausible reads
	f.Add("M999#999@999", uint8(3))           // far outside the test
	f.Add("M-1#0@0", uint8(4))                // malformed: negative element
	f.Add("garbage,M1#0@2", uint8(5))         // malformed entry amid valid ones
	f.Add("M1#0@2, M2#1@3 ,M0#1@1", uint8(6)) // whitespace forms

	pool := march.Lib()
	f.Fuzz(func(t *testing.T, raw string, testIdx uint8) {
		if len(raw) > 2048 {
			t.Skip("oversized syndrome")
		}
		syn, err := ParseSyndrome(strings.Split(raw, ","))
		if err != nil {
			return // malformed input must error, and it did
		}
		obs := []Observation{{Test: pool[int(testIdx)%len(pool)], Syndrome: syn}}
		cands, err := Localize(faults, obs, cfg)
		if err != nil {
			t.Fatalf("Localize on a parsed syndrome: %v", err)
		}
		if len(cands) > len(faults)*cfg.Size {
			t.Fatalf("%d candidates from %d instances", len(cands), len(faults)*cfg.Size)
		}
		used := map[string]bool{obs[0].Test.Name: true}
		next, ok, err := NextTest(cands, pool, used, cfg)
		if err != nil {
			t.Fatalf("NextTest: %v", err)
		}
		if ok && used[next.Name] {
			t.Fatalf("NextTest recommended the already-executed %s", next.Name)
		}
		if ok && len(cands) <= 1 {
			t.Fatal("NextTest proposed a follow-up for a settled candidate set")
		}
	})
}
