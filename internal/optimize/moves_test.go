package optimize

import (
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Moves must never corrupt structure: an applied move yields a test that
// passes Validate (consistency is the evaluator's job), and the parent is
// never mutated in place.
func TestMutateStructurallySound(t *testing.T) {
	rng := Rng(1)
	parent := march.MarchABL1.Clone()
	before := parent.ASCII()
	applied := 0
	for i := 0; i < 2000; i++ {
		child, desc, ok := mutate(rng, parent)
		if !ok {
			continue
		}
		applied++
		if desc == "" {
			t.Fatalf("iteration %d: applied move with empty description", i)
		}
		if err := child.Validate(); err != nil {
			t.Fatalf("iteration %d (%s): invalid child: %v\n%s", i, desc, err, child.ASCII())
		}
		if parent.ASCII() != before {
			t.Fatalf("iteration %d (%s): parent mutated in place", i, desc)
		}
	}
	if applied < 1000 {
		t.Errorf("only %d/2000 moves applied — move set too often inapplicable", applied)
	}
}

func TestSpliceStructurallySound(t *testing.T) {
	rng := Rng(2)
	a, b := march.MarchABL1.Clone(), march.MarchLF1.Clone()
	beforeA, beforeB := a.ASCII(), b.ASCII()
	for i := 0; i < 500; i++ {
		child, _, ok := splice(rng, a, b)
		if !ok {
			t.Fatalf("iteration %d: splice of non-empty tests inapplicable", i)
		}
		if err := child.Validate(); err != nil {
			t.Fatalf("iteration %d: invalid splice: %v\n%s", i, err, child.ASCII())
		}
		if a.ASCII() != beforeA || b.ASCII() != beforeB {
			t.Fatalf("iteration %d: splice mutated a parent", i)
		}
	}
}

func TestMergeConflictingOrdersInapplicable(t *testing.T) {
	rng := Rng(3)
	tt := march.MustParse("updown", "^(r0,w1) v(r1,w0)")
	tt.Elems[0].Order = march.Up
	tt.Elems[1].Order = march.Down
	for i := 0; i < 50; i++ {
		if _, _, ok := mergeElems(rng, tt); ok {
			t.Fatal("merged ⇑ with ⇓")
		}
	}
}

func TestMergeAdoptsFixedOrder(t *testing.T) {
	rng := Rng(4)
	tt := march.MustParse("anyup", "c(w0) ^(r0,w1)")
	out, _, ok := mergeElems(rng, tt)
	if !ok {
		t.Fatal("merge inapplicable")
	}
	if len(out.Elems) != 1 || out.Elems[0].Order != march.Up {
		t.Fatalf("merge = %s", out.ASCII())
	}
	if len(out.Elems[0].Ops) != 3 {
		t.Fatalf("merged ops = %d, want 3", len(out.Elems[0].Ops))
	}
}

func TestValueAt(t *testing.T) {
	tt := march.MustParse("v", "c(w0) ^(r0,w1,r1) v(r1,w0)")
	cases := []struct {
		i, j int
		want fp.Value
	}{
		{0, 0, fp.VX}, // before the first write
		{1, 0, fp.V0}, // after c(w0)
		{1, 2, fp.V1}, // after the w1
		{2, 0, fp.V1},
		{2, 2, fp.V0}, // past the end of the element clamps
	}
	for _, c := range cases {
		if got := valueAt(tt, c.i, c.j); got != c.want {
			t.Errorf("valueAt(%d,%d) = %s, want %s", c.i, c.j, got, c.want)
		}
	}
}

// deleteOp on a single-op element removes the element; on the last element
// it is inapplicable.
func TestDeleteOpCollapsesSingletons(t *testing.T) {
	rng := Rng(5)
	single := march.MustParse("one", "c(w0)")
	if _, _, ok := deleteOp(rng, single); ok {
		t.Fatal("deleted the only op of the only element")
	}
	two := march.MustParse("two", "c(w0) c(r0)")
	seenElemDrop := false
	for i := 0; i < 50; i++ {
		out, desc, ok := deleteOp(rng, two)
		if !ok {
			t.Fatal("inapplicable")
		}
		if len(out.Elems) != 1 {
			t.Fatalf("elements = %d after %s", len(out.Elems), desc)
		}
		seenElemDrop = true
	}
	if !seenElemDrop {
		t.Fatal("never collapsed a singleton element")
	}
}
