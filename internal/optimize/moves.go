package optimize

import (
	"fmt"
	"math/rand"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// The move set: element-level edits of a march test. Every move returns the
// mutated test, a short description for the move trace, and whether it
// applied at all (a move can be inapplicable, e.g. deleting from a
// single-element test). Moves do NOT guarantee the result is a consistent
// march test — the evaluator's Validate/CheckConsistency gate filters
// inconsistent candidates before any simulation is spent on them. Keeping
// moves dumb and the gate strict is what lets the move set stay small while
// still reaching sequences the constructive generator never emits.
//
// Move selection and every index drawn inside a move come from the run's
// single rng, so the mutation stream is a pure function of the seed.

// mutate applies one randomly chosen move. The weights favor shrinking moves
// (delete op/element, merge) over neutral (swap, flip, split, replace) and
// growing (insert) ones: the fitness target is length, so the search should
// mostly propose cuts and use insertions only to escape local minima.
func mutate(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	switch rng.Intn(10) {
	case 0, 1, 2:
		return deleteOp(rng, t)
	case 3:
		return deleteElem(rng, t)
	case 4:
		return mergeElems(rng, t)
	case 5:
		return swapOps(rng, t)
	case 6:
		return flipOrder(rng, t)
	case 7:
		return splitElem(rng, t)
	case 8:
		return replaceOp(rng, t)
	default:
		return insertOp(rng, t)
	}
}

// deleteOp removes one operation; if the element had only that operation,
// the element goes with it.
func deleteOp(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) == 0 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems))
	if len(out.Elems[i].Ops) == 1 {
		if len(out.Elems) == 1 {
			return t, "", false
		}
		out.Elems = append(out.Elems[:i], out.Elems[i+1:]...)
		return out, fmt.Sprintf("delElem@%d", i), true
	}
	j := rng.Intn(len(out.Elems[i].Ops))
	ops := out.Elems[i].Ops
	out.Elems[i].Ops = append(ops[:j], ops[j+1:]...)
	return out, fmt.Sprintf("delOp@%d.%d", i, j), true
}

// deleteElem removes one whole element.
func deleteElem(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) < 2 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems))
	out.Elems = append(out.Elems[:i], out.Elems[i+1:]...)
	return out, fmt.Sprintf("delElem@%d", i), true
}

// insertOp inserts one operation at a random position: a random write, or a
// read of the fault-free value at that point (so the insertion alone never
// breaks consistency — later reads may still disagree if a write was
// inserted, which the gate catches).
func insertOp(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) == 0 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems))
	j := rng.Intn(len(out.Elems[i].Ops) + 1)
	var op fp.Op
	if rng.Intn(2) == 0 {
		op = fp.W(fp.ValueOf(uint8(rng.Intn(2))))
	} else {
		v := valueAt(out, i, j)
		if !v.IsBinary() {
			op = fp.W(fp.ValueOf(uint8(rng.Intn(2))))
		} else {
			op = fp.R(v)
		}
	}
	ops := out.Elems[i].Ops
	ops = append(ops[:j], append([]fp.Op{op}, ops[j:]...)...)
	out.Elems[i].Ops = ops
	return out, fmt.Sprintf("insOp(%s)@%d.%d", op, i, j), true
}

// replaceOp overwrites one operation with a random write or consistent read.
func replaceOp(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) == 0 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems))
	j := rng.Intn(len(out.Elems[i].Ops))
	var op fp.Op
	if rng.Intn(2) == 0 {
		op = fp.W(fp.ValueOf(uint8(rng.Intn(2))))
	} else {
		v := valueAt(out, i, j)
		if !v.IsBinary() {
			op = fp.W(fp.ValueOf(uint8(rng.Intn(2))))
		} else {
			op = fp.R(v)
		}
	}
	out.Elems[i].Ops[j] = op
	return out, fmt.Sprintf("repOp(%s)@%d.%d", op, i, j), true
}

// swapOps exchanges two adjacent operations within one element.
func swapOps(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) == 0 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems))
	if len(out.Elems[i].Ops) < 2 {
		return t, "", false
	}
	j := rng.Intn(len(out.Elems[i].Ops) - 1)
	ops := out.Elems[i].Ops
	ops[j], ops[j+1] = ops[j+1], ops[j]
	return out, fmt.Sprintf("swap@%d.%d", i, j), true
}

// flipOrder rotates an element's address order Up → Down → Any → Up.
func flipOrder(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) == 0 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems))
	switch out.Elems[i].Order {
	case march.Up:
		out.Elems[i].Order = march.Down
	case march.Down:
		out.Elems[i].Order = march.Any
	default:
		out.Elems[i].Order = march.Up
	}
	return out, fmt.Sprintf("flip(%s)@%d", out.Elems[i].Order.ASCII(), i), true
}

// splitElem cuts one element in two at a random op boundary; both halves
// keep the original address order.
func splitElem(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) == 0 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems))
	if len(out.Elems[i].Ops) < 2 {
		return t, "", false
	}
	j := 1 + rng.Intn(len(out.Elems[i].Ops)-1)
	e := out.Elems[i]
	left := march.NewElement(e.Order, e.Ops[:j]...)
	right := march.NewElement(e.Order, append([]fp.Op(nil), e.Ops[j:]...)...)
	out.Elems[i] = left
	out.Elems = append(out.Elems[:i+1], append([]march.Element{right}, out.Elems[i+1:]...)...)
	return out, fmt.Sprintf("split@%d.%d", i, j), true
}

// mergeElems joins two adjacent elements. The merged order is the fixed one
// if exactly one side is ⇕; when both are fixed and disagree the move is
// inapplicable (the concatenation would change semantics).
func mergeElems(rng *rand.Rand, t march.Test) (march.Test, string, bool) {
	if len(t.Elems) < 2 {
		return t, "", false
	}
	out := t.Clone()
	i := rng.Intn(len(out.Elems) - 1)
	a, b := out.Elems[i], out.Elems[i+1]
	order := a.Order
	switch {
	case a.Order == march.Any:
		order = b.Order
	case b.Order == march.Any || a.Order == b.Order:
		// keep a.Order
	default:
		return t, "", false
	}
	merged := march.NewElement(order, append(append([]fp.Op(nil), a.Ops...), b.Ops...)...)
	out.Elems[i] = merged
	out.Elems = append(out.Elems[:i+1], out.Elems[i+2:]...)
	return out, fmt.Sprintf("merge@%d", i), true
}

// splice crosses two tests: the prefix of a (up to a random element
// boundary) followed by the suffix of b. Used between beam survivors to
// recombine partial solutions.
func splice(rng *rand.Rand, a, b march.Test) (march.Test, string, bool) {
	if len(a.Elems) == 0 || len(b.Elems) == 0 {
		return a, "", false
	}
	out := a.Clone()
	cut := 1 + rng.Intn(len(a.Elems))
	from := rng.Intn(len(b.Elems))
	bc := b.Clone()
	out.Elems = append(out.Elems[:cut], bc.Elems[from:]...)
	return out, fmt.Sprintf("splice@%d+%d", cut, from), true
}

// valueAt returns the fault-free cell value just before element i, op j —
// the expectation a read inserted there must carry. VX before the first
// write.
func valueAt(t march.Test, i, j int) fp.Value {
	v := fp.VX
	for ei := 0; ei <= i && ei < len(t.Elems); ei++ {
		ops := t.Elems[ei].Ops
		stop := len(ops)
		if ei == i {
			stop = j
			if stop > len(ops) {
				stop = len(ops)
			}
		}
		for oi := 0; oi < stop; oi++ {
			if ops[oi].Kind == fp.OpWrite {
				v = ops[oi].Data
			}
		}
	}
	return v
}
