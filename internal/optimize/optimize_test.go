package optimize

import (
	"context"
	"strings"
	"testing"

	"marchgen/internal/core"
	"marchgen/internal/faultlist"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/oracle"
	"marchgen/internal/sim"
)

func list2(t *testing.T) []linked.Fault {
	t.Helper()
	faults, ok := faultlist.ByName("list2")
	if !ok {
		t.Fatal("fault list list2 not found")
	}
	return faults
}

// The acceptance bar of the issue: a short-budget fixed-seed run starting
// from the paper's own 9n March ABL1 must find a full-coverage test for
// Fault List #2 no longer than the paper's published 9n, certified by the
// independent oracle.
func TestBeatsPaperOnList2(t *testing.T) {
	seed := march.MarchABL1
	res, err := Run(list2(t), Options{
		Name:     "March OPT list2",
		Seed:     1,
		Budget:   400,
		SeedTest: &seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, paper := res.Test.Length(), march.MarchABL1.Length(); got > paper {
		t.Errorf("winner %dn longer than the paper's %dn", got, paper)
	}
	if !res.Report.Full() {
		t.Errorf("winner not at full coverage: %d/%d", res.Report.Detected(), res.Report.Total())
	}
	if res.Test.Origin != march.OriginOptimized {
		t.Errorf("origin = %q, want %q", res.Test.Origin, march.OriginOptimized)
	}
	p := res.Test.Prov
	if p == nil || p.Seed != 1 || p.Budget != 400 || p.SeedTest != "March ABL1" || p.SeedLength != 9 {
		t.Errorf("provenance = %+v", p)
	}
	if p != nil && p.MoveTrace == "" {
		t.Error("empty move trace hash")
	}
	t.Logf("winner: %s (%s), %d evaluations", res.Test.ASCII(), res.Test.Complexity(), res.Stats.Evaluations)
}

// Property: two runs with the same seed and options are byte-identical —
// same winner rendering, same move-trace hash, same evaluation count.
func TestDeterministicAcrossRuns(t *testing.T) {
	seed := march.MarchABL1
	opts := Options{Seed: 42, Budget: 300, SeedTest: &seed}
	a, err := Run(list2(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(list2(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Test.ASCII() != b.Test.ASCII() {
		t.Errorf("winners differ:\n  %s\n  %s", a.Test.ASCII(), b.Test.ASCII())
	}
	if a.Test.Prov.MoveTrace != b.Test.Prov.MoveTrace {
		t.Errorf("move traces differ: %s vs %s", a.Test.Prov.MoveTrace, b.Test.Prov.MoveTrace)
	}
	if a.Stats.Evaluations != b.Stats.Evaluations {
		t.Errorf("evaluation counts differ: %d vs %d", a.Stats.Evaluations, b.Stats.Evaluations)
	}
}

// Property: for any rng seed, the winner (a) passes CertifyWithOracle,
// (b) is never longer than its seed test.
func TestWinnerCertifiedAndNeverLonger(t *testing.T) {
	faults := list2(t)
	for _, seed := range []int64{1, 2, 3} {
		st := march.MarchABL1
		res, err := Run(faults, Options{Seed: seed, Budget: 200, SeedTest: &st})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Test.Length() > st.Length() {
			t.Errorf("seed %d: winner %dn longer than seed %dn", seed, res.Test.Length(), st.Length())
		}
		if _, err := core.CertifyWithOracle(res.Test, faults, sim.Config{}); err != nil {
			t.Errorf("seed %d: winner fails independent re-certification: %v", seed, err)
		}
	}
}

// Property: a hand-built test with known-redundant operations strictly
// shrinks. March ABL1 plus a redundant verification sweep is 11n and covers
// list2; the optimizer must at minimum find its way back to ≤ 9n.
func TestShrinksKnownRedundantSeed(t *testing.T) {
	redundant := march.MustParse("ABL1 padded",
		"c(w0) c(w0,r0,r0,w1) c(w1,r1,r1,w0) c(r0,r0)")
	if got := redundant.Length(); got != 11 {
		t.Fatalf("padded seed is %dn, want 11n", got)
	}
	res, err := Run(list2(t), Options{Seed: 1, Budget: 300, SeedTest: &redundant})
	if err != nil {
		t.Fatal(err)
	}
	if res.Test.Length() >= redundant.Length() {
		t.Errorf("winner %dn did not shrink the redundant %dn seed", res.Test.Length(), redundant.Length())
	}
}

// A seed test that does not cover the list is rejected up front, not
// silently optimized into something unrelated.
func TestSeedMustCoverList(t *testing.T) {
	seed := march.MATSPlus // 5n, nowhere near covering static linked faults
	_, err := Run(list2(t), Options{SeedTest: &seed})
	if err == nil || !strings.Contains(err.Error(), "does not cover") {
		t.Fatalf("err = %v, want seed-coverage rejection", err)
	}
}

func TestEmptyFaultListRejected(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("empty fault list accepted")
	}
}

// Without an explicit seed test, Run generates one with package core and
// optimizes from there.
func TestGeneratedSeed(t *testing.T) {
	res, err := Run(list2(t), Options{Seed: 1, Budget: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed.Length() == 0 || res.Test.Length() > res.Seed.Length() {
		t.Errorf("winner %dn vs generated seed %dn", res.Test.Length(), res.Seed.Length())
	}
	if res.Test.Prov.SeedTest != res.Seed.Name {
		t.Errorf("provenance seed test %q, want %q", res.Test.Prov.SeedTest, res.Seed.Name)
	}
}

// Cancellation aborts the search promptly with ctx.Err().
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seed := march.MarchABL1
	_, err := RunContext(ctx, list2(t), Options{SeedTest: &seed})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v, want context cancellation", err)
	}
}

// The budget is a hard ceiling on coverage evaluations.
func TestBudgetRespected(t *testing.T) {
	seed := march.MarchABL1
	res, err := Run(list2(t), Options{Seed: 1, Budget: 25, SeedTest: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluations > 25 {
		t.Errorf("spent %d evaluations, budget 25", res.Stats.Evaluations)
	}
}

// OnProgress observes monotone evaluation counts and the restart index.
func TestProgressCallback(t *testing.T) {
	var calls []Progress
	seed := march.MarchABL1
	_, err := Run(list2(t), Options{
		Seed: 1, Budget: 150, SeedTest: &seed,
		OnProgress: func(p Progress) { calls = append(calls, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no progress callbacks")
	}
	last := -1
	for _, p := range calls {
		if p.Evaluations < last {
			t.Errorf("evaluations went backwards: %d after %d", p.Evaluations, last)
		}
		last = p.Evaluations
		if p.BestLength <= 0 || p.BestLength > seed.Length() {
			t.Errorf("best length %d out of range", p.BestLength)
		}
	}
}

// The optimizer's winner agrees with the reference oracle by construction
// (certify-before-land); cross-check one winner explicitly against the
// oracle to keep the invariant pinned from this package too.
func TestWinnerAgreesWithOracle(t *testing.T) {
	seed := march.MarchABL1
	res, err := Run(list2(t), Options{Seed: 7, Budget: 200, SeedTest: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := oracle.CrossCheck(res.Test, list2(t), sim.DefaultConfig()); len(diffs) > 0 {
		t.Fatalf("oracle divergence on winner: %v", diffs[0])
	}
}
