package optimize

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// candidate is a full-coverage march test inside the search, with its
// fitness keys precomputed and the lineage of accepted moves that produced
// it from the seed.
type candidate struct {
	test  march.Test
	len   int
	elems int
	cost  int64   // BIST cycle tie-break (0 when disabled)
	score float64 // weighted length+BIST fitness (0 when BISTWeight is off)
	ascii string
	trace []string
}

// better is the total fitness order: the weighted length+BIST score first
// (inert at the historical 0 when BISTWeight is off), then shorter, then
// fewer elements (a march element is a BIST sequencer state, and
// fragmenting into single-op elements is free under the length metric
// alone), then cheaper in BIST cycles, then lexicographic ASCII rendering.
// The last key makes every comparison deterministic, which run-to-run
// reproducibility depends on.
func (c candidate) better(d candidate) bool {
	if c.score != d.score {
		return c.score < d.score
	}
	if c.len != d.len {
		return c.len < d.len
	}
	if c.elems != d.elems {
		return c.elems < d.elems
	}
	if c.cost != d.cost {
		return c.cost < d.cost
	}
	return c.ascii < d.ascii
}

// search is one optimization run: a beam of full-coverage candidates walked
// by annealed mutation, restarted after each cool-down. All state is
// single-goroutine; determinism comes from the one rng and total orders.
type search struct {
	ctx    context.Context
	rng    *rand.Rand
	faults []linked.Fault // private copy; reordered fail-first as misses occur
	cfg    sim.Config
	opts   Options
	st     *Stats
	seed   march.Test
	maxLen int             // seed length + slack: growth cap
	seen   map[string]bool // ascii → covers, dedupes evaluation spend
}

func newSearch(ctx context.Context, seed march.Test, faults []linked.Fault, cfg sim.Config, opts Options, st *Stats) *search {
	return &search{
		ctx:    ctx,
		rng:    Rng(opts.seed()),
		faults: append([]linked.Fault(nil), faults...),
		cfg:    cfg,
		opts:   opts,
		st:     st,
		seed:   seed,
		maxLen: seed.Length() + opts.lengthSlack(),
		seen:   map[string]bool{},
	}
}

// covers reports whether the candidate fully covers the fault list. It is
// the budgeted fitness evaluation: structural gates (validity, consistency,
// length cap) and cache hits are free; only a real simulator scan spends
// budget. On a miss, the missed fault moves to the front of the working
// order, so structurally similar failing candidates are rejected by the
// first scan step next time (fail-first ordering).
func (s *search) covers(t march.Test) (bool, error) {
	if err := s.ctx.Err(); err != nil {
		return false, err
	}
	if t.Length() > s.maxLen {
		return false, nil
	}
	if t.Validate() != nil || t.CheckConsistency() != nil {
		return false, nil
	}
	key := t.ASCII()
	if full, ok := s.seen[key]; ok {
		return full, nil
	}
	if s.st.Evaluations >= s.opts.budget() {
		return false, errBudget
	}
	s.st.Evaluations++
	sched, err := sim.NewSchedule(t, s.cfg)
	if err != nil {
		// A structurally valid test the schedule compiler rejects (e.g. the
		// ⇕ expansion cap) is simply not a viable candidate.
		s.seen[key] = false
		return false, nil
	}
	full, miss, err := sched.FullCoverage(s.faults)
	if err != nil {
		return false, err
	}
	if !full && miss != nil {
		for i := range s.faults {
			if &s.faults[i] == miss {
				f := s.faults[i]
				copy(s.faults[1:i+1], s.faults[:i])
				s.faults[0] = f
				break
			}
		}
	}
	s.seen[key] = full
	return full, nil
}

func (s *search) newCandidate(t march.Test, trace []string) candidate {
	c := candidate{
		test:  t,
		len:   t.Length(),
		elems: len(t.Elems),
		cost:  tieBreakCost(t, s.opts.bistCells()),
		ascii: t.ASCII(),
		trace: trace,
	}
	if w := s.opts.BISTWeight; w > 0 {
		c.score = float64(c.len) + w*float64(c.cost)
	}
	return c
}

// run executes the restarted annealing loop and returns the best
// full-coverage test found together with its move lineage. Budget
// exhaustion ends the search normally; only context cancellation and
// simulator failures are errors.
func (s *search) run() (march.Test, []string, error) {
	// The seed has already been verified to cover the list (RunContext
	// checked with the package-level FullCoverage); prime the cache so
	// re-proposing it never spends budget.
	best := s.newCandidate(s.seed, nil)
	s.seen[best.ascii] = true

	const tempFloor = 0.05
	for restart := 0; restart < s.opts.restarts(); restart++ {
		s.st.Restarts = restart + 1
		beam := []candidate{best}
		if restart > 0 {
			// Reheat from the incumbent, perturbed: a few random mutations
			// that keep coverage, to push the beam off the local minimum.
			if p, ok, err := s.perturb(best); err != nil {
				if err == errBudget {
					return best.test, best.trace, nil
				}
				return march.Test{}, nil, err
			} else if ok {
				beam = append(beam, p)
			}
		}

		for temp := s.opts.initTemp(); temp > tempFloor; temp *= s.opts.cooling() {
			children, err := s.expand(beam, temp)
			if err != nil {
				if err == errBudget {
					if len(children) > 0 {
						beam = s.shrink(append(beam, children...))
						if beam[0].better(best) {
							best = beam[0]
						}
					}
					return best.test, best.trace, nil
				}
				return march.Test{}, nil, err
			}
			beam = s.shrink(append(beam, children...))
			if beam[0].better(best) {
				best = beam[0]
			}
			if s.opts.OnProgress != nil {
				s.opts.OnProgress(Progress{
					Evaluations: s.st.Evaluations,
					Restart:     restart,
					BestLength:  best.len,
					Temperature: temp,
				})
			}
		}
	}
	return best.test, best.trace, nil
}

// expand spawns MovesPerCandidate children per beam member and returns
// those that cover the list and pass the annealing acceptance rule:
// downhill (not longer) always, uphill with probability exp(-Δlen/T).
func (s *search) expand(beam []candidate, temp float64) ([]candidate, error) {
	var children []candidate
	for bi := range beam {
		parent := beam[bi]
		for m := 0; m < s.opts.movesPerCandidate(); m++ {
			var (
				child march.Test
				desc  string
				ok    bool
			)
			// Occasionally recombine with another beam survivor instead of
			// mutating — splicing element tails between solutions.
			if len(beam) > 1 && s.rng.Intn(8) == 0 {
				other := beam[s.rng.Intn(len(beam))]
				child, desc, ok = splice(s.rng, parent.test, other.test)
			} else {
				child, desc, ok = mutate(s.rng, parent.test)
			}
			if !ok {
				continue
			}
			// Draw the acceptance coin before evaluation so the rng stream
			// consumed per move is independent of cache state.
			coin := s.rng.Float64()
			full, err := s.covers(child)
			if err != nil {
				return children, err
			}
			if !full {
				continue
			}
			delta := float64(child.Length() - parent.len)
			if delta > 0 && coin >= math.Exp(-delta/temp) {
				continue
			}
			s.st.Accepted++
			trace := append(append([]string(nil), parent.trace...), desc)
			children = append(children, s.newCandidate(child, trace))
		}
	}
	return children, nil
}

// shrink dedupes the pool by rendering and keeps the BeamWidth fittest.
// Sorting is stable and the comparison total, so the survivors are a pure
// function of the pool contents.
func (s *search) shrink(pool []candidate) []candidate {
	uniq := pool[:0]
	taken := map[string]bool{}
	for _, c := range pool {
		if taken[c.ascii] {
			continue
		}
		taken[c.ascii] = true
		uniq = append(uniq, c)
	}
	sort.SliceStable(uniq, func(i, j int) bool { return uniq[i].better(uniq[j]) })
	if len(uniq) > s.opts.beamWidth() {
		uniq = uniq[:s.opts.beamWidth()]
	}
	return uniq
}

// perturb applies up to three random mutations to the incumbent, returning
// the first mutated test that still covers the list.
func (s *search) perturb(from candidate) (candidate, bool, error) {
	for attempt := 0; attempt < 3; attempt++ {
		child, desc, ok := mutate(s.rng, from.test)
		if !ok {
			continue
		}
		full, err := s.covers(child)
		if err != nil {
			return candidate{}, false, err
		}
		if full {
			trace := append(append([]string(nil), from.trace...), desc)
			return s.newCandidate(child, trace), true, nil
		}
	}
	return candidate{}, false, nil
}
