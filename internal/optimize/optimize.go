// Package optimize implements a search-based march-test optimizer that
// attacks Table 1 of the paper from the other side: instead of constructing
// a test (package core), it starts from a known full-coverage test and
// searches the neighborhood of element-level edits for a shorter one.
//
// The search is a beam search over full-coverage candidates with a
// simulated-annealing acceptance rule and restarts (DESIGN.md §14). Moves
// are element-level: insert/delete/replace single operations, delete whole
// elements, flip an element's address order, split an element in two, merge
// adjacent elements, and splice element tails between beam survivors.
// Fitness is full coverage of the target fault list — evaluated with the
// compiled schedule's early-abort scan and a fail-first fault ordering — with
// test length and (optionally) BIST cycle cost as tie-breakers.
//
// The central invariant is certify-before-land: every reported winner is
// re-certified through core.CertifyWithOracle (production simulator at full
// coverage AND bit-for-bit agreement with the independent reference oracle)
// before it is returned or registered in the march library. A candidate that
// only the fast search path believes in never lands.
//
// Determinism: a run is a pure function of (fault list, seed test, Options).
// The whole search derives from one seeded *rand.Rand, the loop is
// sequential, and all orderings are total (length, then BIST cycles, then
// ASCII rendering), so two runs with the same seed are byte-identical —
// including the move-trace hash recorded in the winner's provenance.
package optimize

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"marchgen/internal/bist"
	"marchgen/internal/core"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// Options configures an optimization run. The zero value selects sensible
// defaults for every knob; only the fault list (passed to Run) is required.
type Options struct {
	// Name is the name given to the optimized test ("March OPT" if empty).
	Name string
	// Seed seeds the run's single rng; the default is 1. Two runs with equal
	// Options and fault list produce byte-identical results.
	Seed int64
	// Budget bounds the number of candidate coverage evaluations; the
	// default is 2000. The search stops when the budget is exhausted.
	Budget int
	// BeamWidth is the number of candidates kept per iteration (default 4).
	BeamWidth int
	// MovesPerCandidate is how many mutations each beam survivor spawns per
	// iteration (default 6).
	MovesPerCandidate int
	// Restarts is the number of annealing restarts after the temperature
	// cools out (default 3). Each restart reheats and perturbs the incumbent.
	Restarts int
	// InitTemp is the initial annealing temperature in units of march-test
	// length (default 2.0): a candidate one operation longer than its parent
	// is accepted with probability exp(-1/T).
	InitTemp float64
	// Cooling is the per-iteration temperature decay factor (default 0.95).
	Cooling float64
	// LengthSlack bounds how much longer than the seed test a candidate may
	// grow (default 4 operations). Exploration needs room above the incumbent
	// but unbounded growth wastes the evaluation budget.
	LengthSlack int
	// BISTCells, when positive, breaks length ties by the estimated BIST
	// cycle cost on a memory of that many cells (package bist).
	BISTCells int
	// BISTWeight, when positive, promotes BIST cycle cost from tie-breaker
	// to fitness term: candidates are ordered by length + BISTWeight × cycles
	// (on a BISTCells-cell memory; 4 cells when BISTCells is unset) before
	// the structural tie-breaks. Zero keeps the pure-length fitness and the
	// exact historical search trajectory.
	BISTWeight float64
	// SeedTest is the test the search starts from. When nil, Run generates
	// one with core.GenerateContext under Generator. The seed must fully
	// cover the fault list.
	SeedTest *march.Test
	// Generator configures the seed generation when SeedTest is nil.
	Generator core.Options
	// Config is the simulator configuration used for both search-time
	// coverage checks and the final certification; the zero value selects
	// the exhaustive default (4 cells, full ⇕ expansion).
	Config sim.Config
	// OnProgress, when set, is called after every search iteration.
	OnProgress func(Progress)
}

// Progress is a point-in-time snapshot of a running search.
type Progress struct {
	// Evaluations is the number of coverage evaluations spent so far.
	Evaluations int
	// Restart is the current restart index (0-based).
	Restart int
	// BestLength is the length of the best full-coverage candidate so far.
	BestLength int
	// Temperature is the current annealing temperature.
	Temperature float64
}

func (o Options) name() string {
	if o.Name == "" {
		return "March OPT"
	}
	return o.Name
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) budget() int {
	if o.Budget <= 0 {
		return 2000
	}
	return o.Budget
}

func (o Options) beamWidth() int {
	if o.BeamWidth <= 0 {
		return 4
	}
	return o.BeamWidth
}

func (o Options) movesPerCandidate() int {
	if o.MovesPerCandidate <= 0 {
		return 6
	}
	return o.MovesPerCandidate
}

func (o Options) restarts() int {
	if o.Restarts <= 0 {
		return 3
	}
	return o.Restarts
}

func (o Options) initTemp() float64 {
	if o.InitTemp <= 0 {
		return 2.0
	}
	return o.InitTemp
}

func (o Options) cooling() float64 {
	if o.Cooling <= 0 || o.Cooling >= 1 {
		return 0.95
	}
	return o.Cooling
}

func (o Options) lengthSlack() int {
	if o.LengthSlack <= 0 {
		return 4
	}
	return o.LengthSlack
}

func (o Options) config() sim.Config {
	c := o.Config
	if c.Size <= 0 {
		d := sim.DefaultConfig()
		d.Workers = c.Workers
		d.DisableLanes = c.DisableLanes
		c = d
	}
	return c
}

// Stats records what the search did.
type Stats struct {
	// Faults is the size of the target list.
	Faults int
	// SeedLength is the length of the seed test the search started from.
	SeedLength int
	// Evaluations is the number of coverage evaluations spent.
	Evaluations int
	// Accepted counts candidates admitted to the beam (including uphill
	// annealing acceptances).
	Accepted int
	// Restarts is the number of annealing restarts actually performed.
	Restarts int
	// Improved reports whether the winner is strictly shorter than the seed.
	Improved bool
	// Duration is the wall-clock search time.
	Duration time.Duration
}

// Result is an optimization outcome.
type Result struct {
	// Test is the winner: the shortest full-coverage test found (never
	// longer than the seed), certified by core.CertifyWithOracle and stamped
	// with OriginOptimized provenance.
	Test march.Test
	// Seed is the test the search started from.
	Seed march.Test
	// Report is the winner's certification report.
	Report sim.Report
	// Stats describes the run.
	Stats Stats
}

// errBudget aborts the search loop when the evaluation budget runs out.
var errBudget = errors.New("optimize: evaluation budget exhausted")

// Run optimizes a march test against the fault list. See RunContext.
func Run(faults []linked.Fault, opts Options) (Result, error) {
	return RunContext(context.Background(), faults, opts)
}

// RunContext runs the search with cancellation support: the context is
// checked before every candidate evaluation, so a canceled context aborts
// within one coverage check and returns ctx.Err().
func RunContext(ctx context.Context, faults []linked.Fault, opts Options) (Result, error) {
	start := time.Now()
	if len(faults) == 0 {
		return Result{}, fmt.Errorf("optimize: empty fault list")
	}
	cfg := opts.config()

	// Obtain and vet the seed test.
	var seed march.Test
	if opts.SeedTest != nil {
		seed = opts.SeedTest.Clone()
	} else {
		gen, err := core.GenerateContext(ctx, faults, opts.Generator)
		if err != nil {
			return Result{}, fmt.Errorf("optimize: seed generation: %v", err)
		}
		seed = gen.Test
	}
	if err := seed.CheckConsistency(); err != nil {
		return Result{}, fmt.Errorf("optimize: seed test: %v", err)
	}
	full, miss, err := sim.FullCoverage(seed, faults, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("optimize: seed test: %v", err)
	}
	if !full {
		return Result{}, fmt.Errorf("optimize: seed test %q does not cover the fault list (misses %s)",
			seed.Name, miss.ID())
	}

	// Search. The evaluator owns a private copy of the fault list so its
	// fail-first reordering cannot alias the caller's slice.
	st := &Stats{Faults: len(faults), SeedLength: seed.Length()}
	s := newSearch(ctx, seed, faults, cfg, opts, st)
	best, trace, err := s.run()
	if err != nil {
		return Result{}, err
	}

	// Certify-before-land: the winner must pass the independent oracle gate
	// under the exhaustive configuration, whatever the search believed.
	winner := best.Clone()
	winner.Name = opts.name()
	winner.Source = ""
	winner.Reconstructed = false
	report, err := core.CertifyWithOracle(winner, faults, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("optimize: winner failed certification: %v", err)
	}
	winner.Origin = march.OriginOptimized
	winner.Prov = &march.Provenance{
		Seed:       opts.seed(),
		Budget:     opts.budget(),
		SeedTest:   seed.Name,
		SeedLength: seed.Length(),
		MoveTrace:  traceHash(trace),
	}

	st.Improved = winner.Length() < seed.Length()
	st.Duration = time.Since(start)
	return Result{Test: winner, Seed: seed, Report: report, Stats: *st}, nil
}

// traceHash digests the winner's accepted-move lineage: two runs that took
// the same path through the search space hash identically.
func traceHash(trace []string) string {
	h := sha256.Sum256([]byte(strings.Join(trace, "\n")))
	return hex.EncodeToString(h[:8])
}

// Land registers an improved winner in the runtime march library (with its
// provenance), making it visible to march.Lib, the listing tools and
// /v1/library. Winners that merely match their seed's length are not
// landed. Reports whether the test was added (idempotent re-registration
// of the same sequence returns false).
func Land(res Result) bool {
	if !res.Stats.Improved {
		return false
	}
	return march.Register(res.Test)
}

// Rng returns the run's rng for a given seed — exposed so tests can
// reproduce move sequences. All randomness in a run flows from this one
// source; nothing else in the package calls math/rand's global functions.
func Rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// tieBreakCost returns the BIST cycle cost used to break length ties, or 0
// when the tie-breaker is disabled.
func tieBreakCost(t march.Test, cells int) int64 {
	if cells <= 0 {
		return 0
	}
	return bist.Estimate(t, cells, 0).Cycles
}

// bistCells returns the memory size BIST costs are estimated on: BISTCells
// when set, the 4-cell simulator default when only the weighted fitness term
// is active, 0 (cost disabled) otherwise.
func (o Options) bistCells() int {
	if o.BISTCells > 0 {
		return o.BISTCells
	}
	if o.BISTWeight > 0 {
		return 4
	}
	return 0
}
