package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b") // short row padded
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule line %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "alpha") {
		t.Errorf("row line %q", lines[3])
	}
}

func TestImprovement(t *testing.T) {
	// The paper's Table 1 numbers fall out of the lengths.
	cases := []struct {
		baseline, generated int
		want                float64
	}{
		{43, 37, 13.9},
		{41, 37, 9.7},
		{43, 35, 18.6},
		{41, 35, 14.6},
		{11, 9, 18.1},
	}
	for _, c := range cases {
		got := Improvement(c.baseline, c.generated)
		if diff := got - c.want; diff > 0.1 || diff < -0.1 {
			t.Errorf("Improvement(%d, %d) = %.1f, want %.1f", c.baseline, c.generated, got, c.want)
		}
	}
	if !math.IsNaN(Improvement(0, 5)) {
		t.Error("zero baseline must give NaN")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(13.93); got != "13.9%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(math.NaN()); got != "-" {
		t.Errorf("Percent(NaN) = %q", got)
	}
}

func TestTable1(t *testing.T) {
	rows := []Table1Row{
		{
			Algorithm: "ABL-repro", FaultList: "#1", CPUSeconds: 2.5, Length: 25,
			Imp43: Improvement(43, 25), ImpSL: Improvement(41, 25), ImpLF1: math.NaN(),
			Coverage: "594/594",
		},
	}
	tbl := Table1(rows)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ABL-repro", "25n", "2.50", "594/594", "41.9%", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}
