// Package report renders the experiment tables of the evaluation harness,
// including the reproduction of the paper's Table 1.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Improvement returns the percentage reduction of a new test length over a
// baseline ("Improve (%)" columns of Table 1). NaN if the baseline is zero.
func Improvement(baseline, generated int) float64 {
	if baseline == 0 {
		return math.NaN()
	}
	return 100 * float64(baseline-generated) / float64(baseline)
}

// Percent renders an improvement percentage in the paper's style ("13.9%"),
// or "-" for NaN (the paper uses "-" for inapplicable comparisons).
func Percent(p float64) string {
	if math.IsNaN(p) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", p)
}

// Table1Row is one row of the Table 1 reproduction.
type Table1Row struct {
	Algorithm  string
	MarchTest  string
	FaultList  string
	CPUSeconds float64
	Length     int
	Imp43      float64 // vs the 43n test of [11]; NaN if inapplicable
	ImpSL      float64 // vs the 41n March SL of [10]
	ImpLF1     float64 // vs the 11n March LF1 of [16]
	Coverage   string
}

// Table1 builds the paper-style experimental results table.
func Table1(rows []Table1Row) *Table {
	t := &Table{
		Title: "Table 1: generated march tests (reproduction)",
		Header: []string{
			"Algorithm", "Fault List", "CPU Time (s)", "O(n)",
			"vs 43n", "vs 41n March SL", "vs 11n March LF1", "Coverage",
		},
	}
	for _, r := range rows {
		t.AddRow(
			r.Algorithm,
			r.FaultList,
			fmt.Sprintf("%.2f", r.CPUSeconds),
			fmt.Sprintf("%dn", r.Length),
			Percent(r.Imp43),
			Percent(r.ImpSL),
			Percent(r.ImpLF1),
			r.Coverage,
		)
	}
	return t
}
