package service

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// admitClock is a hand-advanced clock for deterministic CoDel tests.
type admitClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *admitClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *admitClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestAdmission builds a controller on a fake clock with zero jitter:
// every Retry-After is the deterministic base estimate.
func newTestAdmission(workers, queue, campaigns int, target, interval time.Duration) (*admission, *admitClock) {
	clk := &admitClock{t: time.Unix(1_000_000, 0)}
	a := newAdmission(workers, queue, campaigns, target, interval)
	a.now = clk.now
	a.jitter = func() float64 { return 0 }
	return a, clk
}

func TestAdmissionClassBudgets(t *testing.T) {
	a, _ := newTestAdmission(2, 8, 3, 0, 0)
	want := map[admitClass]classLimits{
		classGenerate: {Concurrency: 2, Queue: 8},
		classVerify:   {Concurrency: 2, Queue: 4},
		classOptimize: {Concurrency: 1, Queue: 2},
		classSimulate: {Concurrency: 4, Queue: 0},
		classCampaign: {Concurrency: 3, Queue: 3},
	}
	for c, lim := range want {
		if got := a.classes[c].limits; got != lim {
			t.Errorf("%s limits = %+v, want %+v", c, got, lim)
		}
	}

	// The generate budget is concurrency+queue admissions; one more sheds.
	for i := 0; i < 10; i++ {
		if shed := a.admit(classGenerate); shed != nil {
			t.Fatalf("admit %d refused: %v", i, shed)
		}
	}
	shed := a.admit(classGenerate)
	if shed == nil {
		t.Fatal("11th generate admitted past the class budget")
	}
	if !strings.Contains(shed.Error(), "budget full") {
		t.Fatalf("shed reason = %v", shed)
	}
	// Retiring one unit (the canceled-while-queued path) frees a slot.
	a.finished(classGenerate, false, false)
	if shed := a.admit(classGenerate); shed != nil {
		t.Fatalf("admit after finished refused: %v", shed)
	}
}

func TestAdmissionSyncAcquireRelease(t *testing.T) {
	a, _ := newTestAdmission(1, 4, 1, 0, 0)
	// Simulate's budget is 2x workers, no queue.
	if shed := a.acquire(classSimulate); shed != nil {
		t.Fatalf("first acquire: %v", shed)
	}
	if shed := a.acquire(classSimulate); shed != nil {
		t.Fatalf("second acquire: %v", shed)
	}
	if shed := a.acquire(classSimulate); shed == nil {
		t.Fatal("third acquire exceeded the concurrency limit")
	}
	a.release(classSimulate)
	if shed := a.acquire(classSimulate); shed != nil {
		t.Fatalf("acquire after release: %v", shed)
	}
}

// driveDropping pushes the controller into CoDel dropping state: waits
// above target observed across more than one interval.
func driveDropping(a *admission, clk *admitClock, highWaits int) {
	for i := 0; i < highWaits; i++ {
		a.classes[classGenerate].queued++ // started() moves queued -> running
		a.started(classGenerate, a.target+time.Millisecond)
		a.finished(classGenerate, true, false)
		clk.advance(a.interval/2 + time.Millisecond)
	}
}

func TestCoDelDetectorTransitions(t *testing.T) {
	a, clk := newTestAdmission(2, 8, 2, 100*time.Millisecond, time.Second)

	// A single high wait only arms the detector.
	driveDropping(a, clk, 1)
	if a.dropping {
		t.Fatal("dropping after one high sample")
	}
	if level, _ := a.pressure(); level != pressureOK {
		t.Fatalf("pressure = %s, want ok", level)
	}

	// High waits persisting past a full interval flip it to dropping.
	driveDropping(a, clk, 3)
	if !a.dropping {
		t.Fatal("not dropping after sustained high waits")
	}
	level, reasons := a.pressure()
	if level != pressureDegraded {
		t.Fatalf("pressure = %s, want degraded (reasons %v)", level, reasons)
	}
	if len(reasons) == 0 || !strings.Contains(reasons[0], "codel dropping") {
		t.Fatalf("reasons = %v", reasons)
	}

	// Sustained congestion past the control-law threshold is overload.
	driveDropping(a, clk, sustainedDrops)
	if level, _ := a.pressure(); level != pressureOverloaded {
		t.Fatalf("pressure = %s, want overloaded", level)
	}

	// One wait back under target resets the whole detector.
	a.classes[classGenerate].queued++
	a.started(classGenerate, a.target-time.Millisecond)
	a.finished(classGenerate, true, false)
	if a.dropping || a.dropCount != 0 {
		t.Fatalf("detector not reset: dropping=%v n=%d", a.dropping, a.dropCount)
	}
	if level, _ := a.pressure(); level != pressureOK {
		t.Fatalf("pressure after recovery = %s, want ok", level)
	}
}

func TestAllowedWaitShrinksByControlLaw(t *testing.T) {
	a, clk := newTestAdmission(2, 8, 2, 100*time.Millisecond, time.Second)
	if got := a.allowedWaitLocked(); got != a.interval {
		t.Fatalf("healthy allowed wait = %s, want the full interval", got)
	}
	driveDropping(a, clk, 4) // dropping with n=2
	n := a.dropCount
	want := time.Duration(float64(a.interval) / math.Sqrt(float64(1+n)))
	if got := a.allowedWaitLocked(); got != want {
		t.Fatalf("allowed wait at n=%d: %s, want %s", n, got, want)
	}
	// The allowance never tightens below the target.
	driveDropping(a, clk, 200)
	if got := a.allowedWaitLocked(); got != a.target {
		t.Fatalf("allowed wait after heavy congestion = %s, want the %s target", got, a.target)
	}
}

func TestDroppingShedsOnEstimatedWait(t *testing.T) {
	a, clk := newTestAdmission(4, 16, 2, 100*time.Millisecond, time.Second)
	driveDropping(a, clk, 4)
	// generate sheds outright at degraded; verify holds until overloaded,
	// so it exercises the estimated-wait deadline instead. With no drain
	// history the estimate is pessimistic (one interval per queued job):
	// an empty queue estimates 0 and is admitted, but the single queued
	// job it leaves behind already exceeds any tightened allowance.
	if shed := a.admit(classVerify); shed != nil {
		t.Fatalf("first verify with an empty queue refused: %v", shed)
	}
	shed := a.admit(classVerify)
	if shed == nil {
		t.Fatal("verify admitted although the estimated wait exceeds the admission deadline")
	}
	if !strings.Contains(shed.reason, "estimated queue wait") {
		t.Fatalf("shed reason = %q", shed.reason)
	}
}

func TestShedOrderFollowsTheDegradeLadder(t *testing.T) {
	a, clk := newTestAdmission(2, 8, 2, 100*time.Millisecond, time.Second)
	driveDropping(a, clk, 3) // degraded, not yet overloaded

	for _, c := range []admitClass{classGenerate, classOptimize} {
		if shed := a.admit(c); shed == nil {
			t.Fatalf("%s admitted while degraded; it sheds first", c)
		}
	}
	if shed := a.admitPressure(classCampaign); shed == nil {
		t.Fatal("campaign admitted while degraded")
	}
	if shed := a.acquire(classSimulate); shed != nil {
		t.Fatalf("simulate refused while merely degraded: %v", shed)
	}
	a.release(classSimulate)

	driveDropping(a, clk, sustainedDrops) // now overloaded
	if shed := a.acquire(classSimulate); shed == nil {
		t.Fatal("simulate admitted under overload")
	}
}

func TestRetryAfterDrainRateAndClamps(t *testing.T) {
	a, clk := newTestAdmission(1, 2, 1, 100*time.Millisecond, time.Second)

	// No drain history: the floor clamp answers 1s.
	a.classes[classGenerate].queued = a.classes[classGenerate].limits.Queue + a.classes[classGenerate].limits.Concurrency
	shed := a.admit(classGenerate)
	if shed == nil {
		t.Fatal("full budget admitted")
	}
	if shed.retryAfter != time.Second {
		t.Fatalf("Retry-After with no history = %s, want the 1s floor", shed.retryAfter)
	}

	// One completion per second: the estimate is (queued+1)/rate, rounded
	// up to whole seconds (zero jitter in tests).
	for i := 0; i < drainRing; i++ {
		clk.advance(time.Second)
		a.finished(classGenerate, true, true)
	}
	a.classes[classGenerate].queued = 3
	a.classes[classGenerate].running = 0
	shed = a.admit(classGenerate)
	if shed == nil {
		// queued 3 of budget 3: full.
		t.Fatal("full budget admitted")
	}
	if shed.retryAfter != 4*time.Second {
		t.Fatalf("Retry-After at 1 job/s with 3 queued = %s, want 4s", shed.retryAfter)
	}

	// Jitter only ever stretches the answer, and the 60s ceiling holds.
	a.jitter = func() float64 { return 0.999 }
	shed = a.admit(classGenerate)
	if shed.retryAfter < 4*time.Second {
		t.Fatalf("jittered Retry-After = %s shrank below the base", shed.retryAfter)
	}
	a.classes[classVerify].queued = 500 // huge backlog at 1 job/s
	shed = a.admit(classGenerate)
	if shed.retryAfter != 60*time.Second {
		t.Fatalf("Retry-After for a 500-deep backlog = %s, want the 60s ceiling", shed.retryAfter)
	}
}

func TestPressureFromQueueOccupancy(t *testing.T) {
	a, _ := newTestAdmission(2, 8, 2, 0, 0)
	// Queue capacity across classes: 8 + 4 + 2 + 0 + 2 + 4 = 20
	// (generate, verify, optimize, simulate, campaign, diagnose).
	a.classes[classGenerate].queued = 8
	a.classes[classVerify].queued = 2
	a.classes[classDiagnose].queued = 3
	level, reasons := a.pressure() // 13/20 = 65%
	if level != pressureDegraded {
		t.Fatalf("pressure at 65%% occupancy = %s, want degraded (%v)", level, reasons)
	}
	a.classes[classVerify].queued = 4
	a.classes[classOptimize].queued = 2
	a.classes[classCampaign].queued = 2
	a.classes[classDiagnose].queued = 4 // 20/20
	if level, _ := a.pressure(); level != pressureOverloaded {
		t.Fatalf("pressure at full occupancy = %s, want overloaded", level)
	}
}

// TestAdmissionConcurrentInterleavings hammers every transition from many
// goroutines; under -race (scripts/race.sh covers internal/service) this
// is the controller's data-race gate. The end-state invariant: after every
// admitted unit is retired, all occupancy counters are back to zero.
func TestAdmissionConcurrentInterleavings(t *testing.T) {
	a, clk := newTestAdmission(4, 16, 2, 50*time.Millisecond, 500*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0, 1: // async lifecycle, alternating cancel-while-queued
					if a.admit(classGenerate) != nil {
						continue
					}
					if i%8 < 4 {
						a.started(classGenerate, time.Duration(i%3)*40*time.Millisecond)
						a.finished(classGenerate, true, i%2 == 0)
					} else {
						a.finished(classGenerate, false, false)
					}
				case 2: // sync lifecycle
					if a.acquire(classSimulate) != nil {
						continue
					}
					a.release(classSimulate)
				case 3: // observers and the clock
					a.pressure()
					a.snapshot()
					a.shedsTotal()
					if g == 0 {
						clk.advance(time.Millisecond)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, c := range admitClasses {
		cs := a.snapshot()[string(c)]
		if cs.Running != 0 || cs.Queued != 0 {
			t.Fatalf("%s occupancy leaked: %+v", c, cs)
		}
	}
}
