package service

import (
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"marchgen/internal/fabric"
)

// latencyBuckets are the upper bounds (seconds) of the generation-latency
// histogram. The spread covers the observed range: list2 generates in well
// under a millisecond, list1 in about a second, pathological option sets in
// tens of seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 60}

// metrics is the service's expvar-style instrumentation: monotonic counters
// plus one latency histogram, all behind a single mutex (the handlers touch
// it a handful of times per request; contention is negligible next to a
// simulation). Snapshot renders the whole registry for /metrics.
type metrics struct {
	mu sync.Mutex

	requests map[string]int64 // per route, e.g. "POST /v1/generate"
	statuses map[int]int64    // per response status code

	cacheHits   int64
	cacheMisses int64

	jobsSubmitted int64
	jobsDone      int64
	jobsFailed    int64
	jobsCanceled  int64

	campaignsSubmitted   int64
	campaignsDone        int64
	campaignsFailed      int64
	campaignsInterrupted int64

	optimizeRuns        int64 // completed optimizer jobs
	optimizeImproved    int64 // runs whose winner beat the seed's length
	optimizeEvaluations int64 // coverage evaluations, updated live via OnProgress

	diagnoseRuns      int64 // completed diagnosis jobs
	diagnoseLocalized int64 // runs that ended on a singleton candidate set

	panicsTotal  int64 // contained panics: job fns, HTTP handlers
	encodeErrors int64 // response bodies lost after the status line

	sheds map[string]int64 // admission sheds (429s) per class

	genCount   int64
	genSum     float64 // seconds
	genBuckets []int64 // cumulative-style counts per latencyBuckets entry, +Inf last
}

func newMetrics() *metrics {
	return &metrics{
		requests:   make(map[string]int64),
		statuses:   make(map[int]int64),
		sheds:      make(map[string]int64),
		genBuckets: make([]int64, len(latencyBuckets)+1),
	}
}

func (m *metrics) request(route string, status int) {
	m.mu.Lock()
	m.requests[route]++
	m.statuses[status]++
	m.mu.Unlock()
}

func (m *metrics) cache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
	m.mu.Unlock()
}

func (m *metrics) jobSubmitted() {
	m.mu.Lock()
	m.jobsSubmitted++
	m.mu.Unlock()
}

func (m *metrics) jobTerminal(status JobStatus) {
	m.mu.Lock()
	switch status {
	case JobDone:
		m.jobsDone++
	case JobFailed:
		m.jobsFailed++
	case JobCanceled:
		m.jobsCanceled++
	}
	m.mu.Unlock()
}

func (m *metrics) campaignSubmitted() {
	m.mu.Lock()
	m.campaignsSubmitted++
	m.mu.Unlock()
}

func (m *metrics) campaignTerminal(status string) {
	m.mu.Lock()
	switch status {
	case CampaignDone:
		m.campaignsDone++
	case CampaignFailed:
		m.campaignsFailed++
	case CampaignInterrupted:
		m.campaignsInterrupted++
	}
	m.mu.Unlock()
}

// optimizeProgress adds newly spent coverage evaluations as a running
// search reports them, so /metrics shows live optimizer progress.
func (m *metrics) optimizeProgress(delta int64) {
	m.mu.Lock()
	m.optimizeEvaluations += delta
	m.mu.Unlock()
}

// optimizeDone counts one completed optimizer run.
func (m *metrics) optimizeDone(improved bool) {
	m.mu.Lock()
	m.optimizeRuns++
	if improved {
		m.optimizeImproved++
	}
	m.mu.Unlock()
}

// diagnoseDone counts one completed diagnosis run.
func (m *metrics) diagnoseDone(localized bool) {
	m.mu.Lock()
	m.diagnoseRuns++
	if localized {
		m.diagnoseLocalized++
	}
	m.mu.Unlock()
}

// panicked counts one contained panic (job fn or HTTP handler). A
// non-zero panics_total is an alarm: the process survived, but something
// reached a state the code never should.
func (m *metrics) panicked() {
	m.mu.Lock()
	m.panicsTotal++
	m.mu.Unlock()
}

// encodeError counts one response body lost to a JSON encode failure
// after the status line was already written.
func (m *metrics) encodeError() {
	m.mu.Lock()
	m.encodeErrors++
	m.mu.Unlock()
}

// shed counts one admission refusal (HTTP 429) for the class.
func (m *metrics) shed(class string) {
	m.mu.Lock()
	m.sheds[class]++
	m.mu.Unlock()
}

// observeGenerate records one completed generation's wall-clock latency.
func (m *metrics) observeGenerate(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	m.genCount++
	m.genSum += s
	i := sort.SearchFloat64s(latencyBuckets, s)
	m.genBuckets[i]++
	m.mu.Unlock()
}

// HistogramSnapshot is the wire form of the latency histogram: per-bucket
// counts with their upper bounds in seconds (the last bucket is unbounded).
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	SumSecs float64   `json:"sum_seconds"`
	Bounds  []float64 `json:"bucket_upper_bounds_seconds"`
	Counts  []int64   `json:"bucket_counts"`
}

// MetricsSnapshot is the /metrics document.
type MetricsSnapshot struct {
	Requests      map[string]int64 `json:"requests"`
	Statuses      map[string]int64 `json:"responses_by_status"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	CacheEntries  int              `json:"cache_entries"`
	JobsSubmitted int64            `json:"jobs_submitted"`
	JobsDone      int64            `json:"jobs_done"`
	JobsFailed    int64            `json:"jobs_failed"`
	JobsCanceled  int64            `json:"jobs_canceled"`
	QueueDepth    int              `json:"job_queue_depth"`

	CampaignsSubmitted   int64 `json:"campaigns_submitted"`
	CampaignsDone        int64 `json:"campaigns_done"`
	CampaignsFailed      int64 `json:"campaigns_failed"`
	CampaignsInterrupted int64 `json:"campaigns_interrupted"`

	OptimizeRuns        int64 `json:"optimize_runs"`
	OptimizeImproved    int64 `json:"optimize_improved"`
	OptimizeEvaluations int64 `json:"optimize_evaluations"`

	DiagnoseRuns      int64 `json:"diagnose_runs"`
	DiagnoseLocalized int64 `json:"diagnose_localized"`

	PanicsTotal  int64 `json:"panics_total"`
	EncodeErrors int64 `json:"response_encode_errors"`

	// Pressure is the degrade-ladder level (ok | degraded | overloaded) at
	// snapshot time; ShedsByClass counts admission 429s per request class;
	// Admission is the controller's live per-class occupancy.
	Pressure     string                   `json:"pressure"`
	ShedsByClass map[string]int64         `json:"sheds_by_class"`
	Admission    map[string]classSnapshot `json:"admission"`

	// Runtime samples the Go runtime: marchload derives its
	// allocs-per-cached-hit figure from the mallocs delta across a run of
	// back-to-back cache hits.
	Runtime RuntimeSnapshot `json:"runtime"`

	Generate HistogramSnapshot `json:"generate_latency"`

	// Fabric carries the distributed-campaign counters (fabric_leases_total,
	// fabric_steals_total, fabric_reassigns_total, ...) when this instance
	// runs in coordinator mode; absent otherwise.
	Fabric *fabric.Counters `json:"fabric,omitempty"`
}

// RuntimeSnapshot is a point-in-time sample of the Go runtime's memory
// statistics, exposed so load harnesses can compute allocation deltas
// (allocs-per-request) without in-process access.
type RuntimeSnapshot struct {
	Mallocs         uint64 `json:"mallocs"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	Goroutines      int    `json:"goroutines"`
}

func sampleRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		Mallocs:         ms.Mallocs,
		TotalAllocBytes: ms.TotalAlloc,
		HeapAllocBytes:  ms.HeapAlloc,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
	}
}

// snapshot copies the registry; queueDepth and cacheEntries are sampled by
// the caller (they are gauges owned by other components).
func (m *metrics) snapshot(queueDepth, cacheEntries int) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		Requests:      make(map[string]int64, len(m.requests)),
		Statuses:      make(map[string]int64, len(m.statuses)),
		CacheHits:     m.cacheHits,
		CacheMisses:   m.cacheMisses,
		CacheEntries:  cacheEntries,
		JobsSubmitted: m.jobsSubmitted,
		JobsDone:      m.jobsDone,
		JobsFailed:    m.jobsFailed,
		JobsCanceled:  m.jobsCanceled,
		QueueDepth:    queueDepth,

		CampaignsSubmitted:   m.campaignsSubmitted,
		CampaignsDone:        m.campaignsDone,
		CampaignsFailed:      m.campaignsFailed,
		CampaignsInterrupted: m.campaignsInterrupted,

		OptimizeRuns:        m.optimizeRuns,
		OptimizeImproved:    m.optimizeImproved,
		OptimizeEvaluations: m.optimizeEvaluations,

		DiagnoseRuns:      m.diagnoseRuns,
		DiagnoseLocalized: m.diagnoseLocalized,

		PanicsTotal:  m.panicsTotal,
		EncodeErrors: m.encodeErrors,

		ShedsByClass: make(map[string]int64, len(m.sheds)),
		Runtime:      sampleRuntime(),

		Generate: HistogramSnapshot{
			Count:   m.genCount,
			SumSecs: m.genSum,
			Bounds:  latencyBuckets,
			Counts:  append([]int64(nil), m.genBuckets...),
		},
	}
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	for k, v := range m.statuses {
		s.Statuses[strconv.Itoa(k)] = v
	}
	for k, v := range m.sheds {
		s.ShedsByClass[k] = v
	}
	return s
}
