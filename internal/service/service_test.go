package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// do runs one request through the full handler stack.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
	return v
}

type jobEnvelope struct {
	Job  Job    `json:"job"`
	Poll string `json:"poll"`
}

// pollJob polls until the job is terminal and returns its snapshot.
func pollJob(t *testing.T, s *Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		w := do(t, s, "GET", "/v1/jobs/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, w.Code, w.Body.String())
		}
		j := decode[Job](t, w)
		if j.Status.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Job{}
}

func TestGenerateCacheRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	// First request: a miss that enqueues a job.
	w := do(t, s, "POST", "/v1/generate", `{"list":"list2"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("first POST: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first POST: X-Cache = %q, want miss", got)
	}
	env := decode[jobEnvelope](t, w)
	if env.Job.ID == "" || env.Poll != "/v1/jobs/"+env.Job.ID {
		t.Fatalf("job envelope = %+v", env)
	}
	if loc := w.Header().Get("Location"); loc != env.Poll {
		t.Fatalf("Location = %q, want %q", loc, env.Poll)
	}

	j := pollJob(t, s, env.Job.ID)
	if j.Status != JobDone {
		t.Fatalf("job = %+v, want done", j)
	}

	// The raw result document.
	res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result: status %d: %s", res.Code, res.Body.String())
	}
	var doc struct {
		Test struct {
			Spec   string `json:"spec"`
			Length int    `json:"length"`
		} `json:"test"`
		Report struct {
			Coverage float64 `json:"coverage_percent"`
			Total    int     `json:"total"`
		} `json:"report"`
		Key string `json:"cache_key"`
	}
	if err := json.Unmarshal(res.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Report.Coverage != 100 || doc.Report.Total != 18 || doc.Test.Length == 0 || doc.Key == "" {
		t.Fatalf("result document = %+v", doc)
	}

	// Second request: a cache hit with byte-identical output.
	w2 := do(t, s, "POST", "/v1/generate", `{"list":"list2"}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("second POST: status %d: %s", w2.Code, w2.Body.String())
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second POST: X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w2.Body.Bytes(), res.Body.Bytes()) {
		t.Fatalf("cache hit bytes differ from the job's result document")
	}

	// A canonically equivalent request (defaults spelled out) also hits.
	w3 := do(t, s, "POST", "/v1/generate", `{"list":"list2","options":{"name":"March GEN","max_so_len":11}}`)
	if w3.Code != http.StatusOK || w3.Header().Get("X-Cache") != "hit" {
		t.Fatalf("canonical twin: status %d X-Cache %q", w3.Code, w3.Header().Get("X-Cache"))
	}

	// The metrics counters saw exactly one miss and two hits.
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.CacheMisses != 1 || m.CacheHits != 2 {
		t.Fatalf("cache counters = %d hits / %d misses, want 2/1", m.CacheHits, m.CacheMisses)
	}
	if m.JobsSubmitted != 1 || m.JobsDone != 1 {
		t.Fatalf("job counters = %+v", m)
	}
	if m.Generate.Count != 1 || m.Generate.SumSecs <= 0 {
		t.Fatalf("latency histogram = %+v", m.Generate)
	}
	if m.Requests["POST /v1/generate"] != 3 {
		t.Fatalf("request counter = %+v", m.Requests)
	}
}

func TestGenerateInlineFaultsShareCacheEntry(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	// An LF1 from list2, spelled inline.
	inline := `{"faults":[{"kind":"LF1","fps":["<0w1/0/->","<0w0/1/->"]}]}`
	w := do(t, s, "POST", "/v1/generate", inline)
	if w.Code != http.StatusAccepted {
		t.Fatalf("inline POST: %d: %s", w.Code, w.Body.String())
	}
	env := decode[jobEnvelope](t, w)
	if j := pollJob(t, s, env.Job.ID); j.Status != JobDone {
		t.Fatalf("job = %+v", j)
	}
	// The same faults inline again: hit, no second job.
	w2 := do(t, s, "POST", "/v1/generate", inline)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: %d %q", w2.Code, w2.Header().Get("X-Cache"))
	}
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.JobsSubmitted != 1 {
		t.Fatalf("jobs submitted = %d, want 1", m.JobsSubmitted)
	}
}

func TestGenerateDeduplicatesInflight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	// Two concurrent identical misses must share one job.
	w1 := do(t, s, "POST", "/v1/generate", `{"list":"list1"}`)
	w2 := do(t, s, "POST", "/v1/generate", `{"list":"list1"}`)
	if w1.Code != http.StatusAccepted || w2.Code != http.StatusAccepted {
		t.Fatalf("status %d / %d", w1.Code, w2.Code)
	}
	id1 := decode[jobEnvelope](t, w1).Job.ID
	id2 := decode[jobEnvelope](t, w2).Job.ID
	if id1 != id2 {
		t.Fatalf("identical in-flight requests got distinct jobs %s / %s", id1, id2)
	}
	if j := pollJob(t, s, id1); j.Status != JobDone {
		t.Fatalf("job = %+v", j)
	}
}

func TestGenerateBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"empty spec", `{}`},
		{"unknown list", `{"list":"list99"}`},
		{"both list and faults", `{"list":"list2","faults":[{"kind":"Simple","fps":["<0w1/0/->"]}]}`},
		{"bad fault kind", `{"faults":[{"kind":"LF9","fps":["<0w1/0/->","<1w0/1/->"]}]}`},
		{"invalid linking", `{"faults":[{"kind":"LF1","fps":["<0w1/0/->","<0w1/0/->"]}]}`},
		{"bad fp notation", `{"faults":[{"kind":"Simple","fps":["garbage"]}]}`},
		{"bad orders", `{"list":"list2","options":{"orders":"sideways"}}`},
		{"unknown field", `{"list":"list2","bogus":1}`},
		{"not json", `{"list":`},
	}
	for _, tc := range cases {
		if w := do(t, s, "POST", "/v1/generate", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
		}
	}
}

func TestUnknownJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for _, req := range [][2]string{
		{"GET", "/v1/jobs/j-nope"},
		{"GET", "/v1/jobs/j-nope/result"},
		{"DELETE", "/v1/jobs/j-nope"},
	} {
		if w := do(t, s, req[0], req[1], ""); w.Code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", req[0], req[1], w.Code)
		}
	}
}

func TestJobCancellation(t *testing.T) {
	// One worker: the list1 job occupies it, the next job stays queued.
	s := newTestServer(t, Config{Workers: 1})

	running := do(t, s, "POST", "/v1/generate", `{"list":"list1"}`)
	queued := do(t, s, "POST", "/v1/generate", `{"list":"list1","options":{"name":"queued-twin"}}`)
	if running.Code != http.StatusAccepted || queued.Code != http.StatusAccepted {
		t.Fatalf("status %d / %d", running.Code, queued.Code)
	}
	runID := decode[jobEnvelope](t, running).Job.ID
	queueID := decode[jobEnvelope](t, queued).Job.ID

	// Canceling the queued job terminates it without it ever running.
	w := do(t, s, "DELETE", "/v1/jobs/"+queueID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("cancel queued: %d: %s", w.Code, w.Body.String())
	}
	if j := pollJob(t, s, queueID); j.Status != JobCanceled {
		t.Fatalf("queued job = %+v, want canceled", j)
	}

	// Canceling the running job aborts the generation via its context.
	if w := do(t, s, "DELETE", "/v1/jobs/"+runID, ""); w.Code != http.StatusOK {
		t.Fatalf("cancel running: %d", w.Code)
	}
	j := pollJob(t, s, runID)
	if j.Status != JobCanceled && j.Status != JobDone {
		// Done is possible if generation beat the cancel; canceled is the
		// expected outcome.
		t.Fatalf("running job = %+v", j)
	}

	// A canceled job's result endpoint reports the loss.
	if j.Status == JobCanceled {
		if w := do(t, s, "GET", "/v1/jobs/"+runID+"/result", ""); w.Code != http.StatusGone {
			t.Fatalf("canceled result: status %d, want 410", w.Code)
		}
	}
}

func TestJobDeadline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := do(t, s, "POST", "/v1/generate", `{"list":"list1","timeout_ms":1}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: %d", w.Code)
	}
	j := pollJob(t, s, decode[jobEnvelope](t, w).Job.ID)
	if j.Status != JobFailed || !strings.Contains(j.Error, "deadline") {
		t.Fatalf("job = %+v, want failed with deadline error", j)
	}
}

func TestQueueBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Occupy the lone worker, then wait until it has dequeued the job so
	// the single queue slot is observably free.
	wA := do(t, s, "POST", "/v1/generate", `{"list":"list1","options":{"name":"fill-0"}}`)
	if wA.Code != http.StatusAccepted {
		t.Fatalf("first POST: status %d: %s", wA.Code, wA.Body.String())
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.jobs.Depth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Fill the queue slot; the next distinct request must get shed by the
	// admission controller: 429 with a Retry-After.
	wB := do(t, s, "POST", "/v1/generate", `{"list":"list1","options":{"name":"fill-1"}}`)
	if wB.Code != http.StatusAccepted {
		t.Fatalf("second POST: status %d: %s", wB.Code, wB.Body.String())
	}
	wC := do(t, s, "POST", "/v1/generate", `{"list":"list1","options":{"name":"fill-2"}}`)
	if wC.Code != http.StatusTooManyRequests {
		t.Fatalf("third POST: status %d, want 429", wC.Code)
	}
	if ra := wC.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive whole-second count", ra)
	}
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.ShedsByClass["generate"] == 0 {
		t.Fatalf("sheds_by_class[generate] = %d, want nonzero", m.ShedsByClass["generate"])
	}

	// Cancel both jobs so the deferred Shutdown drains quickly.
	for _, w := range []*httptest.ResponseRecorder{wA, wB} {
		do(t, s, "DELETE", "/v1/jobs/"+decode[jobEnvelope](t, w).Job.ID, "")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	// March SL covers every static linked fault of list 1.
	w := do(t, s, "POST", "/v1/simulate", `{"march":{"name":"March SL"},"list":"list2"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("simulate: %d: %s", w.Code, w.Body.String())
	}
	out := decode[struct {
		Report struct {
			Coverage float64 `json:"coverage_percent"`
		} `json:"report"`
		Summary string `json:"summary"`
	}](t, w)
	if out.Report.Coverage != 100 || !strings.Contains(out.Summary, "100.0%") {
		t.Fatalf("simulate out = %+v", out)
	}

	// MATS+ misses linked faults — the motivating claim of the paper.
	w = do(t, s, "POST", "/v1/simulate", `{"march":{"name":"MATS+"},"list":"list2"}`)
	out2 := decode[struct {
		Report struct {
			Coverage float64 `json:"coverage_percent"`
			Missed   []any   `json:"missed"`
		} `json:"report"`
	}](t, w)
	if out2.Report.Coverage >= 100 || len(out2.Report.Missed) == 0 {
		t.Fatalf("MATS+ coverage = %+v, want misses", out2)
	}

	// Inline spec.
	w = do(t, s, "POST", "/v1/simulate", `{"march":{"spec":"c(w0) ^(r0,w1) v(r1,w0)"},"list":"simple1"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("inline spec: %d: %s", w.Code, w.Body.String())
	}

	// Bad specs are client errors.
	for _, body := range []string{
		`{"march":{"name":"March NOPE"},"list":"list2"}`,
		`{"march":{"spec":"^(r0,w1"},"list":"list2"}`,
		`{"march":{"spec":"^(r0,w1)"},"list":"list2"}`, // inconsistent: read 0 never established
		`{"list":"list2"}`, // no march at all
	} {
		if w := do(t, s, "POST", "/v1/simulate", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, w.Code)
		}
	}
}

func TestDetectsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	// March SL detects the canonical LF1; MATS+ does not and must name a
	// witness scenario.
	const fault = `{"kind":"LF1","fps":["<0w1/0/->","<0r0/1/0>"]}`
	w := do(t, s, "POST", "/v1/detects", `{"march":{"name":"March SL"},"fault":`+fault+`}`)
	if w.Code != http.StatusOK {
		t.Fatalf("detects: %d: %s", w.Code, w.Body.String())
	}
	out := decode[struct {
		Detected bool   `json:"detected"`
		Witness  string `json:"witness"`
	}](t, w)
	if !out.Detected || out.Witness != "" {
		t.Fatalf("March SL: %+v", out)
	}

	w = do(t, s, "POST", "/v1/detects", `{"march":{"name":"MATS+"},"fault":`+fault+`}`)
	out = decode[struct {
		Detected bool   `json:"detected"`
		Witness  string `json:"witness"`
	}](t, w)
	if out.Detected || out.Witness == "" {
		t.Fatalf("MATS+: %+v", out)
	}

	if w := do(t, s, "POST", "/v1/detects", `{"march":{"name":"MATS+"}}`); w.Code != http.StatusBadRequest {
		t.Fatalf("missing fault: %d, want 400", w.Code)
	}
}

func TestLibraryAndFaultLists(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	lib := decode[struct {
		Tests []struct {
			Name string `json:"name"`
			Spec string `json:"spec"`
		} `json:"tests"`
	}](t, do(t, s, "GET", "/v1/library", ""))
	if len(lib.Tests) < 10 {
		t.Fatalf("library has %d tests", len(lib.Tests))
	}
	found := false
	for _, tt := range lib.Tests {
		if tt.Name == "March SL" && tt.Spec != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("March SL missing from /v1/library")
	}

	fl := decode[struct {
		Lists []struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"lists"`
	}](t, do(t, s, "GET", "/v1/faultlists", ""))
	byName := map[string]int{}
	for _, l := range fl.Lists {
		byName[l.Name] = l.Count
	}
	if byName["list1"] != 594 || byName["list2"] != 18 {
		t.Fatalf("fault lists = %+v", byName)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := do(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
}

func TestShutdownDrainsInflightJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	w := do(t, s, "POST", "/v1/generate", `{"list":"list2"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: %d", w.Code)
	}
	id := decode[jobEnvelope](t, w).Job.ID

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The in-flight job completed rather than being dropped.
	if j := pollJob(t, s, id); j.Status != JobDone {
		t.Fatalf("job after drain = %+v, want done", j)
	}
	// New work is refused while/after draining.
	if w := do(t, s, "POST", "/v1/generate", `{"list":"list1"}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown POST: %d, want 503", w.Code)
	}
}

// TestConcurrentClients hammers the service from several goroutines; run
// under -race (scripts/race.sh includes this package) it doubles as the
// data-race gate for the handler/job/cache/metrics paths.
func TestConcurrentClients(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 256})

	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				w := do(t, s, "POST", "/v1/generate", `{"list":"list2"}`)
				switch w.Code {
				case http.StatusOK, http.StatusAccepted:
				case http.StatusServiceUnavailable: // engine backpressure is a valid answer
				case http.StatusTooManyRequests: // as is an admission shed
				default:
					errs <- fmt.Sprintf("generate: %d %s", w.Code, w.Body.String())
				}
				if w.Code == http.StatusAccepted {
					pollJob(t, s, decode[jobEnvelope](t, w).Job.ID)
				}
				if w := do(t, s, "POST", "/v1/simulate", `{"march":{"name":"MATS+"},"list":"simple1"}`); w.Code != http.StatusOK {
					errs <- fmt.Sprintf("simulate: %d", w.Code)
				}
				if w := do(t, s, "GET", "/metrics", ""); w.Code != http.StatusOK {
					errs <- fmt.Sprintf("metrics: %d", w.Code)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Exactly one client can have missed per unique key; everyone else hit.
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.CacheHits == 0 || m.CacheMisses == 0 {
		t.Fatalf("cache counters = %+v", m)
	}
	if m.CacheMisses > m.JobsSubmitted+1 {
		t.Fatalf("misses %d exceed submitted jobs %d", m.CacheMisses, m.JobsSubmitted)
	}
}

// TestRoutePanicContained pins HTTP-layer panic containment: a handler
// that panics answers 500 with the uniform JSON error body, the process
// (and the mux) keeps serving, and the panic is visible in /metrics as
// panics_total.
func TestRoutePanicContained(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	mux := http.NewServeMux()
	s.route(mux, "GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	s.route(mux, "GET /fine", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking route status = %d, want 500", w.Code)
	}
	var body apiError
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("panicking route body = %q (err %v), want the JSON error shape", w.Body.String(), err)
	}

	// The route table keeps serving after the panic.
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/fine", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("route after panic = %d, want 200", w.Code)
	}

	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.PanicsTotal != 1 {
		t.Fatalf("panics_total = %d, want 1", m.PanicsTotal)
	}
	if m.Statuses["500"] != 1 {
		t.Fatalf("responses_by_status[500] = %d, want 1", m.Statuses["500"])
	}
}

// TestRoutePanicAfterStatusLine: once a handler has written its status
// line, containment cannot rewrite it — but the panic is still counted
// and the connection is not left looking like a clean 200 in metrics.
func TestRoutePanicAfterStatusLine(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	mux := http.NewServeMux()
	s.route(mux, "GET /late", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("mid-body")
	})
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/late", nil))
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.PanicsTotal != 1 {
		t.Fatalf("panics_total = %d, want 1", m.PanicsTotal)
	}
	if m.Statuses["500"] != 1 {
		t.Fatalf("late panic not recorded as 500 in metrics: %+v", m.Statuses)
	}
}

// TestEncodeErrorCountedAndLogged: a response body that fails to encode
// after the status line is logged through the request log and counted in
// /metrics as response_encode_errors (satellite of ISSUE 4).
func TestEncodeErrorCountedAndLogged(t *testing.T) {
	var logBuf bytes.Buffer
	s := newTestServer(t, Config{Workers: 1, Logger: log.New(&logBuf, "", 0)})
	mux := http.NewServeMux()
	s.route(mux, "GET /unencodable", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"bad": make(chan int)})
	})
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/unencodable", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d (the status line goes out before the body can fail)", w.Code)
	}
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.EncodeErrors != 1 {
		t.Fatalf("response_encode_errors = %d, want 1", m.EncodeErrors)
	}
	if !strings.Contains(logBuf.String(), "encode error") {
		t.Fatalf("request log did not record the encode error:\n%s", logBuf.String())
	}
}

// TestSubmitIDsAreUnique is a cheap regression net for the newJobID
// error path refactor: ids still mint and never collide.
func TestSubmitIDsAreUnique(t *testing.T) {
	e := newJobEngine(2, 64, time.Minute, 64)
	defer e.Shutdown(context.Background())
	seen := make(map[string]bool)
	for i := 0; i < 32; i++ {
		j, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		if seen[j.id] {
			t.Fatalf("duplicate job id %s", j.id)
		}
		seen[j.id] = true
	}
}

func TestVerifyEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	// First request: a miss that enqueues a cross-check job.
	w := do(t, s, "POST", "/v1/verify", `{"march":{"name":"March SS"},"list":"list2"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("first POST: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first POST: X-Cache = %q, want miss", got)
	}
	env := decode[jobEnvelope](t, w)
	j := pollJob(t, s, env.Job.ID)
	if j.Status != JobDone {
		t.Fatalf("job = %+v, want done", j)
	}

	res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result: status %d: %s", res.Code, res.Body.String())
	}
	var doc struct {
		Faults      int               `json:"faults"`
		Agree       bool              `json:"agree"`
		Divergences []json.RawMessage `json:"divergences"`
		Key         string            `json:"cache_key"`
	}
	if err := json.Unmarshal(res.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Agree || doc.Faults != 18 || len(doc.Divergences) != 0 || doc.Key == "" {
		t.Fatalf("verify document = %+v", doc)
	}

	// Second request: a cache hit with byte-identical output.
	w2 := do(t, s, "POST", "/v1/verify", `{"march":{"name":"March SS"},"list":"list2"}`)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second POST: status %d X-Cache %q", w2.Code, w2.Header().Get("X-Cache"))
	}
	if !bytes.Equal(w2.Body.Bytes(), res.Body.Bytes()) {
		t.Fatalf("cache hit bytes differ from the job's result document")
	}

	// An explicit default config hits the same entry (canonicalized key).
	w3 := do(t, s, "POST", "/v1/verify", `{"march":{"name":"March SS"},"list":"list2","config":{"size":4,"exhaustive_orders":true}}`)
	if w3.Code != http.StatusOK || w3.Header().Get("X-Cache") != "hit" {
		t.Fatalf("canonical twin: status %d X-Cache %q", w3.Code, w3.Header().Get("X-Cache"))
	}
}

func TestVerifyBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{`,                // malformed JSON
		`{"list":"list2"}`, // no march test
		`{"march":{"name":"nope"},"list":"list2"}`,           // unknown test
		`{"march":{"name":"March SS"}}`,                      // no faults
		`{"march":{"name":"March SS"},"list":"nope"}`,        // unknown list
		`{"march":{"name":"March SS"},"list":"list2","x":1}`, // unknown field
	}
	for _, body := range cases {
		if w := do(t, s, "POST", "/v1/verify", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, w.Code)
		}
	}
}
