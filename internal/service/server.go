// Package service implements marchd: a long-lived HTTP JSON service that
// exposes the march generator and fault simulator as a shared workload.
//
// Architecture (DESIGN.md §8):
//
//   - Generation requests are asynchronous: POST /v1/generate enqueues a
//     job on a bounded worker pool and returns a job id; GET /v1/jobs/{id}
//     polls status and result, DELETE cancels. Every job carries a
//     per-job deadline via context (GenerateContext), so stuck work cannot
//     pin a worker forever.
//   - Results are content-addressed: an LRU cache keyed on the SHA-256 of
//     the canonical fault list + Options encoding serves repeated requests
//     in O(1) with byte-identical responses, and identical in-flight
//     requests are deduplicated onto one job.
//   - Simulation and detection are synchronous (they are orders of
//     magnitude cheaper than generation thanks to the compiled schedules of
//     internal/sim) with a request-scoped timeout.
//   - Observability: structured request logging, /healthz, and /metrics
//     (request/cache/job counters plus a generation latency histogram).
//
// Shutdown is graceful: Server.Shutdown stops accepting jobs, drains the
// queue and the in-flight work, and only cancels what remains once the
// drain window expires.
package service

import (
	"context"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"marchgen/internal/fabric"
)

// Config sizes the service.
type Config struct {
	// Workers is the generation worker pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs; a full
	// queue fails fast with HTTP 503. 0 means 64.
	QueueDepth int
	// CacheSize bounds the result cache entries; 0 means 128.
	CacheSize int
	// RetainJobs bounds how many terminal jobs stay pollable; 0 means 512.
	RetainJobs int
	// JobTimeout caps every generation job's deadline; 0 means 5 minutes.
	JobTimeout time.Duration
	// SyncTimeout is the request-scoped timeout of the synchronous
	// endpoints (simulate, detects); 0 means 60 seconds.
	SyncTimeout time.Duration
	// AdmitTarget is the CoDel queue-wait target of the admission
	// controller: sustained queue waits above it put the service under
	// pressure. 0 means 200ms.
	AdmitTarget time.Duration
	// AdmitInterval is the CoDel observation window: waits must stay above
	// target for a full interval before the controller starts shedding on
	// estimated wait. 0 means 1s.
	AdmitInterval time.Duration
	// CacheDir, when set, makes the result cache write-through persistent
	// rooted at this directory and warm-starts the LRU from it at boot;
	// "" keeps the cache memory-only.
	CacheDir string
	// DataDir is the durable root of the campaign result stores (one
	// subdirectory per campaign); "" means a "marchd-campaigns" directory
	// under the OS temp dir.
	DataDir string
	// MaxCampaigns bounds concurrently running campaigns; 0 means 2.
	MaxCampaigns int
	// CampaignWorkers bounds concurrent shards per campaign; 0 means
	// GOMAXPROCS.
	CampaignWorkers int
	// DisableLanes forces the scalar simulation engine for every request
	// this instance serves (the marchd -lanes=off escape hatch). Lane mode
	// never changes verdicts, witnesses or cache keys, so instances with
	// different settings serve byte-identical responses; the request wire
	// format deliberately cannot carry the knob.
	DisableLanes bool
	// Coordinator enables the distributed campaign fabric (DESIGN.md §13):
	// the /v1/fabric/* endpoints lease shard ranges of submitted campaigns
	// to peer marchd workers and merge their results into the same store
	// root the local campaign engine uses.
	Coordinator bool
	// FabricLeaseShards bounds shards per fabric lease; 0 means 4.
	FabricLeaseShards int
	// FabricLeaseTTL is the fabric lease heartbeat deadline; 0 means 10s.
	FabricLeaseTTL time.Duration
	// Logger receives the structured request log; nil disables logging.
	Logger *log.Logger
}

func (c Config) dataDir() string {
	if c.DataDir == "" {
		return filepath.Join(os.TempDir(), "marchd-campaigns")
	}
	return c.DataDir
}

func (c Config) maxCampaigns() int {
	if c.MaxCampaigns <= 0 {
		return 2
	}
	return c.MaxCampaigns
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) retainJobs() int {
	if c.RetainJobs <= 0 {
		return 512
	}
	return c.RetainJobs
}

func (c Config) jobTimeout() time.Duration {
	if c.JobTimeout <= 0 {
		return 5 * time.Minute
	}
	return c.JobTimeout
}

func (c Config) syncTimeout() time.Duration {
	if c.SyncTimeout <= 0 {
		return 60 * time.Second
	}
	return c.SyncTimeout
}

// Server is the marchd HTTP service: job engine + result cache + metrics
// behind a request-logging handler.
type Server struct {
	cfg       Config
	jobs      *jobEngine
	cache     *resultCache
	admit     *admission
	campaigns *campaignManager
	fabric    *fabric.Coordinator // nil unless Config.Coordinator
	metrics   *metrics
	logger    *log.Logger
	handler   http.Handler

	// inflight deduplicates concurrent generation requests: cache key →
	// job id of the queued/running job computing that key.
	mu       sync.Mutex
	inflight map[string]string
}

// New builds a ready-to-serve marchd instance.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheSize),
		metrics:  newMetrics(),
		logger:   cfg.Logger,
		inflight: make(map[string]string),
	}
	if cfg.CacheDir != "" {
		var logf func(string, ...any)
		if cfg.Logger != nil {
			logf = cfg.Logger.Printf
		}
		if err := s.cache.enablePersist(cfg.CacheDir, logf); err != nil && cfg.Logger != nil {
			// A broken cache directory degrades to a memory-only cache; it
			// must never stop the service from coming up.
			cfg.Logger.Printf("%v (cache persistence disabled)", err)
		}
	}
	s.admit = newAdmission(cfg.workers(), cfg.queueDepth(), cfg.maxCampaigns(), cfg.AdmitTarget, cfg.AdmitInterval)
	s.jobs = newJobEngine(cfg.workers(), cfg.queueDepth(), cfg.jobTimeout(), cfg.retainJobs())
	s.jobs.onStart = func(j *job) {
		snap := j.snapshot(false)
		s.admit.started(j.class, snap.Started.Sub(snap.Created))
	}
	s.jobs.onTerminal = func(j *job) {
		snap := j.snapshot(false)
		s.admit.finished(j.class, !snap.Started.IsZero(), snap.Status == JobDone)
		s.metrics.jobTerminal(snap.Status)
		s.clearInflight(j.id)
	}
	s.jobs.onPanic = func() {
		s.metrics.panicked()
		if s.logger != nil {
			s.logger.Printf("panic contained in generation job (see the job's error for the stack)")
		}
	}
	s.campaigns = newCampaignManager(cfg.dataDir(), cfg.maxCampaigns(), cfg.CampaignWorkers, cfg.DisableLanes)
	s.campaigns.onTerminal = s.metrics.campaignTerminal

	mux := http.NewServeMux()
	s.route(mux, "POST /v1/generate", s.handleGenerate)
	s.route(mux, "POST /v1/verify", s.handleVerify)
	s.route(mux, "POST /v1/optimize", s.handleOptimize)
	s.route(mux, "POST /v1/diagnose", s.handleDiagnose)
	s.route(mux, "POST /v1/simulate", s.timeout(s.handleSimulate))
	s.route(mux, "POST /v1/detects", s.timeout(s.handleDetects))
	s.route(mux, "GET /v1/library", s.handleLibrary)
	s.route(mux, "GET /v1/faultlists", s.handleFaultLists)
	s.route(mux, "GET /v1/jobs/{id}", s.handleJobGet)
	s.route(mux, "GET /v1/jobs/{id}/result", s.handleJobResult)
	s.route(mux, "DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.route(mux, "POST /v1/campaigns", s.handleCampaignSubmit)
	s.route(mux, "GET /v1/campaigns", s.handleCampaignList)
	s.route(mux, "GET /v1/campaigns/{id}", s.handleCampaignGet)
	s.route(mux, "GET /v1/campaigns/{id}/results", s.handleCampaignResults)
	s.route(mux, "DELETE /v1/campaigns/{id}", s.handleCampaignCancel)
	if cfg.Coordinator {
		fcfg := fabric.Config{
			Root:        cfg.dataDir(),
			LeaseShards: cfg.FabricLeaseShards,
			LeaseTTL:    cfg.FabricLeaseTTL,
		}
		if s.logger != nil {
			fcfg.Logf = s.logger.Printf
		}
		s.fabric = fabric.NewCoordinator(fcfg)
		s.route(mux, "POST /v1/fabric/join", s.fabric.HandleJoin)
		s.route(mux, "POST /v1/fabric/lease", s.fabric.HandleLease)
		s.route(mux, "POST /v1/fabric/heartbeat", s.fabric.HandleHeartbeat)
		s.route(mux, "POST /v1/fabric/complete", s.fabric.HandleComplete)
		s.route(mux, "POST /v1/fabric/campaigns", s.fabric.HandleSubmit)
		s.route(mux, "GET /v1/fabric/campaigns/{id}", s.fabric.HandleSession)
		s.route(mux, "GET /v1/fabric/status", s.fabric.HandleStatus)
	}
	s.route(mux, "GET /healthz", s.handleHealthz)
	s.route(mux, "GET /metrics", s.handleMetrics)
	s.handler = s.logging(mux)
	return s
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Shutdown drains the job engine and the campaign manager: no new work is
// accepted, in-flight work finishes until ctx expires, then the stragglers
// are canceled (interrupted campaigns keep their last checkpoint and are
// resumable). The HTTP listener itself is the caller's to close
// (net/http.Server owns connection draining; this owns work draining).
func (s *Server) Shutdown(ctx context.Context) error {
	jobErr := s.jobs.Shutdown(ctx)
	campErr := s.campaigns.Shutdown(ctx)
	if s.fabric != nil {
		s.fabric.Shutdown()
	}
	if jobErr != nil {
		return jobErr
	}
	return campErr
}

// route registers a handler and counts its requests under the route's
// pattern (stable, bounded-cardinality metric keys — never raw paths).
// Every route runs behind panic containment: a panicking handler answers
// 500 with a JSON error body (if the status line is still ours to write),
// is logged with its stack, and shows up in /metrics as panics_total —
// one poisoned request must never take the listener down. Response
// encode failures recorded by writeJSON are logged and counted here too.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if rec == http.ErrAbortHandler {
					// net/http's own abort protocol (client gone): not ours
					// to contain.
					panic(rec)
				}
				s.metrics.panicked()
				if s.logger != nil {
					s.logger.Printf("panic serving %s: %v\n%s", pattern, rec, debug.Stack())
				}
				if !sw.wroteHeader {
					writeError(sw, http.StatusInternalServerError, "internal error: handler panicked")
				} else {
					// The status line is out; all we can do is stop the body
					// mid-stream so the client sees a broken response, not a
					// silently truncated-but-200 one.
					sw.status = http.StatusInternalServerError
				}
			}()
			h(sw, r)
		}()
		if sw.encodeErr != nil {
			s.metrics.encodeError()
			if s.logger != nil {
				s.logger.Printf("response encode error on %s (status %d already sent): %v", pattern, sw.status, sw.encodeErr)
			}
		}
		s.metrics.request(pattern, sw.status)
	}))
}

// timeout wraps a synchronous handler with the request-scoped timeout.
func (s *Server) timeout(h http.HandlerFunc) http.HandlerFunc {
	th := http.TimeoutHandler(h, s.cfg.syncTimeout(), `{"error":"request timed out"}`)
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	}
}

// logging emits one structured line per request.
func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.logger.Printf("method=%s path=%s status=%d bytes=%d dur=%s remote=%s",
			r.Method, r.URL.Path, sw.status, sw.bytes, time.Since(start).Round(time.Microsecond), r.RemoteAddr)
	})
}

// statusWriter captures the response status and size for logs and
// metrics, whether the status line has been written (panic containment
// must not write a second one), and any JSON encode error writeJSON hit
// after the status line went out.
type statusWriter struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
	encodeErr   error
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wroteHeader = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// recordEncodeError implements the interface writeJSON reports dropped
// response bodies through.
func (w *statusWriter) recordEncodeError(err error) { w.encodeErr = err }

// headerWritten implements the interface writeJSON consults before
// emitting a status line, so it can never write a second one.
func (w *statusWriter) headerWritten() bool { return w.wroteHeader }

// lookupOrSubmit deduplicates concurrent generation requests on their
// cache key: if a live job is already computing the key it is returned
// (created=false); otherwise fn is submitted as a new job of the given
// admission class. The server lock is held across the submit so two
// concurrent misses cannot both spawn work for one key.
//
// Admission is checked here, after the dedup lookup: piggybacking on a
// job that is already admitted costs the service nothing, so it is never
// shed. Only genuinely new work spends an admission slot. A shed is
// returned as a *shedError (HTTP 429 + Retry-After upstream).
func (s *Server) lookupOrSubmit(class admitClass, key string, timeout time.Duration, fn func(context.Context) ([]byte, error)) (*job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.inflight[key]; ok {
		if j, live := s.jobs.Get(id); live && !j.snapshot(false).Status.Terminal() {
			return j, false, nil
		}
		delete(s.inflight, key)
	}
	if shed := s.admit.admit(class); shed != nil {
		s.metrics.shed(string(class))
		return nil, false, shed
	}
	j, err := s.jobs.Submit(class, timeout, fn)
	if err != nil {
		// The engine refused after admission said yes (queue tombstones, or
		// a drain that began in between): hand the slot straight back.
		s.admit.finished(class, false, false)
		return nil, false, err
	}
	s.inflight[key] = j.id
	return j, true, nil
}

// clearInflight drops the dedup entry owned by the given job id.
func (s *Server) clearInflight(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.inflight {
		if v == id {
			delete(s.inflight, k)
		}
	}
}
