package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

// Campaign lifecycle states of the marchd API. Unlike jobs, campaigns are
// durable: an "interrupted" campaign (server died or was shut down mid-run)
// is resumable by POSTing the same spec again.
const (
	CampaignRunning     = "running"
	CampaignDone        = "done"
	CampaignFailed      = "failed"
	CampaignInterrupted = "interrupted"
)

// ErrCampaignsFull is returned when the concurrent-campaign cap is reached.
var ErrCampaignsFull = errors.New("service: campaign capacity reached; retry later")

// ShardProgress is the per-shard view of a campaign: total/committed
// counters plus one state per shard ("pending", "running", "committed").
type ShardProgress struct {
	Total     int      `json:"total"`
	Committed int      `json:"committed"`
	States    []string `json:"states"`
}

// UnitProgress counts unit completions.
type UnitProgress struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Errors int `json:"errors"`
}

// Campaign is the API snapshot of a campaign.
type Campaign struct {
	ID       string        `json:"id"`
	Name     string        `json:"name,omitempty"`
	SpecHash string        `json:"spec_hash"`
	Status   string        `json:"status"`
	Created  time.Time     `json:"created,omitempty"`
	Finished time.Time     `json:"finished,omitempty"`
	Shards   ShardProgress `json:"shards"`
	Units    UnitProgress  `json:"units"`
	Error    string        `json:"error,omitempty"`
	Results  string        `json:"results,omitempty"`
}

// campaignRun is the in-memory record of a campaign started by this server
// process.
type campaignRun struct {
	id      string
	spec    campaign.Spec
	created time.Time
	cancel  context.CancelFunc
	done    chan struct{}

	mu        sync.Mutex
	status    string
	finished  time.Time
	shards    []string // per-shard state
	unitsDone int
	unitErrs  int
	committed int
	errMsg    string
}

func (r *campaignRun) snapshot() Campaign {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := Campaign{
		ID:       r.id,
		Name:     r.spec.Name,
		SpecHash: r.spec.Hash(),
		Status:   r.status,
		Created:  r.created,
		Finished: r.finished,
		Shards: ShardProgress{
			Total:     len(r.shards),
			Committed: r.committed,
			States:    append([]string(nil), r.shards...),
		},
		Units: UnitProgress{
			Total:  r.spec.Units(),
			Done:   r.unitsDone,
			Errors: r.unitErrs,
		},
		Error:   r.errMsg,
		Results: "/v1/campaigns/" + r.id + "/results",
	}
	return c
}

// onEvent folds an engine progress event into the run's counters. Events
// arrive serialized (the engine locks around the callback).
func (r *campaignRun) onEvent(ev campaign.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch ev.Kind {
	case campaign.EventUnitDone:
		r.unitsDone++
		if ev.Err != "" {
			r.unitErrs++
		}
		if ev.Shard < len(r.shards) && r.shards[ev.Shard] == "pending" {
			r.shards[ev.Shard] = "running"
		}
	case campaign.EventShardCommitted:
		r.committed = ev.Committed
		if ev.Shard < len(r.shards) {
			r.shards[ev.Shard] = "committed"
		}
	}
}

// campaignManager owns the campaign runs of one server process: a bounded
// set of concurrently executing campaigns over one durable store root.
type campaignManager struct {
	root     string
	max      int
	workers  int
	lanesOff bool
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	mu       sync.Mutex
	runs     map[string]*campaignRun
	draining bool

	// onTerminal receives the final status for metrics.
	onTerminal func(status string)
}

func newCampaignManager(root string, max, workers int, lanesOff bool) *campaignManager {
	ctx, cancel := context.WithCancel(context.Background())
	return &campaignManager{
		root:     root,
		max:      max,
		workers:  workers,
		lanesOff: lanesOff,
		baseCtx:  ctx,
		cancel:   cancel,
		runs:     make(map[string]*campaignRun),
	}
}

// Start launches (or, for an already-running id, returns) the campaign for
// the given spec. The engine runs with Resume, so re-POSTing the spec of an
// interrupted campaign continues it from its checkpoint.
func (m *campaignManager) Start(spec campaign.Spec) (*campaignRun, bool, error) {
	c := spec.Canonical()
	id := c.ID()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false, ErrDraining
	}
	if r, ok := m.runs[id]; ok {
		r.mu.Lock()
		running := r.status == CampaignRunning
		r.mu.Unlock()
		if running {
			return r, false, nil
		}
		// Terminal: fall through and start a fresh run (resume semantics
		// make this a no-op for completed campaigns).
	}
	active := 0
	for _, r := range m.runs {
		r.mu.Lock()
		if r.status == CampaignRunning {
			active++
		}
		r.mu.Unlock()
	}
	if active >= m.max {
		return nil, false, ErrCampaignsFull
	}

	ctx, cancel := context.WithCancel(m.baseCtx)
	r := &campaignRun{
		id:      id,
		spec:    c,
		created: time.Now(),
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  CampaignRunning,
		shards:  make([]string, len(campaign.Plan(c))),
	}
	for i := range r.shards {
		r.shards[i] = "pending"
	}
	m.runs[id] = r
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		sum, err := campaign.Run(ctx, c, m.root, campaign.RunOptions{
			Workers:      m.workers,
			Resume:       true,
			OnEvent:      r.onEvent,
			DisableLanes: m.lanesOff,
		})
		r.mu.Lock()
		r.finished = time.Now()
		switch {
		case err == nil:
			r.status = CampaignDone
			r.unitErrs = sum.UnitErrors
		case errors.Is(err, context.Canceled):
			r.status = CampaignInterrupted
			r.errMsg = "interrupted; POST the same spec to resume"
		default:
			r.status = CampaignFailed
			r.errMsg = err.Error()
		}
		status := r.status
		r.mu.Unlock()
		close(r.done)
		if m.onTerminal != nil {
			m.onTerminal(status)
		}
	}()
	return r, true, nil
}

// Get returns the in-memory run for id.
func (m *campaignManager) Get(id string) (*campaignRun, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// Cancel stops a running campaign at its next shard boundary.
func (m *campaignManager) Cancel(id string) (*campaignRun, bool) {
	r, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	r.cancel()
	return r, true
}

// List snapshots every known run.
func (m *campaignManager) List() []Campaign {
	m.mu.Lock()
	runs := make([]*campaignRun, 0, len(m.runs))
	for _, r := range m.runs {
		runs = append(runs, r)
	}
	m.mu.Unlock()
	out := make([]Campaign, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.snapshot())
	}
	return out
}

// Shutdown lets running campaigns drain until ctx expires, then cancels
// them (they re-checkpoint at shard granularity, so nothing is lost beyond
// the in-flight shards).
func (m *campaignManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		m.cancel()
		<-finished
		return fmt.Errorf("service: campaign drain window expired; in-flight campaigns interrupted: %w", ctx.Err())
	}
}

// diskSnapshot reconstructs a campaign snapshot from its store directory —
// the fallback for campaigns started by a previous server process.
func (m *campaignManager) diskSnapshot(id string) (Campaign, bool) {
	dir := filepath.Join(m.root, id)
	sf, err := campaign.LoadSpecFile(dir)
	if err != nil {
		return Campaign{}, false
	}
	cp, recs, err := store.Read(dir)
	if err != nil {
		return Campaign{}, false
	}
	shards := campaign.Plan(sf.Spec)
	states := make([]string, len(shards))
	for i := range states {
		if i < cp.Shards {
			states[i] = "committed"
		} else {
			states[i] = "pending"
		}
	}
	status := CampaignInterrupted
	if cp.Shards >= len(shards) {
		status = CampaignDone
	}
	unitErrs := 0
	if results, err := campaign.Decode(recs); err == nil {
		for _, r := range results {
			if r.Error != "" {
				unitErrs++
			}
		}
	}
	return Campaign{
		ID:       id,
		Name:     sf.Spec.Name,
		SpecHash: sf.Hash,
		Status:   status,
		Shards:   ShardProgress{Total: len(shards), Committed: cp.Shards, States: states},
		Units:    UnitProgress{Total: sf.Spec.Units(), Done: cp.Records, Errors: unitErrs},
		Results:  "/v1/campaigns/" + id + "/results",
	}, true
}

// handleCampaignSubmit is POST /v1/campaigns: validate the spec, then start
// — or resume, campaigns being content-addressed — its campaign. Answers
// 202 with the campaign snapshot (200 if it was already running).
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Campaigns are the most expensive class, first on the shed order; their
	// occupancy stays bounded by the campaign manager itself.
	if shed := s.admit.admitPressure(classCampaign); shed != nil {
		s.metrics.shed(string(classCampaign))
		writeShed(w, shed)
		return
	}
	run, created, err := s.campaigns.Start(spec)
	switch {
	case errors.Is(err, ErrCampaignsFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status := http.StatusOK
	if created {
		s.metrics.campaignSubmitted()
		status = http.StatusAccepted
	}
	w.Header().Set("Location", "/v1/campaigns/"+run.id)
	writeJSON(w, status, run.snapshot())
}

// handleCampaignList is GET /v1/campaigns: the campaigns of this server
// process.
func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Campaigns []Campaign `json:"campaigns"`
	}{s.campaigns.List()})
}

// handleCampaignGet is GET /v1/campaigns/{id}: the live snapshot with
// per-shard progress, falling back to the durable store for campaigns of
// previous server runs.
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if run, ok := s.campaigns.Get(id); ok {
		writeJSON(w, http.StatusOK, run.snapshot())
		return
	}
	if snap, ok := s.campaigns.diskSnapshot(id); ok {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	writeError(w, http.StatusNotFound, "unknown campaign %q", id)
}

// handleCampaignCancel is DELETE /v1/campaigns/{id}: interrupt at the next
// shard boundary; the checkpoint survives and a re-POST resumes.
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := s.campaigns.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, run.snapshot())
}

// handleCampaignResults is GET /v1/campaigns/{id}/results: the committed
// prefix of the campaign's append-only result set, streamed as JSONL. The
// bytes are exactly the store's — the same result set `marchcamp report`
// reads.
func (s *Server) handleCampaignResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dir := filepath.Join(s.campaigns.root, id)
	cp, _, err := store.Read(dir)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	f, err := os.Open(store.DataPath(dir))
	if err != nil {
		writeError(w, http.StatusNotFound, "campaign %q has no results yet", id)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Length", fmt.Sprint(cp.Bytes))
	_, _ = io.CopyN(w, f, cp.Bytes)
}
