package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCanceledQueuedJobsFreeTheirSlots is the regression test for the
// queue-slot tombstone bug: a job canceled while still queued must release
// its queue accounting immediately — not when a worker eventually drains
// the tombstone — and must never count in the latency histogram.
func TestCanceledQueuedJobsFreeTheirSlots(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// Occupy the lone worker with a slow job, then flood the queue.
	running := do(t, s, "POST", "/v1/generate", `{"list":"list1","options":{"name":"tomb-run"}}`)
	if running.Code != http.StatusAccepted {
		t.Fatalf("running submit: %d: %s", running.Code, running.Body.String())
	}
	runID := decode[jobEnvelope](t, running).Job.ID
	deadline := time.Now().Add(10 * time.Second)
	for s.jobs.Depth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	histBefore := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", "")).Generate.Count

	var queued []string
	for i := 0; i < 4; i++ {
		w := do(t, s, "POST", "/v1/generate",
			`{"list":"list1","options":{"name":"tomb-`+strings.Repeat("q", i+1)+`"}}`)
		if w.Code != http.StatusAccepted {
			t.Fatalf("queued submit %d: %d: %s", i, w.Code, w.Body.String())
		}
		queued = append(queued, decode[jobEnvelope](t, w).Job.ID)
	}
	if got := s.jobs.Depth(); got != 4 {
		t.Fatalf("queue depth after flood = %d, want 4", got)
	}

	// Cancel every queued job. The depth and the admission occupancy must
	// return to zero right away: the worker is still busy and cannot have
	// drained any tombstones yet.
	for _, id := range queued {
		if w := do(t, s, "DELETE", "/v1/jobs/"+id, ""); w.Code != http.StatusOK {
			t.Fatalf("cancel %s: %d: %s", id, w.Code, w.Body.String())
		}
	}
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.QueueDepth != 0 {
		t.Fatalf("job_queue_depth after cancels = %d, want 0", m.QueueDepth)
	}
	if q := m.Admission["generate"].Queued; q != 0 {
		t.Fatalf("admission generate.queued after cancels = %d, want 0", q)
	}
	if m.JobsCanceled != 4 {
		t.Fatalf("jobs_canceled = %d, want 4", m.JobsCanceled)
	}
	// Canceled-while-queued jobs never ran: the latency histogram must not
	// have moved.
	if m.Generate.Count != histBefore {
		t.Fatalf("generate latency count moved %d -> %d on canceled jobs", histBefore, m.Generate.Count)
	}

	// Admission freed the slots, but the engine's channel still holds the
	// four tombstones (the worker is pinned on the slow job and cannot have
	// drained any): a new submit passes admission and then hits the
	// engine's 503 backstop, which must hand the admission slot straight
	// back — not leak it.
	w := do(t, s, "POST", "/v1/generate", `{"list":"list1","options":{"name":"tomb-after"}}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit into tombstoned channel: %d, want 503: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("503 Retry-After = %q, want \"1\"", ra)
	}
	m = decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if q := m.Admission["generate"].Queued; q != 0 {
		t.Fatalf("admission generate.queued leaked by the 503 handback: %d", q)
	}
	do(t, s, "DELETE", "/v1/jobs/"+runID, "")
}

// brokenPipeWriter fakes the ResponseWriter of a client that disconnected
// mid-response: every write fails with EPIPE, and WriteHeader calls are
// counted so the test can prove only one status line ever went out.
type brokenPipeWriter struct {
	header       http.Header
	headerCalls  []int
	bytesWritten int
}

func (w *brokenPipeWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *brokenPipeWriter) WriteHeader(code int) { w.headerCalls = append(w.headerCalls, code) }

func (w *brokenPipeWriter) Write(p []byte) (int, error) {
	w.bytesWritten += len(p)
	return 0, syscall.EPIPE
}

// TestShedWriteToDisconnectedClient pins the double-write bugfix: when the
// client of a shed (429) response disconnects mid-write and a later error
// path tries to answer again, the second status line is suppressed and
// surfaces as a recorded encode error instead of an HTTP protocol
// violation.
func TestShedWriteToDisconnectedClient(t *testing.T) {
	inner := &brokenPipeWriter{}
	sw := &statusWriter{ResponseWriter: inner, status: http.StatusOK}

	shed := &shedError{class: classGenerate, retryAfter: 2 * time.Second, reason: "test"}
	writeShed(sw, shed)
	if got := inner.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if len(inner.headerCalls) != 1 || inner.headerCalls[0] != http.StatusTooManyRequests {
		t.Fatalf("status lines written = %v, want exactly [429]", inner.headerCalls)
	}
	// The body write failed (EPIPE), which the route layer sees as an
	// encode error on the response writer.
	if sw.encodeErr == nil {
		t.Fatal("EPIPE on the 429 body was not recorded as an encode error")
	}

	// A later error path bouncing into a second write must not emit a
	// second status line.
	writeError(sw, http.StatusInternalServerError, "late failure")
	if len(inner.headerCalls) != 1 {
		t.Fatalf("status lines after second write = %v, want still [429]", inner.headerCalls)
	}
	if sw.encodeErr == nil || !strings.Contains(sw.encodeErr.Error(), "dropped") {
		t.Fatalf("dropped status not recorded: %v", sw.encodeErr)
	}
	if sw.status != http.StatusTooManyRequests {
		t.Fatalf("recorded status = %d, want 429", sw.status)
	}
}

// discardWriter is a Write sink that cannot allocate.
type discardWriter struct{ n int }

func (d *discardWriter) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }

// TestCachedHitServesStoredBytesWithoutAllocating pins the cached-hit SLO:
// serving a cached verdict document is a map lookup plus one Write of the
// stored canonical bytes — zero per-request heap allocations. (The HTTP
// plumbing around it allocates, of course; marchload tracks that full
// figure as allocs_per_cached_hit. This guards the part we own.)
func TestCachedHitServesStoredBytesWithoutAllocating(t *testing.T) {
	c := newResultCache(8)
	key := strings.Repeat("ab", 32)
	body := []byte(`{"test":{"name":"March X"},"cache_key":"` + key + `"}`)
	c.Put(key, body)

	sink := &discardWriter{}
	allocs := testing.AllocsPerRun(200, func() {
		b, ok := c.Get(key)
		if !ok {
			t.Fatal("cache miss")
		}
		sink.Write(b)
	})
	if allocs != 0 {
		t.Fatalf("cached-hit path allocates %.1f times per request, want 0", allocs)
	}
	if sink.n == 0 {
		t.Fatal("nothing written")
	}
}

// TestCachePersistenceRoundTrip covers the write-through store: entries
// land as <dir>/<key>.json, eviction deletes files, and a fresh cache
// warm-starts the newest entries back into memory.
func TestCachePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := func(i int) string { return strings.Repeat("0", 62) + string(rune('a'+i)) + "0" }

	c := newResultCache(3)
	if err := c.enablePersist(dir, t.Logf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Put(key(i), []byte{byte('A' + i)})
		// Distinct mtimes so warm-start recency ordering is deterministic on
		// coarse filesystem timestamps.
		past := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, key(i)+".json"), past, past); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 3 {
		t.Fatalf("persisted files = %v (err %v), want 3", files, err)
	}

	// Stray files must be ignored by warm-start and never served.
	os.WriteFile(filepath.Join(dir, "README.json"), []byte("not a key"), 0o644)
	os.WriteFile(filepath.Join(dir, strings.Repeat("z", 64)+".json"), []byte("bad hex"), 0o644)

	// A fresh cache (capacity 2) warm-starts only the 2 newest entries.
	c2 := newResultCache(2)
	if err := c2.enablePersist(dir, t.Logf); err != nil {
		t.Fatal(err)
	}
	if got := c2.Len(); got != 2 {
		t.Fatalf("warm-started entries = %d, want 2", got)
	}
	if _, ok := c2.Get(key(0)); ok {
		t.Fatal("oldest entry survived a smaller warm-start capacity")
	}
	for i := 1; i < 3; i++ {
		val, ok := c2.Get(key(i))
		if !ok || len(val) != 1 || val[0] != byte('A'+i) {
			t.Fatalf("entry %d after warm-start = %q ok=%v", i, val, ok)
		}
	}

	// Eviction removes the entry's file; the stray files are not ours to
	// touch.
	c2.Put(key(3), []byte("D")) // capacity 2: evicts the LRU entry
	left, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	byName := make(map[string]bool, len(left))
	for _, f := range left {
		byName[filepath.Base(f)] = true
	}
	if byName[key(1)+".json"] {
		t.Fatalf("evicted entry's file still on disk: %v", left)
	}
	if !byName[key(3)+".json"] || !byName["README.json"] {
		t.Fatalf("unexpected file set after eviction: %v", left)
	}
}

// TestWarmStartServesAcrossRestart proves the end-to-end degrade story: a
// result computed before a restart is served as a cache hit by the next
// process generation, straight from the persisted working set.
func TestWarmStartServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"list":"list2"}`

	s1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	w := do(t, s1, "POST", "/v1/generate", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("generate: %d: %s", w.Code, w.Body.String())
	}
	id := decode[jobEnvelope](t, w).Job.ID
	if j := pollJob(t, s1, id); j.Status != JobDone {
		t.Fatalf("job ended %s: %s", j.Status, j.Error)
	}
	// The raw result endpoint serves the exact cached bytes (the job
	// snapshot re-indents its inlined copy).
	rw := do(t, s1, "GET", "/v1/jobs/"+id+"/result", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("job result: %d: %s", rw.Code, rw.Body.String())
	}
	first := rw.Body.Bytes()

	s2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	w2 := do(t, s2, "POST", "/v1/generate", body)
	if w2.Code != http.StatusOK {
		t.Fatalf("restarted server missed the warm cache: %d: %s", w2.Code, w2.Body.String())
	}
	if w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q, want hit", w2.Header().Get("X-Cache"))
	}
	if string(first) != w2.Body.String() {
		t.Fatal("warm-started response is not byte-identical to the original")
	}
}

// TestRequestTimeoutHeader pins the X-Deadline contract: duration or
// integer milliseconds, tightened against the body's timeout_ms.
func TestRequestTimeoutHeader(t *testing.T) {
	req := func(h string) *http.Request {
		r := httptest.NewRequest("POST", "/v1/generate", nil)
		if h != "" {
			r.Header.Set("X-Deadline", h)
		}
		return r
	}
	for _, tc := range []struct {
		header string
		bodyMS int64
		want   time.Duration
		bad    bool
	}{
		{"", 0, 0, false},
		{"", 1500, 1500 * time.Millisecond, false},
		{"2s", 0, 2 * time.Second, false},
		{"250", 0, 250 * time.Millisecond, false},
		{"2s", 5000, 2 * time.Second, false},  // header tightens body
		{"10s", 3000, 3 * time.Second, false}, // body already tighter
		{"1.5s", 0, 1500 * time.Millisecond, false},
		{"-1s", 0, 0, true},
		{"0", 0, 0, true},
		{"soon", 0, 0, true},
	} {
		got, err := requestTimeout(req(tc.header), tc.bodyMS)
		if tc.bad {
			if err == nil {
				t.Errorf("X-Deadline %q accepted as %s", tc.header, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("requestTimeout(%q, %d) = %s, %v; want %s", tc.header, tc.bodyMS, got, err, tc.want)
		}
	}
}
