package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// optimizeDoc is the shape of the /v1/optimize result document the tests
// care about.
type optimizeDoc struct {
	Test struct {
		Name   string `json:"name"`
		Spec   string `json:"spec"`
		Length int    `json:"length"`
		Origin string `json:"origin"`
		Prov   struct {
			Seed      int64  `json:"seed"`
			Budget    int    `json:"budget"`
			SeedTest  string `json:"seed_test"`
			MoveTrace string `json:"move_trace"`
		} `json:"provenance"`
	} `json:"test"`
	Seed struct {
		Name   string `json:"name"`
		Length int    `json:"length"`
	} `json:"seed"`
	Report struct {
		Coverage float64 `json:"coverage_percent"`
		Total    int     `json:"total"`
	} `json:"report"`
	Stats struct {
		Evaluations int  `json:"evaluations"`
		Improved    bool `json:"improved"`
	} `json:"stats"`
	Key string `json:"cache_key"`
}

func TestOptimizeEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	body := `{"list":"list2","march":{"name":"March ABL1"},"budget":300,"name":"March OPT svc"}`
	w := do(t, s, "POST", "/v1/optimize", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("first POST: status %d: %s", w.Code, w.Body.String())
	}
	env := decode[jobEnvelope](t, w)
	j := pollJob(t, s, env.Job.ID)
	if j.Status != JobDone {
		t.Fatalf("job = %+v, want done", j)
	}

	res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result: status %d: %s", res.Code, res.Body.String())
	}
	doc := decode[optimizeDoc](t, res)
	if doc.Seed.Name != "March ABL1" || doc.Seed.Length != 9 {
		t.Fatalf("seed = %+v", doc.Seed)
	}
	if doc.Test.Length > 9 || doc.Test.Origin != "optimized" {
		t.Fatalf("winner = %+v", doc.Test)
	}
	if doc.Test.Prov.SeedTest != "March ABL1" || doc.Test.Prov.MoveTrace == "" {
		t.Fatalf("provenance = %+v", doc.Test.Prov)
	}
	if doc.Report.Coverage != 100 || doc.Report.Total != 18 {
		t.Fatalf("report = %+v", doc.Report)
	}
	if !doc.Stats.Improved || doc.Stats.Evaluations == 0 {
		t.Fatalf("stats = %+v", doc.Stats)
	}

	// Repeat request: byte-identical cache hit.
	w2 := do(t, s, "POST", "/v1/optimize", body)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d X-Cache %q", w2.Code, w2.Header().Get("X-Cache"))
	}
	if !bytes.Equal(w2.Body.Bytes(), res.Body.Bytes()) {
		t.Fatal("cache hit bytes differ from the job's result document")
	}

	// A twin with the defaults spelled out shares the cache entry.
	twin := `{"list":"list2","march":{"name":"March ABL1"},"budget":300,"name":"March OPT svc","seed":1,"beam_width":4,"restarts":3}`
	w3 := do(t, s, "POST", "/v1/optimize", twin)
	if w3.Code != http.StatusOK || w3.Header().Get("X-Cache") != "hit" {
		t.Fatalf("canonical twin: status %d X-Cache %q", w3.Code, w3.Header().Get("X-Cache"))
	}

	// The improved winner landed in the runtime library with its origin.
	lib := decode[struct {
		Tests []struct {
			Name   string `json:"name"`
			Origin string `json:"origin"`
		} `json:"tests"`
	}](t, do(t, s, "GET", "/v1/library", ""))
	found := false
	for _, tt := range lib.Tests {
		if tt.Name == "March OPT svc" && tt.Origin == "optimized" {
			found = true
		}
	}
	if !found {
		t.Fatalf("optimized winner missing from /v1/library: %+v", lib.Tests)
	}

	// Metrics saw the run, the improvement and live evaluation progress.
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.OptimizeRuns != 1 || m.OptimizeImproved != 1 {
		t.Fatalf("optimize counters = runs %d improved %d", m.OptimizeRuns, m.OptimizeImproved)
	}
	if m.OptimizeEvaluations != int64(doc.Stats.Evaluations) {
		t.Fatalf("optimize_evaluations = %d, want %d", m.OptimizeEvaluations, doc.Stats.Evaluations)
	}
}

func TestOptimizeGeneratedSeed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	w := do(t, s, "POST", "/v1/optimize", `{"list":"list2","budget":150}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", w.Code, w.Body.String())
	}
	env := decode[jobEnvelope](t, w)
	j := pollJob(t, s, env.Job.ID)
	if j.Status != JobDone {
		t.Fatalf("job = %+v, want done", j)
	}
	res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
	doc := decode[optimizeDoc](t, res)
	if doc.Seed.Length == 0 || doc.Test.Length > doc.Seed.Length {
		t.Fatalf("winner %dn vs generated seed %dn", doc.Test.Length, doc.Seed.Length)
	}
}

func TestOptimizeBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body, wantErr string
	}{
		{"no faults", `{}`, "bad fault spec"},
		{"unknown list", `{"list":"nope"}`, "bad fault spec"},
		{"unknown seed test", `{"list":"list2","march":{"name":"No Such"}}`, "bad march spec"},
		{"inconsistent seed spec", `{"list":"list2","march":{"spec":"c(w0) c(r1)"}}`, "bad march spec"},
		{"unknown field", `{"list":"list2","bogus":1}`, "bad request body"},
	}
	for _, c := range cases {
		w := do(t, s, "POST", "/v1/optimize", c.body)
		if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), c.wantErr) {
			t.Errorf("%s: status %d body %s", c.name, w.Code, w.Body.String())
		}
	}
}
