package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"marchgen"
	"marchgen/internal/iofault"
	"marchgen/internal/store"
)

// resultCache is a concurrency-safe LRU over content-addressed result
// documents. Keys are canonical hashes (see generateKey), values are the
// exact marshaled response bytes — a cache hit therefore returns
// byte-identical output to the request that populated it.
//
// With a persistence directory set, the cache is write-through: every Put
// lands the entry as <dir>/<key>.json via the store's atomic write, an
// eviction deletes its file, and warmStart reloads the most recent
// CacheSize entries at boot — a restarted node serves its working set
// from the first request. Keys are content addresses, so a reloaded entry
// can never be wrong, only unused (a schema bump changes every key and
// strands the old files until eviction cleans them up).
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string // "" disables persistence
	logf  func(format string, args ...any)
}

type cacheEntry struct {
	key string
	val []byte
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 128
	}
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached bytes and refreshes the entry's recency. The
// returned slice is shared and must be treated as immutable.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes an entry, evicting the least recently used one
// when the cache is over capacity. With persistence enabled the entry is
// also written through to disk (atomically; a write failure is logged and
// the entry stays memory-only) and evicted entries lose their files.
func (c *resultCache) Put(key string, val []byte) {
	c.put(key, val, true)
}

func (c *resultCache) put(key string, val []byte, persist bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if persist && c.dir != "" {
		if err := store.WriteFileAtomicFS(iofault.OS{}, c.entryPath(key), val); err != nil && c.logf != nil {
			c.logf("cache persist %s: %v", key, err)
		}
	}
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		k := oldest.Value.(*cacheEntry).key
		delete(c.items, k)
		if c.dir != "" {
			// Best-effort: a leftover file only costs disk until the key is
			// evicted again; it can never serve a wrong answer.
			_ = os.Remove(c.entryPath(k))
		}
	}
}

func (c *resultCache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// enablePersist turns on write-through persistence rooted at dir and
// warm-starts the LRU from the entries already there: the newest (by
// mtime) up-to-capacity files are loaded, oldest first, so recency order
// survives the restart. Unreadable files and stray names are skipped.
func (c *resultCache) enablePersist(dir string, logf func(format string, args ...any)) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: cache dir: %w", err)
	}
	c.mu.Lock()
	c.dir = dir
	c.logf = logf
	max := c.max
	c.mu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("service: cache warm-start: %w", err)
	}
	type candidate struct {
		key   string
		path  string
		mtime int64
	}
	var cands []candidate
	for _, e := range entries {
		name := e.Name()
		key, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() || !isHexKey(key) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		cands = append(cands, candidate{key: key, path: filepath.Join(dir, name), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime < cands[j].mtime })
	if len(cands) > max {
		cands = cands[len(cands)-max:]
	}
	loaded := 0
	for _, cand := range cands {
		val, err := os.ReadFile(cand.path)
		if err != nil || len(val) == 0 {
			continue
		}
		c.put(cand.key, val, false)
		loaded++
	}
	if logf != nil && loaded > 0 {
		logf("cache warm-start: %d entries from %s", loaded, dir)
	}
	return nil
}

// isHexKey reports whether s looks like one of our SHA-256 content
// addresses; anything else in the cache directory is ignored.
func isHexKey(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// generateKeySchema versions the key derivation; bump it whenever the
// result document or the canonical encodings change shape, so stale cache
// entries can never be served across an upgrade. v3: march.Test JSON gained
// origin/provenance fields.
const generateKeySchema = "marchd/generate/v3"

// generateKey derives the content address of a generation request: a
// SHA-256 over the canonical JSON of the fault list and the canonicalized
// options (stable field order, defaults filled in, result-irrelevant knobs
// normalized — see Options.Canonical). Requests that differ only in
// spelling (named list vs. the same faults inline, omitted vs. explicit
// defaults) therefore share one cache entry.
func generateKey(faults []marchgen.Fault, opts marchgen.Options) (string, error) {
	payload := struct {
		Schema  string           `json:"schema"`
		Faults  []marchgen.Fault `json:"faults"`
		Options marchgen.Options `json:"options"`
	}{generateKeySchema, faults, opts.Canonical()}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("service: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// verifyKeySchema versions the /v1/verify key derivation; bump it on any
// shape change of the verify result document or its canonical inputs.
// v2: march.Test JSON gained origin/provenance fields.
const verifyKeySchema = "marchd/verify/v2"

// verifyKey derives the content address of a verification request: the
// march test, the fault list and the canonicalized simulator configuration.
func verifyKey(t marchgen.March, faults []marchgen.Fault, cfg marchgen.SimConfig) (string, error) {
	payload := struct {
		Schema string             `json:"schema"`
		March  marchgen.March     `json:"march"`
		Faults []marchgen.Fault   `json:"faults"`
		Config marchgen.SimConfig `json:"config"`
	}{verifyKeySchema, t, faults, cfg.Canonical()}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("service: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// diagnoseKeySchema versions the /v1/diagnose key derivation. The endpoint
// is new in this schema, so v1 covers its whole history.
const diagnoseKeySchema = "marchd/diagnose/v1"

// diagnoseObservation is the canonical form of one observation for key
// derivation: the resolved march test — reduced to its name and element
// string, so library metadata (source, origin) never changes the address —
// plus the sorted syndrome key.
type diagnoseObservation struct {
	Name     string `json:"name"`
	Spec     string `json:"spec"`
	Syndrome string `json:"syndrome"`
}

// diagnoseKey derives the content address of a diagnosis request: the fault
// list, the canonicalized simulator configuration and the observation
// sequence (tests plus sorted syndromes). Localization is a pure function of
// these inputs, so equal keys mean byte-identical candidate sets.
func diagnoseKey(faults []marchgen.Fault, cfg marchgen.SimConfig, obs []diagnoseObservation) (string, error) {
	payload := struct {
		Schema       string                `json:"schema"`
		Faults       []marchgen.Fault      `json:"faults"`
		Config       marchgen.SimConfig    `json:"config"`
		Observations []diagnoseObservation `json:"observations"`
	}{diagnoseKeySchema, faults, cfg.Canonical(), obs}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("service: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// optimizeKeySchema versions the /v1/optimize key derivation; bump it on any
// shape change of the optimize result document or its canonical inputs.
const optimizeKeySchema = "marchd/optimize/v1"

// optimizeKey derives the content address of an optimization request: the
// fault list, the resolved seed test (or the canonical generator options
// when the seed is generated), and every search knob that can change the
// winner. An optimizer run is a pure function of these inputs, so equal
// keys really do mean byte-identical results.
func optimizeKey(faults []marchgen.Fault, seedTest *marchgen.March, opts marchgen.OptimizeOptions) (string, error) {
	payload := struct {
		Schema    string            `json:"schema"`
		Faults    []marchgen.Fault  `json:"faults"`
		SeedTest  *marchgen.March   `json:"seed_test,omitempty"`
		Generator *marchgen.Options `json:"generator,omitempty"`
		Name      string            `json:"name"`
		Seed      int64             `json:"seed"`
		Budget    int               `json:"budget"`
		Beam      int               `json:"beam"`
		Restarts  int               `json:"restarts"`
		BISTCells int               `json:"bist_cells"`
		// BISTWeight joined in PR 10; omitempty keeps every pre-existing
		// key (weight 0) byte-identical.
		BISTWeight float64 `json:"bist_weight,omitempty"`
	}{
		Schema:     optimizeKeySchema,
		Faults:     faults,
		SeedTest:   seedTest,
		Name:       opts.Name,
		Seed:       opts.Seed,
		Budget:     opts.Budget,
		Beam:       opts.BeamWidth,
		Restarts:   opts.Restarts,
		BISTCells:  opts.BISTCells,
		BISTWeight: opts.BISTWeight,
	}
	if seedTest == nil {
		gen := opts.Generator.Canonical()
		payload.Generator = &gen
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("service: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
