package service

import (
	"encoding/json"
	"fmt"

	"marchgen"
)

// faultSpec is the part of a request that names the target faults: either a
// named shipped list ("list1", "list2", "simple", ...) or an inline list of
// fault documents in the linked-fault wire form
// ({"kind":"LF1","fps":["<...>","<...>"]}). Exactly one must be present.
type faultSpec struct {
	List   string           `json:"list,omitempty"`
	Faults []marchgen.Fault `json:"faults,omitempty"`
}

// resolve returns the concrete fault list the spec names.
func (fs faultSpec) resolve() ([]marchgen.Fault, error) {
	switch {
	case fs.List != "" && len(fs.Faults) > 0:
		return nil, fmt.Errorf("request names both a fault list %q and inline faults; pick one", fs.List)
	case fs.List != "":
		return marchgen.FaultListByName(fs.List)
	case len(fs.Faults) > 0:
		return fs.Faults, nil
	}
	return nil, fmt.Errorf("request names no faults: set \"list\" or \"faults\"")
}

// marchSpec names a march test: a library test by name, or an inline
// sequence in the conventional notation (with an optional name as label).
type marchSpec struct {
	Name string `json:"name,omitempty"`
	Spec string `json:"spec,omitempty"`
}

// resolve returns the concrete march test the spec names, validated for
// march consistency.
func (ms marchSpec) resolve() (marchgen.March, error) {
	var t marchgen.March
	switch {
	case ms.Spec != "":
		name := ms.Name
		if name == "" {
			name = "custom"
		}
		parsed, err := marchgen.ParseMarch(name, ms.Spec)
		if err != nil {
			return t, err
		}
		t = parsed
	case ms.Name != "":
		lib, ok := marchgen.MarchByName(ms.Name)
		if !ok {
			return t, fmt.Errorf("unknown march test %q (GET /v1/library lists the shipped tests)", ms.Name)
		}
		t = lib
	default:
		return t, fmt.Errorf("request names no march test: set \"march.name\" or \"march.spec\"")
	}
	if err := t.CheckConsistency(); err != nil {
		return t, fmt.Errorf("inconsistent march test: %v", err)
	}
	return t, nil
}

// generateRequest is the POST /v1/generate body.
type generateRequest struct {
	faultSpec
	// Options configures the generator; omitted fields take their
	// documented defaults (the canonical form is what the job runs and what
	// the cache key hashes).
	Options *marchgen.Options `json:"options,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 (or a value
	// beyond the server's cap) means the server's maximum job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// simulateRequest is the POST /v1/simulate body.
type simulateRequest struct {
	March marchSpec `json:"march"`
	faultSpec
	// Config selects the simulator configuration; omitted means the
	// exhaustive default (4 cells, every placement, init and order).
	Config *marchgen.SimConfig `json:"config,omitempty"`
}

// verifyRequest is the POST /v1/verify body: a march test, a fault list and
// a simulator configuration to cross-check between the production simulator
// and the independent reference oracle.
type verifyRequest struct {
	March marchSpec `json:"march"`
	faultSpec
	// Config selects the simulator configuration; omitted means the
	// exhaustive default (4 cells, every placement, init and order).
	Config *marchgen.SimConfig `json:"config,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 (or a value
	// beyond the server's cap) means the server's maximum job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// verifyAxisJSON is one axis cross-check section of a verify result: the
// axis dimension, the fault space checked, and every verdict divergence
// between the production implementation and its independent reference.
type verifyAxisJSON struct {
	Width       int      `json:"width,omitempty"`
	Ports       int      `json:"ports,omitempty"`
	Faults      int      `json:"faults"`
	Agree       bool     `json:"agree"`
	Divergences []string `json:"divergences"`
}

// marshalVerifyResult renders the cached (and returned) result document of
// a verification job: the resolved test, the cross-check scope, and every
// divergence between the two simulators (an empty list means bit-for-bit
// agreement). The word and mport sections appear only when the config asks
// for those axes, so pre-axis responses keep their exact shape.
func marshalVerifyResult(test marchgen.March, faults int, cfg marchgen.SimConfig, diffs []marchgen.VerdictDiff, word, mport *verifyAxisJSON, key string) ([]byte, error) {
	if diffs == nil {
		diffs = []marchgen.VerdictDiff{}
	}
	out := struct {
		Test        marchgen.March         `json:"test"`
		Faults      int                    `json:"faults"`
		Config      marchgen.SimConfig     `json:"config"`
		Agree       bool                   `json:"agree"`
		Divergences []marchgen.VerdictDiff `json:"divergences"`
		Word        *verifyAxisJSON        `json:"word,omitempty"`
		Mport       *verifyAxisJSON        `json:"mport,omitempty"`
		Key         string                 `json:"cache_key"`
	}{test, faults, cfg, len(diffs) == 0, diffs, word, mport, key}
	return json.Marshal(out)
}

// optimizeRequest is the POST /v1/optimize body: a fault list, an optional
// explicit seed test (a library test by name or an inline sequence;
// omitted means the server generates the seed with the given generator
// options), and the search knobs. Omitted knobs take the optimizer's
// documented defaults, filled in before the cache key is derived so
// spelling variants share cache entries.
type optimizeRequest struct {
	faultSpec
	// March optionally names the seed test; omitted means generate one.
	March *marchSpec `json:"march,omitempty"`
	// Name labels the optimized test ("March OPT" if empty).
	Name string `json:"name,omitempty"`
	// Seed is the rng seed (default 1); equal requests reproduce bit-for-bit.
	Seed int64 `json:"seed,omitempty"`
	// Budget bounds coverage evaluations (default 2000).
	Budget int `json:"budget,omitempty"`
	// BeamWidth is the beam size (default 4).
	BeamWidth int `json:"beam_width,omitempty"`
	// Restarts is the annealing restart count (default 3).
	Restarts int `json:"restarts,omitempty"`
	// BISTCells enables the BIST cycle tie-break on that memory size.
	BISTCells int `json:"bist_cells,omitempty"`
	// BISTWeight promotes BIST cycles from tie-break to fitness term:
	// candidates are ordered by length + weight × cycles. 0 keeps the
	// pure-length search.
	BISTWeight float64 `json:"bist_weight,omitempty"`
	// Generator configures seed generation when March is omitted.
	Generator *marchgen.Options `json:"generator,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 (or a value
	// beyond the server's cap) means the server's maximum job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// options resolves the request into explicit optimizer options: the seed
// test (nil when generated server-side) and every knob with its default
// filled in.
func (req optimizeRequest) options() (*marchgen.March, marchgen.OptimizeOptions, error) {
	opts := marchgen.OptimizeOptions{
		Name:       req.Name,
		Seed:       req.Seed,
		Budget:     req.Budget,
		BeamWidth:  req.BeamWidth,
		Restarts:   req.Restarts,
		BISTCells:  req.BISTCells,
		BISTWeight: req.BISTWeight,
	}
	if opts.Name == "" {
		opts.Name = "March OPT"
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = 2000
	}
	if opts.BeamWidth <= 0 {
		opts.BeamWidth = 4
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 3
	}
	if req.March != nil {
		t, err := req.March.resolve()
		if err != nil {
			return nil, opts, err
		}
		opts.SeedTest = &t
		return &t, opts, nil
	}
	if req.Generator != nil {
		opts.Generator = *req.Generator
	}
	opts.Generator = opts.Generator.Canonical()
	return nil, opts, nil
}

// optimizeStatsJSON is the wire form of optimizer statistics.
type optimizeStatsJSON struct {
	Faults      int     `json:"faults"`
	SeedLength  int     `json:"seed_length"`
	Evaluations int     `json:"evaluations"`
	Accepted    int     `json:"accepted"`
	Restarts    int     `json:"restarts"`
	Improved    bool    `json:"improved"`
	Seconds     float64 `json:"search_seconds"`
}

// marshalOptimizeResult renders the cached (and returned) result document
// of an optimization job: the certified winner with its provenance, the
// seed it started from, the certification report and the run statistics.
func marshalOptimizeResult(res marchgen.OptimizeResult, key string) ([]byte, error) {
	out := struct {
		Test   marchgen.March    `json:"test"`
		Seed   marchgen.March    `json:"seed"`
		Report marchgen.Report   `json:"report"`
		Stats  optimizeStatsJSON `json:"stats"`
		Key    string            `json:"cache_key"`
	}{
		Test:   res.Test,
		Seed:   res.Seed,
		Report: res.Report,
		Stats: optimizeStatsJSON{
			Faults:      res.Stats.Faults,
			SeedLength:  res.Stats.SeedLength,
			Evaluations: res.Stats.Evaluations,
			Accepted:    res.Stats.Accepted,
			Restarts:    res.Stats.Restarts,
			Improved:    res.Stats.Improved,
			Seconds:     res.Stats.Duration.Seconds(),
		},
		Key: key,
	}
	return json.Marshal(out)
}

// detectsRequest is the POST /v1/detects body.
type detectsRequest struct {
	March marchSpec `json:"march"`
	// Fault is the single fault to check, in the linked-fault wire form.
	Fault  *marchgen.Fault     `json:"fault"`
	Config *marchgen.SimConfig `json:"config,omitempty"`
}

// statsJSON is the wire form of generation statistics.
type statsJSON struct {
	Faults               int     `json:"faults"`
	WalkerElements       int     `json:"walker_elements"`
	WalkerOps            int     `json:"walker_ops"`
	RepairElements       int     `json:"repair_elements"`
	LengthBeforeMinimize int     `json:"length_before_minimize"`
	Simulations          int     `json:"simulations"`
	Seconds              float64 `json:"generation_seconds"`
}

// marshalGenerateResult renders the cached (and returned) result document
// of a generation job. The document is marshaled exactly once per cache
// entry; repeat requests receive these bytes verbatim.
func marshalGenerateResult(res marchgen.Result, opts marchgen.Options, key string) ([]byte, error) {
	out := struct {
		Test    marchgen.March   `json:"test"`
		Report  marchgen.Report  `json:"report"`
		Options marchgen.Options `json:"options"`
		// Word and Mport carry the axis evaluations; absent (and therefore
		// invisible to pre-axis clients) at width=1/ports=1.
		Word  *marchgen.WordResult  `json:"word,omitempty"`
		Mport *marchgen.MportResult `json:"mport,omitempty"`
		Stats statsJSON             `json:"stats"`
		Key   string                `json:"cache_key"`
	}{
		Test:    res.Test,
		Report:  res.Report,
		Options: opts,
		Word:    res.Word,
		Mport:   res.Mport,
		Stats: statsJSON{
			Faults:               res.Stats.Faults,
			WalkerElements:       res.Stats.WalkerElements,
			WalkerOps:            res.Stats.WalkerOps,
			RepairElements:       res.Stats.RepairElements,
			LengthBeforeMinimize: res.Stats.LengthBeforeMinimize,
			Simulations:          res.Stats.Simulations,
			Seconds:              res.Stats.Duration.Seconds(),
		},
		Key: key,
	}
	return json.Marshal(out)
}

// observationSpec is one executed march test plus the syndrome the tester
// recorded, as it arrives in a diagnosis request.
type observationSpec struct {
	March marchSpec `json:"march"`
	// Syndrome lists the failing reads in the "M<elem>#<op>@<addr>" form the
	// simulator's trace renders.
	Syndrome []string `json:"syndrome"`
}

// diagnoseRequest is the POST /v1/diagnose body: the fault-model space to
// search, the memory model, and the observation sequence (executed tests
// with their syndromes).
type diagnoseRequest struct {
	faultSpec
	// Config selects the memory model; omitted means the 4-cell default.
	Config *marchgen.SimConfig `json:"config,omitempty"`
	// Observations is the executed-test/syndrome sequence, in execution
	// order. At least one is required.
	Observations []observationSpec `json:"observations"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 (or a value
	// beyond the server's cap) means the server's maximum job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// resolveObservations parses and resolves the observation sequence into the
// diagnosis engine's form plus the canonical form the cache key hashes.
func (req diagnoseRequest) resolveObservations() ([]marchgen.DiagnoseObservation, []diagnoseObservation, error) {
	if len(req.Observations) == 0 {
		return nil, nil, fmt.Errorf("request has no observations: set \"observations\" to at least one executed test with its syndrome")
	}
	obs := make([]marchgen.DiagnoseObservation, 0, len(req.Observations))
	canon := make([]diagnoseObservation, 0, len(req.Observations))
	for i, o := range req.Observations {
		t, err := o.March.resolve()
		if err != nil {
			return nil, nil, fmt.Errorf("observation %d: %v", i, err)
		}
		syn, err := marchgen.ParseSyndrome(o.Syndrome)
		if err != nil {
			return nil, nil, fmt.Errorf("observation %d: %v", i, err)
		}
		obs = append(obs, marchgen.DiagnoseObservation{Test: t, Syndrome: syn})
		canon = append(canon, diagnoseObservation{Name: t.Name, Spec: t.ASCII(), Syndrome: syn.Key()})
	}
	return obs, canon, nil
}

// diagnoseCandidateJSON is the wire form of one surviving fault instance.
type diagnoseCandidateJSON struct {
	Fault     marchgen.Fault `json:"fault"`
	Placement []int          `json:"placement"`
	ID        string         `json:"id"`
}

// nextTestJSON names the follow-up march the adaptive strategy recommends.
type nextTestJSON struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
}

// marshalDiagnoseResult renders the cached (and returned) result document of
// a diagnosis job: the surviving candidate set, its status (localized /
// ambiguous / empty), and — while ambiguous — the follow-up march that best
// splits the survivors.
func marshalDiagnoseResult(cands []marchgen.DiagnoseCandidate, next *marchgen.March, observations int, cfg marchgen.SimConfig, key string) ([]byte, error) {
	wireCands := make([]diagnoseCandidateJSON, 0, len(cands))
	for _, c := range cands {
		pl := c.Placement
		if pl == nil {
			pl = []int{}
		}
		wireCands = append(wireCands, diagnoseCandidateJSON{Fault: c.Fault, Placement: pl, ID: c.String()})
	}
	status := "ambiguous"
	switch len(cands) {
	case 0:
		status = "empty"
	case 1:
		status = "localized"
	}
	var wireNext *nextTestJSON
	if next != nil {
		wireNext = &nextTestJSON{Name: next.Name, Spec: next.ASCII()}
	}
	out := struct {
		Candidates   []diagnoseCandidateJSON `json:"candidates"`
		Status       string                  `json:"status"`
		Next         *nextTestJSON           `json:"next,omitempty"`
		Observations int                     `json:"observations"`
		Config       marchgen.SimConfig      `json:"config"`
		Key          string                  `json:"cache_key"`
	}{wireCands, status, wireNext, observations, cfg, key}
	return json.Marshal(out)
}
