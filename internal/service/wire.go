package service

import (
	"encoding/json"
	"fmt"

	"marchgen"
)

// faultSpec is the part of a request that names the target faults: either a
// named shipped list ("list1", "list2", "simple", ...) or an inline list of
// fault documents in the linked-fault wire form
// ({"kind":"LF1","fps":["<...>","<...>"]}). Exactly one must be present.
type faultSpec struct {
	List   string           `json:"list,omitempty"`
	Faults []marchgen.Fault `json:"faults,omitempty"`
}

// resolve returns the concrete fault list the spec names.
func (fs faultSpec) resolve() ([]marchgen.Fault, error) {
	switch {
	case fs.List != "" && len(fs.Faults) > 0:
		return nil, fmt.Errorf("request names both a fault list %q and inline faults; pick one", fs.List)
	case fs.List != "":
		return marchgen.FaultListByName(fs.List)
	case len(fs.Faults) > 0:
		return fs.Faults, nil
	}
	return nil, fmt.Errorf("request names no faults: set \"list\" or \"faults\"")
}

// marchSpec names a march test: a library test by name, or an inline
// sequence in the conventional notation (with an optional name as label).
type marchSpec struct {
	Name string `json:"name,omitempty"`
	Spec string `json:"spec,omitempty"`
}

// resolve returns the concrete march test the spec names, validated for
// march consistency.
func (ms marchSpec) resolve() (marchgen.March, error) {
	var t marchgen.March
	switch {
	case ms.Spec != "":
		name := ms.Name
		if name == "" {
			name = "custom"
		}
		parsed, err := marchgen.ParseMarch(name, ms.Spec)
		if err != nil {
			return t, err
		}
		t = parsed
	case ms.Name != "":
		lib, ok := marchgen.MarchByName(ms.Name)
		if !ok {
			return t, fmt.Errorf("unknown march test %q (GET /v1/library lists the shipped tests)", ms.Name)
		}
		t = lib
	default:
		return t, fmt.Errorf("request names no march test: set \"march.name\" or \"march.spec\"")
	}
	if err := t.CheckConsistency(); err != nil {
		return t, fmt.Errorf("inconsistent march test: %v", err)
	}
	return t, nil
}

// generateRequest is the POST /v1/generate body.
type generateRequest struct {
	faultSpec
	// Options configures the generator; omitted fields take their
	// documented defaults (the canonical form is what the job runs and what
	// the cache key hashes).
	Options *marchgen.Options `json:"options,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 (or a value
	// beyond the server's cap) means the server's maximum job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// simulateRequest is the POST /v1/simulate body.
type simulateRequest struct {
	March marchSpec `json:"march"`
	faultSpec
	// Config selects the simulator configuration; omitted means the
	// exhaustive default (4 cells, every placement, init and order).
	Config *marchgen.SimConfig `json:"config,omitempty"`
}

// verifyRequest is the POST /v1/verify body: a march test, a fault list and
// a simulator configuration to cross-check between the production simulator
// and the independent reference oracle.
type verifyRequest struct {
	March marchSpec `json:"march"`
	faultSpec
	// Config selects the simulator configuration; omitted means the
	// exhaustive default (4 cells, every placement, init and order).
	Config *marchgen.SimConfig `json:"config,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 (or a value
	// beyond the server's cap) means the server's maximum job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// marshalVerifyResult renders the cached (and returned) result document of
// a verification job: the resolved test, the cross-check scope, and every
// divergence between the two simulators (an empty list means bit-for-bit
// agreement).
func marshalVerifyResult(test marchgen.March, faults int, cfg marchgen.SimConfig, diffs []marchgen.VerdictDiff, key string) ([]byte, error) {
	if diffs == nil {
		diffs = []marchgen.VerdictDiff{}
	}
	out := struct {
		Test        marchgen.March         `json:"test"`
		Faults      int                    `json:"faults"`
		Config      marchgen.SimConfig     `json:"config"`
		Agree       bool                   `json:"agree"`
		Divergences []marchgen.VerdictDiff `json:"divergences"`
		Key         string                 `json:"cache_key"`
	}{test, faults, cfg, len(diffs) == 0, diffs, key}
	return json.Marshal(out)
}

// optimizeRequest is the POST /v1/optimize body: a fault list, an optional
// explicit seed test (a library test by name or an inline sequence;
// omitted means the server generates the seed with the given generator
// options), and the search knobs. Omitted knobs take the optimizer's
// documented defaults, filled in before the cache key is derived so
// spelling variants share cache entries.
type optimizeRequest struct {
	faultSpec
	// March optionally names the seed test; omitted means generate one.
	March *marchSpec `json:"march,omitempty"`
	// Name labels the optimized test ("March OPT" if empty).
	Name string `json:"name,omitempty"`
	// Seed is the rng seed (default 1); equal requests reproduce bit-for-bit.
	Seed int64 `json:"seed,omitempty"`
	// Budget bounds coverage evaluations (default 2000).
	Budget int `json:"budget,omitempty"`
	// BeamWidth is the beam size (default 4).
	BeamWidth int `json:"beam_width,omitempty"`
	// Restarts is the annealing restart count (default 3).
	Restarts int `json:"restarts,omitempty"`
	// BISTCells enables the BIST cycle tie-break on that memory size.
	BISTCells int `json:"bist_cells,omitempty"`
	// Generator configures seed generation when March is omitted.
	Generator *marchgen.Options `json:"generator,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 (or a value
	// beyond the server's cap) means the server's maximum job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// options resolves the request into explicit optimizer options: the seed
// test (nil when generated server-side) and every knob with its default
// filled in.
func (req optimizeRequest) options() (*marchgen.March, marchgen.OptimizeOptions, error) {
	opts := marchgen.OptimizeOptions{
		Name:      req.Name,
		Seed:      req.Seed,
		Budget:    req.Budget,
		BeamWidth: req.BeamWidth,
		Restarts:  req.Restarts,
		BISTCells: req.BISTCells,
	}
	if opts.Name == "" {
		opts.Name = "March OPT"
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = 2000
	}
	if opts.BeamWidth <= 0 {
		opts.BeamWidth = 4
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 3
	}
	if req.March != nil {
		t, err := req.March.resolve()
		if err != nil {
			return nil, opts, err
		}
		opts.SeedTest = &t
		return &t, opts, nil
	}
	if req.Generator != nil {
		opts.Generator = *req.Generator
	}
	opts.Generator = opts.Generator.Canonical()
	return nil, opts, nil
}

// optimizeStatsJSON is the wire form of optimizer statistics.
type optimizeStatsJSON struct {
	Faults      int     `json:"faults"`
	SeedLength  int     `json:"seed_length"`
	Evaluations int     `json:"evaluations"`
	Accepted    int     `json:"accepted"`
	Restarts    int     `json:"restarts"`
	Improved    bool    `json:"improved"`
	Seconds     float64 `json:"search_seconds"`
}

// marshalOptimizeResult renders the cached (and returned) result document
// of an optimization job: the certified winner with its provenance, the
// seed it started from, the certification report and the run statistics.
func marshalOptimizeResult(res marchgen.OptimizeResult, key string) ([]byte, error) {
	out := struct {
		Test   marchgen.March    `json:"test"`
		Seed   marchgen.March    `json:"seed"`
		Report marchgen.Report   `json:"report"`
		Stats  optimizeStatsJSON `json:"stats"`
		Key    string            `json:"cache_key"`
	}{
		Test:   res.Test,
		Seed:   res.Seed,
		Report: res.Report,
		Stats: optimizeStatsJSON{
			Faults:      res.Stats.Faults,
			SeedLength:  res.Stats.SeedLength,
			Evaluations: res.Stats.Evaluations,
			Accepted:    res.Stats.Accepted,
			Restarts:    res.Stats.Restarts,
			Improved:    res.Stats.Improved,
			Seconds:     res.Stats.Duration.Seconds(),
		},
		Key: key,
	}
	return json.Marshal(out)
}

// detectsRequest is the POST /v1/detects body.
type detectsRequest struct {
	March marchSpec `json:"march"`
	// Fault is the single fault to check, in the linked-fault wire form.
	Fault  *marchgen.Fault     `json:"fault"`
	Config *marchgen.SimConfig `json:"config,omitempty"`
}

// statsJSON is the wire form of generation statistics.
type statsJSON struct {
	Faults               int     `json:"faults"`
	WalkerElements       int     `json:"walker_elements"`
	WalkerOps            int     `json:"walker_ops"`
	RepairElements       int     `json:"repair_elements"`
	LengthBeforeMinimize int     `json:"length_before_minimize"`
	Simulations          int     `json:"simulations"`
	Seconds              float64 `json:"generation_seconds"`
}

// marshalGenerateResult renders the cached (and returned) result document
// of a generation job. The document is marshaled exactly once per cache
// entry; repeat requests receive these bytes verbatim.
func marshalGenerateResult(res marchgen.Result, opts marchgen.Options, key string) ([]byte, error) {
	out := struct {
		Test    marchgen.March   `json:"test"`
		Report  marchgen.Report  `json:"report"`
		Options marchgen.Options `json:"options"`
		Stats   statsJSON        `json:"stats"`
		Key     string           `json:"cache_key"`
	}{
		Test:    res.Test,
		Report:  res.Report,
		Options: opts,
		Stats: statsJSON{
			Faults:               res.Stats.Faults,
			WalkerElements:       res.Stats.WalkerElements,
			WalkerOps:            res.Stats.WalkerOps,
			RepairElements:       res.Stats.RepairElements,
			LengthBeforeMinimize: res.Stats.LengthBeforeMinimize,
			Simulations:          res.Stats.Simulations,
			Seconds:              res.Stats.Duration.Seconds(),
		},
		Key: key,
	}
	return json.Marshal(out)
}
