package service

import (
	"context"

	"marchgen"
	"marchgen/internal/mport"
	"marchgen/internal/oracle"
	"marchgen/internal/word"
)

// This file wires the word-width and port-count axes into the simulate and
// verify endpoints. Both sections are nil at the bit-oriented/single-port
// defaults, so pre-axis requests keep byte-identical responses.

// crossCheckWordAxis runs the word-axis differential check of a verify job:
// internal/word versus the mask-based reference in internal/oracle, over the
// march-testable intra-word faults of the given width.
func crossCheckWordAxis(ctx context.Context, t marchgen.March, width int) (*verifyAxisJSON, error) {
	if width <= 1 {
		return nil, nil
	}
	bgs, err := word.Backgrounds(width)
	if err != nil {
		return nil, err
	}
	faults := word.TestableIntraWordFaults(width)
	cfg := word.Config{Words: 2, Width: width}
	diffs, err := oracle.CrossCheckWord(t, faults, bgs, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &verifyAxisJSON{Width: width, Faults: len(faults), Agree: len(diffs) == 0, Divergences: []string{}}
	for _, d := range diffs {
		out.Divergences = append(out.Divergences, d.String())
	}
	return out, nil
}

// crossCheckMportAxis runs the two-port differential check of a verify job:
// internal/mport versus the event-based reference in internal/oracle, over
// the weak-fault catalog, on the lifted (port B idle) form of the test.
func crossCheckMportAxis(ctx context.Context, t marchgen.March, ports int) (*verifyAxisJSON, error) {
	if ports <= 1 {
		return nil, nil
	}
	lifted, err := mport.Lift(t)
	if err != nil {
		return nil, err
	}
	catalog := mport.Catalog()
	diffs, err := oracle.CrossCheckMport(lifted, catalog, mport.Config{})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &verifyAxisJSON{Ports: ports, Faults: len(catalog), Agree: len(diffs) == 0, Divergences: []string{}}
	for _, d := range diffs {
		out.Divergences = append(out.Divergences, d.String())
	}
	return out, nil
}
