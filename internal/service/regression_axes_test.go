package service

import (
	"testing"

	"marchgen"
)

// The literal digests below were captured on the pre-axis build (before
// width/ports/transparent joined core.Options and sim.Config). They pin the
// PR's central compatibility promise: a bit-oriented single-port request is
// byte-identical everywhere — same canonical options, same cache keys — so
// every pre-existing cache entry, job id and campaign store stays valid.
const (
	prePRGenerateKeyList2  = "0f1eabe93608bcaa0a54deb0a8cd35150b3ff49df268858f163ea0b7fe7df4bc"
	prePRVerifyKeyMATSplus = "3db649b816d58a5a432a228660b424bb7f1393ae07dd746b5d8e2dc644016288"
)

// TestBitOrientedCacheKeysMatchPreAxisBuild pins the generate and verify
// cache keys of default (width=1/ports=1) requests to their pre-PR values:
// the axis fields must vanish from the canonical encoding at their defaults,
// whether omitted or spelled out.
func TestBitOrientedCacheKeysMatchPreAxisBuild(t *testing.T) {
	faults, err := marchgen.FaultListByName("list2")
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []marchgen.Options{
		{},
		{Width: 1, Ports: 1},
		{Width: 0, Ports: 0, Transparent: false},
	} {
		gk, err := generateKey(faults, opts.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if gk != prePRGenerateKeyList2 {
			t.Fatalf("generateKey(list2, %+v) = %s, want pre-PR %s", opts, gk, prePRGenerateKeyList2)
		}
	}

	test, ok := marchgen.MarchByName("MATS+")
	if !ok {
		t.Fatal("no MATS+ in the library")
	}
	sfaults, err := marchgen.FaultListByName("simple2")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []marchgen.SimConfig{
		defaultSimConfig(),
		func() marchgen.SimConfig { c := defaultSimConfig(); c.Width = 1; c.Ports = 1; return c }(),
	} {
		vk, err := verifyKey(test, sfaults, cfg.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if vk != prePRVerifyKeyMATSplus {
			t.Fatalf("verifyKey(MATS+, simple2, %+v) = %s, want pre-PR %s", cfg, vk, prePRVerifyKeyMATSplus)
		}
	}
}

// TestAxisRequestsGetDistinctCacheKeys is the converse: a non-default axis
// must change the key (a width-4 result must never be served to a width-1
// request).
func TestAxisRequestsGetDistinctCacheKeys(t *testing.T) {
	faults, err := marchgen.FaultListByName("list2")
	if err != nil {
		t.Fatal(err)
	}
	base, err := generateKey(faults, marchgen.Options{}.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"default": base}
	for name, opts := range map[string]marchgen.Options{
		"width4":       {Width: 4},
		"width4transp": {Width: 4, Transparent: true},
		"ports2":       {Ports: 2},
		"width4ports2": {Width: 4, Ports: 2},
	} {
		k, err := generateKey(faults, opts.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		for prev, pk := range seen {
			if pk == k {
				t.Fatalf("generateKey collision: %s == %s (%s)", name, prev, k)
			}
		}
		seen[name] = k
	}
}
