package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"testing"

	"marchgen"
	"marchgen/internal/diagnose"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// diagnoseDoc mirrors the wire form of a diagnosis result document.
type diagnoseDoc struct {
	Candidates []struct {
		Placement []int  `json:"placement"`
		ID        string `json:"id"`
	} `json:"candidates"`
	Status string `json:"status"`
	Next   *struct {
		Name string `json:"name"`
		Spec string `json:"spec"`
	} `json:"next,omitempty"`
	Observations int    `json:"observations"`
	Key          string `json:"cache_key"`
}

// deviceSyndrome plays the tester's role: it executes the march on a
// simulated device carrying the injected fault instance and returns the
// failing reads in wire form. It goes through diagnose.Build — the same
// canonical conventions (all-zero init, ⇕ resolved upward) the service's
// localization uses — so the test exchanges nothing with the server beyond
// what a real tester would: march specs out, syndromes back.
func deviceSyndrome(t *testing.T, m march.Test, truth linked.Fault, cell int) []string {
	t.Helper()
	d, err := diagnose.Build(m, []linked.Fault{truth}, sim.Config{Size: 4})
	if err != nil {
		t.Fatalf("device simulation of %s: %v", m.Name, err)
	}
	for _, e := range d.Entries {
		if e.Scenario.Placement[0] != cell {
			continue
		}
		ids := make([]string, 0, len(e.Syndrome))
		for r := range e.Syndrome {
			ids = append(ids, r.String())
		}
		sort.Strings(ids)
		return ids
	}
	t.Fatalf("no placement %d entry for %s", cell, m.Name)
	return nil
}

type obsWire struct {
	March    map[string]string `json:"march"`
	Syndrome []string          `json:"syndrome"`
}

func diagnoseBody(t *testing.T, list string, obs []obsWire) string {
	t.Helper()
	b, err := json.Marshal(struct {
		List         string    `json:"list"`
		Observations []obsWire `json:"observations"`
	}{list, obs})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// postDiagnose drives one POST /v1/diagnose round: miss → 202 → poll →
// result document (or, on a cache hit, the 200 body directly).
func postDiagnose(t *testing.T, s *Server, body string) (diagnoseDoc, string) {
	t.Helper()
	w := do(t, s, "POST", "/v1/diagnose", body)
	switch w.Code {
	case http.StatusOK:
		return decode[diagnoseDoc](t, w), w.Header().Get("X-Cache")
	case http.StatusAccepted:
		env := decode[jobEnvelope](t, w)
		if j := pollJob(t, s, env.Job.ID); j.Status != JobDone {
			t.Fatalf("diagnose job = %+v", j)
		}
		res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
		if res.Code != http.StatusOK {
			t.Fatalf("diagnose result: %d: %s", res.Code, res.Body.String())
		}
		return decode[diagnoseDoc](t, res), w.Header().Get("X-Cache")
	default:
		t.Fatalf("POST /v1/diagnose: %d: %s", w.Code, w.Body.String())
		return diagnoseDoc{}, ""
	}
}

// TestDiagnoseLocalizesInjectedFault is the PR's acceptance test: a write
// destructive fault is injected at cell 2 of a simulated 4-cell device, and
// the service localizes it from syndromes alone. The tester-side loop only
// ever executes marches the server recommends and reports which reads
// failed; after enough observations the candidate set must collapse to
// exactly the injected instance.
func TestDiagnoseLocalizesInjectedFault(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	truth, err := linked.NewSimple(fp.MustParseFP("<0w0/1/->")) // WDF0
	if err != nil {
		t.Fatal(err)
	}
	const cell = 2

	// The first executed test is MATS+ — deliberately a weak diagnoser, so
	// the adaptive half of the endpoint has real work to do.
	start, ok := marchgen.MarchByName("MATS+")
	if !ok {
		t.Fatal("no MATS+ in the library")
	}
	obs := []obsWire{{
		March:    map[string]string{"name": start.Name},
		Syndrome: deviceSyndrome(t, start, truth, cell),
	}}

	doc, _ := postDiagnose(t, s, diagnoseBody(t, "simple1", obs))
	if doc.Status != "ambiguous" {
		t.Fatalf("MATS+ alone: status %q (candidates %d), want ambiguous", doc.Status, len(doc.Candidates))
	}
	if doc.Next == nil || doc.Next.Spec == "" {
		t.Fatalf("ambiguous result carries no follow-up test: %+v", doc)
	}

	for round := 0; doc.Status == "ambiguous"; round++ {
		if round >= 6 {
			t.Fatalf("no convergence after %d rounds; candidates %d", round, len(doc.Candidates))
		}
		if doc.Next == nil {
			t.Fatalf("round %d: ambiguous with no follow-up (stable set): %+v", round, doc.Candidates)
		}
		next, err := marchgen.ParseMarch(doc.Next.Name, doc.Next.Spec)
		if err != nil {
			t.Fatalf("round %d: recommended spec %q does not parse: %v", round, doc.Next.Spec, err)
		}
		obs = append(obs, obsWire{
			March:    map[string]string{"name": doc.Next.Name, "spec": doc.Next.Spec},
			Syndrome: deviceSyndrome(t, next, truth, cell),
		})
		doc, _ = postDiagnose(t, s, diagnoseBody(t, "simple1", obs))
		if doc.Observations != len(obs) {
			t.Fatalf("round %d: observations = %d, want %d", round, doc.Observations, len(obs))
		}
	}

	if doc.Status != "localized" || len(doc.Candidates) != 1 {
		t.Fatalf("final status %q with %d candidates, want localized singleton", doc.Status, len(doc.Candidates))
	}
	got := doc.Candidates[0]
	want := fmt.Sprintf("%s@%d", truth.ID(), cell)
	if got.ID != want || len(got.Placement) != 1 || got.Placement[0] != cell {
		t.Fatalf("localized %q at %v, injected %q", got.ID, got.Placement, want)
	}
	if doc.Next != nil {
		t.Fatalf("localized result still recommends a follow-up: %+v", doc.Next)
	}

	// The same observation sequence again is a pure cache hit.
	doc2, xc := postDiagnose(t, s, diagnoseBody(t, "simple1", obs))
	if xc != "hit" {
		t.Fatalf("repeat POST: X-Cache %q, want hit", xc)
	}
	if doc2.Key != doc.Key || doc2.Status != "localized" {
		t.Fatalf("cache replay diverged: %+v vs %+v", doc2, doc)
	}
}

// TestDiagnoseContradictorySyndromes: a syndrome no fault model can produce
// must end empty, not error — real testers see defects outside the model
// space.
func TestDiagnoseContradictorySyndromes(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	obs := []obsWire{{
		March:    map[string]string{"name": "MATS+"},
		Syndrome: []string{"M0#0@0"}, // MATS+ element 0 is write-only: impossible
	}}
	doc, _ := postDiagnose(t, s, diagnoseBody(t, "simple1", obs))
	if doc.Status != "empty" || len(doc.Candidates) != 0 || doc.Next != nil {
		t.Fatalf("impossible syndrome: %+v, want empty with no follow-up", doc)
	}
}

// TestDiagnoseBadRequests pins the input validation of the endpoint.
func TestDiagnoseBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"no observations", `{"list":"simple1"}`},
		{"empty observations", `{"list":"simple1","observations":[]}`},
		{"no fault space", `{"observations":[{"march":{"name":"MATS+"},"syndrome":[]}]}`},
		{"unknown list", `{"list":"nope","observations":[{"march":{"name":"MATS+"},"syndrome":[]}]}`},
		{"unknown march", `{"list":"simple1","observations":[{"march":{"name":"March XYZ"},"syndrome":[]}]}`},
		{"malformed syndrome", `{"list":"simple1","observations":[{"march":{"name":"MATS+"},"syndrome":["bogus"]}]}`},
		{"unknown field", `{"list":"simple1","bogus":1,"observations":[{"march":{"name":"MATS+"},"syndrome":[]}]}`},
		{"not json", `{"list":`},
	}
	for _, tc := range cases {
		if w := do(t, s, "POST", "/v1/diagnose", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, w.Code)
		}
	}
	// Wrong method.
	if w := do(t, s, "GET", "/v1/diagnose", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", w.Code)
	}
}

// TestDiagnoseEquivalentSpellingsShareCacheKey: naming a march and spelling
// out its element string must hash to the same job — the cache key is built
// from the resolved test, not the request text.
func TestDiagnoseEquivalentSpellingsShareCacheKey(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	truth, err := linked.NewSimple(fp.MustParseFP("<0w0/1/->"))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := marchgen.MarchByName("MATS+")
	syn := deviceSyndrome(t, m, truth, 2)

	byName := diagnoseBody(t, "simple1", []obsWire{{March: map[string]string{"name": m.Name}, Syndrome: syn}})
	doc, _ := postDiagnose(t, s, byName)

	bySpec := diagnoseBody(t, "simple1", []obsWire{{March: map[string]string{"name": m.Name, "spec": m.ASCII()}, Syndrome: syn}})
	doc2, xc := postDiagnose(t, s, bySpec)
	if xc != "hit" {
		t.Fatalf("spelled-out spec missed the cache (X-Cache %q); keys %s vs %s", xc, doc.Key, doc2.Key)
	}
	if doc2.Key != doc.Key {
		t.Fatalf("equivalent spellings got distinct keys %s / %s", doc.Key, doc2.Key)
	}
	// Syndrome order must not matter either: reverse it.
	rev := append([]string(nil), syn...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) > 1 {
		reordered := diagnoseBody(t, "simple1", []obsWire{{March: map[string]string{"name": m.Name}, Syndrome: rev}})
		if _, xc := postDiagnose(t, s, reordered); xc != "hit" {
			t.Fatalf("reordered syndrome missed the cache (X-Cache %q)", xc)
		}
	}
}
