package service

import (
	"context"
	"net/http"

	"marchgen"
)

// handleDiagnose is POST /v1/diagnose: adaptive fault localization from
// observed syndromes (Wang et al.). The request carries the fault-model
// space and the syndromes of the march tests a tester has executed; the
// result is the candidate set of fault instances consistent with every
// observation, and — while the set is still ambiguous — the follow-up march
// that best splits it (minimizing the largest surviving ambiguity class).
// The tester runs that march, appends the new syndrome, and re-posts; the
// loop converges to a singleton or goes stable.
//
// Localization simulates a signature per candidate instance per observation
// — generation-grade work — so the endpoint is asynchronous like
// /v1/generate: a cache hit answers 200 with the stored document, a miss
// enqueues a job and answers 202 with the poll location.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	var req diagnoseRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	faults, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad fault spec: %v", err)
		return
	}
	obs, canon, err := req.resolveObservations()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad observations: %v", err)
		return
	}
	cfg := defaultSimConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	cfg = cfg.Canonical()
	key, err := diagnoseKey(faults, cfg, canon)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Applied after the key: lanes never change localization outcomes.
	cfg.DisableLanes = s.cfg.DisableLanes
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cache(true)
		w.Header().Set("X-Cache", "hit")
		writeRaw(w, http.StatusOK, body)
		return
	}
	s.metrics.cache(false)
	w.Header().Set("X-Cache", "miss")

	timeout, err := requestTimeout(r, req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, created, err := s.lookupOrSubmit(classDiagnose, key, timeout,
		func(ctx context.Context) ([]byte, error) {
			cands, err := marchgen.DiagnoseLocalize(faults, obs, cfg)
			if err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var next *marchgen.March
			if len(cands) > 1 {
				exclude := make(map[string]bool, len(obs))
				for _, o := range obs {
					exclude[o.Test.Name] = true
				}
				t, ok, err := marchgen.DiagnoseNextTest(cands, marchgen.Library(), exclude, cfg)
				if err != nil {
					return nil, err
				}
				if ok {
					next = &t
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			body, err := marshalDiagnoseResult(cands, next, len(obs), cfg, key)
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, body)
			s.metrics.diagnoseDone(len(cands) == 1)
			return body, nil
		})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if created {
		s.metrics.jobSubmitted()
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, struct {
		Job  Job    `json:"job"`
		Poll string `json:"poll"`
	}{j.snapshot(false), "/v1/jobs/" + j.id})
}
