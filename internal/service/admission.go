package service

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// This file is the overload-resilience layer of marchd (DESIGN.md §15):
// an admission controller that sits between the HTTP handlers and the job
// engine. Its job is to keep the service answering — cheaply for cheap
// requests, honestly for expensive ones — when offered load exceeds
// capacity, instead of letting the queue fill and every latency collapse
// together.
//
// The model:
//
//   - Work is partitioned into classes (generate, simulate, verify,
//     optimize, campaign) with per-class concurrency + queue-depth
//     bounds, so one expensive class cannot monopolize the shared worker
//     pool's queue.
//   - A CoDel-style detector watches the queue wait of every dequeued
//     job. Sustained waits above the target over a full interval flip
//     the controller into "dropping" state; the admission deadline then
//     tightens by the CoDel control law (interval/√n) until waits drop
//     back under the target.
//   - Pressure is graded ok → degraded → overloaded, and classes shed in
//     cost order: cold generate/optimize/campaign first (degraded),
//     simulate/verify only under overload. Cached reads, /v1/library,
//     job polling, /healthz and /metrics are never admission-controlled:
//     the cheap path stays green throughout.
//   - A shed answers HTTP 429 with a Retry-After derived from the
//     observed drain rate (how fast jobs have actually been completing),
//     jittered upward so a thundering herd of shed clients does not
//     return in lockstep.

// admitClass partitions the workload by cost profile; the admission
// controller budgets and sheds per class.
type admitClass string

// The request classes under admission control.
const (
	classGenerate admitClass = "generate"
	classSimulate admitClass = "simulate"
	classVerify   admitClass = "verify"
	classOptimize admitClass = "optimize"
	classCampaign admitClass = "campaign"
	classDiagnose admitClass = "diagnose"
)

// admitClasses lists every class (stable order for snapshots).
var admitClasses = []admitClass{classGenerate, classSimulate, classVerify, classOptimize, classCampaign, classDiagnose}

// pressureLevel grades the service's congestion state.
type pressureLevel int

// The degrade ladder. Healthz reports these as ok | degraded | overloaded.
const (
	pressureOK pressureLevel = iota
	pressureDegraded
	pressureOverloaded
)

func (p pressureLevel) String() string {
	switch p {
	case pressureDegraded:
		return "degraded"
	case pressureOverloaded:
		return "overloaded"
	}
	return "ok"
}

// shedAt returns the pressure level at which the class is shed: the shed
// order of the degrade ladder. Cold generation and optimization burn
// seconds of simulator time per request, so they go first; simulate and
// verify are cheaper and hold on until genuine overload.
func (c admitClass) shedAt() pressureLevel {
	switch c {
	case classGenerate, classOptimize, classCampaign, classDiagnose:
		// Diagnosis sheds with the cold classes: localization simulates a
		// signature per candidate instance per observation, which is
		// generation-grade work, and a tester can always retry.
		return pressureDegraded
	}
	return pressureOverloaded
}

// classLimits bounds one class: Concurrency caps simultaneously running
// work, Queue caps work waiting behind it. Their sum is the class's
// admission budget; sync classes set Queue 0 (they never wait).
type classLimits struct {
	Concurrency int
	Queue       int
}

// classState is the live occupancy of one class.
type classState struct {
	limits  classLimits
	running int
	queued  int
	sheds   int64
}

// shedError is the typed outcome of a refused admission; the handlers
// translate it to HTTP 429 with the carried Retry-After.
type shedError struct {
	class      admitClass
	retryAfter time.Duration
	reason     string
}

func (e *shedError) Error() string {
	return fmt.Sprintf("service: %s shed under load: %s (retry after %s)", e.class, e.reason, e.retryAfter)
}

// drainRing is how many recent job completions the drain-rate estimate
// looks back over.
const drainRing = 32

// admission is the controller. All methods are safe for concurrent use.
type admission struct {
	target   time.Duration // CoDel queue-wait target
	interval time.Duration // CoDel observation window
	now      func() time.Time
	jitter   func() float64 // in [0,1); injectable for tests

	mu      sync.Mutex
	classes map[admitClass]*classState

	// CoDel detector state, fed by observeWait on every dequeue.
	aboveSince time.Time // first moment the wait went above target; zero when under
	dropping   bool
	dropCount  int // dequeues above target while dropping (the control-law n)

	// Ring of recent completion timestamps: the drain-rate estimate.
	done     [drainRing]time.Time
	doneIdx  int
	doneLen  int
	shedsSum int64
}

// newAdmission builds a controller with per-class budgets derived from
// the service sizing: generation owns the full queue, verify half,
// optimize a quarter (it is the most expensive class), simulate gets
// concurrency headroom but no queue (it is synchronous), and campaigns
// mirror the campaign manager's own bound.
func newAdmission(workers, queueDepth, maxCampaigns int, target, interval time.Duration) *admission {
	if target <= 0 {
		target = 200 * time.Millisecond
	}
	if interval <= 0 {
		interval = time.Second
	}
	half := queueDepth / 2
	if half < 1 {
		half = 1
	}
	quarter := queueDepth / 4
	if quarter < 1 {
		quarter = 1
	}
	optConc := workers / 2
	if optConc < 1 {
		optConc = 1
	}
	a := &admission{
		target:   target,
		interval: interval,
		now:      time.Now,
		jitter:   rand.Float64,
		classes: map[admitClass]*classState{
			classGenerate: {limits: classLimits{Concurrency: workers, Queue: queueDepth}},
			classVerify:   {limits: classLimits{Concurrency: workers, Queue: half}},
			classOptimize: {limits: classLimits{Concurrency: optConc, Queue: quarter}},
			classSimulate: {limits: classLimits{Concurrency: 2 * workers, Queue: 0}},
			classCampaign: {limits: classLimits{Concurrency: maxCampaigns, Queue: maxCampaigns}},
			classDiagnose: {limits: classLimits{Concurrency: workers, Queue: half}},
		},
	}
	return a
}

// admit asks to enqueue one unit of class c work. nil means admitted (the
// caller must pair it with started/finished through the job hooks); a
// *shedError means refused — answer 429 and do not submit.
func (a *admission) admit(c admitClass) *shedError {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.classes[c]
	level, _ := a.pressureLocked()
	if level >= c.shedAt() {
		return a.shedLocked(cs, c, fmt.Sprintf("service %s, %s sheds at %s", level, c, c.shedAt()))
	}
	if cs.queued+cs.running >= cs.limits.Concurrency+cs.limits.Queue {
		return a.shedLocked(cs, c, fmt.Sprintf("%s budget full (%d running, %d queued)", c, cs.running, cs.queued))
	}
	if a.dropping {
		// The adaptive CoDel deadline: while dropping, new work is only
		// admitted if the queue is expected to reach it within the
		// tightened allowance.
		if est := a.estimatedWaitLocked(); est > a.allowedWaitLocked() {
			return a.shedLocked(cs, c, fmt.Sprintf("estimated queue wait %s exceeds admission deadline %s", est.Round(time.Millisecond), a.allowedWaitLocked().Round(time.Millisecond)))
		}
	}
	cs.queued++
	return nil
}

// acquire admits one unit of synchronous class c work (simulate/detects):
// it counts as running immediately and must be released with release.
func (a *admission) acquire(c admitClass) *shedError {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.classes[c]
	level, _ := a.pressureLocked()
	if level >= c.shedAt() {
		return a.shedLocked(cs, c, fmt.Sprintf("service %s, %s sheds at %s", level, c, c.shedAt()))
	}
	if cs.running >= cs.limits.Concurrency {
		return a.shedLocked(cs, c, fmt.Sprintf("%s concurrency limit %d reached", c, cs.limits.Concurrency))
	}
	cs.running++
	return nil
}

// admitPressure refuses class c work purely on the degrade ladder. Used
// for campaigns, whose occupancy the campaign manager already bounds
// (ErrCampaignsFull); admission adds only the shed-order gate on top.
func (a *admission) admitPressure(c admitClass) *shedError {
	a.mu.Lock()
	defer a.mu.Unlock()
	level, _ := a.pressureLocked()
	if level >= c.shedAt() {
		return a.shedLocked(a.classes[c], c, fmt.Sprintf("service %s, %s sheds at %s", level, c, c.shedAt()))
	}
	return nil
}

// release returns a synchronous slot taken by acquire.
func (a *admission) release(c admitClass) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.classes[c]
	if cs.running > 0 {
		cs.running--
	}
}

// started moves one admitted unit from queued to running and feeds its
// queue wait to the CoDel detector. Called from the job engine's onStart
// hook, i.e. at dequeue time — exactly where CoDel measures sojourn.
func (a *admission) started(c admitClass, wait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.classes[c]
	if cs.queued > 0 {
		cs.queued--
	}
	cs.running++
	a.observeWaitLocked(wait)
}

// finished retires one unit of class c work. started tells which counter
// it occupies (a job canceled while still queued never ran); ran tells
// whether a completion should feed the drain-rate estimate.
func (a *admission) finished(c admitClass, started, ran bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.classes[c]
	if started {
		if cs.running > 0 {
			cs.running--
		}
	} else if cs.queued > 0 {
		// The canceled-while-queued path: the admission slot is released
		// here, immediately — not when a worker eventually drains the
		// tombstone from the channel.
		cs.queued--
	}
	if ran {
		a.done[a.doneIdx] = a.now()
		a.doneIdx = (a.doneIdx + 1) % drainRing
		if a.doneLen < drainRing {
			a.doneLen++
		}
	}
}

// observeWaitLocked is the CoDel detector: waits under target reset it,
// waits above target for a full interval flip it into dropping, and every
// further high sample increments the control-law count that tightens the
// admission deadline.
func (a *admission) observeWaitLocked(wait time.Duration) {
	if wait < a.target {
		a.aboveSince = time.Time{}
		a.dropping = false
		a.dropCount = 0
		return
	}
	now := a.now()
	if a.aboveSince.IsZero() {
		a.aboveSince = now
		return
	}
	if now.Sub(a.aboveSince) < a.interval {
		return
	}
	if !a.dropping {
		a.dropping = true
		a.dropCount = 0
	}
	a.dropCount++
}

// allowedWaitLocked is the adaptive queue-wait deadline new work is
// admitted against: the full interval while healthy, shrinking toward the
// target by the CoDel control law (interval/√(1+n)) while congestion
// persists.
func (a *admission) allowedWaitLocked() time.Duration {
	if !a.dropping {
		return a.interval
	}
	d := time.Duration(float64(a.interval) / math.Sqrt(float64(1+a.dropCount)))
	if d < a.target {
		d = a.target
	}
	return d
}

// estimatedWaitLocked predicts how long newly queued work will wait:
// total queued work divided by the observed drain rate. With no drain
// history it falls back to assuming one interval per queued job — a
// pessimistic guess that errs toward shedding under congestion.
func (a *admission) estimatedWaitLocked() time.Duration {
	queued := 0
	for _, cs := range a.classes {
		queued += cs.queued
	}
	if queued == 0 {
		return 0
	}
	rate := a.drainRateLocked()
	if rate <= 0 {
		return time.Duration(queued) * a.interval
	}
	return time.Duration(float64(queued+1) / rate * float64(time.Second))
}

// drainRateLocked estimates completions per second over the ring of
// recent job completions; 0 means no history yet.
func (a *admission) drainRateLocked() float64 {
	if a.doneLen < 2 {
		return 0
	}
	newest := a.done[(a.doneIdx-1+drainRing)%drainRing]
	oldest := a.done[(a.doneIdx-a.doneLen+drainRing)%drainRing]
	span := newest.Sub(oldest)
	if span <= 0 {
		return 0
	}
	return float64(a.doneLen-1) / span.Seconds()
}

// shedLocked counts one shed and builds its 429 answer: Retry-After is
// the estimated time for the backlog to drain at the observed rate,
// jittered upward by up to 50% so shed clients decorrelate, clamped to
// [1s, 60s] (whole seconds: the header's granularity).
func (a *admission) shedLocked(cs *classState, c admitClass, reason string) *shedError {
	cs.sheds++
	a.shedsSum++
	queued := 0
	for _, s := range a.classes {
		queued += s.queued
	}
	base := 1.0
	if rate := a.drainRateLocked(); rate > 0 {
		base = float64(queued+1) / rate
	}
	secs := base * (1 + 0.5*a.jitter())
	ra := time.Duration(math.Ceil(secs)) * time.Second
	if ra < time.Second {
		ra = time.Second
	}
	if ra > 60*time.Second {
		ra = 60 * time.Second
	}
	return &shedError{class: c, retryAfter: ra, reason: reason}
}

// pressure returns the current degrade level and its reasons.
func (a *admission) pressure() (pressureLevel, []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pressureLocked()
}

// sustainedDrops is the control-law count past which CoDel congestion is
// treated as overload rather than mere degradation.
const sustainedDrops = 8

// pressureLocked grades congestion from the CoDel detector and queue
// occupancy: dropping means at least degraded, sustained dropping or a
// nearly full queue means overloaded.
func (a *admission) pressureLocked() (pressureLevel, []string) {
	level := pressureOK
	var reasons []string
	if a.dropping {
		level = pressureDegraded
		reasons = append(reasons, fmt.Sprintf("queue wait above %s for over %s (codel dropping, n=%d)", a.target, a.interval, a.dropCount))
		if a.dropCount >= sustainedDrops {
			level = pressureOverloaded
			reasons = append(reasons, "congestion sustained past the control-law threshold")
		}
	}
	queued, cap := 0, 0
	for _, cs := range a.classes {
		queued += cs.queued
		cap += cs.limits.Queue
	}
	if cap > 0 {
		occ := float64(queued) / float64(cap)
		switch {
		case occ >= 0.9:
			level = pressureOverloaded
			reasons = append(reasons, fmt.Sprintf("queues %.0f%% full (%d of %d)", occ*100, queued, cap))
		case occ >= 0.6:
			if level < pressureDegraded {
				level = pressureDegraded
			}
			reasons = append(reasons, fmt.Sprintf("queues %.0f%% full (%d of %d)", occ*100, queued, cap))
		}
	}
	return level, reasons
}

// classSnapshot is the wire form of one class's admission state (healthz
// and /metrics).
type classSnapshot struct {
	Running     int   `json:"running"`
	Queued      int   `json:"queued"`
	Concurrency int   `json:"concurrency_limit"`
	QueueCap    int   `json:"queue_cap"`
	Sheds       int64 `json:"sheds_total"`
}

// snapshot copies the per-class occupancy for healthz and /metrics.
func (a *admission) snapshot() map[string]classSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]classSnapshot, len(a.classes))
	for _, c := range admitClasses {
		cs := a.classes[c]
		out[string(c)] = classSnapshot{
			Running:     cs.running,
			Queued:      cs.queued,
			Concurrency: cs.limits.Concurrency,
			QueueCap:    cs.limits.Queue,
			Sheds:       cs.sheds,
		}
	}
	return out
}

// shedsTotal returns the all-classes shed counter.
func (a *admission) shedsTotal() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shedsSum
}
