package service

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// pollCampaign polls until the campaign leaves CampaignRunning.
func pollCampaign(t *testing.T, s *Server, id string) Campaign {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		w := do(t, s, "GET", "/v1/campaigns/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, w.Code, w.Body.String())
		}
		c := decode[Campaign](t, w)
		if c.Status != CampaignRunning {
			return c
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return Campaign{}
}

func TestCampaignLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 2, DataDir: dir})

	spec := `{"name":"svc","lists":["list2"],"orders":["free","up"],"shard_size":1}`
	w := do(t, s, "POST", "/v1/campaigns", spec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", w.Code, w.Body.String())
	}
	c := decode[Campaign](t, w)
	if c.ID == "" || c.SpecHash == "" || c.Shards.Total != 2 || c.Units.Total != 2 {
		t.Fatalf("campaign = %+v", c)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/campaigns/"+c.ID {
		t.Fatalf("Location = %q", loc)
	}

	done := pollCampaign(t, s, c.ID)
	if done.Status != CampaignDone {
		t.Fatalf("terminal status = %q (%s)", done.Status, done.Error)
	}
	if done.Shards.Committed != 2 || done.Units.Done != 2 || done.Units.Errors != 0 {
		t.Fatalf("progress = %+v", done)
	}
	for i, st := range done.Shards.States {
		if st != "committed" {
			t.Fatalf("shard %d state = %q", i, st)
		}
	}

	// Results: the committed JSONL prefix, one line per unit.
	w = do(t, s, "GET", "/v1/campaigns/"+c.ID+"/results", "")
	if w.Code != http.StatusOK {
		t.Fatalf("results: status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("results lines = %d:\n%s", len(lines), w.Body.String())
	}

	// Re-POSTing the same spec is idempotent: 200, same id, no new work.
	w = do(t, s, "POST", "/v1/campaigns", spec)
	if w.Code != http.StatusOK && w.Code != http.StatusAccepted {
		t.Fatalf("re-POST: status %d", w.Code)
	}
	if again := decode[Campaign](t, w); again.ID != c.ID {
		t.Fatalf("re-POST id = %q, want %q", again.ID, c.ID)
	}

	// The list includes it; /metrics counts it.
	w = do(t, s, "GET", "/v1/campaigns", "")
	list := decode[struct {
		Campaigns []Campaign `json:"campaigns"`
	}](t, w)
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != c.ID {
		t.Fatalf("list = %+v", list)
	}
	m := decode[MetricsSnapshot](t, do(t, s, "GET", "/metrics", ""))
	if m.CampaignsSubmitted == 0 || m.CampaignsDone == 0 {
		t.Fatalf("campaign counters missing: %+v", m)
	}
}

func TestCampaignValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	for _, body := range []string{
		`{"lists":["no-such-list"]}`,
		`{"lists":[]}`,
		`not json`,
	} {
		if w := do(t, s, "POST", "/v1/campaigns", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, w.Code)
		}
	}
	if w := do(t, s, "GET", "/v1/campaigns/c-doesnotexist", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown GET: status %d, want 404", w.Code)
	}
	if w := do(t, s, "DELETE", "/v1/campaigns/c-doesnotexist", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown DELETE: status %d, want 404", w.Code)
	}
	if w := do(t, s, "GET", "/v1/campaigns/c-doesnotexist/results", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown results: status %d, want 404", w.Code)
	}
}

func TestCampaignCapacity(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir(), MaxCampaigns: 1})
	// list1 generation takes long enough that the first campaign is still
	// running when the second arrives.
	w := do(t, s, "POST", "/v1/campaigns", `{"name":"slow","lists":["list1"]}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("first POST: status %d: %s", w.Code, w.Body.String())
	}
	first := decode[Campaign](t, w)
	w = do(t, s, "POST", "/v1/campaigns", `{"name":"second","lists":["list2"],"sizes":[5]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity POST: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("over-capacity POST: no Retry-After")
	}
	pollCampaign(t, s, first.ID)
}

func TestCampaignDiskSnapshotSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 2, DataDir: dir})
	w := do(t, s, "POST", "/v1/campaigns", `{"name":"durable","lists":["list2"]}`)
	c := decode[Campaign](t, w)
	done := pollCampaign(t, s, c.ID)
	if done.Status != CampaignDone {
		t.Fatalf("status = %q", done.Status)
	}

	// A fresh server over the same data dir serves the campaign from disk.
	s2 := newTestServer(t, Config{Workers: 2, DataDir: dir})
	w = do(t, s2, "GET", "/v1/campaigns/"+c.ID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("disk snapshot: status %d: %s", w.Code, w.Body.String())
	}
	snap := decode[Campaign](t, w)
	if snap.Status != CampaignDone || snap.Units.Done != 1 || snap.SpecHash != c.SpecHash {
		t.Fatalf("disk snapshot = %+v", snap)
	}
	if w = do(t, s2, "GET", "/v1/campaigns/"+c.ID+"/results", ""); w.Code != http.StatusOK {
		t.Fatalf("disk results: status %d", w.Code)
	}
}

func TestCampaignCancelIsResumable(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, CampaignWorkers: 1, DataDir: dir})
	// Several list1 units: slow enough to cancel mid-run.
	spec := `{"name":"cancelme","lists":["list1"],"orders":["free","up","down"],"shard_size":1}`
	w := do(t, s, "POST", "/v1/campaigns", spec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", w.Code, w.Body.String())
	}
	c := decode[Campaign](t, w)
	if w = do(t, s, "DELETE", "/v1/campaigns/"+c.ID, ""); w.Code != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", w.Code, w.Body.String())
	}
	done := pollCampaign(t, s, c.ID)
	if done.Status != CampaignInterrupted && done.Status != CampaignDone {
		t.Fatalf("post-cancel status = %q (%s)", done.Status, done.Error)
	}
	if done.Status == CampaignDone {
		t.Skip("campaign finished before the cancel landed")
	}

	// Re-POSTing the same spec resumes the interrupted campaign.
	w = do(t, s, "POST", "/v1/campaigns", spec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("resume POST: status %d: %s", w.Code, w.Body.String())
	}
	resumed := pollCampaign(t, s, c.ID)
	if resumed.Status != CampaignDone {
		t.Fatalf("resumed status = %q (%s)", resumed.Status, resumed.Error)
	}
	if resumed.Shards.Committed != 3 {
		t.Fatalf("resumed shards = %+v", resumed.Shards)
	}
}
