package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func waitTerminal(t *testing.T, j *job) Job {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.id)
	}
	return j.snapshot(true)
}

func TestJobEngineRunsSubmittedWork(t *testing.T) {
	e := newJobEngine(2, 8, time.Minute, 16)
	defer e.Shutdown(context.Background())

	j, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
		return []byte(`{"ok":true}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.Status != JobDone || string(snap.Result) != `{"ok":true}` {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Started.IsZero() || snap.Finished.IsZero() {
		t.Fatalf("timestamps missing: %+v", snap)
	}
}

func TestJobEngineQueueFull(t *testing.T) {
	e := newJobEngine(1, 1, time.Minute, 16)
	release := make(chan struct{})
	blocker := func(ctx context.Context) ([]byte, error) {
		<-release
		return nil, nil
	}
	j1, err := e.Submit(classGenerate, 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick j1 up, freeing the queue slot for j2.
	deadline := time.Now().Add(5 * time.Second)
	for e.Depth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, err := e.Submit(classGenerate, 0, blocker)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(classGenerate, 0, blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	close(release)
	waitTerminal(t, j1)
	waitTerminal(t, j2)
	e.Shutdown(context.Background())
}

func TestJobEngineCancelQueued(t *testing.T) {
	e := newJobEngine(1, 4, time.Minute, 16)
	release := make(chan struct{})
	j1, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	j2, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Cancel(j2.id); !ok || got.snapshot(false).Status != JobCanceled {
		t.Fatalf("cancel queued: %+v, %v", got.snapshot(false), ok)
	}
	close(release)
	waitTerminal(t, j1)
	e.Shutdown(context.Background())
	if ran {
		t.Fatal("canceled queued job still ran")
	}
}

func TestJobEngineCancelRunning(t *testing.T) {
	e := newJobEngine(1, 4, time.Minute, 16)
	defer e.Shutdown(context.Background())
	started := make(chan struct{})
	j, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := e.Cancel(j.id); !ok {
		t.Fatal("cancel: unknown job")
	}
	snap := waitTerminal(t, j)
	if snap.Status != JobCanceled {
		t.Fatalf("status = %s, want canceled", snap.Status)
	}
}

func TestJobEngineDeadline(t *testing.T) {
	e := newJobEngine(1, 4, 20*time.Millisecond, 16)
	defer e.Shutdown(context.Background())
	j, err := e.Submit(classGenerate, time.Hour /* capped to the engine max */, func(ctx context.Context) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.Status != JobFailed || !strings.Contains(snap.Error, "deadline") {
		t.Fatalf("snapshot = %+v, want failed with deadline error", snap)
	}
}

func TestJobEngineShutdownDrains(t *testing.T) {
	e := newJobEngine(2, 16, time.Minute, 32)
	var jobs []*job
	for i := 0; i < 8; i++ {
		j, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
			time.Sleep(5 * time.Millisecond)
			return []byte("x"), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, j := range jobs {
		if s := j.snapshot(false); s.Status != JobDone {
			t.Fatalf("job %s = %s after drain, want done", s.ID, s.Status)
		}
	}
	if _, err := e.Submit(classGenerate, 0, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: %v, want ErrDraining", err)
	}
}

func TestJobEngineShutdownExpiryCancelsStragglers(t *testing.T) {
	e := newJobEngine(1, 4, time.Minute, 16)
	started := make(chan struct{})
	j, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
		close(started)
		<-ctx.Done() // only a canceled context lets this job end
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Shutdown(expired); err == nil {
		t.Fatal("shutdown reported clean drain despite straggler")
	}
	snap := waitTerminal(t, j)
	if snap.Status != JobCanceled {
		t.Fatalf("straggler status = %s, want canceled", snap.Status)
	}
}

// TestJobEnginePanicContained is the worker-survival pin: a job fn that
// panics must fail its own job with the captured stack and leave the
// worker draining the queue behind it.
func TestJobEnginePanicContained(t *testing.T) {
	e := newJobEngine(1, 8, time.Minute, 16) // one worker: a dead worker would strand everything
	defer e.Shutdown(context.Background())
	panics := 0
	e.onPanic = func() { panics++ }

	boom, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
		panic("generation exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, boom)
	if snap.Status != JobFailed {
		t.Fatalf("panicking job status = %s, want failed", snap.Status)
	}
	if !strings.Contains(snap.Error, "panicked") || !strings.Contains(snap.Error, "generation exploded") ||
		!strings.Contains(snap.Error, "goroutine") {
		t.Fatalf("panicking job error lost the panic or its stack:\n%s", snap.Error)
	}

	// The same (sole) worker must still serve subsequent jobs.
	for i := 0; i < 3; i++ {
		next, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) {
			return []byte(`"alive"`), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if snap := waitTerminal(t, next); snap.Status != JobDone {
			t.Fatalf("job %d after the panic = %s, want done", i, snap.Status)
		}
	}
	if panics != 1 {
		t.Fatalf("onPanic fired %d times, want 1", panics)
	}
}

func TestJobEngineRetention(t *testing.T) {
	e := newJobEngine(1, 16, time.Minute, 3)
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := e.Submit(classGenerate, 0, func(ctx context.Context) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		ids = append(ids, j.id)
	}
	e.Shutdown(context.Background())
	// The oldest finished jobs are evicted once more than `retain` exist.
	if _, ok := e.Get(ids[0]); ok {
		t.Fatal("oldest job survived retention eviction")
	}
	if _, ok := e.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest job evicted")
	}
}
