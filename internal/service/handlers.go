package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"marchgen"
	"marchgen/internal/optimize"
)

// encodeErrorRecorder is implemented by statusWriter: writeJSON reports
// encode failures through it so the route layer can log and count them.
type encodeErrorRecorder interface {
	recordEncodeError(error)
}

// headerWrittenChecker is implemented by statusWriter: writeJSON consults
// it so a response whose status line is already out (a client
// disconnecting mid-write can bounce an error path back into a second
// write attempt) never gets a second, superfluous status line.
type headerWrittenChecker interface {
	headerWritten() bool
}

// writeJSON marshals v as the response body with the given status. If a
// status line already went out on this response, nothing is written — a
// second WriteHeader would be a protocol violation — and the dropped
// status is recorded as an encode error instead. When the encode itself
// fails, the status line is already out and the response cannot be
// repaired, but the failure is not dropped either: it is recorded on the
// response writer, logged through the structured request log and counted
// in /metrics as response_encode_errors.
func writeJSON(w http.ResponseWriter, status int, v any) {
	if hw, ok := w.(headerWrittenChecker); ok && hw.headerWritten() {
		if rec, ok := w.(encodeErrorRecorder); ok {
			rec.recordEncodeError(fmt.Errorf("status %d dropped: response already started", status))
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		if rec, ok := w.(encodeErrorRecorder); ok {
			rec.recordEncodeError(err)
		}
	}
}

// writeRaw sends pre-marshaled JSON bytes verbatim (the cache-hit path:
// byte-identical responses).
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeShed answers an admission refusal: HTTP 429 with the controller's
// drain-rate-derived, jittered Retry-After (whole seconds — the header's
// granularity).
func writeShed(w http.ResponseWriter, shed *shedError) {
	w.Header().Set("Retry-After", strconv.Itoa(int(shed.retryAfter/time.Second)))
	writeError(w, http.StatusTooManyRequests, "%v", shed)
}

// requestTimeout resolves a request's effective deadline: the body's
// timeout_ms tightened by an X-Deadline header, which accepts a Go
// duration ("1.5s") or a bare integer millisecond count. 0 means the
// server's maximum applies. The deadline propagates into the job context,
// so an abandoned client's work stops burning workers at its deadline.
func requestTimeout(r *http.Request, bodyMS int64) (time.Duration, error) {
	d := time.Duration(bodyMS) * time.Millisecond
	h := r.Header.Get("X-Deadline")
	if h == "" {
		return d, nil
	}
	hd, err := time.ParseDuration(h)
	if err != nil {
		ms, merr := strconv.ParseInt(h, 10, 64)
		if merr != nil {
			return 0, fmt.Errorf("bad X-Deadline %q: want a duration like \"30s\" or integer milliseconds", h)
		}
		hd = time.Duration(ms) * time.Millisecond
	}
	if hd <= 0 {
		return 0, fmt.Errorf("bad X-Deadline %q: must be positive", h)
	}
	if d <= 0 || hd < d {
		d = hd
	}
	return d, nil
}

// writeSubmitError finishes an async submit's error path: admission sheds
// answer 429 + Retry-After, engine backpressure (full queue, draining)
// answers 503, anything else 500.
func writeSubmitError(w http.ResponseWriter, err error) {
	var shed *shedError
	switch {
	case errors.As(err, &shed):
		writeShed(w, shed)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// decodeBody strictly decodes the request body into v: unknown fields and
// trailing garbage are client errors, reported with a 400 by the caller.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra any
	if dec.Decode(&extra) == nil {
		return errors.New("request body holds more than one JSON document")
	}
	return nil
}

// handleGenerate is POST /v1/generate: resolve the fault spec, consult the
// content-addressed cache, and either answer 200 from cache or enqueue a
// generation job and answer 202 with the job's poll location.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	faults, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad fault spec: %v", err)
		return
	}
	var opts marchgen.Options
	if req.Options != nil {
		opts = *req.Options
	}
	opts = opts.Canonical()
	// The lane knob is applied after canonicalization, and generateKey
	// re-canonicalizes opts (which zeroes DisableLanes): lanes never change
	// results, so instances running -lanes=off share cache entries with
	// instances running the default. The wire format cannot carry
	// DisableLanes; only the server flag sets it.
	if s.cfg.DisableLanes {
		opts.SearchConfig.DisableLanes = true
		opts.FinalConfig.DisableLanes = true
	}

	key, err := generateKey(faults, opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cache(true)
		w.Header().Set("X-Cache", "hit")
		writeRaw(w, http.StatusOK, body)
		return
	}
	s.metrics.cache(false)
	w.Header().Set("X-Cache", "miss")

	timeout, err := requestTimeout(r, req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, created, err := s.lookupOrSubmit(classGenerate, key, timeout,
		func(ctx context.Context) ([]byte, error) {
			start := time.Now()
			res, err := marchgen.GenerateContext(ctx, faults, opts)
			if err != nil {
				return nil, err
			}
			body, err := marshalGenerateResult(res, opts, key)
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, body)
			s.metrics.observeGenerate(time.Since(start))
			return body, nil
		})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if created {
		s.metrics.jobSubmitted()
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, struct {
		Job  Job    `json:"job"`
		Poll string `json:"poll"`
	}{j.snapshot(false), "/v1/jobs/" + j.id})
}

// handleVerify is POST /v1/verify: differential cross-check of a march test
// against a fault list — the production simulator (internal/sim) versus the
// independent reference oracle (internal/oracle). The cross-check costs two
// full exhaustive simulations, so the endpoint is asynchronous like
// /v1/generate: a cache hit answers 200 with the stored document, a miss
// enqueues a job and answers 202 with the poll location. The result lists
// every divergence; an empty list means bit-for-bit agreement.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	test, err := req.March.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad march spec: %v", err)
		return
	}
	faults, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad fault spec: %v", err)
		return
	}
	cfg := defaultSimConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	cfg = cfg.Canonical()
	key, err := verifyKey(test, faults, cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Applied after Canonical and after the key: the lane engine never
	// changes cross-check outcomes, so the cache stays shared across
	// instances with different -lanes settings.
	cfg.DisableLanes = s.cfg.DisableLanes
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cache(true)
		w.Header().Set("X-Cache", "hit")
		writeRaw(w, http.StatusOK, body)
		return
	}
	s.metrics.cache(false)
	w.Header().Set("X-Cache", "miss")

	timeout, err := requestTimeout(r, req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, created, err := s.lookupOrSubmit(classVerify, key, timeout,
		func(ctx context.Context) ([]byte, error) {
			diffs := marchgen.CrossCheck(test, faults, cfg)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			wordAxis, err := crossCheckWordAxis(ctx, test, cfg.Width)
			if err != nil {
				return nil, err
			}
			mportAxis, err := crossCheckMportAxis(ctx, test, cfg.Ports)
			if err != nil {
				return nil, err
			}
			body, err := marshalVerifyResult(test, len(faults), cfg, diffs, wordAxis, mportAxis, key)
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, body)
			return body, nil
		})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if created {
		s.metrics.jobSubmitted()
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, struct {
		Job  Job    `json:"job"`
		Poll string `json:"poll"`
	}{j.snapshot(false), "/v1/jobs/" + j.id})
}

// handleOptimize is POST /v1/optimize: search for a shorter full-coverage
// march test starting from a seed (an explicit test or a server-generated
// one). Asynchronous like /v1/generate: a cache hit answers 200 with the
// stored document, a miss enqueues a job and answers 202 with the poll
// location. An improved winner also lands in the runtime march library
// (with provenance), where /v1/library exposes it.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req optimizeRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	faults, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad fault spec: %v", err)
		return
	}
	seedTest, opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad march spec: %v", err)
		return
	}

	key, err := optimizeKey(faults, seedTest, opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Applied after the key: lanes never change search outcomes.
	if s.cfg.DisableLanes {
		opts.Config.DisableLanes = true
		opts.Generator.SearchConfig.DisableLanes = true
		opts.Generator.FinalConfig.DisableLanes = true
	}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cache(true)
		w.Header().Set("X-Cache", "hit")
		writeRaw(w, http.StatusOK, body)
		return
	}
	s.metrics.cache(false)
	w.Header().Set("X-Cache", "miss")

	timeout, err := requestTimeout(r, req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, created, err := s.lookupOrSubmit(classOptimize, key, timeout,
		func(ctx context.Context) ([]byte, error) {
			lastEvals := 0
			opts.OnProgress = func(p marchgen.OptimizeProgress) {
				s.metrics.optimizeProgress(int64(p.Evaluations - lastEvals))
				lastEvals = p.Evaluations
			}
			res, err := marchgen.OptimizeContext(ctx, faults, opts)
			if err != nil {
				return nil, err
			}
			s.metrics.optimizeProgress(int64(res.Stats.Evaluations - lastEvals))
			s.metrics.optimizeDone(res.Stats.Improved)
			optimize.Land(res)
			body, err := marshalOptimizeResult(res, key)
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, body)
			return body, nil
		})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if created {
		s.metrics.jobSubmitted()
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, struct {
		Job  Job    `json:"job"`
		Poll string `json:"poll"`
	}{j.snapshot(false), "/v1/jobs/" + j.id})
}

// handleJobGet is GET /v1/jobs/{id}: the job snapshot, with the result
// document inlined once the job is done.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot(true))
}

// handleJobResult is GET /v1/jobs/{id}/result: the raw result document of
// a done job — the exact bytes the cache serves, so polling clients and
// cache-hit clients see identical output.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	snap := j.snapshot(true)
	switch snap.Status {
	case JobDone:
		writeRaw(w, http.StatusOK, snap.Result)
	case JobFailed, JobCanceled:
		writeError(w, http.StatusGone, "job %s %s: %s", snap.ID, snap.Status, snap.Error)
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job %s is %s; poll /v1/jobs/%s", snap.ID, snap.Status, snap.ID)
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel a queued or running job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot(false))
}

// handleSimulate is POST /v1/simulate: synchronous fault simulation of a
// march test against a fault list.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	test, err := req.March.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad march spec: %v", err)
		return
	}
	faults, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad fault spec: %v", err)
		return
	}
	cfg := marchgen.SimConfig{}
	if req.Config != nil {
		cfg = *req.Config
	} else {
		cfg = defaultSimConfig()
	}
	cfg.DisableLanes = s.cfg.DisableLanes
	if shed := s.admit.acquire(classSimulate); shed != nil {
		s.metrics.shed(string(classSimulate))
		writeShed(w, shed)
		return
	}
	ctx, cancel, err := syncContext(r)
	if err != nil {
		s.admit.release(classSimulate)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	// The simulator has no context hook, so the deadline is enforced by
	// racing it: the goroutine owns the admission slot until the work
	// really finishes, even when the response has already gone out as 504
	// — abandoned work must keep counting against the class's concurrency.
	type simOutcome struct {
		report marchgen.Report
		word   *marchgen.WordResult
		mport  *marchgen.MportResult
		err    error
	}
	ch := make(chan simOutcome, 1)
	go func() {
		defer s.admit.release(classSimulate)
		var out simOutcome
		out.report = marchgen.SimulateWith(test, faults, cfg)
		if out.report.Err() == nil {
			// The axis sections (nil at width=1/ports=1, so pre-axis
			// responses keep their exact shape).
			out.word, out.err = marchgen.EvaluateWord(ctx, test, cfg.Width, false)
			if out.err == nil {
				out.mport, out.err = marchgen.EvaluateMport(ctx, test, cfg.Ports)
			}
		}
		ch <- out
	}()
	select {
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before simulation finished")
		return
	case out := <-ch:
		if err := out.report.Err(); err != nil {
			// Simulation errors are request-shaped: the march test or config
			// cannot express the fault list (⇕ expansion cap, memory too small).
			writeError(w, http.StatusUnprocessableEntity, "simulation failed: %v", err)
			return
		}
		if out.err != nil {
			writeError(w, http.StatusUnprocessableEntity, "axis evaluation failed: %v", out.err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Report  marchgen.Report       `json:"report"`
			Word    *marchgen.WordResult  `json:"word,omitempty"`
			Mport   *marchgen.MportResult `json:"mport,omitempty"`
			Summary string                `json:"summary"`
		}{out.report, out.word, out.mport, out.report.Summary()})
	}
}

// syncContext derives a synchronous handler's work context: the request
// context (which http.TimeoutHandler already bounds by the server's sync
// timeout), tightened by X-Deadline when the client sends one.
func syncContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d, err := requestTimeout(r, 0)
	if err != nil {
		return nil, nil, err
	}
	if d <= 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// handleDetects is POST /v1/detects: does the march test detect this one
// fault in every scenario?
func (s *Server) handleDetects(w http.ResponseWriter, r *http.Request) {
	var req detectsRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	test, err := req.March.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad march spec: %v", err)
		return
	}
	if req.Fault == nil {
		writeError(w, http.StatusBadRequest, "bad fault spec: request names no fault")
		return
	}
	cfg := defaultSimConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	cfg.DisableLanes = s.cfg.DisableLanes
	if shed := s.admit.acquire(classSimulate); shed != nil {
		s.metrics.shed(string(classSimulate))
		writeShed(w, shed)
		return
	}
	detected, witness, err := marchgen.DetectsWith(test, *req.Fault, cfg)
	s.admit.release(classSimulate)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "simulation failed: %v", err)
		return
	}
	out := struct {
		Fault    marchgen.Fault `json:"fault"`
		Detected bool           `json:"detected"`
		Witness  string         `json:"witness,omitempty"`
	}{*req.Fault, detected, ""}
	if witness != nil {
		out.Witness = witness.String()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleLibrary is GET /v1/library: the shipped march tests.
func (s *Server) handleLibrary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Tests []marchgen.March `json:"tests"`
	}{marchgen.Library()})
}

// handleFaultLists is GET /v1/faultlists: the named fault lists and their
// sizes.
func (s *Server) handleFaultLists(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Count int    `json:"count"`
	}
	var lists []entry
	for _, name := range marchgen.FaultListNames() {
		faults, err := marchgen.FaultListByName(name)
		if err != nil {
			continue // unreachable: Names and ByName are the same table
		}
		lists = append(lists, entry{Name: name, Count: len(faults)})
	}
	writeJSON(w, http.StatusOK, struct {
		Lists []entry `json:"lists"`
	}{lists})
}

// handleHealthz is GET /healthz: the degrade ladder. Status is
// ok | degraded | overloaded with the controller's reasons; the answer is
// always 200 (an overloaded service is still alive — load balancers that
// want to steer away read the body, not the status code). This endpoint
// and the other cheap reads (/v1/library, /v1/faultlists, cache hits, job
// polling, /metrics) are never admission-controlled: under overload the
// cheap path stays green.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	level, reasons := s.admit.pressure()
	writeJSON(w, http.StatusOK, struct {
		Status       string                   `json:"status"`
		Reasons      []string                 `json:"reasons,omitempty"`
		Classes      map[string]classSnapshot `json:"classes"`
		QueueDepth   int                      `json:"job_queue_depth"`
		CacheEntries int                      `json:"cache_entries"`
	}{level.String(), reasons, s.admit.snapshot(), s.jobs.Depth(), s.cache.Len()})
}

// handleMetrics is GET /metrics: the expvar-style counter snapshot, plus
// the fabric coordinator's counters when this instance runs one.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(s.jobs.Depth(), s.cache.Len())
	level, _ := s.admit.pressure()
	snap.Pressure = level.String()
	snap.Admission = s.admit.snapshot()
	if s.fabric != nil {
		fc := s.fabric.Counters()
		snap.Fabric = &fc
	}
	writeJSON(w, http.StatusOK, snap)
}

// defaultSimConfig is the exhaustive default the API documents for omitted
// configs.
func defaultSimConfig() marchgen.SimConfig {
	return marchgen.SimConfig{Size: 4, ExhaustiveOrders: true}
}
