package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"marchgen/internal/campaign"
	"marchgen/internal/fabric"
	"marchgen/internal/store"
)

// fabricTestSpec keeps the distributed service tests fast: six real units
// in six single-unit shards.
const fabricTestSpec = `{"spec":{"name":"svc-fabric","lists":["list2"],"orders":["free","up","down"],"sizes":[3,4],"shard_size":1}}`

func TestFabricRoutesAbsentWithoutCoordinatorMode(t *testing.T) {
	s := newTestServer(t, Config{DataDir: t.TempDir()})
	if w := do(t, s, "POST", "/v1/fabric/campaigns", fabricTestSpec); w.Code != http.StatusNotFound {
		t.Fatalf("fabric submit on non-coordinator = %d, want 404", w.Code)
	}
	if body := do(t, s, "GET", "/metrics", "").Body.String(); strings.Contains(body, "fabric_") {
		t.Fatalf("non-coordinator /metrics advertises fabric counters: %s", body)
	}
}

// TestFabricThroughService runs a whole distributed campaign through the
// marchd handler stack — submit over HTTP, a slow and a fast worker
// against the real listener — and requires the steal path to engage and
// show up in /metrics as a nonzero fabric_steals_total.
func TestFabricThroughService(t *testing.T) {
	dataDir := t.TempDir()
	s := newTestServer(t, Config{
		DataDir:           dataDir,
		Coordinator:       true,
		FabricLeaseShards: 100, // one worker can hold the whole plan: forces stealing
		FabricLeaseTTL:    5 * time.Second,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	w := do(t, s, "POST", "/v1/fabric/campaigns", fabricTestSpec)
	if w.Code != http.StatusOK {
		t.Fatalf("fabric submit = %d: %s", w.Code, w.Body)
	}
	session := decode[fabric.SessionStatus](t, w)
	if session.Shards != 6 || session.Done {
		t.Fatalf("submitted session = %+v", session)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	slow := &fabric.Worker{
		Coordinator: srv.URL, Name: "slow", Poll: 5 * time.Millisecond, ExitOnDrain: true,
		RunShard: func(ctx context.Context, sh campaign.Shard, memo *campaign.Memo, lanesOff bool) ([]store.Record, error) {
			timer := time.NewTimer(150 * time.Millisecond)
			defer timer.Stop()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-timer.C:
			}
			return campaign.ExecuteShard(ctx, sh, memo, lanesOff)
		},
	}
	fast := &fabric.Worker{Coordinator: srv.URL, Name: "fast", Poll: 5 * time.Millisecond, ExitOnDrain: true}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := slow.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("slow worker: %v", err)
		}
	}()
	// The fast worker joins only once the slow one holds a lease, so its
	// first request has nothing pending and must steal.
	for {
		st := decode[fabric.SessionStatus](t, do(t, s, "GET", "/v1/fabric/campaigns/"+session.ID, ""))
		if len(st.Leases) > 0 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for the slow worker's lease")
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := fast.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("fast worker: %v", err)
		}
	}()
	wg.Wait()

	final := decode[fabric.SessionStatus](t, do(t, s, "GET", "/v1/fabric/campaigns/"+session.ID, ""))
	if !final.Done || final.Committed != final.Shards {
		t.Fatalf("campaign did not finish: %+v", final)
	}
	if len(final.ShardsByWorker) < 2 {
		t.Fatalf("shards_by_worker = %v, want both workers contributing", final.ShardsByWorker)
	}

	metrics := do(t, s, "GET", "/metrics", "")
	snap := decode[MetricsSnapshot](t, metrics)
	if snap.Fabric == nil {
		t.Fatalf("/metrics has no fabric section: %s", metrics.Body)
	}
	if snap.Fabric.Steals == 0 {
		t.Fatalf("fabric_steals_total = 0 after straggler run: %+v", *snap.Fabric)
	}
	if snap.Fabric.Leases == 0 || snap.Fabric.Completes == 0 || snap.Fabric.Joins != 2 {
		t.Fatalf("fabric counters incomplete: %+v", *snap.Fabric)
	}
	if !strings.Contains(metrics.Body.String(), `"fabric_steals_total"`) {
		t.Fatalf("/metrics body does not spell fabric_steals_total: %s", metrics.Body)
	}

	// The fabric run landed in the service's own campaign store root, so
	// the ordinary completeness probe sees a finished campaign.
	cp, err := store.ReadCheckpoint(session.Dir)
	if err != nil || cp.Shards != session.Shards {
		t.Fatalf("store checkpoint = %+v, %v", cp, err)
	}
}

// TestFabricJoinSkewOverHTTP pins the wire shape of the version-skew
// guard: HTTP 409 with code "skew" and both sides' versions in the error.
func TestFabricJoinSkewOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{DataDir: t.TempDir(), Coordinator: true})
	w := do(t, s, "POST", "/v1/fabric/join", `{"name":"old","version":"v0.0.0-ancient","schema":"marchcamp/spec/v0"}`)
	if w.Code != http.StatusConflict {
		t.Fatalf("skewed join = %d, want 409: %s", w.Code, w.Body)
	}
	body := decode[fabric.ErrorBody](t, w)
	if body.Code != fabric.CodeSkew || !strings.Contains(body.Error, "v0.0.0-ancient") {
		t.Fatalf("skew error body = %+v", body)
	}
}
