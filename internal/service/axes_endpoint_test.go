package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// wordSection / mportSection mirror the axis sections of the generate and
// simulate result documents.
type wordSection struct {
	Width       int    `json:"width"`
	Backgrounds int    `json:"backgrounds"`
	Faults      int    `json:"faults"`
	Detected    int    `json:"detected"`
	Transparent bool   `json:"transparent"`
	TranspTest  string `json:"transparent_test"`
	TranspDet   int    `json:"transparent_detected"`
}

type mportSection struct {
	Ports          int    `json:"ports"`
	Faults         int    `json:"faults"`
	LiftedDetected int    `json:"lifted_detected"`
	Test           string `json:"test"`
	TestLength     int    `json:"test_length"`
	TestDetected   int    `json:"test_detected"`
}

// TestSimulateAxisSections: a width/ports config adds the word and mport
// sections to the simulate response; the default config omits both keys
// entirely (the pre-axis response shape).
func TestSimulateAxisSections(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	w := do(t, s, "POST", "/v1/simulate",
		`{"march":{"name":"March SL"},"list":"list2","config":{"width":4,"ports":2}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("simulate: %d: %s", w.Code, w.Body.String())
	}
	out := decode[struct {
		Word  *wordSection  `json:"word"`
		Mport *mportSection `json:"mport"`
	}](t, w)
	if out.Word == nil || out.Word.Width != 4 || out.Word.Backgrounds != 3 ||
		out.Word.Faults == 0 || out.Word.Detected == 0 {
		t.Fatalf("word section = %+v", out.Word)
	}
	if out.Mport == nil || out.Mport.Ports != 2 || out.Mport.Faults == 0 ||
		out.Mport.Test == "" || out.Mport.TestDetected != out.Mport.Faults {
		t.Fatalf("mport section = %+v", out.Mport)
	}
	// A single-port march lifted to two ports cannot apply simultaneous
	// conditions, so it detects none of the weak faults.
	if out.Mport.LiftedDetected != 0 {
		t.Fatalf("lifted single-port march detected %d weak faults, want 0", out.Mport.LiftedDetected)
	}

	// Default request: the axis keys must not appear at all.
	w2 := do(t, s, "POST", "/v1/simulate", `{"march":{"name":"March SL"},"list":"list2"}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("default simulate: %d: %s", w2.Code, w2.Body.String())
	}
	for _, key := range []string{`"word"`, `"mport"`} {
		if bytes.Contains(w2.Body.Bytes(), []byte(key)) {
			t.Fatalf("default simulate response leaks the %s section: %s", key, w2.Body.String())
		}
	}
}

// TestGenerateAxisSections: width/transparent/ports options flow into the
// generation result document.
func TestGenerateAxisSections(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	// list1's generated test starts with a write-only initialization and
	// exits at 0, so it admits the transparent in-field variant.
	w := do(t, s, "POST", "/v1/generate",
		`{"list":"list1","options":{"width":4,"transparent":true,"ports":2}}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", w.Code, w.Body.String())
	}
	env := decode[jobEnvelope](t, w)
	if j := pollJob(t, s, env.Job.ID); j.Status != JobDone {
		t.Fatalf("job = %+v", j)
	}
	res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result: %d: %s", res.Code, res.Body.String())
	}
	doc := decode[struct {
		Word  *wordSection  `json:"word"`
		Mport *mportSection `json:"mport"`
	}](t, res)
	if doc.Word == nil || doc.Word.Width != 4 || !doc.Word.Transparent {
		t.Fatalf("word section = %+v", doc.Word)
	}
	if doc.Word.TranspTest == "" || doc.Word.TranspDet == 0 {
		t.Fatalf("transparent variant = %+v", doc.Word)
	}
	if doc.Mport == nil || doc.Mport.TestDetected != doc.Mport.Faults {
		t.Fatalf("mport section = %+v", doc.Mport)
	}

	// A test that does not restore memory content has no transparent variant;
	// the job must fail with the transform's diagnostic, not hang or panic.
	w2 := do(t, s, "POST", "/v1/generate",
		`{"list":"list2","options":{"width":4,"transparent":true}}`)
	if w2.Code != http.StatusAccepted {
		t.Fatalf("ineligible POST: status %d: %s", w2.Code, w2.Body.String())
	}
	env2 := decode[jobEnvelope](t, w2)
	j2 := pollJob(t, s, env2.Job.ID)
	if j2.Status != JobFailed || !strings.Contains(j2.Error, "transparent") {
		t.Fatalf("ineligible job = %+v, want failed with a transparent-transform error", j2)
	}
}

// TestVerifyAxisSections: a width/ports config adds per-axis differential
// cross-checks to the verify document, and both implementations must agree
// with the oracle.
func TestVerifyAxisSections(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	w := do(t, s, "POST", "/v1/verify",
		`{"march":{"name":"March SS"},"list":"list2","config":{"width":4,"ports":2}}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", w.Code, w.Body.String())
	}
	env := decode[jobEnvelope](t, w)
	if j := pollJob(t, s, env.Job.ID); j.Status != JobDone {
		t.Fatalf("job = %+v", j)
	}
	res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result: %d: %s", res.Code, res.Body.String())
	}
	doc := decode[struct {
		Agree bool `json:"agree"`
		Word  *struct {
			Width       int      `json:"width"`
			Faults      int      `json:"faults"`
			Agree       bool     `json:"agree"`
			Divergences []string `json:"divergences"`
		} `json:"word"`
		Mport *struct {
			Ports       int      `json:"ports"`
			Faults      int      `json:"faults"`
			Agree       bool     `json:"agree"`
			Divergences []string `json:"divergences"`
		} `json:"mport"`
	}](t, res)
	if !doc.Agree {
		t.Fatalf("bit-level cross-check diverged: %s", res.Body.String())
	}
	if doc.Word == nil || doc.Word.Width != 4 || !doc.Word.Agree || len(doc.Word.Divergences) != 0 {
		t.Fatalf("word cross-check = %+v", doc.Word)
	}
	if doc.Mport == nil || doc.Mport.Ports != 2 || !doc.Mport.Agree || len(doc.Mport.Divergences) != 0 {
		t.Fatalf("mport cross-check = %+v", doc.Mport)
	}
}

// TestOptimizeBISTWeightChangesKey: the bist_weight knob is part of the
// optimizer's fitness, so it must be part of the content address — a
// weighted run must never be served a weight-free cached result.
func TestOptimizeBISTWeightChangesKey(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	run := func(body string) optimizeDoc {
		w := do(t, s, "POST", "/v1/optimize", body)
		if w.Code == http.StatusOK { // cache hit: the result document directly
			return decode[optimizeDoc](t, w)
		}
		if w.Code != http.StatusAccepted {
			t.Fatalf("POST %s: status %d: %s", body, w.Code, w.Body.String())
		}
		env := decode[jobEnvelope](t, w)
		if j := pollJob(t, s, env.Job.ID); j.Status != JobDone {
			t.Fatalf("job = %+v", j)
		}
		res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
		if res.Code != http.StatusOK {
			t.Fatalf("result: %d: %s", res.Code, res.Body.String())
		}
		return decode[optimizeDoc](t, res)
	}

	plain := run(`{"list":"list2","march":{"name":"March ABL1"},"budget":200}`)
	weighted := run(`{"list":"list2","march":{"name":"March ABL1"},"budget":200,"bist_weight":0.5}`)
	if plain.Key == weighted.Key {
		t.Fatalf("bist_weight did not change the cache key %s", plain.Key)
	}
	for _, doc := range []optimizeDoc{plain, weighted} {
		if doc.Report.Coverage != 100 {
			t.Fatalf("optimizer lost coverage: %+v", doc.Report)
		}
	}
	// And a spelled-out zero weight is the default spelling: same key.
	zero := run(`{"list":"list2","march":{"name":"March ABL1"},"budget":200,"bist_weight":0}`)
	if zero.Key != plain.Key {
		t.Fatalf("bist_weight:0 got its own key %s (default %s)", zero.Key, plain.Key)
	}
}
