package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// jobResult submits an async request (generate or verify), waits for the
// job, and returns the raw result document bytes.
func jobResult(t *testing.T, s *Server, path, body string) []byte {
	t.Helper()
	w := do(t, s, "POST", path, body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST %s: status %d: %s", path, w.Code, w.Body.String())
	}
	env := decode[jobEnvelope](t, w)
	if j := pollJob(t, s, env.Job.ID); j.Status != JobDone {
		t.Fatalf("POST %s: job = %+v, want done", path, j)
	}
	res := do(t, s, "GET", "/v1/jobs/"+env.Job.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", res.Code, res.Body.String())
	}
	return res.Body.Bytes()
}

// TestLanesOffServesIdenticalResponses pins the contract behind the marchd
// -lanes flag: an instance forced onto the scalar simulation engine serves
// byte-identical generate, verify, simulate and detects responses to an
// instance running the default bit-parallel lanes. This is what makes the
// shared result cache safe across instances with different -lanes settings.
func TestLanesOffServesIdenticalResponses(t *testing.T) {
	lanesOn := newTestServer(t, Config{Workers: 2})
	lanesOff := newTestServer(t, Config{Workers: 2, DisableLanes: true})

	// generation_seconds is wall-clock — the one legitimately
	// nondeterministic field of a generate document — so the comparison
	// zeroes it on both sides and requires everything else to match.
	stripTiming := func(raw []byte) map[string]any {
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("decode generate result %q: %v", raw, err)
		}
		stats, ok := doc["stats"].(map[string]any)
		if !ok {
			t.Fatalf("generate result has no stats object: %s", raw)
		}
		stats["generation_seconds"] = 0.0
		return doc
	}
	genBody := `{"list":"list2"}`
	on := stripTiming(jobResult(t, lanesOn, "/v1/generate", genBody))
	off := stripTiming(jobResult(t, lanesOff, "/v1/generate", genBody))
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("generate results differ:\n lanes on:  %+v\n lanes off: %+v", on, off)
	}

	verBody := `{"march":{"name":"March SL"},"list":"list2"}`
	if on, off := jobResult(t, lanesOn, "/v1/verify", verBody), jobResult(t, lanesOff, "/v1/verify", verBody); !bytes.Equal(on, off) {
		t.Fatalf("verify results differ:\n lanes on:  %s\n lanes off: %s", on, off)
	}

	for _, sync := range []struct{ path, body string }{
		// MATS+ misses list2 faults, so both responses carry witnesses —
		// the comparison covers witness equality, not just verdicts.
		{"/v1/simulate", `{"march":{"name":"MATS+"},"list":"list2"}`},
		{"/v1/detects", `{"march":{"name":"MATS+"},"fault":{"kind":"LF1","fps":["<0w1/0/->","<0r0/1/0>"]}}`},
	} {
		on := do(t, lanesOn, "POST", sync.path, sync.body)
		off := do(t, lanesOff, "POST", sync.path, sync.body)
		if on.Code != http.StatusOK || off.Code != http.StatusOK {
			t.Fatalf("POST %s: status %d / %d: %s / %s", sync.path, on.Code, off.Code, on.Body.String(), off.Body.String())
		}
		if !bytes.Equal(on.Body.Bytes(), off.Body.Bytes()) {
			t.Fatalf("%s responses differ:\n lanes on:  %s\n lanes off: %s", sync.path, on.Body.String(), off.Body.String())
		}
	}
}
