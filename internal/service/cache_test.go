package service

import (
	"testing"

	"marchgen"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes the eviction victim
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Fatalf("c = %q, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestResultCachePutRefreshes(t *testing.T) {
	c := newResultCache(4)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	if v, _ := c.Get("k"); string(v) != "v2" {
		t.Fatalf("got %q, want v2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestGenerateKeyCanonicalEquivalence(t *testing.T) {
	faults := marchgen.List2()

	// Omitted defaults and spelled-out defaults are the same request.
	k1, err := generateKey(faults, marchgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := generateKey(faults, marchgen.Options{Name: "March GEN", MaxSOLen: 11, MaxRepairRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("canonically equal options hash differently:\n%s\n%s", k1, k2)
	}

	// Worker count never affects results, so it must not affect the key.
	k3, err := generateKey(faults, marchgen.Options{
		SearchConfig: marchgen.SimConfig{Size: 4, Workers: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k1 {
		t.Fatalf("worker count leaked into the cache key")
	}

	// A semantically different request must hash differently.
	k4, err := generateKey(faults, marchgen.Options{Aggressive: true})
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Fatalf("aggressive option did not change the cache key")
	}

	// And so must a different fault list.
	k5, err := generateKey(marchgen.List1(), marchgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k5 == k1 {
		t.Fatalf("fault list did not change the cache key")
	}
}
