package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// JobStatus is the lifecycle state of an asynchronous job.
type JobStatus string

// Job lifecycle states. A job moves queued → running → one of the three
// terminal states; a queued job canceled before a worker picks it up moves
// straight to canceled.
const (
	JobQueued   JobStatus = "queued"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is an immutable snapshot of a job's state, safe to marshal and hand
// out concurrently with the job's execution.
type Job struct {
	ID       string    `json:"id"`
	Status   JobStatus `json:"status"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is the raw result document of a done job.
	Result json.RawMessage `json:"result,omitempty"`
}

// Submission errors.
var (
	// ErrQueueFull is returned when the bounded job queue cannot accept
	// another job; callers should translate it to a backpressure response
	// (HTTP 503) rather than block.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining is returned once shutdown has begun.
	ErrDraining = errors.New("service: shutting down")
)

// job is the engine's mutable record; all fields behind mu except the
// immutable id/created/fn/ctx/cancel.
type job struct {
	id      string
	created time.Time
	class   admitClass
	fn      func(context.Context) ([]byte, error)
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	status   JobStatus
	started  time.Time
	finished time.Time
	err      error
	result   []byte
	done     chan struct{} // closed when the job reaches a terminal state
}

// snapshot returns the API view of the job.
func (j *job) snapshot(withResult bool) Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Job{
		ID:       j.id,
		Status:   j.status,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if withResult && j.status == JobDone {
		s.Result = json.RawMessage(j.result)
	}
	return s
}

// finalize moves the job to a terminal state exactly once.
func (j *job) finalize(status JobStatus, result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.status = status
	j.result = result
	j.err = err
	j.finished = time.Now()
	close(j.done)
}

// tryStart atomically moves a queued job to running. It returns false when
// the job is already terminal (canceled while queued): exactly one of
// tryStart and cancelQueued wins, which is what keeps the engine's queued
// counter and the admission controller's slots exact under racing
// cancels.
func (j *job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.status = JobRunning
	j.started = time.Now()
	return true
}

// cancelQueued atomically finalizes a job that is still queued; it returns
// false if the job already started (or is already terminal), in which case
// the caller must cancel via the context instead.
func (j *job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobQueued {
		return false
	}
	j.status = JobCanceled
	j.err = context.Canceled
	j.finished = time.Now()
	close(j.done)
	return true
}

// jobEngine is a bounded worker pool with a bounded queue: the async half
// of the marchd service. Generation work is submitted as closures; each job
// carries its own deadline-bearing context derived from the engine's base
// context, so individual jobs can be canceled and a shutdown can cancel
// everything still running once the drain deadline passes.
type jobEngine struct {
	queue      chan *job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	maxTimeout time.Duration
	retain     int

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // insertion order, for retention eviction
	draining bool
	// queued counts jobs admitted but not yet started. It is NOT len(queue):
	// a job canceled while queued leaves a tombstone in the channel until a
	// worker drains it, but releases its queued slot (and its admission
	// budget) the moment the cancel lands.
	queued int

	// onStart, when set, runs when a worker dequeues a live job, with the
	// job already marked running (admission queue-wait observation).
	onStart func(*job)
	// onTerminal, when set, runs after a job reaches a terminal state (used
	// for metrics, admission slot release and in-flight dedup bookkeeping).
	// It fires exactly once per job.
	onTerminal func(*job)
	// onPanic, when set, runs once per contained job panic (metrics).
	onPanic func()
}

// newJobEngine starts workers goroutines consuming a queue of the given
// depth. maxTimeout caps every job's deadline; retain bounds how many
// terminal jobs are kept for polling before the oldest are evicted.
func newJobEngine(workers, depth int, maxTimeout time.Duration, retain int) *jobEngine {
	ctx, cancel := context.WithCancel(context.Background())
	e := &jobEngine{
		queue:      make(chan *job, depth),
		baseCtx:    ctx,
		baseCancel: cancel,
		maxTimeout: maxTimeout,
		retain:     retain,
		jobs:       make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func (e *jobEngine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.runJob(j)
	}
}

func (e *jobEngine) runJob(j *job) {
	defer j.cancel()   // release the deadline timer
	if !j.tryStart() { // canceled while queued: its slot was already released
		return
	}
	e.mu.Lock()
	if e.queued > 0 {
		e.queued--
	}
	e.mu.Unlock()
	if e.onStart != nil {
		e.onStart(j)
	}

	result, err := e.safeRun(j)
	switch {
	case err == nil:
		j.finalize(JobDone, result, nil)
	case errors.Is(err, context.Canceled):
		j.finalize(JobCanceled, nil, err)
	default:
		j.finalize(JobFailed, nil, err)
	}
	if e.onTerminal != nil {
		e.onTerminal(j)
	}
}

// safeRun executes the job's closure with panic containment: a panicking
// generation must fail its own job (with the captured stack as the
// error) and leave the worker alive for the queue behind it, not take
// the whole process down.
func (e *jobEngine) safeRun(j *job) (result []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			result = nil
			err = fmt.Errorf("service: job %s panicked: %v\n%s", j.id, r, debug.Stack())
			if e.onPanic != nil {
				e.onPanic()
			}
		}
	}()
	return j.fn(j.ctx)
}

// newJobID draws a random job id. Entropy exhaustion is surfaced as an
// error (mapped to HTTP 500 by the submit handler), not a panic: an id
// we cannot mint is one failed request, never a dead process.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: job id entropy: %w", err)
	}
	return "j-" + hex.EncodeToString(b[:]), nil
}

// Submit enqueues fn as a new job of the given admission class with the
// given deadline (capped at the engine's maximum; 0 means the maximum). It
// never blocks: a full queue returns ErrQueueFull immediately.
func (e *jobEngine) Submit(class admitClass, timeout time.Duration, fn func(context.Context) ([]byte, error)) (*job, error) {
	if timeout <= 0 || timeout > e.maxTimeout {
		timeout = e.maxTimeout
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		return nil, ErrDraining
	}
	ctx, cancel := context.WithTimeout(e.baseCtx, timeout)
	j := &job{
		id:      id,
		created: time.Now(),
		class:   class,
		fn:      fn,
		ctx:     ctx,
		cancel:  cancel,
		status:  JobQueued,
		done:    make(chan struct{}),
	}
	// The enqueue happens under the engine lock so it cannot race a
	// Shutdown closing the queue; the channel is buffered, so the send
	// either succeeds immediately or the queue is full.
	select {
	case e.queue <- j:
		e.jobs[j.id] = j
		e.order = append(e.order, j.id)
		e.queued++
		e.evictLocked()
		return j, nil
	default:
		cancel()
		return nil, ErrQueueFull
	}
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Requires e.mu held.
func (e *jobEngine) evictLocked() {
	if e.retain <= 0 || len(e.jobs) <= e.retain {
		return
	}
	kept := e.order[:0]
	for _, id := range e.order {
		j := e.jobs[id]
		if len(e.jobs) > e.retain && j != nil && func() bool {
			j.mu.Lock()
			defer j.mu.Unlock()
			return j.status.Terminal()
		}() {
			delete(e.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

// Get returns the job by id.
func (e *jobEngine) Get(id string) (*job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Cancel cancels a job: a queued job terminates immediately (releasing its
// queue slot — the tombstone left in the channel holds nothing), a running
// one as soon as its work observes the canceled context. Canceling a
// terminal job is a no-op. The second return reports whether the id was
// known.
func (e *jobEngine) Cancel(id string) (*job, bool) {
	j, ok := e.Get(id)
	if !ok {
		return nil, false
	}
	if j.cancelQueued() {
		// The cancel won the race against a worker's tryStart: this path
		// owns the slot release and the (single) terminal notification.
		e.mu.Lock()
		if e.queued > 0 {
			e.queued--
		}
		e.mu.Unlock()
		if e.onTerminal != nil {
			e.onTerminal(j)
		}
	}
	j.cancel()
	return j, true
}

// Depth returns the number of queued (not yet running) jobs. Tombstones —
// jobs canceled while queued but not yet drained from the channel by a
// worker — are not counted: their slots are already free.
func (e *jobEngine) Depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queued
}

// Shutdown stops accepting work and drains: queued and running jobs are
// allowed to finish until ctx expires, after which every remaining job's
// context is canceled and the workers are awaited. It returns nil when all
// jobs completed within the drain window.
func (e *jobEngine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return ErrDraining
	}
	e.draining = true
	close(e.queue) // under the lock: Submit's enqueue holds it too
	e.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		// Drain window expired: cancel everything still in flight, then wait
		// for the workers to observe it.
		e.baseCancel()
		<-finished
		return fmt.Errorf("service: drain window expired; in-flight jobs canceled: %w", ctx.Err())
	}
}
