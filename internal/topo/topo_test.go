package topo

import (
	"testing"
	"testing/quick"
)

func TestNewAndValidate(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero rows must fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("zero cols must fail")
	}
	tt, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Cells() != 32 {
		t.Errorf("Cells = %d", tt.Cells())
	}
	bad := Topology{Rows: 2, Cols: 2, RowScramble: []int{0, 0}}
	if err := bad.Validate(); err == nil {
		t.Error("non-permutation scramble must fail")
	}
	bad2 := Topology{Rows: 2, Cols: 2, ColScramble: []int{0}}
	if err := bad2.Validate(); err == nil {
		t.Error("short scramble must fail")
	}
}

func TestPositionIdentity(t *testing.T) {
	tt, _ := New(2, 4)
	row, col, err := tt.Position(5)
	if err != nil || row != 1 || col != 1 {
		t.Errorf("Position(5) = (%d,%d), %v", row, col, err)
	}
	if _, _, err := tt.Position(8); err == nil {
		t.Error("out-of-range address must fail")
	}
	addr, err := tt.AddressAt(1, 1)
	if err != nil || addr != 5 {
		t.Errorf("AddressAt(1,1) = %d, %v", addr, err)
	}
	if _, err := tt.AddressAt(2, 0); err == nil {
		t.Error("out-of-range position must fail")
	}
}

func TestPositionScrambled(t *testing.T) {
	tt := Topology{Rows: 2, Cols: 4, ColScramble: []int{2, 3, 0, 1}, RowScramble: []int{1, 0}}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Logical address 0 = (row 0, col 0) → physical (1, 2).
	row, col, err := tt.Position(0)
	if err != nil || row != 1 || col != 2 {
		t.Errorf("Position(0) = (%d,%d), %v", row, col, err)
	}
	back, err := tt.AddressAt(1, 2)
	if err != nil || back != 0 {
		t.Errorf("AddressAt inverse failed: %d, %v", back, err)
	}
}

// Property: AddressAt inverts Position for random scrambles.
func TestPositionRoundTripQuick(t *testing.T) {
	tt := Topology{Rows: 4, Cols: 4,
		ColScramble: []int{3, 1, 0, 2},
		RowScramble: []int{2, 0, 3, 1},
	}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(raw uint8) bool {
		addr := int(raw) % tt.Cells()
		row, col, err := tt.Position(addr)
		if err != nil {
			return false
		}
		back, err := tt.AddressAt(row, col)
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhysicalNeighbors(t *testing.T) {
	tt, _ := New(2, 3)
	// Address 0 = (0,0): neighbors (0,1)=1 and (1,0)=3.
	n, err := tt.PhysicalNeighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n) != 2 || !contains(n, 1) || !contains(n, 3) {
		t.Errorf("neighbors of 0 = %v", n)
	}
	// Address 4 = (1,1): neighbors 3, 5, 1.
	n, _ = tt.PhysicalNeighbors(4)
	if len(n) != 3 || !contains(n, 3) || !contains(n, 5) || !contains(n, 1) {
		t.Errorf("neighbors of 4 = %v", n)
	}
}

func TestAdjacentPairsCount(t *testing.T) {
	tt, _ := New(3, 3)
	pairs, err := tt.AdjacentPairs()
	if err != nil {
		t.Fatal(err)
	}
	// A 3x3 grid has 2*3 horizontal + 3*2 vertical = 12 adjacent pairs.
	if len(pairs) != 12 {
		t.Errorf("%d adjacent pairs, want 12", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("pair %v not ordered", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

// Scrambling preserves the physical pair count but changes which logical
// addresses are adjacent.
func TestScramblingChangesLogicalAdjacency(t *testing.T) {
	plain := Topology{Rows: 4, Cols: 4}
	scrambled := Topology{Rows: 4, Cols: 4, ColScramble: []int{2, 0, 3, 1}}

	pp, err := plain.AdjacentPairs()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := scrambled.AdjacentPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pp) != len(sp) {
		t.Errorf("pair counts differ: %d vs %d", len(pp), len(sp))
	}

	plainRemote, err := plain.LogicallyAdjacentPhysicallyRemote()
	if err != nil {
		t.Fatal(err)
	}
	scrambledRemote, err := scrambled.LogicallyAdjacentPhysicallyRemote()
	if err != nil {
		t.Fatal(err)
	}
	// Unscrambled: only the row-wrap pairs (3,4), (7,8), (11,12) are
	// logically adjacent but physically remote.
	if plainRemote != 3 {
		t.Errorf("plain remote pairs = %d, want 3", plainRemote)
	}
	if scrambledRemote <= plainRemote {
		t.Errorf("scrambling must increase remote pairs: %d <= %d", scrambledRemote, plainRemote)
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
