// Package topo models the logical-to-physical address topology of an SRAM
// array: row/column organization and address scrambling. Coupling and
// multi-port weak faults are physical-neighborhood phenomena, but march
// tests walk *logical* addresses; the topology answers which logical
// addresses are physically adjacent, which is what decides the realistic
// placements of neighborhood-restricted fault models (the adjacency
// assumption of internal/mport, and the "physically adjacent couplings"
// restriction used in industrial fault lists).
package topo

import (
	"fmt"
)

// Topology describes an array of Rows × Cols one-bit cells. Logical address
// a maps to physical position (row, col) after optional scrambling: the
// scramble tables permute the row and column index bits' interpretation
// (table-based, so any permutation is expressible, not just bit swaps).
type Topology struct {
	Rows, Cols int
	// RowScramble and ColScramble are permutations applied to the logical
	// row/column index; nil means identity. len must equal Rows/Cols.
	RowScramble []int
	ColScramble []int
}

// New builds an unscrambled topology.
func New(rows, cols int) (Topology, error) {
	t := Topology{Rows: rows, Cols: cols}
	return t, t.Validate()
}

// Validate checks dimensions and scramble tables.
func (t Topology) Validate() error {
	if t.Rows < 1 || t.Cols < 1 {
		return fmt.Errorf("topo: dimensions %dx%d invalid", t.Rows, t.Cols)
	}
	if t.RowScramble != nil {
		if err := checkPerm(t.RowScramble, t.Rows); err != nil {
			return fmt.Errorf("topo: row scramble: %v", err)
		}
	}
	if t.ColScramble != nil {
		if err := checkPerm(t.ColScramble, t.Cols); err != nil {
			return fmt.Errorf("topo: column scramble: %v", err)
		}
	}
	return nil
}

func checkPerm(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("not a permutation of [0,%d)", n)
		}
		seen[v] = true
	}
	return nil
}

// Cells returns the array size Rows*Cols.
func (t Topology) Cells() int { return t.Rows * t.Cols }

// Position maps a logical address to its physical (row, column).
// Addresses sweep column-major within a row: address = row*Cols + col
// before scrambling.
func (t Topology) Position(addr int) (row, col int, err error) {
	if addr < 0 || addr >= t.Cells() {
		return 0, 0, fmt.Errorf("topo: address %d out of range [0,%d)", addr, t.Cells())
	}
	row, col = addr/t.Cols, addr%t.Cols
	if t.RowScramble != nil {
		row = t.RowScramble[row]
	}
	if t.ColScramble != nil {
		col = t.ColScramble[col]
	}
	return row, col, nil
}

// AddressAt inverts Position: the logical address stored at a physical
// (row, col).
func (t Topology) AddressAt(row, col int) (int, error) {
	if row < 0 || row >= t.Rows || col < 0 || col >= t.Cols {
		return 0, fmt.Errorf("topo: position (%d,%d) out of range", row, col)
	}
	lr, lc := row, col
	if t.RowScramble != nil {
		lr = index(t.RowScramble, row)
	}
	if t.ColScramble != nil {
		lc = index(t.ColScramble, col)
	}
	return lr*t.Cols + lc, nil
}

func index(p []int, v int) int {
	for i, x := range p {
		if x == v {
			return i
		}
	}
	return -1
}

// PhysicalNeighbors returns the logical addresses of the cells physically
// adjacent (4-neighborhood: left, right, up, down) to a logical address.
func (t Topology) PhysicalNeighbors(addr int) ([]int, error) {
	row, col, err := t.Position(addr)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, d := range [][2]int{{0, -1}, {0, 1}, {-1, 0}, {1, 0}} {
		r, c := row+d[0], col+d[1]
		if r < 0 || r >= t.Rows || c < 0 || c >= t.Cols {
			continue
		}
		a, err := t.AddressAt(r, c)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// AdjacentPairs enumerates every unordered pair of logical addresses whose
// cells are physically adjacent — the realistic aggressor/victim placements
// for neighborhood-restricted coupling faults.
func (t Topology) AdjacentPairs() ([][2]int, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var out [][2]int
	for a := 0; a < t.Cells(); a++ {
		neigh, err := t.PhysicalNeighbors(a)
		if err != nil {
			return nil, err
		}
		for _, b := range neigh {
			if a < b {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out, nil
}

// LogicallyAdjacentPhysicallyRemote counts the logical neighbor pairs
// (a, a+1) that are NOT physically adjacent — the quantity address
// scrambling creates, and the reason neighborhood fault models must be
// placed via the topology rather than via logical addresses.
func (t Topology) LogicallyAdjacentPhysicallyRemote() (int, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	remote := 0
	for a := 0; a+1 < t.Cells(); a++ {
		neigh, err := t.PhysicalNeighbors(a)
		if err != nil {
			return 0, err
		}
		adjacent := false
		for _, b := range neigh {
			if b == a+1 {
				adjacent = true
				break
			}
		}
		if !adjacent {
			remote++
		}
	}
	return remote, nil
}
