package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"testing"

	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

// segmentBytes encodes records exactly as AppendSegmentFS would.
func segmentBytes(tb testing.TB, recs []store.Record) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			tb.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// FuzzSegmentMerge drives the coordinator's segment-replay path —
// ParseSegment → GroupShards → Merger.Offer — with arbitrary segment
// bytes and holds it to its contract: whatever the segment says
// (duplicates, out-of-order shards, torn tails, mutated ids, binary
// garbage), the store's already-committed prefix is never altered, every
// shard that does commit validates exactly against the plan, and nothing
// panics.
func FuzzSegmentMerge(f *testing.F) {
	spec := testSpec()
	plan := campaign.Plan(spec)

	ordered := append(append(segmentBytes(f, fakeRecs(plan[1])),
		segmentBytes(f, fakeRecs(plan[2]))...),
		segmentBytes(f, fakeRecs(plan[3]))...)
	f.Add(ordered)
	// A duplicated shard, an out-of-order pair, a re-report of the
	// already-committed shard 0, and a torn tail mid-record.
	f.Add(append(segmentBytes(f, fakeRecs(plan[1])), segmentBytes(f, fakeRecs(plan[1]))...))
	f.Add(append(segmentBytes(f, fakeRecs(plan[3])), segmentBytes(f, fakeRecs(plan[1]))...))
	f.Add(segmentBytes(f, fakeRecs(plan[0])))
	f.Add(ordered[:len(ordered)-7])
	// A record with a mutated unit id and one with an out-of-plan shard.
	mutated := fakeRecs(plan[1])
	mutated[0].ID = "u-ffffffffffffffffffffffff"
	stray := fakeRecs(plan[2])
	stray[0].Shard = 99
	f.Add(append(segmentBytes(f, mutated), segmentBytes(f, stray)...))
	f.Add([]byte("\x00\xff\n{]\nnot json at all\n"))
	f.Add([]byte(`{"id":"u-torn`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// A fresh store with shard 0 already committed: the prefix the
		// segment must never be able to damage.
		dir := spec.Dir(t.TempDir())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(dir, spec.Hash())
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		for _, r := range fakeRecs(plan[0]) {
			if err := st.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Commit(1); err != nil {
			t.Fatal(err)
		}
		prefix, err := os.ReadFile(store.DataPath(dir))
		if err != nil {
			t.Fatal(err)
		}

		m := NewMerger(st, plan)
		for shard, bucket := range GroupShards(plan, store.ParseSegment(data)) {
			// ErrBadShard is an acceptable verdict for hostile input;
			// store I/O errors are not.
			if _, err := m.Offer("wfuzz", shard, bucket); err != nil && !isBadShard(err) {
				t.Fatalf("Offer(%d): %v", shard, err)
			}
		}

		after, err := os.ReadFile(store.DataPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(after, prefix) {
			t.Fatalf("committed prefix was rewritten:\nbefore: %q\nafter:  %q", prefix, after)
		}
		cp := st.Checkpoint()
		if cp.Shards < 1 || cp.Shards != m.Committed() {
			t.Fatalf("checkpoint shards = %d, merger committed = %d", cp.Shards, m.Committed())
		}
		recs, err := st.Records()
		if err != nil {
			t.Fatal(err)
		}
		// Every committed shard — however it arrived — matches the plan.
		off := 0
		for shard := 0; shard < cp.Shards; shard++ {
			n := len(plan[shard].Units)
			if off+n > len(recs) {
				t.Fatalf("store truncated: %d records for %d committed shards", len(recs), cp.Shards)
			}
			if err := ValidateShard(plan[shard], recs[off:off+n]); err != nil {
				t.Fatalf("committed shard %d invalid: %v", shard, err)
			}
			off += n
		}
		if off != len(recs) {
			t.Fatalf("store holds %d records beyond the committed shards", len(recs)-off)
		}
	})
}

func isBadShard(err error) bool { return errors.Is(err, ErrBadShard) }
