package fabric

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"marchgen/internal/buildinfo"
	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

// Worker is the pull side of the fabric: it joins a coordinator, then
// loops lease → execute shards → complete until its context is canceled
// (or, with ExitOnDrain, until every campaign is committed). The zero
// value plus a Coordinator URL is a working worker.
type Worker struct {
	// Coordinator is the coordinator's base URL (e.g. "http://127.0.0.1:8080").
	Coordinator string
	// Name is an optional display label sent in the join handshake.
	Name string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Poll is the idle re-poll interval when no lease is available
	// (default 200ms).
	Poll time.Duration
	// Version and Schema override the handshake identity; tests use them
	// to provoke skew rejection. Defaults: buildinfo.Version(),
	// campaign.SpecSchema.
	Version string
	Schema  string
	// RunShard executes one shard; nil means campaign.ExecuteShard. Tests
	// substitute slow or crashing executors.
	RunShard func(ctx context.Context, sh campaign.Shard, memo *campaign.Memo, disableLanes bool) ([]store.Record, error)
	// ExitOnDrain makes Run return nil once the coordinator reports every
	// campaign committed; without it the worker keeps polling for new
	// campaigns until its context dies.
	ExitOnDrain bool
	// Logf, when set, receives worker event logs.
	Logf func(format string, args ...any)

	id    string
	memos map[string]*campaign.Memo
	plans map[string][]campaign.Shard
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return w.Poll
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) url(endpoint string) string {
	return strings.TrimSuffix(w.Coordinator, "/") + "/v1/fabric/" + endpoint
}

// transient reports whether an error is worth retrying: transport
// failures and coordinator 5xx are; protocol rejections (skew, unknown
// worker/lease, bad shard) are not.
func transient(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Status >= 500
	}
	return true
}

// Run joins the coordinator and serves leases until ctx is canceled. A
// version-skew rejection (or any other permanent protocol rejection at
// join time) is returned as an error; transient coordinator outages are
// retried at the poll interval indefinitely — the lease TTL already
// bounds how long the fleet waits for an unreachable worker, so the
// worker itself can afford patience.
func (w *Worker) Run(ctx context.Context) error {
	if w.memos == nil {
		w.memos = make(map[string]*campaign.Memo)
		w.plans = make(map[string][]campaign.Shard)
	}
	if err := w.join(ctx); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		err := postJSON(w.client(), w.url("lease"), LeaseRequest{Worker: w.id}, &resp)
		switch {
		case err != nil && !transient(err):
			return err
		case err != nil:
			w.logf("fabric worker %s: lease request failed (will retry): %v", w.id, err)
			if !sleepCtx(ctx, w.poll()) {
				return ctx.Err()
			}
			continue
		}
		switch {
		case resp.Lease != nil:
			if err := w.serveLease(ctx, *resp.Lease); err != nil {
				return err
			}
		case resp.Drained && w.ExitOnDrain:
			return nil
		default:
			if !sleepCtx(ctx, w.poll()) {
				return ctx.Err()
			}
		}
	}
}

func (w *Worker) join(ctx context.Context) error {
	version := w.Version
	if version == "" {
		version = buildinfo.Version()
	}
	schema := w.Schema
	if schema == "" {
		schema = campaign.SpecSchema
	}
	req := JoinRequest{Name: w.Name, Version: version, Schema: schema}
	for {
		var resp JoinResponse
		err := postJSON(w.client(), w.url("join"), req, &resp)
		if err == nil {
			w.id = resp.Worker
			w.logf("fabric worker %s: joined %s", w.id, w.Coordinator)
			return nil
		}
		if !transient(err) {
			return err
		}
		w.logf("fabric worker: join failed (will retry): %v", err)
		if !sleepCtx(ctx, w.poll()) {
			return ctx.Err()
		}
	}
}

// leaseBounds is the worker's view of its current lease range, updated
// from heartbeat and complete responses (a peer may steal the tail, so To
// can shrink mid-lease).
type leaseBounds struct {
	mu       sync.Mutex
	to       int
	canceled bool
}

func (b *leaseBounds) limit() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.to, b.canceled
}

func (b *leaseBounds) shrink(to int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if to < b.to {
		b.to = to
	}
}

func (b *leaseBounds) cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.canceled = true
}

// serveLease executes a granted range in shard order, heartbeating in the
// background at a third of the TTL. Shard execution errors abort the
// lease (the TTL reassigns its remainder); only context cancellation is
// returned to Run.
func (w *Worker) serveLease(ctx context.Context, g LeaseGrant) error {
	plan, ok := w.plans[g.Campaign]
	if !ok {
		plan = campaign.Plan(g.Spec)
		w.plans[g.Campaign] = plan
		w.memos[g.Campaign] = campaign.NewMemo()
	}
	if g.To > len(plan) {
		w.logf("fabric worker %s: lease %s range [%d,%d) exceeds plan (%d shards); abandoning", w.id, g.Lease, g.From, g.To, len(plan))
		return nil
	}
	run := w.RunShard
	if run == nil {
		run = campaign.ExecuteShard
	}

	bounds := &leaseBounds{to: g.To}
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		interval := g.TTL() / 3
		if interval <= 0 {
			interval = time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
			}
			var resp HeartbeatResponse
			err := postJSON(w.client(), w.url("heartbeat"), HeartbeatRequest{Worker: w.id, Lease: g.Lease}, &resp)
			switch {
			case err == nil:
				bounds.shrink(resp.To)
			case !transient(err):
				// Expired and reassigned: stop executing — a peer owns
				// these shards now.
				w.logf("fabric worker %s: lease %s lost: %v", w.id, g.Lease, err)
				bounds.cancel()
				return
			}
		}
	}()
	defer func() {
		stopHB()
		hbDone.Wait()
	}()

	for i := g.From; ; i++ {
		to, canceled := bounds.limit()
		if canceled || i >= to {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		recs, err := run(ctx, plan[i], w.memos[g.Campaign], g.DisableLanes)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("fabric worker %s: shard %d failed, abandoning lease %s: %v", w.id, i, g.Lease, err)
			return nil
		}
		resp, err := w.complete(ctx, CompleteRequest{
			Worker: w.id, Lease: g.Lease, Campaign: g.Campaign, Shard: i, Records: recs,
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("fabric worker %s: completing shard %d failed, abandoning lease %s: %v", w.id, i, g.Lease, err)
			return nil
		}
		w.logf("fabric worker %s: shard %d of %s complete (dup=%v)", w.id, i, g.Campaign, resp.Duplicate)
		bounds.shrink(resp.To)
		if resp.Done {
			return nil
		}
	}
}

// complete posts one shard report, retrying transient failures a few
// times: the work is already done, so a moment of patience beats
// re-executing the shard elsewhere.
func (w *Worker) complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if err := ctx.Err(); err != nil {
			return CompleteResponse{}, err
		}
		lastErr = postJSON(w.client(), w.url("complete"), req, &resp)
		if lastErr == nil {
			return resp, nil
		}
		if !transient(lastErr) {
			return CompleteResponse{}, lastErr
		}
		if !sleepCtx(ctx, time.Duration(attempt+1)*50*time.Millisecond) {
			return CompleteResponse{}, ctx.Err()
		}
	}
	return CompleteResponse{}, fmt.Errorf("fabric: complete: %w", lastErr)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
