package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"

	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

// testSpec is a six-shard, one-unit-per-shard spec: small enough to
// synthesize records for, sharded finely enough to exercise ordering.
func testSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "fabric-merge",
		Lists:     []string{"list2"},
		Orders:    []string{"free", "up", "down"},
		Sizes:     []int{3, 4},
		ShardSize: 1,
	}.Canonical()
}

// fakeRecs builds records that satisfy ValidateShard without running any
// unit work: merge logic is independent of what the bodies say.
func fakeRecs(sh campaign.Shard) []store.Record {
	recs := make([]store.Record, 0, len(sh.Units))
	for _, u := range sh.Units {
		recs = append(recs, store.Record{
			ID: u.ID(), Shard: sh.ID, Seq: u.Seq,
			Body: json.RawMessage(fmt.Sprintf(`{"seq":%d}`, u.Seq)),
		})
	}
	return recs
}

func openTestStore(t *testing.T, spec campaign.Spec) (*store.Store, string) {
	t.Helper()
	dir := spec.Dir(t.TempDir())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, spec.Hash())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, dir
}

func TestMergerCommitsInPlanOrder(t *testing.T) {
	spec := testSpec()
	plan := campaign.Plan(spec)
	st, _ := openTestStore(t, spec)
	m := NewMerger(st, plan)

	// Offer shards out of order: nothing commits until the gap fills.
	for _, shard := range []int{2, 1, 4} {
		fresh, err := m.Offer("w1", shard, fakeRecs(plan[shard]))
		if err != nil || !fresh {
			t.Fatalf("Offer(%d) = (%v, %v), want (true, nil)", shard, fresh, err)
		}
	}
	if got := m.Committed(); got != 0 {
		t.Fatalf("committed %d shards before shard 0 arrived, want 0", got)
	}
	if _, err := m.Offer("w2", 0, fakeRecs(plan[0])); err != nil {
		t.Fatal(err)
	}
	if got := m.Committed(); got != 3 {
		t.Fatalf("committed = %d after shard 0, want 3 (0..2 contiguous)", got)
	}
	for _, shard := range []int{3, 5} {
		if _, err := m.Offer("w1", shard, fakeRecs(plan[shard])); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Done() || m.Committed() != len(plan) {
		t.Fatalf("Done=%v Committed=%d, want complete plan of %d", m.Done(), m.Committed(), len(plan))
	}
	if by := m.CommittedBy(); by[0] != "w2" || by[2] != "w1" {
		t.Fatalf("attribution wrong: %v", by)
	}
	recs, err := st.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != spec.Units() {
		t.Fatalf("store holds %d records, want %d", len(recs), spec.Units())
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("record %d has seq %d: store is not in plan order", i, r.Seq)
		}
	}
}

func TestMergerDuplicatesAreNoOps(t *testing.T) {
	spec := testSpec()
	plan := campaign.Plan(spec)
	st, _ := openTestStore(t, spec)
	m := NewMerger(st, plan)

	if fresh, err := m.Offer("w1", 0, fakeRecs(plan[0])); err != nil || !fresh {
		t.Fatalf("first offer: (%v, %v)", fresh, err)
	}
	// Duplicate of a committed shard, then of a staged one.
	if fresh, err := m.Offer("w2", 0, fakeRecs(plan[0])); err != nil || fresh {
		t.Fatalf("dup of committed shard: (%v, %v), want (false, nil)", fresh, err)
	}
	if _, err := m.Offer("w1", 3, fakeRecs(plan[3])); err != nil {
		t.Fatal(err)
	}
	if fresh, err := m.Offer("w2", 3, fakeRecs(plan[3])); err != nil || fresh {
		t.Fatalf("dup of staged shard: (%v, %v), want (false, nil)", fresh, err)
	}
	if cp := st.Checkpoint(); cp.Records != 1 {
		t.Fatalf("%d records committed, want 1 (duplicates must not append)", cp.Records)
	}
}

func TestMergerRejectsMismatchedRecords(t *testing.T) {
	spec := testSpec()
	plan := campaign.Plan(spec)
	st, _ := openTestStore(t, spec)
	m := NewMerger(st, plan)
	if _, err := m.Offer("w1", 0, fakeRecs(plan[0])); err != nil {
		t.Fatal(err)
	}
	before := st.Checkpoint()

	bad := []struct {
		name  string
		shard int
		recs  []store.Record
	}{
		{"wrong count", 1, nil},
		{"wrong unit id", 1, func() []store.Record {
			r := fakeRecs(plan[1])
			r[0].ID = "u-000000000000000000000000"
			return r
		}()},
		{"wrong seq", 1, func() []store.Record {
			r := fakeRecs(plan[1])
			r[0].Seq += 7
			return r
		}()},
		{"wrong shard tag", 1, func() []store.Record {
			r := fakeRecs(plan[1])
			r[0].Shard = 5
			return r
		}()},
		{"invalid body", 1, func() []store.Record {
			r := fakeRecs(plan[1])
			r[0].Body = json.RawMessage(`{"torn`)
			return r
		}()},
		{"shard out of plan", len(plan) + 3, fakeRecs(plan[1])},
	}
	for _, tc := range bad {
		if _, err := m.Offer("w1", tc.shard, tc.recs); !errors.Is(err, ErrBadShard) {
			t.Errorf("%s: err = %v, want ErrBadShard", tc.name, err)
		}
	}
	if cp := st.Checkpoint(); cp != before {
		t.Fatalf("checkpoint moved from %+v to %+v on rejected offers", before, cp)
	}
}

func TestGroupShardsNormalizesLooseRecords(t *testing.T) {
	spec := testSpec()
	plan := campaign.Plan(spec)

	var loose []store.Record
	// Shard 1 out of order, with a duplicate seq; shard 0 complete; one
	// record naming a shard outside the plan.
	loose = append(loose, fakeRecs(plan[1])...)
	loose = append(loose, fakeRecs(plan[1])[0])
	loose = append(loose, fakeRecs(plan[0])...)
	stray := fakeRecs(plan[0])[0]
	stray.Shard = 99
	loose = append(loose, stray)

	buckets := GroupShards(plan, loose)
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2: %v", len(buckets), buckets)
	}
	for shard, recs := range buckets {
		if err := ValidateShard(plan[shard], recs); err != nil {
			t.Errorf("bucket %d does not validate: %v", shard, err)
		}
	}
}
