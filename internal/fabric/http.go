package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"marchgen/internal/campaign"
)

// Error codes carried in fabric error bodies, so clients can react to the
// condition instead of parsing prose.
const (
	CodeSkew            = "skew"
	CodeUnknownWorker   = "unknown_worker"
	CodeUnknownLease    = "unknown_lease"
	CodeUnknownCampaign = "unknown_campaign"
	CodeBadShard        = "bad_shard"
	CodeBadRequest      = "bad_request"
	CodeInternal        = "internal"
)

// ErrorBody is the JSON error document of every fabric endpoint.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// RemoteError is a fabric error as seen by a client: the HTTP status plus
// the decoded body.
type RemoteError struct {
	Status int
	Code   string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("fabric: coordinator rejected request (%d %s): %s", e.Status, e.Code, e.Msg)
}

// errStatus maps protocol sentinels to an HTTP status and error code.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrSkew):
		return http.StatusConflict, CodeSkew
	case errors.Is(err, ErrUnknownWorker):
		return http.StatusGone, CodeUnknownWorker
	case errors.Is(err, ErrUnknownLease):
		return http.StatusGone, CodeUnknownLease
	case errors.Is(err, ErrUnknownCampaign):
		return http.StatusNotFound, CodeUnknownCampaign
	case errors.Is(err, ErrBadShard):
		return http.StatusBadRequest, CodeBadShard
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure","code":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

func writeErr(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	writeJSON(w, status, ErrorBody{Error: err.Error(), Code: code})
}

func decodeInto(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("fabric: bad request body: %w", err)
	}
	return nil
}

// Mux returns a handler serving the full fabric protocol under
// /v1/fabric/. cmd/marchd mounts it via internal/service; tests mount it
// directly on httptest servers.
func (c *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fabric/join", c.HandleJoin)
	mux.HandleFunc("POST /v1/fabric/lease", c.HandleLease)
	mux.HandleFunc("POST /v1/fabric/heartbeat", c.HandleHeartbeat)
	mux.HandleFunc("POST /v1/fabric/complete", c.HandleComplete)
	mux.HandleFunc("POST /v1/fabric/campaigns", c.HandleSubmit)
	mux.HandleFunc("GET /v1/fabric/campaigns/{id}", c.HandleSession)
	mux.HandleFunc("GET /v1/fabric/status", c.HandleStatus)
	return mux
}

// HandleJoin serves POST /v1/fabric/join.
func (c *Coordinator) HandleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := decodeInto(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	resp, err := c.Join(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// HandleLease serves POST /v1/fabric/lease.
func (c *Coordinator) HandleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decodeInto(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	resp, err := c.Lease(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// HandleHeartbeat serves POST /v1/fabric/heartbeat.
func (c *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeInto(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	resp, err := c.Heartbeat(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// HandleComplete serves POST /v1/fabric/complete.
func (c *Coordinator) HandleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decodeInto(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	resp, err := c.Complete(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// SubmitRequest is the body of POST /v1/fabric/campaigns.
type SubmitRequest struct {
	Spec         campaign.Spec `json:"spec"`
	DisableLanes bool          `json:"disable_lanes,omitempty"`
}

// HandleSubmit serves POST /v1/fabric/campaigns.
func (c *Coordinator) HandleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decodeInto(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	status, err := c.Submit(req.Spec, SubmitOptions{DisableLanes: req.DisableLanes})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error(), Code: CodeBadRequest})
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// HandleSession serves GET /v1/fabric/campaigns/{id}.
func (c *Coordinator) HandleSession(w http.ResponseWriter, r *http.Request) {
	status, ok := c.SessionStatusByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorBody{
			Error: fmt.Sprintf("fabric: unknown campaign %q", r.PathValue("id")), Code: CodeUnknownCampaign,
		})
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// HandleStatus serves GET /v1/fabric/status.
func (c *Coordinator) HandleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// postJSON is the worker-side request helper: one POST, JSON in and out,
// coordinator rejections surfaced as *RemoteError.
func postJSON(client *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fabric: encode request: %w", err)
	}
	httpResp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: %w", err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("fabric: read response: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var eb ErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return &RemoteError{Status: httpResp.StatusCode, Code: eb.Code, Msg: eb.Error}
		}
		return &RemoteError{Status: httpResp.StatusCode, Code: CodeInternal, Msg: string(raw)}
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		return fmt.Errorf("fabric: decode response: %w", err)
	}
	return nil
}
