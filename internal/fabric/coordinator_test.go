package fabric

import (
	"errors"
	"testing"
	"time"

	"marchgen/internal/campaign"
)

// fakeClock is the injectable coordinator clock: expiry becomes a pure
// function of explicit Advance calls.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestCoordinator(t *testing.T, clock *fakeClock, leaseShards int) *Coordinator {
	t.Helper()
	cfg := Config{
		Root:        t.TempDir(),
		LeaseShards: leaseShards,
		LeaseTTL:    time.Second,
		Version:     "test-v1",
		Schema:      campaign.SpecSchema,
	}
	if clock != nil {
		cfg.Now = clock.Now
	}
	c := NewCoordinator(cfg)
	t.Cleanup(c.Shutdown)
	return c
}

func join(t *testing.T, c *Coordinator) string {
	t.Helper()
	resp, err := c.Join(JoinRequest{Version: "test-v1", Schema: campaign.SpecSchema})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Worker
}

func TestJoinRejectsVersionSkew(t *testing.T) {
	c := newTestCoordinator(t, nil, 0)
	cases := []JoinRequest{
		{Version: "test-v2", Schema: campaign.SpecSchema},   // build skew
		{Version: "test-v1", Schema: "marchcamp/spec/v999"}, // schema skew
		{Version: "", Schema: ""},                           // missing identity
	}
	for _, req := range cases {
		if _, err := c.Join(req); !errors.Is(err, ErrSkew) {
			t.Errorf("Join(%+v) err = %v, want ErrSkew", req, err)
		}
	}
	if got := c.Counters().JoinRejects; got != uint64(len(cases)) {
		t.Fatalf("fabric_join_rejects_total = %d, want %d", got, len(cases))
	}
	if _, err := c.Join(JoinRequest{Version: "test-v1", Schema: campaign.SpecSchema}); err != nil {
		t.Fatalf("matching join rejected: %v", err)
	}
}

func TestLeaseGrantsContiguousRanges(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clock, 4)
	w := join(t, c)

	// No campaigns yet: idle, not drained.
	resp, err := c.Lease(LeaseRequest{Worker: w})
	if err != nil || !resp.Idle || resp.Drained {
		t.Fatalf("lease before submit = %+v, %v; want Idle", resp, err)
	}

	spec := testSpec()
	if _, err := c.Submit(spec, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	plan := campaign.Plan(spec)

	first, err := c.Lease(LeaseRequest{Worker: w})
	if err != nil || first.Lease == nil {
		t.Fatalf("lease = %+v, %v", first, err)
	}
	if first.Lease.From != 0 || first.Lease.To != 4 {
		t.Fatalf("first grant [%d,%d), want [0,4)", first.Lease.From, first.Lease.To)
	}
	second, err := c.Lease(LeaseRequest{Worker: w})
	if err != nil || second.Lease == nil || second.Lease.From != 4 || second.Lease.To != len(plan) {
		t.Fatalf("second grant = %+v, %v; want [4,%d)", second.Lease, err, len(plan))
	}
	if second.Lease.Campaign != spec.ID() || second.Lease.Spec.Hash() != spec.Hash() {
		t.Fatalf("grant carries wrong campaign identity: %+v", second.Lease)
	}
}

func TestLeaseExpiryReassignsShards(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clock, 100)
	spec := testSpec()
	plan := campaign.Plan(spec)
	if _, err := c.Submit(spec, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}

	w1 := join(t, c)
	g, err := c.Lease(LeaseRequest{Worker: w1})
	if err != nil || g.Lease == nil {
		t.Fatalf("lease = %+v, %v", g, err)
	}
	// w1 completes one shard, then goes silent past the TTL.
	if _, err := c.Complete(CompleteRequest{
		Worker: w1, Lease: g.Lease.Lease, Campaign: spec.ID(), Shard: 0, Records: fakeRecs(plan[0]),
	}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)

	// Its heartbeat now fails: the lease is gone.
	if _, err := c.Heartbeat(HeartbeatRequest{Worker: w1, Lease: g.Lease.Lease}); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("heartbeat after expiry: %v, want ErrUnknownLease", err)
	}
	if got := c.Counters().Reassigns; got != 1 {
		t.Fatalf("fabric_reassigns_total = %d, want 1", got)
	}

	// A peer picks up exactly the unfinished remainder.
	w2 := join(t, c)
	g2, err := c.Lease(LeaseRequest{Worker: w2})
	if err != nil || g2.Lease == nil {
		t.Fatalf("reassigned lease = %+v, %v", g2, err)
	}
	if g2.Lease.From != 1 || g2.Lease.To != len(plan) {
		t.Fatalf("reassigned range [%d,%d), want [1,%d)", g2.Lease.From, g2.Lease.To, len(plan))
	}

	// The dead worker's in-flight complete still lands (dup-or-merge).
	if resp, err := c.Complete(CompleteRequest{
		Worker: w1, Lease: g.Lease.Lease, Campaign: spec.ID(), Shard: 1, Records: fakeRecs(plan[1]),
	}); err != nil || resp.Duplicate {
		t.Fatalf("late complete = %+v, %v; want accepted fresh", resp, err)
	}
}

func TestStealTakesTailHalf(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clock, 100)
	spec := testSpec()
	plan := campaign.Plan(spec)
	if _, err := c.Submit(spec, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}

	w1 := join(t, c)
	g1, err := c.Lease(LeaseRequest{Worker: w1})
	if err != nil || g1.Lease == nil || g1.Lease.To != len(plan) {
		t.Fatalf("want w1 to lease the whole plan, got %+v, %v", g1, err)
	}
	// w1 finishes shards 0 and 1, then stalls.
	for shard := 0; shard < 2; shard++ {
		if _, err := c.Complete(CompleteRequest{
			Worker: w1, Lease: g1.Lease.Lease, Campaign: spec.ID(), Shard: shard, Records: fakeRecs(plan[shard]),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// An idle peer steals the tail half of the remaining [2,6): [4,6).
	w2 := join(t, c)
	g2, err := c.Lease(LeaseRequest{Worker: w2})
	if err != nil || g2.Lease == nil {
		t.Fatalf("steal lease = %+v, %v", g2, err)
	}
	if g2.Lease.From != 4 || g2.Lease.To != 6 {
		t.Fatalf("stolen range [%d,%d), want [4,6)", g2.Lease.From, g2.Lease.To)
	}
	if got := c.Counters().Steals; got != 1 {
		t.Fatalf("fabric_steals_total = %d, want 1", got)
	}

	// The victim learns its shrunk bounds on the next heartbeat.
	hb, err := c.Heartbeat(HeartbeatRequest{Worker: w1, Lease: g1.Lease.Lease})
	if err != nil {
		t.Fatal(err)
	}
	if hb.To != 4 {
		t.Fatalf("victim bounds after steal = [%d,%d), want To=4", hb.From, hb.To)
	}

	// A second idle request steals half of whatever is larger; with both
	// remainders at two shards, one more steal is possible, then no more
	// (stealing must leave the victim one shard).
	w3 := join(t, c)
	g3, err := c.Lease(LeaseRequest{Worker: w3})
	if err != nil || g3.Lease == nil {
		t.Fatalf("second steal = %+v, %v", g3, err)
	}
	if n := g3.Lease.To - g3.Lease.From; n != 1 {
		t.Fatalf("second steal took %d shards, want 1", n)
	}
}

func TestDrainedOnlyWhenAllCampaignsDone(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clock, 100)
	spec := testSpec()
	plan := campaign.Plan(spec)
	if _, err := c.Submit(spec, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	w := join(t, c)
	g, err := c.Lease(LeaseRequest{Worker: w})
	if err != nil || g.Lease == nil {
		t.Fatal(err)
	}
	var last CompleteResponse
	for shard := range plan {
		last, err = c.Complete(CompleteRequest{
			Worker: w, Lease: g.Lease.Lease, Campaign: spec.ID(), Shard: shard, Records: fakeRecs(plan[shard]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !last.Done {
		t.Fatalf("final complete response %+v, want Done", last)
	}
	resp, err := c.Lease(LeaseRequest{Worker: w})
	if err != nil || !resp.Drained {
		t.Fatalf("lease after completion = %+v, %v; want Drained", resp, err)
	}
	status, ok := c.SessionStatusByID(spec.ID())
	if !ok || !status.Done || status.Committed != len(plan) {
		t.Fatalf("session status = %+v, %v", status, ok)
	}
	if status.ShardsByWorker[w] != len(plan) {
		t.Fatalf("shards_by_worker = %v, want all %d by %s", status.ShardsByWorker, len(plan), w)
	}
}

// TestSubmitReplaysSegments is the coordinator-crash story: shard reports
// are fsynced into per-worker segments before merging, so a brand-new
// coordinator over the same root re-stages everything that was ever
// reported — including out-of-order shards beyond the checkpoint.
func TestSubmitReplaysSegments(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	root := t.TempDir()
	cfg := Config{Root: root, LeaseShards: 100, LeaseTTL: time.Second, Version: "test-v1", Now: clock.Now}
	c1 := NewCoordinator(cfg)
	spec := testSpec()
	plan := campaign.Plan(spec)
	if _, err := c1.Submit(spec, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	w := mustJoin(t, c1)
	g, err := c1.Lease(LeaseRequest{Worker: w})
	if err != nil || g.Lease == nil {
		t.Fatal(err)
	}
	// Commit shard 0; stage shard 3 out of order (stays uncommitted).
	for _, shard := range []int{0, 3} {
		if _, err := c1.Complete(CompleteRequest{
			Worker: w, Lease: g.Lease.Lease, Campaign: spec.ID(), Shard: shard, Records: fakeRecs(plan[shard]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c1.Shutdown() // coordinator "crashes" (checkpoint has shard 0 only)

	c2 := NewCoordinator(cfg)
	defer c2.Shutdown()
	status, err := c2.Submit(spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if status.Committed != 1 {
		t.Fatalf("resumed Committed = %d, want 1", status.Committed)
	}
	// The replayed shard 3 must not be leased out again.
	w2 := mustJoin(t, c2)
	g2, err := c2.Lease(LeaseRequest{Worker: w2})
	if err != nil || g2.Lease == nil {
		t.Fatal(err)
	}
	if g2.Lease.From != 1 || g2.Lease.To != 3 {
		t.Fatalf("post-replay grant [%d,%d), want [1,3)", g2.Lease.From, g2.Lease.To)
	}
	// Completing 1 and 2 must finish the campaign: 3 was replayed.
	for _, shard := range []int{1, 2} {
		if _, err := c2.Complete(CompleteRequest{
			Worker: w2, Lease: g2.Lease.Lease, Campaign: spec.ID(), Shard: shard, Records: fakeRecs(plan[shard]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	g3, err := c2.Lease(LeaseRequest{Worker: w2})
	if err != nil || g3.Lease == nil || g3.Lease.From != 4 {
		t.Fatalf("want remaining tail [4,...) after replayed shard 3, got %+v, %v", g3, err)
	}
}

func mustJoin(t *testing.T, c *Coordinator) string {
	t.Helper()
	resp, err := c.Join(JoinRequest{Version: "test-v1", Schema: campaign.SpecSchema})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Worker
}
