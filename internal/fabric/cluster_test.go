package fabric

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

// clusterSpec is the cluster tests' workload: six real generate-and-
// certify units in six single-unit shards, so leases split at many
// boundaries and every shard carries real result bodies.
func clusterSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "cluster",
		Lists:     []string{"list2"},
		Orders:    []string{"free", "up", "down"},
		Sizes:     []int{3, 4},
		ShardSize: 1,
	}
}

// singleNodeBytes runs the spec through the ordinary single-node engine
// and returns its committed results.jsonl — the byte-identity reference.
func singleNodeBytes(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	root := t.TempDir()
	if _, err := campaign.Run(context.Background(), spec, root, campaign.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(store.DataPath(spec.Canonical().Dir(root)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func startCluster(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Version == "" {
		cfg.Version = "test-v1"
	}
	c := NewCoordinator(cfg)
	srv := httptest.NewServer(c.Mux())
	t.Cleanup(func() {
		srv.Close()
		c.Shutdown()
	})
	return c, srv
}

func runWorkers(t *testing.T, ctx context.Context, workers []*Worker) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && ctx.Err() == nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}

// TestClusterByteIdentical is the tentpole claim: a 3-worker distributed
// run produces a results.jsonl byte-for-byte equal to the single-node
// engine's, in the same store layout.
func TestClusterByteIdentical(t *testing.T) {
	spec := clusterSpec()
	want := singleNodeBytes(t, spec)

	root := t.TempDir()
	coord, srv := startCluster(t, Config{Root: root, LeaseShards: 2, LeaseTTL: 5 * time.Second})
	if _, err := coord.Submit(spec, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	var workers []*Worker
	for i := 0; i < 3; i++ {
		workers = append(workers, &Worker{
			Coordinator: srv.URL, Version: "test-v1",
			Poll: 5 * time.Millisecond, ExitOnDrain: true,
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runWorkers(t, ctx, workers)

	status, ok := coord.SessionStatusByID(spec.Canonical().ID())
	if !ok || !status.Done {
		t.Fatalf("campaign not done: %+v", status)
	}
	got, err := os.ReadFile(store.DataPath(spec.Canonical().Dir(root)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed results.jsonl differs from single-node run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	// The distributed store must satisfy the same completeness probe the
	// single-node path does.
	cp, err := store.ReadCheckpoint(spec.Canonical().Dir(root))
	if err != nil || cp.Shards != status.Shards {
		t.Fatalf("checkpoint = %+v, %v; want %d shards", cp, err, status.Shards)
	}
}

// TestClusterKillWorkerByteIdentical is the kill-a-worker chaos test: one
// worker crashes (its context dies mid-lease, heartbeats stop) at every
// possible shard boundary in turn; lease expiry reassigns its range and
// the merged result set must still match the single-node bytes exactly.
func TestClusterKillWorkerByteIdentical(t *testing.T) {
	spec := clusterSpec()
	want := singleNodeBytes(t, spec)

	for kill := 0; kill < 3; kill++ {
		kill := kill
		t.Run(fmt.Sprintf("kill-after-%d-shards", kill), func(t *testing.T) {
			root := t.TempDir()
			coord, srv := startCluster(t, Config{
				Root: root, LeaseShards: 3, LeaseTTL: 150 * time.Millisecond,
			})
			if _, err := coord.Submit(spec, SubmitOptions{}); err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			// The victim executes `kill` shards, then "crashes": its
			// context is canceled, so it stops heartbeating and never
			// reports the shard it was working on.
			victimCtx, crash := context.WithCancel(ctx)
			var done int
			victim := &Worker{
				Coordinator: srv.URL, Version: "test-v1",
				Poll: 5 * time.Millisecond,
				RunShard: func(ctx context.Context, sh campaign.Shard, memo *campaign.Memo, lanesOff bool) ([]store.Record, error) {
					if done >= kill {
						crash()
						return nil, ctx.Err()
					}
					done++
					return campaign.ExecuteShard(ctx, sh, memo, lanesOff)
				},
			}
			go victim.Run(victimCtx)

			// Give the victim time to grab the first lease before the
			// survivors join, so the kill actually interrupts held work.
			waitFor(t, ctx, func() bool {
				st, _ := coord.SessionStatusByID(spec.Canonical().ID())
				return len(st.Leases) > 0 || st.Done
			})

			survivors := []*Worker{
				{Coordinator: srv.URL, Version: "test-v1", Poll: 5 * time.Millisecond, ExitOnDrain: true},
				{Coordinator: srv.URL, Version: "test-v1", Poll: 5 * time.Millisecond, ExitOnDrain: true},
			}
			runWorkers(t, ctx, survivors)

			got, err := os.ReadFile(store.DataPath(spec.Canonical().Dir(root)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("results.jsonl differs from single-node run after worker kill")
			}
			if kill < 3 {
				if got := coord.Counters().Reassigns; got == 0 {
					t.Fatalf("fabric_reassigns_total = 0, want the victim's lease reassigned")
				}
			}
		})
	}
}

// TestClusterStealEngages pins the straggler story: a deliberately slow
// worker holds the whole plan; a fast late joiner must steal the tail and
// complete shards the victim would otherwise still own.
func TestClusterStealEngages(t *testing.T) {
	spec := clusterSpec()
	root := t.TempDir()
	coord, srv := startCluster(t, Config{
		Root: root, LeaseShards: 100, LeaseTTL: 5 * time.Second,
	})
	if _, err := coord.Submit(spec, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	slow := &Worker{
		Coordinator: srv.URL, Version: "test-v1", Name: "slow",
		Poll: 5 * time.Millisecond, ExitOnDrain: true,
		RunShard: func(ctx context.Context, sh campaign.Shard, memo *campaign.Memo, lanesOff bool) ([]store.Record, error) {
			if !sleepCtx(ctx, 150*time.Millisecond) {
				return nil, ctx.Err()
			}
			return campaign.ExecuteShard(ctx, sh, memo, lanesOff)
		},
	}
	fast := &Worker{
		Coordinator: srv.URL, Version: "test-v1", Name: "fast",
		Poll: 5 * time.Millisecond, ExitOnDrain: true,
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := slow.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("slow worker: %v", err)
		}
	}()
	// The fast worker joins only after the slow one holds the whole plan,
	// so its first lease request can only be satisfied by stealing.
	waitFor(t, ctx, func() bool {
		st, _ := coord.SessionStatusByID(spec.Canonical().ID())
		return len(st.Leases) > 0
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := fast.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("fast worker: %v", err)
		}
	}()
	wg.Wait()

	if got := coord.Counters().Steals; got == 0 {
		t.Fatalf("fabric_steals_total = 0, want the fast worker to steal")
	}
	status, _ := coord.SessionStatusByID(spec.Canonical().ID())
	if !status.Done {
		t.Fatalf("campaign not done: %+v", status)
	}
	if len(status.ShardsByWorker) < 2 {
		t.Fatalf("shards_by_worker = %v, want shards completed by both workers", status.ShardsByWorker)
	}
}

// TestWorkerRunRejectedOnSkew pins the worker-visible shape of the
// version-skew guard: Run fails fast with the coordinator's explanation
// instead of polling forever.
func TestWorkerRunRejectedOnSkew(t *testing.T) {
	_, srv := startCluster(t, Config{Root: t.TempDir()})
	w := &Worker{Coordinator: srv.URL, Version: "something-else", Poll: time.Millisecond}
	err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "skew") {
		t.Fatalf("Run with mismatched version = %v, want skew rejection", err)
	}
}

func waitFor(t *testing.T, ctx context.Context, cond func() bool) {
	t.Helper()
	for !cond() {
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for cluster condition")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
