package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"marchgen/internal/buildinfo"
	"marchgen/internal/campaign"
	"marchgen/internal/iofault"
	"marchgen/internal/store"
)

// Config tunes a Coordinator. The zero value is usable: every field has a
// default.
type Config struct {
	// Root is the campaign store root directory (default "campaigns").
	Root string
	// LeaseShards bounds how many shards one lease grant covers
	// (default 4).
	LeaseShards int
	// LeaseTTL is how long a lease lives without a heartbeat before its
	// unfinished shards return to the pending set (default 10s).
	LeaseTTL time.Duration
	// Version is this coordinator's build version for the join handshake
	// (default buildinfo.Version()).
	Version string
	// Schema is the spec-schema version for the join handshake
	// (default campaign.SpecSchema).
	Schema string
	// Now supplies the clock; tests inject a fake one. Default time.Now.
	Now func() time.Time
	// FS carries mutating store I/O for fault injection. Nil means the
	// real filesystem.
	FS iofault.FS
	// Logf, when set, receives protocol event logs.
	Logf func(format string, args ...any)
}

func (c Config) root() string {
	if c.Root == "" {
		return "campaigns"
	}
	return c.Root
}

func (c Config) leaseShards() int {
	if c.LeaseShards <= 0 {
		return 4
	}
	return c.LeaseShards
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return 10 * time.Second
	}
	return c.LeaseTTL
}

func (c Config) version() string {
	if c.Version == "" {
		return buildinfo.Version()
	}
	return c.Version
}

func (c Config) schema() string {
	if c.Schema == "" {
		return campaign.SpecSchema
	}
	return c.Schema
}

// SubmitOptions tunes one distributed campaign.
type SubmitOptions struct {
	// DisableLanes propagates the scalar-engine escape hatch to every
	// worker (see campaign.RunOptions.DisableLanes).
	DisableLanes bool
}

// shard scheduling states. "done" means "never schedule again": the shard
// is committed or staged in the merger awaiting its plan-order turn.
const (
	shardPending = iota
	shardLeased
	shardDone
)

type lease struct {
	id       string
	worker   string
	session  *session
	from, to int // [from, to)
	expiry   time.Time
}

type session struct {
	spec         campaign.Spec // canonical
	id           string
	dir          string
	plan         []campaign.Shard
	state        []uint8
	merger       *Merger
	st           *store.Store
	leases       map[string]*lease
	disableLanes bool
	done         bool
}

func (s *session) remaining(l *lease) []int {
	var out []int
	for i := l.from; i < l.to; i++ {
		if s.state[i] != shardDone {
			out = append(out, i)
		}
	}
	return out
}

type workerState struct {
	id      string
	name    string
	version string
}

// Coordinator owns the fabric's server side: worker membership, the lease
// state machine of every submitted campaign, and the segment-journaled
// merge into each campaign's store. All methods are safe for concurrent
// use; the HTTP layer (Mux, internal/service) is a thin JSON shim over
// them.
type Coordinator struct {
	cfg Config

	mu        sync.Mutex
	workers   map[string]*workerState
	nextID    int
	nextLease int
	sessions  map[string]*session
	order     []string // session ids in submission order
	counters  Counters
}

// NewCoordinator returns a coordinator with no workers and no campaigns.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:      cfg,
		workers:  make(map[string]*workerState),
		sessions: make(map[string]*session),
	}
}

func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Join runs the membership handshake. A version or schema mismatch is
// rejected with ErrSkew: distribution must never mix records across
// incompatible derivations.
func (c *Coordinator) Join(req JoinRequest) (JoinResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Version != c.cfg.version() || req.Schema != c.cfg.schema() {
		c.counters.JoinRejects++
		return JoinResponse{}, fmt.Errorf("%w: worker has version=%q schema=%q, coordinator has version=%q schema=%q",
			ErrSkew, req.Version, req.Schema, c.cfg.version(), c.cfg.schema())
	}
	c.nextID++
	w := &workerState{id: fmt.Sprintf("w%d", c.nextID), name: req.Name, version: req.Version}
	c.workers[w.id] = w
	c.counters.Joins++
	c.logf("fabric: worker %s joined (name=%q)", w.id, w.name)
	return JoinResponse{Worker: w.id, Version: c.cfg.version(), Schema: c.cfg.schema()}, nil
}

// Submit registers a campaign for distributed execution. It prepares the
// store directory exactly like the single-node path (same spec.json, same
// store layout), replays any per-worker segments left by a previous
// coordinator incarnation, and exposes the plan's shards for leasing.
// Submitting a spec that is already registered (or already complete on
// disk) is idempotent.
func (c *Coordinator) Submit(spec campaign.Spec, opts SubmitOptions) (SessionStatus, error) {
	if err := spec.Validate(); err != nil {
		return SessionStatus{}, err
	}
	can := spec.Canonical()
	id := can.ID()

	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sessions[id]; ok {
		return c.sessionStatusLocked(s), nil
	}

	fsys := c.cfg.FS
	if fsys == nil {
		fsys = iofault.OS{}
	}
	dir := can.Dir(c.cfg.root())
	if err := fsys.MkdirAll(store.SegmentsDir(dir), 0o755); err != nil {
		return SessionStatus{}, fmt.Errorf("fabric: %w", err)
	}
	if err := campaign.EnsureSpecFile(fsys, dir, can); err != nil {
		return SessionStatus{}, err
	}
	st, err := store.OpenFS(dir, can.Hash(), fsys)
	if err != nil {
		return SessionStatus{}, err
	}

	plan := campaign.Plan(can)
	s := &session{
		spec:         can,
		id:           id,
		dir:          dir,
		plan:         plan,
		state:        make([]uint8, len(plan)),
		merger:       NewMerger(st, plan),
		st:           st,
		leases:       make(map[string]*lease),
		disableLanes: opts.DisableLanes,
	}
	for i := 0; i < s.merger.Committed() && i < len(plan); i++ {
		s.state[i] = shardDone
	}

	// Replay segments from a previous coordinator incarnation: every
	// fsynced shard report survives a coordinator crash, so resumption
	// never re-executes work that was already streamed back.
	segs, err := store.ReadSegments(dir)
	if err != nil {
		st.Close()
		return SessionStatus{}, err
	}
	for _, worker := range sortedKeys(segs) {
		for shard, recs := range GroupShards(plan, segs[worker]) {
			fresh, err := s.merger.Offer(worker, shard, recs)
			if errors.Is(err, ErrBadShard) {
				continue // incomplete or torn bucket: will be re-executed
			}
			if err != nil {
				st.Close()
				return SessionStatus{}, err
			}
			if fresh {
				s.state[shard] = shardDone
			}
		}
	}
	for i := range s.state {
		if s.merger.Staged(i) {
			s.state[i] = shardDone
		}
	}

	c.sessions[id] = s
	c.order = append(c.order, id)
	c.finishIfDoneLocked(s)
	c.logf("fabric: campaign %s submitted (%d shards, %d committed)", id, len(plan), s.merger.Committed())
	return c.sessionStatusLocked(s), nil
}

// Lease hands the worker a contiguous pending shard range. When nothing is
// pending anywhere it tries to steal the tail half of the largest
// outstanding lease; when every campaign is committed it reports Drained.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[req.Worker]; !ok {
		return LeaseResponse{}, fmt.Errorf("%w: %q", ErrUnknownWorker, req.Worker)
	}
	c.sweepExpiredLocked()

	for _, id := range c.order {
		s := c.sessions[id]
		if s.done {
			continue
		}
		from, to := nextPendingRun(s.state, c.cfg.leaseShards())
		if from < 0 {
			continue
		}
		return LeaseResponse{Lease: c.grantLocked(s, req.Worker, from, to, false)}, nil
	}
	if g := c.stealLocked(req.Worker); g != nil {
		return LeaseResponse{Lease: g}, nil
	}
	if len(c.order) > 0 && c.allDoneLocked() {
		return LeaseResponse{Drained: true}, nil
	}
	return LeaseResponse{Idle: true}, nil
}

// Heartbeat extends a lease and returns its current bounds, which may have
// shrunk if a peer stole the tail.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[req.Worker]; !ok {
		return HeartbeatResponse{}, fmt.Errorf("%w: %q", ErrUnknownWorker, req.Worker)
	}
	c.sweepExpiredLocked()
	l := c.findLeaseLocked(req.Lease)
	if l == nil || l.worker != req.Worker {
		return HeartbeatResponse{}, fmt.Errorf("%w: %q (expired and reassigned?)", ErrUnknownLease, req.Lease)
	}
	l.expiry = c.now().Add(c.cfg.leaseTTL())
	return HeartbeatResponse{From: l.from, To: l.to}, nil
}

// Complete ingests one executed shard: journal it to the reporting
// worker's segment file (fsynced — after this a coordinator crash cannot
// lose the report), then merge it in plan order. Completes are accepted
// even when the lease has expired: the records are deterministic and
// validated, so work is never thrown away.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[req.Worker]; !ok {
		return CompleteResponse{}, fmt.Errorf("%w: %q", ErrUnknownWorker, req.Worker)
	}
	s, ok := c.sessions[req.Campaign]
	if !ok {
		return CompleteResponse{}, fmt.Errorf("%w: %q", ErrUnknownCampaign, req.Campaign)
	}
	c.sweepExpiredLocked()
	if req.Shard < 0 || req.Shard >= len(s.plan) {
		return CompleteResponse{}, fmt.Errorf("%w: shard %d outside plan [0,%d)", ErrBadShard, req.Shard, len(s.plan))
	}
	if err := ValidateShard(s.plan[req.Shard], req.Records); err != nil {
		return CompleteResponse{}, err
	}

	resp := CompleteResponse{}
	if l := s.leases[req.Lease]; l != nil && l.worker == req.Worker {
		l.expiry = c.now().Add(c.cfg.leaseTTL())
		resp.From, resp.To = l.from, l.to
	}

	if s.merger.Staged(req.Shard) {
		c.counters.Duplicates++
		resp.Duplicate = true
		resp.Done = s.done
		return resp, nil
	}

	fsys := c.cfg.FS
	if fsys == nil {
		fsys = iofault.OS{}
	}
	if err := store.AppendSegmentFS(fsys, store.SegmentPath(s.dir, req.Worker), req.Records); err != nil {
		return CompleteResponse{}, err
	}
	if _, err := s.merger.Offer(req.Worker, req.Shard, req.Records); err != nil {
		return CompleteResponse{}, err
	}
	s.state[req.Shard] = shardDone
	c.counters.Completes++

	if l := s.leases[req.Lease]; l != nil && len(s.remaining(l)) == 0 {
		delete(s.leases, req.Lease)
		resp.From, resp.To = 0, 0
	}
	c.finishIfDoneLocked(s)
	resp.Done = s.done
	return resp, nil
}

// SessionStatusByID reports one campaign's distribution state.
func (c *Coordinator) SessionStatusByID(id string) (SessionStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	if !ok {
		return SessionStatus{}, false
	}
	c.sweepExpiredLocked()
	return c.sessionStatusLocked(s), true
}

// Status reports the whole fabric: workers, campaigns, counters.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepExpiredLocked()
	out := Status{Counters: c.counters}
	shardsBy := make(map[string]int)
	for _, id := range c.order {
		s := c.sessions[id]
		out.Campaigns = append(out.Campaigns, c.sessionStatusLocked(s))
		for _, w := range s.merger.CommittedBy() {
			shardsBy[w]++
		}
	}
	for _, id := range sortedKeys(c.workers) {
		w := c.workers[id]
		out.Workers = append(out.Workers, WorkerStatus{
			Worker: w.id, Name: w.name, Version: w.version, Shards: shardsBy[w.id],
		})
	}
	return out
}

// Counters returns a snapshot of the fabric's event counters (for
// /metrics).
func (c *Coordinator) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Shutdown closes every open campaign store. Safe to call more than once.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.sessions {
		if s.st != nil {
			s.st.Close()
			s.st = nil
		}
	}
}

// --- internals (all called with c.mu held) ---

// sweepExpiredLocked lazily expires leases: every unfinished shard of a
// lease past its deadline returns to the pending set for reassignment.
// Lazy sweeping on each protocol call keeps the coordinator free of
// background goroutines and makes expiry fully deterministic under an
// injected clock.
func (c *Coordinator) sweepExpiredLocked() {
	now := c.now()
	for _, id := range c.order {
		s := c.sessions[id]
		for lid, l := range s.leases {
			if !l.expiry.Before(now) {
				continue
			}
			for _, i := range s.remaining(l) {
				s.state[i] = shardPending
			}
			delete(s.leases, lid)
			c.counters.Reassigns++
			c.logf("fabric: lease %s (worker %s, shards [%d,%d)) expired; shards reassigned", lid, l.worker, l.from, l.to)
		}
	}
}

func (c *Coordinator) grantLocked(s *session, worker string, from, to int, stolen bool) *LeaseGrant {
	c.nextLease++
	l := &lease{
		id:      fmt.Sprintf("l%d", c.nextLease),
		worker:  worker,
		session: s,
		from:    from,
		to:      to,
		expiry:  c.now().Add(c.cfg.leaseTTL()),
	}
	s.leases[l.id] = l
	for i := from; i < to; i++ {
		if s.state[i] == shardPending {
			s.state[i] = shardLeased
		}
	}
	c.counters.Leases++
	if stolen {
		c.counters.Steals++
	}
	c.logf("fabric: lease %s: shards [%d,%d) of %s -> worker %s (stolen=%v)", l.id, from, to, s.id, worker, stolen)
	return &LeaseGrant{
		Lease:        l.id,
		Campaign:     s.id,
		Spec:         s.spec,
		From:         from,
		To:           to,
		TTLMillis:    c.cfg.leaseTTL().Milliseconds(),
		DisableLanes: s.disableLanes,
	}
}

// stealLocked implements the straggler rule: with nothing pending, take
// the tail half of the lease with the most unfinished shards — but only
// if that leaves the victim at least one shard, so stealing terminates.
func (c *Coordinator) stealLocked(worker string) *LeaseGrant {
	var victim *lease
	var victimRemaining []int
	for _, id := range c.order {
		s := c.sessions[id]
		for _, l := range s.leases {
			rem := s.remaining(l)
			if len(rem) > len(victimRemaining) {
				victim, victimRemaining = l, rem
			}
		}
	}
	if victim == nil || len(victimRemaining) < 2 {
		return nil
	}
	split := victimRemaining[len(victimRemaining)/2]
	to := victim.to
	victim.to = split
	c.logf("fabric: stealing shards [%d,%d) from lease %s (worker %s)", split, to, victim.id, victim.worker)
	return c.grantLocked(victim.session, worker, split, to, true)
}

func (c *Coordinator) findLeaseLocked(id string) *lease {
	for _, s := range c.sessions {
		if l, ok := s.leases[id]; ok {
			return l
		}
	}
	return nil
}

func (c *Coordinator) allDoneLocked() bool {
	for _, s := range c.sessions {
		if !s.done {
			return false
		}
	}
	return true
}

func (c *Coordinator) finishIfDoneLocked(s *session) {
	if s.done || !s.merger.Done() {
		return
	}
	s.done = true
	for lid := range s.leases {
		delete(s.leases, lid)
	}
	if s.st != nil {
		s.st.Close()
		s.st = nil
	}
	c.logf("fabric: campaign %s complete (%d shards)", s.id, len(s.plan))
}

func (c *Coordinator) sessionStatusLocked(s *session) SessionStatus {
	out := SessionStatus{
		ID:        s.id,
		Name:      s.spec.Name,
		Dir:       s.dir,
		Shards:    len(s.plan),
		Units:     s.spec.Units(),
		Committed: s.merger.Committed(),
		Done:      s.done,
	}
	now := c.now()
	for _, lid := range sortedKeys(s.leases) {
		l := s.leases[lid]
		out.Leases = append(out.Leases, LeaseStatus{
			Lease: l.id, Worker: l.worker, From: l.from, To: l.to,
			ExpiresMS: l.expiry.Sub(now).Milliseconds(),
		})
	}
	by := make(map[string]int)
	for _, w := range s.merger.CommittedBy() {
		by[w]++
	}
	if len(by) > 0 {
		out.ShardsByWorker = by
	}
	return out
}

// nextPendingRun finds the first contiguous run of pending shards, capped
// at max, returning from=-1 when nothing is pending.
func nextPendingRun(state []uint8, max int) (from, to int) {
	for i, st := range state {
		if st != shardPending {
			continue
		}
		j := i
		for j < len(state) && state[j] == shardPending && j-i < max {
			j++
		}
		return i, j
	}
	return -1, -1
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
