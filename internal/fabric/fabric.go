// Package fabric is the distributed campaign layer (DESIGN.md §13): one
// marchd in coordinator mode leases contiguous shard ranges of a campaign
// plan to N peer marchd workers over plain HTTP; workers execute shards
// with the existing campaign runner (campaign.ExecuteShard) and stream the
// completed records back; the coordinator journals every report into a
// per-worker segment file (internal/store segments) and merges shards
// through the same in-order committer as a single-node run — so the final
// store is byte-identical to what `marchcamp run` would have produced on
// one machine, in the same c-<hash16> directory layout.
//
// The protocol is deliberately small and pull-based:
//
//	POST join       worker introduces itself; version/schema skew rejected
//	POST lease      worker asks for work; gets a shard range [From,To)
//	POST heartbeat  worker extends its lease before the TTL expires
//	POST complete   worker reports one finished shard's records
//
// Failure model: a worker that stops heartbeating simply lets its lease
// expire — the coordinator sweeps expired leases lazily and returns their
// unfinished shards to the pending set for reassignment. When nothing is
// pending, an idle worker steals the tail half of the largest outstanding
// lease, so one straggler never gates campaign completion. Both paths can
// double-execute a shard; that is safe because unit results are
// deterministic, so duplicate reports carry identical bytes and the merger
// commits whichever arrives first.
package fabric

import (
	"errors"
	"time"

	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

// Protocol errors. HTTP handlers map these to status codes; typed sentinels
// keep the core logic transport-independent.
var (
	// ErrSkew rejects a join whose build version or spec-schema version
	// differs from the coordinator's: mixing records derived under
	// different schemas would silently corrupt the byte-identity claim.
	ErrSkew = errors.New("fabric: version skew")
	// ErrUnknownWorker rejects requests from a worker id that never joined
	// (or joined a previous coordinator incarnation).
	ErrUnknownWorker = errors.New("fabric: unknown worker")
	// ErrUnknownLease rejects heartbeats/completes for a lease that no
	// longer exists — typically because it expired and was reassigned.
	ErrUnknownLease = errors.New("fabric: unknown lease")
	// ErrUnknownCampaign rejects requests naming a campaign the
	// coordinator is not running.
	ErrUnknownCampaign = errors.New("fabric: unknown campaign")
	// ErrBadShard rejects a completed shard whose records do not match the
	// plan (wrong count, ids, order, or invalid JSON bodies).
	ErrBadShard = errors.New("fabric: shard records do not match plan")
)

// JoinRequest introduces a worker to the coordinator. Version and Schema
// are mandatory: the handshake is the version-skew guard.
type JoinRequest struct {
	// Name is an optional display label; the coordinator always assigns
	// the canonical worker id itself.
	Name string `json:"name,omitempty"`
	// Version is the worker's buildinfo.Version().
	Version string `json:"version"`
	// Schema is the worker's campaign.SpecSchema.
	Schema string `json:"schema"`
}

// JoinResponse acknowledges a join and assigns the worker its id.
type JoinResponse struct {
	// Worker is the coordinator-assigned worker id (w1, w2, ...) used in
	// every subsequent request and as the segment file name.
	Worker string `json:"worker"`
	// Version and Schema echo the coordinator's own versions.
	Version string `json:"version"`
	Schema  string `json:"schema"`
}

// LeaseRequest asks for a shard range to execute.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseGrant is one leased shard range of one campaign.
type LeaseGrant struct {
	// Lease is the lease id, quoted back in heartbeats and completes.
	Lease string `json:"lease"`
	// Campaign is the campaign id (c-<hash16>).
	Campaign string `json:"campaign"`
	// Spec is the canonical spec; the worker derives the identical plan
	// locally (Plan is a pure function of the canonical spec).
	Spec campaign.Spec `json:"spec"`
	// From and To bound the leased shard range [From, To).
	From int `json:"from"`
	To   int `json:"to"`
	// TTLMillis is the lease TTL; the worker must heartbeat well within it.
	TTLMillis int64 `json:"ttl_ms"`
	// DisableLanes propagates the campaign's engine selection so every
	// worker computes records the same way (not that lanes could change
	// them — see campaign.RunOptions.DisableLanes).
	DisableLanes bool `json:"disable_lanes,omitempty"`
}

// TTL returns the grant's TTL as a duration.
func (g LeaseGrant) TTL() time.Duration { return time.Duration(g.TTLMillis) * time.Millisecond }

// LeaseResponse answers a lease request. Exactly one of the three shapes
// applies: a grant, "nothing right now, poll again", or "all campaigns
// complete, you can go home".
type LeaseResponse struct {
	Lease *LeaseGrant `json:"lease,omitempty"`
	// Idle is set when no work is available but campaigns are still
	// running (or none have been submitted yet): poll again later.
	Idle bool `json:"idle,omitempty"`
	// Drained is set when every known campaign is fully committed.
	Drained bool `json:"drained,omitempty"`
}

// HeartbeatRequest extends a lease's expiry.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// HeartbeatResponse returns the lease's current bounds — which may have
// shrunk since the grant if a peer stole the tail. The worker must not
// execute shards at or beyond To.
type HeartbeatResponse struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// CompleteRequest reports one executed shard. Records must be exactly the
// shard's units in plan order, in committed form (campaign.ExecuteShard
// output).
type CompleteRequest struct {
	Worker   string         `json:"worker"`
	Lease    string         `json:"lease"`
	Campaign string         `json:"campaign"`
	Shard    int            `json:"shard"`
	Records  []store.Record `json:"records"`
}

// CompleteResponse acknowledges a completed shard and returns the lease's
// current bounds, so the worker learns about steals without an extra
// round-trip. Done reports whether the whole campaign is now committed.
type CompleteResponse struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Duplicate is set when the shard had already been merged (a stolen
	// or reassigned range double-executed) — harmless, by design.
	Duplicate bool `json:"duplicate,omitempty"`
	Done      bool `json:"done,omitempty"`
}

// Counters are the fabric's monotonic event counters, published under
// "fabric" in /metrics. JSON keys are the metric names.
type Counters struct {
	Joins       uint64 `json:"fabric_joins_total"`
	JoinRejects uint64 `json:"fabric_join_rejects_total"`
	Leases      uint64 `json:"fabric_leases_total"`
	Steals      uint64 `json:"fabric_steals_total"`
	Reassigns   uint64 `json:"fabric_reassigns_total"`
	Completes   uint64 `json:"fabric_completed_shards_total"`
	Duplicates  uint64 `json:"fabric_duplicate_shards_total"`
}

// Status is the coordinator's full observable state (GET status).
type Status struct {
	Workers   []WorkerStatus  `json:"workers"`
	Campaigns []SessionStatus `json:"campaigns"`
	Counters  Counters        `json:"counters"`
}

// WorkerStatus describes one joined worker.
type WorkerStatus struct {
	Worker  string `json:"worker"`
	Name    string `json:"name,omitempty"`
	Version string `json:"version"`
	// Shards is the number of shards this worker has completed (first
	// report wins; duplicates do not count).
	Shards int `json:"shards"`
}

// SessionStatus describes one campaign the coordinator is distributing.
type SessionStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Dir    string `json:"dir"`
	Shards int    `json:"shards"`
	Units  int    `json:"units"`
	// Committed counts shards merged into the store so far.
	Committed int  `json:"committed"`
	Done      bool `json:"done"`
	// Leases are the outstanding (unexpired, unfinished) leases.
	Leases []LeaseStatus `json:"leases,omitempty"`
	// ShardsByWorker attributes committed shards to the worker whose
	// report merged first.
	ShardsByWorker map[string]int `json:"shards_by_worker,omitempty"`
}

// LeaseStatus describes one outstanding lease.
type LeaseStatus struct {
	Lease     string `json:"lease"`
	Worker    string `json:"worker"`
	From      int    `json:"from"`
	To        int    `json:"to"`
	ExpiresMS int64  `json:"expires_ms"`
}
