package fabric

import (
	"encoding/json"
	"fmt"
	"sort"

	"marchgen/internal/campaign"
	"marchgen/internal/store"
)

// Merger reproduces the single-node committer over remotely-executed
// shards: shards may arrive in any order (and more than once), but the
// store only ever grows by the next shard in plan order, with the atomic
// checkpoint advancing after each commit — exactly the Append/Commit
// sequence of campaign.Run, which is what makes the merged store
// byte-identical to a single-node run of the same spec.
//
// Merger is not goroutine-safe; the coordinator serializes access under
// its session lock.
type Merger struct {
	st      *store.Store
	plan    []campaign.Shard
	next    int
	pending map[int][]store.Record
	// committedBy records, per committed shard, the worker whose report
	// merged first (the coordinator passes the reporter into Offer).
	committedBy map[int]string
}

// NewMerger starts a merger over an open store, resuming at its current
// checkpoint: shards below Checkpoint().Shards are already committed and
// will be treated as duplicates if offered again.
func NewMerger(st *store.Store, plan []campaign.Shard) *Merger {
	return &Merger{
		st:          st,
		plan:        plan,
		next:        st.Checkpoint().Shards,
		pending:     make(map[int][]store.Record),
		committedBy: make(map[int]string),
	}
}

// Committed returns the number of leading plan shards committed so far.
func (m *Merger) Committed() int { return m.next }

// Done reports whether every plan shard is committed.
func (m *Merger) Done() bool { return m.next >= len(m.plan) }

// Staged reports whether a shard is already committed or waiting to commit.
func (m *Merger) Staged(shard int) bool {
	if shard < m.next {
		return true
	}
	_, ok := m.pending[shard]
	return ok
}

// CommittedBy returns the first-reporter attribution of committed shards.
func (m *Merger) CommittedBy() map[int]string { return m.committedBy }

// Offer stages one completed shard and commits as far as plan order
// allows. It returns fresh=false for duplicates (already committed or
// already staged) — never an error, since double-execution is a designed
// outcome of stealing and reassignment. Records that do not exactly match
// the plan (wrong count, ids, sequence, shard tag, or non-JSON bodies)
// are rejected with ErrBadShard before anything touches the store: a
// corrupt or hostile segment can never damage the committed prefix.
func (m *Merger) Offer(worker string, shard int, recs []store.Record) (fresh bool, err error) {
	if shard < 0 || shard >= len(m.plan) {
		return false, fmt.Errorf("%w: shard %d outside plan [0,%d)", ErrBadShard, shard, len(m.plan))
	}
	if err := ValidateShard(m.plan[shard], recs); err != nil {
		return false, err
	}
	if m.Staged(shard) {
		return false, nil
	}
	m.pending[shard] = recs
	m.committedBy[shard] = worker
	for {
		next, ok := m.pending[m.next]
		if !ok {
			return true, nil
		}
		for _, rec := range next {
			if err := m.st.Append(rec); err != nil {
				return true, err
			}
		}
		if err := m.st.Commit(m.next + 1); err != nil {
			return true, err
		}
		delete(m.pending, m.next)
		m.next++
	}
}

// ValidateShard checks that records are exactly one shard's units in plan
// order with well-formed bodies — the merger's admission test.
func ValidateShard(sh campaign.Shard, recs []store.Record) error {
	if len(recs) != len(sh.Units) {
		return fmt.Errorf("%w: shard %d: %d records, plan has %d units", ErrBadShard, sh.ID, len(recs), len(sh.Units))
	}
	for i, rec := range recs {
		u := sh.Units[i]
		if rec.Shard != sh.ID || rec.Seq != u.Seq || rec.ID != u.ID() {
			return fmt.Errorf("%w: shard %d record %d: got (shard=%d seq=%d id=%s), want (shard=%d seq=%d id=%s)",
				ErrBadShard, sh.ID, i, rec.Shard, rec.Seq, rec.ID, sh.ID, u.Seq, u.ID())
		}
		if !json.Valid(rec.Body) {
			return fmt.Errorf("%w: shard %d record %d: body is not valid JSON", ErrBadShard, sh.ID, rec.Seq)
		}
	}
	return nil
}

// GroupShards buckets loose records (a parsed segment file) into per-shard
// candidate slices ordered by unit sequence, dropping duplicate sequence
// numbers (first occurrence wins) and records naming shards outside the
// plan. The result is what Offer expects — though a bucket may still be
// incomplete or mismatched, which Offer rejects per shard.
func GroupShards(plan []campaign.Shard, recs []store.Record) map[int][]store.Record {
	buckets := make(map[int][]store.Record)
	seen := make(map[int]map[int]bool)
	for _, rec := range recs {
		if rec.Shard < 0 || rec.Shard >= len(plan) {
			continue
		}
		if seen[rec.Shard] == nil {
			seen[rec.Shard] = make(map[int]bool)
		}
		if seen[rec.Shard][rec.Seq] {
			continue
		}
		seen[rec.Shard][rec.Seq] = true
		buckets[rec.Shard] = append(buckets[rec.Shard], rec)
	}
	for shard, b := range buckets {
		sort.Slice(b, func(i, j int) bool { return b[i].Seq < b[j].Seq })
		buckets[shard] = b
	}
	return buckets
}
