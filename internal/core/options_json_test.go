package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"marchgen/internal/sim"
)

func TestOrderConstraintRoundTrip(t *testing.T) {
	for _, c := range []OrderConstraint{OrderFree, OrderUpOnly, OrderDownOnly} {
		parsed, err := ParseOrderConstraint(c.String())
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if parsed != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), parsed)
		}
	}
	if _, err := ParseOrderConstraint("sideways"); err == nil {
		t.Fatal("invalid spelling accepted")
	}
	// The empty string is the JSON zero value and means "no constraint".
	if c, err := ParseOrderConstraint(""); err != nil || c != OrderFree {
		t.Fatalf("empty spelling: %v, %v", c, err)
	}
}

func TestOptionsCanonicalFillsDefaults(t *testing.T) {
	o := Options{}.Canonical()
	if o.Name != "March GEN" || o.MaxSOLen != 11 || o.MaxRepairRounds != 4 {
		t.Fatalf("zero options canonicalized to %+v", o)
	}
	if o.SearchConfig.Size != 4 || o.SearchConfig.ExhaustiveOrders {
		t.Fatalf("search config not canonical: %+v", o.SearchConfig)
	}
	if o.FinalConfig.Size != 4 || !o.FinalConfig.ExhaustiveOrders {
		t.Fatalf("final config not canonical: %+v", o.FinalConfig)
	}
	if got := o.Canonical(); got != o {
		t.Fatalf("Canonical not idempotent")
	}
}

func TestOptionsJSONStableBytes(t *testing.T) {
	zero, err := json.Marshal(Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := json.Marshal(Options{
		Name:            "March GEN",
		MaxSOLen:        11,
		MaxRepairRounds: 4,
		SearchConfig:    sim.Config{Size: 4, MaxAnyElements: 12, Workers: 2},
		FinalConfig:     sim.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, full) {
		t.Fatalf("canonical encodings differ:\n%s\n%s", zero, full)
	}
}

func TestOptionsJSONRoundTrip(t *testing.T) {
	in := Options{Name: "March X", Aggressive: true, Orders: OrderDownOnly, MaxSOLen: 7}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Options
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	want := in.Canonical()
	if out != want {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", out, want)
	}
}

func TestOptionsJSONRejectsBadOrders(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{"orders":"sideways"}`), &o); err == nil {
		t.Fatal("bad orders value accepted")
	}
}
