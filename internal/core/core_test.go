package core

import (
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// Generation for Fault List #2 (the March ABL1 row of Table 1): the
// generated test must fully cover the list and be at most as long as the
// paper's 9n result.
func TestGenerateList2(t *testing.T) {
	res, err := Generate(faultlist.List2(), Options{Name: "GEN-L2"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	if got := res.Test.Length(); got > march.MarchABL1.Length() {
		t.Errorf("generated %dn, paper's March ABL1 is %dn", got, march.MarchABL1.Length())
	}
	if err := res.Test.CheckConsistency(); err != nil {
		t.Error(err)
	}
	if res.Stats.Duration <= 0 || res.Stats.Simulations == 0 {
		t.Errorf("implausible stats: %+v", res.Stats)
	}
}

// The generated test is non-redundant: removing any single operation breaks
// coverage or march consistency (the paper's Section 7 claim).
func TestGeneratedList2NonRedundant(t *testing.T) {
	res, err := Generate(faultlist.List2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	faults := faultlist.List2()
	cfg := sim.DefaultConfig()
	for i := range res.Test.Elems {
		for j := range res.Test.Elems[i].Ops {
			trial := res.Test.Clone()
			if len(trial.Elems[i].Ops) == 1 {
				trial.Elems = append(trial.Elems[:i], trial.Elems[i+1:]...)
			} else {
				ops := trial.Elems[i].Ops
				trial.Elems[i].Ops = append(ops[:j], ops[j+1:]...)
			}
			if trial.Validate() != nil || trial.CheckConsistency() != nil {
				continue // removal is structurally impossible: fine
			}
			full, _, err := sim.FullCoverage(trial, faults, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if full {
				t.Errorf("dropping op %d of element %d keeps full coverage: redundant test %s",
					j, i, res.Test)
				return
			}
		}
	}
}

// Generation for Fault List #1 (the March ABL/RABL rows): full coverage of
// the complete Definition-6 space and strictly shorter than March SL (41n),
// the only published test that also fully covers it.
func TestGenerateList1(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second generation run")
	}
	res, err := Generate(faultlist.List1(), Options{Name: "GEN-L1"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	if got := res.Test.Length(); got >= march.MarchSL.Length() {
		t.Errorf("generated %dn does not improve on March SL (41n)", got)
	}
}

// Generation with simple static faults added to List #1 — the configuration
// under which the published March ABL also reaches full coverage — must
// still beat March SL.
func TestGenerateList1PlusSimple(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second generation run")
	}
	faults := append(faultlist.List1(), faultlist.SimpleStatic()...)
	res, err := Generate(faults, Options{Name: "GEN-L1S"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	if got := res.Test.Length(); got >= march.MarchSL.Length() {
		t.Errorf("generated %dn does not improve on March SL (41n)", got)
	}
}

// The aggressive profile must never produce a longer test than the default
// one on the same list.
func TestGenerateAggressiveNotWorse(t *testing.T) {
	def, err := Generate(faultlist.List2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Generate(faultlist.List2(), Options{Aggressive: true})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Test.Length() > def.Test.Length() {
		t.Errorf("aggressive %dn > default %dn", agg.Test.Length(), def.Test.Length())
	}
	if !agg.Report.Full() {
		t.Errorf("aggressive run lost coverage: %s", agg.Report.Summary())
	}
}

// Generating for the simple static faults alone: March SS (22n) is the
// published reference; the generator must reach full coverage without
// exceeding it.
func TestGenerateSimpleStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second generation run")
	}
	res, err := Generate(faultlist.SimpleStatic(), Options{Name: "GEN-SS"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	if got := res.Test.Length(); got > march.MarchSS.Length() {
		t.Errorf("generated %dn, March SS is %dn", got, march.MarchSS.Length())
	}
}

// Same options in, same march test out: the pipeline is deterministic.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(faultlist.List2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(faultlist.List2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Test.Equal(b.Test) {
		t.Errorf("non-deterministic generation:\n%s\n%s", a.Test, b.Test)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, Options{}); err == nil {
		t.Error("empty fault list must error")
	}
}

func TestGenerateName(t *testing.T) {
	res, err := Generate(faultlist.Realistic(faultlist.List2()), Options{Name: "My Test"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Test.Name != "My Test" {
		t.Errorf("Name = %q", res.Test.Name)
	}
	anon, err := Generate(faultlist.Realistic(faultlist.List2()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if anon.Test.Name != "March GEN" {
		t.Errorf("default name = %q", anon.Test.Name)
	}
}

func TestCertify(t *testing.T) {
	r, err := Certify(march.MarchSL, faultlist.List2())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Full() {
		t.Errorf("March SL must certify on List #2: %s", r.Summary())
	}
	r2, err := Certify(march.MATSPlus, faultlist.List2())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Full() {
		t.Error("MATS+ must not certify on List #2")
	}
}

func TestEntryConstraintAndExit(t *testing.T) {
	ops := func(s string) []fp.Op {
		o, err := fp.ParseOps(s)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	if got := entryConstraint(ops("r0,w1")); got != fp.V0 {
		t.Errorf("entryConstraint(r0,w1) = %v", got)
	}
	if got := entryConstraint(ops("w1,r1")); got != fp.VX {
		t.Errorf("entryConstraint(w1,r1) = %v", got)
	}
	if got := entryConstraint(ops("t,r1")); got != fp.V1 {
		t.Errorf("entryConstraint(t,r1) = %v", got)
	}
	if got := exitValue(ops("r0,w1,r1,w0"), fp.V0); got != fp.V0 {
		t.Errorf("exitValue = %v", got)
	}
	if got := exitValue(ops("r1,r1"), fp.V1); got != fp.V1 {
		t.Errorf("exitValue without writes = %v", got)
	}
	m := march.MustParse("x", "c(w0) ^(r0,w1)")
	if got := testExit(m); got != fp.V1 {
		t.Errorf("testExit = %v", got)
	}
}

func TestBuildTemplatesConsistent(t *testing.T) {
	ts := buildTemplates()
	// Every shape appears in both orders; entry-constrained shapes also get
	// a write-prefixed (entry-free) variant in both orders.
	min, max := 2*len(templateOps), 4*len(templateOps)
	if len(ts) < min || len(ts) > max {
		t.Fatalf("%d templates, want between %d and %d", len(ts), min, max)
	}
	for _, tpl := range ts {
		if len(tpl.ops) == 0 {
			t.Error("empty template")
		}
		// Entry constraint recomputation must agree.
		if tpl.entry != entryConstraint(tpl.ops) {
			t.Errorf("template %v: inconsistent entry constraint", tpl.ops)
		}
	}
}

func TestFaultTPs(t *testing.T) {
	lf, err := linked.NewLF1(fp.MustParseFP("<0w1/0/->"), fp.MustParseFP("<0r0/1/1>"))
	if err != nil {
		t.Fatal(err)
	}
	tps := faultTPs(lf)
	if len(tps) != 2 {
		t.Fatalf("linked fault: %d TPs, want 2 (FP2 first, then FP1)", len(tps))
	}
	// FP2 = RDF at state 0: excitation is a read expecting the fault-free 0.
	if tps[0].init != fp.V0 || len(tps[0].ops) != 1 || tps[0].ops[0] != fp.R0 || tps[0].after != fp.V0 {
		t.Errorf("TP2 = %+v", tps[0])
	}
	// FP1 = TF up: excitation w1 from state 0, fault-free lands at 1.
	if tps[1].init != fp.V0 || len(tps[1].ops) != 1 || tps[1].ops[0] != fp.W1 || tps[1].after != fp.V1 {
		t.Errorf("TP1 = %+v", tps[1])
	}

	simple, err := linked.NewSimple(fp.MustParseFP("<1w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	stps := faultTPs(simple)
	if len(stps) != 1 || len(stps[0].ops) != 1 || stps[0].ops[0] != fp.W1 || stps[0].init != fp.V1 {
		t.Errorf("simple TPs = %+v", stps)
	}

	// A dynamic fault's TP carries both sensitizing operations with
	// fault-free read expectations.
	dyn, err := linked.NewSimple(fp.MustParseFP("<0w1r1/0/1>"))
	if err != nil {
		t.Fatal(err)
	}
	dtps := faultTPs(dyn)
	if len(dtps) != 1 || len(dtps[0].ops) != 2 || dtps[0].ops[0] != fp.W1 || dtps[0].ops[1] != fp.R1 {
		t.Errorf("dynamic TPs = %+v", dtps)
	}
}

func TestBuildSnippet(t *testing.T) {
	tp := singleTP{init: fp.V1, ops: []fp.Op{fp.W1}, after: fp.V1}
	// From value 0: connect w1, excite w1, observe r1.
	got := buildSnippet(fp.V0, tp, 1)
	want := "w1,w1,r1"
	if fp.FormatOps(got) != want {
		t.Errorf("snippet = %s, want %s", fp.FormatOps(got), want)
	}
	// Already at 1: no connect; two observing reads.
	got = buildSnippet(fp.V1, tp, 2)
	if fp.FormatOps(got) != "w1,r1,r1" {
		t.Errorf("snippet = %s", fp.FormatOps(got))
	}
}

// CertifyWithOracle re-certifies the generated test with the independent
// reference simulator; on the real generator output the two implementations
// must agree, so the flag changes nothing but adds the cross-check.
func TestGenerateCertifyWithOracle(t *testing.T) {
	res, err := Generate(faultlist.List2(), Options{Name: "GEN-ORACLE", CertifyWithOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
}

// The flag is part of the canonical options wire form.
func TestOptionsJSONCertifyWithOracle(t *testing.T) {
	b, err := Options{CertifyWithOracle: true}.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var o Options
	if err := o.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !o.CertifyWithOracle {
		t.Fatalf("flag lost across the JSON round trip: %s", b)
	}
}
