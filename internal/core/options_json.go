package core

import (
	"encoding/json"
	"fmt"

	"marchgen/internal/sim"
)

// String renders the constraint in the spelling the command-line tools and
// the HTTP API accept: "free", "up" or "down".
func (c OrderConstraint) String() string {
	switch c {
	case OrderUpOnly:
		return "up"
	case OrderDownOnly:
		return "down"
	}
	return "free"
}

// ParseOrderConstraint resolves the textual spelling of an order
// constraint. It is the single parser shared by cmd/marchgen and the marchd
// API, replacing the per-tool switch statements.
func ParseOrderConstraint(s string) (OrderConstraint, error) {
	switch s {
	case "", "free":
		return OrderFree, nil
	case "up":
		return OrderUpOnly, nil
	case "down":
		return OrderDownOnly, nil
	}
	return OrderFree, fmt.Errorf("core: invalid order constraint %q (want free, up or down)", s)
}

// MarshalJSON encodes the constraint as its textual spelling.
func (c OrderConstraint) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes and validates the textual spelling.
func (c *OrderConstraint) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseOrderConstraint(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// Canonical returns the options with every default made explicit: the
// test name, the phase bounds, and both simulator configurations (each
// itself canonicalized, see sim.Config.Canonical). Canonical is idempotent
// and is the normal form behind the JSON codec and the marchd result-cache
// key: a request that omits options hashes identically to one that spells
// out every default.
func (o Options) Canonical() Options {
	o.Name = o.name()
	o.MaxSOLen = o.maxSOLen()
	o.MaxRepairRounds = o.maxRepairRounds()
	o.SearchConfig = o.searchConfig().Canonical()
	o.FinalConfig = o.finalConfig().Canonical()
	// Axis options normalize their bit-oriented/single-port defaults to the
	// zero value and stay off the wire at defaults, so pre-axis requests and
	// explicit width=1/ports=1 requests hash to the same cache key.
	o = o.axisDefaults()
	return o
}

// optionsJSON is the wire form of the generator options: stable field
// order, defaults always explicit, the order constraint as text.
type optionsJSON struct {
	Name              string          `json:"name"`
	Aggressive        bool            `json:"aggressive"`
	Orders            OrderConstraint `json:"orders"`
	SkipMinimize      bool            `json:"skip_minimize"`
	MaxSOLen          int             `json:"max_so_len"`
	MaxRepairRounds   int             `json:"max_repair_rounds"`
	CertifyWithOracle bool            `json:"certify_with_oracle"`
	SearchConfig      sim.Config      `json:"search_config"`
	FinalConfig       sim.Config      `json:"final_config"`
	Width             int             `json:"width,omitempty"`
	Transparent       bool            `json:"transparent,omitempty"`
	Ports             int             `json:"ports,omitempty"`
}

// MarshalJSON encodes the canonical form: stable field order, defaults
// filled in. Equal canonical options produce byte-identical JSON.
func (o Options) MarshalJSON() ([]byte, error) {
	co := o.Canonical()
	return json.Marshal(optionsJSON{
		Name:              co.Name,
		Aggressive:        co.Aggressive,
		Orders:            co.Orders,
		SkipMinimize:      co.SkipMinimize,
		MaxSOLen:          co.MaxSOLen,
		MaxRepairRounds:   co.MaxRepairRounds,
		CertifyWithOracle: co.CertifyWithOracle,
		SearchConfig:      co.SearchConfig,
		FinalConfig:       co.FinalConfig,
		Width:             co.Width,
		Transparent:       co.Transparent,
		Ports:             co.Ports,
	})
}

// UnmarshalJSON decodes options; omitted fields keep their zero value and
// therefore their documented defaults.
func (o *Options) UnmarshalJSON(data []byte) error {
	var w optionsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*o = Options{
		Name:              w.Name,
		Aggressive:        w.Aggressive,
		Orders:            w.Orders,
		SkipMinimize:      w.SkipMinimize,
		MaxSOLen:          w.MaxSOLen,
		MaxRepairRounds:   w.MaxRepairRounds,
		CertifyWithOracle: w.CertifyWithOracle,
		SearchConfig:      w.SearchConfig,
		FinalConfig:       w.FinalConfig,
		Width:             w.Width,
		Transparent:       w.Transparent,
		Ports:             w.Ports,
	}
	return nil
}
