package core

import (
	"context"

	"marchgen/internal/afp"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// walk is phase 1 of the generator: it builds valid Sequences of Operations
// (Definition 11 — all operations on the same cell) covering the single-cell
// faults of the list, and closes each SO into a march element (Figure 5,
// step 1.c). The SO is assembled from the faults' test patterns
// (initialization / excitation / observation, Definition 5); after each
// element the candidate is fault-simulated and the covered faults deleted
// (step 1.c.ii), so an operation chain that happens to cover later faults
// shortens the walk.
func walk(ctx context.Context, cand march.Test, faults []linked.Fault, opts Options, st *Stats) march.Test {
	var singles []linked.Fault
	for _, f := range faults {
		if f.Cells == 1 {
			singles = append(singles, f)
		}
	}
	if len(singles) == 0 {
		return cand
	}
	cfg := opts.searchConfig()

	pending := singles
	for len(pending) > 0 && ctx.Err() == nil {
		v := testExit(cand) // fault-free cell value entering the new element
		var so []fp.Op
		progressed := false
		for _, f := range pending {
			if len(so) >= opts.maxSOLen() {
				break
			}
			snippet, ok := coveringSnippet(cand, so, v, f, cfg, opts, st)
			if !ok {
				continue
			}
			so = append(so, snippet...)
			v = exitValue(snippet, v)
			progressed = true
		}
		if !progressed {
			// The remaining single-cell faults need cross-element or
			// coupling-style coverage; leave them to the repair phase.
			break
		}
		cand.Elems = append(cand.Elems, march.NewElement(opts.Orders.walkOrder(), so...))

		// Delete the covered faults (Figure 5, step 1.c.ii). The schedule is
		// compiled once for the grown candidate and shared across the whole
		// pending list.
		sched, serr := sim.NewSchedule(cand, cfg)
		if serr != nil {
			break // the candidate cannot be simulated; repair phase takes over
		}
		next := pending[:0]
		for _, f := range pending {
			det, _, err := sched.DetectsFault(f)
			st.Simulations++
			if err != nil || !det {
				next = append(next, f)
			}
		}
		if len(next) == len(pending) {
			break // no progress; repair phase takes over
		}
		pending = next
	}
	return cand
}

// coveringSnippet proposes operations to append to the SO so that the
// candidate (with the SO as an extra ⇑ element) detects the fault. The
// proposals are derived from the fault's test patterns: for a linked fault
// TP1 → TP2 (eq. 8), detecting either pattern in isolation suffices, so both
// are tried, each with one or two observing reads (the second read catches
// deceptive behaviors). Every proposal is verified by the fault simulator
// before being accepted.
func coveringSnippet(cand march.Test, so []fp.Op, v fp.Value, f linked.Fault, cfg sim.Config, opts Options, st *Stats) ([]fp.Op, bool) {
	for _, tp := range faultTPs(f) {
		for reads := 1; reads <= 2; reads++ {
			snippet := buildSnippet(v, tp, reads)
			trial := cand.Clone()
			trial.Elems = append(trial.Elems, march.NewElement(opts.Orders.walkOrder(), append(append([]fp.Op(nil), so...), snippet...)...))
			if trial.CheckConsistency() != nil {
				continue
			}
			det, _, err := sim.DetectsFault(trial, f, cfg)
			st.Simulations++
			if err == nil && det {
				return snippet, true
			}
		}
	}
	return nil, false
}

// singleTP describes one test pattern of a single-cell fault in march terms.
type singleTP struct {
	init  fp.Value // required cell value before excitation
	ops   []fp.Op  // excitation operations (march rendering; empty for state faults)
	after fp.Value // fault-free cell value after excitation
}

// faultTPs derives the test patterns of a single-cell fault via the AFP
// machinery on a one-cell model: the linked chain TP1 → TP2 for linked
// faults (Definition 7), or the fault's own TP for simple ones. Sensitizing
// reads are re-expressed with the fault-free expectation the march notation
// requires.
func faultTPs(f linked.Fault) []singleTP {
	toSingle := func(a afp.AFP) singleTP {
		s := singleTP{init: a.I.Cell(0), after: a.Gv.Cell(0)}
		cur := a.I.Cell(0)
		for _, aop := range a.Es {
			op := aop.Op
			if op.Kind == fp.OpRead {
				op = fp.R(cur) // march reads carry the fault-free expectation
			}
			if op.Kind == fp.OpWrite {
				cur = op.Data
			}
			s.ops = append(s.ops, op)
		}
		return s
	}
	if f.Kind.IsLinked() {
		pairs, err := afp.Chain(f, 1, []int{0})
		if err != nil || len(pairs) == 0 {
			return nil
		}
		// Prefer detecting FP2 in isolation (its preconditions are reachable
		// fault-free), then FP1.
		return []singleTP{toSingle(pairs[0].Second), toSingle(pairs[0].First)}
	}
	afps, err := afp.Instantiate(f.FP1().FP, 1, afp.Assignment{A: -1, V: 0})
	if err != nil || len(afps) == 0 {
		return nil
	}
	out := make([]singleTP, 0, len(afps))
	for _, a := range afps {
		out = append(out, toSingle(a))
	}
	return out
}

// buildSnippet renders a test pattern as SO operations: connect the cell to
// the pattern's initial value, excite (one operation for static patterns,
// two for dynamic ones), observe with the given number of reads.
func buildSnippet(v fp.Value, tp singleTP, reads int) []fp.Op {
	var ops []fp.Op
	cur := v
	if tp.init.IsBinary() && cur != tp.init {
		ops = append(ops, fp.W(tp.init))
		cur = tp.init
	}
	if len(tp.ops) > 0 {
		ops = append(ops, tp.ops...)
		cur = exitValue(ops, v)
	}
	for i := 0; i < reads; i++ {
		ops = append(ops, fp.R(cur))
	}
	return ops
}
