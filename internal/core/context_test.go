package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"marchgen/internal/faultlist"
)

func TestGenerateContextCanceledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateContext(ctx, faultlist.List2(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGenerateContextDeadline(t *testing.T) {
	// List 1 takes on the order of a second; a microscopic deadline must
	// abort the run early and surface DeadlineExceeded, not a result.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := GenerateContext(ctx, faultlist.List1(), Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: the abort must be far quicker than a full run.
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

func TestGenerateContextBackgroundMatchesGenerate(t *testing.T) {
	res, err := GenerateContext(context.Background(), faultlist.List2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("coverage %.1f%%, want full", res.Report.Coverage())
	}
}
