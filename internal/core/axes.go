package core

import (
	"context"
	"fmt"
	"sync"

	"marchgen/internal/march"
	"marchgen/internal/mport"
	"marchgen/internal/word"
)

// WordResult is the word-oriented evaluation of a generated test: how many
// of the intra-word two-cell faults of a w-bit word the test detects when
// applied with the standard background set (solid + log2(w) alternating).
// When the run asked for the transparent in-field mode it also carries the
// transparent variant (initialization dropped, content as background) and
// its coverage.
type WordResult struct {
	// Width is the word width in bits (always > 1 here).
	Width int `json:"width"`
	// Backgrounds is the size of the standard background set, 1 + log2(w).
	Backgrounds int `json:"backgrounds"`
	// Faults is the number of march-testable intra-word faults.
	Faults int `json:"faults"`
	// Detected is how many of them the generated test detects.
	Detected int `json:"detected"`
	// Transparent marks that the in-field transparent mode was evaluated.
	Transparent bool `json:"transparent,omitempty"`
	// TransparentTest is the transparent variant in march notation.
	TransparentTest string `json:"transparent_test,omitempty"`
	// TransparentDetected is the transparent variant's intra-word coverage.
	TransparentDetected int `json:"transparent_detected,omitempty"`
}

// MportResult is the multi-port evaluation of a generation run: the coverage
// the single-port test retains against the two-port weak-fault catalog when
// lifted (port B idle), plus a dedicated two-port march generated for the
// catalog by the directed mport constructor.
type MportResult struct {
	// Ports is the port count (always 2 here — the modeled topology).
	Ports int `json:"ports"`
	// Faults is the size of the two-port weak-fault catalog.
	Faults int `json:"faults"`
	// LiftedDetected is the catalog coverage of the lifted single-port test.
	LiftedDetected int `json:"lifted_detected"`
	// Test is the dedicated two-port march in pair notation.
	Test string `json:"test"`
	// TestLength is its length in operation pairs.
	TestLength int `json:"test_length"`
	// TestDetected is its catalog coverage (full by construction).
	TestDetected int `json:"test_detected"`
}

// axisDefaults normalizes the axis options: width and ports at or below
// their bit-oriented/single-port defaults become 0 so a spelled-out default
// and an omitted one share a canonical form, and Transparent without a word
// width is meaningless and dropped.
func (o Options) axisDefaults() Options {
	if o.Width <= 1 {
		o.Width = 0
	}
	if o.Ports <= 1 {
		o.Ports = 0
	}
	if o.Width == 0 {
		o.Transparent = false
	}
	return o
}

// validateAxes bounds the axis options to the modeled space.
func (o Options) validateAxes() error {
	if o.Width < 0 || o.Width > 64 {
		return fmt.Errorf("core: width %d out of range [0,64]", o.Width)
	}
	if o.Ports < 0 || o.Ports > 2 {
		return fmt.Errorf("core: ports %d out of range [0,2] (only two-port memories are modeled)", o.Ports)
	}
	return nil
}

// EvaluateWord runs the word-oriented evaluation of a march test at the
// given width: the march-testable intra-word faults, the standard background
// set, and — when transparent is set — the in-field transparent variant. It
// is the single implementation behind Generate's word section, the verify
// and simulate endpoints, and the campaign word axis.
func EvaluateWord(ctx context.Context, t march.Test, width int, transparent bool) (*WordResult, error) {
	if width <= 1 {
		return nil, nil
	}
	bgs, err := word.Backgrounds(width)
	if err != nil {
		return nil, err
	}
	faults := word.TestableIntraWordFaults(width)
	cfg := word.Config{Words: 2, Width: width}
	detected := 0
	for _, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, err := word.Detects(t, f, bgs, cfg)
		if err != nil {
			return nil, err
		}
		if d {
			detected++
		}
	}
	res := &WordResult{
		Width:       width,
		Backgrounds: len(bgs),
		Faults:      len(faults),
		Detected:    detected,
	}
	if transparent {
		tt, err := word.Transparent(t)
		if err != nil {
			return nil, fmt.Errorf("core: transparent mode: %v", err)
		}
		td := 0
		for _, f := range faults {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			d, err := word.DetectsTransparent(tt, f, bgs, cfg)
			if err != nil {
				return nil, err
			}
			if d {
				td++
			}
		}
		res.Transparent = true
		res.TransparentTest = tt.String()
		res.TransparentDetected = td
	}
	return res, nil
}

// mportGen caches the catalog-generated two-port march. The catalog is a
// fixed table and Generate is deterministic, so the directed construction
// plus its simulation-guided minimization is a per-process constant —
// without the cache every two-port unit and request would pay the full
// search again for an identical answer.
var mportGen struct {
	once sync.Once
	test mport.Test
	rep  mport.Report
	err  error
}

func catalogMarch() (mport.Test, mport.Report, error) {
	mportGen.once.Do(func() {
		mportGen.test, mportGen.rep, mportGen.err =
			mport.Generate(mport.Catalog(), mport.Options{Config: mport.Config{}})
	})
	return mportGen.test, mportGen.rep, mportGen.err
}

// EvaluateMport runs the two-port evaluation of a march test: the weak-fault
// catalog coverage of its single-port lift, plus a dedicated two-port march
// from the directed constructor. Shared by Generate's mport section, the
// service endpoints and the campaign ports axis.
func EvaluateMport(ctx context.Context, t march.Test, ports int) (*MportResult, error) {
	if ports <= 1 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	catalog := mport.Catalog()
	cfg := mport.Config{}
	lifted, err := mport.Lift(t)
	if err != nil {
		return nil, fmt.Errorf("core: mport lift: %v", err)
	}
	liftedRep, err := mport.Simulate(lifted, catalog, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: mport simulate lifted: %v", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	gen, genRep, err := catalogMarch()
	if err != nil {
		return nil, fmt.Errorf("core: mport generate: %v", err)
	}
	return &MportResult{
		Ports:          ports,
		Faults:         len(catalog),
		LiftedDetected: liftedRep.Detected,
		Test:           gen.String(),
		TestLength:     gen.Length(),
		TestDetected:   genRep.Detected,
	}, nil
}

// evaluateAxes fills the word and mport sections of a generation result
// according to the axis options. Axis evaluation happens after certification
// — it grades the certified test on the extra dimensions, it never changes
// the test.
func evaluateAxes(ctx context.Context, t march.Test, opts Options, res *Result) error {
	o := opts.axisDefaults()
	w, err := EvaluateWord(ctx, t, o.Width, o.Transparent)
	if err != nil {
		return err
	}
	res.Word = w
	m, err := EvaluateMport(ctx, t, o.Ports)
	if err != nil {
		return err
	}
	res.Mport = m
	return nil
}
