package core

import (
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

func TestOrderConstraintAllows(t *testing.T) {
	cases := []struct {
		c    OrderConstraint
		o    march.AddrOrder
		want bool
	}{
		{OrderFree, march.Up, true},
		{OrderFree, march.Down, true},
		{OrderFree, march.Any, true},
		{OrderUpOnly, march.Up, true},
		{OrderUpOnly, march.Down, false},
		{OrderUpOnly, march.Any, true},
		{OrderDownOnly, march.Down, true},
		{OrderDownOnly, march.Up, false},
		{OrderDownOnly, march.Any, true},
	}
	for _, c := range cases {
		if got := c.c.Allows(c.o); got != c.want {
			t.Errorf("constraint %d allows %v = %v, want %v", c.c, c.o, got, c.want)
		}
	}
}

// The Section 7 extension: generation under an all-increasing order
// constraint still reaches full coverage, and every emitted element honors
// the constraint.
func TestGenerateUpOnlyList2(t *testing.T) {
	res, err := Generate(faultlist.List2(), Options{Name: "GEN-UP", Orders: OrderUpOnly})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	for i, e := range res.Test.Elems {
		if !OrderUpOnly.Allows(e.Order) {
			t.Errorf("element %d has order %v under OrderUpOnly", i, e.Order)
		}
	}
}

func TestGenerateDownOnlyList2(t *testing.T) {
	res, err := Generate(faultlist.List2(), Options{Name: "GEN-DOWN", Orders: OrderDownOnly})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	for i, e := range res.Test.Elems {
		if !OrderDownOnly.Allows(e.Order) {
			t.Errorf("element %d has order %v under OrderDownOnly", i, e.Order)
		}
	}
}

// A finding of the Section 7 extension (see EXPERIMENTS.md): Fault List #1
// contains exactly two LF2aa pairs — opposite-transition disturb couplings
// on the same aggressor — that no all-⇑ march test can detect. In an upward
// sweep the victim is visited before the aggressor, so the element pattern
// that sensitizes either primitive unavoidably lets its partner restore the
// victim before any read reaches it. The generator must refuse rather than
// silently under-cover.
func TestGenerateUpOnlyList1RefusesUncoverable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second generation run")
	}
	_, err := Generate(faultlist.List1(), Options{Name: "GEN-UP-L1", Orders: OrderUpOnly})
	if err == nil {
		t.Fatal("up-only generation over the full List #1 must refuse (two uncoverable LF2aa pairs)")
	}

	// Remove the two uncoverable pairs; everything else must be coverable
	// with all-increasing orders.
	uncoverable := map[string]bool{
		"LF2aa{CFds<0w1;0/1/->(a0,v1) -> CFds<1w0;1/0/->(a0,v1)}": true,
		"LF2aa{CFds<1w0;1/0/->(a0,v1) -> CFds<0w1;0/1/->(a0,v1)}": true,
	}
	var coverable []linked.Fault
	for _, f := range faultlist.List1() {
		if !uncoverable[f.ID()] {
			coverable = append(coverable, f)
		}
	}
	if len(coverable) != len(faultlist.List1())-2 {
		t.Fatalf("expected exactly 2 uncoverable pairs, filtered %d", len(faultlist.List1())-len(coverable))
	}
	res, err := Generate(coverable, Options{Name: "GEN-UP-L1", Orders: OrderUpOnly})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	for i, e := range res.Test.Elems {
		if !OrderUpOnly.Allows(e.Order) {
			t.Errorf("element %d has order %v under OrderUpOnly", i, e.Order)
		}
	}
	t.Logf("up-only List #1 test (minus 2 uncoverable): %s (%s)", res.Test, res.Test.Complexity())
}
