package core

import (
	"context"
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

// templateOps is the library of march-element operation shapes the repair
// phase draws from. The shapes are the recurring building blocks of the
// linked-fault literature: read-verify-write hammers for transition and
// disturb coupling faults, double reads for deceptive reads, non-transition
// writes for write destructive faults. Each shape is offered in both
// address orders; applicability is filtered by the entry-value constraint.
var templateOps = [][]string{
	{"r0", "w1"},
	{"r1", "w0"},
	{"r0"},
	{"r1"},
	{"r0", "r0"},
	{"r1", "r1"},
	{"w0"},
	{"w1"},
	{"r0", "w1", "r1", "w0"},
	{"r1", "w0", "r0", "w1"},
	{"r0", "r0", "w0", "r0", "w1"},
	{"r1", "r1", "w1", "r1", "w0"},
	{"r0", "w0", "r0", "w1"},
	{"r1", "w1", "r1", "w0"},
	{"r0", "r0", "w0", "r0", "w1", "w1", "r1"},
	{"r1", "r1", "w1", "r1", "w0", "w0", "r0"},
	{"r0", "w1", "r1", "w1", "r1"},
	{"r1", "w0", "r0", "w0", "r0"},
	{"r0", "w1", "w1", "r1"},
	{"r1", "w0", "w0", "r0"},
	// The March RAW element shapes: back-to-back write/read hammers that
	// sensitize the two-operation dynamic faults.
	{"r0", "w0", "r0", "r0", "w1", "r1"},
	{"r1", "w1", "r1", "r1", "w0", "r0"},
	// Triple reads: the read-read deceptive dynamic faults (dDRDF/dCFdr
	// with an r-r sensitization) flip on the second read but still return
	// the expected value; only a third read observes the corruption.
	{"r0", "r0", "r0"},
	{"r1", "r1", "r1"},
	// Triple read followed by a flip: covers read-read deceptive couplings
	// whose aggressor condition is the complement of the victim value (the
	// trailing write moves earlier cells of the sweep to the aggressor
	// state while later cells still hold the victim value).
	{"r1", "r1", "r1", "w0"},
	{"r0", "r0", "r0", "w1"},
	// Opposite-polarity write-read hammers: arm a w-r dynamic aggressor
	// sequence while the rest of the array (the victim) holds the other
	// sweep value.
	{"r1", "w0", "w1", "r1"},
	{"r0", "w1", "w0", "r0"},
	{"r1", "w0", "r0", "w1", "r1"},
	{"r0", "w1", "r1", "w0", "r0"},
	// The March SL element shapes: the completeness backstop (March SL
	// covers every static linked fault).
	{"r0", "r0", "w1", "w1", "r1", "r1", "w0", "w0", "r0", "w1"},
	{"r1", "r1", "w0", "w0", "r0", "r0", "w1", "w1", "r1", "w0"},
}

type template struct {
	order march.AddrOrder
	ops   []fp.Op
	entry fp.Value // required fault-free entry value (VX = any)
	exit  func(fp.Value) fp.Value
}

func buildTemplates() []template {
	var out []template
	add := func(ops []fp.Op) {
		entry := entryConstraint(ops)
		for _, order := range []march.AddrOrder{march.Up, march.Down} {
			ops := ops
			out = append(out, template{
				order: order,
				ops:   ops,
				entry: entry,
				exit:  func(v fp.Value) fp.Value { return exitValue(ops, v) },
			})
		}
	}
	for _, shape := range templateOps {
		ops := make([]fp.Op, len(shape))
		for i, s := range shape {
			op, err := fp.ParseOp(s)
			if err != nil {
				panic(err)
			}
			ops[i] = op
		}
		add(ops)
		// A write-prefixed variant makes every entry-constrained shape
		// reachable from any candidate exit value (the prefix write bridges
		// the polarity); the minimizer drops the prefix when redundant.
		if entry := entryConstraint(ops); entry.IsBinary() {
			add(append([]fp.Op{fp.W(entry)}, ops...))
		}
	}
	return out
}

// repair is phase 2 of the generator: while the fault simulator reports
// uncovered faults, append the template element covering the most of them
// (greedy set cover). This generalizes Figure 5's "apply the Sequence of
// Operations to each memory cell" to the coupling faults whose excitation
// and observation live on different cells. Termination is guaranteed by the
// March SL element shapes in the template library.
func repair(ctx context.Context, cand march.Test, faults []linked.Fault, cfg sim.Config, opts Options, st *Stats) (march.Test, error) {
	templates := buildTemplates()
	for {
		if err := ctx.Err(); err != nil {
			return cand, err
		}
		missing, err := uncovered(cand, faults, cfg, st)
		if err != nil {
			return cand, err
		}
		if len(missing) == 0 {
			return cand, nil
		}

		v := testExit(cand)
		best := -1
		bestGain := 0
		for ti, tpl := range templates {
			if err := ctx.Err(); err != nil {
				return cand, err
			}
			if !opts.Orders.Allows(tpl.order) {
				continue
			}
			if tpl.entry.IsBinary() && v.IsBinary() && tpl.entry != v {
				continue
			}
			if tpl.entry.IsBinary() && !v.IsBinary() {
				continue // cannot prove consistency on unknown entry value
			}
			trial := cand.Clone()
			trial.Elems = append(trial.Elems, march.NewElement(tpl.order, tpl.ops...))
			if trial.CheckConsistency() != nil {
				continue
			}
			// One compiled schedule per trial candidate, shared across the
			// whole missing-fault scan.
			sched, err := sim.NewSchedule(trial, cfg)
			if err != nil {
				return cand, err
			}
			gain := 0
			for _, f := range missing {
				det, _, err := sched.DetectsFault(f)
				st.Simulations++
				if err != nil {
					return cand, err
				}
				if det {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && len(tpl.ops) < len(templates[best].ops)) {
				best = ti
				bestGain = gain
			}
		}
		if bestGain == 0 {
			// No single template makes progress (cannot happen for the
			// paper's fault lists, but user-defined faults may need a
			// re-initialization first).
			if v != fp.V0 {
				cand.Elems = append(cand.Elems, march.NewElement(march.Any, fp.W0))
				continue
			}
			return cand, fmt.Errorf("core: repair cannot cover %d faults (first: %s)", len(missing), missing[0].ID())
		}
		tpl := templates[best]
		cand.Elems = append(cand.Elems, march.NewElement(tpl.order, tpl.ops...))
		st.RepairElements++
	}
}
