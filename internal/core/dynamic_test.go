package core

import (
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/march"
)

// Generation for the two-operation dynamic fault space (the extension of
// the group's companion ETS 2005 paper): full certified coverage of all 66
// dynamic faults.
func TestGenerateDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second generation run")
	}
	res, err := Generate(faultlist.Dynamic(), Options{Name: "GEN-DYN"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	if err := res.Test.CheckConsistency(); err != nil {
		t.Error(err)
	}
	// March RAW (26n) reaches only 59/66; full dynamic coverage costs more
	// length but must stay within a sane bound.
	if got := res.Test.Length(); got > 70 {
		t.Errorf("dynamic test unexpectedly long: %dn", got)
	}
	r, err := Certify(march.MarchRAW, faultlist.Dynamic())
	if err != nil {
		t.Fatal(err)
	}
	if r.Full() {
		t.Error("March RAW should not fully cover the dynamic list (it misses the read-read deceptive faults)")
	}
}

// The grand union: one generated march test covering the complete fault
// space of this repository — all 594 static linked faults, all 48 simple
// static faults and all 66 dynamic faults (708 faults) — with certified
// 100% coverage.
func TestGenerateUnifiedAllFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("tens-of-seconds generation run")
	}
	all := append(faultlist.List1(), append(faultlist.SimpleStatic(), faultlist.Dynamic()...)...)
	res, err := Generate(all, Options{Name: "GEN-ALL"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Full() {
		t.Fatalf("incomplete coverage: %s", res.Report.Summary())
	}
	if res.Report.Total() != 708 {
		t.Errorf("unified list size %d, want 708", res.Report.Total())
	}
	t.Logf("unified test: %s (%s)", res.Test, res.Test.Complexity())
}
