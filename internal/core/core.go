// Package core implements the paper's primary contribution (Section 5): the
// automatic generation of march tests for a target list of (linked) memory
// faults.
//
// The generator follows the structure of Figure 5, instantiated as three
// phases (DESIGN.md discusses how each maps onto the pseudo-code):
//
//  1. Walk (walker.go) — builds valid Sequences of Operations (Definition
//  11. on the pattern-graph view of the single-cell faults: for every
//     still-uncovered fault it chains initialization, excitation and
//     observation operations on one cell, then closes the SO into a March
//     Element (step 1.c.iii of Figure 5). After every element the candidate
//     is fault-simulated and covered faults are deleted (step 1.c.ii).
//  2. Repair (repair.go) — the "apply the Sequence of Operations to each
//     memory cell" step generalized to coupling faults: march elements from
//     a template library (both address orders) are appended greedily until
//     the fault simulator reports no uncovered fault.
//  3. Minimize (minimize.go) — simulation-guided redundancy elimination:
//     any element or operation whose removal preserves 100% coverage and
//     march consistency is dropped. This realizes the paper's
//     "non-redundant march tests" claim and is what pushes the generated
//     lengths below the hand-made baselines of Table 1.
//
// Every generated test is certified by the fault simulator under the
// exhaustive configuration before being returned, mirroring the paper's
// Section 6 ("all generated Tests have been fault simulated").
package core

import (
	"context"
	"fmt"
	"time"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/oracle"
	"marchgen/internal/sim"
)

// OrderConstraint restricts the address orders the generator may emit.
// Section 7 of the paper lists this as future work: march tests whose
// elements all use the same address order (all ⇑ or all ⇓) can be
// implemented more efficiently in BIST hardware. ⇕ elements are always
// allowed — they are order-indifferent by definition and thus compatible
// with any single-order implementation.
type OrderConstraint uint8

// Order constraints.
const (
	OrderFree     OrderConstraint = iota // any mix of orders (default)
	OrderUpOnly                          // only ⇑ (and ⇕) elements
	OrderDownOnly                        // only ⇓ (and ⇕) elements
)

// Allows reports whether an element order is admissible under the
// constraint.
func (c OrderConstraint) Allows(o march.AddrOrder) bool {
	switch c {
	case OrderUpOnly:
		return o == march.Up || o == march.Any
	case OrderDownOnly:
		return o == march.Down || o == march.Any
	}
	return true
}

// walkOrder returns the order the walker should emit under the constraint.
func (c OrderConstraint) walkOrder() march.AddrOrder {
	if c == OrderDownOnly {
		return march.Down
	}
	return march.Up
}

// Options configures a generation run.
type Options struct {
	// Name is the name given to the generated test ("March GEN" if empty).
	Name string
	// Aggressive enables the extra minimization passes (pairwise operation
	// removal and element merging) used for the March RABL row of Table 1.
	Aggressive bool
	// Orders constrains the address orders of the generated test (the
	// Section 7 extension). The default OrderFree places no restriction.
	Orders OrderConstraint
	// SkipMinimize disables the redundancy-elimination phase, exposing the
	// raw walker+repair candidate (for ablation studies; the result is
	// still certified at full coverage, just longer).
	SkipMinimize bool
	// MaxSOLen bounds the length of a single walker-built march element;
	// 0 means the default of 11 (the longest element of March RABL).
	MaxSOLen int
	// SearchConfig is the simulator configuration used inside the search
	// loop; the zero value selects a 4-cell memory with lazy ⇕ resolution.
	SearchConfig sim.Config
	// FinalConfig is the simulator configuration used for the final
	// certification; the zero value selects the exhaustive default.
	FinalConfig sim.Config
	// MaxRepairRounds bounds the repair/validate iterations; 0 means 4.
	MaxRepairRounds int
	// CertifyWithOracle re-certifies the final test against the independent
	// reference simulator (internal/oracle) and fails the run on any
	// divergence between the two implementations — verdict, missed set or
	// witness. The oracle shares no code with internal/sim on the verdict
	// path, so an agreement here is meaningful evidence that the coverage
	// claim does not rest on a simulator bug.
	CertifyWithOracle bool
	// Width, when above 1, additionally grades the generated test on a
	// word-oriented memory of that width: intra-word two-cell faults under
	// the standard background set (internal/word). 0 or 1 keeps the classic
	// bit-oriented run byte-identical to pre-axis behavior.
	Width int
	// Transparent additionally evaluates the in-field transparent variant
	// of the test (initialization dropped, content as background — Li et
	// al.). Only meaningful with Width > 1; ignored otherwise.
	Transparent bool
	// Ports, when 2, additionally grades the test against the two-port
	// weak-fault catalog (internal/mport): coverage of its single-port lift
	// plus a dedicated two-port march. 0 or 1 means single-port.
	Ports int
}

func (o Options) name() string {
	if o.Name == "" {
		return "March GEN"
	}
	return o.Name
}

func (o Options) maxSOLen() int {
	if o.MaxSOLen <= 0 {
		return 11
	}
	return o.MaxSOLen
}

func (o Options) searchConfig() sim.Config {
	c := o.SearchConfig
	if c.Size <= 0 {
		c.Size = 4
	}
	return c
}

func (o Options) finalConfig() sim.Config {
	c := o.FinalConfig
	if c.Size <= 0 {
		// Substitute the exhaustive default for the model parameters but
		// keep the execution-detail knobs (Workers, DisableLanes) the caller
		// set: they never change verdicts, only how the work is done.
		d := sim.DefaultConfig()
		d.Workers = c.Workers
		d.DisableLanes = c.DisableLanes
		c = d
	}
	return c
}

func (o Options) maxRepairRounds() int {
	if o.MaxRepairRounds <= 0 {
		return 4
	}
	return o.MaxRepairRounds
}

// Stats records what the pipeline did.
type Stats struct {
	// Faults is the size of the target list.
	Faults int
	// WalkerElements and WalkerOps describe the phase-1 candidate.
	WalkerElements int
	WalkerOps      int
	// RepairElements counts elements added by phase 2.
	RepairElements int
	// LengthBeforeMinimize is the candidate length entering phase 3.
	LengthBeforeMinimize int
	// Simulations counts full-coverage candidate evaluations.
	Simulations int
	// Duration is the wall-clock generation time (the CPU-time column of
	// Table 1).
	Duration time.Duration
}

// Result is a generation outcome.
type Result struct {
	// Test is the generated march test, certified at 100% coverage of the
	// target list.
	Test march.Test
	// Report is the final exhaustive simulation report.
	Report sim.Report
	// Stats describes the run.
	Stats Stats
	// Word is the word-oriented evaluation (nil unless Options.Width > 1).
	Word *WordResult
	// Mport is the multi-port evaluation (nil unless Options.Ports > 1).
	Mport *MportResult
}

// Generate produces a march test covering every fault in the list. It
// returns an error only if the fault list cannot be covered by construction
// (which cannot happen for the static linked fault lists of the paper) or if
// a fault cannot be simulated under the given configurations.
func Generate(faults []linked.Fault, opts Options) (Result, error) {
	return GenerateContext(context.Background(), faults, opts)
}

// GenerateContext is Generate with cancellation and deadline support: the
// context is checked between simulation batches in every phase (walk,
// repair, minimize), so a canceled or expired context aborts the run within
// one candidate evaluation and returns ctx.Err(). This is the entry point
// long-lived callers (the marchd job engine) use for per-job deadlines.
func GenerateContext(ctx context.Context, faults []linked.Fault, opts Options) (Result, error) {
	start := time.Now()
	if len(faults) == 0 {
		return Result{}, fmt.Errorf("core: empty fault list")
	}
	if err := opts.validateAxes(); err != nil {
		return Result{}, err
	}
	st := &Stats{Faults: len(faults)}

	// Every march test in this construction starts by initializing the
	// array (the ⇕(w0) of every test in Table 1).
	cand := march.Test{Name: opts.name(), Elems: []march.Element{
		march.NewElement(march.Any, fp.W0),
	}}

	// Phase 1: walk the single-cell faults into Sequences of Operations.
	cand = walk(ctx, cand, faults, opts, st)
	st.WalkerElements = len(cand.Elems) - 1
	st.WalkerOps = cand.Length() - 1
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	// Phase 2 + certification loop: repair under the search configuration,
	// then certify under the exhaustive one; if certification finds a miss
	// (an address-order-sensitive fault), repair again against the stricter
	// configuration.
	var report sim.Report
	for round := 0; ; round++ {
		if round >= opts.maxRepairRounds() {
			return Result{}, fmt.Errorf("core: no full-coverage candidate after %d repair rounds", round)
		}
		var err error
		cfg := opts.searchConfig()
		if round > 0 {
			cfg = opts.finalConfig()
		}
		cand, err = repair(ctx, cand, faults, cfg, opts, st)
		if err != nil {
			return Result{}, err
		}
		st.LengthBeforeMinimize = cand.Length()

		if !opts.SkipMinimize {
			cand, err = minimize(ctx, cand, faults, cfg, opts, st)
			if err != nil {
				return Result{}, err
			}
		}

		report = sim.Simulate(cand, faults, opts.finalConfig())
		if err := report.Err(); err != nil {
			return Result{}, err
		}
		if report.Full() {
			break
		}
	}

	if err := cand.CheckConsistency(); err != nil {
		return Result{}, fmt.Errorf("core: generated test inconsistent: %v", err)
	}
	if opts.CertifyWithOracle {
		if diffs := oracle.CrossCheck(cand, faults, opts.finalConfig()); len(diffs) > 0 {
			return Result{}, fmt.Errorf("core: oracle cross-check found %d divergence(s) on %q; first: %s",
				len(diffs), cand.Name, diffs[0])
		}
	}
	cand.Origin = march.OriginGenerated
	res := Result{Test: cand, Report: report}
	if err := evaluateAxes(ctx, cand, opts, &res); err != nil {
		return Result{}, err
	}
	st.Duration = time.Since(start)
	res.Stats = *st
	return res, nil
}

// entryConstraint returns the fault-free cell value an element requires on
// entry (the expectation of any read occurring before the first write), or
// VX if the element starts with a write.
func entryConstraint(ops []fp.Op) fp.Value {
	for _, op := range ops {
		switch op.Kind {
		case fp.OpWrite:
			return fp.VX
		case fp.OpRead:
			return op.Data
		}
	}
	return fp.VX
}

// exitValue returns the fault-free cell value after applying the element's
// operations to a cell holding entry.
func exitValue(ops []fp.Op, entry fp.Value) fp.Value {
	v := entry
	for _, op := range ops {
		if op.Kind == fp.OpWrite {
			v = op.Data
		}
	}
	return v
}

// testExit returns the fault-free cell value after the whole candidate.
func testExit(t march.Test) fp.Value {
	v := fp.VX
	for _, e := range t.Elems {
		v = exitValue(e.Ops, v)
	}
	return v
}

// uncovered returns the faults the candidate does not yet detect.
func uncovered(t march.Test, faults []linked.Fault, cfg sim.Config, st *Stats) ([]linked.Fault, error) {
	st.Simulations++
	r := sim.Simulate(t, faults, cfg)
	if err := r.Err(); err != nil {
		return nil, err
	}
	var out []linked.Fault
	for _, res := range r.Missed() {
		out = append(out, res.Fault)
	}
	return out, nil
}
