package core

import (
	"context"
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/oracle"
	"marchgen/internal/sim"
)

// minimize is phase 3 of the generator: simulation-guided redundancy
// elimination. A candidate transformation is accepted iff the result is
// still a consistent march test with full coverage of the target list. The
// passes run to a fixpoint:
//
//   - drop whole elements (scanning from the end, where repair appended);
//   - drop single operations inside elements;
//   - with Options.Aggressive: drop operation pairs within an element and
//     merge adjacent elements with the same address order (the deeper search
//     that produced the March RABL row of Table 1).
//
// The result is non-redundant in the paper's sense: no single operation can
// be removed without losing coverage.
func minimize(ctx context.Context, cand march.Test, faults []linked.Fault, cfg sim.Config, opts Options, st *Stats) (march.Test, error) {
	acceptsWith := func(c sim.Config) func(march.Test) (bool, error) {
		return func(t march.Test) (bool, error) {
			// The accept predicate runs before every candidate simulation, so
			// checking the context here bounds a cancellation's latency to one
			// full-coverage evaluation.
			if err := ctx.Err(); err != nil {
				return false, err
			}
			if len(t.Elems) == 0 || t.Validate() != nil || t.CheckConsistency() != nil {
				return false, nil
			}
			st.Simulations++
			full, _, err := sim.FullCoverage(t, faults, c)
			return full, err
		}
	}
	accepts := acceptsWith(cfg)
	// Order relaxation must be judged under the exhaustive configuration:
	// with lazy ⇕ resolution, turning ⇓ into ⇕ silently becomes ⇑.
	acceptsExhaustive := acceptsWith(opts.finalConfig())

	for {
		changed := false

		// Element removal, end to start.
		for i := len(cand.Elems) - 1; i >= 0; i-- {
			trial := cand.Clone()
			trial.Elems = append(trial.Elems[:i], trial.Elems[i+1:]...)
			ok, err := accepts(trial)
			if err != nil {
				return cand, err
			}
			if ok {
				cand = trial
				changed = true
			}
		}

		// Single-operation removal, end to start.
		for i := len(cand.Elems) - 1; i >= 0; i-- {
			for j := len(cand.Elems[i].Ops) - 1; j >= 0; j-- {
				if len(cand.Elems[i].Ops) == 1 {
					continue // whole-element removal handles this
				}
				trial := cand.Clone()
				ops := trial.Elems[i].Ops
				trial.Elems[i].Ops = append(ops[:j], ops[j+1:]...)
				ok, err := accepts(trial)
				if err != nil {
					return cand, err
				}
				if ok {
					cand = trial
					changed = true
				}
			}
		}

		if opts.Aggressive {
			aggr, aggrChanged, err := aggressivePass(cand, accepts, acceptsExhaustive)
			if err != nil {
				return cand, err
			}
			cand = aggr
			changed = changed || aggrChanged
		}

		if !changed {
			return cand, nil
		}
	}
}

// aggressivePass tries pairwise operation removal within an element and
// merging adjacent elements with the same address order.
func aggressivePass(cand march.Test, accepts, acceptsExhaustive func(march.Test) (bool, error)) (march.Test, bool, error) {
	changed := false

	// Pairwise removal within one element.
	for i := len(cand.Elems) - 1; i >= 0; i-- {
	pairScan:
		for a := len(cand.Elems[i].Ops) - 1; a >= 1; a-- {
			for b := a - 1; b >= 0; b-- {
				if len(cand.Elems[i].Ops) <= 2 {
					break pairScan
				}
				trial := cand.Clone()
				ops := trial.Elems[i].Ops
				ops = append(ops[:a], ops[a+1:]...)
				ops = append(ops[:b], ops[b+1:]...)
				trial.Elems[i].Ops = ops
				ok, err := accepts(trial)
				if err != nil {
					return cand, changed, err
				}
				if ok {
					cand = trial
					changed = true
					break pairScan
				}
			}
		}
	}

	// Merge adjacent elements with the same order.
	for i := len(cand.Elems) - 2; i >= 0; i-- {
		if cand.Elems[i].Order != cand.Elems[i+1].Order {
			continue
		}
		trial := cand.Clone()
		merged := march.NewElement(trial.Elems[i].Order,
			append(append([]fp.Op(nil), trial.Elems[i].Ops...), trial.Elems[i+1].Ops...)...)
		trial.Elems = append(trial.Elems[:i], trial.Elems[i+1:]...)
		trial.Elems[i] = merged
		ok, err := accepts(trial)
		if err != nil {
			return cand, changed, err
		}
		if ok {
			cand = trial
			changed = true
		}
	}

	// Relax fixed orders to ⇕ where coverage allows: shorter to implement in
	// BIST hardware and closer to the paper's printed results (March ABL1 is
	// all-⇕). Length is unchanged, so this runs last.
	for i := range cand.Elems {
		if cand.Elems[i].Order == march.Any {
			continue
		}
		trial := cand.Clone()
		trial.Elems[i].Order = march.Any
		ok, err := acceptsExhaustive(trial)
		if err != nil {
			return cand, changed, err
		}
		if ok {
			cand = trial
			// Not flagged as "changed": the length did not improve, so the
			// fixpoint loop must not spin on it.
		}
	}
	return cand, changed, nil
}

// Certify re-validates an existing march test against a fault list under
// the exhaustive configuration. It is exposed for the command-line tools
// and experiments.
func Certify(t march.Test, faults []linked.Fault) (sim.Report, error) {
	r := sim.Simulate(t, faults, sim.DefaultConfig())
	return r, r.Err()
}

// CertifyWithOracle is the certify-before-land gate of the search-based
// optimizer (internal/optimize, DESIGN.md §14): the test must be a
// consistent march test, reach full coverage of the fault list under the
// production simulator, AND agree bit-for-bit with the independent
// reference oracle on every verdict. Any failure rejects the test — a
// candidate that only the fast simulator believes in never lands.
func CertifyWithOracle(t march.Test, faults []linked.Fault, cfg sim.Config) (sim.Report, error) {
	if cfg.Size <= 0 {
		d := sim.DefaultConfig()
		d.Workers = cfg.Workers
		d.DisableLanes = cfg.DisableLanes
		cfg = d
	}
	if err := t.CheckConsistency(); err != nil {
		return sim.Report{}, fmt.Errorf("core: certify %q: %v", t.Name, err)
	}
	r := sim.Simulate(t, faults, cfg)
	if err := r.Err(); err != nil {
		return r, fmt.Errorf("core: certify %q: %v", t.Name, err)
	}
	if !r.Full() {
		return r, fmt.Errorf("core: certify %q: %d/%d faults covered", t.Name, r.Detected(), r.Total())
	}
	if diffs := oracle.CrossCheck(t, faults, cfg); len(diffs) > 0 {
		return r, fmt.Errorf("core: certify %q: oracle cross-check found %d divergence(s); first: %s",
			t.Name, len(diffs), diffs[0])
	}
	return r, nil
}
