// Package buildinfo is the one shared implementation behind every binary's
// -version flag: it renders the module version and VCS state embedded by the
// Go toolchain (runtime/debug.ReadBuildInfo), so all cmd/ tools report their
// provenance identically without linker -X plumbing.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// readBuildInfo is swapped in tests to exercise the no-build-info path.
var readBuildInfo = debug.ReadBuildInfo

// Version returns the best available version string: the module version for
// released builds, or "devel" refined with the VCS revision (and a "+dirty"
// marker) when built from a checkout. "unknown" when the binary carries no
// build information at all (e.g. built without module support).
func Version() string {
	bi, ok := readBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v != "" && v != "(devel)" {
		// Released or pseudo-versioned build: the toolchain-stamped version
		// already encodes the revision.
		return v
	}
	v = "devel"
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += "-" + rev
		if dirty {
			v += "+dirty"
		}
	}
	return v
}

// Fprint writes the standard one-line version banner every cmd/ binary
// prints for -version: name, version, and the toolchain/platform triple.
func Fprint(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s (%s %s/%s)\n", name, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
