package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestVersionNeverEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() returned an empty string")
	}
}

func TestVersionWithoutBuildInfo(t *testing.T) {
	old := readBuildInfo
	defer func() { readBuildInfo = old }()
	readBuildInfo = func() (*debug.BuildInfo, bool) { return nil, false }
	if got := Version(); got != "unknown" {
		t.Fatalf("Version() without build info = %q, want %q", got, "unknown")
	}
}

func TestVersionVCSRefinement(t *testing.T) {
	old := readBuildInfo
	defer func() { readBuildInfo = old }()
	readBuildInfo = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			Main: debug.Module{Version: "(devel)"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	got := Version()
	if got != "devel-0123456789ab+dirty" {
		t.Fatalf("Version() = %q, want %q", got, "devel-0123456789ab+dirty")
	}
}

func TestVersionPseudoVersionPassesThrough(t *testing.T) {
	old := readBuildInfo
	defer func() { readBuildInfo = old }()
	// A toolchain-stamped pseudo-version already encodes the revision; it
	// must not be refined a second time.
	readBuildInfo = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			Main: debug.Module{Version: "v0.0.0-20260805233911-0123456789ab"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}
	if got := Version(); got != "v0.0.0-20260805233911-0123456789ab" {
		t.Fatalf("Version() = %q, want the pseudo-version untouched", got)
	}
}

func TestFprint(t *testing.T) {
	var b strings.Builder
	Fprint(&b, "marchcamp")
	out := b.String()
	if !strings.HasPrefix(out, "marchcamp ") || !strings.Contains(out, "go") {
		t.Fatalf("Fprint banner = %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("banner missing trailing newline: %q", out)
	}
}
