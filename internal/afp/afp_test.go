package afp

import (
	"strings"
	"testing"

	"marchgen/internal/automaton"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
)

func state(t *testing.T, s string) automaton.State {
	t.Helper()
	st, _, err := automaton.ParseState(s)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// The worked example of Definition 4: FP <0w1;0/1/-> on a 2-cell memory
// yields AFP1 = (00, w1 on cell 0, 11, 10) and AFP2 = (00, w1 on cell 1, 11,
// 01) — one per role assignment.
func TestDefinition4Example(t *testing.T) {
	f := fp.MustParseFP("<0w1;0/1/->")

	afps1, err := Instantiate(f, 2, Assignment{A: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(afps1) != 1 {
		t.Fatalf("assignment (a=0,v=1): %d AFPs, want 1 (both cells constrained)", len(afps1))
	}
	a1 := afps1[0]
	if a1.I != state(t, "00") || a1.Fv != state(t, "11") || a1.Gv != state(t, "10") {
		t.Errorf("AFP1 = %s, want (00, w1i, 11, 10)", a1)
	}
	if len(a1.Es) != 1 || a1.Es[0].String() != "w1i" {
		t.Errorf("AFP1 sensitizing ops = %v", a1.Es)
	}

	afps2, err := Instantiate(f, 2, Assignment{A: 1, V: 0})
	if err != nil {
		t.Fatal(err)
	}
	a2 := afps2[0]
	if a2.I != state(t, "00") || a2.Fv != state(t, "11") || a2.Gv != state(t, "01") {
		t.Errorf("AFP2 = %s, want (00, w1j, 11, 01)", a2)
	}
}

// The test patterns of Definition 5's example: TP1 = (00, w1 on cell 0,
// read cell 1 expecting 0) and TP2 = (00, w1 on cell 1, read cell 0
// expecting 0).
func TestDefinition5Example(t *testing.T) {
	f := fp.MustParseFP("<0w1;0/1/->")
	afps, err := Instantiate(f, 2, Assignment{A: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	tp := afps[0].TP()
	if tp.I != state(t, "00") {
		t.Errorf("TP1 initial state %s", tp.I.Format(2))
	}
	if tp.O.Cell != 1 || tp.O.Op != fp.R0 {
		t.Errorf("TP1 observation %v, want r0 on cell 1", tp.O)
	}
	if tp.Target != state(t, "11") {
		t.Errorf("TP1 target %s, want 11", tp.Target.Format(2))
	}
	ops := tp.Ops()
	if len(ops) != 2 || ops[0].String() != "w1i" || ops[1].String() != "r0j" {
		t.Errorf("TP1 ops = %v", ops)
	}
}

// The chained AFPs of eq. (13): (00, w1i, 11, 10) → (11, w0i, 00, 01) for
// the linked fault of eq. (12) placed with aggressor=cell0, victim=cell1.
func TestDefinition7ChainEq13(t *testing.T) {
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Chain(lf, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("%d chains, want 1", len(pairs))
	}
	p := pairs[0]
	if p.First.I != state(t, "00") || p.First.Fv != state(t, "11") || p.First.Gv != state(t, "10") {
		t.Errorf("AFP1 = %s", p.First)
	}
	if p.Second.I != state(t, "11") || p.Second.Fv != state(t, "00") || p.Second.Gv != state(t, "01") {
		t.Errorf("AFP2 = %s", p.Second)
	}
	// Definition 7's two conditions.
	if p.Second.I != p.First.Fv {
		t.Error("I2 != Fv1")
	}
	if p.Second.VictimFaulty() != p.First.VictimFaulty().Not() {
		t.Error("V(Fv2) != NOT V(Fv1)")
	}
	// eq. (14): the TPs are (00, w1i, r0j) → (11, w0i, r1j).
	tp1, tp2 := p.First.TP(), p.Second.TP()
	if tp1.String() != "(00, w1i, r0j)" {
		t.Errorf("TP1 = %s, want (00, w1i, r0j)", tp1)
	}
	if tp2.String() != "(11, w0i, r1j)" {
		t.Errorf("TP2 = %s, want (11, w0i, r1j)", tp2)
	}
}

func TestInstantiateEnumeratesFreeCells(t *testing.T) {
	// A single-cell TF on a 2-cell model leaves the bystander free: two
	// AFPs.
	f := fp.MustParseFP("<0w1/0/->")
	afps, err := Instantiate(f, 2, Assignment{A: -1, V: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(afps) != 2 {
		t.Fatalf("%d AFPs, want 2 (free bystander)", len(afps))
	}
	seen := map[automaton.State]bool{}
	for _, a := range afps {
		seen[a.I] = true
		if a.I.Cell(0) != fp.V0 {
			t.Errorf("victim initial state must be 0, got %s", a.I.Format(2))
		}
		if a.Gv.Cell(0) != fp.V1 || a.Fv.Cell(0) != fp.V0 {
			t.Errorf("TF: Gv victim must be 1, Fv victim 0: %s", a)
		}
		if a.I.Cell(1) != a.Gv.Cell(1) {
			t.Errorf("bystander must be untouched: %s", a)
		}
	}
	if len(seen) != 2 {
		t.Error("the two AFPs must differ in the bystander value")
	}
}

func TestInstantiateAllCounts(t *testing.T) {
	// Single-cell FP on 2 cells: 2 victims × 2 bystander values.
	single := fp.MustParseFP("<0w1/0/->")
	afps, err := InstantiateAll(single, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(afps) != 4 {
		t.Errorf("single-cell: %d AFPs, want 4", len(afps))
	}
	// Coupling FP on 2 cells: 2 ordered assignments, fully constrained.
	coupling := fp.MustParseFP("<0w1;0/1/->")
	afps, err = InstantiateAll(coupling, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(afps) != 2 {
		t.Errorf("coupling: %d AFPs, want 2", len(afps))
	}
	// Coupling FP on 3 cells: 6 ordered assignments × 2 bystander values.
	afps, err = InstantiateAll(coupling, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(afps) != 12 {
		t.Errorf("coupling on 3 cells: %d AFPs, want 12", len(afps))
	}
}

func TestInstantiateStateFault(t *testing.T) {
	sf := fp.MustParseFP("<1/0/->")
	afps, err := Instantiate(sf, 1, Assignment{A: -1, V: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(afps) != 1 {
		t.Fatalf("%d AFPs, want 1", len(afps))
	}
	a := afps[0]
	if len(a.Es) != 0 {
		t.Errorf("state fault must have an empty sensitizing sequence, got %v", a.Es)
	}
	if a.Gv != a.I {
		t.Error("state fault Gv must equal I")
	}
	if a.VictimFaulty() != fp.V0 || a.VictimGood() != fp.V1 {
		t.Errorf("SF1: Fv/Gv victims = %v/%v", a.VictimFaulty(), a.VictimGood())
	}
	if !strings.Contains(a.String(), "ε") {
		t.Errorf("empty sequence must render ε: %s", a)
	}
}

func TestInstantiateReadFaultCarriesR(t *testing.T) {
	rdf := fp.MustParseFP("<0r0/1/1>")
	afps, err := Instantiate(rdf, 1, Assignment{A: -1, V: 0})
	if err != nil {
		t.Fatal(err)
	}
	if afps[0].R != fp.V1 {
		t.Errorf("RDF AFP must carry R=1, got %v", afps[0].R)
	}
	cfds := fp.MustParseFP("<0r0;0/1/->") // read on the aggressor: no victim R
	afps, err = Instantiate(cfds, 2, Assignment{A: 0, V: 1})
	if err != nil {
		t.Fatal(err)
	}
	if afps[0].R != fp.VX {
		t.Errorf("aggressor-read AFP must carry R='-', got %v", afps[0].R)
	}
}

func TestAssignmentValidation(t *testing.T) {
	single := fp.MustParseFP("<0w1/0/->")
	coupling := fp.MustParseFP("<0w1;0/1/->")
	cases := []struct {
		f  fp.FP
		n  int
		as Assignment
	}{
		{single, 2, Assignment{A: 1, V: 0}},  // single-cell with aggressor
		{single, 2, Assignment{A: -1, V: 2}}, // victim out of range
		{coupling, 2, Assignment{A: -1, V: 0}},
		{coupling, 2, Assignment{A: 1, V: 1}}, // same cell
		{coupling, 2, Assignment{A: 2, V: 0}}, // aggressor out of range
	}
	for _, c := range cases {
		if _, err := Instantiate(c.f, c.n, c.as); err == nil {
			t.Errorf("Instantiate(%v, n=%d, %+v) accepted", c.f, c.n, c.as)
		}
	}
}

func TestChainRejections(t *testing.T) {
	simple, err := linked.NewSimple(fp.MustParseFP("<0w1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Chain(simple, 2, []int{0}); err == nil {
		t.Error("Chain must reject simple faults")
	}
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Chain(lf, 2, []int{0}); err == nil {
		t.Error("Chain must reject placements of the wrong size")
	}
}

// Every chain produced for the LF1 pairs keeps Definition 7 on every
// bystander configuration.
func TestChainInvariants(t *testing.T) {
	lf, err := linked.NewLF1(fp.MustParseFP("<0w1/0/->"), fp.MustParseFP("<0r0/1/1>"))
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Chain(lf, 2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 { // free bystander enumerated
		t.Fatalf("%d chains, want 2", len(pairs))
	}
	for _, p := range pairs {
		if p.Second.I != p.First.Fv {
			t.Errorf("%s: I2 != Fv1", p)
		}
		if p.Second.VictimFaulty() != p.First.VictimFaulty().Not() {
			t.Errorf("%s: V(Fv2) != NOT V(Fv1)", p)
		}
	}
}
