// Package afp implements the Addressed Fault Primitive of Definition 4 of
// the paper — an instantiation of a fault primitive that makes the involved
// addresses and the faulty/fault-free final memory states explicit —
// together with the Test Pattern of Definition 5 and the linked-AFP chaining
// of Definition 7.
//
//	AFP = (I, Es, Fv, Gv)    TP = (I, E, O)
//
// States use the paper's LSB-first convention: the first character of a
// state string is the cell with the lowest address.
package afp

import (
	"fmt"
	"strings"

	"marchgen/internal/automaton"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
)

// Assignment maps the roles of a fault primitive to memory addresses of the
// model. A is -1 for single-cell primitives.
type Assignment struct {
	A int
	V int
}

// AFP is an Addressed Fault Primitive on an n-cell memory model.
//
// Beyond the (I, Es, Fv, Gv) quadruple of Definition 4 it records the victim
// address and the faulty read result R of the underlying primitive (the
// original definition drops R, which loses incorrect-read faults; carrying
// it is a conservative extension documented in DESIGN.md).
type AFP struct {
	// Cells is the model size n.
	Cells int
	// I is the initial memory state before applying the AFP.
	I automaton.State
	// Es is the sensitizing operation sequence (empty for state faults).
	Es []automaton.Op
	// Fv is the faulty final memory state.
	Fv automaton.State
	// Gv is the fault-free (expected) final memory state.
	Gv automaton.State
	// Victim is the address of the victim cell.
	Victim int
	// R is the value returned by a faulty sensitizing read on the victim
	// (VX when the sensitization contains no victim read).
	R fp.Value
}

// String renders "(00, w1i, 11, 10)" in the style of the paper's examples.
func (a AFP) String() string {
	ops := make([]string, len(a.Es))
	for i, op := range a.Es {
		ops[i] = op.String()
	}
	es := strings.Join(ops, " ")
	if es == "" {
		es = "ε"
	}
	return fmt.Sprintf("(%s, %s, %s, %s)",
		a.I.Format(a.Cells), es, a.Fv.Format(a.Cells), a.Gv.Format(a.Cells))
}

// VictimFaulty returns V(Fv): the faulty value of the victim cell (the V
// extraction function of Definition 7).
func (a AFP) VictimFaulty() fp.Value { return a.Fv.Cell(a.Victim) }

// VictimGood returns the fault-free final value of the victim cell.
func (a AFP) VictimGood() fp.Value { return a.Gv.Cell(a.Victim) }

// TP derives the Test Pattern of Definition 5: the initial state, the
// sensitizing sequence, and the observing read on the victim expecting the
// fault-free value ("read the content of the cell and verify it").
func (a AFP) TP() TP {
	return TP{
		Cells:  a.Cells,
		I:      a.I,
		E:      append([]automaton.Op(nil), a.Es...),
		O:      automaton.Op{Cell: a.Victim, Op: fp.R(a.VictimGood())},
		Target: a.Fv,
	}
}

// TP is a Test Pattern (Definition 5): initialization I, excitation E and
// observation O. Target is the memory state reached by the faulty machine
// after E (equal to the AFP's Fv); on the pattern graph the TP is a faulty
// edge from I to Target (Section 4).
type TP struct {
	Cells  int
	I      automaton.State
	E      []automaton.Op
	O      automaton.Op
	Target automaton.State
}

// String renders "(00, w1i, r0j)" in the style of eq. (14).
func (t TP) String() string {
	ops := make([]string, len(t.E))
	for i, op := range t.E {
		ops[i] = op.String()
	}
	es := strings.Join(ops, " ")
	if es == "" {
		es = "ε"
	}
	return fmt.Sprintf("(%s, %s, %s)", t.I.Format(t.Cells), es, t.O)
}

// Ops returns the excitation followed by the observation: the operation
// sequence a walk must take when traversing the TP's faulty edge.
func (t TP) Ops() []automaton.Op {
	return append(append([]automaton.Op(nil), t.E...), t.O)
}

// checkAssignment validates an assignment against the primitive's shape.
func checkAssignment(f fp.FP, n int, as Assignment) error {
	if as.V < 0 || as.V >= n {
		return fmt.Errorf("afp: victim address %d out of range [0,%d)", as.V, n)
	}
	if f.Cells == 1 {
		if as.A != -1 {
			return fmt.Errorf("afp: single-cell primitive %v cannot have an aggressor address", f)
		}
		return nil
	}
	if as.A < 0 || as.A >= n {
		return fmt.Errorf("afp: aggressor address %d out of range [0,%d)", as.A, n)
	}
	if as.A == as.V {
		return fmt.Errorf("afp: aggressor and victim must be distinct addresses")
	}
	return nil
}

// sensOps builds the addressed sensitizing operation sequence of an
// op-triggered primitive under an assignment (one operation for static
// primitives, two for dynamic ones).
func sensOps(f fp.FP, as Assignment) []automaton.Op {
	cell := as.V
	if f.OpRole == fp.RoleAggressor {
		cell = as.A
	}
	addr := func(op fp.Op) automaton.Op {
		if op.Kind == fp.OpWait {
			return automaton.WaitOp
		}
		return automaton.Op{Cell: cell, Op: op}
	}
	ops := []automaton.Op{addr(f.Op)}
	if f.IsDynamic() {
		ops = append(ops, addr(f.Op2))
	}
	return ops
}

// instantiateAt builds the AFP for one fully specified initial state.
func instantiateAt(f fp.FP, n int, as Assignment, init automaton.State) (AFP, error) {
	m, err := automaton.New(n)
	if err != nil {
		return AFP{}, err
	}
	a := AFP{Cells: n, I: init, Victim: as.V, R: fp.VX}
	if f.Trigger == fp.TrigOp {
		a.Es = sensOps(f, as)
		gv := init
		for _, op := range a.Es {
			gv, err = m.Delta(gv, op)
			if err != nil {
				return AFP{}, err
			}
		}
		a.Gv = gv
		last := f.Op
		if f.IsDynamic() {
			last = f.Op2
		}
		if f.OpRole == fp.RoleVictim && last.Kind == fp.OpRead {
			a.R = f.R
		}
	} else {
		a.Gv = init // state faults have an empty sensitizing sequence
	}
	a.Fv = a.Gv.WithCell(as.V, f.F)
	return a, nil
}

// Instantiate enumerates the AFPs of a fault primitive under one role
// assignment on an n-cell model: one AFP per combination of values of the
// cells the primitive does not constrain (Definition 4's example enumerates
// exactly these instantiations).
func Instantiate(f fp.FP, n int, as Assignment) ([]AFP, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := checkAssignment(f, n, as); err != nil {
		return nil, err
	}
	constrained := map[int]fp.Value{}
	if f.VInit.IsBinary() {
		constrained[as.V] = f.VInit
	}
	var free []int
	for c := 0; c < n; c++ {
		if _, ok := constrained[c]; ok {
			continue
		}
		if c == as.A && f.AInit.IsBinary() {
			constrained[c] = f.AInit
			continue
		}
		free = append(free, c) // unconstrained f-cell or bystander
	}

	var out []AFP
	for bits := 0; bits < 1<<len(free); bits++ {
		var init automaton.State
		for cell, v := range constrained {
			init = init.WithCell(cell, v)
		}
		for i, cell := range free {
			init = init.WithCell(cell, fp.ValueOf(uint8(bits>>i)&1))
		}
		a, err := instantiateAt(f, n, as, init)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// InstantiateAll enumerates the AFPs of a primitive over every role
// assignment on the model.
func InstantiateAll(f fp.FP, n int) ([]AFP, error) {
	var out []AFP
	if f.Cells == 1 {
		for v := 0; v < n; v++ {
			afps, err := Instantiate(f, n, Assignment{A: -1, V: v})
			if err != nil {
				return nil, err
			}
			out = append(out, afps...)
		}
		return out, nil
	}
	for a := 0; a < n; a++ {
		for v := 0; v < n; v++ {
			if a == v {
				continue
			}
			afps, err := Instantiate(f, n, Assignment{A: a, V: v})
			if err != nil {
				return nil, err
			}
			out = append(out, afps...)
		}
	}
	return out, nil
}

// ChainPair is a linked AFP pair "AFP1 → AFP2" satisfying Definition 7:
// the initial state of the second equals the faulty state reached by the
// first, and the second masks the first (V(Fv2) = NOT V(Fv1)).
type ChainPair struct {
	First, Second AFP
}

// String renders "AFP1 -> AFP2".
func (c ChainPair) String() string {
	return c.First.String() + " -> " + c.Second.String()
}

// Chain instantiates a linked fault on an n-cell model under a placement
// (fault cell index → memory address) and returns every Definition-7
// compliant AFP pair (one per admissible bystander configuration).
func Chain(fault linked.Fault, n int, placement []int) ([]ChainPair, error) {
	if err := fault.Validate(); err != nil {
		return nil, err
	}
	if !fault.Kind.IsLinked() {
		return nil, fmt.Errorf("afp: %s is not a linked fault", fault.ID())
	}
	if len(placement) != fault.Cells {
		return nil, fmt.Errorf("afp: placement has %d addresses, fault involves %d cells", len(placement), fault.Cells)
	}
	asgn := func(b linked.Binding) Assignment {
		a := -1
		if b.A >= 0 {
			a = placement[b.A]
		}
		return Assignment{A: a, V: placement[b.V]}
	}

	firsts, err := Instantiate(fault.FP1().FP, n, asgn(fault.FP1()))
	if err != nil {
		return nil, err
	}
	f2 := fault.FP2()
	var pairs []ChainPair
	for _, a1 := range firsts {
		// Definition 7: I2 = Fv1. Instantiate FP2 exactly at that state and
		// keep the pair only if the state satisfies FP2's sensitizing
		// conditions.
		if f2.FP.VInit.IsBinary() && a1.Fv.Cell(placement[f2.V]) != f2.FP.VInit {
			continue
		}
		if f2.A >= 0 && f2.FP.AInit.IsBinary() && a1.Fv.Cell(placement[f2.A]) != f2.FP.AInit {
			continue
		}
		a2, err := instantiateAt(f2.FP, n, asgn(f2), a1.Fv)
		if err != nil {
			return nil, err
		}
		if a2.VictimFaulty() != a1.VictimFaulty().Not() {
			continue // FP2 does not mask FP1 in this configuration
		}
		pairs = append(pairs, ChainPair{First: a1, Second: a2})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("afp: %s has no Definition-7 chain on %d cells at placement %v", fault.ID(), n, placement)
	}
	return pairs, nil
}
