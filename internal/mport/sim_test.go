package mport

import (
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// MustParseSingle returns MATS+ as a single-port march for lifting tests.
func MustParseSingle(t *testing.T) march.Test {
	t.Helper()
	return march.MATSPlus
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 38 {
		t.Fatalf("catalog has %d faults, want 38 (6 W2 + 32 WCC)", len(cat))
	}
	counts := map[Class]int{}
	seen := map[string]bool{}
	for _, f := range cat {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.ID(), err)
		}
		counts[f.Class]++
		if seen[f.ID()] {
			t.Errorf("duplicate fault %s", f.ID())
		}
		seen[f.ID()] = true
	}
	if counts[W2RDF] != 2 || counts[W2DRDF] != 2 || counts[W2IRF] != 2 || counts[WCC] != 32 {
		t.Errorf("class counts = %v", counts)
	}
}

// The central claim of the two-port prototype: every catalog fault is
// invisible to single-port accesses. Lifted single-port march tests —
// including March SL, which covers every static linked fault — detect none
// of them.
func TestSinglePortTestsSeeNothing(t *testing.T) {
	cfg := Config{}
	for _, sp := range []march.Test{march.MATSPlus, march.MarchCMinus, march.MarchSS, march.MarchSL} {
		lifted, err := Lift(sp)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Simulate(lifted, Catalog(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected != 0 {
			t.Errorf("%s (single-port) detects %d/%d two-port faults; weak faults must need simultaneous accesses",
				sp.Name, rep.Detected, rep.Total)
		}
	}
}

// Same-cell double reads sensitize the W2 family.
func TestDoubleReadFaults(t *testing.T) {
	cfg := Config{}
	dbl := MustParse("dbl", "c(w0:-) ^(r0:r0,r0:-) ^(w1:-) ^(r1:r1,r1:-)")
	for _, f := range Catalog() {
		if f.Class == WCC {
			continue
		}
		det, err := Detects(dbl, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("double-read test misses %s", f.ID())
		}
	}
	// A single-read sweep sees none of them.
	single := MustParse("single", "c(w0:-) ^(r0:-) ^(w1:-) ^(r1:-)")
	for _, f := range Catalog() {
		if f.Class == WCC {
			continue
		}
		det, err := Detects(single, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if det {
			t.Errorf("single-read test falsely detects %s", f.ID())
		}
	}
}

// The deceptive variant needs the trailing third access: without it the
// double read returns the expected value and the corruption is later
// overwritten.
func TestDeceptiveDoubleReadNeedsThirdAccess(t *testing.T) {
	cfg := Config{}
	f := Fault{Class: W2DRDF, State: fp.V0, R: fp.V0}
	bare := MustParse("bare", "c(w0:-) ^(r0:r0,w0:-)")
	det, err := Detects(bare, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("deceptive double read must not be caught without a follow-up read")
	}
	followed := MustParse("followed", "c(w0:-) ^(r0:r0,r0:-)")
	det, err = Detects(followed, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("follow-up read must catch the deceptive double read")
	}
}

// A WCC fault fires only when both weak conditions hold in the same cycle
// on the adjacent aggressors.
func TestWCCSimultaneityRequired(t *testing.T) {
	cfg := Config{}
	f := Fault{Class: WCC, State: fp.V0,
		C1: WeakCond{Init: fp.V0, Op: fp.RX},
		C2: WeakCond{Init: fp.V0, Op: fp.RX}}
	// Simultaneous neighbor reads on a 0 background fire it; victims below
	// the sweep point are read within the element, victims above by the
	// following sweep.
	fire := MustParse("fire", "c(w0:-) ^(r0:r0+1) v(r0:-)")
	det, err := Detects(fire, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("simultaneous neighbor reads must fire the weak coupled fault")
	}
	// The same reads issued sequentially (port B idle) never fire it.
	seq := MustParse("seq", "c(w0:-) ^(r0:-) ^(r0:-) v(r0:-)")
	det, err = Detects(seq, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("sequential reads must not fire a weak coupled fault")
	}
}

func TestCheckConsistency2P(t *testing.T) {
	good := MustParse("g", "c(w0:-) ^(r0:r0) ^(w1:-) ^(r1:r1)")
	if err := good.CheckConsistency(4); err != nil {
		t.Error(err)
	}
	bad := MustParse("b", "c(w0:-) ^(r1:r1)")
	if err := bad.CheckConsistency(4); err == nil {
		t.Error("wrong expectation must be rejected")
	}
	badB := MustParse("bb", "c(w0:-) ^(r0:r1)")
	if err := badB.CheckConsistency(4); err == nil {
		t.Error("wrong port-B expectation must be rejected")
	}
	// Transparent reads carry no expectation and always pass.
	transparent := MustParse("tr", "c(w0:-) ^(w1:w0-1) ^(r:-)")
	if err := transparent.CheckConsistency(4); err != nil {
		t.Error(err)
	}
}

func TestDetectsCountTotals(t *testing.T) {
	cfg := Config{}
	w2 := Fault{Class: W2RDF, State: fp.V0, R: fp.V1}
	_, total, err := DetectsCount(MustParse("x", "c(w0:-)"), w2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 placements × 2 initial values × 1 order combo (the only ⇕ element
	// expands to 2) — c(w0:-) has one ⇕ element: 4×2×2 = 16.
	if total != 16 {
		t.Errorf("W2 scenario total = %d, want 16", total)
	}
	wcc := Fault{Class: WCC, State: fp.V0,
		C1: WeakCond{Init: fp.V0, Op: fp.W1},
		C2: WeakCond{Init: fp.V0, Op: fp.W1}}
	_, total, err = DetectsCount(MustParse("x", "^(w0:-)"), wcc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 adjacent pairs × 2 victims × 8 initial values × 1 order = 48.
	if total != 48 {
		t.Errorf("WCC scenario total = %d, want 48", total)
	}
}

func TestSimulateErrors(t *testing.T) {
	w2 := Fault{Class: W2RDF, State: fp.V0, R: fp.V1}
	if _, err := Simulate(Test{Name: "empty"}, []Fault{w2}, Config{}); err == nil {
		t.Error("invalid test must error")
	}
	wcc := Fault{Class: WCC, State: fp.V0,
		C1: WeakCond{Init: fp.V0, Op: fp.W1},
		C2: WeakCond{Init: fp.V0, Op: fp.W1}}
	if _, err := Detects(MustParse("x", "c(w0:-)"), wcc, Config{Size: 3}); err == nil {
		t.Error("3-cell fault on 3-cell array must error (no bystander)")
	}
	if _, err := Detects(MustParse("x", "c(w0:-)"), Fault{Class: Class(9)}, Config{}); err == nil {
		t.Error("invalid fault must error")
	}
}
