package mport

import (
	"testing"

	"marchgen/internal/fp"
)

func TestParsePairOp(t *testing.T) {
	cases := []struct {
		in      string
		a, b    fp.Op
		bTarget Target
	}{
		{"r0:r0", fp.R0, fp.R0, Same},
		{"w1:-", fp.W1, fp.Op{}, None},
		{"r0:r0+1", fp.R0, fp.R0, Next},
		{"r1:w0-1", fp.R1, fp.W0, Prev},
		{"r:-", fp.RX, fp.Op{}, None},
		{"w1:r1", fp.W1, fp.R1, Same},
		{"r:r", fp.RX, fp.RX, Same},
	}
	for _, c := range cases {
		p, err := ParsePairOp(c.in)
		if err != nil {
			t.Errorf("ParsePairOp(%q): %v", c.in, err)
			continue
		}
		if p.A != c.a || p.B != c.b || p.BTarget != c.bTarget {
			t.Errorf("ParsePairOp(%q) = %+v", c.in, p)
		}
		back, err := ParsePairOp(p.String())
		if err != nil || back != p {
			t.Errorf("round trip of %q via %q failed: %v", c.in, p.String(), err)
		}
	}
}

func TestParsePairOpErrors(t *testing.T) {
	bad := []string{
		"",
		"r0",    // no colon
		"zz:r0", // bad port A
		"r0:zz", // bad port B
		"w1:w1", // same-cell double write
		"t:-",   // wait not modeled
		"r0:t",  // wait on port B
		"w:-",   // write without value
	}
	for _, s := range bad {
		if p, err := ParsePairOp(s); err == nil {
			t.Errorf("ParsePairOp(%q) = %v, want error", s, p)
		}
	}
	// Same-cell write+read is legal (read-before-write).
	if _, err := ParsePairOp("w1:r0"); err != nil {
		t.Errorf("w1:r0 must be legal: %v", err)
	}
	// Neighbor double write is legal.
	if _, err := ParsePairOp("w1:w1+1"); err != nil {
		t.Errorf("w1:w1+1 must be legal: %v", err)
	}
}

func TestBAddrClampsAtBoundaries(t *testing.T) {
	next, _ := ParsePairOp("r0:r0+1")
	if got := next.bAddr(2, 4); got != 3 {
		t.Errorf("Next from 2 = %d, want 3", got)
	}
	if got := next.bAddr(3, 4); got != -1 {
		t.Errorf("Next from the top cell must idle, got %d", got)
	}
	prev, _ := ParsePairOp("r0:r0-1")
	if got := prev.bAddr(1, 4); got != 0 {
		t.Errorf("Prev from 1 = %d, want 0", got)
	}
	if got := prev.bAddr(0, 4); got != -1 {
		t.Errorf("Prev from cell 0 must idle, got %d", got)
	}
	same, _ := ParsePairOp("r0:r0")
	if got := same.bAddr(2, 4); got != 2 {
		t.Errorf("Same from 2 = %d", got)
	}
	idle, _ := ParsePairOp("r0:-")
	if got := idle.bAddr(2, 4); got != -1 {
		t.Errorf("None target = %d, want -1", got)
	}
}

func TestTestParseAndRender(t *testing.T) {
	m := MustParse("2p", "c(w0:-) ^(r0:r0,w1:-) v(r1:r1-1)")
	if m.Length() != 4 {
		t.Errorf("Length = %d, want 4", m.Length())
	}
	if m.Complexity() != "4n" {
		t.Errorf("Complexity = %q", m.Complexity())
	}
	back, err := Parse("2p", m.ASCII())
	if err != nil || !back.Equal(m) {
		t.Errorf("ASCII round trip failed: %v", err)
	}
	back2, err := Parse("2p", m.String())
	if err != nil || !back2.Equal(m) {
		t.Errorf("Unicode round trip failed: %v", err)
	}
}

func TestTestValidate(t *testing.T) {
	if err := (Test{Name: "empty"}).Validate(); err == nil {
		t.Error("empty test must fail")
	}
	if _, err := Parse("x", "c()"); err == nil {
		t.Error("empty element must fail")
	}
	if _, err := Parse("x", "q(r0:-)"); err == nil {
		t.Error("bad order marker must fail")
	}
	if _, err := Parse("x", "c(r0:-"); err == nil {
		t.Error("unterminated element must fail")
	}
	if _, err := Parse("x", "r0:-"); err == nil {
		t.Error("missing marker must fail")
	}
}

func TestCloneAndEqual(t *testing.T) {
	m := MustParse("x", "c(w0:-) ^(r0:r0)")
	c := m.Clone()
	c.Elems[1].Ops[0] = PairOp{A: fp.R1, B: fp.R1, BTarget: Same}
	if m.Elems[1].Ops[0].A != fp.R0 {
		t.Error("Clone shares storage")
	}
	if m.Equal(c) {
		t.Error("mutated clone must differ")
	}
	if !m.Equal(m.Clone()) {
		t.Error("fresh clone must be equal")
	}
}

func TestLift(t *testing.T) {
	lifted, err := Lift(MustParseSingle(t))
	if err != nil {
		t.Fatal(err)
	}
	if lifted.Length() != 5 {
		t.Errorf("lifted MATS+ length = %d", lifted.Length())
	}
	for _, e := range lifted.Elems {
		for _, op := range e.Ops {
			if op.BTarget != None {
				t.Error("lifted test must keep port B idle")
			}
		}
	}
}
