package mport

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Element is a two-port march element: a sequence of operation pairs
// applied to every cell (port A marches; port B follows its target rule).
type Element struct {
	Order march.AddrOrder
	Ops   []PairOp
}

// String renders "⇑(r0:r0,w1:-)".
func (e Element) String() string {
	parts := make([]string, len(e.Ops))
	for i, op := range e.Ops {
		parts[i] = op.String()
	}
	return e.Order.String() + "(" + strings.Join(parts, ",") + ")"
}

// ASCII renders the element with ASCII order markers.
func (e Element) ASCII() string {
	parts := make([]string, len(e.Ops))
	for i, op := range e.Ops {
		parts[i] = op.String()
	}
	return e.Order.ASCII() + "(" + strings.Join(parts, ",") + ")"
}

// Test is a two-port march test.
type Test struct {
	Name  string
	Elems []Element
}

// Length returns the number of cycles per cell (each pair is one cycle).
func (t Test) Length() int {
	total := 0
	for _, e := range t.Elems {
		total += len(e.Ops)
	}
	return total
}

// Complexity renders "12n" style complexity.
func (t Test) Complexity() string { return fmt.Sprintf("%dn", t.Length()) }

// String renders the full test.
func (t Test) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// ASCII renders the full test with ASCII markers.
func (t Test) ASCII() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.ASCII()
	}
	return strings.Join(parts, " ")
}

// Validate checks structural well-formedness of every element and pair.
func (t Test) Validate() error {
	if len(t.Elems) == 0 {
		return fmt.Errorf("mport: test %q has no elements", t.Name)
	}
	for i, e := range t.Elems {
		if len(e.Ops) == 0 {
			return fmt.Errorf("mport: test %q element %d is empty", t.Name, i)
		}
		for _, op := range e.Ops {
			if err := op.Validate(); err != nil {
				return fmt.Errorf("mport: test %q element %d: %v", t.Name, i, err)
			}
		}
	}
	return nil
}

// Clone deep-copies the test.
func (t Test) Clone() Test {
	out := t
	out.Elems = make([]Element, len(t.Elems))
	for i, e := range t.Elems {
		out.Elems[i] = Element{Order: e.Order, Ops: append([]PairOp(nil), e.Ops...)}
	}
	return out
}

// Equal reports whether two tests have the same element sequence.
func (t Test) Equal(u Test) bool {
	if len(t.Elems) != len(u.Elems) {
		return false
	}
	for i := range t.Elems {
		a, b := t.Elems[i], u.Elems[i]
		if a.Order != b.Order || len(a.Ops) != len(b.Ops) {
			return false
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] {
				return false
			}
		}
	}
	return true
}

// Parse parses the two-port notation, e.g.
// "c(w0:-) ^(r0:r0) ^(r0:r0,w1:-,r1:r1)".
func Parse(name, s string) (Test, error) {
	t := Test{Name: name}
	rest := strings.TrimSpace(s)
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return Test{}, fmt.Errorf("mport: %q: element %q has no operation list", name, rest)
		}
		marker := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest[:open]), ";"))
		order, err := parseOrder(marker)
		if err != nil {
			return Test{}, fmt.Errorf("mport: %q: %v", name, err)
		}
		closeIdx := strings.IndexByte(rest[open:], ')')
		if closeIdx < 0 {
			return Test{}, fmt.Errorf("mport: %q: unterminated operation list", name)
		}
		closeIdx += open
		var ops []PairOp
		for _, tok := range strings.Split(rest[open+1:closeIdx], ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			op, err := ParsePairOp(tok)
			if err != nil {
				return Test{}, fmt.Errorf("mport: %q: %v", name, err)
			}
			ops = append(ops, op)
		}
		t.Elems = append(t.Elems, Element{Order: order, Ops: ops})
		rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest[closeIdx+1:]), ";"))
	}
	if err := t.Validate(); err != nil {
		return Test{}, err
	}
	return t, nil
}

func parseOrder(marker string) (march.AddrOrder, error) {
	switch strings.ToLower(marker) {
	case "⇕", "c", "b", "any":
		return march.Any, nil
	case "⇑", "^", "u", "up":
		return march.Up, nil
	case "⇓", "v", "d", "down":
		return march.Down, nil
	}
	return march.Any, fmt.Errorf("invalid address-order marker %q", marker)
}

// MustParse is like Parse but panics on error.
func MustParse(name, s string) Test {
	t, err := Parse(name, s)
	if err != nil {
		panic(err)
	}
	return t
}

// Lift converts a single-port march test into a two-port test with port B
// idle — used to show that single-port tests miss the weak two-port faults.
func Lift(t march.Test) (Test, error) {
	out := Test{Name: t.Name}
	for _, e := range t.Elems {
		var ops []PairOp
		for _, op := range e.Ops {
			if op.Kind == fp.OpWait {
				return Test{}, fmt.Errorf("mport: cannot lift %q: wait operations are not modeled on two-port timing", t.Name)
			}
			ops = append(ops, PairOp{A: op, BTarget: None})
		}
		out.Elems = append(out.Elems, Element{Order: e.Order, Ops: ops})
	}
	return out, out.Validate()
}
