package mport

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Config controls the two-port simulation space.
type Config struct {
	// Size is the array size; 0 means the default of 4 cells.
	Size int
}

func (c Config) size() int {
	if c.Size <= 0 {
		return 4
	}
	return c.Size
}

// placement pins a fault template to concrete addresses. For W2* faults
// only Cell is used; for WCC faults A1 and A1+1 are the adjacent aggressors
// and Cell is the victim.
type placement struct {
	Cell int // sensitized cell (W2*) or victim (WCC)
	A1   int // lower aggressor (WCC); -1 otherwise
}

// mach simulates the good and faulty two-port machines in lockstep. The two
// sweep orders are precomputed once: address enumeration sits on the hot
// path of every scenario.
type mach struct {
	good, faulty []fp.Value
	up, down     []int
}

func newMach(n int) *mach {
	up := make([]int, n)
	down := make([]int, n)
	for i := 0; i < n; i++ {
		up[i] = i
		down[i] = n - 1 - i
	}
	return &mach{good: make([]fp.Value, n), faulty: make([]fp.Value, n), up: up, down: down}
}

// addrs returns the precomputed sweep for a concrete order.
func (m *mach) addrs(o march.AddrOrder) []int {
	if o == march.Down {
		return m.down
	}
	return m.up
}

// stepPair applies one operation pair at port-A address addrA and reports
// whether either port's read detects the fault.
func (m *mach) stepPair(f Fault, pl placement, p PairOp, addrA, n int) bool {
	addrB := p.bAddr(addrA, n)

	// Reads observe the pre-operation state (read-before-write on
	// write/read conflicts).
	var retGA, retFA, retGB, retFB fp.Value
	bActive := p.BTarget != None && addrB >= 0
	readA := p.A.Kind == fp.OpRead
	readB := bActive && p.B.Kind == fp.OpRead
	if readA {
		retGA, retFA = m.good[addrA], m.faulty[addrA]
	}
	if readB {
		retGB, retFB = m.good[addrB], m.faulty[addrB]
	}

	// Fault triggers, evaluated on the pre-operation faulty state.
	fire := false
	switch f.Class {
	case W2RDF, W2DRDF, W2IRF:
		if readA && readB && addrA == addrB && addrA == pl.Cell && m.faulty[pl.Cell] == f.State {
			fire = true
			retFA, retFB = f.R, f.R
		}
	case WCC:
		if bActive && addrA != addrB && m.faulty[pl.Cell] == f.State {
			a2 := pl.A1 + 1
			hit := func(cond1, cond2 WeakCond) bool {
				return addrA == pl.A1 && addrB == a2 &&
					cond1.matches(p.A, m.faulty[pl.A1]) && cond2.matches(p.B, m.faulty[a2]) ||
					addrA == a2 && addrB == pl.A1 &&
						cond2.matches(p.A, m.faulty[a2]) && cond1.matches(p.B, m.faulty[pl.A1])
			}
			if hit(f.C1, f.C2) {
				fire = true
			}
		}
	}

	// Base write semantics on both machines.
	if p.A.Kind == fp.OpWrite {
		m.good[addrA] = p.A.Data
		m.faulty[addrA] = p.A.Data
	}
	if bActive && p.B.Kind == fp.OpWrite {
		m.good[addrB] = p.B.Data
		m.faulty[addrB] = p.B.Data
	}

	// Fault effect.
	if fire {
		m.faulty[pl.Cell] = f.F()
	}

	return readA && retFA != retGA || readB && retFB != retGB
}

// run simulates the whole test for one placement and initial state of the
// fault cells, returning whether any read detects the fault.
func (m *mach) run(t Test, f Fault, pl placement, init []fp.Value, cells []int, orders []march.AddrOrder, n int) bool {
	for i := range m.good {
		m.good[i] = fp.V0
		m.faulty[i] = fp.V0
	}
	for i, c := range cells {
		m.good[c] = init[i]
		m.faulty[c] = init[i]
	}
	for ei, e := range t.Elems {
		for _, addr := range m.addrs(orders[ei]) {
			for _, p := range e.Ops {
				if m.stepPair(f, pl, p, addr, n) {
					return true
				}
			}
		}
	}
	return false
}

// detectsEvery reports whether the test detects every scenario of the fault,
// bailing out at the first miss instead of enumerating the full miss list —
// the generator's minimizer calls it once per fault per trial, and most
// trials fail on their first missed scenario.
func detectsEvery(t Test, f Fault, cfg Config) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	if err := f.Validate(); err != nil {
		return false, err
	}
	n := cfg.size()
	if f.Cells() >= n {
		return false, fmt.Errorf("mport: %d-cell fault needs an array larger than %d", f.Cells(), n)
	}
	orderSets := orderCombos(t)
	m := newMach(n)
	for _, pl := range placements(f, n) {
		cells := faultCells(f, pl)
		for bits := 0; bits < 1<<len(cells); bits++ {
			init := make([]fp.Value, len(cells))
			for i := range cells {
				init[i] = fp.ValueOf(uint8(bits>>i) & 1)
			}
			for _, orders := range orderSets {
				if !m.run(t, f, pl, init, cells, orders, n) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// faultCells lists the concrete addresses a placement binds.
func faultCells(f Fault, pl placement) []int {
	if f.Class == WCC {
		return []int{pl.A1, pl.A1 + 1, pl.Cell}
	}
	return []int{pl.Cell}
}

// placements enumerates the placements of a fault on an n-cell array. WCC
// aggressors are physically adjacent (non-wrapping), and the victim is any
// other cell.
func placements(f Fault, n int) []placement {
	var out []placement
	if f.Class == WCC {
		for a1 := 0; a1+1 < n; a1++ {
			for v := 0; v < n; v++ {
				if v == a1 || v == a1+1 {
					continue
				}
				out = append(out, placement{Cell: v, A1: a1})
			}
		}
		return out
	}
	for c := 0; c < n; c++ {
		out = append(out, placement{Cell: c, A1: -1})
	}
	return out
}

// Detects reports whether the test detects the fault in every placement,
// every initial value of the fault cells, and every concrete order of its
// ⇕ elements.
func Detects(t Test, f Fault, cfg Config) (bool, error) {
	det, total, err := DetectsCount(t, f, cfg)
	return err == nil && det == total, err
}

// DetectsCount returns how many of the fault's scenarios (placement ×
// initial values × concrete orders) the test detects. The generator uses
// the scenario counts as its progress metric: an element that handles some
// placements of a fault is progress even before the fault is fully covered.
func DetectsCount(t Test, f Fault, cfg Config) (detected, total int, err error) {
	missing, total, err := missingScenarios(t, f, cfg)
	if err != nil {
		return 0, 0, err
	}
	return total - len(missing), total, nil
}

// scenario is one concrete simulation instance of a fault.
type scenario struct {
	pl     placement
	init   []fp.Value
	orders []march.AddrOrder
}

// missingScenarios enumerates the scenarios the test does not detect. The
// order assignments it returns cover the test's own elements; callers that
// re-check an *extended* test with detectsScenarios must only append
// fixed-order elements (the generator's templates never use ⇕).
func missingScenarios(t Test, f Fault, cfg Config) ([]scenario, int, error) {
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	n := cfg.size()
	if f.Cells() >= n {
		return nil, 0, fmt.Errorf("mport: %d-cell fault needs an array larger than %d", f.Cells(), n)
	}
	orderSets := orderCombos(t)
	m := newMach(n)
	total := 0
	var missing []scenario
	for _, pl := range placements(f, n) {
		cells := faultCells(f, pl)
		for bits := 0; bits < 1<<len(cells); bits++ {
			init := make([]fp.Value, len(cells))
			for i := range cells {
				init[i] = fp.ValueOf(uint8(bits>>i) & 1)
			}
			for _, orders := range orderSets {
				total++
				if !m.run(t, f, pl, init, cells, orders, n) {
					missing = append(missing, scenario{pl: pl, init: init, orders: orders})
				}
			}
		}
	}
	return missing, total, nil
}

// detectsScenarios counts how many of the given scenarios the (extended)
// test detects. Elements beyond the scenario's recorded orders must have
// fixed address orders.
func detectsScenarios(t Test, f Fault, scenarios []scenario, cfg Config) (int, error) {
	n := cfg.size()
	m := newMach(n)
	detected := 0
	for _, s := range scenarios {
		orders := s.orders
		if len(t.Elems) > len(orders) {
			orders = append(append([]march.AddrOrder(nil), orders...), make([]march.AddrOrder, len(t.Elems)-len(s.orders))...)
			for i := len(s.orders); i < len(t.Elems); i++ {
				o := t.Elems[i].Order
				if o == march.Any {
					return 0, fmt.Errorf("mport: detectsScenarios requires fixed orders in appended elements")
				}
				orders[i] = o
			}
		}
		cells := faultCells(f, s.pl)
		if m.run(t, f, s.pl, s.init, cells, orders, n) {
			detected++
		}
	}
	return detected, nil
}

func orderCombos(t Test) [][]march.AddrOrder {
	var anyIdx []int
	base := make([]march.AddrOrder, len(t.Elems))
	for i, e := range t.Elems {
		base[i] = e.Order
		if e.Order == march.Any {
			anyIdx = append(anyIdx, i)
		}
	}
	out := make([][]march.AddrOrder, 0, 1<<len(anyIdx))
	for bits := 0; bits < 1<<len(anyIdx); bits++ {
		orders := make([]march.AddrOrder, len(base))
		copy(orders, base)
		for j, idx := range anyIdx {
			if bits>>j&1 == 0 {
				orders[idx] = march.Up
			} else {
				orders[idx] = march.Down
			}
		}
		out = append(out, orders)
	}
	return out
}

// Report summarizes a two-port simulation.
type Report struct {
	Test     Test
	Total    int
	Detected int
	Missed   []Fault
}

// Full reports complete coverage.
func (r Report) Full() bool { return r.Total > 0 && r.Detected == r.Total }

// Coverage returns the detected percentage.
func (r Report) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

// Summary renders a one-line report.
func (r Report) Summary() string {
	return fmt.Sprintf("%s (%s): %d/%d detected (%.1f%%)",
		r.Test.Name, r.Test.Complexity(), r.Detected, r.Total, r.Coverage())
}

// Simulate runs the test against every fault.
func Simulate(t Test, faults []Fault, cfg Config) (Report, error) {
	r := Report{Test: t, Total: len(faults)}
	for _, f := range faults {
		det, err := Detects(t, f, cfg)
		if err != nil {
			return r, err
		}
		if det {
			r.Detected++
		} else {
			r.Missed = append(r.Missed, f)
		}
	}
	return r, nil
}

// CheckConsistency verifies the declared read expectations against the
// fault-free machine for every uniform initial array value and every
// concrete ⇕ order. Port-B neighbor reads at wrap-around boundaries see the
// already-processed neighbor, so expectations are checked exactly as the
// machine computes them.
func (t Test) CheckConsistency(n int) error {
	if err := t.Validate(); err != nil {
		return err
	}
	for _, initBit := range []fp.Value{fp.V0, fp.V1} {
		for _, orders := range orderCombos(t) {
			mem := make([]fp.Value, n)
			for i := range mem {
				mem[i] = initBit
			}
			written := make([]bool, n)
			for ei, e := range t.Elems {
				for _, addr := range orders[ei].Addresses(n) {
					for _, p := range e.Ops {
						addrB := p.bAddr(addr, n)
						bActive := p.BTarget != None && addrB >= 0
						if p.A.Kind == fp.OpRead && p.A.Data.IsBinary() && written[addr] && mem[addr] != p.A.Data {
							return fmt.Errorf("mport: test %q: element %d expects %s on port A but fault-free memory holds %s",
								t.Name, ei, p.A.Data, mem[addr])
						}
						if bActive && p.B.Kind == fp.OpRead && p.B.Data.IsBinary() && written[addrB] && mem[addrB] != p.B.Data {
							return fmt.Errorf("mport: test %q: element %d expects %s on port B but fault-free memory holds %s",
								t.Name, ei, p.B.Data, mem[addrB])
						}
						if p.A.Kind == fp.OpWrite {
							mem[addr] = p.A.Data
							written[addr] = true
						}
						if bActive && p.B.Kind == fp.OpWrite {
							mem[addrB] = p.B.Data
							written[addrB] = true
						}
					}
				}
			}
		}
	}
	return nil
}
