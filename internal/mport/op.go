// Package mport prototypes the extension the paper's Section 7 names as
// ongoing work: march test generation for multi-port memories. It models a
// two-port SRAM in which every cycle applies a pair of operations (port A,
// port B), a catalog of weak two-port fault models that are invisible to
// any single-port march test and only manifest under simultaneous accesses,
// a lockstep fault simulator for two-port march tests, and a
// template-repair/minimize generator in the style of internal/core.
//
// Two-port march notation: each step of an element is a pair "oA:oB". Port
// A addresses the marching cell; port B addresses the same cell ("r0:r0"),
// a neighbor ("r0:r0+1", "w1:r0-1", modulo the array size), or idles
// ("w1:-").
package mport

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
)

// Target selects the cell port B addresses relative to port A's cell.
type Target uint8

// Port-B targets.
const (
	None Target = iota // port B idle
	Same               // same cell as port A
	Next               // cell + 1 (modulo array size)
	Prev               // cell - 1 (modulo array size)
)

// String renders the target suffix used in the notation.
func (t Target) String() string {
	switch t {
	case None:
		return ""
	case Same:
		return ""
	case Next:
		return "+1"
	case Prev:
		return "-1"
	default:
		return fmt.Sprintf("Target(%d)", uint8(t))
	}
}

// PairOp is one two-port step: an operation on each port. B is the zero Op
// when the port idles (BTarget None).
type PairOp struct {
	A       fp.Op
	B       fp.Op
	BTarget Target
}

// String renders "r0:r0+1", "w1:-", etc.
func (p PairOp) String() string {
	b := "-"
	if p.BTarget != None {
		b = p.B.String() + p.BTarget.String()
	}
	return p.A.String() + ":" + b
}

// Validate rejects malformed pairs: wait operations (two-port timing is
// per-cycle), missing operand values, simultaneous writes to the same cell,
// and idle targets carrying an operation.
func (p PairOp) Validate() error {
	if err := validatePortOp(p.A, "port A"); err != nil {
		return err
	}
	if p.BTarget == None {
		if !p.B.IsZero() {
			return fmt.Errorf("mport: %s: idle port B cannot carry an operation", p)
		}
		return nil
	}
	if err := validatePortOp(p.B, "port B"); err != nil {
		return err
	}
	if p.BTarget == Same && p.A.Kind == fp.OpWrite && p.B.Kind == fp.OpWrite {
		return fmt.Errorf("mport: %s: simultaneous writes to the same cell are forbidden", p)
	}
	return nil
}

// validatePortOp accepts writes with a value and reads with or without an
// expected value. A read without an expectation ("r") is a transparent
// read: the on-line comparison is against the fault-free machine instead of
// a precomputed value, the two-port analogue of transparent-BIST reads.
func validatePortOp(op fp.Op, port string) error {
	switch op.Kind {
	case fp.OpWrite:
		if !op.Data.IsBinary() {
			return fmt.Errorf("mport: %s write needs a binary value", port)
		}
	case fp.OpRead:
		// Binary expectation or transparent (VX).
	default:
		return fmt.Errorf("mport: %s has an invalid operation", port)
	}
	return nil
}

// ParsePairOp parses "r0:r0", "w1:-", "r0:r0+1", "r1:w0-1".
func ParsePairOp(s string) (PairOp, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return PairOp{}, fmt.Errorf("mport: pair %q must have the form opA:opB", s)
	}
	a, err := fp.ParseOp(strings.TrimSpace(parts[0]))
	if err != nil {
		return PairOp{}, fmt.Errorf("mport: pair %q: %v", s, err)
	}
	p := PairOp{A: a}
	bs := strings.TrimSpace(parts[1])
	switch {
	case bs == "-":
		p.BTarget = None
	case strings.HasSuffix(bs, "+1"):
		p.BTarget = Next
		bs = strings.TrimSuffix(bs, "+1")
	case strings.HasSuffix(bs, "-1"):
		p.BTarget = Prev
		bs = strings.TrimSuffix(bs, "-1")
	default:
		p.BTarget = Same
	}
	if p.BTarget != None {
		b, err := fp.ParseOp(bs)
		if err != nil {
			return PairOp{}, fmt.Errorf("mport: pair %q: %v", s, err)
		}
		p.B = b
	}
	if err := p.Validate(); err != nil {
		return PairOp{}, err
	}
	return p, nil
}

// bAddr resolves port B's address for a port-A address on an n-cell array.
// Neighbor targets clamp at the array boundary: when the neighbor does not
// exist, port B idles for that cycle (-1). Clamping rather than wrapping
// matches the physical-adjacency locality of the weak coupled faults.
func (p PairOp) bAddr(addrA, n int) int {
	switch p.BTarget {
	case Same:
		return addrA
	case Next:
		if addrA+1 < n {
			return addrA + 1
		}
	case Prev:
		if addrA > 0 {
			return addrA - 1
		}
	}
	return -1
}
