package mport

import (
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// The directed construction covers the whole two-port catalog before
// minimization — fast, so it runs in every test round.
func TestGenerateDirectedConstruction(t *testing.T) {
	test, rep, err := Generate(Catalog(), Options{Name: "RAW-2P", SkipMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Full() {
		t.Fatalf("incomplete: %s", rep.Summary())
	}
	if err := test.Validate(); err != nil {
		t.Error(err)
	}
	if err := test.CheckConsistency(4); err != nil {
		t.Error(err)
	}
}

// Full generation with minimization: certified coverage, and substantially
// shorter than the raw construction.
func TestGenerate2P(t *testing.T) {
	if testing.Short() {
		t.Skip("tens-of-seconds minimization run")
	}
	raw, _, err := Generate(Catalog(), Options{SkipMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	test, rep, err := Generate(Catalog(), Options{Name: "March 2P"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Full() {
		t.Fatalf("incomplete: %s", rep.Summary())
	}
	if test.Length() >= raw.Length() {
		t.Errorf("minimized %dn not shorter than raw %dn", test.Length(), raw.Length())
	}
	if err := test.CheckConsistency(4); err != nil {
		t.Error(err)
	}
	t.Logf("two-port test: %dn over %d elements", test.Length(), len(test.Elems))
}

func TestGenerateErrors2P(t *testing.T) {
	if _, _, err := Generate(nil, Options{}); err == nil {
		t.Error("empty fault list must error")
	}
}

func TestFireElementShape(t *testing.T) {
	f := Fault{Class: WCC, State: fp.V1,
		C1: WeakCond{Init: fp.V0, Op: fp.W1},
		C2: WeakCond{Init: fp.V0, Op: fp.RX}}
	down := fireElement(f, false)
	if down.Order != march.Down {
		t.Errorf("down fire order = %v", down.Order)
	}
	if len(down.Ops) != 4 {
		t.Fatalf("fire element has %d ops, want 4", len(down.Ops))
	}
	if down.Ops[0].A != fp.RX || down.Ops[0].BTarget != None {
		t.Errorf("fire element must lead with a transparent read, got %v", down.Ops[0])
	}
	if down.Ops[2].BTarget != Next {
		t.Errorf("down fire pair must target the processed (next) neighbor, got %v", down.Ops[2].BTarget)
	}
	up := fireElement(f, true)
	if up.Order != march.Up || up.Ops[2].BTarget != Prev {
		t.Errorf("up fire element shape wrong: %v", up)
	}
	for _, e := range []Element{down, up} {
		for _, op := range e.Ops {
			if err := op.Validate(); err != nil {
				t.Errorf("fire element op invalid: %v", err)
			}
		}
	}
	bg := bgElement(f)
	if len(bg.Ops) != 1 || bg.Ops[0].A != fp.W1 {
		t.Errorf("background element must write the victim state: %v", bg)
	}
}

// Each directed fire element actually sensitizes its fault for at least
// some scenarios when preceded by the right background.
func TestFireElementSensitizes(t *testing.T) {
	cfg := Config{}
	count := 0
	for _, f := range Catalog() {
		if f.Class != WCC {
			continue
		}
		count++
		if count > 8 {
			break // a sample is enough; full coverage is certified elsewhere
		}
		trial := Test{Name: "probe", Elems: []Element{
			bgElement(f),
			fireElement(f, false),
			fireElement(f, true),
			{Order: march.Up, Ops: []PairOp{{A: fp.RX, BTarget: None}}},
			{Order: march.Down, Ops: []PairOp{{A: fp.RX, BTarget: None}}},
		}}
		det, total, err := DetectsCount(trial, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if det == 0 {
			t.Errorf("%s: directed elements never sensitize (0/%d)", f.ID(), total)
		}
	}
}
