package mport

import (
	"fmt"

	"marchgen/internal/fp"
)

// Class enumerates the weak two-port fault models. All of them are
// invisible to single-port accesses: each component disturbance is too weak
// to flip a cell on its own and only the superposition of two simultaneous
// accesses manifests the fault.
type Class uint8

// Two-port fault classes.
const (
	// W2RDF: a simultaneous double read of one cell flips it and both
	// ports return the flipped value.
	W2RDF Class = iota
	// W2DRDF: the deceptive variant — the cell flips but both ports return
	// the expected value.
	W2DRDF
	// W2IRF: both ports return the wrong value without flipping the cell.
	W2IRF
	// WCC: weak coupled concurrent fault — two weak disturb components on
	// two physically adjacent aggressor cells fire in the same cycle and
	// together flip a third victim cell.
	WCC
)

var classNames = [...]string{"W2RDF", "W2DRDF", "W2IRF", "WCC"}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// WeakCond is one component of a WCC fault: an operation on an aggressor
// cell holding a required state, too weak to disturb the victim alone.
type WeakCond struct {
	// Init is the required aggressor state before the operation.
	Init fp.Value
	// Op is the sensitizing operation (a write with its value, or a read).
	Op fp.Op
}

// String renders "0w1" or "1r".
func (w WeakCond) String() string {
	op := w.Op
	if op.Kind == fp.OpRead {
		return w.Init.String() + "r"
	}
	return w.Init.String() + op.String()
}

// matches reports whether applying op to a cell holding state satisfies the
// condition.
func (w WeakCond) matches(op fp.Op, state fp.Value) bool {
	if state != w.Init {
		return false
	}
	if op.Kind != w.Op.Kind {
		return false
	}
	if op.Kind == fp.OpWrite && op.Data != w.Op.Data {
		return false
	}
	return true
}

// Fault is a two-port fault instance template. W2* faults involve one cell;
// WCC faults involve two adjacent aggressors (a and a+1) plus a distinct
// victim.
type Fault struct {
	Class Class
	// State is the sensitized cell state for W2* faults, or the victim's
	// required state for WCC.
	State fp.Value
	// R is the value both ports return on the sensitizing double read
	// (W2* only).
	R fp.Value
	// C1 and C2 are the weak conditions on the lower and upper adjacent
	// aggressor (WCC only).
	C1, C2 WeakCond
}

// Cells returns the number of distinct cells the fault involves.
func (f Fault) Cells() int {
	if f.Class == WCC {
		return 3
	}
	return 1
}

// F returns the faulty value the sensitized cell flips to (W2IRF keeps the
// stored value).
func (f Fault) F() fp.Value {
	if f.Class == W2IRF {
		return f.State
	}
	return f.State.Not()
}

// ID returns a stable identifier, e.g. "W2RDF<0rr/1/1>" or
// "WCC{0w1&1w0;0/1}".
func (f Fault) ID() string {
	if f.Class == WCC {
		return fmt.Sprintf("WCC{%s&%s;%s/%s}", f.C1, f.C2, f.State, f.State.Not())
	}
	return fmt.Sprintf("%s<%srr/%s/%s>", f.Class, f.State, f.F(), f.R)
}

// Validate checks the fault template.
func (f Fault) Validate() error {
	switch f.Class {
	case W2RDF, W2DRDF, W2IRF:
		if !f.State.IsBinary() {
			return fmt.Errorf("mport: %s: sensitized state must be binary", f.ID())
		}
		if !f.R.IsBinary() {
			return fmt.Errorf("mport: %s: read result must be binary", f.ID())
		}
		want := map[Class]fp.Value{W2RDF: f.State.Not(), W2DRDF: f.State, W2IRF: f.State.Not()}[f.Class]
		if f.R != want {
			return fmt.Errorf("mport: %s: read result %s inconsistent with class", f.ID(), f.R)
		}
	case WCC:
		if !f.State.IsBinary() {
			return fmt.Errorf("mport: %s: victim state must be binary", f.ID())
		}
		for _, c := range []WeakCond{f.C1, f.C2} {
			if !c.Init.IsBinary() {
				return fmt.Errorf("mport: %s: weak condition needs a binary state", f.ID())
			}
			switch c.Op.Kind {
			case fp.OpWrite:
				if !c.Op.Data.IsBinary() {
					return fmt.Errorf("mport: %s: weak write needs a value", f.ID())
				}
			case fp.OpRead:
			default:
				return fmt.Errorf("mport: %s: weak condition needs a read or write", f.ID())
			}
		}
	default:
		return fmt.Errorf("mport: unknown class %d", f.Class)
	}
	return nil
}

// Catalog enumerates the two-port fault models: 6 same-cell double-read
// faults and 32 weak coupled concurrent faults (4 weak conditions per
// adjacent aggressor × 2 victim states).
func Catalog() []Fault {
	var out []Fault
	for _, s := range []fp.Value{fp.V0, fp.V1} {
		out = append(out,
			Fault{Class: W2RDF, State: s, R: s.Not()},
			Fault{Class: W2DRDF, State: s, R: s},
			Fault{Class: W2IRF, State: s, R: s.Not()},
		)
	}
	conds := []WeakCond{
		{Init: fp.V0, Op: fp.W1},
		{Init: fp.V1, Op: fp.W0},
		{Init: fp.V0, Op: fp.RX},
		{Init: fp.V1, Op: fp.RX},
	}
	for _, c1 := range conds {
		for _, c2 := range conds {
			for _, v := range []fp.Value{fp.V0, fp.V1} {
				out = append(out, Fault{Class: WCC, State: v, C1: c1, C2: c2})
			}
		}
	}
	return out
}
