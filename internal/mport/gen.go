package mport

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Options configures two-port generation.
type Options struct {
	// Name names the generated test ("March 2P" if empty).
	Name string
	// Config is the simulation configuration.
	Config Config
	// SkipMinimize keeps the raw directed construction (ablation).
	SkipMinimize bool
}

func (o Options) name() string {
	if o.Name == "" {
		return "March 2P"
	}
	return o.Name
}

// fireElement builds the directed element that sensitizes a WCC fault in
// one sweep direction and lets its victims be observed:
//
//   - every cycle starts with a transparent read of the marching cell, so a
//     victim corrupted while unprocessed is caught when the sweep reaches
//     it;
//   - a write sets the marching cell to the state the fault's near-side
//     condition requires;
//   - the operation pair applies the two weak conditions simultaneously:
//     the marching port on its cell, the second port on the neighbor the
//     sweep has already processed (whose state the trailing write pinned);
//   - the trailing write pins the processed region to the far-side
//     condition's state.
//
// In a ⇓ sweep the processed neighbor is cell+1, so the pair is
// (op1 : op2+1) and it fires when the sweep stands on the lower aggressor;
// the ⇑ mirror uses (op2 : op1-1) and fires on the upper one. Unprocessed
// victims hold the background value, so a background write of the fault's
// victim state precedes the element (bgElement).
func fireElement(f Fault, up bool) Element {
	render := func(c WeakCond) PairOp {
		// Rendering for the A port: writes carry their value; reads are
		// transparent (the processed-region state is not uniform enough for
		// a declared expectation).
		op := c.Op
		if op.Kind == fp.OpRead {
			op = fp.RX
		}
		return PairOp{A: op, BTarget: None}
	}
	near, far := f.C1, f.C2
	target := Next
	order := march.Down
	if up {
		near, far = f.C2, f.C1
		target = Prev
		order = march.Up
	}
	pair := render(near)
	pair.BTarget = target
	pair.B = far.Op
	if pair.B.Kind == fp.OpRead {
		pair.B = fp.RX
	}
	ops := []PairOp{
		{A: fp.RX, BTarget: None},           // observe the marching cell first
		{A: fp.W(near.Init), BTarget: None}, // set the near-side condition state
		pair,                                // fire
		{A: fp.W(far.Init), BTarget: None},  // pin the processed region
	}
	return Element{Order: order, Ops: ops}
}

// bgElement writes the fault's victim state as the array background.
func bgElement(f Fault) Element {
	return Element{Order: march.Up, Ops: []PairOp{{A: fp.W(f.State), BTarget: None}}}
}

// w2Block covers the same-cell double-read family: double reads with a
// follow-up read in both polarities.
func w2Block() []Element {
	return MustParse("w2",
		"^(w0:-) ^(r0:r0,r0:-) ^(w1:-) ^(r1:r1,r1:-)").Elems
}

// Generate produces a two-port march test covering every fault in the list
// by directed construction — one background/fire pair per WCC fault and
// sweep direction, bracketed by transparent observe sweeps — followed by
// simulation-guided minimization (the internal/core phase-3 analogue). The
// result is certified before being returned.
func Generate(faults []Fault, opts Options) (Test, Report, error) {
	if len(faults) == 0 {
		return Test{}, Report{}, fmt.Errorf("mport: empty fault list")
	}
	cfg := opts.Config

	cand := Test{Name: opts.name()}
	cand.Elems = append(cand.Elems, Element{Order: march.Any, Ops: []PairOp{{A: fp.W0, BTarget: None}}})
	cand.Elems = append(cand.Elems, w2Block()...)

	seen := map[string]bool{}
	for _, f := range faults {
		if f.Class != WCC {
			continue
		}
		for _, up := range []bool{false, true} {
			fire := fireElement(f, up)
			bg := bgElement(f)
			key := bg.String() + fire.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			cand.Elems = append(cand.Elems, bg, fire)
		}
	}
	// Final observe sweeps catch victims corrupted by the last fire
	// elements in either region.
	cand.Elems = append(cand.Elems,
		Element{Order: march.Up, Ops: []PairOp{{A: fp.RX, BTarget: None}}},
		Element{Order: march.Down, Ops: []PairOp{{A: fp.RX, BTarget: None}}},
	)

	if err := cand.Validate(); err != nil {
		return Test{}, Report{}, err
	}
	if err := cand.CheckConsistency(cfg.size()); err != nil {
		return Test{}, Report{}, err
	}
	rep, err := Simulate(cand, faults, cfg)
	if err != nil {
		return Test{}, Report{}, err
	}
	if !rep.Full() {
		return Test{}, Report{}, fmt.Errorf("mport: directed construction incomplete: %s (first miss: %s)",
			rep.Summary(), rep.Missed[0].ID())
	}
	if opts.SkipMinimize {
		return cand, rep, nil
	}

	// Minimization: drop any element or operation whose removal keeps full
	// coverage and consistency. The check fails fast — most trials lose some
	// fault, and rechecking the previous trial's culprit first usually
	// refutes them on the first fault instead of sweeping the whole catalog.
	culprit := 0
	full := func(t Test) (bool, error) {
		if t.Validate() != nil || t.CheckConsistency(cfg.size()) != nil {
			return false, nil
		}
		for k := 0; k < len(faults); k++ {
			i := (culprit + k) % len(faults)
			det, err := detectsEvery(t, faults[i], cfg)
			if err != nil {
				return false, err
			}
			if !det {
				culprit = i
				return false, nil
			}
		}
		return true, nil
	}
	for changed := true; changed; {
		changed = false
		for i := len(cand.Elems) - 1; i >= 0; i-- {
			trial := cand.Clone()
			trial.Elems = append(trial.Elems[:i], trial.Elems[i+1:]...)
			ok, err := full(trial)
			if err != nil {
				return Test{}, Report{}, err
			}
			if ok {
				cand, changed = trial, true
			}
		}
		for i := len(cand.Elems) - 1; i >= 0; i-- {
			for j := len(cand.Elems[i].Ops) - 1; j >= 0; j-- {
				if len(cand.Elems[i].Ops) == 1 {
					continue
				}
				trial := cand.Clone()
				ops := trial.Elems[i].Ops
				trial.Elems[i].Ops = append(ops[:j], ops[j+1:]...)
				ok, err := full(trial)
				if err != nil {
					return Test{}, Report{}, err
				}
				if ok {
					cand, changed = trial, true
				}
			}
		}
	}

	rep, err = Simulate(cand, faults, cfg)
	if err != nil {
		return Test{}, Report{}, err
	}
	if !rep.Full() {
		return Test{}, Report{}, fmt.Errorf("mport: minimization lost coverage: %s", rep.Summary())
	}
	return cand, rep, nil
}
