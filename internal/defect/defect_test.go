package defect

import (
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
	"marchgen/internal/sim"
)

func TestKindsAndNames(t *testing.T) {
	ks := Kinds()
	if len(ks) != 9 {
		t.Fatalf("%d defect kinds, want 9", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render something")
	}
}

func TestEveryDefectMapsToValidFaults(t *testing.T) {
	for _, k := range Kinds() {
		d := Defect{Kind: k}
		fps := d.FaultPrimitives()
		if len(fps) == 0 {
			t.Errorf("%s maps to no fault primitives", d)
			continue
		}
		for _, f := range fps {
			if err := f.Validate(); err != nil {
				t.Errorf("%s: %v", d, err)
			}
		}
		faults, err := d.Faults()
		if err != nil {
			t.Errorf("%s: %v", d, err)
		}
		if len(faults) != len(fps) {
			t.Errorf("%s: %d faults from %d primitives", d, len(faults), len(fps))
		}
	}
	if (Defect{Kind: Kind(99)}).FaultPrimitives() != nil {
		t.Error("unknown kind must map to nil")
	}
	if _, err := (Defect{Kind: Kind(99)}).Faults(); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestMappingClasses(t *testing.T) {
	cases := []struct {
		kind    Kind
		classes map[fp.Class]bool
	}{
		{ShortToVdd, map[fp.Class]bool{fp.SF: true}},
		{ShortToGnd, map[fp.Class]bool{fp.SF: true}},
		{PullUpOpen, map[fp.Class]bool{fp.TF: true, fp.DRF: true}},
		{PullDownOpen, map[fp.Class]bool{fp.TF: true, fp.DRF: true}},
		{AccessOpen, map[fp.Class]bool{fp.RDF: true, fp.DRDF: true, fp.IRF: true}},
		{BridgeAnd, map[fp.Class]bool{fp.CFst: true}},
		{BridgeOr, map[fp.Class]bool{fp.CFst: true}},
		{BitlineCross, map[fp.Class]bool{fp.CFds: true}},
		{RetentionLeak, map[fp.Class]bool{fp.DRF: true}},
	}
	for _, c := range cases {
		got := map[fp.Class]bool{}
		for _, f := range (Defect{Kind: c.kind}).FaultPrimitives() {
			got[f.Class] = true
		}
		for cls := range c.classes {
			if !got[cls] {
				t.Errorf("%s: missing class %v in mapping", c.kind, cls)
			}
		}
		for cls := range got {
			if !c.classes[cls] {
				t.Errorf("%s: unexpected class %v in mapping", c.kind, cls)
			}
		}
	}
}

func TestAllFaultsDeduplicated(t *testing.T) {
	all := AllFaults()
	if len(all) == 0 {
		t.Fatal("empty defect fault list")
	}
	seen := map[string]bool{}
	for _, f := range all {
		if seen[f.ID()] {
			t.Errorf("duplicate %s", f.ID())
		}
		seen[f.ID()] = true
	}
	// PullUpOpen and RetentionLeak share <1t/0/->: the union must be
	// smaller than the sum of parts.
	sum := 0
	for _, k := range Kinds() {
		sum += len((Defect{Kind: k}).FaultPrimitives())
	}
	if len(all) >= sum {
		t.Errorf("AllFaults = %d, expected deduplication below %d", len(all), sum)
	}
}

// Defect coverage of the classic tests matches the DFT folklore: March G
// (with its delay phases) covers every defect class including retention;
// MATS+ misses opens and bridges.
func TestDefectCoverageByClassicTests(t *testing.T) {
	covers := func(m march.Test, d Defect) bool {
		t.Helper()
		faults, err := d.Faults()
		if err != nil {
			t.Fatal(err)
		}
		r := sim.Simulate(m, faults, sim.DefaultConfig())
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		return r.Full()
	}
	// Measured coverage sets (pinned): March G adds the opens and the
	// retention leaks thanks to its writes-back and delay phases but lacks
	// double reads; March SS adds the read disturbances and couplings but
	// has no delays. Together they cover every defect class.
	marchG := map[Kind]bool{
		ShortToVdd: true, ShortToGnd: true, PullUpOpen: true,
		PullDownOpen: true, BridgeAnd: true, BridgeOr: true, RetentionLeak: true,
	}
	marchSS := map[Kind]bool{
		ShortToVdd: true, ShortToGnd: true, AccessOpen: true,
		BridgeAnd: true, BridgeOr: true, BitlineCross: true,
	}
	for _, k := range Kinds() {
		d := Defect{Kind: k}
		if got := covers(march.MarchG, d); got != marchG[k] {
			t.Errorf("March G covers %s = %v, previously measured %v", d, got, marchG[k])
		}
		if got := covers(march.MarchSS, d); got != marchSS[k] {
			t.Errorf("March SS covers %s = %v, previously measured %v", d, got, marchSS[k])
		}
		if !marchG[k] && !marchSS[k] {
			t.Errorf("defect class %s covered by neither reference test", d)
		}
	}
	if covers(march.MATSPlus, Defect{Kind: AccessOpen}) {
		t.Error("MATS+ must not cover the access-open read disturbances")
	}
	if covers(march.MATSPlus, Defect{Kind: RetentionLeak}) {
		t.Error("MATS+ must not cover retention leaks (no delay phases)")
	}
	if !covers(march.MATSPlus, Defect{Kind: ShortToVdd}) {
		t.Error("MATS+ must cover stuck cells")
	}
}

// Generating against the defect-driven fault list yields a certified test.
func TestGenerateForDefectList(t *testing.T) {
	all := AllFaults()
	// The retention faults need delay phases the generator does not emit;
	// exclude them here (March G handles them) and generate for the rest.
	var noRetention []linked.Fault
	for _, f := range all {
		if f.FP1().FP.Class == fp.DRF {
			continue
		}
		noRetention = append(noRetention, f)
	}
	if len(noRetention) == len(all) {
		t.Fatal("expected retention faults in the defect list")
	}
	r := sim.Simulate(march.MarchSS, noRetention, sim.DefaultConfig())
	if !r.Full() {
		t.Errorf("March SS must cover the non-retention defect faults: %s", r.Summary())
	}
}
