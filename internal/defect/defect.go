// Package defect maps electrical defects in an SRAM cell array to the
// functional fault models the rest of the repository works with. The
// mapping follows the classic inductive fault analysis literature the paper
// builds on — Dekker et al. ("A Realistic Fault Model and Test Algorithms
// for Static Random Access Memories", its reference [2]) for shorts, opens
// and bridges, and Al-Ars & van de Goor (references [4][5]) for the
// resistive/dynamic behaviors.
//
// The package answers two questions a DFT engineer asks:
//
//   - which functional faults can this physical defect produce?
//     (Defect.FaultPrimitives)
//   - does this march test cover this defect, i.e. every functional fault
//     it can produce? (Coverage)
package defect

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
)

// Kind is a physical defect class in the cell array.
type Kind uint8

// Defect kinds.
const (
	// ShortToVdd shorts the cell node to the supply: the cell is stuck at
	// 1 (state fault on 0).
	ShortToVdd Kind = iota
	// ShortToGnd shorts the cell node to ground: stuck at 0.
	ShortToGnd
	// PullUpOpen breaks a pull-up: the cell cannot hold 1 reliably and
	// loses it over time (retention fault on 1) and under write stress
	// (transition fault up).
	PullUpOpen
	// PullDownOpen breaks a pull-down: the mirror behaviors on 0.
	PullDownOpen
	// AccessOpen is a resistive open in the pass transistor: reads become
	// weak and destructive or incorrect.
	AccessOpen
	// BridgeAnd is a wired-AND bridge between two cells: each side is
	// pulled down by the other (state coupling towards 0).
	BridgeAnd
	// BridgeOr is a wired-OR bridge between two cells: pulled up by the
	// other (state coupling towards 1).
	BridgeOr
	// BitlineCross is a bitline-to-bitline short: operations on one cell
	// disturb the neighbor sharing the bitline pair (disturb coupling).
	BitlineCross
	// RetentionLeak is a high-impedance leakage path: the cell loses its
	// value after a pause in both polarities.
	RetentionLeak
)

var kindNames = [...]string{
	"ShortToVdd", "ShortToGnd", "PullUpOpen", "PullDownOpen", "AccessOpen",
	"BridgeAnd", "BridgeOr", "BitlineCross", "RetentionLeak",
}

// String returns the defect class name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Kinds lists every defect class.
func Kinds() []Kind {
	out := make([]Kind, len(kindNames))
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Defect is a concrete defect instance.
type Defect struct {
	Kind Kind
}

// String returns the defect name.
func (d Defect) String() string { return d.Kind.String() }

// FaultPrimitives returns the functional fault primitives the defect can
// manifest as, per the published defect-to-fault mapping.
func (d Defect) FaultPrimitives() []fp.FP {
	switch d.Kind {
	case ShortToVdd:
		// Cell cannot hold 0.
		return []fp.FP{fp.MustParseFP("<0/1/->")}
	case ShortToGnd:
		return []fp.FP{fp.MustParseFP("<1/0/->")}
	case PullUpOpen:
		// Up transitions fail and a stored 1 leaks away.
		return []fp.FP{
			fp.MustParseFP("<0w1/0/->"),
			fp.MustParseFP("<1t/0/->"),
		}
	case PullDownOpen:
		return []fp.FP{
			fp.MustParseFP("<1w0/1/->"),
			fp.MustParseFP("<0t/1/->"),
		}
	case AccessOpen:
		// Weak read path: destructive and incorrect reads in both
		// polarities, including the deceptive variants.
		return []fp.FP{
			fp.MustParseFP("<0r0/1/1>"),
			fp.MustParseFP("<1r1/0/0>"),
			fp.MustParseFP("<0r0/1/0>"),
			fp.MustParseFP("<1r1/0/1>"),
			fp.MustParseFP("<0r0/0/1>"),
			fp.MustParseFP("<1r1/1/0>"),
		}
	case BridgeAnd:
		// Either side at 0 pulls the other down.
		return []fp.FP{
			fp.MustParseFP("<0;1/0/->"),
		}
	case BridgeOr:
		return []fp.FP{
			fp.MustParseFP("<1;0/1/->"),
		}
	case BitlineCross:
		// Write and read activity on the aggressor disturbs the victim in
		// both directions.
		return []fp.FP{
			fp.MustParseFP("<0w1;0/1/->"),
			fp.MustParseFP("<0w1;1/0/->"),
			fp.MustParseFP("<1w0;0/1/->"),
			fp.MustParseFP("<1w0;1/0/->"),
			fp.MustParseFP("<0r0;0/1/->"),
			fp.MustParseFP("<0r0;1/0/->"),
			fp.MustParseFP("<1r1;0/1/->"),
			fp.MustParseFP("<1r1;1/0/->"),
		}
	case RetentionLeak:
		return []fp.FP{
			fp.MustParseFP("<0t/1/->"),
			fp.MustParseFP("<1t/0/->"),
		}
	}
	return nil
}

// Faults wraps the defect's fault primitives as simulator targets.
func (d Defect) Faults() ([]linked.Fault, error) {
	fps := d.FaultPrimitives()
	if len(fps) == 0 {
		return nil, fmt.Errorf("defect: unknown kind %v", d.Kind)
	}
	out := make([]linked.Fault, 0, len(fps))
	for _, f := range fps {
		ft, err := linked.NewSimple(f)
		if err != nil {
			return nil, err
		}
		out = append(out, ft)
	}
	return out, nil
}

// AllFaults returns the union of the fault primitives of every defect class
// (deduplicated), i.e. the defect-driven fault list.
func AllFaults() []linked.Fault {
	seen := map[string]bool{}
	var out []linked.Fault
	for _, k := range Kinds() {
		faults, err := (Defect{Kind: k}).Faults()
		if err != nil {
			continue
		}
		for _, f := range faults {
			if seen[f.ID()] {
				continue
			}
			seen[f.ID()] = true
			out = append(out, f)
		}
	}
	return out
}
