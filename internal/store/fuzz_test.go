package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// storeTemplate builds one valid three-record store and returns its
// checkpoint, the data-file bytes, and the checkpoint-file bytes. Each
// fuzz iteration replays a mutated copy of these into a fresh directory.
func storeTemplate(tb testing.TB) (cp Checkpoint, data, cpRaw []byte) {
	tb.Helper()
	dir := tb.TempDir()
	s, err := Open(dir, "fuzz-hash")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(map[string]any{"n": i, "payload": "abcdefghij"})
		if err := s.Append(Record{ID: fmt.Sprintf("u-%d", i), Shard: i, Seq: i, Body: body}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Commit(3); err != nil {
		tb.Fatal(err)
	}
	cp = s.Checkpoint()
	if err := s.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, dataName))
	if err != nil {
		tb.Fatal(err)
	}
	cpRaw, err = os.ReadFile(filepath.Join(dir, checkpointName))
	if err != nil {
		tb.Fatal(err)
	}
	return cp, data, cpRaw
}

// FuzzOpenTornTail drives store recovery with arbitrary damage to the
// data file — truncation at any offset, a byte flip at any offset, and
// appended garbage — and holds Open to its contract: if the committed
// prefix is intact it must recover exactly that prefix (truncating the
// tail); if the committed prefix itself is damaged it must fail with a
// diagnostic error. It must never panic, whatever the bytes.
func FuzzOpenTornTail(f *testing.F) {
	cp, template, cpRaw := storeTemplate(f)

	f.Add(uint16(0), uint16(0), byte(0), []byte(nil))                        // truncate to nothing
	f.Add(uint16(len(template)/2), uint16(0), byte(0), []byte(nil))          // torn mid-record
	f.Add(uint16(len(template)), uint16(5), byte(0xff), []byte(nil))         // flip inside the prefix
	f.Add(uint16(len(template)), uint16(0), byte(0), []byte(`{"id":"t`))     // torn appended tail
	f.Add(uint16(len(template)), uint16(0), byte(0), []byte("\x00\xff\n{]")) // binary garbage tail

	f.Fuzz(func(t *testing.T, truncAt, flipOff uint16, flipMask byte, tail []byte) {
		data := append([]byte(nil), template...)
		if int(truncAt) < len(data) {
			data = data[:truncAt]
		}
		if int(flipOff) < len(data) {
			data[flipOff] ^= flipMask
		}
		data = append(data, tail...)

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, checkpointName), cpRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, dataName), data, 0o644); err != nil {
			t.Fatal(err)
		}

		intact := int64(len(data)) >= cp.Bytes && bytes.Equal(data[:cp.Bytes], template[:cp.Bytes])

		s, err := Open(dir, "fuzz-hash")
		if err != nil {
			if intact {
				t.Fatalf("intact committed prefix rejected: %v", err)
			}
			if err.Error() == "" {
				t.Fatal("damage reported with an empty error")
			}
			return
		}
		defer s.Close()

		recs, rerr := s.Records()
		if intact {
			// The exact committed prefix, bit for bit, and a truncated tail.
			if rerr != nil {
				t.Fatalf("recovered store cannot read its records: %v", rerr)
			}
			if len(recs) != cp.Records {
				t.Fatalf("recovered %d records, checkpoint commits %d", len(recs), cp.Records)
			}
			for i, r := range recs {
				if r.ID != fmt.Sprintf("u-%d", i) || r.Seq != i {
					t.Fatalf("record %d = %+v", i, r)
				}
			}
			st, err := os.Stat(filepath.Join(dir, dataName))
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != cp.Bytes {
				t.Fatalf("tail not truncated: %d bytes on disk, %d committed", st.Size(), cp.Bytes)
			}
			return
		}
		// Damaged prefix that still parsed: Open's acceptance means the
		// structural invariants held — the record count must match the
		// checkpoint (semantic corruption inside record bodies is beyond
		// a checksum-free format, but counts and framing never lie).
		if rerr == nil && len(recs) != cp.Records {
			t.Fatalf("damaged store accepted with %d records against a checkpoint of %d", len(recs), cp.Records)
		}
	})
}
