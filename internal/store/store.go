// Package store is the durable result store of the campaign engine
// (DESIGN.md §9): an append-only JSONL data file plus an index and an
// atomically-replaced checkpoint, all rooted in one directory.
//
// The durability contract is built for SIGKILL-at-any-instant:
//
//   - results.jsonl only ever grows by whole appended lines; it is never
//     rewritten in place.
//   - checkpoint.json names the committed prefix of results.jsonl (byte
//     length, record count, shards) and is replaced atomically (write to a
//     temp file, fsync, rename, fsync the directory). A reader therefore
//     always sees either the previous or the next checkpoint, never a torn
//     one.
//   - Data is fsynced *before* the checkpoint that covers it, so a
//     checkpoint never points past durable bytes.
//   - On Open, anything in results.jsonl beyond the checkpointed length —
//     partial lines or whole uncommitted records from a killed run — is
//     truncated away. The store state after a crash is exactly the last
//     committed prefix, which is what makes resumed campaigns byte-identical
//     to uninterrupted ones.
//
// index.json (record ID → sequence position) is a derived convenience for
// readers; it is rewritten atomically at every commit and rebuilt from the
// data file if missing, so it can never be the source of truth.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"marchgen/internal/iofault"
)

// Data file and metadata names inside a store directory.
const (
	dataName       = "results.jsonl"
	checkpointName = "checkpoint.json"
	indexName      = "index.json"
)

// Record is one unit result: an opaque JSON body addressed by ID, tagged
// with its position in the deterministic shard plan.
type Record struct {
	// ID is the content address of the unit (stable across runs).
	ID string `json:"id"`
	// Shard and Seq locate the record in the plan: Seq is the global unit
	// index, Shard the shard that produced it.
	Shard int `json:"shard"`
	Seq   int `json:"seq"`
	// Body is the unit's result document. It must be deterministic: two
	// runs of the same unit must produce byte-identical bodies.
	Body json.RawMessage `json:"body"`
}

// Checkpoint pins the committed prefix of the data file.
type Checkpoint struct {
	// SpecHash binds the store to one campaign spec; Open refuses to resume
	// a store created for a different spec.
	SpecHash string `json:"spec_hash"`
	// Shards is the number of leading shards committed.
	Shards int `json:"shards_committed"`
	// Records is the number of committed records.
	Records int `json:"records"`
	// Bytes is the committed length of results.jsonl.
	Bytes int64 `json:"bytes"`
}

// ErrSpecMismatch is returned by Open when the directory holds a store for
// a different spec hash: resuming would interleave incompatible results.
var ErrSpecMismatch = errors.New("store: directory belongs to a different spec")

// Store is an open result store. Append and Commit are safe for one writer
// goroutine at a time (the campaign committer); snapshots are safe from any
// goroutine.
type Store struct {
	dir string
	fs  iofault.FS

	mu    sync.Mutex
	f     iofault.File
	cp    Checkpoint
	ids   map[string]int // record ID -> Seq, committed prefix plus pending appends
	extra int64          // appended-but-uncommitted bytes
	recs  int            // appended-but-uncommitted records
}

// Open opens (creating if necessary) the store in dir for the given spec
// hash. An existing store is recovered: the checkpoint is loaded, any
// uncommitted tail of the data file is truncated away, and the index is
// rebuilt from the committed prefix. A directory checkpointed under a
// different spec hash fails with ErrSpecMismatch.
func Open(dir, specHash string) (*Store, error) {
	return OpenFS(dir, specHash, iofault.OS{})
}

// OpenFS is Open with the filesystem made explicit: every mutating I/O
// operation of the store goes through fsys, so an iofault.Injector can
// fail or crash any of them deterministically (the chaos suite sweeps
// them all). A nil fsys means the real filesystem.
func OpenFS(dir, specHash string, fsys iofault.FS) (*Store, error) {
	if fsys == nil {
		fsys = iofault.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, fs: fsys, ids: make(map[string]int)}

	cpPath := filepath.Join(dir, checkpointName)
	raw, err := fsys.ReadFile(cpPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		s.cp = Checkpoint{SpecHash: specHash}
		b, err := json.Marshal(s.cp)
		if err != nil {
			return nil, fmt.Errorf("store: checkpoint: %w", err)
		}
		if err := WriteFileAtomicFS(fsys, cpPath, b); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("store: checkpoint: %w", err)
	default:
		if err := json.Unmarshal(raw, &s.cp); err != nil {
			return nil, fmt.Errorf("store: checkpoint corrupt: %w", err)
		}
		if s.cp.SpecHash != specHash {
			return nil, fmt.Errorf("%w: store has %q, caller wants %q", ErrSpecMismatch, s.cp.SpecHash, specHash)
		}
	}

	f, err := fsys.OpenFile(filepath.Join(dir, dataName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: data: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data: %w", err)
	}
	if st.Size() < s.cp.Bytes {
		f.Close()
		return nil, fmt.Errorf("store: data file is %d bytes but checkpoint commits %d: store corrupt", st.Size(), s.cp.Bytes)
	}
	// Drop whatever a killed run appended past the last checkpoint.
	if st.Size() > s.cp.Bytes {
		if err := f.Truncate(s.cp.Bytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating uncommitted tail: %w", err)
		}
	}
	if _, err := f.Seek(s.cp.Bytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f

	// Rebuild the index from the committed prefix (index.json is derived
	// state; scanning the data file is the authoritative recovery path).
	recs, err := readRecords(dir, s.cp)
	if err != nil {
		f.Close()
		return nil, err
	}
	for _, r := range recs {
		s.ids[r.ID] = r.Seq
	}
	return s, nil
}

// Checkpoint returns the last committed checkpoint.
func (s *Store) Checkpoint() Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp
}

// Has reports whether a record with the given ID has been appended (it may
// not be committed yet).
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.ids[id]
	return ok
}

// Append writes one record as a JSONL line. The record is durable only
// after the next Commit; a crash before that loses it (and Open discards
// the partial tail).
func (s *Store) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: record %s: %w", rec.ID, err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.extra += int64(len(line))
	s.recs++
	s.ids[rec.ID] = rec.Seq
	return nil
}

// Commit makes every record appended so far durable and advances the
// checkpoint to cover shardsCommitted leading shards: fsync the data file,
// rewrite index.json, then atomically replace checkpoint.json. On return
// the committed prefix survives SIGKILL.
func (s *Store) Commit(shardsCommitted int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	next := s.cp
	next.Shards = shardsCommitted
	next.Records += s.recs
	next.Bytes += s.extra
	// Marshal both metadata documents before touching the disk: a marshal
	// failure (impossible for these shapes, but never worth a panic
	// mid-run) must leave the store at its previous checkpoint.
	idx, err := json.Marshal(s.ids)
	if err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	cpb, err := json.Marshal(next)
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := WriteFileAtomicFS(s.fs, filepath.Join(s.dir, indexName), idx); err != nil {
		return err
	}
	if err := WriteFileAtomicFS(s.fs, filepath.Join(s.dir, checkpointName), cpb); err != nil {
		return err
	}
	s.cp = next
	s.extra = 0
	s.recs = 0
	return nil
}

// Records returns the committed records in append order.
func (s *Store) Records() ([]Record, error) {
	return readRecords(s.dir, s.Checkpoint())
}

// Close closes the data file. The store stays recoverable: everything up
// to the last Commit is on disk.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Read loads a store directory read-only: its checkpoint and the committed
// records. Used by reporting (marchcamp report, the marchd campaign API)
// without taking writer ownership.
func Read(dir string) (Checkpoint, []Record, error) {
	cp, err := ReadCheckpoint(dir)
	if err != nil {
		return Checkpoint{}, nil, err
	}
	recs, err := readRecords(dir, cp)
	return cp, recs, err
}

// ReadCheckpoint loads only the checkpoint of a store directory — the
// cheap completeness probe (`marchcamp report` uses it to decide its exit
// code without re-reading the whole result set).
func ReadCheckpoint(dir string) (Checkpoint, error) {
	raw, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if err != nil {
		return Checkpoint{}, fmt.Errorf("store: checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("store: checkpoint corrupt: %w", err)
	}
	return cp, nil
}

// readRecords decodes the committed prefix of the data file.
func readRecords(dir string, cp Checkpoint) ([]Record, error) {
	f, err := os.Open(filepath.Join(dir, dataName))
	if errors.Is(err, os.ErrNotExist) && cp.Bytes == 0 {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: data: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(io.LimitReader(f, cp.Bytes))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("store: record %d corrupt: %w", len(out), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: data: %w", err)
	}
	if len(out) != cp.Records {
		return nil, fmt.Errorf("store: committed prefix holds %d records but checkpoint commits %d", len(out), cp.Records)
	}
	return out, nil
}

// DataPath returns the path of the append-only data file inside a store
// directory (for serving the raw result set over HTTP).
func DataPath(dir string) string { return filepath.Join(dir, dataName) }

// WriteFileAtomic replaces path with data via a same-directory temp file,
// fsyncing the file before the rename and the directory after it.
func WriteFileAtomic(path string, data []byte) error {
	return WriteFileAtomicFS(iofault.OS{}, path, data)
}

// WriteFileAtomicFS is WriteFileAtomic through an explicit filesystem.
// Unlike earlier revisions, a failed directory sync is reported: a
// rename whose durability is unknown must not be treated as committed.
func WriteFileAtomicFS(fsys iofault.FS, path string, data []byte) error {
	if fsys == nil {
		fsys = iofault.OS{}
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: sync %s: %w", dir, err)
	}
	return nil
}
