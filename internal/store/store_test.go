package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func rec(seq, shard int, id string) Record {
	body, _ := json.Marshal(map[string]int{"seq": seq})
	return Record{ID: id, Shard: shard, Seq: seq, Body: body}
}

func TestAppendCommitRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "h1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(rec(i, 0, string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cp, recs, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Shards != 1 || cp.Records != 3 {
		t.Fatalf("checkpoint = %+v", cp)
	}
	if len(recs) != 3 || recs[2].ID != "c" || recs[2].Seq != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestUncommittedTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "h1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(0, 0, "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	// A kill mid-append leaves uncommitted garbage: a whole record plus a
	// torn partial line.
	if err := s.Append(rec(1, 1, "b")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, dataName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"torn","sh`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, "h1")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("recovered records = %+v, want only the committed prefix", recs)
	}
	if s2.Has("b") || s2.Has("torn") {
		t.Fatal("uncommitted records survived recovery")
	}
	st, err := os.Stat(filepath.Join(dir, dataName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != s2.Checkpoint().Bytes {
		t.Fatalf("data file %d bytes, checkpoint %d: tail not truncated", st.Size(), s2.Checkpoint().Bytes)
	}
}

func TestResumeAppendsAfterCommittedPrefix(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, "h1")
	s.Append(rec(0, 0, "a"))
	s.Commit(1)
	s.Close()

	s2, err := Open(dir, "h1")
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has("a") {
		t.Fatal("index not rebuilt on open")
	}
	s2.Append(rec(1, 1, "b"))
	s2.Commit(2)
	s2.Close()

	cp, recs, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Shards != 2 || len(recs) != 2 || recs[1].ID != "b" {
		t.Fatalf("cp=%+v recs=%+v", cp, recs)
	}
}

func TestSpecMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, "h1")
	s.Close()
	if _, err := Open(dir, "h2"); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("Open with wrong hash: err = %v, want ErrSpecMismatch", err)
	}
}

func TestMissingDataBytesIsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, "h1")
	s.Append(rec(0, 0, "a"))
	s.Commit(1)
	s.Close()
	// Simulate data loss under the checkpoint.
	if err := os.Truncate(filepath.Join(dir, dataName), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "h1"); err == nil {
		t.Fatal("Open accepted a data file shorter than the checkpoint")
	}
}
