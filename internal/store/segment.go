package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"marchgen/internal/iofault"
)

// Per-worker segment files (DESIGN.md §13): the distributed campaign fabric
// records every shard a worker reports into segments/<worker>.jsonl inside
// the campaign directory, before the shard is merged into the authoritative
// store. Segments follow the same append-only JSONL discipline as
// results.jsonl, with the same failure model: a coordinator killed
// mid-append leaves at worst one torn trailing line, which ParseSegment
// drops on recovery. Unlike results.jsonl they carry no checkpoint — they
// are an ingest journal, ordered by arrival, not by plan; the merge into
// the committed store is what restores plan order.

// segmentsDirName is the subdirectory of a campaign store that holds the
// per-worker ingest segments.
const segmentsDirName = "segments"

// SegmentsDir returns the segment directory of a campaign store directory.
func SegmentsDir(dir string) string { return filepath.Join(dir, segmentsDirName) }

// SegmentPath returns the segment file of one worker inside a campaign
// store directory. The worker id is coordinator-assigned (w1, w2, ...), so
// it is always a safe file name.
func SegmentPath(dir, worker string) string {
	return filepath.Join(SegmentsDir(dir), worker+".jsonl")
}

// AppendSegmentFS appends records to a segment file as JSONL lines and
// fsyncs before returning: once it succeeds, a kill cannot lose the
// reported shard. The parent directory must exist. Every mutating
// operation goes through fsys so the chaos suite can fault it.
func AppendSegmentFS(fsys iofault.FS, path string, recs []Record) error {
	if fsys == nil {
		fsys = iofault.OS{}
	}
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("store: segment record %s: %w", r.ID, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: segment: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: segment append: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: segment sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: segment: %w", err)
	}
	return nil
}

// ParseSegment decodes a segment file's records, tolerating the one kind
// of damage an append-only file can suffer: a torn tail. Decoding stops at
// the first line that is not a complete record — everything before it is
// returned, everything from it on is dropped (the same truncation
// discipline Open applies to results.jsonl). It never returns an error:
// a completely unreadable segment is simply an empty one.
func ParseSegment(data []byte) []Record {
	var out []Record
	for len(data) > 0 {
		line := data
		rest := []byte(nil)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, rest = data[:i], data[i+1:]
		} else {
			// No terminating newline: a torn tail by definition.
			return out
		}
		data = rest
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return out
		}
		out = append(out, r)
	}
	return out
}

// ReadSegments loads every segment file under a campaign store directory,
// keyed by worker id. A missing segment directory is an empty result, not
// an error — campaigns run single-node never have one.
func ReadSegments(dir string) (map[string][]Record, error) {
	entries, err := os.ReadDir(SegmentsDir(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: segments: %w", err)
	}
	out := make(map[string][]Record)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".jsonl" {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(SegmentsDir(dir), name))
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", name, err)
		}
		out[name[:len(name)-len(".jsonl")]] = ParseSegment(raw)
	}
	return out, nil
}
