package fp

import (
	"fmt"
)

// Role identifies which faulty cell (f-cell) of a fault primitive an
// operation or condition applies to. Following Section 2 of the paper,
// aggressor cells (a-cells) sensitize a fault while victim cells (v-cells)
// show its effect. A single-cell fault primitive has only a victim.
type Role uint8

// Cell roles.
const (
	RoleNone Role = iota // no cell (pure state condition)
	RoleAggressor
	RoleVictim
)

// String returns a short role name.
func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleAggressor:
		return "aggressor"
	case RoleVictim:
		return "victim"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Class is the Functional Fault Model (FFM) a fault primitive belongs to,
// using the standard taxonomy of van de Goor and Al-Ars.
type Class uint8

// Functional fault model classes. The first block is single-cell, the second
// block is two-cell (coupling) faults.
const (
	ClassUnknown Class = iota

	SF   // State Fault:                    <x / x̄ / ->
	TF   // Transition Fault:               <x w x̄ / x / ->
	WDF  // Write Destructive Fault:        <x w x / x̄ / ->
	RDF  // Read Destructive Fault:         <x r x / x̄ / x̄>
	DRDF // Deceptive Read Destructive:     <x r x / x̄ / x>
	IRF  // Incorrect Read Fault:           <x r x / x / x̄>
	DRF  // Data Retention Fault:           <x t / x̄ / ->

	CFst // State Coupling Fault:           <y ; x / x̄ / ->
	CFds // Disturb Coupling Fault:         <x op ; y / ȳ / ->
	CFtr // Transition Coupling Fault:      <y ; x w x̄ / x / ->
	CFwd // Write Destructive Coupling:     <y ; x w x / x̄ / ->
	CFrd // Read Destructive Coupling:      <y ; x r x / x̄ / x̄>
	CFdr // Deceptive Read Destructive CF:  <y ; x r x / x̄ / x>
	CFir // Incorrect Read Coupling Fault:  <y ; x r x / x / x̄>

	// Dynamic fault models (m = 2: two-operation sensitization, the
	// extension of the group's companion paper "Automatic March Tests
	// Generation for Static and Dynamic Faults in SRAMs", ETS 2005).
	DyRDF  // Dynamic Read Destructive:            <x op ry / ȳ / ȳ>
	DyDRDF // Dynamic Deceptive Read Destructive:  <x op ry / ȳ / y>
	DyIRF  // Dynamic Incorrect Read:              <x op ry / y / ȳ>
	DyCFds // Dynamic Disturb Coupling (2-op aggressor sequence)
	DyCFrd // Dynamic Read Destructive Coupling
	DyCFdr // Dynamic Deceptive Read Destructive Coupling
	DyCFir // Dynamic Incorrect Read Coupling
)

var classNames = map[Class]string{
	ClassUnknown: "?",
	SF:           "SF",
	TF:           "TF",
	WDF:          "WDF",
	RDF:          "RDF",
	DRDF:         "DRDF",
	IRF:          "IRF",
	DRF:          "DRF",
	CFst:         "CFst",
	CFds:         "CFds",
	CFtr:         "CFtr",
	CFwd:         "CFwd",
	CFrd:         "CFrd",
	CFdr:         "CFdr",
	CFir:         "CFir",
	DyRDF:        "dRDF",
	DyDRDF:       "dDRDF",
	DyIRF:        "dIRF",
	DyCFds:       "dCFds",
	DyCFrd:       "dCFrd",
	DyCFdr:       "dCFdr",
	DyCFir:       "dCFir",
}

// String returns the conventional FFM abbreviation ("TF", "CFds", ...).
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ParseClass parses a conventional FFM abbreviation.
func ParseClass(s string) (Class, error) {
	for c, name := range classNames {
		if name == s && c != ClassUnknown {
			return c, nil
		}
	}
	return ClassUnknown, fmt.Errorf("fp: unknown fault class %q", s)
}

// IsCoupling reports whether the class involves two cells.
func (c Class) IsCoupling() bool {
	switch c {
	case CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir, DyCFds, DyCFrd, DyCFdr, DyCFir:
		return true
	}
	return false
}

// IsDynamicClass reports whether the class needs a two-operation
// sensitization.
func (c Class) IsDynamicClass() bool {
	switch c {
	case DyRDF, DyDRDF, DyIRF, DyCFds, DyCFrd, DyCFdr, DyCFir:
		return true
	}
	return false
}

// Trigger discriminates how a fault primitive is sensitized.
type Trigger uint8

// Trigger kinds.
const (
	// TrigState marks fault primitives sensitized by the state of the
	// involved cells alone (SF, CFst): the victim cannot hold a value while
	// the condition is satisfied.
	TrigState Trigger = iota
	// TrigOp marks fault primitives sensitized by exactly one memory
	// operation (all other static FFMs).
	TrigOp
)

// FP is a static Fault Primitive <S / F / R> (Definition 3 of the paper)
// involving at most two cells. S is encoded as the required pre-operation
// states of the aggressor and victim cells (AInit, VInit) plus, for
// operation-triggered primitives, the single sensitizing operation Op applied
// to the cell identified by OpRole. F is the value the victim holds after
// sensitization and R the value returned by the sensitizing read operation
// (VX when S contains no read on the victim, rendered '-').
//
// FP is a comparable value type; two FPs are the same fault iff they are ==.
type FP struct {
	// Class is the functional fault model the primitive belongs to. It is
	// descriptive only; the behavioral content is in the remaining fields.
	Class Class

	// Cells is the number of distinct cells involved: 1 (victim only) or
	// 2 (aggressor and victim).
	Cells int

	// AInit is the state the aggressor cell must hold for the fault to be
	// sensitized. VX when Cells == 1 or when the aggressor state is
	// unconstrained.
	AInit Value

	// VInit is the state the victim cell must hold for the fault to be
	// sensitized; VX if unconstrained.
	VInit Value

	// Trigger tells whether the primitive is sensitized by cell state alone
	// (TrigState) or by a single memory operation (TrigOp).
	Trigger Trigger

	// OpRole identifies the cell the sensitizing operation is applied to
	// (RoleVictim for single-cell faults and victim-operation coupling
	// faults, RoleAggressor for disturb-style coupling faults). RoleNone for
	// state-triggered primitives.
	OpRole Role

	// Op is the sensitizing operation. The zero Op for state-triggered
	// primitives. For read operations the Data field records the value the
	// addressed cell holds when the fault is sensitized (equal to VInit or
	// AInit); trigger matching is on the cell state, not on this field.
	Op Op

	// Op2 is the second sensitizing operation of a dynamic (m = 2) fault
	// primitive, applied back-to-back on the same cell as Op. The zero Op
	// for static primitives. Its Data field for reads records the value
	// the cell holds after Op.
	Op2 Op

	// F is the faulty value stored in the victim after sensitization.
	F Value

	// R is the value returned by the last sensitizing read when that read
	// addresses the victim; VX ('-') otherwise.
	R Value
}

// IsDynamic reports whether the primitive needs two sensitizing operations
// (the m = 2 classification of Section 2).
func (f FP) IsDynamic() bool { return !f.Op2.IsZero() }

// lastOp returns the final sensitizing operation (Op2 for dynamic
// primitives).
func (f FP) lastOp() Op {
	if f.IsDynamic() {
		return f.Op2
	}
	return f.Op
}

// Validate checks that the primitive is well-formed: a static primitive has
// at most one sensitizing operation (m = 1, Section 2), a dynamic one has
// exactly two applied to the same cell.
func (f FP) Validate() error {
	if f.Cells != 1 && f.Cells != 2 {
		return fmt.Errorf("fp: %v: Cells must be 1 or 2, got %d", f, f.Cells)
	}
	if !f.F.IsBinary() {
		return fmt.Errorf("fp: %v: fault value F must be binary", f)
	}
	if f.Cells == 1 && f.AInit != VX {
		return fmt.Errorf("fp: %v: single-cell primitive cannot constrain an aggressor state", f)
	}
	switch f.Trigger {
	case TrigState:
		if !f.Op.IsZero() || !f.Op2.IsZero() || f.OpRole != RoleNone {
			return fmt.Errorf("fp: %v: state-triggered primitive cannot carry an operation", f)
		}
		if !f.VInit.IsBinary() {
			return fmt.Errorf("fp: %v: state fault needs a binary victim state", f)
		}
		if f.R != VX {
			return fmt.Errorf("fp: %v: state-triggered primitive cannot specify a read result", f)
		}
		if f.F == f.VInit {
			return fmt.Errorf("fp: %v: state fault must flip the victim", f)
		}
	case TrigOp:
		if f.Op.IsZero() {
			return fmt.Errorf("fp: %v: operation-triggered primitive needs an operation", f)
		}
		switch f.OpRole {
		case RoleVictim:
		case RoleAggressor:
			if f.Cells != 2 {
				return fmt.Errorf("fp: %v: aggressor operation needs two cells", f)
			}
		default:
			return fmt.Errorf("fp: %v: operation-triggered primitive needs an operation role", f)
		}
		if f.IsDynamic() {
			if f.Op.Kind == OpWait || f.Op2.Kind == OpWait {
				return fmt.Errorf("fp: %v: dynamic primitives cannot contain wait operations", f)
			}
			if f.Op2.Kind == OpWrite && !f.Op2.Data.IsBinary() {
				return fmt.Errorf("fp: %v: second write needs a binary value", f)
			}
		}
		last := f.lastOp()
		if f.R != VX && !(last.Kind == OpRead && f.OpRole == RoleVictim) {
			return fmt.Errorf("fp: %v: read result R requires a final sensitizing read on the victim", f)
		}
		if last.Kind == OpRead && f.OpRole == RoleVictim && f.R == VX {
			return fmt.Errorf("fp: %v: final sensitizing read on the victim must specify the read result R", f)
		}
	default:
		return fmt.Errorf("fp: %v: unknown trigger %d", f, f.Trigger)
	}
	return nil
}

// GoodVictimFinal returns the value the victim holds after the sensitizing
// sequence on a fault-free memory (the Gv component of Definition 4),
// assuming the victim starts at VInit. VX if the result is unconstrained
// (victim state unconstrained and untouched).
func (f FP) GoodVictimFinal() Value {
	v := f.VInit
	if f.Trigger == TrigOp && f.OpRole == RoleVictim {
		if f.Op.Kind == OpWrite {
			v = f.Op.Data
		}
		if f.Op2.Kind == OpWrite {
			v = f.Op2.Data
		}
	}
	return v
}

// ChangesState reports whether sensitizing the fault leaves the victim in a
// state different from the fault-free one (i.e. the fault corrupts stored
// data, as opposed to only returning a wrong read value like IRF).
func (f FP) ChangesState() bool {
	g := f.GoodVictimFinal()
	return g.IsBinary() && g != f.F
}

// Misreads reports whether the final sensitizing operation is a read on the
// victim that returns a value different from the fault-free read.
func (f FP) Misreads() bool {
	if f.Trigger != TrigOp || f.OpRole != RoleVictim || f.lastOp().Kind != OpRead {
		return false
	}
	// The fault-free final read returns the fault-free pre-read value: the
	// initial state for static primitives, or the value left by Op for
	// dynamic ones.
	goodRead := f.VInit
	if f.IsDynamic() && f.Op.Kind == OpWrite {
		goodRead = f.Op.Data
	}
	return f.R.IsBinary() && goodRead.IsBinary() && f.R != goodRead
}

// MatchesOp reports whether applying operation op to the cell with role
// opRole sensitizes the primitive, given the current (faulty-machine) states
// of the aggressor and victim cells. For single-cell primitives aState is
// ignored. Read operations match on the cell state: the Data field of op
// (the march test's expected value, which refers to the fault-free machine)
// is deliberately not compared.
func (f FP) MatchesOp(op Op, opRole Role, aState, vState Value) bool {
	if f.Trigger != TrigOp || f.IsDynamic() {
		return false
	}
	if opRole != f.OpRole {
		return false
	}
	if op.Kind != f.Op.Kind {
		return false
	}
	if op.Kind == OpWrite && op.Data != f.Op.Data {
		return false
	}
	if f.Cells == 2 && f.AInit.IsBinary() && aState != f.AInit {
		return false
	}
	if f.VInit.IsBinary() && vState != f.VInit {
		return false
	}
	return true
}

// MatchesFirstOp reports whether applying op to the cell with role opRole
// arms a dynamic primitive: the operation matches Op and the pre-operation
// states satisfy the initial conditions. The primitive fires when the very
// next operation of the stream completes the sequence (MatchesSecondOp).
func (f FP) MatchesFirstOp(op Op, opRole Role, aState, vState Value) bool {
	if f.Trigger != TrigOp || !f.IsDynamic() {
		return false
	}
	if opRole != f.OpRole {
		return false
	}
	if op.Kind != f.Op.Kind {
		return false
	}
	if op.Kind == OpWrite && op.Data != f.Op.Data {
		return false
	}
	if f.Cells == 2 && f.AInit.IsBinary() && aState != f.AInit {
		return false
	}
	if f.VInit.IsBinary() && vState != f.VInit {
		return false
	}
	return true
}

// MatchesSecondOp reports whether an operation applied to the same cell
// with the same role completes an armed dynamic primitive. State conditions
// were established at arming time; only the operation itself is checked
// (reads match regardless of the expected value, which refers to the
// fault-free machine).
func (f FP) MatchesSecondOp(op Op, opRole Role) bool {
	if f.Trigger != TrigOp || !f.IsDynamic() {
		return false
	}
	if opRole != f.OpRole {
		return false
	}
	if op.Kind != f.Op2.Kind {
		return false
	}
	if op.Kind == OpWrite && op.Data != f.Op2.Data {
		return false
	}
	return true
}

// MatchesState reports whether the current cell states sensitize a
// state-triggered primitive (SF, CFst).
func (f FP) MatchesState(aState, vState Value) bool {
	if f.Trigger != TrigState {
		return false
	}
	if f.Cells == 2 && f.AInit.IsBinary() && aState != f.AInit {
		return false
	}
	return f.VInit.IsBinary() && vState == f.VInit
}

// ID returns a stable, human-readable identifier combining the FFM class and
// the FP notation, e.g. "TF<0w1/0/->".
func (f FP) ID() string {
	return f.Class.String() + f.String()
}
