package fp

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{V0, "0"},
		{V1, "1"},
		{VX, "-"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Value(%d).String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueNot(t *testing.T) {
	if V0.Not() != V1 {
		t.Errorf("V0.Not() = %v, want V1", V0.Not())
	}
	if V1.Not() != V0 {
		t.Errorf("V1.Not() = %v, want V0", V1.Not())
	}
	if VX.Not() != VX {
		t.Errorf("VX.Not() = %v, want VX", VX.Not())
	}
}

func TestValueNotInvolution(t *testing.T) {
	for _, v := range []Value{V0, V1, VX} {
		if v.Not().Not() != v {
			t.Errorf("Not is not an involution on %v", v)
		}
	}
}

func TestValueIsBinary(t *testing.T) {
	if !V0.IsBinary() || !V1.IsBinary() {
		t.Error("V0 and V1 must be binary")
	}
	if VX.IsBinary() {
		t.Error("VX must not be binary")
	}
}

func TestValueBit(t *testing.T) {
	if V0.Bit() != 0 {
		t.Errorf("V0.Bit() = %d", V0.Bit())
	}
	if V1.Bit() != 1 {
		t.Errorf("V1.Bit() = %d", V1.Bit())
	}
	defer func() {
		if recover() == nil {
			t.Error("VX.Bit() did not panic")
		}
	}()
	_ = VX.Bit()
}

func TestValueOf(t *testing.T) {
	if ValueOf(0) != V0 {
		t.Error("ValueOf(0) != V0")
	}
	if ValueOf(1) != V1 {
		t.Error("ValueOf(1) != V1")
	}
}

func TestParseValue(t *testing.T) {
	for _, s := range []string{"0", "1", "-"} {
		v, err := ParseValue(s)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip of %q gave %q", s, v.String())
		}
	}
	if _, err := ParseValue("x"); err == nil {
		t.Error("ParseValue(\"x\") should fail")
	}
	if _, err := ParseValue(""); err == nil {
		t.Error("ParseValue(\"\") should fail")
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{W0, "w0"},
		{W1, "w1"},
		{R0, "r0"},
		{R1, "r1"},
		{RX, "r"},
		{Wait, "t"},
		{Op{}, ""},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	valid := []string{"w0", "w1", "r0", "r1", "r", "t"}
	for _, s := range valid {
		op, err := ParseOp(s)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", s, err)
		}
		if op.String() != s {
			t.Errorf("round trip of %q gave %q", s, op.String())
		}
	}
	invalid := []string{"", "w", "w2", "wx", "w-", "x0", "read", "r2", "tt", "W0"}
	for _, s := range invalid {
		if _, err := ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q) should fail", s)
		}
	}
}

func TestParseOpsRoundTrip(t *testing.T) {
	in := "r0,w1,r1,w0,t,r"
	ops, err := ParseOps(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatOps(ops); got != in {
		t.Errorf("FormatOps(ParseOps(%q)) = %q", in, got)
	}
}

func TestParseOpsWhitespaceAndErrors(t *testing.T) {
	ops, err := ParseOps(" r0 , w1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0] != R0 || ops[1] != W1 {
		t.Errorf("ParseOps with spaces gave %v", ops)
	}
	if _, err := ParseOps(""); err == nil {
		t.Error("ParseOps(\"\") should fail")
	}
	if _, err := ParseOps("r0,zz"); err == nil {
		t.Error("ParseOps with bad element should fail")
	}
}

func TestOpIsZero(t *testing.T) {
	if !(Op{}).IsZero() {
		t.Error("zero Op must report IsZero")
	}
	if W0.IsZero() || R1.IsZero() || Wait.IsZero() {
		t.Error("real operations must not report IsZero")
	}
}

// Property: every binary-valued operation round-trips through its notation.
func TestOpRoundTripQuick(t *testing.T) {
	f := func(kind uint8, data uint8) bool {
		op := Op{Kind: OpKind(kind%3 + 1), Data: Value(data % 2)}
		if op.Kind == OpWait {
			op.Data = VX
		}
		parsed, err := ParseOp(op.String())
		return err == nil && parsed == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
