package fp

import (
	"testing"
)

func TestCatalogCounts(t *testing.T) {
	cases := []struct {
		name string
		fps  []FP
		want int
	}{
		{"SF", SFs, 2},
		{"TF", TFs, 2},
		{"WDF", WDFs, 2},
		{"RDF", RDFs, 2},
		{"DRDF", DRDFs, 2},
		{"IRF", IRFs, 2},
		{"DRF", DRFs, 2},
		{"CFst", CFsts, 4},
		{"CFds", CFdss, 12},
		{"CFtr", CFtrs, 4},
		{"CFwd", CFwds, 4},
		{"CFrd", CFrds, 4},
		{"CFdr", CFdrs, 4},
		{"CFir", CFirs, 4},
	}
	for _, c := range cases {
		if len(c.fps) != c.want {
			t.Errorf("%s catalog has %d entries, want %d", c.name, len(c.fps), c.want)
		}
	}
	if got := len(AllSingleCellStatic()); got != 12 {
		t.Errorf("AllSingleCellStatic has %d entries, want 12", got)
	}
	if got := len(AllTwoCellStatic()); got != 36 {
		t.Errorf("AllTwoCellStatic has %d entries, want 36", got)
	}
	if got := len(AllStatic()); got != 48 {
		t.Errorf("AllStatic has %d entries, want 48", got)
	}
}

func TestCatalogUnique(t *testing.T) {
	seen := make(map[FP]string)
	for _, f := range append(AllStatic(), DRFs...) {
		if prev, dup := seen[f]; dup {
			t.Errorf("duplicate catalog entry %v (also %s)", f, prev)
		}
		seen[f] = f.ID()
	}
}

func TestCatalogClassesConsistent(t *testing.T) {
	for _, c := range Classes() {
		for _, f := range ByClass(c) {
			if f.Class != c {
				t.Errorf("ByClass(%v) contains %v with class %v", c, f, f.Class)
			}
			if got := Classify(f); got != c {
				t.Errorf("Classify(%v) = %v, want %v", f, got, c)
			}
		}
	}
	if ByClass(ClassUnknown) != nil {
		t.Error("ByClass(ClassUnknown) should be nil")
	}
}

func TestCatalogCellCounts(t *testing.T) {
	for _, f := range AllSingleCellStatic() {
		if f.Cells != 1 {
			t.Errorf("%v in single-cell catalog has Cells=%d", f, f.Cells)
		}
	}
	for _, f := range AllTwoCellStatic() {
		if f.Cells != 2 {
			t.Errorf("%v in two-cell catalog has Cells=%d", f, f.Cells)
		}
	}
}

func TestByClassReturnsCopy(t *testing.T) {
	a := ByClass(TF)
	a[0].F = a[0].F.Not()
	b := ByClass(TF)
	if a[0] == b[0] {
		t.Error("ByClass must return a copy, not the backing catalog slice")
	}
}

// Every victim-flip catalog entry has F complementary to the fault-free
// final value, and every pure-misread entry preserves it.
func TestCatalogFaultValueConsistency(t *testing.T) {
	for _, f := range AllStatic() {
		good := f.GoodVictimFinal()
		if !good.IsBinary() {
			t.Errorf("%v: catalog entries must pin the fault-free final value", f)
			continue
		}
		if f.Class == IRF || f.Class == CFir {
			if f.F != good {
				t.Errorf("%v: incorrect-read fault must preserve the stored value", f)
			}
		} else if f.F != good.Not() {
			t.Errorf("%v: F=%v but fault-free final is %v; static catalog faults flip the victim", f, f.F, good)
		}
	}
}
