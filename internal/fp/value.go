// Package fp implements the Fault Primitive (FP) notation of van de Goor and
// Al-Ars ("Functional Memory Faults: A Formal Notation and a Taxonomy", VTS
// 2000), as adopted by Benso et al. (DATE 2006, Definitions 1-3) to describe
// the faulty behaviors an SRAM march test must detect.
//
// The package provides:
//
//   - the memory value alphabet C = {0, 1, -} (Definition 1),
//   - the memory operation alphabet X = {w0, w1, r, t} (Definition 2),
//   - the fault primitive <S / F / R> (Definition 3) for static faults
//     involving one or two cells,
//   - a parser and printer for the textual FP notation, and
//   - the catalog of standard static functional fault models (SF, TF, WDF,
//     RDF, DRDF, IRF, DRF, CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir).
package fp

import (
	"fmt"
	"strings"
)

// Value is an element of the memory state alphabet C = {0, 1, -}
// (Definition 1 of the paper). X denotes the don't-care value '-'.
type Value uint8

// Memory values.
const (
	V0 Value = iota // logic 0
	V1              // logic 1
	VX              // don't care / unspecified ('-')
)

// String returns the single-character notation used by the paper: "0", "1"
// or "-".
func (v Value) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	case VX:
		return "-"
	default:
		return fmt.Sprintf("Value(%d)", uint8(v))
	}
}

// Not returns the complement of a binary value. The complement of the
// don't-care value is the don't-care value.
func (v Value) Not() Value {
	switch v {
	case V0:
		return V1
	case V1:
		return V0
	default:
		return VX
	}
}

// IsBinary reports whether v is a concrete logic value (0 or 1).
func (v Value) IsBinary() bool { return v == V0 || v == V1 }

// Bit returns the value as 0 or 1. It panics if v is not binary; callers must
// check IsBinary first when the value may be unspecified.
func (v Value) Bit() uint8 {
	switch v {
	case V0:
		return 0
	case V1:
		return 1
	}
	panic("fp: Bit called on non-binary value " + v.String())
}

// ValueOf converts a bit (0 or 1) to a Value.
func ValueOf(bit uint8) Value {
	if bit == 0 {
		return V0
	}
	return V1
}

// ParseValue parses "0", "1" or "-" into a Value.
func ParseValue(s string) (Value, error) {
	switch s {
	case "0":
		return V0, nil
	case "1":
		return V1, nil
	case "-":
		return VX, nil
	}
	return VX, fmt.Errorf("fp: invalid memory value %q (want 0, 1 or -)", s)
}

// OpKind discriminates the members of the operation alphabet X
// (Definition 2 of the paper).
type OpKind uint8

// Operation kinds.
const (
	OpNone  OpKind = iota // absence of an operation (pure state condition)
	OpWrite               // wd: write the value d
	OpRead                // rd: read, optionally with an expected value d
	OpWait                // t: wait for a defined period (data retention)
)

// String returns a human-readable kind name.
func (k OpKind) String() string {
	switch k {
	case OpNone:
		return "none"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpWait:
		return "wait"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is a memory operation, an element of the alphabet
// X = {w0, w1, r0, r1, r, t} (Definition 2). For a write, Data is the value
// written. For a read, Data is the value the fault-free memory is expected to
// return; it may be VX when the expectation is unspecified. For a wait, Data
// is ignored.
type Op struct {
	Kind OpKind
	Data Value
}

// Convenience constructors for the operation alphabet.
var (
	W0   = Op{Kind: OpWrite, Data: V0} // write 0
	W1   = Op{Kind: OpWrite, Data: V1} // write 1
	R0   = Op{Kind: OpRead, Data: V0}  // read, expect 0
	R1   = Op{Kind: OpRead, Data: V1}  // read, expect 1
	RX   = Op{Kind: OpRead, Data: VX}  // read, no expectation
	Wait = Op{Kind: OpWait, Data: VX}  // wait (data retention)
)

// W returns a write operation of value v.
func W(v Value) Op { return Op{Kind: OpWrite, Data: v} }

// R returns a read operation expecting value v.
func R(v Value) Op { return Op{Kind: OpRead, Data: v} }

// IsZero reports whether the operation is the zero Op (no operation).
func (o Op) IsZero() bool { return o.Kind == OpNone }

// String renders the operation in the paper's notation: "w0", "w1", "r0",
// "r1", "r" (read without expectation) or "t".
func (o Op) String() string {
	switch o.Kind {
	case OpNone:
		return ""
	case OpWrite:
		return "w" + o.Data.String()
	case OpRead:
		if o.Data == VX {
			return "r"
		}
		return "r" + o.Data.String()
	case OpWait:
		return "t"
	default:
		return fmt.Sprintf("Op(%d,%s)", uint8(o.Kind), o.Data)
	}
}

// ParseOp parses an operation in the paper's notation ("w0", "w1", "r0",
// "r1", "r", "t").
func ParseOp(s string) (Op, error) {
	switch {
	case s == "t":
		return Wait, nil
	case s == "r":
		return RX, nil
	case len(s) == 2 && (s[0] == 'w' || s[0] == 'r'):
		v, err := ParseValue(s[1:])
		if err != nil {
			return Op{}, fmt.Errorf("fp: invalid operation %q: %v", s, err)
		}
		if s[0] == 'w' {
			if !v.IsBinary() {
				return Op{}, fmt.Errorf("fp: invalid operation %q: write needs a binary value", s)
			}
			return W(v), nil
		}
		return R(v), nil
	}
	return Op{}, fmt.Errorf("fp: invalid operation %q (want w0, w1, r0, r1, r or t)", s)
}

// ParseOps parses a comma-separated list of operations, e.g. "r0,w1,r1".
func ParseOps(s string) ([]Op, error) {
	parts := strings.Split(s, ",")
	ops := make([]Op, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		op, err := ParseOp(p)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("fp: empty operation list %q", s)
	}
	return ops, nil
}

// FormatOps renders a list of operations separated by commas.
func FormatOps(ops []Op) string {
	var b strings.Builder
	for i, op := range ops {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(op.String())
	}
	return b.String()
}
