package fp

import (
	"testing"
)

func TestCatalogValidates(t *testing.T) {
	for _, f := range append(AllStatic(), DRFs...) {
		if err := f.Validate(); err != nil {
			t.Errorf("catalog entry %v invalid: %v", f, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	tf := MustParseFP("<0w1/0/->")
	cases := []struct {
		name string
		mut  func(FP) FP
	}{
		{"bad cells", func(f FP) FP { f.Cells = 3; return f }},
		{"zero cells", func(f FP) FP { f.Cells = 0; return f }},
		{"non-binary F", func(f FP) FP { f.F = VX; return f }},
		{"single-cell with AInit", func(f FP) FP { f.AInit = V1; return f }},
		{"op trigger without op", func(f FP) FP { f.Op = Op{}; return f }},
		{"op trigger without role", func(f FP) FP { f.OpRole = RoleNone; return f }},
		{"aggressor op on one cell", func(f FP) FP { f.OpRole = RoleAggressor; return f }},
		{"R on a write", func(f FP) FP { f.R = V1; return f }},
	}
	for _, c := range cases {
		if err := c.mut(tf).Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed FP", c.name)
		}
	}

	sf := MustParseFP("<0/1/->")
	if f := sf; func() error { f.Op = W1; return f.Validate() }() == nil {
		t.Error("state trigger with an operation must be rejected")
	}
	if f := sf; func() error { f.VInit = VX; return f.Validate() }() == nil {
		t.Error("state fault without a victim state must be rejected")
	}
	if f := sf; func() error { f.R = V1; return f.Validate() }() == nil {
		t.Error("state fault with a read result must be rejected")
	}
}

func TestGoodVictimFinal(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"<0w1/0/->", V1},   // TF: good machine ends at 1
		{"<1w0/1/->", V0},   // TF down
		{"<0w0/1/->", V0},   // WDF: good machine keeps 0
		{"<0r0/1/1>", V0},   // RDF: read does not change the good machine
		{"<0/1/->", V0},     // SF: good machine holds the state
		{"<0w1;0/1/->", V0}, // CFds: aggressor op leaves victim at 0
		{"<1;0w1/0/->", V1}, // CFtr: good machine writes 1
	}
	for _, c := range cases {
		f := MustParseFP(c.in)
		if got := f.GoodVictimFinal(); got != c.want {
			t.Errorf("%s: GoodVictimFinal = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestChangesState(t *testing.T) {
	changes := []string{"<0w1/0/->", "<0w0/1/->", "<0r0/1/1>", "<0r0/1/0>", "<0/1/->", "<0w1;0/1/->", "<0;0/1/->"}
	for _, s := range changes {
		if !MustParseFP(s).ChangesState() {
			t.Errorf("%s should change state", s)
		}
	}
	keeps := []string{"<0r0/0/1>", "<1r1/1/0>", "<0;0r0/0/1>"}
	for _, s := range keeps {
		if MustParseFP(s).ChangesState() {
			t.Errorf("%s should not change state", s)
		}
	}
}

func TestMisreads(t *testing.T) {
	misread := []string{"<0r0/1/1>", "<0r0/0/1>", "<1;1r1/0/0>", "<0;0r0/0/1>"}
	for _, s := range misread {
		if !MustParseFP(s).Misreads() {
			t.Errorf("%s should misread", s)
		}
	}
	// A deceptive read destructive fault returns the correct (old) value: the
	// sensitizing read itself is not detected.
	honest := []string{"<0r0/1/0>", "<1r1/0/1>", "<0w1/0/->", "<0/1/->", "<0w1;0/1/->"}
	for _, s := range honest {
		if MustParseFP(s).Misreads() {
			t.Errorf("%s should not misread", s)
		}
	}
}

func TestMatchesOpSingleCell(t *testing.T) {
	tf := MustParseFP("<0w1/0/->") // TF up
	if !tf.MatchesOp(W1, RoleVictim, VX, V0) {
		t.Error("TF up must match w1 on a cell holding 0")
	}
	if tf.MatchesOp(W1, RoleVictim, VX, V1) {
		t.Error("TF up must not match when the cell holds 1")
	}
	if tf.MatchesOp(W0, RoleVictim, VX, V0) {
		t.Error("TF up must not match w0")
	}
	if tf.MatchesOp(W1, RoleAggressor, VX, V0) {
		t.Error("TF up must not match an aggressor operation")
	}

	rdf := MustParseFP("<1r1/0/0>")
	// March reads carry the good-machine expectation; matching is on the
	// faulty cell state, so a read expecting 0 still sensitizes an RDF on a
	// faulty cell holding 1.
	if !rdf.MatchesOp(R0, RoleVictim, VX, V1) {
		t.Error("RDF1 must match any read on a cell holding 1")
	}
	if !rdf.MatchesOp(R1, RoleVictim, VX, V1) {
		t.Error("RDF1 must match r1 on a cell holding 1")
	}
	if rdf.MatchesOp(R1, RoleVictim, VX, V0) {
		t.Error("RDF1 must not match when the cell holds 0")
	}
}

func TestMatchesOpCoupling(t *testing.T) {
	cfds := MustParseFP("<0w1;0/1/->")
	if !cfds.MatchesOp(W1, RoleAggressor, V0, V0) {
		t.Error("CFds must match w1 on aggressor holding 0 with victim 0")
	}
	if cfds.MatchesOp(W1, RoleAggressor, V1, V0) {
		t.Error("CFds must not match when aggressor holds 1")
	}
	if cfds.MatchesOp(W1, RoleAggressor, V0, V1) {
		t.Error("CFds must not match when victim holds 1")
	}
	if cfds.MatchesOp(W1, RoleVictim, V0, V0) {
		t.Error("CFds must not match a victim operation")
	}

	cftr := MustParseFP("<1;0w1/0/->")
	if !cftr.MatchesOp(W1, RoleVictim, V1, V0) {
		t.Error("CFtr must match w1 on victim with aggressor 1")
	}
	if cftr.MatchesOp(W1, RoleVictim, V0, V0) {
		t.Error("CFtr must not match with aggressor 0")
	}
}

func TestMatchesOpNeverForStateTrigger(t *testing.T) {
	sf := MustParseFP("<0/1/->")
	for _, op := range []Op{W0, W1, R0, R1, Wait} {
		if sf.MatchesOp(op, RoleVictim, VX, V0) {
			t.Errorf("state fault must not match operation %v", op)
		}
	}
}

func TestMatchesState(t *testing.T) {
	sf := MustParseFP("<1/0/->")
	if !sf.MatchesState(VX, V1) {
		t.Error("SF1 must match a cell holding 1")
	}
	if sf.MatchesState(VX, V0) {
		t.Error("SF1 must not match a cell holding 0")
	}

	cfst := MustParseFP("<1;0/1/->")
	if !cfst.MatchesState(V1, V0) {
		t.Error("CFst must match aggressor 1, victim 0")
	}
	if cfst.MatchesState(V0, V0) {
		t.Error("CFst must not match aggressor 0")
	}
	if cfst.MatchesState(V1, V1) {
		t.Error("CFst must not match victim 1")
	}

	tf := MustParseFP("<0w1/0/->")
	if tf.MatchesState(VX, V0) {
		t.Error("operation-triggered FP must not match on state alone")
	}
}

func TestMatchesOpWait(t *testing.T) {
	drf := MustParseFP("<1t/0/->")
	if !drf.MatchesOp(Wait, RoleVictim, VX, V1) {
		t.Error("DRF must match a wait on a cell holding 1")
	}
	if drf.MatchesOp(Wait, RoleVictim, VX, V0) {
		t.Error("DRF1 must not match a cell holding 0")
	}
}

func TestFPID(t *testing.T) {
	f := MustParseFP("<0w1/0/->")
	if got, want := f.ID(), "TF<0w1/0/->"; got != want {
		t.Errorf("ID = %q, want %q", got, want)
	}
}

func TestRoleString(t *testing.T) {
	if RoleAggressor.String() != "aggressor" || RoleVictim.String() != "victim" || RoleNone.String() != "none" {
		t.Error("unexpected role names")
	}
}
