package fp

import (
	"testing"
)

// FuzzParseFP checks the parser never panics and that everything it accepts
// survives a String/Parse round trip.
func FuzzParseFP(f *testing.F) {
	for _, seed := range []string{
		"<0w1/0/->", "<1r1/0/0>", "<0;1/0/->", "<0w1;0/1/->", "<0w1r1/0/0>",
		"<0;0w0r0/1/1>", "<1t/0/->", "<-/1/->", "<>", "garbage", "<0w1;1w0/0/->",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		parsed, err := ParseFP(s)
		if err != nil {
			return
		}
		if err := parsed.Validate(); err != nil {
			t.Fatalf("ParseFP(%q) accepted an invalid primitive: %v", s, err)
		}
		back, err := ParseFP(parsed.String())
		if err != nil {
			t.Fatalf("rendered form %q of %q does not re-parse: %v", parsed.String(), s, err)
		}
		if back != parsed {
			t.Fatalf("round trip of %q changed %v to %v", s, parsed, back)
		}
	})
}

// FuzzParseOps checks the operation list parser.
func FuzzParseOps(f *testing.F) {
	for _, seed := range []string{"r0,w1,r1", "t", "w0", "r", "x,y", ",,", "r0,,w1"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ops, err := ParseOps(s)
		if err != nil {
			return
		}
		back, err := ParseOps(FormatOps(ops))
		if err != nil {
			t.Fatalf("rendered ops %q do not re-parse: %v", FormatOps(ops), err)
		}
		if len(back) != len(ops) {
			t.Fatalf("round trip changed op count")
		}
		for i := range ops {
			if back[i] != ops[i] {
				t.Fatalf("round trip changed op %d", i)
			}
		}
	})
}
