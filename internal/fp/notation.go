package fp

import (
	"fmt"
	"strings"
)

// String renders the primitive in the paper's <S/F/R> notation, e.g.
// "<0w1/0/->" for a transition fault or "<1;0w0/1/->" for a write destructive
// coupling fault. The aggressor part appears first, separated from the victim
// part by ';', exactly as in Definition 3.
func (f FP) String() string {
	var b strings.Builder
	b.WriteByte('<')
	if f.Cells == 2 {
		b.WriteString(f.AInit.String())
		if f.Trigger == TrigOp && f.OpRole == RoleAggressor {
			b.WriteString(f.Op.String())
			b.WriteString(f.Op2.String())
		}
		b.WriteByte(';')
	}
	b.WriteString(f.VInit.String())
	if f.Trigger == TrigOp && f.OpRole == RoleVictim {
		b.WriteString(f.Op.String())
		b.WriteString(f.Op2.String())
	}
	b.WriteByte('/')
	b.WriteString(f.F.String())
	b.WriteByte('/')
	b.WriteString(f.R.String())
	b.WriteByte('>')
	return b.String()
}

// sensPart is one parsed component of the sensitizing sequence S: a state
// condition plus up to two operations ("0w1" static, "0w1r1" dynamic).
type sensPart struct {
	init Value
	ops  []Op
}

// tokenizeOps splits a concatenated operation string ("w1r1", "r0r0", "t")
// into operations.
func tokenizeOps(s string) ([]Op, error) {
	var ops []Op
	for i := 0; i < len(s); {
		switch s[i] {
		case 't':
			ops = append(ops, Wait)
			i++
		case 'w':
			if i+1 >= len(s) {
				return nil, fmt.Errorf("fp: write without a value in %q", s)
			}
			v, err := ParseValue(s[i+1 : i+2])
			if err != nil || !v.IsBinary() {
				return nil, fmt.Errorf("fp: bad write value in %q", s)
			}
			ops = append(ops, W(v))
			i += 2
		case 'r':
			if i+1 < len(s) && (s[i+1] == '0' || s[i+1] == '1') {
				v, _ := ParseValue(s[i+1 : i+2])
				ops = append(ops, R(v))
				i += 2
			} else {
				ops = append(ops, RX)
				i++
			}
		default:
			return nil, fmt.Errorf("fp: bad operation character %q in %q", s[i], s)
		}
	}
	return ops, nil
}

func parseSensPart(s string) (sensPart, error) {
	p := sensPart{init: VX}
	if s == "" {
		return p, fmt.Errorf("fp: empty sensitizing component")
	}
	rest := s
	switch s[0] {
	case '0', '1', '-':
		v, _ := ParseValue(s[:1])
		p.init = v
		rest = s[1:]
	}
	if rest != "" {
		ops, err := tokenizeOps(rest)
		if err != nil {
			return p, fmt.Errorf("fp: bad sensitizing component %q: %v", s, err)
		}
		if len(ops) > 2 {
			return p, fmt.Errorf("fp: sensitizing component %q has %d operations; at most two (dynamic) are supported", s, len(ops))
		}
		p.ops = ops
	}
	return p, nil
}

// ParseFP parses the <S/F/R> notation of Definition 3 into an FP. Accepted
// forms include "<0/1/->" (state fault), "<0w1/0/->" (transition fault),
// "<1r1/0/0>" (read destructive fault), "<0w1;0/1/->" (disturb coupling) and
// "<1;0w0/1/->" (write destructive coupling). The FFM class is inferred from
// the structure.
func ParseFP(s string) (FP, error) {
	t := strings.TrimSpace(s)
	if len(t) < 2 || t[0] != '<' || t[len(t)-1] != '>' {
		return FP{}, fmt.Errorf("fp: fault primitive %q must be enclosed in <>", s)
	}
	t = t[1 : len(t)-1]
	fields := strings.Split(t, "/")
	if len(fields) != 3 {
		return FP{}, fmt.Errorf("fp: fault primitive %q must have the form <S/F/R>", s)
	}
	sens, fStr, rStr := strings.TrimSpace(fields[0]), strings.TrimSpace(fields[1]), strings.TrimSpace(fields[2])

	fVal, err := ParseValue(fStr)
	if err != nil {
		return FP{}, fmt.Errorf("fp: %q: bad fault value: %v", s, err)
	}
	rVal, err := ParseValue(rStr)
	if err != nil {
		return FP{}, fmt.Errorf("fp: %q: bad read result: %v", s, err)
	}

	parts := strings.Split(sens, ";")
	var f FP
	f.F = fVal
	f.R = rVal
	setOps := func(ops []Op, init Value, role Role) {
		f.Trigger = TrigOp
		f.OpRole = role
		norm := normalizeSensOps(ops, init)
		f.Op = norm[0]
		if len(norm) == 2 {
			f.Op2 = norm[1]
		}
	}
	switch len(parts) {
	case 1:
		v, err := parseSensPart(strings.TrimSpace(parts[0]))
		if err != nil {
			return FP{}, fmt.Errorf("fp: %q: %v", s, err)
		}
		f.Cells = 1
		f.AInit = VX
		f.VInit = v.init
		if len(v.ops) == 0 {
			f.Trigger = TrigState
			f.OpRole = RoleNone
		} else {
			setOps(v.ops, v.init, RoleVictim)
		}
	case 2:
		a, err := parseSensPart(strings.TrimSpace(parts[0]))
		if err != nil {
			return FP{}, fmt.Errorf("fp: %q: aggressor: %v", s, err)
		}
		v, err := parseSensPart(strings.TrimSpace(parts[1]))
		if err != nil {
			return FP{}, fmt.Errorf("fp: %q: victim: %v", s, err)
		}
		if len(a.ops) > 0 && len(v.ops) > 0 {
			return FP{}, fmt.Errorf("fp: %q: the sensitizing operations must address a single cell", s)
		}
		f.Cells = 2
		f.AInit = a.init
		f.VInit = v.init
		switch {
		case len(a.ops) > 0:
			setOps(a.ops, a.init, RoleAggressor)
		case len(v.ops) > 0:
			setOps(v.ops, v.init, RoleVictim)
		default:
			f.Trigger = TrigState
			f.OpRole = RoleNone
		}
	default:
		return FP{}, fmt.Errorf("fp: %q: at most two cells (one ';') are supported", s)
	}
	f.Class = Classify(f)
	if err := f.Validate(); err != nil {
		return FP{}, err
	}
	return f, nil
}

// normalizeSensOps canonicalizes a sensitizing operation sequence: a read in
// S always reads the current cell value, so its Data field is pinned to the
// value the addressed cell holds at that point of the sequence.
func normalizeSensOps(ops []Op, init Value) []Op {
	out := make([]Op, len(ops))
	cur := init
	for i, op := range ops {
		if op.Kind == OpRead {
			op.Data = cur
		}
		if op.Kind == OpWrite {
			cur = op.Data
		}
		out[i] = op
	}
	return out
}

// MustParseFP is like ParseFP but panics on error. It is intended for
// package-level fault catalogs and tests.
func MustParseFP(s string) FP {
	f, err := ParseFP(s)
	if err != nil {
		panic(err)
	}
	return f
}

// Classify infers the functional fault model class of a primitive from its
// structure, per the standard taxonomy. Dynamic primitives whose sequence
// does not end in a read (outside the published realistic dynamic models)
// classify as ClassUnknown but remain usable.
func Classify(f FP) Class {
	if f.IsDynamic() {
		return classifyDynamic(f)
	}
	if f.Cells == 1 {
		switch f.Trigger {
		case TrigState:
			return SF
		case TrigOp:
			switch f.Op.Kind {
			case OpWait:
				return DRF
			case OpWrite:
				if f.Op.Data != f.VInit {
					return TF
				}
				return WDF
			case OpRead:
				if f.F != f.VInit { // victim flips
					if f.R == f.F {
						return RDF
					}
					return DRDF
				}
				return IRF
			}
		}
		return ClassUnknown
	}
	switch f.Trigger {
	case TrigState:
		return CFst
	case TrigOp:
		if f.OpRole == RoleAggressor {
			return CFds
		}
		switch f.Op.Kind {
		case OpWrite:
			if f.Op.Data != f.VInit {
				return CFtr
			}
			return CFwd
		case OpRead:
			if f.F != f.VInit {
				if f.R == f.F {
					return CFrd
				}
				return CFdr
			}
			return CFir
		}
	}
	return ClassUnknown
}

func classifyDynamic(f FP) Class {
	if f.Trigger != TrigOp {
		return ClassUnknown
	}
	if f.OpRole == RoleAggressor {
		return DyCFds
	}
	if f.Op2.Kind != OpRead {
		return ClassUnknown
	}
	good := f.GoodVictimFinal()
	flips := good.IsBinary() && f.F != good
	if f.Cells == 1 {
		if flips {
			if f.R == f.F {
				return DyRDF
			}
			return DyDRDF
		}
		return DyIRF
	}
	if flips {
		if f.R == f.F {
			return DyCFrd
		}
		return DyCFdr
	}
	return DyCFir
}
