package fp

import (
	"testing"
)

func TestDynamicCatalogCounts(t *testing.T) {
	cases := []struct {
		name string
		fps  []FP
		want int
	}{
		{"dRDF", DyRDFs, 6},
		{"dDRDF", DyDRDFs, 6},
		{"dIRF", DyIRFs, 6},
		{"dCFds", DyCFdss, 12},
		{"dCFrd", DyCFrds, 12},
		{"dCFdr", DyCFdrs, 12},
		{"dCFir", DyCFirs, 12},
	}
	for _, c := range cases {
		if len(c.fps) != c.want {
			t.Errorf("%s: %d entries, want %d", c.name, len(c.fps), c.want)
		}
	}
	if got := len(AllSingleCellDynamic()); got != 18 {
		t.Errorf("AllSingleCellDynamic = %d, want 18", got)
	}
	if got := len(AllTwoCellDynamic()); got != 48 {
		t.Errorf("AllTwoCellDynamic = %d, want 48", got)
	}
	if got := len(AllDynamic()); got != 66 {
		t.Errorf("AllDynamic = %d, want 66", got)
	}
}

func TestDynamicCatalogValidatesAndClassifies(t *testing.T) {
	for _, f := range AllDynamic() {
		if err := f.Validate(); err != nil {
			t.Errorf("%v: %v", f, err)
		}
		if !f.IsDynamic() {
			t.Errorf("%v: not dynamic", f)
		}
		if got := Classify(f); got != f.Class || !got.IsDynamicClass() {
			t.Errorf("%v: Classify = %v (class %v)", f, got, f.Class)
		}
	}
}

func TestDynamicParseAndRoundTrip(t *testing.T) {
	f, err := ParseFP("<0w1r1/0/0>")
	if err != nil {
		t.Fatal(err)
	}
	if f.Class != DyRDF {
		t.Errorf("class = %v, want dRDF", f.Class)
	}
	if f.Op != W1 || f.Op2 != R1 {
		t.Errorf("ops = %v, %v", f.Op, f.Op2)
	}
	if f.GoodVictimFinal() != V1 {
		t.Errorf("good final = %v", f.GoodVictimFinal())
	}
	for _, fp := range AllDynamic() {
		parsed, err := ParseFP(fp.String())
		if err != nil {
			t.Errorf("ParseFP(%q): %v", fp.String(), err)
			continue
		}
		if parsed != fp {
			t.Errorf("round trip of %v gave %v", fp, parsed)
		}
	}
}

func TestDynamicParseErrors(t *testing.T) {
	bad := []string{
		"<0w1r1w0/0/->",   // three operations
		"<0w1r1;1w0/0/->", // operations on both cells
		"<0w1t/0/->",      // wait inside a dynamic sequence
		"<0w1r1/0/->",     // final read without R
	}
	for _, s := range bad {
		if f, err := ParseFP(s); err == nil {
			t.Errorf("ParseFP(%q) = %v, want error", s, f)
		}
	}
}

func TestDynamicClassification(t *testing.T) {
	cases := []struct {
		in   string
		want Class
	}{
		{"<0w1r1/0/0>", DyRDF},
		{"<0w1r1/0/1>", DyDRDF},
		{"<0w1r1/1/0>", DyIRF},
		{"<0r0r0/1/1>", DyRDF},
		{"<1r1r1/0/1>", DyDRDF},
		{"<0w1r1;0/1/->", DyCFds},
		{"<0;1w0r0/1/1>", DyCFrd},
		{"<1;0r0r0/1/0>", DyCFdr},
		{"<0;1w1r1/1/0>", DyCFir},
	}
	for _, c := range cases {
		f, err := ParseFP(c.in)
		if err != nil {
			t.Errorf("ParseFP(%q): %v", c.in, err)
			continue
		}
		if f.Class != c.want {
			t.Errorf("ParseFP(%q).Class = %v, want %v", c.in, f.Class, c.want)
		}
	}
}

func TestDynamicMatching(t *testing.T) {
	f := MustParseFP("<0w1r1/0/0>") // dRDF: w1 then read on a cell at 0

	// Static matching never fires for dynamic primitives.
	if f.MatchesOp(W1, RoleVictim, VX, V0) {
		t.Error("MatchesOp must not match dynamic primitives")
	}
	// First operation: w1 on a cell holding 0 arms.
	if !f.MatchesFirstOp(W1, RoleVictim, VX, V0) {
		t.Error("w1 at state 0 must arm")
	}
	if f.MatchesFirstOp(W1, RoleVictim, VX, V1) {
		t.Error("w1 at state 1 must not arm")
	}
	if f.MatchesFirstOp(W0, RoleVictim, VX, V0) {
		t.Error("w0 must not arm")
	}
	if f.MatchesFirstOp(W1, RoleAggressor, VX, V0) {
		t.Error("wrong role must not arm")
	}
	// Second operation: any read on the same cell fires.
	if !f.MatchesSecondOp(R1, RoleVictim) || !f.MatchesSecondOp(R0, RoleVictim) {
		t.Error("a read must complete the sequence")
	}
	if f.MatchesSecondOp(W1, RoleVictim) {
		t.Error("a write must not complete a w-r sequence")
	}
	if f.MatchesSecondOp(R1, RoleAggressor) {
		t.Error("wrong role must not complete")
	}

	static := MustParseFP("<0w1/0/->")
	if static.MatchesFirstOp(W1, RoleVictim, VX, V0) || static.MatchesSecondOp(W1, RoleVictim) {
		t.Error("static primitives must not use the dynamic matchers")
	}
}

func TestDynamicMisreadsAndChangesState(t *testing.T) {
	if !MustParseFP("<0w1r1/1/0>").Misreads() { // dIRF: returns 0, good read is 1
		t.Error("dIRF must misread")
	}
	if MustParseFP("<0w1r1/0/1>").Misreads() { // dDRDF: returns the expected 1
		t.Error("dDRDF must not misread")
	}
	if !MustParseFP("<0w1r1/0/0>").ChangesState() {
		t.Error("dRDF must change state")
	}
	if MustParseFP("<0w1r1/1/0>").ChangesState() {
		t.Error("dIRF must not change state")
	}
}

func TestByClassDynamic(t *testing.T) {
	for _, c := range []Class{DyRDF, DyDRDF, DyIRF, DyCFds, DyCFrd, DyCFdr, DyCFir} {
		fps := ByClass(c)
		if len(fps) == 0 {
			t.Errorf("ByClass(%v) empty", c)
		}
		for _, f := range fps {
			if f.Class != c {
				t.Errorf("ByClass(%v) contains %v", c, f)
			}
		}
	}
}
