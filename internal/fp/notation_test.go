package fp

import (
	"testing"
)

// The worked examples from the paper itself.
func TestParseFPPaperExamples(t *testing.T) {
	// Section 2: FP = <0w1 ; 0 / 1 / -> — a disturb coupling fault: w1 on the
	// aggressor (initially 0) flips the victim (initially 0) to 1.
	f, err := ParseFP("<0w1;0/1/->")
	if err != nil {
		t.Fatal(err)
	}
	if f.Class != CFds {
		t.Errorf("class = %v, want CFds", f.Class)
	}
	if f.Cells != 2 || f.AInit != V0 || f.VInit != V0 || f.F != V1 || f.R != VX {
		t.Errorf("unexpected decode: %+v", f)
	}
	if f.OpRole != RoleAggressor || f.Op != W1 {
		t.Errorf("sensitizing op decode wrong: role=%v op=%v", f.OpRole, f.Op)
	}

	// Section 3, eq. (6): FP2 = <0w1 ; 1 / 0 / ->.
	f2, err := ParseFP("<0w1;1/0/->")
	if err != nil {
		t.Fatal(err)
	}
	if f2.F != V0 || f2.VInit != V1 {
		t.Errorf("unexpected decode: %+v", f2)
	}

	// Section 4, eq. (12): <1w0 ; 1 / 0 / ->.
	f3, err := ParseFP("<1w0;1/0/->")
	if err != nil {
		t.Fatal(err)
	}
	if f3.AInit != V1 || f3.Op != W0 || f3.F != V0 {
		t.Errorf("unexpected decode: %+v", f3)
	}
}

func TestParseFPClassInference(t *testing.T) {
	cases := []struct {
		in   string
		want Class
	}{
		{"<0/1/->", SF},
		{"<1/0/->", SF},
		{"<0w1/0/->", TF},
		{"<1w0/1/->", TF},
		{"<0w0/1/->", WDF},
		{"<1w1/0/->", WDF},
		{"<0r0/1/1>", RDF},
		{"<1r1/0/0>", RDF},
		{"<0r0/1/0>", DRDF},
		{"<1r1/0/1>", DRDF},
		{"<0r0/0/1>", IRF},
		{"<1r1/1/0>", IRF},
		{"<0t/1/->", DRF},
		{"<1t/0/->", DRF},
		{"<0;0/1/->", CFst},
		{"<1;1/0/->", CFst},
		{"<0w1;0/1/->", CFds},
		{"<1r1;0/1/->", CFds},
		{"<0;0w1/0/->", CFtr},
		{"<1;1w0/1/->", CFtr},
		{"<0;0w0/1/->", CFwd},
		{"<1;1w1/0/->", CFwd},
		{"<0;0r0/1/1>", CFrd},
		{"<1;1r1/0/0>", CFrd},
		{"<0;0r0/1/0>", CFdr},
		{"<1;1r1/0/1>", CFdr},
		{"<0;0r0/0/1>", CFir},
		{"<1;1r1/1/0>", CFir},
	}
	for _, c := range cases {
		f, err := ParseFP(c.in)
		if err != nil {
			t.Errorf("ParseFP(%q): %v", c.in, err)
			continue
		}
		if f.Class != c.want {
			t.Errorf("ParseFP(%q).Class = %v, want %v", c.in, f.Class, c.want)
		}
	}
}

func TestFPStringRoundTrip(t *testing.T) {
	for _, f := range append(AllStatic(), DRFs...) {
		s := f.String()
		parsed, err := ParseFP(s)
		if err != nil {
			t.Errorf("ParseFP(%q): %v", s, err)
			continue
		}
		if parsed != f {
			t.Errorf("round trip of %v gave %v", f, parsed)
		}
	}
}

func TestParseFPErrors(t *testing.T) {
	bad := []string{
		"",
		"<>",
		"0w1/0/-",       // missing <>
		"<0w1/0>",       // missing R
		"<0w1/0/-/1>",   // too many fields
		"<0w1;0;1/1/->", // three cells
		"<0w1;0w1/1/->", // two operations
		"<0w1/-/->",     // non-binary F
		"<0w1/0/1>",     // R without a read on the victim
		"<0r0/1/->",     // read on victim without R
		"<0/0/->",       // state fault that does not flip
		"<x/1/->",       // bad value
		"<0q1/0/->",     // bad op
		"<0w2/0/->",     // bad write value
		"<0w1;-/0/1>",   // R with aggressor read absent
		"<0r0;0/1/1>",   // R specified for a read on the aggressor
	}
	for _, s := range bad {
		if f, err := ParseFP(s); err == nil {
			t.Errorf("ParseFP(%q) = %v, want error", s, f)
		}
	}
}

func TestMustParseFPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseFP on invalid input did not panic")
		}
	}()
	MustParseFP("<garbage>")
}

func TestParseFPUnconstrainedAggressorState(t *testing.T) {
	// A disturb coupling written without the aggressor initial state: the
	// aggressor state is unconstrained.
	f, err := ParseFP("<w1;0/1/->")
	if err != nil {
		t.Fatal(err)
	}
	if f.AInit != VX || f.OpRole != RoleAggressor || f.Op != W1 {
		t.Errorf("unexpected decode: %+v", f)
	}
	if f.Class != CFds {
		t.Errorf("class = %v, want CFds", f.Class)
	}
}

func TestParseFPNormalizesSensitizingRead(t *testing.T) {
	// "r" without a value inside S is pinned to the cell's initial state.
	f, err := ParseFP("<0r/1/1>")
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseFP("<0r0/1/1>")
	if f != want {
		t.Errorf("got %+v, want %+v", f, want)
	}
}

func TestClassString(t *testing.T) {
	for _, c := range Classes() {
		s := c.String()
		if s == "" || s == "?" {
			t.Errorf("class %d has no name", c)
		}
		parsed, err := ParseClass(s)
		if err != nil {
			t.Errorf("ParseClass(%q): %v", s, err)
			continue
		}
		if parsed != c {
			t.Errorf("ParseClass(%q) = %v, want %v", s, parsed, c)
		}
	}
	if _, err := ParseClass("NOPE"); err == nil {
		t.Error("ParseClass(\"NOPE\") should fail")
	}
	if ClassUnknown.String() != "?" {
		t.Errorf("ClassUnknown.String() = %q", ClassUnknown.String())
	}
}

func TestClassIsCoupling(t *testing.T) {
	for _, c := range []Class{SF, TF, WDF, RDF, DRDF, IRF, DRF} {
		if c.IsCoupling() {
			t.Errorf("%v should not be a coupling class", c)
		}
	}
	for _, c := range []Class{CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir} {
		if !c.IsCoupling() {
			t.Errorf("%v should be a coupling class", c)
		}
	}
}
