package fp

// This file enumerates the standard space of static fault primitives used in
// the memory-test literature (van de Goor & Al-Ars taxonomy, and the
// realistic fault models of Hamdioui et al. referenced as [10] and [16] by
// the paper). The linked fault lists of internal/faultlist are built from
// these primitives.

// Single-cell static fault primitives, grouped by functional fault model.
var (
	// SFs are State Faults: the cell cannot hold the value x.
	SFs = []FP{
		MustParseFP("<0/1/->"),
		MustParseFP("<1/0/->"),
	}

	// TFs are Transition Faults: a write that should flip the cell fails.
	TFs = []FP{
		MustParseFP("<0w1/0/->"), // up transition fails
		MustParseFP("<1w0/1/->"), // down transition fails
	}

	// WDFs are Write Destructive Faults: a non-transition write flips the
	// cell.
	WDFs = []FP{
		MustParseFP("<0w0/1/->"),
		MustParseFP("<1w1/0/->"),
	}

	// RDFs are Read Destructive Faults: a read flips the cell and returns
	// the new (faulty) value.
	RDFs = []FP{
		MustParseFP("<0r0/1/1>"),
		MustParseFP("<1r1/0/0>"),
	}

	// DRDFs are Deceptive Read Destructive Faults: a read flips the cell but
	// returns the old (correct) value.
	DRDFs = []FP{
		MustParseFP("<0r0/1/0>"),
		MustParseFP("<1r1/0/1>"),
	}

	// IRFs are Incorrect Read Faults: a read returns the wrong value without
	// changing the cell.
	IRFs = []FP{
		MustParseFP("<0r0/0/1>"),
		MustParseFP("<1r1/1/0>"),
	}

	// DRFs are Data Retention Faults: the cell loses its value after a wait
	// period (the 't' operation of Definition 2).
	DRFs = []FP{
		MustParseFP("<0t/1/->"),
		MustParseFP("<1t/0/->"),
	}
)

// Two-cell (coupling) static fault primitives, grouped by functional fault
// model. The notation is <Sa ; Sv / F / R> with the aggressor first.
var (
	// CFsts are State Coupling Faults: the victim cannot hold x while the
	// aggressor holds y.
	CFsts = []FP{
		MustParseFP("<0;0/1/->"),
		MustParseFP("<0;1/0/->"),
		MustParseFP("<1;0/1/->"),
		MustParseFP("<1;1/0/->"),
	}

	// CFdss are Disturb Coupling Faults: an operation on the aggressor
	// (any write, or a read) flips the victim.
	CFdss = []FP{
		MustParseFP("<0w0;0/1/->"),
		MustParseFP("<0w0;1/0/->"),
		MustParseFP("<0w1;0/1/->"),
		MustParseFP("<0w1;1/0/->"),
		MustParseFP("<1w0;0/1/->"),
		MustParseFP("<1w0;1/0/->"),
		MustParseFP("<1w1;0/1/->"),
		MustParseFP("<1w1;1/0/->"),
		MustParseFP("<0r0;0/1/->"),
		MustParseFP("<0r0;1/0/->"),
		MustParseFP("<1r1;0/1/->"),
		MustParseFP("<1r1;1/0/->"),
	}

	// CFtrs are Transition Coupling Faults: a transition write on the victim
	// fails while the aggressor holds y.
	CFtrs = []FP{
		MustParseFP("<0;0w1/0/->"),
		MustParseFP("<1;0w1/0/->"),
		MustParseFP("<0;1w0/1/->"),
		MustParseFP("<1;1w0/1/->"),
	}

	// CFwds are Write Destructive Coupling Faults: a non-transition write on
	// the victim flips it while the aggressor holds y.
	CFwds = []FP{
		MustParseFP("<0;0w0/1/->"),
		MustParseFP("<1;0w0/1/->"),
		MustParseFP("<0;1w1/0/->"),
		MustParseFP("<1;1w1/0/->"),
	}

	// CFrds are Read Destructive Coupling Faults.
	CFrds = []FP{
		MustParseFP("<0;0r0/1/1>"),
		MustParseFP("<1;0r0/1/1>"),
		MustParseFP("<0;1r1/0/0>"),
		MustParseFP("<1;1r1/0/0>"),
	}

	// CFdrs are Deceptive Read Destructive Coupling Faults.
	CFdrs = []FP{
		MustParseFP("<0;0r0/1/0>"),
		MustParseFP("<1;0r0/1/0>"),
		MustParseFP("<0;1r1/0/1>"),
		MustParseFP("<1;1r1/0/1>"),
	}

	// CFirs are Incorrect Read Coupling Faults.
	CFirs = []FP{
		MustParseFP("<0;0r0/0/1>"),
		MustParseFP("<1;0r0/0/1>"),
		MustParseFP("<0;1r1/1/0>"),
		MustParseFP("<1;1r1/1/0>"),
	}
)

// AllSingleCellStatic returns the 12 single-cell static fault primitives
// (SF, TF, WDF, RDF, DRDF, IRF). Data retention faults are excluded because
// they require the non-static wait operation; use DRFs explicitly.
func AllSingleCellStatic() []FP {
	return concatFPs(SFs, TFs, WDFs, RDFs, DRDFs, IRFs)
}

// AllTwoCellStatic returns the 36 two-cell static fault primitives
// (CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir).
func AllTwoCellStatic() []FP {
	return concatFPs(CFsts, CFdss, CFtrs, CFwds, CFrds, CFdrs, CFirs)
}

// AllStatic returns the full space of static fault primitives on one and two
// cells (48 primitives).
func AllStatic() []FP {
	return append(AllSingleCellStatic(), AllTwoCellStatic()...)
}

// ByClass returns the catalog entries of one functional fault model, or nil
// for an unknown class.
func ByClass(c Class) []FP {
	switch c {
	case SF:
		return cloneFPs(SFs)
	case TF:
		return cloneFPs(TFs)
	case WDF:
		return cloneFPs(WDFs)
	case RDF:
		return cloneFPs(RDFs)
	case DRDF:
		return cloneFPs(DRDFs)
	case IRF:
		return cloneFPs(IRFs)
	case DRF:
		return cloneFPs(DRFs)
	case CFst:
		return cloneFPs(CFsts)
	case CFds:
		return cloneFPs(CFdss)
	case CFtr:
		return cloneFPs(CFtrs)
	case CFwd:
		return cloneFPs(CFwds)
	case CFrd:
		return cloneFPs(CFrds)
	case CFdr:
		return cloneFPs(CFdrs)
	case CFir:
		return cloneFPs(CFirs)
	case DyRDF:
		return cloneFPs(DyRDFs)
	case DyDRDF:
		return cloneFPs(DyDRDFs)
	case DyIRF:
		return cloneFPs(DyIRFs)
	case DyCFds:
		return cloneFPs(DyCFdss)
	case DyCFrd:
		return cloneFPs(DyCFrds)
	case DyCFdr:
		return cloneFPs(DyCFdrs)
	case DyCFir:
		return cloneFPs(DyCFirs)
	}
	return nil
}

// Classes lists every functional fault model in the catalog: static
// single-cell models, static coupling models, then the dynamic models.
func Classes() []Class {
	return []Class{
		SF, TF, WDF, RDF, DRDF, IRF, DRF,
		CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir,
		DyRDF, DyDRDF, DyIRF, DyCFds, DyCFrd, DyCFdr, DyCFir,
	}
}

func concatFPs(groups ...[]FP) []FP {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	out := make([]FP, 0, n)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func cloneFPs(fps []FP) []FP {
	out := make([]FP, len(fps))
	copy(out, fps)
	return out
}
