package fp

// The catalog of realistic two-operation (dynamic, m = 2) fault primitives,
// per the dynamic fault taxonomy of van de Goor & Al-Ars and the companion
// paper of the same group ("Automatic March Tests Generation for Static and
// Dynamic Faults in SRAMs", ETS 2005). The realistic dynamic behaviors are
// sensitized by a write or read immediately followed by a read on the same
// cell: the second (back-to-back) access disturbs the cell or returns a
// wrong value.

// dynSeqs are the six sensitizing sequences: every write-then-read and
// read-then-read pair consistent with a binary initial state.
var dynSeqs = []string{"0w0r0", "0w1r1", "1w0r0", "1w1r1", "0r0r0", "1r1r1"}

// goodFinal returns the fault-free cell value after a dynamic sequence
// (the value of the last write, or the initial state for read-read).
func dynGoodFinal(seq string) string {
	switch seq {
	case "0w0r0", "1w0r0", "0r0r0":
		return "0"
	default:
		return "1"
	}
}

func buildDynamicSingle() (rdf, drdf, irf []FP) {
	for _, seq := range dynSeqs {
		g := dynGoodFinal(seq)
		bad := "1"
		if g == "1" {
			bad = "0"
		}
		rdf = append(rdf, MustParseFP("<"+seq+"/"+bad+"/"+bad+">"))
		drdf = append(drdf, MustParseFP("<"+seq+"/"+bad+"/"+g+">"))
		irf = append(irf, MustParseFP("<"+seq+"/"+g+"/"+bad+">"))
	}
	return
}

func buildDynamicCoupling() (ds, rd, dr, ir []FP) {
	// Aggressor-side: a two-operation sequence on the aggressor flips the
	// victim.
	for _, seq := range dynSeqs {
		ds = append(ds,
			MustParseFP("<"+seq+";0/1/->"),
			MustParseFP("<"+seq+";1/0/->"),
		)
	}
	// Victim-side: the dynamic read disturbances conditioned on the
	// aggressor state.
	for _, a := range []string{"0", "1"} {
		for _, seq := range dynSeqs {
			g := dynGoodFinal(seq)
			bad := "1"
			if g == "1" {
				bad = "0"
			}
			rd = append(rd, MustParseFP("<"+a+";"+seq+"/"+bad+"/"+bad+">"))
			dr = append(dr, MustParseFP("<"+a+";"+seq+"/"+bad+"/"+g+">"))
			ir = append(ir, MustParseFP("<"+a+";"+seq+"/"+g+"/"+bad+">"))
		}
	}
	return
}

// Dynamic fault primitive groups.
var (
	// DyRDFs are Dynamic Read Destructive Faults: a write or read
	// immediately followed by a read flips the cell, and the read returns
	// the new (faulty) value.
	DyRDFs []FP
	// DyDRDFs are Dynamic Deceptive Read Destructive Faults: the cell
	// flips but the read returns the expected value.
	DyDRDFs []FP
	// DyIRFs are Dynamic Incorrect Read Faults: the back-to-back read
	// returns the wrong value without changing the cell.
	DyIRFs []FP
	// DyCFdss are Dynamic Disturb Coupling Faults: a two-operation sequence
	// on the aggressor flips the victim.
	DyCFdss []FP
	// DyCFrds, DyCFdrs, DyCFirs are the coupling versions of the dynamic
	// read disturbances, conditioned on the aggressor state.
	DyCFrds []FP
	DyCFdrs []FP
	DyCFirs []FP
)

func init() {
	DyRDFs, DyDRDFs, DyIRFs = buildDynamicSingle()
	DyCFdss, DyCFrds, DyCFdrs, DyCFirs = buildDynamicCoupling()
}

// AllSingleCellDynamic returns the 18 single-cell two-operation dynamic
// fault primitives.
func AllSingleCellDynamic() []FP {
	return concatFPs(DyRDFs, DyDRDFs, DyIRFs)
}

// AllTwoCellDynamic returns the 48 two-cell two-operation dynamic fault
// primitives.
func AllTwoCellDynamic() []FP {
	return concatFPs(DyCFdss, DyCFrds, DyCFdrs, DyCFirs)
}

// AllDynamic returns the full two-operation dynamic catalog (66
// primitives).
func AllDynamic() []FP {
	return append(AllSingleCellDynamic(), AllTwoCellDynamic()...)
}
