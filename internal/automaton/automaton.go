// Package automaton implements the memory model of Section 4 of the paper:
// an n one-bit-cell memory represented as a deterministic Mealy automaton
//
//	M = (Q, X, Y, δ, λ)                                           (eq. 9)
//
// where Q is the set of memory states, X the operation alphabet of
// Definition 2, Y = {0, 1, -} the output alphabet, δ the state transition
// function and λ the output function. The labeled digraph view of the same
// model (eq. 10, Figure 2) lives in package graph.
package automaton

import (
	"fmt"
	"strings"

	"marchgen/internal/fp"
)

// MaxCells bounds the model size; the state space is 2^n and the paper's
// pattern graphs use n = max(#f-cells) which is at most 3 for static linked
// faults.
const MaxCells = 16

// State is a memory state: bit c holds the value of cell c. States are the
// vertices Q of the model.
type State uint32

// StateFromValues packs a per-cell value vector (index = cell = address)
// into a State. All values must be binary.
func StateFromValues(vals []fp.Value) (State, error) {
	if len(vals) > MaxCells {
		return 0, fmt.Errorf("automaton: %d cells exceeds the %d-cell limit", len(vals), MaxCells)
	}
	var s State
	for c, v := range vals {
		if !v.IsBinary() {
			return 0, fmt.Errorf("automaton: cell %d has non-binary value %s", c, v)
		}
		if v == fp.V1 {
			s |= 1 << c
		}
	}
	return s, nil
}

// Values unpacks the state into a per-cell value vector of length n.
func (s State) Values(n int) []fp.Value {
	vals := make([]fp.Value, n)
	for c := 0; c < n; c++ {
		vals[c] = fp.ValueOf(uint8(s>>c) & 1)
	}
	return vals
}

// Cell returns the value of one cell.
func (s State) Cell(c int) fp.Value {
	return fp.ValueOf(uint8(s>>c) & 1)
}

// WithCell returns the state with cell c set to v.
func (s State) WithCell(c int, v fp.Value) State {
	if v == fp.V1 {
		return s | 1<<c
	}
	return s &^ (1 << c)
}

// Format renders the state in the paper's convention: the first character is
// the least significant bit, i.e. the cell with the lowest address
// (Definition 4). State 0b10 on two cells renders "01".
func (s State) Format(n int) string {
	var b strings.Builder
	for c := 0; c < n; c++ {
		b.WriteString(s.Cell(c).String())
	}
	return b.String()
}

// ParseState parses the paper's state notation (LSB first).
func ParseState(str string) (State, int, error) {
	vals := make([]fp.Value, 0, len(str))
	for i := 0; i < len(str); i++ {
		v, err := fp.ParseValue(str[i : i+1])
		if err != nil || !v.IsBinary() {
			return 0, 0, fmt.Errorf("automaton: invalid state %q", str)
		}
		vals = append(vals, v)
	}
	s, err := StateFromValues(vals)
	return s, len(vals), err
}

// Op is an addressed memory operation, an element of the input alphabet X:
// an operation of Definition 2 applied to a specific cell. The wait
// operation has no cell (Cell = -1).
type Op struct {
	Cell int
	Op   fp.Op
}

// WaitOp is the addressed wait operation.
var WaitOp = Op{Cell: -1, Op: fp.Wait}

// cellName renders cell indices in the paper's convention: the 2-cell model
// of Figure 2 calls the cells i and j (i < j); larger models continue with
// k, l, ...
func cellName(c int) string {
	if c >= 0 && c < 8 {
		return string(rune('i' + c))
	}
	return fmt.Sprintf("c%d", c)
}

// String renders "w1i", "rj", "t" as in the labels of Figure 2.
func (o Op) String() string {
	if o.Op.Kind == fp.OpWait {
		return "t"
	}
	switch o.Op.Kind {
	case fp.OpWrite:
		return "w" + o.Op.Data.String() + cellName(o.Cell)
	case fp.OpRead:
		if o.Op.Data == fp.VX {
			return "r" + cellName(o.Cell)
		}
		return "r" + o.Op.Data.String() + cellName(o.Cell)
	}
	return fmt.Sprintf("op(%v,%d)", o.Op, o.Cell)
}

// Machine is the Mealy automaton of an n-cell fault-free memory.
type Machine struct {
	n int
}

// New builds the model of an n-cell memory.
func New(n int) (Machine, error) {
	if n < 1 || n > MaxCells {
		return Machine{}, fmt.Errorf("automaton: cell count %d out of range [1,%d]", n, MaxCells)
	}
	return Machine{n: n}, nil
}

// MustNew is like New but panics on error.
func MustNew(n int) Machine {
	m, err := New(n)
	if err != nil {
		panic(err)
	}
	return m
}

// Cells returns the number of cells n.
func (m Machine) Cells() int { return m.n }

// NumStates returns |Q| = 2^n.
func (m Machine) NumStates() int { return 1 << m.n }

// Delta is the state transition function δ: Q × X → Q. Reads and waits do
// not change the fault-free state; a write sets the addressed cell.
func (m Machine) Delta(s State, op Op) (State, error) {
	if err := m.checkOp(op); err != nil {
		return s, err
	}
	if op.Op.Kind == fp.OpWrite {
		return s.WithCell(op.Cell, op.Op.Data), nil
	}
	return s, nil
}

// Lambda is the output function λ: Q × X → Y. A read outputs the addressed
// cell's value; writes and waits output '-'.
func (m Machine) Lambda(s State, op Op) (fp.Value, error) {
	if err := m.checkOp(op); err != nil {
		return fp.VX, err
	}
	if op.Op.Kind == fp.OpRead {
		return s.Cell(op.Cell), nil
	}
	return fp.VX, nil
}

func (m Machine) checkOp(op Op) error {
	switch op.Op.Kind {
	case fp.OpWait:
		if op.Cell != -1 {
			return fmt.Errorf("automaton: wait must not address a cell, got %d", op.Cell)
		}
		return nil
	case fp.OpWrite, fp.OpRead:
		if op.Cell < 0 || op.Cell >= m.n {
			return fmt.Errorf("automaton: cell %d out of range [0,%d)", op.Cell, m.n)
		}
		if op.Op.Kind == fp.OpWrite && !op.Op.Data.IsBinary() {
			return fmt.Errorf("automaton: write without a binary value")
		}
		return nil
	}
	return fmt.Errorf("automaton: invalid operation %v", op.Op)
}

// Alphabet enumerates the input alphabet X for the model: w0/w1/r on every
// cell, plus the wait operation (Definition 2).
func (m Machine) Alphabet() []Op {
	var ops []Op
	for c := 0; c < m.n; c++ {
		ops = append(ops,
			Op{Cell: c, Op: fp.W0},
			Op{Cell: c, Op: fp.W1},
			Op{Cell: c, Op: fp.RX},
		)
	}
	ops = append(ops, WaitOp)
	return ops
}

// Run applies an operation sequence from a starting state, returning the
// final state and the read outputs in order.
func (m Machine) Run(s State, ops []Op) (State, []fp.Value, error) {
	var outs []fp.Value
	for _, op := range ops {
		out, err := m.Lambda(s, op)
		if err != nil {
			return s, outs, err
		}
		if op.Op.Kind == fp.OpRead {
			outs = append(outs, out)
		}
		s, err = m.Delta(s, op)
		if err != nil {
			return s, outs, err
		}
	}
	return s, outs, nil
}
