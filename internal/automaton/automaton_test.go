package automaton

import (
	"testing"
	"testing/quick"

	"marchgen/internal/fp"
)

func TestNewBounds(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) must fail")
	}
	if _, err := New(MaxCells + 1); err == nil {
		t.Error("New beyond MaxCells must fail")
	}
	m, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells() != 3 || m.NumStates() != 8 {
		t.Errorf("Cells=%d NumStates=%d", m.Cells(), m.NumStates())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestStateFormatLSBFirst(t *testing.T) {
	// Definition 4: the first value is the cell with the lowest address.
	s := State(0).WithCell(0, fp.V1) // cell 0 = 1, cell 1 = 0
	if got := s.Format(2); got != "10" {
		t.Errorf("Format = %q, want \"10\" (LSB first)", got)
	}
	s2, n, err := ParseState("01")
	if err != nil || n != 2 {
		t.Fatalf("ParseState: %v n=%d", err, n)
	}
	if s2.Cell(0) != fp.V0 || s2.Cell(1) != fp.V1 {
		t.Errorf("ParseState(\"01\") = cells %v %v", s2.Cell(0), s2.Cell(1))
	}
	if _, _, err := ParseState("0x1"); err == nil {
		t.Error("ParseState must reject non-binary characters")
	}
	if _, _, err := ParseState("0-1"); err == nil {
		t.Error("ParseState must reject don't-care values")
	}
}

func TestStateValuesRoundTrip(t *testing.T) {
	f := func(raw uint8, nn uint8) bool {
		n := int(nn%4) + 1
		s := State(raw) & State((1<<n)-1)
		got, err := StateFromValues(s.Values(n))
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateFromValuesErrors(t *testing.T) {
	if _, err := StateFromValues([]fp.Value{fp.V0, fp.VX}); err == nil {
		t.Error("non-binary value must be rejected")
	}
	vals := make([]fp.Value, MaxCells+1)
	if _, err := StateFromValues(vals); err == nil {
		t.Error("too many cells must be rejected")
	}
}

func TestWithCell(t *testing.T) {
	var s State
	s = s.WithCell(2, fp.V1)
	if s.Cell(2) != fp.V1 || s.Cell(0) != fp.V0 {
		t.Errorf("WithCell set wrong bit: %b", s)
	}
	s = s.WithCell(2, fp.V0)
	if s != 0 {
		t.Errorf("WithCell clear failed: %b", s)
	}
}

func TestDeltaLambda(t *testing.T) {
	m := MustNew(2)
	s, _, _ := ParseState("00")

	// Writes set the addressed cell and output '-'.
	s1, err := m.Delta(s, Op{Cell: 0, Op: fp.W1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Format(2) != "10" {
		t.Errorf("after w1i: %s", s1.Format(2))
	}
	out, err := m.Lambda(s, Op{Cell: 0, Op: fp.W1})
	if err != nil || out != fp.VX {
		t.Errorf("λ(write) = %v, %v", out, err)
	}

	// Reads output the cell value and keep the state.
	out, err = m.Lambda(s1, Op{Cell: 0, Op: fp.RX})
	if err != nil || out != fp.V1 {
		t.Errorf("λ(ri) = %v, %v", out, err)
	}
	s2, err := m.Delta(s1, Op{Cell: 0, Op: fp.RX})
	if err != nil || s2 != s1 {
		t.Errorf("δ(read) changed state: %v, %v", s2, err)
	}

	// Wait keeps the state and outputs '-'.
	s3, err := m.Delta(s1, WaitOp)
	if err != nil || s3 != s1 {
		t.Errorf("δ(t) = %v, %v", s3, err)
	}
	out, err = m.Lambda(s1, WaitOp)
	if err != nil || out != fp.VX {
		t.Errorf("λ(t) = %v, %v", out, err)
	}
}

func TestOpValidation(t *testing.T) {
	m := MustNew(2)
	bad := []Op{
		{Cell: 2, Op: fp.W0},                                // out of range
		{Cell: -1, Op: fp.R0},                               // read without a cell
		{Cell: 0, Op: fp.Op{Kind: fp.OpWrite, Data: fp.VX}}, // write without a value
		{Cell: 0, Op: fp.Wait},                              // wait must not address a cell
		{Cell: 0, Op: fp.Op{}},                              // no operation
	}
	for _, op := range bad {
		if _, err := m.Delta(0, op); err == nil {
			t.Errorf("Delta accepted invalid op %+v", op)
		}
		if _, err := m.Lambda(0, op); err == nil {
			t.Errorf("Lambda accepted invalid op %+v", op)
		}
	}
}

func TestAlphabet(t *testing.T) {
	m := MustNew(2)
	a := m.Alphabet()
	// 3 ops per cell (w0, w1, r) plus the wait operation.
	if len(a) != 7 {
		t.Fatalf("alphabet size %d, want 7", len(a))
	}
	want := map[string]bool{"w0i": true, "w1i": true, "ri": true, "w0j": true, "w1j": true, "rj": true, "t": true}
	for _, op := range a {
		if !want[op.String()] {
			t.Errorf("unexpected alphabet member %q", op)
		}
		delete(want, op.String())
	}
	if len(want) != 0 {
		t.Errorf("alphabet missing %v", want)
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Cell: 0, Op: fp.W1}, "w1i"},
		{Op{Cell: 1, Op: fp.W0}, "w0j"},
		{Op{Cell: 0, Op: fp.RX}, "ri"},
		{Op{Cell: 1, Op: fp.R0}, "r0j"},
		{Op{Cell: 2, Op: fp.R1}, "r1k"},
		{WaitOp, "t"},
		{Op{Cell: 9, Op: fp.W1}, "w1c9"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestRun(t *testing.T) {
	m := MustNew(2)
	s, outs, err := m.Run(0, []Op{
		{Cell: 0, Op: fp.W1},
		{Cell: 0, Op: fp.RX},
		{Cell: 1, Op: fp.RX},
		{Cell: 1, Op: fp.W1},
		WaitOp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Format(2) != "11" {
		t.Errorf("final state %s, want 11", s.Format(2))
	}
	if len(outs) != 2 || outs[0] != fp.V1 || outs[1] != fp.V0 {
		t.Errorf("read outputs %v, want [1 0]", outs)
	}
	if _, _, err := m.Run(0, []Op{{Cell: 5, Op: fp.W0}}); err == nil {
		t.Error("Run must propagate operation errors")
	}
}

// Property: δ is total and closed over the alphabet — from any state, any
// alphabet operation yields a valid state and a read never changes it.
func TestDeltaClosedQuick(t *testing.T) {
	m := MustNew(3)
	alpha := m.Alphabet()
	f := func(raw uint8, opIdx uint8) bool {
		s := State(raw % 8)
		op := alpha[int(opIdx)%len(alpha)]
		to, err := m.Delta(s, op)
		if err != nil || int(to) >= m.NumStates() {
			return false
		}
		if op.Op.Kind != fp.OpWrite && to != s {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
