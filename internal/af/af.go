// Package af models address decoder faults (AFs) — the classic functional
// fault class that motivated MATS+ — and simulates march tests against
// them. Unlike cell faults, AFs corrupt the address mapping rather than
// stored values:
//
//	AF1: an address accesses no cell (writes are lost; reads return the
//	     floating bitline value, modeled as the last value read or written
//	     through the decoder);
//	AF2: an address accesses a wrong cell instead of its own;
//	AF3: an address additionally accesses a second cell;
//	AF4: two addresses access one shared cell (the mirror of AF3).
//
// The classic result — a march test detects all AFs iff it contains the
// MATS+ pattern ⇑(r0,...,w1) ⇓(r1,...,w0) (ascending sequences ending in
// w~x after rx, and descending likewise) — is reproduced by this package's
// tests against the march library.
package af

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Kind is the decoder fault class.
type Kind uint8

// Address decoder fault kinds.
const (
	AF1 Kind = iota // address A accesses no cell
	AF2             // address A accesses cell B instead of cell A
	AF3             // address A accesses cells A and B
	AF4             // addresses A and B both access cell A
)

var kindNames = [...]string{"AF1", "AF2", "AF3", "AF4"}

// String returns the class name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fault is a concrete decoder fault: the affected address A and, for the
// two-address kinds, the partner cell/address B.
type Fault struct {
	Kind Kind
	A, B int
}

// ID renders "AF3{2+3}" style identifiers.
func (f Fault) ID() string {
	switch f.Kind {
	case AF1:
		return fmt.Sprintf("AF1{%d}", f.A)
	case AF2:
		return fmt.Sprintf("AF2{%d->%d}", f.A, f.B)
	case AF3:
		return fmt.Sprintf("AF3{%d+%d}", f.A, f.B)
	case AF4:
		return fmt.Sprintf("AF4{%d&%d}", f.A, f.B)
	}
	return fmt.Sprintf("AF?{%d,%d}", f.A, f.B)
}

// Validate checks the fault against an n-cell memory.
func (f Fault) Validate(n int) error {
	if f.A < 0 || f.A >= n {
		return fmt.Errorf("af: %s: address A out of range [0,%d)", f.ID(), n)
	}
	switch f.Kind {
	case AF1:
		return nil
	case AF2, AF3, AF4:
		if f.B < 0 || f.B >= n {
			return fmt.Errorf("af: %s: address B out of range [0,%d)", f.ID(), n)
		}
		if f.A == f.B {
			return fmt.Errorf("af: %s: A and B must differ", f.ID())
		}
		return nil
	}
	return fmt.Errorf("af: unknown kind %d", f.Kind)
}

// All enumerates every decoder fault on an n-cell memory: n AF1s plus
// n(n-1) each of AF2/AF3/AF4.
func All(n int) []Fault {
	var out []Fault
	for a := 0; a < n; a++ {
		out = append(out, Fault{Kind: AF1, A: a})
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			out = append(out,
				Fault{Kind: AF2, A: a, B: b},
				Fault{Kind: AF3, A: a, B: b},
				Fault{Kind: AF4, A: a, B: b},
			)
		}
	}
	return out
}

// targets returns the cells an access to addr reaches on the faulty
// machine. Empty for a floating access (AF1).
func (f Fault) targets(addr int) []int {
	switch f.Kind {
	case AF1:
		if addr == f.A {
			return nil
		}
	case AF2:
		if addr == f.A {
			return []int{f.B}
		}
	case AF3:
		if addr == f.A {
			return []int{f.A, f.B}
		}
	case AF4:
		if addr == f.A || addr == f.B {
			return []int{f.A}
		}
	}
	return []int{addr}
}

// Detects reports whether the march test detects the decoder fault on an
// n-cell memory, for every uniform initial value: some read must return a
// value different from the fault-free machine's. A floating read (AF1)
// returns the retained bus value: the last value any read or write moved
// through the decoder, the conventional model for open decoder lines.
func Detects(t march.Test, f Fault, n int) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	if err := f.Validate(n); err != nil {
		return false, err
	}
	for _, init := range []fp.Value{fp.V0, fp.V1} {
		if detected, err := run(t, f, n, init); err != nil {
			return false, err
		} else if !detected {
			return false, nil
		}
	}
	return true, nil
}

func run(t march.Test, f Fault, n int, init fp.Value) (bool, error) {
	good := make([]fp.Value, n)
	faulty := make([]fp.Value, n)
	for i := range good {
		good[i] = init
		faulty[i] = init
	}
	bus := init // retained bitline value for floating accesses
	for _, e := range t.Elems {
		for _, addr := range e.Order.Addresses(n) {
			for _, op := range e.Ops {
				switch op.Kind {
				case fp.OpWrite:
					good[addr] = op.Data
					for _, c := range f.targets(addr) {
						faulty[c] = op.Data
					}
					bus = op.Data
				case fp.OpRead:
					retGood := good[addr]
					var retFaulty fp.Value
					if tg := f.targets(addr); len(tg) == 0 {
						retFaulty = bus // floating access
					} else {
						// A multi-cell read wired-ANDs the bitlines; with
						// our AF3/AF4 shapes both cells hold the same value
						// unless the fault already diverged, in which case
						// the AND biases toward 0 (the conventional model).
						retFaulty = fp.V1
						for _, c := range tg {
							if faulty[c] == fp.V0 {
								retFaulty = fp.V0
							}
						}
						bus = retFaulty
					}
					if retFaulty != retGood {
						return true, nil
					}
				}
			}
		}
	}
	return false, nil
}

// Coverage counts detected faults.
func Coverage(t march.Test, faults []Fault, n int) (int, error) {
	det := 0
	for _, f := range faults {
		d, err := Detects(t, f, n)
		if err != nil {
			return det, err
		}
		if d {
			det++
		}
	}
	return det, nil
}
