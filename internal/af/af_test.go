package af

import (
	"testing"

	"marchgen/internal/march"
)

func TestAllEnumeration(t *testing.T) {
	faults := All(4)
	// 4 AF1 + 12 each of AF2/AF3/AF4.
	if len(faults) != 40 {
		t.Fatalf("%d faults, want 40", len(faults))
	}
	counts := map[Kind]int{}
	seen := map[string]bool{}
	for _, f := range faults {
		if err := f.Validate(4); err != nil {
			t.Errorf("%s: %v", f.ID(), err)
		}
		counts[f.Kind]++
		if seen[f.ID()] {
			t.Errorf("duplicate %s", f.ID())
		}
		seen[f.ID()] = true
	}
	if counts[AF1] != 4 || counts[AF2] != 12 || counts[AF3] != 12 || counts[AF4] != 12 {
		t.Errorf("kind counts: %v", counts)
	}
}

func TestValidate(t *testing.T) {
	if (Fault{Kind: AF1, A: 4}).Validate(4) == nil {
		t.Error("A out of range must fail")
	}
	if (Fault{Kind: AF2, A: 0, B: 0}).Validate(4) == nil {
		t.Error("A == B must fail")
	}
	if (Fault{Kind: AF3, A: 0, B: 9}).Validate(4) == nil {
		t.Error("B out of range must fail")
	}
	if (Fault{Kind: Kind(9), A: 0}).Validate(4) == nil {
		t.Error("unknown kind must fail")
	}
}

func TestTargets(t *testing.T) {
	af1 := Fault{Kind: AF1, A: 1}
	if got := af1.targets(1); len(got) != 0 {
		t.Errorf("AF1 targets = %v, want none", got)
	}
	if got := af1.targets(2); len(got) != 1 || got[0] != 2 {
		t.Errorf("unaffected address targets = %v", got)
	}
	af2 := Fault{Kind: AF2, A: 1, B: 3}
	if got := af2.targets(1); len(got) != 1 || got[0] != 3 {
		t.Errorf("AF2 targets = %v, want [3]", got)
	}
	af3 := Fault{Kind: AF3, A: 1, B: 3}
	if got := af3.targets(1); len(got) != 2 {
		t.Errorf("AF3 targets = %v, want two cells", got)
	}
	af4 := Fault{Kind: AF4, A: 1, B: 3}
	if got := af4.targets(3); len(got) != 1 || got[0] != 1 {
		t.Errorf("AF4 targets(B) = %v, want [A]", got)
	}
}

// The classic result: MATS+ (5n) detects all address decoder faults — it
// is the minimal test that does.
func TestMATSPlusDetectsAllAFs(t *testing.T) {
	faults := All(4)
	got, err := Coverage(march.MATSPlus, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != len(faults) {
		t.Errorf("MATS+ detects %d/%d AFs, literature says all", got, len(faults))
	}
}

// Coverage anchors across the library (pinned measurements): every test
// with ascending and descending read-then-complement-write sweeps covers
// all AFs; the all-⇕ March ABL1 covers none, and the all-⇑ March LF1
// misses one — the textbook reason AF tests need both address orders.
func TestLibraryAFCoverageAnchors(t *testing.T) {
	faults := All(4)
	full := []march.Test{
		march.MATSPlus, march.MarchX, march.MarchY, march.MarchCMinus,
		march.MarchA, march.MarchB, march.MarchU, march.MarchLR,
		march.MarchLA, march.MarchSS, march.MarchRAW, march.PMOVI,
		march.MarchSL, march.March43N, march.MarchABL, march.MarchRABL,
	}
	for _, m := range full {
		got, err := Coverage(m, faults, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != len(faults) {
			t.Errorf("%s: %d/%d AFs, previously measured full", m.Name, got, len(faults))
		}
	}
	got, err := Coverage(march.MarchABL1, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("March ABL1 (all-⇕): %d/%d AFs, previously measured 0", got, len(faults))
	}
	got, err = Coverage(march.MarchLF1, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 39 {
		t.Errorf("March LF1 (all-⇑): %d/%d AFs, previously measured 39", got, len(faults))
	}
}

// An AF1 with the floating-read model is caught by the first read after a
// complementary write elsewhere keeps the bus value distinct.
func TestAF1FloatingRead(t *testing.T) {
	f := Fault{Kind: AF1, A: 2}
	det, err := Detects(march.MATSPlus, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("MATS+ must detect a floating address")
	}
	// A test that only ever writes and reads the same value cannot: the
	// bus always retains the expected value.
	blind := march.MustParse("blind", "c(w0) c(r0)")
	det, err = Detects(blind, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("single-value test must miss the floating address")
	}
}

// Detection requires both initial values: a fault visible only from one
// power-up state is not covered.
func TestDetectsBothInits(t *testing.T) {
	f := Fault{Kind: AF2, A: 0, B: 1}
	onlyRead := march.MustParse("ro", "c(r0)") // inconsistent expectation aside, reads only
	if err := onlyRead.Validate(); err != nil {
		t.Fatal(err)
	}
	det, err := Detects(onlyRead, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("a read-only sweep cannot expose a wrong-cell mapping")
	}
}

func TestIDs(t *testing.T) {
	cases := map[string]Fault{
		"AF1{2}":    {Kind: AF1, A: 2},
		"AF2{1->3}": {Kind: AF2, A: 1, B: 3},
		"AF3{1+3}":  {Kind: AF3, A: 1, B: 3},
		"AF4{1&3}":  {Kind: AF4, A: 1, B: 3},
	}
	for want, f := range cases {
		if f.ID() != want {
			t.Errorf("ID = %q, want %q", f.ID(), want)
		}
	}
	if AF3.String() != "AF3" {
		t.Errorf("Kind.String = %q", AF3.String())
	}
}
