// Package bist estimates the implementation cost of a march test in a
// memory BIST (built-in self-test) controller. It quantifies the motivation
// behind the paper's Section 7 future work: march tests whose elements all
// use one address order need a single up- (or down-) counting address
// generator and a simpler sequencer, so — at equal fault coverage — they
// are cheaper to implement than tests that keep reversing direction.
package bist

import (
	"fmt"

	"marchgen/internal/fp"
	"marchgen/internal/march"
)

// Cost summarizes the test-time and controller-complexity drivers of a
// march test.
type Cost struct {
	// Cycles is the test application time in memory cycles for an n-cell
	// array: one cycle per read/write per cell, plus DelayCycles per delay
	// phase.
	Cycles int64
	// Elements is the number of march elements (sequencer macro-states).
	Elements int
	// MaxElementOps is the longest element (micro-program depth).
	MaxElementOps int
	// OrderSwitches counts direction reversals between consecutive
	// elements with fixed address orders (⇕ elements adapt to either
	// neighbor and never force a reversal).
	OrderSwitches int
	// SingleOrder reports whether the test can be applied with a single
	// address-counter direction (every element ⇕, or all fixed orders
	// equal) — the property the Section 7 extension generates for.
	SingleOrder bool
	// UniqueElementShapes is the number of distinct operation sequences
	// across elements (reusable micro-programs).
	UniqueElementShapes int
}

// String renders a one-line summary.
func (c Cost) String() string {
	return fmt.Sprintf("cycles=%d elements=%d maxOps=%d switches=%d singleOrder=%v shapes=%d",
		c.Cycles, c.Elements, c.MaxElementOps, c.OrderSwitches, c.SingleOrder, c.UniqueElementShapes)
}

// Estimate computes the cost of applying the test to an n-cell memory,
// charging delayCycles cycles per wait operation.
func Estimate(t march.Test, n int, delayCycles int64) Cost {
	c := Cost{Elements: len(t.Elems)}
	shapes := map[string]bool{}
	lastFixed := march.Any
	for _, e := range t.Elems {
		ops := 0
		for _, op := range e.Ops {
			if op.Kind == fp.OpWait {
				c.Cycles += delayCycles
				continue
			}
			ops++
		}
		c.Cycles += int64(ops) * int64(n)
		if len(e.Ops) > c.MaxElementOps {
			c.MaxElementOps = len(e.Ops)
		}
		shapes[fp.FormatOps(e.Ops)] = true
		if e.Order != march.Any {
			if lastFixed != march.Any && e.Order != lastFixed {
				c.OrderSwitches++
			}
			lastFixed = e.Order
		}
	}
	c.SingleOrder = c.OrderSwitches == 0
	c.UniqueElementShapes = len(shapes)
	return c
}

// Compare returns the cycle and order-switch deltas of b relative to a
// (negative = b is cheaper), for reporting order-constraint trade-offs.
func Compare(a, b Cost) (cycleDelta int64, switchDelta int) {
	return b.Cycles - a.Cycles, b.OrderSwitches - a.OrderSwitches
}
