package bist

import (
	"strings"
	"testing"

	"marchgen/internal/march"
)

func TestEstimateMATSPlus(t *testing.T) {
	// MATS+ = ⇕(w0) ⇑(r0,w1) ⇓(r1,w0): 5 ops/cell.
	c := Estimate(march.MATSPlus, 1024, 0)
	if c.Cycles != 5*1024 {
		t.Errorf("Cycles = %d, want %d", c.Cycles, 5*1024)
	}
	if c.Elements != 3 || c.MaxElementOps != 2 {
		t.Errorf("Elements=%d MaxElementOps=%d", c.Elements, c.MaxElementOps)
	}
	// ⇑ then ⇓: one reversal.
	if c.OrderSwitches != 1 || c.SingleOrder {
		t.Errorf("OrderSwitches=%d SingleOrder=%v", c.OrderSwitches, c.SingleOrder)
	}
	// w0 / r0,w1 / r1,w0: three distinct shapes.
	if c.UniqueElementShapes != 3 {
		t.Errorf("UniqueElementShapes = %d", c.UniqueElementShapes)
	}
}

func TestEstimateDelays(t *testing.T) {
	// March G: 23 ops/cell + 2 delay phases.
	const n, delay = 64, 1_000_000
	c := Estimate(march.MarchG, n, delay)
	if want := int64(23*n + 2*delay); c.Cycles != want {
		t.Errorf("Cycles = %d, want %d", c.Cycles, want)
	}
}

func TestSingleOrderDetection(t *testing.T) {
	allUp := march.MustParse("up", "c(w0) ^(r0,w1) ^(r1,w0) c(r0)")
	c := Estimate(allUp, 16, 0)
	if !c.SingleOrder || c.OrderSwitches != 0 {
		t.Errorf("all-up test: %+v", c)
	}
	allAny := march.MustParse("any", "c(w0) c(r0,w1) c(r1)")
	if got := Estimate(allAny, 16, 0); !got.SingleOrder {
		t.Errorf("all-⇕ test must be single order: %+v", got)
	}
	mixed := march.MustParse("mixed", "c(w0) ^(r0,w1) v(r1,w0) ^(r0)")
	if got := Estimate(mixed, 16, 0); got.SingleOrder || got.OrderSwitches != 2 {
		t.Errorf("mixed test: %+v", got)
	}
	// ⇕ between fixed orders does not absorb a reversal of direction...
	sandwich := march.MustParse("sandwich", "^(w0) c(r0) v(r0,w1)")
	if got := Estimate(sandwich, 16, 0); got.OrderSwitches != 1 {
		t.Errorf("sandwich test: %+v", got)
	}
}

// March SL reverses direction once; the paper's March ABL reverses twice.
// The Section 7 motivation in numbers.
func TestLibraryOrderSwitches(t *testing.T) {
	cases := []struct {
		test     march.Test
		switches int
	}{
		{march.MarchSL, 1},
		{march.MarchABL, 2},
		{march.MarchABL1, 0},
		{march.MarchCMinus, 1},
	}
	for _, c := range cases {
		got := Estimate(c.test, 8, 0)
		if got.OrderSwitches != c.switches {
			t.Errorf("%s: %d order switches, want %d", c.test.Name, got.OrderSwitches, c.switches)
		}
	}
}

func TestCompare(t *testing.T) {
	a := Estimate(march.MarchSL, 1024, 0)  // 41n
	b := Estimate(march.MarchABL, 1024, 0) // 37n
	cycles, switches := Compare(a, b)
	if cycles != int64((37-41)*1024) {
		t.Errorf("cycleDelta = %d", cycles)
	}
	if switches != 1 { // SL has 1 switch, ABL has 2
		t.Errorf("switchDelta = %d", switches)
	}
}

func TestCostString(t *testing.T) {
	s := Estimate(march.MATSPlus, 4, 0).String()
	for _, want := range []string{"cycles=20", "elements=3", "singleOrder=false"} {
		if !strings.Contains(s, want) {
			t.Errorf("Cost.String() missing %q: %s", want, s)
		}
	}
}
