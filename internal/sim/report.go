package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// Result is the simulation outcome for one fault.
type Result struct {
	Fault    linked.Fault
	Detected bool
	// Witness is an undetected scenario when Detected is false.
	Witness *Scenario
	// Err is set when the fault could not be simulated (e.g. the memory is
	// too small for its cell count).
	Err error
}

// Report aggregates the simulation of a test against a fault list.
type Report struct {
	Test    march.Test
	Results []Result
}

// Total returns the number of faults simulated.
func (r Report) Total() int { return len(r.Results) }

// Detected returns the number of detected faults.
func (r Report) Detected() int {
	n := 0
	for _, res := range r.Results {
		if res.Detected {
			n++
		}
	}
	return n
}

// Coverage returns the detected fraction in percent (100 for full coverage,
// 0 for an empty list).
func (r Report) Coverage() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	return 100 * float64(r.Detected()) / float64(r.Total())
}

// Full reports whether every fault was detected. An empty fault list is
// vacuously covered, matching FullCoverage: both answer "does any fault in
// the list escape the test", and for an empty list none does. (Coverage, a
// ratio, still reports 0 for an empty list.)
func (r Report) Full() bool {
	return r.Detected() == r.Total()
}

// Missed returns the undetected faults.
func (r Report) Missed() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Detected {
			out = append(out, res)
		}
	}
	return out
}

// Err returns the first simulation error, if any.
func (r Report) Err() error {
	for _, res := range r.Results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// ByKind returns per-kind detected/total counters, with kinds in taxonomy
// order.
func (r Report) ByKind() []KindCoverage {
	idx := map[linked.Kind]int{}
	var out []KindCoverage
	for _, res := range r.Results {
		i, ok := idx[res.Fault.Kind]
		if !ok {
			i = len(out)
			idx[res.Fault.Kind] = i
			out = append(out, KindCoverage{Kind: res.Fault.Kind})
		}
		out[i].Total++
		if res.Detected {
			out[i].Detected++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// KindCoverage is a per-taxonomy-class coverage counter.
type KindCoverage struct {
	Kind     linked.Kind
	Detected int
	Total    int
}

// String renders "LF3 288/288".
func (k KindCoverage) String() string {
	return fmt.Sprintf("%s %d/%d", k.Kind, k.Detected, k.Total)
}

// Summary renders a one-line report: test name, coverage, per-kind counts.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %d/%d detected (%.1f%%)",
		r.Test.Name, r.Test.Complexity(), r.Detected(), r.Total(), r.Coverage())
	if kinds := r.ByKind(); len(kinds) > 1 {
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = k.String()
		}
		b.WriteString(" [" + strings.Join(parts, ", ") + "]")
	}
	return b.String()
}

// Simulate runs the test against every fault in the list, compiling the
// simulation schedule once and fanning out across Config.Workers goroutines.
// Result order matches the fault list. An empty fault list returns an empty
// report without spawning workers.
func Simulate(t march.Test, faults []linked.Fault, cfg Config) Report {
	if len(faults) == 0 {
		return Report{Test: t}
	}
	s, err := NewSchedule(t, cfg)
	if err != nil {
		// Schedule compilation fails for the test as a whole (⇕ expansion
		// cap); surface the error on every fault, as the per-fault path did.
		results := make([]Result, len(faults))
		for i, f := range faults {
			results[i] = Result{Fault: f, Err: err}
		}
		return Report{Test: t, Results: results}
	}
	return s.Simulate(faults)
}

// Simulate runs the schedule's test against every fault in the list, fanning
// out across Config.Workers goroutines with machines drawn from the
// schedule's pool. Result order matches the fault list.
func (s *Schedule) Simulate(faults []linked.Fault) Report {
	if len(faults) == 0 {
		return Report{Test: s.test}
	}
	results := make([]Result, len(faults))
	workers := s.cfg.workers()
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		m := s.getMachine()
		defer s.putMachine(m)
		for i := range faults {
			results[i] = s.result(m, faults[i])
		}
		return Report{Test: s.test, Results: results}
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := s.getMachine()
			defer s.putMachine(m)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(faults) {
					return
				}
				results[i] = s.result(m, faults[i])
			}
		}()
	}
	wg.Wait()
	return Report{Test: s.test, Results: results}
}
