package sim

import (
	"encoding/json"
	"math/rand"
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// randMarch builds a random march test that is consistent by construction:
// every read expects the value tracked symbolically through the preceding
// writes.
func randMarch(r *rand.Rand) march.Test {
	t := march.Test{Name: "random"}
	t.Elems = append(t.Elems, march.NewElement(march.Any, fp.W(fp.ValueOf(uint8(r.Intn(2))))))
	v := t.Elems[0].Ops[0].Data
	for e := 0; e < 1+r.Intn(4); e++ {
		order := march.AddrOrder(r.Intn(3))
		var ops []fp.Op
		for o := 0; o < 1+r.Intn(5); o++ {
			switch r.Intn(3) {
			case 0:
				ops = append(ops, fp.R(v))
			default:
				w := fp.W(fp.ValueOf(uint8(r.Intn(2))))
				ops = append(ops, w)
				v = w.Data
			}
		}
		t.Elems = append(t.Elems, march.NewElement(order, ops...))
	}
	return t
}

// sampleFaults is a small cross-section of the fault space: simple static,
// linked (LF1/LF2aa/LF3) and dynamic.
func sampleFaults(t *testing.T) []linked.Fault {
	t.Helper()
	mk := func(f func() (linked.Fault, error)) linked.Fault {
		ft, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return ft
	}
	return []linked.Fault{
		mustSimple(t, "<0w1/0/->"),
		mustSimple(t, "<0r0/1/0>"),
		mustSimple(t, "<1;0w0/1/->"),
		mustSimple(t, "<0w1r1/0/0>"),
		mk(func() (linked.Fault, error) {
			return linked.NewLF1(fp.MustParseFP("<0w1/0/->"), fp.MustParseFP("<0r0/1/1>"))
		}),
		mk(func() (linked.Fault, error) {
			return linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
		}),
		mk(func() (linked.Fault, error) {
			return linked.NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
		}),
	}
}

// Property: every randomly generated march test is consistent, and the
// simulator never produces a false positive on a fault whose trigger cannot
// fire.
func TestPropertyRandomMarchConsistentAndNoFalsePositive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	inert := mustSimple(t, "<0t/1/->") // random tests never contain waits
	for i := 0; i < 60; i++ {
		m := randMarch(r)
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("random test %d inconsistent: %v (%s)", i, err, m)
		}
		det, _, err := DetectsFault(m, inert, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if det {
			t.Fatalf("random test %d falsely detects an inert fault: %s", i, m)
		}
	}
}

// Property: appending a march element never loses a detection.
func TestPropertyMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	faults := sampleFaults(t)
	cfg := DefaultConfig()
	for i := 0; i < 25; i++ {
		base := randMarch(r)
		ext := base.Clone()
		// Extend with a consistent element: a read of the exit value plus a
		// random write.
		v := fp.V0
		for _, e := range ext.Elems {
			for _, op := range e.Ops {
				if op.Kind == fp.OpWrite {
					v = op.Data
				}
			}
		}
		ext.Elems = append(ext.Elems, march.NewElement(march.AddrOrder(r.Intn(3)), fp.R(v), fp.W(v.Not())))
		for _, f := range faults {
			baseDet, _, err := DetectsFault(base, f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !baseDet {
				continue
			}
			extDet, _, err := DetectsFault(ext, f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !extDet {
				t.Fatalf("iteration %d: extension lost detection of %s\nbase: %s\next:  %s",
					i, f.ID(), base, ext)
			}
		}
	}
}

// Property: detection is independent of the memory size (only the relative
// order of the fault cells matters for march semantics).
func TestPropertySizeInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	faults := sampleFaults(t)
	for i := 0; i < 20; i++ {
		m := randMarch(r)
		for _, f := range faults {
			det4, _, err := DetectsFault(m, f, Config{Size: 4, ExhaustiveOrders: true})
			if err != nil {
				t.Fatal(err)
			}
			det5, _, err := DetectsFault(m, f, Config{Size: 5, ExhaustiveOrders: true})
			if err != nil {
				t.Fatal(err)
			}
			if det4 != det5 {
				t.Fatalf("iteration %d: %s detected=%v on 4 cells but %v on 5 cells (%s)",
					i, f.ID(), det4, det5, m)
			}
		}
	}
}

// Property: simulation is deterministic and JSON round trips preserve
// random tests.
func TestPropertyDeterminismAndJSON(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	faults := sampleFaults(t)
	cfg := DefaultConfig()
	for i := 0; i < 20; i++ {
		m := randMarch(r)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back march.Test
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !back.Equal(m) {
			t.Fatalf("iteration %d: JSON round trip changed the test", i)
		}
		for _, f := range faults {
			a, _, err := DetectsFault(m, f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := DetectsFault(back, f, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("iteration %d: nondeterministic or JSON-divergent result for %s", i, f.ID())
			}
		}
	}
}
