package sim

import "encoding/json"

// Canonical returns the configuration with every default made explicit and
// every result-irrelevant knob normalized:
//
//   - Size and MaxAnyElements are filled with their documented defaults, so
//     a zero-value Config and a spelled-out default Config canonicalize to
//     the same value;
//   - Workers and DisableLanes are zeroed — they only control how the
//     simulation executes (parallelism, bit-parallel lanes), never its
//     verdicts, so configurations differing only in them are the same
//     simulation.
//
// Canonical is idempotent. It is the normal form behind the JSON codec and
// behind content-addressed caching of simulation results (the marchd result
// cache hashes the canonical form, so equivalent requests share one entry).
func (c Config) Canonical() Config {
	c.Size = c.size()
	if c.MaxAnyElements <= 0 {
		c.MaxAnyElements = 12
	}
	c.Workers = 0
	c.DisableLanes = false
	// Width and Ports are identity-bearing, but their bit-oriented /
	// single-port defaults are normalized to 0 and omitted from the wire so
	// pre-axis requests and explicit width=1/ports=1 requests share one
	// canonical form (and therefore one cache key).
	if c.Width <= 1 {
		c.Width = 0
	}
	if c.Ports <= 1 {
		c.Ports = 0
	}
	return c
}

// configJSON is the wire form of a simulator configuration. Field order is
// fixed by this struct, defaults are always written explicitly, and Workers
// and DisableLanes deliberately do not travel: they are execution details,
// not part of the simulation's identity (so lane mode never splits the
// marchd result cache).
type configJSON struct {
	Size             int  `json:"size"`
	ExhaustiveOrders bool `json:"exhaustive_orders"`
	MaxAnyElements   int  `json:"max_any_elements"`
	Width            int  `json:"width,omitempty"`
	Ports            int  `json:"ports,omitempty"`
}

// MarshalJSON encodes the canonical form: stable field order, defaults
// filled in. Equal canonical configurations produce byte-identical JSON.
func (c Config) MarshalJSON() ([]byte, error) {
	cc := c.Canonical()
	return json.Marshal(configJSON{
		Size:             cc.Size,
		ExhaustiveOrders: cc.ExhaustiveOrders,
		MaxAnyElements:   cc.MaxAnyElements,
		Width:            cc.Width,
		Ports:            cc.Ports,
	})
}

// UnmarshalJSON decodes a configuration; omitted fields keep their zero
// value and therefore their documented defaults.
func (c *Config) UnmarshalJSON(data []byte) error {
	var w configJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*c = Config{
		Size:             w.Size,
		ExhaustiveOrders: w.ExhaustiveOrders,
		MaxAnyElements:   w.MaxAnyElements,
		Width:            w.Width,
		Ports:            w.Ports,
	}
	return nil
}
