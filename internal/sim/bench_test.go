package sim

import (
	"testing"

	"marchgen/internal/faultlist"
	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// The benchmarks mirror the acceptance metric of the compiled-schedule
// layer: certification throughput of a march test over a whole fault list
// under the default exhaustive configuration. scenarios/op reports the
// nominal scenario space (placements × inits × order combinations summed
// over the list), so scenarios/sec = scenarios/op ÷ ns/op × 1e9.

func scenarioSpace(b *testing.B, t march.Test, faults []linked.Fault) int {
	b.Helper()
	s, err := NewSchedule(t, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, f := range faults {
		n, err := s.ScenarioCount(f)
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	return total
}

func benchSimulate(b *testing.B, t march.Test, faults []linked.Fault, cfg Config) {
	b.Helper()
	b.ReportMetric(float64(scenarioSpace(b, t, faults)), "scenarios/op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Simulate(t, faults, cfg)
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConfigs pairs the two execution engines: the default bit-parallel
// lanes and the scalar path behind DisableLanes. Benchmarking both keeps
// the lane speedup a number the bench log shows directly.
func benchConfigs() []struct {
	name string
	cfg  Config
} {
	scalar := DefaultConfig()
	scalar.DisableLanes = true
	return []struct {
		name string
		cfg  Config
	}{
		{"lanes", DefaultConfig()},
		{"scalar", scalar},
	}
}

func benchFullCoverage(b *testing.B, t march.Test, faults []linked.Fault, wantFull bool) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, _, err := FullCoverage(t, faults, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if full != wantFull {
			b.Fatalf("full=%v, want %v", full, wantFull)
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	for _, cc := range benchConfigs() {
		b.Run(cc.name, func(b *testing.B) {
			b.Run("MarchSL/List1", func(b *testing.B) { benchSimulate(b, march.MarchSL, faultlist.List1(), cc.cfg) })
			b.Run("MarchABL/List1", func(b *testing.B) { benchSimulate(b, march.MarchABL, faultlist.List1(), cc.cfg) })
			b.Run("MarchABL1/List2", func(b *testing.B) { benchSimulate(b, march.MarchABL1, faultlist.List2(), cc.cfg) })
			b.Run("MarchLF1/List2", func(b *testing.B) { benchSimulate(b, march.MarchLF1, faultlist.List2(), cc.cfg) })
		})
	}
}

func BenchmarkFullCoverage(b *testing.B) {
	b.Run("MarchSL/List1", func(b *testing.B) { benchFullCoverage(b, march.MarchSL, faultlist.List1(), true) })
	b.Run("MarchSS/List1", func(b *testing.B) { benchFullCoverage(b, march.MarchSS, faultlist.List1(), false) })
	b.Run("MarchABL1/List2", func(b *testing.B) { benchFullCoverage(b, march.MarchABL1, faultlist.List2(), true) })
}

// The compile step itself: must stay negligible next to a single fault
// simulation for the once-per-candidate amortization to hold.
func BenchmarkNewSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSchedule(march.MarchSL, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectsFaultScheduled(b *testing.B) {
	lf, err := linked.NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
	if err != nil {
		b.Fatal(err)
	}
	for _, cc := range benchConfigs() {
		b.Run(cc.name, func(b *testing.B) {
			s, err := NewSchedule(march.MarchSL, cc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det, _, err := s.DetectsFault(lf)
				if err != nil {
					b.Fatal(err)
				}
				if !det {
					b.Fatal("March SL must detect the LF3")
				}
			}
		})
	}
}
