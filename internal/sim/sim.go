// Package sim is the memory fault simulator the paper relies on for
// validation (its reference [13], "Specification and design of a new memory
// fault simulator"): it decides whether a march test detects a functional
// fault.
//
// The simulator runs the fault-free ("good") and the faulty machine in
// lockstep over the operation stream a march test induces on a small memory.
// Fault primitives are evaluated against the faulty machine's state, so the
// masking behavior of linked faults (Section 3 of the paper) emerges from
// the semantics instead of being special-cased: both primitives of a linked
// pair are simultaneously active and the second naturally cancels the first
// when the test gives it the chance.
//
// A fault model is *detected* by a test only if every concrete scenario is
// detected: every placement of the fault's cells onto memory addresses,
// every initial value of those cells (march tests must work for arbitrary
// power-up content), and — for ⇕ elements — every concrete address order.
package sim

import (
	"fmt"
	"runtime"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// Config controls the simulation space.
type Config struct {
	// Size is the number of memory cells; at least one more than the number
	// of fault cells so bystander behavior is exercised. 0 means the default
	// of 4 cells.
	Size int
	// ExhaustiveOrders expands every ⇕ element into both concrete address
	// orders and requires detection under all combinations. When false, ⇕
	// iterates upward (the paper's convention for generation-time checks).
	ExhaustiveOrders bool
	// Workers bounds the number of goroutines Simulate uses across faults.
	// 0 means GOMAXPROCS.
	Workers int
	// MaxAnyElements caps the ⇕ expansion to keep the scenario space
	// bounded; 0 means the default of 12 (4096 order combinations).
	MaxAnyElements int
	// DisableLanes turns off the bit-parallel lane engine (lanes.go) and
	// forces the scalar compiled-schedule path for every fault. Lanes are an
	// execution detail like Workers: they never change verdicts or witnesses
	// (the equivalence suite pins this), so the flag exists only as an
	// escape hatch / debugging aid and does not travel on the wire.
	DisableLanes bool
	// Width is the memory word width in bits for word-oriented evaluation
	// (internal/word). 0 or 1 means the classic bit-oriented memory; values
	// above 1 add word-background expansion to the paths that understand it.
	// Width is part of the simulation's identity and travels on the wire,
	// but only when it departs from the bit-oriented default so width-1
	// requests stay byte-identical to pre-width clients.
	Width int
	// Ports is the number of simultaneous access ports for multi-port
	// evaluation (internal/mport). 0 or 1 means single-port; 2 enables the
	// two-port weak-fault path. Like Width it travels on the wire only when
	// it departs from the single-port default.
	Ports int
}

// DefaultConfig is the configuration used throughout the experiments:
// 4 cells, exhaustive ⇕ expansion.
func DefaultConfig() Config {
	return Config{Size: 4, ExhaustiveOrders: true}
}

func (c Config) size() int {
	if c.Size <= 0 {
		return 4
	}
	return c.Size
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Scenario is one concrete simulation instance: a placement of the fault's
// abstract cells onto memory addresses, the initial values of those cells,
// and the concrete address order of every march element.
type Scenario struct {
	// Placement maps fault cell index to memory address.
	Placement []int
	// Init holds the initial value of each fault cell; bystander cells
	// start at 0.
	Init []fp.Value
	// Orders is the concrete address order of each march element (⇕
	// elements resolved to ⇑ or ⇓).
	Orders []march.AddrOrder
}

// String renders the scenario for diagnostics.
func (s Scenario) String() string {
	var b strings.Builder
	b.WriteString("cells@")
	for i, a := range s.Placement {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	b.WriteString(" init=")
	for _, v := range s.Init {
		b.WriteString(v.String())
	}
	b.WriteString(" orders=")
	for _, o := range s.Orders {
		b.WriteString(o.ASCII())
	}
	return b.String()
}

// machine is a pair of memories simulated in lockstep. For dynamic (m = 2)
// fault primitives it tracks which bindings are "armed": the first
// sensitizing operation matched on the immediately preceding step of the
// operation stream, so the primitive fires if the current operation
// completes the back-to-back sequence on the same cell.
//
// A machine is reused across faults and scenarios (Schedule keeps them in a
// sync.Pool); the per-fault buffers are resized by ensureBindings so faults
// may bind any number of primitives.
type machine struct {
	good   []fp.Value
	faulty []fp.Value
	// cellAt maps memory address -> fault cell index (-1 for bystanders).
	// The compiled schedule path uses it to resolve good-trace values that
	// predate the first write a stream makes to an address.
	cellAt []int
	// armed[i] reports that binding i's first dynamic operation matched on
	// the previous step; armedAddr[i] is the cell it matched on. Sized to
	// the fault's binding count by ensureBindings.
	armed     []bool
	armedAddr []int
	// matched, nextArmed and nextArmedAddr are per-step scratch buffers,
	// kept on the machine so stepping never allocates.
	matched       []bool
	nextArmed     []bool
	nextArmedAddr []int
	// ctxs holds the placement-resolved binding contexts of the compiled
	// schedule path (bindFault), reused across scenarios.
	ctxs []bindCtx
	// snapFaulty, snapArmed and snapArmedAddr are the per-depth state
	// snapshots of the order-choice trie walk (Schedule.runTree): slot d of
	// snapFaulty holds size cells, slot d of the armed pair holds one entry
	// per binding.
	snapFaulty    []fp.Value
	snapArmed     []bool
	snapArmedAddr []int
	// plan, laneLeafMiss and laneSnap are the bit-parallel engine's per-fault
	// plan and scratch buffers (lanes.go), reused across faults like ctxs.
	plan         lanePlan
	laneLeafMiss []uint64
	laneSnap     []uint64
}

func newMachine(size int) *machine {
	return &machine{
		good:   make([]fp.Value, size),
		faulty: make([]fp.Value, size),
		cellAt: make([]int, size),
	}
}

// ensureBindings sizes the per-binding buffers for a fault with n bound
// primitives. The buffers grow on demand, so faults with any number of
// bindings simulate without reallocation or out-of-range panics.
func (m *machine) ensureBindings(n int) {
	if cap(m.armed) < n {
		m.armed = make([]bool, n)
		m.armedAddr = make([]int, n)
		m.matched = make([]bool, n)
		m.nextArmed = make([]bool, n)
		m.nextArmedAddr = make([]int, n)
		return
	}
	m.armed = m.armed[:n]
	m.armedAddr = m.armedAddr[:n]
	m.matched = m.matched[:n]
	m.nextArmed = m.nextArmed[:n]
	m.nextArmedAddr = m.nextArmedAddr[:n]
}

// disarm clears every armed dynamic sequence.
func (m *machine) disarm() {
	for i := range m.armed {
		m.armed[i] = false
	}
}

// ensureSnapshots sizes the trie-walk snapshot stacks for nFaulty total
// cell slots and nArmed total binding slots.
func (m *machine) ensureSnapshots(nFaulty, nArmed int) {
	if cap(m.snapFaulty) < nFaulty {
		m.snapFaulty = make([]fp.Value, nFaulty)
	}
	m.snapFaulty = m.snapFaulty[:nFaulty]
	if cap(m.snapArmed) < nArmed {
		m.snapArmed = make([]bool, nArmed)
		m.snapArmedAddr = make([]int, nArmed)
	}
	m.snapArmed = m.snapArmed[:nArmed]
	m.snapArmedAddr = m.snapArmedAddr[:nArmed]
}

// save snapshots the mutable simulation state (faulty array, and for
// dynamic faults the armed sequences) into depth slot d.
func (m *machine) save(d, nb int, hasDynamic bool) {
	copy(m.snapFaulty[d*len(m.faulty):], m.faulty)
	if hasDynamic {
		copy(m.snapArmed[d*nb:(d+1)*nb], m.armed)
		copy(m.snapArmedAddr[d*nb:(d+1)*nb], m.armedAddr)
	}
}

// restore rewinds the mutable simulation state to depth slot d.
func (m *machine) restore(d, nb int, hasDynamic bool) {
	copy(m.faulty, m.snapFaulty[d*len(m.faulty):(d+1)*len(m.faulty)])
	if hasDynamic {
		copy(m.armed, m.snapArmed[d*nb:(d+1)*nb])
		copy(m.armedAddr, m.snapArmedAddr[d*nb:(d+1)*nb])
	}
}

func (m *machine) reset(f linked.Fault, s Scenario) {
	m.ensureBindings(len(f.FPs))
	for i := range m.good {
		m.good[i] = fp.V0
		m.faulty[i] = fp.V0
	}
	for c, addr := range s.Placement {
		m.good[addr] = s.Init[c]
		m.faulty[addr] = s.Init[c]
	}
	m.disarm()
}

// states returns the faulty-machine states of a binding's aggressor and
// victim cells.
func (m *machine) states(b linked.Binding, placement []int) (aState, vState fp.Value) {
	aState = fp.VX
	if b.A >= 0 {
		aState = m.faulty[placement[b.A]]
	}
	return aState, m.faulty[placement[b.V]]
}

// settleStateFaults applies state-triggered primitives (SF, CFst) until a
// fixpoint, bounded to avoid oscillation between mutually linked state
// conditions. It returns true if any cell changed.
func (m *machine) settleStateFaults(f linked.Fault, placement []int) bool {
	changed := false
	for iter := 0; iter <= len(f.FPs); iter++ {
		progress := false
		for _, b := range f.FPs {
			if b.FP.Trigger != fp.TrigState {
				continue
			}
			aState, vState := m.states(b, placement)
			if b.FP.MatchesState(aState, vState) && m.faulty[placement[b.V]] != b.FP.F {
				m.faulty[placement[b.V]] = b.FP.F
				progress = true
				changed = true
			}
		}
		if !progress {
			break
		}
	}
	return changed
}

// applyWait models the wait operation 't': time passes for the whole array,
// sensitizing data retention faults on any fault cell whose state matches.
func (m *machine) applyWait(f linked.Fault, placement []int) {
	for _, b := range f.FPs {
		if b.FP.Trigger != fp.TrigOp || b.FP.Op.Kind != fp.OpWait {
			continue
		}
		aState, vState := m.states(b, placement)
		if b.FP.MatchesOp(fp.Wait, fp.RoleVictim, aState, vState) {
			m.faulty[placement[b.V]] = b.FP.F
		}
	}
	m.settleStateFaults(f, placement)
}

// evalTriggers evaluates operation triggers against the pre-operation
// faulty state. Static primitives match on the single operation; dynamic
// ones fire when the current operation completes a sequence armed on the
// previous step, and (re-)arm when it matches their first operation. The
// returned slice is the machine's matched scratch buffer, valid until the
// next step.
func (m *machine) evalTriggers(f linked.Fault, placement []int, addr int, op fp.Op) []bool {
	matched, nextArmed, nextArmedAddr := m.matched, m.nextArmed, m.nextArmedAddr
	for i := range matched {
		matched[i] = false
		nextArmed[i] = false
	}
	for i, b := range f.FPs {
		if b.FP.Trigger != fp.TrigOp {
			continue
		}
		var role fp.Role
		switch {
		case placement[b.V] == addr:
			role = fp.RoleVictim
		case b.A >= 0 && placement[b.A] == addr:
			role = fp.RoleAggressor
		default:
			continue
		}
		aState, vState := m.states(b, placement)
		if b.FP.IsDynamic() {
			if m.armed[i] && m.armedAddr[i] == addr && b.FP.MatchesSecondOp(op, role) {
				matched[i] = true
			} else if b.FP.MatchesFirstOp(op, role, aState, vState) {
				nextArmed[i] = true
				nextArmedAddr[i] = addr
			}
			continue
		}
		if b.FP.MatchesOp(op, role, aState, vState) {
			matched[i] = true
		}
	}
	// Back-to-back means consecutive in the operation stream: whatever this
	// step did not re-arm is disarmed.
	m.armed, m.nextArmed = nextArmed, m.armed
	m.armedAddr, m.nextArmedAddr = nextArmedAddr, m.armedAddr
	return matched
}

// applyEffects applies the fault effects of the matched bindings, in binding
// order (FP1 before FP2, so the linked masking sequence plays out
// deterministically), and returns the possibly overridden faulty read value.
func (m *machine) applyEffects(f linked.Fault, placement []int, addr int, isRead bool, matched []bool, retFaulty fp.Value) fp.Value {
	for i, b := range f.FPs {
		if !matched[i] {
			continue
		}
		m.faulty[placement[b.V]] = b.FP.F
		if isRead && placement[b.V] == addr && b.FP.OpRole == fp.RoleVictim && b.FP.R.IsBinary() {
			retFaulty = b.FP.R
		}
	}
	return retFaulty
}

// step applies one march operation to address addr and reports whether the
// operation was a read that detected the fault (faulty return value differs
// from the fault-free one), along with the read values of both machines
// (VX for non-reads).
func (m *machine) step(f linked.Fault, placement []int, addr int, op fp.Op) (bool, fp.Value, fp.Value) {
	if op.Kind == fp.OpWait {
		m.applyWait(f, placement)
		m.disarm() // a wait breaks back-to-back sequences
		return false, fp.VX, fp.VX
	}

	// 1. Evaluate operation triggers against the pre-operation faulty state.
	matched := m.evalTriggers(f, placement, addr, op)

	// 2. Base operation semantics on both machines.
	retGood, retFaulty := fp.VX, fp.VX
	isRead := op.Kind == fp.OpRead
	switch op.Kind {
	case fp.OpWrite:
		m.good[addr] = op.Data
		m.faulty[addr] = op.Data
	case fp.OpRead:
		retGood = m.good[addr]
		retFaulty = m.faulty[addr]
	}

	// 3. Fault effects.
	retFaulty = m.applyEffects(f, placement, addr, isRead, matched, retFaulty)

	// 4. State-triggered primitives settle on the new state.
	m.settleStateFaults(f, placement)

	return isRead && retFaulty != retGood, retGood, retFaulty
}

// run simulates the full test for one scenario and reports whether any read
// detects the fault. It is the uncompiled reference path: the compiled
// schedule (schedule.go) must produce bit-identical verdicts, which
// schedule_test.go asserts for every library test and shipped fault list.
func (m *machine) run(t march.Test, f linked.Fault, s Scenario, size int) bool {
	m.reset(f, s)
	m.settleStateFaults(f, s.Placement)
	for ei, e := range t.Elems {
		for _, addr := range s.Orders[ei].Addresses(size) {
			for _, op := range e.Ops {
				if det, _, _ := m.step(f, s.Placement, addr, op); det {
					// Detection anywhere suffices; subsequent state is
					// irrelevant once detected.
					return true
				}
			}
		}
	}
	return false
}
