// Package sim is the memory fault simulator the paper relies on for
// validation (its reference [13], "Specification and design of a new memory
// fault simulator"): it decides whether a march test detects a functional
// fault.
//
// The simulator runs the fault-free ("good") and the faulty machine in
// lockstep over the operation stream a march test induces on a small memory.
// Fault primitives are evaluated against the faulty machine's state, so the
// masking behavior of linked faults (Section 3 of the paper) emerges from
// the semantics instead of being special-cased: both primitives of a linked
// pair are simultaneously active and the second naturally cancels the first
// when the test gives it the chance.
//
// A fault model is *detected* by a test only if every concrete scenario is
// detected: every placement of the fault's cells onto memory addresses,
// every initial value of those cells (march tests must work for arbitrary
// power-up content), and — for ⇕ elements — every concrete address order.
package sim

import (
	"fmt"
	"runtime"
	"strings"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

// Config controls the simulation space.
type Config struct {
	// Size is the number of memory cells; at least one more than the number
	// of fault cells so bystander behavior is exercised. 0 means the default
	// of 4 cells.
	Size int
	// ExhaustiveOrders expands every ⇕ element into both concrete address
	// orders and requires detection under all combinations. When false, ⇕
	// iterates upward (the paper's convention for generation-time checks).
	ExhaustiveOrders bool
	// Workers bounds the number of goroutines Simulate uses across faults.
	// 0 means GOMAXPROCS.
	Workers int
	// MaxAnyElements caps the ⇕ expansion to keep the scenario space
	// bounded; 0 means the default of 12 (4096 order combinations).
	MaxAnyElements int
}

// DefaultConfig is the configuration used throughout the experiments:
// 4 cells, exhaustive ⇕ expansion.
func DefaultConfig() Config {
	return Config{Size: 4, ExhaustiveOrders: true}
}

func (c Config) size() int {
	if c.Size <= 0 {
		return 4
	}
	return c.Size
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Scenario is one concrete simulation instance: a placement of the fault's
// abstract cells onto memory addresses, the initial values of those cells,
// and the concrete address order of every march element.
type Scenario struct {
	// Placement maps fault cell index to memory address.
	Placement []int
	// Init holds the initial value of each fault cell; bystander cells
	// start at 0.
	Init []fp.Value
	// Orders is the concrete address order of each march element (⇕
	// elements resolved to ⇑ or ⇓).
	Orders []march.AddrOrder
}

// String renders the scenario for diagnostics.
func (s Scenario) String() string {
	var b strings.Builder
	b.WriteString("cells@")
	for i, a := range s.Placement {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	b.WriteString(" init=")
	for _, v := range s.Init {
		b.WriteString(v.String())
	}
	b.WriteString(" orders=")
	for _, o := range s.Orders {
		b.WriteString(o.ASCII())
	}
	return b.String()
}

// machine is a pair of memories simulated in lockstep. For dynamic (m = 2)
// fault primitives it tracks which bindings are "armed": the first
// sensitizing operation matched on the immediately preceding step of the
// operation stream, so the primitive fires if the current operation
// completes the back-to-back sequence on the same cell.
type machine struct {
	good   []fp.Value
	faulty []fp.Value
	// armed[i] reports that binding i's first dynamic operation matched on
	// the previous step; armedAddr[i] is the cell it matched on.
	armed     [4]bool
	armedAddr [4]int
}

func newMachine(size int) *machine {
	return &machine{good: make([]fp.Value, size), faulty: make([]fp.Value, size)}
}

func (m *machine) reset(s Scenario) {
	for i := range m.good {
		m.good[i] = fp.V0
		m.faulty[i] = fp.V0
	}
	for c, addr := range s.Placement {
		m.good[addr] = s.Init[c]
		m.faulty[addr] = s.Init[c]
	}
	m.armed = [4]bool{}
}

// states returns the faulty-machine states of a binding's aggressor and
// victim cells.
func (m *machine) states(b linked.Binding, placement []int) (aState, vState fp.Value) {
	aState = fp.VX
	if b.A >= 0 {
		aState = m.faulty[placement[b.A]]
	}
	return aState, m.faulty[placement[b.V]]
}

// settleStateFaults applies state-triggered primitives (SF, CFst) until a
// fixpoint, bounded to avoid oscillation between mutually linked state
// conditions. It returns true if any cell changed.
func (m *machine) settleStateFaults(f linked.Fault, placement []int) bool {
	changed := false
	for iter := 0; iter <= len(f.FPs); iter++ {
		progress := false
		for _, b := range f.FPs {
			if b.FP.Trigger != fp.TrigState {
				continue
			}
			aState, vState := m.states(b, placement)
			if b.FP.MatchesState(aState, vState) && m.faulty[placement[b.V]] != b.FP.F {
				m.faulty[placement[b.V]] = b.FP.F
				progress = true
				changed = true
			}
		}
		if !progress {
			break
		}
	}
	return changed
}

// applyWait models the wait operation 't': time passes for the whole array,
// sensitizing data retention faults on any fault cell whose state matches.
func (m *machine) applyWait(f linked.Fault, placement []int) {
	for _, b := range f.FPs {
		if b.FP.Trigger != fp.TrigOp || b.FP.Op.Kind != fp.OpWait {
			continue
		}
		aState, vState := m.states(b, placement)
		if b.FP.MatchesOp(fp.Wait, fp.RoleVictim, aState, vState) {
			m.faulty[placement[b.V]] = b.FP.F
		}
	}
	m.settleStateFaults(f, placement)
}

// step applies one march operation to address addr and reports whether the
// operation was a read that detected the fault (faulty return value differs
// from the fault-free one), along with the read values of both machines
// (VX for non-reads).
func (m *machine) step(f linked.Fault, placement []int, addr int, op fp.Op) (bool, fp.Value, fp.Value) {
	if op.Kind == fp.OpWait {
		m.applyWait(f, placement)
		m.armed = [4]bool{} // a wait breaks back-to-back sequences
		return false, fp.VX, fp.VX
	}

	// 1. Evaluate operation triggers against the pre-operation faulty
	// state. Static primitives match on the single operation; dynamic ones
	// fire when the current operation completes a sequence armed on the
	// previous step, and (re-)arm when it matches their first operation.
	var matched, nextArmed [4]bool
	var nextArmedAddr [4]int
	for i, b := range f.FPs {
		if b.FP.Trigger != fp.TrigOp {
			continue
		}
		var role fp.Role
		switch {
		case placement[b.V] == addr:
			role = fp.RoleVictim
		case b.A >= 0 && placement[b.A] == addr:
			role = fp.RoleAggressor
		default:
			continue
		}
		aState, vState := m.states(b, placement)
		if b.FP.IsDynamic() {
			if m.armed[i] && m.armedAddr[i] == addr && b.FP.MatchesSecondOp(op, role) {
				matched[i] = true
			} else if b.FP.MatchesFirstOp(op, role, aState, vState) {
				nextArmed[i] = true
				nextArmedAddr[i] = addr
			}
			continue
		}
		if b.FP.MatchesOp(op, role, aState, vState) {
			matched[i] = true
		}
	}
	// Back-to-back means consecutive in the operation stream: whatever this
	// step did not re-arm is disarmed.
	m.armed = nextArmed
	m.armedAddr = nextArmedAddr

	// 2. Base operation semantics on both machines.
	retGood, retFaulty := fp.VX, fp.VX
	isRead := op.Kind == fp.OpRead
	switch op.Kind {
	case fp.OpWrite:
		m.good[addr] = op.Data
		m.faulty[addr] = op.Data
	case fp.OpRead:
		retGood = m.good[addr]
		retFaulty = m.faulty[addr]
	}

	// 3. Fault effects, in binding order (FP1 before FP2, so the linked
	// masking sequence plays out deterministically).
	for i, b := range f.FPs {
		if !matched[i] {
			continue
		}
		m.faulty[placement[b.V]] = b.FP.F
		if isRead && placement[b.V] == addr && b.FP.OpRole == fp.RoleVictim && b.FP.R.IsBinary() {
			retFaulty = b.FP.R
		}
	}

	// 4. State-triggered primitives settle on the new state.
	m.settleStateFaults(f, placement)

	return isRead && retFaulty != retGood, retGood, retFaulty
}

// run simulates the full test for one scenario and reports whether any read
// detects the fault.
func (m *machine) run(t march.Test, f linked.Fault, s Scenario, size int) bool {
	m.reset(s)
	m.settleStateFaults(f, s.Placement)
	detected := false
	for ei, e := range t.Elems {
		for _, addr := range s.Orders[ei].Addresses(size) {
			for _, op := range e.Ops {
				if det, _, _ := m.step(f, s.Placement, addr, op); det {
					detected = true
					// Detection anywhere suffices; subsequent state is
					// irrelevant once detected.
					return true
				}
			}
		}
	}
	return detected
}
