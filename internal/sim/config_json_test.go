package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestConfigCanonicalFillsDefaults(t *testing.T) {
	c := Config{}.Canonical()
	if c.Size != 4 || c.MaxAnyElements != 12 || c.Workers != 0 {
		t.Fatalf("zero config canonicalized to %+v", c)
	}
	if got := c.Canonical(); got != c {
		t.Fatalf("Canonical not idempotent: %+v vs %+v", got, c)
	}
}

func TestConfigCanonicalDropsWorkers(t *testing.T) {
	a := Config{Size: 4, ExhaustiveOrders: true, Workers: 1}
	b := Config{Size: 4, ExhaustiveOrders: true, Workers: 16}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("configs differing only in Workers canonicalize differently")
	}
}

func TestConfigJSONStableBytes(t *testing.T) {
	// A zero config and a spelled-out default config must encode to the
	// exact same bytes: that is what makes the encoding usable as a cache
	// key.
	zero, err := json.Marshal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := json.Marshal(Config{Size: 4, MaxAnyElements: 12, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, full) {
		t.Fatalf("canonical encodings differ:\n%s\n%s", zero, full)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	in := Config{Size: 6, ExhaustiveOrders: true, MaxAnyElements: 9, Workers: 3}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Config
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	want := in.Canonical()
	if out != want {
		t.Fatalf("round trip: got %+v, want %+v", out, want)
	}
}

func TestConfigJSONOmittedFieldsDefault(t *testing.T) {
	var c Config
	if err := json.Unmarshal([]byte(`{"exhaustive_orders":true}`), &c); err != nil {
		t.Fatal(err)
	}
	if !c.ExhaustiveOrders {
		t.Fatalf("exhaustive_orders lost: %+v", c)
	}
	if got := c.Canonical(); got.Size != 4 || got.MaxAnyElements != 12 {
		t.Fatalf("defaults not refilled after decode: %+v", got)
	}
}
