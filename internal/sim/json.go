package sim

import (
	"encoding/json"
)

// reportJSON is the (marshal-only) wire form of a simulation report, used by
// the command-line tools' -json output.
type reportJSON struct {
	Test     string       `json:"test"`
	Spec     string       `json:"spec"`
	Length   int          `json:"length"`
	Total    int          `json:"total"`
	Detected int          `json:"detected"`
	Coverage float64      `json:"coverage_percent"`
	ByKind   []kindJSON   `json:"by_kind,omitempty"`
	Missed   []missedJSON `json:"missed,omitempty"`
}

type kindJSON struct {
	Kind     string `json:"kind"`
	Detected int    `json:"detected"`
	Total    int    `json:"total"`
}

type missedJSON struct {
	Fault   string `json:"fault"`
	Witness string `json:"witness,omitempty"`
	Error   string `json:"error,omitempty"`
}

// MarshalJSON encodes the report with coverage totals, per-kind counters and
// the missed faults (with their witness scenarios).
func (r Report) MarshalJSON() ([]byte, error) {
	w := reportJSON{
		Test:     r.Test.Name,
		Spec:     r.Test.ASCII(),
		Length:   r.Test.Length(),
		Total:    r.Total(),
		Detected: r.Detected(),
		Coverage: r.Coverage(),
	}
	for _, k := range r.ByKind() {
		w.ByKind = append(w.ByKind, kindJSON{Kind: k.Kind.String(), Detected: k.Detected, Total: k.Total})
	}
	for _, m := range r.Missed() {
		mj := missedJSON{Fault: m.Fault.ID()}
		if m.Witness != nil {
			mj.Witness = m.Witness.String()
		}
		if m.Err != nil {
			mj.Error = m.Err.Error()
		}
		w.Missed = append(w.Missed, mj)
	}
	return json.Marshal(w)
}
