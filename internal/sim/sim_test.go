package sim

import (
	"testing"

	"marchgen/internal/fp"
	"marchgen/internal/linked"
	"marchgen/internal/march"
)

func mustSimple(t *testing.T, s string) linked.Fault {
	t.Helper()
	f, err := linked.NewSimple(fp.MustParseFP(s))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustDetect(t *testing.T, m march.Test, f linked.Fault, want bool) {
	t.Helper()
	got, witness, err := DetectsFault(m, f, DefaultConfig())
	if err != nil {
		t.Fatalf("%s vs %s: %v", m.Name, f.ID(), err)
	}
	if got != want {
		t.Errorf("%s vs %s: detected=%v, want %v (witness %v)", m.Name, f.ID(), got, want, witness)
	}
	if !got && witness == nil {
		t.Errorf("%s vs %s: undetected fault must carry a witness", m.Name, f.ID())
	}
	if got && witness != nil {
		t.Errorf("%s vs %s: detected fault must not carry a witness", m.Name, f.ID())
	}
}

// A fault whose trigger never fires (a data retention fault when the test
// contains no wait) must never be detected: the good and faulty machines
// stay identical. March G is the one library test with delay phases and
// must detect both retention faults.
func TestInertFaultNeverDetected(t *testing.T) {
	drf0 := mustSimple(t, "<0t/1/->")
	drf1 := mustSimple(t, "<1t/0/->")
	for _, m := range march.Lib() {
		if m.Delays() > 0 {
			mustDetect(t, m, drf0, true)
			mustDetect(t, m, drf1, true)
			continue
		}
		mustDetect(t, m, drf0, false)
		mustDetect(t, m, drf1, false)
	}
}

// MATS+ detects state (stuck-at-like) faults on both polarities.
func TestMATSPlusDetectsStateFaults(t *testing.T) {
	mustDetect(t, march.MATSPlus, mustSimple(t, "<0/1/->"), true)
	mustDetect(t, march.MATSPlus, mustSimple(t, "<1/0/->"), true)
}

// MATS+ detects transition faults but not the destructive read/write family.
func TestMATSPlusLimits(t *testing.T) {
	mustDetect(t, march.MATSPlus, mustSimple(t, "<0w1/0/->"), true)
	// The final ⇓(r1,w0) leaves the down transition unobserved: MATS+
	// famously misses TF↓ (March X adds the trailing ⇕(r0) to fix this).
	mustDetect(t, march.MATSPlus, mustSimple(t, "<1w0/1/->"), false)
	mustDetect(t, march.MarchX, mustSimple(t, "<1w0/1/->"), true)
	mustDetect(t, march.MATSPlus, mustSimple(t, "<0w0/1/->"), false) // WDF needs wx-on-x
	mustDetect(t, march.MATSPlus, mustSimple(t, "<0r0/1/0>"), false) // DRDF needs double read
}

// March C- misses the write destructive fault under adversarial initial
// memory: with the array powered up at 1, no non-transition w0 ever occurs.
func TestMarchCMinusMissesWDF(t *testing.T) {
	mustDetect(t, march.MarchCMinus, mustSimple(t, "<0w0/1/->"), false)
	mustDetect(t, march.MarchCMinus, mustSimple(t, "<1w1/0/->"), false)
}

// The motivating example of Section 3: a disturb coupling fault linked to a
// disturb coupling fault masks itself against classic march tests. March C-
// misses the three-cell configuration of Figure 1 while March SL detects it.
func TestClassicMarchMissesLinkedFault(t *testing.T) {
	f1 := fp.MustParseFP("<0w1;0/1/->")
	f2 := fp.MustParseFP("<0w1;1/0/->")
	lf, err := linked.NewLF3(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	mustDetect(t, march.MarchCMinus, lf, false)
	mustDetect(t, march.MarchSL, lf, true)

	// The corresponding simple fault IS detected by March C-: linking is
	// what defeats it.
	simple, err := linked.NewSimple(f1)
	if err != nil {
		t.Fatal(err)
	}
	mustDetect(t, march.MarchCMinus, simple, true)
}

// The paper's eq. (12) linked fault (same aggressor) and its test-pattern
// semantics.
func TestEq12LinkedFaultDetection(t *testing.T) {
	lf, err := linked.NewLF2aa(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<1w0;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	mustDetect(t, march.MarchSL, lf, true)
	mustDetect(t, march.MarchABL, lf, true)
	mustDetect(t, march.MarchRABL, lf, true)
}

// Data retention faults are sensitized by the wait operation and detected by
// a retention test, not by an ordinary march.
func TestDataRetention(t *testing.T) {
	drf1 := mustSimple(t, "<1t/0/->")
	retention := march.MustParse("retention", "c(w1) c(t) c(r1)")
	mustDetect(t, retention, drf1, true)
	noWait := march.MustParse("nowait", "c(w1) c(r1)")
	mustDetect(t, noWait, drf1, false)

	drf0 := mustSimple(t, "<0t/1/->")
	retention0 := march.MustParse("retention0", "c(w0) c(t) c(r0)")
	mustDetect(t, retention0, drf0, true)
	mustDetect(t, retention, drf0, false)
}

// A state fault settles immediately: the cell cannot hold the value at all,
// so even the power-up content is corrupted before the first operation.
func TestStateFaultSettlesOnInit(t *testing.T) {
	sf1 := mustSimple(t, "<1/0/->")
	readOnly := march.MustParse("ro", "c(w1) c(r1)")
	mustDetect(t, readOnly, sf1, true)
}

// State coupling faults respect the aggressor condition.
func TestStateCouplingFault(t *testing.T) {
	cfst := mustSimple(t, "<1;0/1/->")
	// Writing the aggressor to 1 while the victim holds 0 corrupts the
	// victim; March SS sees it, a test that never holds (a=1, v=0) does not.
	mustDetect(t, march.MarchSS, cfst, true)
	allSame := march.MustParse("same", "c(w0) c(r0) c(w1) c(r1)")
	mustDetect(t, allSame, cfst, false)
}

// Detection is monotone: appending march elements never removes a detection.
func TestDetectionMonotoneUnderExtension(t *testing.T) {
	base := march.MarchCMinus
	extended := base.Clone()
	extended.Name = "March C- extended"
	extended.Elems = append(extended.Elems, march.MustParse("x", "^(r0,w1,r1,w0)").Elems...)

	faults := []linked.Fault{
		mustSimple(t, "<0w1/0/->"),
		mustSimple(t, "<0r0/1/1>"),
		mustSimple(t, "<0w1;0/1/->"),
		mustSimple(t, "<1;0w1/0/->"),
	}
	lf, err := linked.NewLF1(fp.MustParseFP("<0w1/0/->"), fp.MustParseFP("<0r0/1/1>"))
	if err != nil {
		t.Fatal(err)
	}
	faults = append(faults, lf)

	cfg := DefaultConfig()
	for _, f := range faults {
		baseDet, _, err := DetectsFault(base, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		extDet, _, err := DetectsFault(extended, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if baseDet && !extDet {
			t.Errorf("%s: extension lost detection", f.ID())
		}
	}
}

// The simulator rejects memories too small to place the fault plus a
// bystander cell.
func TestMemoryTooSmall(t *testing.T) {
	lf3, err := linked.NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = DetectsFault(march.MATSPlus, lf3, Config{Size: 3, ExhaustiveOrders: true})
	if err == nil {
		t.Error("3-cell fault on a 3-cell memory must error (no bystander)")
	}
}

func TestOrderCombinations(t *testing.T) {
	two := march.MustParse("two", "c(w0) ^(r0,w1) c(r1)")
	combos, err := orderCombinations(two, Config{ExhaustiveOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 4 {
		t.Fatalf("2 ⇕ elements: %d combinations, want 4", len(combos))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		if c[1] != march.Up {
			t.Error("fixed ⇑ element must stay ⇑")
		}
		key := c[0].ASCII() + c[2].ASCII()
		if seen[key] {
			t.Errorf("duplicate order combination %s", key)
		}
		seen[key] = true
	}

	lazy, err := orderCombinations(two, Config{ExhaustiveOrders: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(lazy) != 1 || lazy[0][0] != march.Up || lazy[0][2] != march.Up {
		t.Errorf("lazy resolution = %v, want all ⇑", lazy)
	}
}

func TestOrderCombinationCap(t *testing.T) {
	elems := ""
	for i := 0; i < 13; i++ {
		elems += "c(w0) "
	}
	big := march.MustParse("big", elems)
	if _, err := orderCombinations(big, Config{ExhaustiveOrders: true}); err == nil {
		t.Error("13 ⇕ elements must exceed the default cap")
	}
	if _, err := orderCombinations(big, Config{ExhaustiveOrders: true, MaxAnyElements: 13}); err != nil {
		t.Errorf("raised cap must allow expansion: %v", err)
	}
}

func TestScenarioString(t *testing.T) {
	s := Scenario{
		Placement: []int{2, 0},
		Init:      []fp.Value{fp.V1, fp.V0},
		Orders:    []march.AddrOrder{march.Up, march.Down},
	}
	if got, want := s.String(), "cells@2,0 init=10 orders=^v"; got != want {
		t.Errorf("Scenario.String() = %q, want %q", got, want)
	}
}

func TestSimulateParallelDeterministic(t *testing.T) {
	faults := []linked.Fault{
		mustSimple(t, "<0w1/0/->"),
		mustSimple(t, "<0w0/1/->"),
		mustSimple(t, "<0r0/1/1>"),
		mustSimple(t, "<0w1;0/1/->"),
		mustSimple(t, "<1;1w0/1/->"),
	}
	cfg1 := DefaultConfig()
	cfg1.Workers = 1
	cfg8 := DefaultConfig()
	cfg8.Workers = 8
	r1 := Simulate(march.MarchSS, faults, cfg1)
	r8 := Simulate(march.MarchSS, faults, cfg8)
	if r1.Total() != r8.Total() {
		t.Fatal("totals differ")
	}
	for i := range r1.Results {
		if r1.Results[i].Detected != r8.Results[i].Detected {
			t.Errorf("fault %d: worker counts disagree", i)
		}
		if r1.Results[i].Fault.ID() != faults[i].ID() {
			t.Errorf("fault %d: result order broken", i)
		}
	}
}

func TestReportAccessors(t *testing.T) {
	faults := []linked.Fault{
		mustSimple(t, "<0w1/0/->"), // detected by MATS+
		mustSimple(t, "<0w0/1/->"), // missed by MATS+
	}
	r := Simulate(march.MATSPlus, faults, DefaultConfig())
	if r.Total() != 2 || r.Detected() != 1 {
		t.Fatalf("detected %d/%d, want 1/2", r.Detected(), r.Total())
	}
	if r.Full() {
		t.Error("partial coverage must not report Full")
	}
	if got := r.Coverage(); got != 50 {
		t.Errorf("Coverage = %v, want 50", got)
	}
	missed := r.Missed()
	if len(missed) != 1 || missed[0].Fault.ID() != faults[1].ID() {
		t.Errorf("Missed = %v", missed)
	}
	if err := r.Err(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if (Report{}).Coverage() != 0 {
		t.Error("empty report must have 0 coverage")
	}
	// An empty fault list is vacuously covered, matching FullCoverage.
	if !(Report{}).Full() {
		t.Error("empty report must be vacuously Full")
	}
	byKind := r.ByKind()
	if len(byKind) != 1 || byKind[0].Total != 2 || byKind[0].Detected != 1 {
		t.Errorf("ByKind = %v", byKind)
	}
	if byKind[0].String() != "Simple 1/2" {
		t.Errorf("KindCoverage.String() = %q", byKind[0].String())
	}
	if r.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestReportErrPropagates(t *testing.T) {
	lf3, err := linked.NewLF3(fp.MustParseFP("<0w1;0/1/->"), fp.MustParseFP("<0w1;1/0/->"))
	if err != nil {
		t.Fatal(err)
	}
	r := Simulate(march.MATSPlus, []linked.Fault{lf3}, Config{Size: 3})
	if r.Err() == nil {
		t.Error("report must surface simulation errors")
	}
}

// Reads always carry the good machine's value on the fault-free side: a
// consistent march never "detects" anything on a fault that cannot trigger,
// for all library tests (guards against false positives in the simulator).
func TestNoFalsePositives(t *testing.T) {
	impossible := mustSimple(t, "<0t/1/->") // only delay-bearing tests can fire it
	for _, m := range march.Lib() {
		if m.Delays() > 0 {
			continue
		}
		det, _, err := DetectsFault(m, impossible, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if det {
			t.Errorf("%s: false positive detection", m.Name)
		}
	}
}
